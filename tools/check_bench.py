#!/usr/bin/env python3
"""Gate CI on benchmark regressions, not just test failures.

Compares a freshly produced ``BENCH_*.json`` (the Release smoke run)
against a committed baseline and fails only on a real throughput
regression:

* Rows are matched by their identity key, not position — for the
  ``engine_throughput`` schema that is ``(mode, threads, batch, clients,
  arrival_rate_multiplier)`` — so reordering, new modes, or retired modes
  never break the gate.
* The gated metric is dimensionless (``speedup_vs_sequential``): both
  sides of a CI run share the same runner, so the sequential baseline
  divides out machine speed and only *relative* regressions fail.
* Regressions only: a matched row fails when ``current < baseline * (1 -
  tolerance)``.  Improvements and new rows are reported, never fatal;
  rows present only in the baseline are reported as retired.
* Benchmarks without gating rules (e.g. the kernel crossover sweep, whose
  absolute milliseconds are pure machine noise on shared runners) are
  diffed informationally and always pass.

Usage:
    check_bench.py --baseline ci/bench_baselines/BENCH_engine_throughput.json \
                   --current BENCH_engine_throughput.json [--tolerance 0.25]

Exit status: 0 when no gated row regressed, 1 otherwise (or on a
malformed/unreadable input file).

Standard library only — runs on a bare CI python3.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"check_bench: cannot read {path}: {error}")


def row_key(row):
    """Identity of one engine_throughput configuration."""
    return (
        row.get("mode", ""),
        row.get("threads", 0),
        row.get("batch", 0),
        row.get("clients", 0),
        row.get("arrival_rate_multiplier", 0),
    )


def format_key(key):
    mode, threads, batch, clients, rate = key
    parts = [f"{mode!r}", f"threads={threads}", f"batch={batch}"]
    if clients:
        parts.append(f"clients={clients}")
    if rate:
        parts.append(f"rate=x{rate:g}")
    return " ".join(parts)


def check_engine_throughput(baseline, current, tolerance):
    """Returns the list of regression messages (empty = pass)."""
    base_rows = {row_key(r): r for r in baseline.get("rows", [])}
    cur_rows = {row_key(r): r for r in current.get("rows", [])}

    regressions = []
    matched = 0
    for key, cur in cur_rows.items():
        base = base_rows.get(key)
        if base is None:
            print(f"  new row (not gated): {format_key(key)}")
            continue
        matched += 1
        base_speedup = float(base.get("speedup_vs_sequential", 0.0))
        cur_speedup = float(cur.get("speedup_vs_sequential", 0.0))
        if base_speedup <= 0.0:
            continue
        floor = base_speedup * (1.0 - tolerance)
        ratio = cur_speedup / base_speedup
        status = "REGRESSION" if cur_speedup < floor else "ok"
        print(
            f"  {status:>10}  {format_key(key)}: "
            f"{base_speedup:.3f}x -> {cur_speedup:.3f}x ({ratio:.2f} of baseline)"
        )
        if cur_speedup < floor:
            regressions.append(
                f"{format_key(key)}: speedup_vs_sequential fell to "
                f"{cur_speedup:.3f}x from {base_speedup:.3f}x "
                f"(floor {floor:.3f}x at {tolerance:.0%} tolerance)"
            )
    for key in base_rows:
        if key not in cur_rows:
            print(f"  retired row (not gated): {format_key(key)}")
    print(f"  {matched} matched rows gated")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop in a gated metric (default 0.25)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    name = current.get("benchmark", "<unnamed>")
    if baseline.get("benchmark") != current.get("benchmark"):
        sys.exit(
            f"check_bench: benchmark mismatch: baseline is "
            f"{baseline.get('benchmark')!r}, current is {name!r}"
        )

    print(f"check_bench: {name} ({args.current} vs {args.baseline})")
    if name == "engine_throughput":
        regressions = check_engine_throughput(baseline, current, args.tolerance)
    else:
        print("  no gating rules for this benchmark; informational only")
        regressions = []

    if regressions:
        print(f"\ncheck_bench: FAILED — {len(regressions)} regression(s):")
        for message in regressions:
            print(f"  {message}")
        return 1
    print("check_bench: PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
