/// tpa_snapshot — build, inspect, verify, and serve TPA snapshot files.
///
/// Subcommands:
///   build  --out FILE [--scale S] [--edges M] [--seed R]
///          [--precision fp64|fp32] [--value-storage explicit|value-free]
///          [--ordering original|degree|hub]
///          [--restart C] [--family-window S] [--stranger-start T]
///       Generates a deterministic R-MAT graph, runs Tpa::Preprocess, and
///       writes the full serving state to FILE.
///   info FILE
///       Prints the header/meta summary (never touches payload bytes).
///   verify FILE
///       Full integrity check: checksums + structural invariants.
///   query FILE --seed N [--topk K] [--copy] [--no-verify]
///       Loads FILE (mmap by default), warm-starts a QueryEngine, and
///       prints the top-k scores for the seed node.
///
/// Exit status: 0 on success, 1 on any error (message on stderr).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/query_engine.h"
#include "graph/generators.h"
#include "method/tpa_method.h"
#include "snapshot/snapshot.h"
#include "util/stopwatch.h"

namespace tpa {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "tpa_snapshot: %s\n", message.c_str());
  return 1;
}

int FailStatus(const Status& status) { return Fail(status.message()); }

/// Minimal --flag VALUE parser over the argv tail.
class ArgList {
 public:
  ArgList(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// The value after `flag`, or `fallback` when absent.  Flags are
  /// consumed, so Unparsed() reports leftovers.
  std::string Value(const std::string& flag, const std::string& fallback) {
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == flag) {
        used_[i] = used_[i + 1] = true;
        return args_[i + 1];
      }
    }
    return fallback;
  }

  bool Present(const std::string& flag) {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == flag) {
        used_[i] = true;
        return true;
      }
    }
    return false;
  }

  /// First positional (non-flag) argument, or "".
  std::string Positional() {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (!used_[i] && args_[i].rfind("--", 0) != 0) {
        used_[i] = true;
        return args_[i];
      }
    }
    return "";
  }

  std::string Unparsed() const {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (!used_.count(i) || !used_.at(i)) return args_[i];
    }
    return "";
  }

 private:
  std::vector<std::string> args_;
  std::map<size_t, bool> used_;
};

int CmdBuild(ArgList& args) {
  const std::string out = args.Value("--out", "");
  if (out.empty()) return Fail("build requires --out FILE");
  RmatOptions rmat;
  rmat.scale = static_cast<uint32_t>(
      std::strtoul(args.Value("--scale", "14").c_str(), nullptr, 10));
  rmat.edges = std::strtoull(args.Value("--edges", "0").c_str(), nullptr, 10);
  if (rmat.edges == 0) rmat.edges = (uint64_t{1} << rmat.scale) * 16;
  rmat.seed = std::strtoull(args.Value("--seed", "1").c_str(), nullptr, 10);

  BuildOptions build;
  const std::string precision = args.Value("--precision", "fp64");
  if (precision == "fp32") {
    build.value_precision = la::Precision::kFloat32;
  } else if (precision != "fp64") {
    return Fail("--precision must be fp64 or fp32");
  }
  const std::string storage = args.Value("--value-storage", "explicit");
  if (storage == "value-free") {
    build.value_storage = ValueStorage::kRowConstant;
  } else if (storage != "explicit") {
    return Fail("--value-storage must be explicit or value-free");
  }
  const std::string ordering = args.Value("--ordering", "original");
  if (ordering == "degree") {
    build.node_ordering = NodeOrdering::kDegreeDescending;
  } else if (ordering == "hub") {
    build.node_ordering = NodeOrdering::kHubCluster;
  } else if (ordering != "original") {
    return Fail("--ordering must be original, degree, or hub");
  }

  TpaOptions options;
  options.restart_probability =
      std::strtod(args.Value("--restart", "0.15").c_str(), nullptr);
  options.family_window = static_cast<int>(
      std::strtol(args.Value("--family-window", "5").c_str(), nullptr, 10));
  options.stranger_start = static_cast<int>(
      std::strtol(args.Value("--stranger-start", "10").c_str(), nullptr, 10));
  if (!args.Unparsed().empty()) {
    return Fail("unknown argument: " + args.Unparsed());
  }

  Stopwatch watch;
  StatusOr<Graph> graph = GenerateRmat(rmat, build);
  if (!graph.ok()) return FailStatus(graph.status());
  StatusOr<Tpa> tpa = Tpa::Preprocess(*graph, options);
  if (!tpa.ok()) return FailStatus(tpa.status());
  const double build_seconds = watch.ElapsedSeconds();
  watch = Stopwatch();
  const Status saved = tpa->SaveSnapshot(out);
  if (!saved.ok()) return FailStatus(saved);
  std::printf(
      "built scale=%u n=%u m=%llu %s/%s ordering=%s in %.3fs, saved '%s' "
      "in %.3fs\n",
      rmat.scale, graph->num_nodes(),
      static_cast<unsigned long long>(graph->num_edges()), precision.c_str(),
      storage.c_str(), ordering.c_str(), build_seconds, out.c_str(),
      watch.ElapsedSeconds());
  return 0;
}

int CmdInfo(ArgList& args) {
  const std::string path = args.Positional();
  if (path.empty()) return Fail("info requires a snapshot path");
  StatusOr<snapshot::SnapshotInfo> info = snapshot::ReadSnapshotInfo(path);
  if (!info.ok()) return FailStatus(info.status());
  std::printf(
      "snapshot '%s'\n"
      "  nodes=%llu edges=%llu precision=%s storage=%s\n"
      "  tiers: fp64=%d fp32=%d permutation=%d\n"
      "  tpa: c=%g eps=%g S=%d T=%d\n"
      "  file: %llu bytes, %u sections\n",
      path.c_str(), static_cast<unsigned long long>(info->num_nodes),
      static_cast<unsigned long long>(info->num_edges),
      std::string(la::PrecisionName(info->precision)).c_str(),
      info->value_storage == ValueStorage::kExplicit ? "explicit"
                                                     : "value-free",
      info->has_fp64 ? 1 : 0, info->has_fp32 ? 1 : 0,
      info->has_permutation ? 1 : 0, info->options.restart_probability,
      info->options.tolerance, info->options.family_window,
      info->options.stranger_start,
      static_cast<unsigned long long>(info->file_bytes), info->section_count);
  return 0;
}

int CmdVerify(ArgList& args) {
  const std::string path = args.Positional();
  if (path.empty()) return Fail("verify requires a snapshot path");
  Stopwatch watch;
  const Status status = snapshot::VerifySnapshot(path);
  if (!status.ok()) return FailStatus(status);
  std::printf("snapshot '%s' verified in %.3fs\n", path.c_str(),
              watch.ElapsedSeconds());
  return 0;
}

int CmdQuery(ArgList& args) {
  const std::string path = args.Positional();
  if (path.empty()) return Fail("query requires a snapshot path");
  const NodeId seed = static_cast<NodeId>(
      std::strtoul(args.Value("--seed", "0").c_str(), nullptr, 10));
  const int topk = static_cast<int>(
      std::strtol(args.Value("--topk", "10").c_str(), nullptr, 10));
  snapshot::LoadOptions load;
  if (args.Present("--copy")) load.mode = snapshot::LoadMode::kCopy;
  if (args.Present("--no-verify")) load.verify = false;
  if (!args.Unparsed().empty()) {
    return Fail("unknown argument: " + args.Unparsed());
  }

  Stopwatch watch;
  StatusOr<snapshot::LoadedSnapshot> loaded =
      snapshot::LoadSnapshot(path, load);
  if (!loaded.ok()) return FailStatus(loaded.status());
  const double load_seconds = watch.ElapsedSeconds();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.top_k = topk;
  StatusOr<QueryEngine> engine = QueryEngine::Create(
      *loaded->graph, std::make_unique<TpaMethod>(std::move(*loaded->tpa)),
      engine_options);
  if (!engine.ok()) return FailStatus(engine.status());
  QueryResult result = engine->Query(seed);
  if (!result.status.ok()) return FailStatus(result.status);

  std::printf("loaded '%s' in %.3fs (%s)\n", path.c_str(), load_seconds,
              load.mode == snapshot::LoadMode::kMap ? "mmap" : "copy");
  std::printf("top-%d for seed %u:\n", topk, seed);
  for (size_t i = 0; i < result.top.size(); ++i) {
    std::printf("  %2zu. node %u  score %.6e\n", i + 1, result.top[i].node,
                result.top[i].score);
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: tpa_snapshot build|info|verify|query ...");
  }
  const std::string command = argv[1];
  ArgList args(argc, argv, 2);
  if (command == "build") return CmdBuild(args);
  if (command == "info") return CmdInfo(args);
  if (command == "verify") return CmdVerify(args);
  if (command == "query") return CmdQuery(args);
  return Fail("unknown command: " + command);
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
