/// tpa_snapshot — build, inspect, verify, and serve TPA snapshot files.
///
/// Subcommands:
///   build  --out FILE [--scale S] [--edges M] [--seed R]
///          [--precision fp64|fp32] [--value-storage explicit|value-free]
///          [--ordering original|degree|hub]
///          [--restart C] [--family-window S] [--stranger-start T]
///          [--out-of-core] [--memory-budget-mb M] [--workdir DIR]
///          [--from-csr FILE.csr]
///       Generates a deterministic R-MAT graph, runs Tpa::Preprocess, and
///       writes the full serving state to FILE.  With --out-of-core the
///       graph is generated/built through the file-backed CSR pipeline
///       (edges spill to disk, the CSR is mmap'd, a resident steward keeps
///       peak RSS under --memory-budget-mb); --from-csr skips generation
///       and preprocesses an existing `gen` output instead.
///   gen    --out FILE.csr [--scale S] [--edges M] [--seed R]
///          [--precision fp64|fp32] [--value-storage explicit|value-free]
///          [--memory-budget-mb M] [--workdir DIR]
///       Out-of-core R-MAT generation only: streams the edges through the
///       external-memory sorter into a reopenable file-backed CSR
///       (TPACSR1), never holding the graph on the heap.
///   info FILE
///       Prints the header/meta summary (never touches payload bytes).
///   verify FILE
///       Full integrity check: checksums + structural invariants.
///   query FILE --seed N [--topk K] [--copy] [--no-verify]
///          [--memory-budget-mb M]
///       Loads FILE (mmap by default), warm-starts a QueryEngine, and
///       prints the top-k scores for the seed node.  With a budget, a
///       resident steward drops cold snapshot pages so the serving sweep
///       stays under M MB of RSS even when the file is larger.
///
/// Exit status: 0 on success, 1 on any error (message on stderr).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/query_engine.h"
#include "graph/generators.h"
#include "graph/out_of_core.h"
#include "method/tpa_method.h"
#include "snapshot/snapshot.h"
#include "util/mem_stats.h"
#include "util/stopwatch.h"

namespace tpa {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "tpa_snapshot: %s\n", message.c_str());
  return 1;
}

int FailStatus(const Status& status) { return Fail(status.message()); }

/// Minimal --flag VALUE parser over the argv tail.
class ArgList {
 public:
  ArgList(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// The value after `flag`, or `fallback` when absent.  Flags are
  /// consumed, so Unparsed() reports leftovers.
  std::string Value(const std::string& flag, const std::string& fallback) {
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == flag) {
        used_[i] = used_[i + 1] = true;
        return args_[i + 1];
      }
    }
    return fallback;
  }

  bool Present(const std::string& flag) {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == flag) {
        used_[i] = true;
        return true;
      }
    }
    return false;
  }

  /// First positional (non-flag) argument, or "".
  std::string Positional() {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (!used_[i] && args_[i].rfind("--", 0) != 0) {
        used_[i] = true;
        return args_[i];
      }
    }
    return "";
  }

  std::string Unparsed() const {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (!used_.count(i) || !used_.at(i)) return args_[i];
    }
    return "";
  }

 private:
  std::vector<std::string> args_;
  std::map<size_t, bool> used_;
};

/// Shared --scale/--edges/--seed parsing (defaults: scale 14, 16 edge
/// draws per node).
RmatOptions ParseRmatArgs(ArgList& args) {
  RmatOptions rmat;
  rmat.scale = static_cast<uint32_t>(
      std::strtoul(args.Value("--scale", "14").c_str(), nullptr, 10));
  rmat.edges = std::strtoull(args.Value("--edges", "0").c_str(), nullptr, 10);
  if (rmat.edges == 0) rmat.edges = (uint64_t{1} << rmat.scale) * 16;
  rmat.seed = std::strtoull(args.Value("--seed", "1").c_str(), nullptr, 10);
  return rmat;
}

/// Parses --precision/--value-storage into `build`; returns "" on success,
/// else the error message.
std::string ParseValueArgs(ArgList& args, BuildOptions& build) {
  const std::string precision = args.Value("--precision", "fp64");
  if (precision == "fp32") {
    build.value_precision = la::Precision::kFloat32;
  } else if (precision != "fp64") {
    return "--precision must be fp64 or fp32";
  }
  const std::string storage = args.Value("--value-storage", "explicit");
  if (storage == "value-free") {
    build.value_storage = ValueStorage::kRowConstant;
  } else if (storage != "explicit") {
    return "--value-storage must be explicit or value-free";
  }
  return "";
}

size_t ParseBudgetBytes(ArgList& args) {
  return static_cast<size_t>(std::strtoull(
             args.Value("--memory-budget-mb", "0").c_str(), nullptr, 10))
         << 20;
}

int CmdBuild(ArgList& args) {
  const std::string out = args.Value("--out", "");
  if (out.empty()) return Fail("build requires --out FILE");
  RmatOptions rmat = ParseRmatArgs(args);

  BuildOptions build;
  const std::string value_error = ParseValueArgs(args, build);
  if (!value_error.empty()) return Fail(value_error);
  const std::string precision = args.Value("--precision", "fp64");
  const std::string storage = args.Value("--value-storage", "explicit");
  const std::string ordering = args.Value("--ordering", "original");
  if (ordering == "degree") {
    build.node_ordering = NodeOrdering::kDegreeDescending;
  } else if (ordering == "hub") {
    build.node_ordering = NodeOrdering::kHubCluster;
  } else if (ordering != "original") {
    return Fail("--ordering must be original, degree, or hub");
  }

  TpaOptions options;
  options.restart_probability =
      std::strtod(args.Value("--restart", "0.15").c_str(), nullptr);
  options.family_window = static_cast<int>(
      std::strtol(args.Value("--family-window", "5").c_str(), nullptr, 10));
  options.stranger_start = static_cast<int>(
      std::strtol(args.Value("--stranger-start", "10").c_str(), nullptr, 10));
  const bool out_of_core = args.Present("--out-of-core");
  const size_t budget_bytes = ParseBudgetBytes(args);
  const std::string workdir = args.Value("--workdir", "");
  const std::string from_csr = args.Value("--from-csr", "");
  if (!args.Unparsed().empty()) {
    return Fail("unknown argument: " + args.Unparsed());
  }

  Stopwatch watch;
  if (out_of_core || !from_csr.empty()) {
    // File-backed pipeline: the CSR never sits on the heap, and the steward
    // keeps its mapped pages from accumulating past the budget through
    // generation, preprocess, and save.
    ResidentSteward::Options steward_options;
    steward_options.budget_bytes = budget_bytes;
    ResidentSteward steward(steward_options);
    steward.Start();

    StatusOr<OutOfCoreGraph> ooc = [&]() -> StatusOr<OutOfCoreGraph> {
      if (!from_csr.empty()) {
        StatusOr<OutOfCoreGraph> opened = OpenOutOfCoreGraph(from_csr);
        if (opened.ok() && opened->file != nullptr) {
          steward.RegisterRegion(opened->file, opened->file->data(),
                                 opened->file->size());
        }
        return opened;
      }
      OutOfCoreOptions ooc_options;
      ooc_options.csr_path = out + ".csr";
      ooc_options.spill_dir = workdir;
      ooc_options.memory_budget_bytes = budget_bytes;
      ooc_options.build = build;
      ooc_options.steward = &steward;
      return GenerateRmatOutOfCore(rmat, std::move(ooc_options));
    }();
    if (!ooc.ok()) return FailStatus(ooc.status());
    // Preprocess sweeps the CSR front to back; tell the kernel.
    (void)ooc->file->Advise(MappedAdvice::kSequential);
    StatusOr<Tpa> tpa = Tpa::Preprocess(*ooc->graph, options);
    if (!tpa.ok()) return FailStatus(tpa.status());
    const double build_seconds = watch.ElapsedSeconds();
    watch = Stopwatch();
    const Status saved = tpa->SaveSnapshot(out);
    if (!saved.ok()) return FailStatus(saved);
    steward.Stop();
    std::printf(
        "built scale=%u n=%u m=%llu %s/%s out-of-core in %.3fs, saved '%s' "
        "in %.3fs (csr %llu bytes, peak rss %zu MB, budget %zu MB, "
        "%zu steward drops)\n",
        rmat.scale, ooc->graph->num_nodes(),
        static_cast<unsigned long long>(ooc->graph->num_edges()),
        precision.c_str(), storage.c_str(), build_seconds, out.c_str(),
        watch.ElapsedSeconds(),
        static_cast<unsigned long long>(ooc->file_bytes),
        PeakRssBytes() >> 20, budget_bytes >> 20, steward.drop_count());
    return 0;
  }

  StatusOr<Graph> graph = GenerateRmat(rmat, build);
  if (!graph.ok()) return FailStatus(graph.status());
  StatusOr<Tpa> tpa = Tpa::Preprocess(*graph, options);
  if (!tpa.ok()) return FailStatus(tpa.status());
  const double build_seconds = watch.ElapsedSeconds();
  watch = Stopwatch();
  const Status saved = tpa->SaveSnapshot(out);
  if (!saved.ok()) return FailStatus(saved);
  std::printf(
      "built scale=%u n=%u m=%llu %s/%s ordering=%s in %.3fs, saved '%s' "
      "in %.3fs\n",
      rmat.scale, graph->num_nodes(),
      static_cast<unsigned long long>(graph->num_edges()), precision.c_str(),
      storage.c_str(), ordering.c_str(), build_seconds, out.c_str(),
      watch.ElapsedSeconds());
  return 0;
}

int CmdGen(ArgList& args) {
  const std::string out = args.Value("--out", "");
  if (out.empty()) return Fail("gen requires --out FILE.csr");
  RmatOptions rmat = ParseRmatArgs(args);
  BuildOptions build;
  const std::string value_error = ParseValueArgs(args, build);
  if (!value_error.empty()) return Fail(value_error);
  const std::string precision = args.Value("--precision", "fp64");
  const std::string storage = args.Value("--value-storage", "explicit");
  const size_t budget_bytes = ParseBudgetBytes(args);
  const std::string workdir = args.Value("--workdir", "");
  if (!args.Unparsed().empty()) {
    return Fail("unknown argument: " + args.Unparsed());
  }

  ResidentSteward::Options steward_options;
  steward_options.budget_bytes = budget_bytes;
  ResidentSteward steward(steward_options);
  steward.Start();

  OutOfCoreOptions ooc_options;
  ooc_options.csr_path = out;
  ooc_options.spill_dir = workdir;
  ooc_options.memory_budget_bytes = budget_bytes;
  ooc_options.build = build;
  ooc_options.steward = &steward;

  Stopwatch watch;
  StatusOr<OutOfCoreGraph> ooc =
      GenerateRmatOutOfCore(rmat, std::move(ooc_options));
  if (!ooc.ok()) return FailStatus(ooc.status());
  steward.Stop();
  std::printf(
      "generated scale=%u n=%u m=%llu %s/%s into '%s' (%llu bytes) in %.3fs "
      "(peak rss %zu MB, budget %zu MB, %zu steward drops)\n",
      rmat.scale, ooc->graph->num_nodes(),
      static_cast<unsigned long long>(ooc->graph->num_edges()),
      precision.c_str(), storage.c_str(), out.c_str(),
      static_cast<unsigned long long>(ooc->file_bytes),
      watch.ElapsedSeconds(), PeakRssBytes() >> 20, budget_bytes >> 20,
      steward.drop_count());
  return 0;
}

int CmdInfo(ArgList& args) {
  const std::string path = args.Positional();
  if (path.empty()) return Fail("info requires a snapshot path");
  StatusOr<snapshot::SnapshotInfo> info = snapshot::ReadSnapshotInfo(path);
  if (!info.ok()) return FailStatus(info.status());
  std::printf(
      "snapshot '%s'\n"
      "  nodes=%llu edges=%llu precision=%s storage=%s\n"
      "  tiers: fp64=%d fp32=%d permutation=%d\n"
      "  tpa: c=%g eps=%g S=%d T=%d\n"
      "  file: %llu bytes, %u sections\n",
      path.c_str(), static_cast<unsigned long long>(info->num_nodes),
      static_cast<unsigned long long>(info->num_edges),
      std::string(la::PrecisionName(info->precision)).c_str(),
      info->value_storage == ValueStorage::kExplicit ? "explicit"
                                                     : "value-free",
      info->has_fp64 ? 1 : 0, info->has_fp32 ? 1 : 0,
      info->has_permutation ? 1 : 0, info->options.restart_probability,
      info->options.tolerance, info->options.family_window,
      info->options.stranger_start,
      static_cast<unsigned long long>(info->file_bytes), info->section_count);
  return 0;
}

int CmdVerify(ArgList& args) {
  const std::string path = args.Positional();
  if (path.empty()) return Fail("verify requires a snapshot path");
  Stopwatch watch;
  const Status status = snapshot::VerifySnapshot(path);
  if (!status.ok()) return FailStatus(status);
  std::printf("snapshot '%s' verified in %.3fs\n", path.c_str(),
              watch.ElapsedSeconds());
  return 0;
}

int CmdQuery(ArgList& args) {
  const std::string path = args.Positional();
  if (path.empty()) return Fail("query requires a snapshot path");
  const NodeId seed = static_cast<NodeId>(
      std::strtoul(args.Value("--seed", "0").c_str(), nullptr, 10));
  const int topk = static_cast<int>(
      std::strtol(args.Value("--topk", "10").c_str(), nullptr, 10));
  snapshot::LoadOptions load;
  if (args.Present("--copy")) load.mode = snapshot::LoadMode::kCopy;
  if (args.Present("--no-verify")) load.verify = false;
  const uint64_t budget_mb = std::strtoull(
      args.Value("--memory-budget-mb", "0").c_str(), nullptr, 10);
  if (!args.Unparsed().empty()) {
    return Fail("unknown argument: " + args.Unparsed());
  }
  ResidentSteward::Options steward_options;
  steward_options.budget_bytes = budget_mb << 20;
  ResidentSteward steward(steward_options);
  if (budget_mb > 0) {
    // Started before the load so the verification sweep over the payload
    // is already inside the budget, not just the query traffic after it.
    load.advice = MappedAdvice::kRandom;
    load.steward = &steward;
    steward.Start();
  }

  Stopwatch watch;
  StatusOr<snapshot::LoadedSnapshot> loaded =
      snapshot::LoadSnapshot(path, load);
  if (!loaded.ok()) return FailStatus(loaded.status());
  const double load_seconds = watch.ElapsedSeconds();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.top_k = topk;
  StatusOr<QueryEngine> engine = QueryEngine::Create(
      *loaded->graph, std::make_unique<TpaMethod>(std::move(*loaded->tpa)),
      engine_options);
  if (!engine.ok()) return FailStatus(engine.status());
  QueryResult result = engine->Query(seed);
  if (!result.status.ok()) return FailStatus(result.status);
  steward.Stop();

  std::printf("loaded '%s' in %.3fs (%s)\n", path.c_str(), load_seconds,
              load.mode == snapshot::LoadMode::kMap ? "mmap" : "copy");
  if (budget_mb > 0) {
    std::printf("peak RSS %.1f MB (budget %llu MB, %zu steward drops)\n",
                static_cast<double>(PeakRssBytes()) / (1 << 20),
                static_cast<unsigned long long>(budget_mb),
                steward.drop_count());
  }
  std::printf("top-%d for seed %u:\n", topk, seed);
  for (size_t i = 0; i < result.top.size(); ++i) {
    std::printf("  %2zu. node %u  score %.6e\n", i + 1, result.top[i].node,
                result.top[i].score);
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: tpa_snapshot build|gen|info|verify|query ...");
  }
  const std::string command = argv[1];
  ArgList args(argc, argv, 2);
  if (command == "build") return CmdBuild(args);
  if (command == "gen") return CmdGen(args);
  if (command == "info") return CmdInfo(args);
  if (command == "verify") return CmdVerify(args);
  if (command == "query") return CmdQuery(args);
  return Fail("unknown command: " + command);
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
