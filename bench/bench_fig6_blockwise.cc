/// Figure 6: ‖Ā^S f − f‖₁ on real-structured graphs vs random twins.
///
/// f is the family-part distribution of a random seed (S CPI iterations,
/// normalized direction retained as in the paper's Lemma 3 analysis); Ā^S f
/// propagates it S further steps.  Block-wise graphs keep the distribution
/// in place (small difference); Erdős–Rényi twins of the same size do not.

#include <iostream>

#include "core/cpi.h"
#include "eval/experiment.h"
#include "graph/presets.h"
#include "la/vector_ops.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

/// ‖Ā^S f − f‖₁ averaged over query seeds, with c = 0.15 and S = 5
/// (the paper's Figure 6 setting; the decay factor is excluded so the
/// statistic isolates the *shape* drift, as in Lemma 3's ‖Ā^{iS}f − f‖₁).
StatusOr<double> BlockwiseDrift(const Graph& graph,
                                const std::vector<NodeId>& seeds, int s) {
  CpiOptions family_options;
  family_options.terminal_iteration = s - 1;

  double total = 0.0;
  for (NodeId seed : seeds) {
    TPA_ASSIGN_OR_RETURN(Cpi::Result family,
                         Cpi::Run(graph, {seed}, family_options));
    std::vector<double> f = std::move(family.scores);

    // Propagate S steps without decay: f' = (Ã^T)^S f.
    std::vector<double> current = f, next(graph.num_nodes());
    for (int step = 0; step < s; ++step) {
      graph.MultiplyTranspose(current, next);
      current.swap(next);
    }
    total += la::L1Distance(current, f);
  }
  return total / static_cast<double>(seeds.size());
}

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  auto specs = args->SelectDatasets({"slashdot-sim", "google-sim",
                                     "pokec-sim", "livejournal-sim",
                                     "wikilink-sim"});
  if (!specs.ok()) {
    std::cerr << specs.status() << "\n";
    return 1;
  }

  std::cout << "== Figure 6: ||A^S f - f||_1, block-structured vs random "
               "(S=5, c=0.15) ==\n";
  TablePrinter table({"Dataset", "RealGraph", "RandomGraph"});
  for (const DatasetSpec& spec : *specs) {
    auto real = MakePresetGraph(spec, args->scale);
    if (!real.ok()) {
      std::cerr << real.status() << "\n";
      return 1;
    }
    auto random_twin = MakeRandomTwin(*real);
    if (!random_twin.ok()) {
      std::cerr << random_twin.status() << "\n";
      return 1;
    }
    const std::vector<NodeId> seeds = PickQuerySeeds(*real, args->seeds);
    auto real_drift = BlockwiseDrift(*real, seeds, 5);
    auto random_drift = BlockwiseDrift(*random_twin, seeds, 5);
    if (!real_drift.ok() || !random_drift.ok()) {
      std::cerr << "drift computation failed\n";
      return 1;
    }
    table.AddRow({std::string(spec.name),
                  TablePrinter::FormatDouble(*real_drift, 4),
                  TablePrinter::FormatDouble(*random_drift, 4)});
  }
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
