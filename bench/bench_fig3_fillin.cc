/// Figure 3: distribution of nonzeros in (Ã^T)^i for i = 1, 3, 5, 7 on the
/// Slashdot stand-in, rendered as a 16×16 density grid (the paper's spy
/// plots).  Darker cells = denser submatrices; the grids fill in as i grows.

#include <cstdio>
#include <iostream>

#include "eval/experiment.h"
#include "eval/matrix_power.h"
#include "graph/presets.h"

namespace tpa {
namespace {

/// Maps a density in [0,1] to a glyph ramp.
char DensityGlyph(double density) {
  constexpr char kRamp[] = " .:-=+*#%@";
  const int idx =
      std::min(9, static_cast<int>(density * 30.0));  // saturate early
  return kRamp[idx];
}

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  auto spec = FindDatasetSpec("slashdot-sim");
  if (!spec.ok()) {
    std::cerr << spec.status() << "\n";
    return 1;
  }
  // The dense analysis is Ω(n²): default to a quarter-scale graph.
  const double scale = args->scale == 1.0 ? 0.25 : args->scale;
  auto graph = MakePresetGraph(*spec, scale);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }

  std::cout << "== Figure 3: nonzero fill-in of (A~^T)^i on slashdot-sim"
            << " (n=" << graph->num_nodes() << ", scale=" << scale << ") ==\n";
  for (int power : {1, 3, 5, 7}) {
    auto grid = SpyGrid(*graph, power, 16);
    if (!grid.ok()) {
      std::cerr << grid.status() << "\n";
      return 1;
    }
    double total = 0.0;
    for (size_t r = 0; r < grid->rows(); ++r) {
      for (size_t c = 0; c < grid->cols(); ++c) total += grid->At(r, c);
    }
    std::printf("\n(A~^T)^%d  overall density %.4f\n", power,
                total / static_cast<double>(grid->rows() * grid->cols()));
    for (size_t r = 0; r < grid->rows(); ++r) {
      std::putchar(' ');
      for (size_t c = 0; c < grid->cols(); ++c) {
        std::putchar(DensityGlyph(grid->At(r, c)));
      }
      std::putchar('\n');
    }
  }
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
