/// Figure 1(a) + 1(b): size of preprocessed data and preprocessing time of
/// every preprocessing method (TPA, BEAR-APPROX, NB-LIN, HubPPR, FORA)
/// across the dataset suite.  Methods whose preprocessing exceeds the memory
/// budget print "OOM" — the paper's missing bars.
///
/// A second, informational table compares TPA cold starts: full graph
/// rebuild + Tpa::Preprocess versus opening a snapshot file and mmapping
/// its sections.  `--json PATH` records the cold-start rows machine-
/// readably (the CI BENCH_*.json artifact; not regression-gated).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/tpa.h"
#include "eval/experiment.h"
#include "graph/presets.h"
#include "method/registry.h"
#include "snapshot/snapshot.h"
#include "util/mem_stats.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

struct ColdStartRow {
  std::string dataset;
  NodeId nodes = 0;
  uint64_t edges = 0;
  double rebuild_seconds = 0.0;      // GenerateGraph + Tpa::Preprocess
  uint64_t snapshot_bytes = 0;
  double load_map_seconds = 0.0;     // open + mmap, no payload verification
  double load_verify_seconds = 0.0;  // open + mmap + full checksum pass
  /// VmHWM when the row was recorded — a running process-lifetime maximum.
  size_t peak_rss_bytes = 0;
};

/// Measures one dataset's cold-start pair.  The snapshot is written to (and
/// removed from) `snapshot_path`.
StatusOr<ColdStartRow> MeasureColdStart(const DatasetSpec& spec,
                                        double scale,
                                        const std::string& snapshot_path) {
  ColdStartRow row;
  row.dataset = std::string(spec.name);

  TpaOptions options;
  options.family_window = spec.s;
  options.stranger_start = spec.t;

  // Full cold start: build the graph from its generator and preprocess.
  Stopwatch watch;
  TPA_ASSIGN_OR_RETURN(Graph graph, MakePresetGraph(spec, scale));
  TPA_ASSIGN_OR_RETURN(Tpa tpa, Tpa::Preprocess(graph, options));
  row.rebuild_seconds = watch.ElapsedSeconds();
  row.nodes = graph.num_nodes();
  row.edges = graph.num_edges();

  TPA_RETURN_IF_ERROR(tpa.SaveSnapshot(snapshot_path));
  TPA_ASSIGN_OR_RETURN(snapshot::SnapshotInfo info,
                       snapshot::ReadSnapshotInfo(snapshot_path));
  row.snapshot_bytes = info.file_bytes;

  // Snapshot cold start, twice: the open+map path serving engines take on
  // a trusted local file, and the verified path that CRCs every payload.
  snapshot::LoadOptions load;
  load.verify = false;
  watch = Stopwatch();
  TPA_ASSIGN_OR_RETURN(snapshot::LoadedSnapshot mapped,
                       snapshot::LoadSnapshot(snapshot_path, load));
  row.load_map_seconds = watch.ElapsedSeconds();

  load.verify = true;
  watch = Stopwatch();
  TPA_ASSIGN_OR_RETURN(snapshot::LoadedSnapshot verified,
                       snapshot::LoadSnapshot(snapshot_path, load));
  row.load_verify_seconds = watch.ElapsedSeconds();

  std::remove(snapshot_path.c_str());
  row.peak_rss_bytes = PeakRssBytes();
  return row;
}

Status WriteColdStartJson(const std::vector<ColdStartRow>& rows,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open " + path);
  out << "{\n  \"benchmark\": \"fig1_preprocess_coldstart\",\n  \"rows\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ColdStartRow& row = rows[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"dataset\": \"" << row.dataset << "\""
        << ", \"nodes\": " << row.nodes << ", \"edges\": " << row.edges
        << ", \"rebuild_s\": " << row.rebuild_seconds
        << ", \"snapshot_bytes\": " << row.snapshot_bytes
        << ", \"load_map_s\": " << row.load_map_seconds
        << ", \"load_verify_s\": " << row.load_verify_seconds
        << ", \"speedup_map\": "
        << (row.load_map_seconds > 0.0
                ? row.rebuild_seconds / row.load_map_seconds
                : 0.0)
        << ", \"peak_rss_bytes\": " << row.peak_rss_bytes << "}";
  }
  out << "\n  ]\n}\n";
  if (!out.good()) return InternalError("short write to " + path);
  return OkStatus();
}

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  std::vector<std::string> all_names;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    all_names.emplace_back(spec.name);
  }
  auto specs = args->SelectDatasets(all_names);
  if (!specs.ok()) {
    std::cerr << specs.status() << "\n";
    return 1;
  }

  std::cout << "== Figure 1(a)/(b): preprocessed data size and "
               "preprocessing time (budget="
            << TablePrinter::FormatBytes(args->budget_bytes) << ") ==\n";
  TablePrinter table(
      {"Dataset", "Method", "PreprocessedData", "PreprocessTime(s)"});

  for (const DatasetSpec& spec : *specs) {
    auto graph = MakePresetGraph(spec, args->scale);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    MethodConfig config;
    config.tpa_family_window = spec.s;
    config.tpa_stranger_start = spec.t;

    for (std::string_view name : PreprocessingMethodNames()) {
      auto method = CreateMethod(name, config);
      if (!method.ok()) {
        std::cerr << method.status() << "\n";
        return 1;
      }
      auto result = MeasurePreprocess(**method, *graph, args->budget_bytes);
      if (!result.ok()) {
        std::cerr << spec.name << "/" << name << ": " << result.status()
                  << "\n";
        return 1;
      }
      if (result->out_of_memory) {
        table.AddRow({std::string(spec.name), std::string(name), "OOM",
                      "OOM"});
      } else {
        table.AddRow({std::string(spec.name), std::string(name),
                      TablePrinter::FormatBytes(result->preprocessed_bytes),
                      TablePrinter::FormatDouble(result->seconds, 3)});
      }
    }
  }
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";

  // Cold-start comparison (informational): the preprocessing above is
  // one-time; what a serving process actually pays at startup is either a
  // full rebuild or a snapshot open+map.
  std::cout << "\n== TPA cold start: rebuild+preprocess vs snapshot "
               "open+map ==\n";
  TablePrinter cold_table({"Dataset", "Rebuild(s)", "SnapshotSize",
                           "OpenMap(s)", "VerifiedLoad(s)", "Speedup"});
  std::vector<ColdStartRow> cold_rows;
  for (const DatasetSpec& spec : *specs) {
    auto row = MeasureColdStart(spec, args->scale,
                                "fig1_coldstart_" + std::string(spec.name) +
                                    ".tpasnap");
    if (!row.ok()) {
      std::cerr << spec.name << ": " << row.status() << "\n";
      return 1;
    }
    cold_table.AddRow(
        {row->dataset, TablePrinter::FormatDouble(row->rebuild_seconds, 3),
         TablePrinter::FormatBytes(row->snapshot_bytes),
         TablePrinter::FormatDouble(row->load_map_seconds, 4),
         TablePrinter::FormatDouble(row->load_verify_seconds, 4),
         TablePrinter::FormatDouble(
             row->load_map_seconds > 0.0
                 ? row->rebuild_seconds / row->load_map_seconds
                 : 0.0,
             1) +
             "x"});
    cold_rows.push_back(std::move(*row));
  }
  cold_table.PrintText(std::cout);
  if (!args->json_path.empty()) {
    Status json = WriteColdStartJson(cold_rows, args->json_path);
    if (!json.ok()) std::cerr << json << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
