/// Figure 1(a) + 1(b): size of preprocessed data and preprocessing time of
/// every preprocessing method (TPA, BEAR-APPROX, NB-LIN, HubPPR, FORA)
/// across the dataset suite.  Methods whose preprocessing exceeds the memory
/// budget print "OOM" — the paper's missing bars.

#include <iostream>

#include "eval/experiment.h"
#include "graph/presets.h"
#include "method/registry.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  std::vector<std::string> all_names;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    all_names.emplace_back(spec.name);
  }
  auto specs = args->SelectDatasets(all_names);
  if (!specs.ok()) {
    std::cerr << specs.status() << "\n";
    return 1;
  }

  std::cout << "== Figure 1(a)/(b): preprocessed data size and "
               "preprocessing time (budget="
            << TablePrinter::FormatBytes(args->budget_bytes) << ") ==\n";
  TablePrinter table(
      {"Dataset", "Method", "PreprocessedData", "PreprocessTime(s)"});

  for (const DatasetSpec& spec : *specs) {
    auto graph = MakePresetGraph(spec, args->scale);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    MethodConfig config;
    config.tpa_family_window = spec.s;
    config.tpa_stranger_start = spec.t;

    for (std::string_view name : PreprocessingMethodNames()) {
      auto method = CreateMethod(name, config);
      if (!method.ok()) {
        std::cerr << method.status() << "\n";
        return 1;
      }
      auto result = MeasurePreprocess(**method, *graph, args->budget_bytes);
      if (!result.ok()) {
        std::cerr << spec.name << "/" << name << ": " << result.status()
                  << "\n";
        return 1;
      }
      if (result->out_of_memory) {
        table.AddRow({std::string(spec.name), std::string(name), "OOM",
                      "OOM"});
      } else {
        table.AddRow({std::string(spec.name), std::string(name),
                      TablePrinter::FormatBytes(result->preprocessed_bytes),
                      TablePrinter::FormatDouble(result->seconds, 3)});
      }
    }
  }
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
