/// Out-of-core pipeline benchmark: for each requested R-MAT scale, runs the
/// full file-backed lifecycle — streamed generation through the external-
/// memory sorter into a mapped CSR, Tpa::Preprocess over the mapping,
/// snapshot save, and a warm-started query — under a ResidentSteward
/// budget, and records wall times, on-disk bytes, and peak RSS (VmHWM).
///
/// VmHWM is a process-lifetime high-water mark, so scales run in ascending
/// order and each row's peak is the running maximum — dominated by the
/// row's own scale, and only the largest scale's peak is judged against the
/// budget.  `--enforce-budget` turns that check into the exit status (the
/// CI smoke gate); without it the numbers are informational
/// (BENCH_outofcore.json artifact).
///
/// Flags:
///   --scales 20,21,22,23   comma-separated ascending R-MAT scales
///   --edges-per-node 16    edge draws per node (m = n * this)
///   --memory-budget-mb 640 steward budget; 0 disables stewarding
///   --precision fp64|fp32  value tier (default fp64)
///   --value-storage value-free|explicit  (default value-free)
///   --workdir DIR          where the CSR/spill/snapshot files live
///   --json PATH            machine-readable rows
///   --enforce-budget       exit 1 if peak RSS ever exceeds the budget
///   --keep-files           don't delete the CSR/snapshot after each scale

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/tpa.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "graph/out_of_core.h"
#include "method/tpa_method.h"
#include "snapshot/snapshot.h"
#include "util/mem_stats.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

struct Args {
  std::vector<uint32_t> scales = {20, 21, 22, 23};
  uint64_t edges_per_node = 16;
  size_t budget_bytes = size_t{640} << 20;
  la::Precision precision = la::Precision::kFloat64;
  ValueStorage value_storage = ValueStorage::kRowConstant;
  std::string workdir = ".";
  std::string json_path;
  bool enforce_budget = false;
  bool keep_files = false;
};

struct Row {
  uint32_t scale = 0;
  NodeId nodes = 0;
  uint64_t edges = 0;
  double generate_seconds = 0.0;    // edge draws + spill + CSR write passes
  double preprocess_seconds = 0.0;  // Tpa::Preprocess over the mapping
  double save_seconds = 0.0;        // snapshot write
  double query_seconds = 0.0;       // warm-started single query
  uint64_t csr_bytes = 0;
  uint64_t snapshot_bytes = 0;
  size_t peak_rss_bytes = 0;  // VmHWM after this scale (running max)
  size_t steward_drops = 0;
  bool within_budget = true;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--scales") {
      const char* value = next();
      if (value == nullptr) return false;
      args.scales.clear();
      for (const char* p = value; *p != '\0';) {
        char* end = nullptr;
        args.scales.push_back(
            static_cast<uint32_t>(std::strtoul(p, &end, 10)));
        if (end == p) return false;
        p = *end == ',' ? end + 1 : end;
      }
    } else if (flag == "--edges-per-node") {
      const char* value = next();
      if (value == nullptr) return false;
      args.edges_per_node = std::strtoull(value, nullptr, 10);
    } else if (flag == "--memory-budget-mb") {
      const char* value = next();
      if (value == nullptr) return false;
      args.budget_bytes = static_cast<size_t>(
                              std::strtoull(value, nullptr, 10))
                          << 20;
    } else if (flag == "--precision") {
      const char* value = next();
      if (value == nullptr) return false;
      if (std::strcmp(value, "fp32") == 0) {
        args.precision = la::Precision::kFloat32;
      } else if (std::strcmp(value, "fp64") != 0) {
        return false;
      }
    } else if (flag == "--value-storage") {
      const char* value = next();
      if (value == nullptr) return false;
      if (std::strcmp(value, "explicit") == 0) {
        args.value_storage = ValueStorage::kExplicit;
      } else if (std::strcmp(value, "value-free") != 0) {
        return false;
      }
    } else if (flag == "--workdir") {
      const char* value = next();
      if (value == nullptr) return false;
      args.workdir = value;
    } else if (flag == "--json") {
      const char* value = next();
      if (value == nullptr) return false;
      args.json_path = value;
    } else if (flag == "--enforce-budget") {
      args.enforce_budget = true;
    } else if (flag == "--keep-files") {
      args.keep_files = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

StatusOr<Row> RunScale(const Args& args, uint32_t scale) {
  Row row;
  row.scale = scale;

  const std::string csr_path =
      args.workdir + "/ooc_s" + std::to_string(scale) + ".csr";
  const std::string snap_path =
      args.workdir + "/ooc_s" + std::to_string(scale) + ".tpasnap";

  ResidentSteward::Options steward_options;
  steward_options.budget_bytes = args.budget_bytes;
  ResidentSteward steward(steward_options);
  steward.Start();

  RmatOptions rmat;
  rmat.scale = scale;
  rmat.edges = (uint64_t{1} << scale) * args.edges_per_node;
  OutOfCoreOptions ooc_options;
  ooc_options.csr_path = csr_path;
  ooc_options.memory_budget_bytes = args.budget_bytes;
  ooc_options.build.value_precision = args.precision;
  ooc_options.build.value_storage = args.value_storage;
  ooc_options.steward = &steward;

  Stopwatch watch;
  TPA_ASSIGN_OR_RETURN(OutOfCoreGraph ooc,
                       GenerateRmatOutOfCore(rmat, std::move(ooc_options)));
  row.generate_seconds = watch.ElapsedSeconds();
  row.nodes = ooc.graph->num_nodes();
  row.edges = ooc.graph->num_edges();
  row.csr_bytes = ooc.file_bytes;

  // Preprocess streams the CSR front to back, repeatedly.
  (void)ooc.file->Advise(MappedAdvice::kSequential);
  watch = Stopwatch();
  TPA_ASSIGN_OR_RETURN(Tpa tpa, Tpa::Preprocess(*ooc.graph, {}));
  row.preprocess_seconds = watch.ElapsedSeconds();

  watch = Stopwatch();
  TPA_RETURN_IF_ERROR(tpa.SaveSnapshot(snap_path));
  row.save_seconds = watch.ElapsedSeconds();
  TPA_ASSIGN_OR_RETURN(snapshot::SnapshotInfo info,
                       snapshot::ReadSnapshotInfo(snap_path));
  row.snapshot_bytes = info.file_bytes;

  // Serve one query off a fresh mapped load of the snapshot, the way a
  // warm-started process would; drop the build's pages first so the query
  // pays its own faults inside the same budget.
  {
    Tpa preprocessed = std::move(tpa);
    (void)preprocessed;  // Tpa borrowed ooc.graph; release before the graph
  }
  steward.DropAll();
  snapshot::LoadOptions load;
  load.verify = false;
  load.advice = MappedAdvice::kRandom;
  // The serving sweep pages the whole snapshot in; without this the
  // query phase is the one mapping the steward can't reclaim.
  load.steward = &steward;
  watch = Stopwatch();
  TPA_ASSIGN_OR_RETURN(snapshot::LoadedSnapshot loaded,
                       snapshot::LoadSnapshot(snap_path, load));
  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.top_k = 10;
  TPA_ASSIGN_OR_RETURN(
      QueryEngine engine,
      QueryEngine::Create(*loaded.graph,
                          std::make_unique<TpaMethod>(std::move(*loaded.tpa)),
                          engine_options));
  QueryResult result = engine.Query(1);
  TPA_RETURN_IF_ERROR(result.status);
  row.query_seconds = watch.ElapsedSeconds();

  steward.Stop();
  row.steward_drops = steward.drop_count();
  row.peak_rss_bytes = PeakRssBytes();
  row.within_budget =
      args.budget_bytes == 0 || row.peak_rss_bytes == 0 ||
      row.peak_rss_bytes <= args.budget_bytes;

  if (!args.keep_files) {
    std::remove(csr_path.c_str());
    std::remove(snap_path.c_str());
  }
  return row;
}

Status WriteJson(const Args& args, const std::vector<Row>& rows,
                 const std::string& path) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open " + path);
  out << "{\n  \"benchmark\": \"outofcore\",\n  \"budget_bytes\": "
      << args.budget_bytes << ",\n  \"precision\": \""
      << la::PrecisionName(args.precision) << "\",\n  \"value_storage\": \""
      << (args.value_storage == ValueStorage::kExplicit ? "explicit"
                                                        : "value-free")
      << "\",\n  \"rows\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"scale\": " << row.scale << ", \"nodes\": " << row.nodes
        << ", \"edges\": " << row.edges
        << ", \"generate_s\": " << row.generate_seconds
        << ", \"preprocess_s\": " << row.preprocess_seconds
        << ", \"save_s\": " << row.save_seconds
        << ", \"query_s\": " << row.query_seconds
        << ", \"csr_bytes\": " << row.csr_bytes
        << ", \"snapshot_bytes\": " << row.snapshot_bytes
        << ", \"disk_bytes\": " << (row.csr_bytes + row.snapshot_bytes)
        << ", \"peak_rss_bytes\": " << row.peak_rss_bytes
        << ", \"steward_drops\": " << row.steward_drops
        << ", \"within_budget\": " << (row.within_budget ? "true" : "false")
        << "}";
  }
  out << "\n  ]\n}\n";
  if (!out.good()) return InternalError("short write to " + path);
  return OkStatus();
}

int Run(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: bench_outofcore [--scales 20,21,22,23] "
                 "[--edges-per-node N] [--memory-budget-mb M] "
                 "[--precision fp64|fp32] "
                 "[--value-storage value-free|explicit] [--workdir DIR] "
                 "[--json PATH] [--enforce-budget] [--keep-files]\n");
    return 1;
  }

  std::cout << "== out-of-core pipeline (budget="
            << TablePrinter::FormatBytes(args.budget_bytes) << ", "
            << la::PrecisionName(args.precision) << "/"
            << (args.value_storage == ValueStorage::kExplicit ? "explicit"
                                                              : "value-free")
            << ") ==\n";
  TablePrinter table({"Scale", "Nodes", "Edges", "Generate(s)",
                      "Preprocess(s)", "Save(s)", "Query(s)", "Disk",
                      "PeakRSS", "Drops", "InBudget"});

  std::vector<Row> rows;
  bool all_within_budget = true;
  for (uint32_t scale : args.scales) {
    auto row = RunScale(args, scale);
    if (!row.ok()) {
      std::cerr << "scale " << scale << ": " << row.status() << "\n";
      return 1;
    }
    table.AddRow({std::to_string(row->scale), std::to_string(row->nodes),
                  std::to_string(row->edges),
                  TablePrinter::FormatDouble(row->generate_seconds, 2),
                  TablePrinter::FormatDouble(row->preprocess_seconds, 2),
                  TablePrinter::FormatDouble(row->save_seconds, 2),
                  TablePrinter::FormatDouble(row->query_seconds, 3),
                  TablePrinter::FormatBytes(row->csr_bytes +
                                            row->snapshot_bytes),
                  TablePrinter::FormatBytes(row->peak_rss_bytes),
                  std::to_string(row->steward_drops),
                  row->within_budget ? "yes" : "NO"});
    all_within_budget = all_within_budget && row->within_budget;
    rows.push_back(std::move(*row));
  }
  table.PrintText(std::cout);

  if (!args.json_path.empty()) {
    Status json = WriteJson(args, rows, args.json_path);
    if (!json.ok()) {
      std::cerr << json << "\n";
      return 1;
    }
  }
  if (args.enforce_budget && !all_within_budget) {
    std::cerr << "peak RSS exceeded the " << (args.budget_bytes >> 20)
              << " MB budget\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
