/// Figure 4: (a) number of nonzeros in (Ã^T)^i and (b) the column-difference
/// statistic C_i = (1/n)·Σ_{j≠s}‖c_s − c_j‖₁ (averaged over random seeds) as
/// i grows, on the Slashdot and Google stand-ins.  The paper's claim: nnz
/// rises while C_i falls, which is why the stranger approximation beats its
/// worst-case bound.

#include <iostream>

#include "eval/experiment.h"
#include "eval/matrix_power.h"
#include "graph/presets.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  auto specs = args->SelectDatasets({"slashdot-sim", "google-sim"});
  if (!specs.ok()) {
    std::cerr << specs.status() << "\n";
    return 1;
  }

  TablePrinter table({"Dataset", "i", "nnz", "C_i"});
  for (const DatasetSpec& spec : *specs) {
    // Dense analysis: default to a reduced scale per dataset so n stays in
    // the low thousands.
    const double scale =
        args->scale == 1.0 ? 1500.0 / spec.nodes : args->scale;
    auto graph = MakePresetGraph(spec, scale);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    const std::vector<NodeId> seeds =
        PickQuerySeeds(*graph, std::min<size_t>(args->seeds, 10));
    auto stats = AnalyzeMatrixPowers(*graph, 7, seeds);
    if (!stats.ok()) {
      std::cerr << stats.status() << "\n";
      return 1;
    }
    for (const MatrixPowerStats& entry : *stats) {
      if (entry.power % 2 == 0) continue;  // the paper plots i = 1,3,5,7
      table.AddRow({std::string(spec.name), std::to_string(entry.power),
                    std::to_string(entry.nnz),
                    TablePrinter::FormatDouble(entry.avg_ci, 4)});
    }
  }

  std::cout << "== Figure 4: nnz((A~^T)^i) and C_i vs i ==\n";
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
