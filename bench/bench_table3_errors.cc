/// Table III: actual L1 errors of the neighbor approximation (NA), stranger
/// approximation (SA), and the combined TPA, against their theoretical
/// bounds (Lemmas 1, 3; Theorem 2), per dataset with the Table II S and T.

#include <iostream>

#include "core/cpi.h"
#include "core/tpa.h"
#include "eval/experiment.h"
#include "graph/presets.h"
#include "la/vector_ops.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  std::vector<std::string> all_names;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    all_names.emplace_back(spec.name);
  }
  auto specs = args->SelectDatasets(all_names);
  if (!specs.ok()) {
    std::cerr << specs.status() << "\n";
    return 1;
  }
  const double c = 0.15;

  std::cout << "== Table III: approximation errors vs theoretical bounds, "
               "avg over "
            << args->seeds << " seeds ==\n";
  TablePrinter table({"Dataset", "NA-bound", "NA-actual", "NA-%", "SA-bound",
                      "SA-actual", "SA-%", "TPA-bound", "TPA-actual",
                      "TPA-%"});

  for (const DatasetSpec& spec : *specs) {
    auto graph = MakePresetGraph(spec, args->scale);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    TpaOptions options;
    options.family_window = spec.s;
    options.stranger_start = spec.t;
    auto tpa = Tpa::Preprocess(*graph, options);
    if (!tpa.ok()) {
      std::cerr << tpa.status() << "\n";
      return 1;
    }

    CpiOptions exact_options;
    exact_options.tolerance = 1e-12;
    double na_error = 0.0, sa_error = 0.0, total_error = 0.0;
    const std::vector<NodeId> seeds = PickQuerySeeds(*graph, args->seeds);
    for (NodeId seed : seeds) {
      std::vector<double> q(graph->num_nodes(), 0.0);
      q[seed] = 1.0;
      auto windows =
          Cpi::RunWindowed(*graph, q, {0, spec.s, spec.t}, exact_options);
      if (!windows.ok()) {
        std::cerr << windows.status() << "\n";
        return 1;
      }
      Tpa::QueryParts parts = tpa->QueryDecomposed(seed);
      na_error += la::L1Distance(parts.neighbor_est, (*windows)[1]);
      sa_error += la::L1Distance(tpa->stranger_scores(), (*windows)[2]);
      std::vector<double> exact = (*windows)[0];
      la::Axpy(1.0, (*windows)[1], exact);
      la::Axpy(1.0, (*windows)[2], exact);
      total_error += la::L1Distance(parts.total, exact);
    }
    const double n = static_cast<double>(seeds.size());
    na_error /= n;
    sa_error /= n;
    total_error /= n;

    const double na_bound = NeighborErrorBound(c, spec.s, spec.t);
    const double sa_bound = StrangerErrorBound(c, spec.t);
    const double total_bound = TotalErrorBound(c, spec.s);
    auto percent = [](double actual, double bound) {
      return TablePrinter::FormatDouble(100.0 * actual / bound, 1) + "%";
    };
    table.AddRow({std::string(spec.name),
                  TablePrinter::FormatDouble(na_bound, 4),
                  TablePrinter::FormatDouble(na_error, 4),
                  percent(na_error, na_bound),
                  TablePrinter::FormatDouble(sa_bound, 4),
                  TablePrinter::FormatDouble(sa_error, 4),
                  percent(sa_error, sa_bound),
                  TablePrinter::FormatDouble(total_bound, 4),
                  TablePrinter::FormatDouble(total_error, 4),
                  percent(total_error, total_bound)});
  }
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
