/// Figure 7: recall of top-k RWR vertices (k = 100..500) for every
/// approximate method on the Slashdot / Pokec / WikiLink / Twitter
/// stand-ins, against the exact top-k.  Rows are "OOM" when a method cannot
/// preprocess within the budget (the paper's omitted lines).

#include <iostream>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/oracle.h"
#include "graph/presets.h"
#include "method/registry.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  auto specs = args->SelectDatasets(
      {"slashdot-sim", "pokec-sim", "wikilink-sim", "twitter-sim"});
  if (!specs.ok()) {
    std::cerr << specs.status() << "\n";
    return 1;
  }
  const std::vector<size_t> ks = {100, 200, 300, 400, 500};

  std::cout << "== Figure 7: recall of top-k RWR vertices, avg over "
            << args->seeds << " seeds ==\n";
  std::vector<std::string> headers = {"Dataset", "Method"};
  for (size_t k : ks) headers.push_back("k=" + std::to_string(k));
  TablePrinter table(headers);

  for (const DatasetSpec& spec : *specs) {
    auto graph = MakePresetGraph(spec, args->scale);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    const std::vector<NodeId> seeds = PickQuerySeeds(*graph, args->seeds);
    GroundTruthOracle oracle(*graph);
    MethodConfig config;
    config.tpa_family_window = spec.s;
    config.tpa_stranger_start = spec.t;

    for (std::string_view name : ApproximateMethodNames()) {
      auto method = CreateMethod(name, config);
      if (!method.ok()) {
        std::cerr << method.status() << "\n";
        return 1;
      }
      auto prep = MeasurePreprocess(**method, *graph, args->budget_bytes);
      if (!prep.ok()) {
        std::cerr << spec.name << "/" << name << ": " << prep.status() << "\n";
        return 1;
      }
      std::vector<std::string> row = {std::string(spec.name),
                                      std::string(name)};
      if (prep->out_of_memory) {
        for (size_t i = 0; i < ks.size(); ++i) row.push_back("OOM");
        table.AddRow(std::move(row));
        continue;
      }
      std::vector<double> recall_sum(ks.size(), 0.0);
      for (NodeId seed : seeds) {
        auto exact = oracle.Exact(seed);
        if (!exact.ok()) {
          std::cerr << exact.status() << "\n";
          return 1;
        }
        auto scores = (*method)->Query(seed);
        if (!scores.ok()) {
          std::cerr << scores.status() << "\n";
          return 1;
        }
        for (size_t i = 0; i < ks.size(); ++i) {
          recall_sum[i] += RecallAtK(*scores, *exact, ks[i]);
        }
      }
      for (size_t i = 0; i < ks.size(); ++i) {
        row.push_back(TablePrinter::FormatDouble(
            recall_sum[i] / static_cast<double>(seeds.size()), 3));
      }
      table.AddRow(std::move(row));
    }
  }
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
