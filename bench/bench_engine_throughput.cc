/// Query-engine throughput: queries/sec of batched multi-threaded serving
/// versus single-threaded sequential Tpa::Query, swept over thread count and
/// batch size on a generated ≥100k-node R-MAT graph — including the SpMM
/// group path (`batch_block_size`) against the per-seed fan-out baseline.
///
///   $ ./bench_engine_throughput [--scale N] [--edges M] [--queries Q]
///                               [--topk K] [--json PATH]
///                               [--precision fp64|fp32]
///
/// Defaults: scale 17 (131072 nodes), 1.5M edge draws, 64 distinct query
/// seeds, top-k sweep at k = 10 (0 disables it).  Also reports top-k
/// extraction, bound-driven top-k, and warm-cache serving modes.
/// `--precision fp32` materializes the graph (and therefore the whole
/// serving stack — CSR values, CPI workspaces, cache entries) at the fp32
/// tier; the default fp64 run additionally records fp32 serving rows and
/// value-free (ValueStorage::kRowConstant, index-only CSR) serving rows so
/// the tier and layout comparisons land in the JSON of every run.
/// An open-loop overload sweep submits deadline-carrying queries at a
/// multiple of capacity under each degradation policy (fail, certified
/// partial, fp32 shed) and records the deadline-hit rate, degraded-answer
/// fraction, and shed rate.  `--json PATH` additionally emits the results
/// machine-readable (e.g. BENCH_engine_throughput.json) so the perf
/// trajectory is tracked across PRs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tpa.h"
#include "engine/async_query_engine.h"
#include "engine/query_engine.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "la/precision.h"
#include "method/tpa_method.h"
#include "util/mem_stats.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

struct Args {
  uint32_t scale = 17;
  uint64_t edges = 1'500'000;
  int queries = 64;
  /// k of the bound-driven top-k sweep.
  int topk = 10;
  std::string json_path;
  std::string precision = "fp64";
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      args.scale = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--edges") == 0) {
      args.edges = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      args.queries = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--topk") == 0) {
      args.topk = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.json_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--precision") == 0) {
      args.precision = argv[i + 1];
    }
  }
  return args;
}

/// One measured configuration, mirrored into the text table and the JSON
/// report.
struct BenchRow {
  std::string mode;
  int threads = 1;
  size_t batch = 0;
  double qps = 0.0;
  double speedup = 0.0;  // vs sequential Tpa::Query
  /// Seeds per dispatched serving job on the async path (coalescing
  /// signal); 0 for the blocking modes.
  double mean_group = 0.0;
  /// Concurrent closed-loop clients (async closed-loop rows only).
  int clients = 0;
  /// Offered arrival rate as a multiple of sequential qps (async open-loop
  /// rows only).
  double rate_multiplier = 0.0;
  /// Overload-sweep outcome mix (deadline-carrying rows only): fraction of
  /// queries answered before their deadline (exact or degraded), fraction
  /// answered as certified partials, fraction served by the fp32 shed tier.
  double deadline_hit_rate = 0.0;
  double degraded_fraction = 0.0;
  double shed_rate = 0.0;
  /// VmHWM when the row was recorded — a running process-lifetime maximum,
  /// so later rows dominate earlier ones.
  size_t peak_rss_bytes = 0;
};

void WriteJson(const std::string& path, const Args& args,
               la::Precision tier, uint32_t nodes, uint64_t edges,
               double seq_qps, const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"benchmark\": \"engine_throughput\",\n";
  out << "  \"precision\": \"" << la::PrecisionName(tier) << "\",\n";
  out << "  \"graph\": {\"scale\": " << args.scale << ", \"nodes\": " << nodes
      << ", \"edges\": " << edges << "},\n";
  out << "  \"queries\": " << args.queries << ",\n";
  out << "  \"sequential_qps\": " << seq_qps << ",\n";
  out << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out << "    {\"mode\": \"" << row.mode << "\", \"threads\": "
        << row.threads << ", \"batch\": " << row.batch << ", \"qps\": "
        << row.qps << ", \"speedup_vs_sequential\": " << row.speedup
        << ", \"mean_group_size\": " << row.mean_group
        << ", \"clients\": " << row.clients
        << ", \"arrival_rate_multiplier\": " << row.rate_multiplier
        << ", \"deadline_hit_rate\": " << row.deadline_hit_rate
        << ", \"degraded_fraction\": " << row.degraded_fraction
        << ", \"shed_rate\": " << row.shed_rate
        << ", \"peak_rss_bytes\": " << row.peak_rss_bytes << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

std::vector<NodeId> QuerySeeds(const Graph& graph, int count) {
  std::vector<NodeId> seeds(count);
  // Deterministic spread across the id space.
  for (int i = 0; i < count; ++i) {
    seeds[i] = static_cast<NodeId>(
        (static_cast<uint64_t>(i) * 2654435761u) % graph.num_nodes());
  }
  return seeds;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.queries < 1 || args.edges < 1) {
    std::fprintf(stderr, "--queries and --edges must be at least 1\n");
    return 1;
  }
  if (args.precision != "fp64" && args.precision != "fp32") {
    std::fprintf(stderr, "--precision must be fp64 or fp32\n");
    return 1;
  }
  const la::Precision tier = args.precision == "fp32"
                                 ? la::Precision::kFloat32
                                 : la::Precision::kFloat64;

  RmatOptions rmat;
  rmat.scale = args.scale;
  rmat.edges = args.edges;
  rmat.seed = 42;
  std::printf("generating R-MAT graph: scale %u (%u nodes), %llu edge draws\n",
              rmat.scale, 1u << rmat.scale,
              static_cast<unsigned long long>(rmat.edges));
  Stopwatch gen_watch;
  auto graph = GenerateRmat(rmat);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %u nodes / %llu edges in %.2fs\n",
              graph->num_nodes(),
              static_cast<unsigned long long>(graph->num_edges()),
              gen_watch.ElapsedSeconds());
  if (tier == la::Precision::kFloat32) {
    // The whole sweep below then runs the halved-footprint tier: fp32 CSR
    // values, fp32 CPI workspaces, fp32 serving and cache entries.
    *graph = RematerializeWithPrecision(*graph, tier);
    std::printf("materialized fp32 values: CSR bytes %zu\n",
                graph->SizeBytes());
  }

  TpaOptions tpa_options;
  Stopwatch prep_watch;
  auto tpa = Tpa::Preprocess(*graph, tpa_options);
  if (!tpa.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 tpa.status().ToString().c_str());
    return 1;
  }
  std::printf("TPA preprocess: %.2fs (shared by every configuration below)\n",
              prep_watch.ElapsedSeconds());

  const std::vector<NodeId> seeds = QuerySeeds(*graph, args.queries);

  // Single-threaded sequential baseline: the raw native-tier query in a
  // loop (Tpa::Query at fp64, Tpa::QueryF at fp32 — no widening overhead).
  Stopwatch seq_watch;
  if (tier == la::Precision::kFloat32) {
    for (NodeId seed : seeds) {
      std::vector<float> scores = tpa->QueryF(seed);
      if (scores.empty()) return 1;  // keep the loop un-elidable
    }
  } else {
    for (NodeId seed : seeds) {
      std::vector<double> scores = tpa->Query(seed);
      if (scores.empty()) return 1;  // keep the loop un-elidable
    }
  }
  const double seq_seconds = seq_watch.ElapsedSeconds();
  const double seq_qps = seeds.size() / seq_seconds;

  TablePrinter table(
      {"Mode", "Threads", "Batch", "Queries/s", "vs sequential"});
  std::vector<BenchRow> rows;
  rows.push_back({"sequential Tpa::Query", 1, seeds.size(), seq_qps, 1.0});
  rows.back().peak_rss_bytes = PeakRssBytes();
  table.AddRow({"sequential Tpa::Query", "1",
                std::to_string(seeds.size()),
                TablePrinter::FormatDouble(seq_qps, 1), "1.00x"});

  const unsigned hardware = std::thread::hardware_concurrency();
  std::vector<int> thread_counts = {1, 2, 4};
  if (hardware > 4) thread_counts.push_back(static_cast<int>(hardware));

  auto add_row = [&](const std::string& mode, int threads, size_t batch,
                     double seconds, size_t queries, double mean_group = 0.0,
                     int clients = 0, double rate_multiplier = 0.0) {
    const double qps = queries / seconds;
    rows.push_back({mode, threads, batch, qps, qps / seq_qps, mean_group,
                    clients, rate_multiplier});
    rows.back().peak_rss_bytes = PeakRssBytes();
    table.AddRow({mode, std::to_string(threads), std::to_string(batch),
                  TablePrinter::FormatDouble(qps, 1),
                  TablePrinter::FormatDouble(qps / seq_qps, 2) + "x"});
  };

  // Batched engine serving: thread sweep at full batch.  batch_block_size 0
  // isolates pool scaling from the SpMM path measured below.
  for (int threads : thread_counts) {
    QueryEngineOptions options;
    options.num_threads = threads;
    options.batch_block_size = 0;
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(tpa_options),
                            options);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    Stopwatch watch;
    auto results = engine->QueryBatch(seeds);
    add_row("engine per-seed fan-out", threads, seeds.size(),
            watch.ElapsedSeconds(), results.size());
  }

  // Batch-size sweep: per-seed fan-out versus the SpMM group path at the
  // same client batch size.  Both engines run a hardware-matched pool (a
  // pool wider than the machine only measures scheduler thrash — group
  // jobs hop between workers, each re-warming its own thread-local
  // propagation workspace); the SpMM engine serves each cache-miss batch
  // through QueryBatchDense in groups of batch_block_size, so each sweep
  // point compares independent per-seed CSR traversals against shared
  // multi-vector sweeps.  Each point reports the best of three passes to
  // damp single-core scheduling noise.
  {
    const int threads = static_cast<int>(std::max(
        1u, std::min(hardware, static_cast<unsigned>(thread_counts.back()))));
    QueryEngineOptions per_seed_options;
    per_seed_options.num_threads = threads;
    per_seed_options.batch_block_size = 0;
    auto per_seed = QueryEngine::Create(
        *graph, std::make_unique<TpaMethod>(tpa_options), per_seed_options);
    if (!per_seed.ok()) return 1;

    QueryEngineOptions spmm_options;
    spmm_options.num_threads = threads;
    // One group block row per cache line; client batches larger than the
    // block are split into several SpMM groups.
    spmm_options.batch_block_size = 8;
    auto spmm = QueryEngine::Create(
        *graph, std::make_unique<TpaMethod>(tpa_options), spmm_options);
    if (!spmm.ok()) return 1;

    std::vector<size_t> batch_sizes = {1, 8, 16, 32};
    if (seeds.size() > 32) batch_sizes.push_back(seeds.size());
    for (size_t batch : batch_sizes) {
      if (batch > seeds.size()) continue;
      auto timed_chunks = [&](QueryEngine& engine) {
        double best_seconds = 0.0;
        size_t served = 0;
        for (int rep = 0; rep < 3; ++rep) {
          Stopwatch watch;
          served = 0;
          for (size_t begin = 0; begin < seeds.size(); begin += batch) {
            const size_t end = std::min(begin + batch, seeds.size());
            served += engine
                          .QueryBatch(std::vector<NodeId>(
                              seeds.begin() + begin, seeds.begin() + end))
                          .size();
          }
          const double seconds = watch.ElapsedSeconds();
          if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
        }
        return std::pair<double, size_t>(best_seconds, served);
      };
      auto [per_seed_seconds, per_seed_served] = timed_chunks(*per_seed);
      add_row("per-seed fan-out", threads, batch, per_seed_seconds,
              per_seed_served);
      auto [spmm_seconds, spmm_served] = timed_chunks(*spmm);
      add_row("spmm groups", threads, batch, spmm_seconds, spmm_served);
      std::printf("batch %zu: spmm %.2fx over per-seed fan-out\n", batch,
                  per_seed_seconds / spmm_seconds);
    }
  }

  // Async admission-queue serving.  Closed-loop: K clients each in a
  // submit-wait-repeat loop, so offered load tracks service capacity and
  // the queue stays near-empty.  Open-loop: arrivals at a fixed rate
  // regardless of completions — the production regime, where a backlog
  // forms whenever arrivals outpace service and the scheduler coalesces
  // the backlog into SpMM groups.  The mean seeds per dispatched job is
  // the coalescing signal (1.0 = no batching emerged).
  {
    const int threads = static_cast<int>(std::max(
        1u, std::min(hardware, static_cast<unsigned>(thread_counts.back()))));
    QueryEngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.batch_block_size = 8;

    for (int clients : {1, 4, 16}) {
      auto async = AsyncQueryEngine::Create(
          *graph, std::make_unique<TpaMethod>(tpa_options), engine_options);
      if (!async.ok()) {
        std::fprintf(stderr, "async engine failed: %s\n",
                     async.status().ToString().c_str());
        return 1;
      }
      Stopwatch watch;
      std::atomic<size_t> next{0};
      std::vector<std::thread> workers;
      workers.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&] {
          for (;;) {
            const size_t i = next.fetch_add(1);
            if (i >= seeds.size()) return;
            QueryTicket ticket = (*async)->Submit(seeds[i]);
            ticket.Wait();
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      const double seconds = watch.ElapsedSeconds();
      const auto stats = (*async)->stats();
      const double mean_group =
          stats.groups_dispatched > 0
              ? static_cast<double>(stats.seeds_dispatched) /
                    static_cast<double>(stats.groups_dispatched)
              : 0.0;
      add_row("async closed-loop " + std::to_string(clients) + " clients",
              threads, static_cast<size_t>(engine_options.batch_block_size),
              seconds, seeds.size(), mean_group, clients);
      std::printf("async closed-loop %d clients: %.2f seeds/group\n",
                  clients, mean_group);
    }

    for (double rate_multiplier : {1.0, 2.0, 8.0}) {
      auto async = AsyncQueryEngine::Create(
          *graph, std::make_unique<TpaMethod>(tpa_options), engine_options);
      if (!async.ok()) {
        std::fprintf(stderr, "async engine failed: %s\n",
                     async.status().ToString().c_str());
        return 1;
      }
      const double interarrival_seconds = 1.0 / (rate_multiplier * seq_qps);
      std::vector<QueryTicket> tickets;
      tickets.reserve(seeds.size());
      const auto start = std::chrono::steady_clock::now();
      Stopwatch watch;
      for (size_t i = 0; i < seeds.size(); ++i) {
        // Pace arrivals against absolute schedule points so service time
        // does not leak into the arrival process; sleep (don't spin) so
        // the pacing thread leaves the core to the serving threads.
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            i * interarrival_seconds)));
        tickets.push_back((*async)->Submit(seeds[i]));
      }
      for (QueryTicket& ticket : tickets) ticket.Wait();
      const double seconds = watch.ElapsedSeconds();
      const auto stats = (*async)->stats();
      const double mean_group =
          stats.groups_dispatched > 0
              ? static_cast<double>(stats.seeds_dispatched) /
                    static_cast<double>(stats.groups_dispatched)
              : 0.0;
      add_row("async open-loop x" +
                  TablePrinter::FormatDouble(rate_multiplier, 0) +
                  " arrival rate",
              threads, static_cast<size_t>(engine_options.batch_block_size),
              seconds, seeds.size(), mean_group, /*clients=*/0,
              rate_multiplier);
      std::printf("async open-loop x%.0f: %.2f seeds/group\n",
                  rate_multiplier, mean_group);
    }
  }

  // Deadline-enforced overload sweep: open-loop arrivals well past the
  // pool's capacity, every query carrying the same deadline budget.  Three
  // policies over the same workload: plain enforcement (a late query
  // aborts mid-iteration and fails with DEADLINE_EXCEEDED), degradation
  // (a late query returns its current iterate as a certified partial),
  // and degradation with fp32 shedding.  The recorded deadline-hit rate,
  // degraded-answer fraction, and shed rate are the robust-serving
  // acceptance metrics tracked across PRs.
  {
    const int threads = static_cast<int>(std::max(
        1u, std::min(hardware, static_cast<unsigned>(thread_counts.back()))));
    QueryEngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.batch_block_size = 8;
    // A budget of ~6 sequential service times per query; arrivals at ~4x
    // the pool's nominal capacity guarantee a backlog that pushes the tail
    // of the queue past that budget.
    const double deadline_budget_seconds = 6.0 / seq_qps;
    const double rate_multiplier = 4.0 * threads;

    struct OverloadMode {
      const char* mode;
      bool degrade;
      bool shed;
    };
    const OverloadMode modes[] = {
        {"async overload deadline-only", false, false},
        {"async overload degrade", true, false},
        {"async overload degrade+shed-fp32", true, true},
    };
    for (const OverloadMode& mode : modes) {
      if (mode.shed && tier != la::Precision::kFloat64) continue;
      AsyncQueryEngineOptions async_options;
      async_options.queue_capacity = seeds.size() + 1;
      if (mode.degrade) {
        async_options.degradation.enabled = true;
        async_options.degradation.queue_watermark = 0.25;
        async_options.degradation.min_iterations = 4;
        async_options.degradation.shed_to_fp32 = mode.shed;
      }
      auto async =
          mode.shed
              ? AsyncQueryEngine::CreateFromRegistry(
                    *graph, "TPA", {}, engine_options, async_options)
              : AsyncQueryEngine::Create(
                    *graph, std::make_unique<TpaMethod>(tpa_options),
                    engine_options, async_options);
      if (!async.ok()) {
        std::fprintf(stderr, "async engine failed: %s\n",
                     async.status().ToString().c_str());
        return 1;
      }
      const double interarrival_seconds = 1.0 / (rate_multiplier * seq_qps);
      std::vector<QueryTicket> tickets;
      tickets.reserve(seeds.size());
      const auto start = std::chrono::steady_clock::now();
      Stopwatch watch;
      for (size_t i = 0; i < seeds.size(); ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            i * interarrival_seconds)));
        SubmitOptions submit;
        submit.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(deadline_budget_seconds));
        tickets.push_back((*async)->Submit(seeds[i], submit));
      }
      size_t degraded = 0;
      size_t shed = 0;
      size_t missed = 0;
      for (QueryTicket& ticket : tickets) {
        const QueryResult& result = ticket.Wait();
        if (result.shed_to_fp32) ++shed;
        if (!result.status.ok()) {
          ++missed;
        } else if (result.degraded) {
          ++degraded;
        }
      }
      const double seconds = watch.ElapsedSeconds();
      const double total = static_cast<double>(seeds.size());
      add_row(mode.mode, threads,
              static_cast<size_t>(engine_options.batch_block_size), seconds,
              seeds.size(), /*mean_group=*/0.0, /*clients=*/0,
              rate_multiplier);
      rows.back().deadline_hit_rate = (total - missed) / total;
      rows.back().degraded_fraction = degraded / total;
      rows.back().shed_rate = shed / total;
      std::printf(
          "%s: deadline hit %.2f, degraded %.2f, shed %.2f (x%.0f rate)\n",
          mode.mode, rows.back().deadline_hit_rate,
          rows.back().degraded_fraction, rows.back().shed_rate,
          rate_multiplier);
    }
  }

  // Precision-tier serving rows: the same workload on the fp32-materialized
  // twin graph — sequential native fp32 queries and the fp32 SpMM-group
  // engine — so every default run records the tier comparison in its JSON
  // (run with `--precision fp32` to put the whole sweep on the fp32 tier).
  if (tier == la::Precision::kFloat64) {
    Graph graph32 =
        RematerializeWithPrecision(*graph, la::Precision::kFloat32);
    auto tpa32 = Tpa::Preprocess(graph32, tpa_options);
    if (!tpa32.ok()) {
      std::fprintf(stderr, "fp32 preprocess failed: %s\n",
                   tpa32.status().ToString().c_str());
      return 1;
    }
    Stopwatch seq32_watch;
    for (NodeId seed : seeds) {
      std::vector<float> scores = tpa32->QueryF(seed);
      if (scores.empty()) return 1;  // keep the loop un-elidable
    }
    add_row("sequential fp32 Tpa::QueryF", 1, seeds.size(),
            seq32_watch.ElapsedSeconds(), seeds.size());

    const int threads = static_cast<int>(std::max(
        1u, std::min(hardware, static_cast<unsigned>(thread_counts.back()))));
    QueryEngineOptions options32;
    options32.num_threads = threads;
    // The fp32 line width: 16 block-row values per 64-byte cache line, so
    // each CSR traversal is shared across twice the seeds of the fp64
    // groups at the same per-edge line traffic (what kAuto resolves for an
    // LLC-exceeding fp32 graph).
    options32.batch_block_size = 16;
    auto engine32 = QueryEngine::Create(
        graph32, std::make_unique<TpaMethod>(tpa_options), options32);
    if (!engine32.ok()) return 1;
    double best_seconds = 0.0;
    size_t served = 0;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      served = engine32->QueryBatch(seeds).size();
      const double seconds = watch.ElapsedSeconds();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
    }
    add_row("engine fp32 spmm groups", threads, seeds.size(), best_seconds,
            served);
    std::printf("fp32 serving: %.2fx over fp64 sequential\n",
                (served / best_seconds) / seq_qps);
  }

  // Value-free serving rows: the same workload on a kRowConstant rebuild of
  // the graph — no per-edge value arrays, the kernels synthesize 1/out-deg
  // in registers, results bitwise-identical to the explicit rows above.
  // Sequential queries plus the SpMM group path, so the layout comparison
  // covers both serving modes.
  if (tier == la::Precision::kFloat64) {
    GraphBuilder builder(graph->num_nodes());
    for (NodeId u = 0; u < graph->num_nodes(); ++u) {
      for (NodeId v : graph->OutNeighbors(u)) builder.AddEdge(u, v);
    }
    BuildOptions build_options;
    // The generated graph is already cleaned; keep its edges (including the
    // dangling policy's self-loops) verbatim.
    build_options.remove_self_loops = false;
    build_options.dangling_policy = DanglingPolicy::kKeep;
    build_options.value_storage = ValueStorage::kRowConstant;
    auto value_free = builder.Build(build_options);
    if (!value_free.ok()) return 1;
    std::printf("value-free rebuild: CSR bytes %zu (explicit: %zu)\n",
                value_free->SizeBytes(), graph->SizeBytes());

    auto tpa_vf = Tpa::Preprocess(*value_free, tpa_options);
    if (!tpa_vf.ok()) {
      std::fprintf(stderr, "value-free preprocess failed: %s\n",
                   tpa_vf.status().ToString().c_str());
      return 1;
    }
    Stopwatch seq_vf_watch;
    for (NodeId seed : seeds) {
      std::vector<double> scores = tpa_vf->Query(seed);
      if (scores.empty()) return 1;  // keep the loop un-elidable
    }
    add_row("sequential value-free Tpa::Query", 1, seeds.size(),
            seq_vf_watch.ElapsedSeconds(), seeds.size());

    const int threads = static_cast<int>(std::max(
        1u, std::min(hardware, static_cast<unsigned>(thread_counts.back()))));
    QueryEngineOptions options_vf;
    options_vf.num_threads = threads;
    options_vf.batch_block_size = 8;  // the fp64 line width, as above
    auto engine_vf = QueryEngine::Create(
        *value_free, std::make_unique<TpaMethod>(tpa_options), options_vf);
    if (!engine_vf.ok()) return 1;
    double best_seconds = 0.0;
    size_t served = 0;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      served = engine_vf->QueryBatch(seeds).size();
      const double seconds = watch.ElapsedSeconds();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
    }
    add_row("engine value-free spmm groups", threads, seeds.size(),
            best_seconds, served);
    std::printf("value-free serving: %.2fx over fp64 sequential\n",
                (served / best_seconds) / seq_qps);
  }

  // Top-k extraction instead of dense vectors.
  {
    QueryEngineOptions options;
    options.num_threads = thread_counts.back();
    options.top_k = 100;
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(tpa_options),
                            options);
    if (!engine.ok()) return 1;
    Stopwatch watch;
    auto results = engine->QueryBatch(seeds);
    add_row("engine top-100", options.num_threads, seeds.size(),
            watch.ElapsedSeconds(), results.size());
  }

  // Bound-driven top-k: per-query early-certified QueryTopK against the
  // full-query-plus-heap pipeline at the same k.  The full+heap row is the
  // honest alternative a dense serving stack would run (one dense query,
  // one partial sort); the bound-driven row is the acceptance metric of the
  // top-k path — its speedup_vs_sequential is exactly top-k over full-query
  // throughput, since the sequential baseline above is the full query.
  // Best-of-three per row damps single-core scheduling noise.
  if (args.topk > 0) {
    const int k = args.topk;
    const std::string suffix = " k=" + std::to_string(k);
    auto best_of = [&](auto&& body) {
      double best_seconds = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        Stopwatch watch;
        body();
        const double seconds = watch.ElapsedSeconds();
        if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      }
      return best_seconds;
    };

    const double full_heap_seconds = best_of([&] {
      for (NodeId seed : seeds) {
        std::vector<ScoredNode> top =
            tier == la::Precision::kFloat32
                ? TopKScores(tpa->QueryF(seed), k)
                : TopKScores(tpa->Query(seed), k);
        if (top.empty()) std::abort();  // keep the loop un-elidable
      }
    });
    add_row("topk full+heap" + suffix, 1, seeds.size(), full_heap_seconds,
            seeds.size());

    const double bound_seconds = best_of([&] {
      for (NodeId seed : seeds) {
        const TopKQueryResult result = tpa->QueryTopK(seed, k);
        if (result.top.empty()) std::abort();
      }
    });
    add_row("topk bound-driven" + suffix, 1, seeds.size(), bound_seconds,
            seeds.size());
    std::printf("topk k=%d: bound-driven %.2fx over full+heap\n", k,
                full_heap_seconds / bound_seconds);

    // The same path as served by the engine (native routing, score-exact).
    QueryEngineOptions options;
    options.num_threads = thread_counts.back();
    options.top_k = k;
    auto engine = QueryEngine::Create(
        *graph, std::make_unique<TpaMethod>(tpa_options), options);
    if (!engine.ok()) return 1;
    size_t served = 0;
    const double engine_seconds =
        best_of([&] { served = engine->QueryBatch(seeds).size(); });
    add_row("engine topk bound-driven" + suffix, options.num_threads,
            seeds.size(), engine_seconds, served);

    if (tier == la::Precision::kFloat64) {
      // The fp32 tier's bound-driven path on the twin graph.
      Graph graph32 =
          RematerializeWithPrecision(*graph, la::Precision::kFloat32);
      auto tpa32 = Tpa::Preprocess(graph32, tpa_options);
      if (!tpa32.ok()) return 1;
      const double bound32_seconds = best_of([&] {
        for (NodeId seed : seeds) {
          const TopKQueryResult result = tpa32->QueryTopK(seed, k);
          if (result.top.empty()) std::abort();
        }
      });
      add_row("topk bound-driven fp32" + suffix, 1, seeds.size(),
              bound32_seconds, seeds.size());
    }
  }

  // Warm LRU cache: the repeat batch is pure cache service.
  {
    QueryEngineOptions options;
    options.num_threads = thread_counts.back();
    options.cache_capacity = seeds.size();
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(tpa_options),
                            options);
    if (!engine.ok()) return 1;
    engine->QueryBatch(seeds);  // populate
    // A single cached batch completes in a couple of milliseconds — the
    // pool dispatch is the cost, and it is scheduler-noise-sensitive,
    // which made this row swing 2× between runs.  Repeat until the
    // measurement spans tens of milliseconds so the gated speedup is
    // stable.
    size_t served = 0;
    int reps = 0;
    Stopwatch watch;
    do {
      served += engine->QueryBatch(seeds).size();
      ++reps;
    } while (watch.ElapsedSeconds() < 50e-3 && reps < 10000);
    add_row("engine warm cache", options.num_threads, seeds.size(),
            watch.ElapsedSeconds(), served);
    const auto stats = engine->cache_stats();
    std::printf("cache: %llu hits / %llu misses\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
  }

  std::printf("\n");
  table.PrintText(std::cout);
  if (!args.json_path.empty()) {
    WriteJson(args.json_path, args, tier, graph->num_nodes(),
              graph->num_edges(), seq_qps, rows);
  }
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
