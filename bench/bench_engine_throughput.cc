/// Query-engine throughput: queries/sec of batched multi-threaded serving
/// versus single-threaded sequential Tpa::Query, swept over thread count and
/// batch size on a generated ≥100k-node R-MAT graph — including the SpMM
/// group path (`batch_block_size`) against the per-seed fan-out baseline.
///
///   $ ./bench_engine_throughput [--scale N] [--edges M] [--queries Q]
///                               [--json PATH]
///
/// Defaults: scale 17 (131072 nodes), 1.5M edge draws, 64 distinct query
/// seeds.  Also reports top-k extraction and warm-cache serving modes.
/// `--json PATH` additionally emits the results machine-readable (e.g.
/// BENCH_engine_throughput.json) so the perf trajectory is tracked across
/// PRs.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tpa.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "method/tpa_method.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

struct Args {
  uint32_t scale = 17;
  uint64_t edges = 1'500'000;
  int queries = 64;
  std::string json_path;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      args.scale = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--edges") == 0) {
      args.edges = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      args.queries = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.json_path = argv[i + 1];
    }
  }
  return args;
}

/// One measured configuration, mirrored into the text table and the JSON
/// report.
struct BenchRow {
  std::string mode;
  int threads = 1;
  size_t batch = 0;
  double qps = 0.0;
  double speedup = 0.0;  // vs sequential Tpa::Query
};

void WriteJson(const std::string& path, const Args& args, uint32_t nodes,
               uint64_t edges, double seq_qps,
               const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"benchmark\": \"engine_throughput\",\n";
  out << "  \"graph\": {\"scale\": " << args.scale << ", \"nodes\": " << nodes
      << ", \"edges\": " << edges << "},\n";
  out << "  \"queries\": " << args.queries << ",\n";
  out << "  \"sequential_qps\": " << seq_qps << ",\n";
  out << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out << "    {\"mode\": \"" << row.mode << "\", \"threads\": "
        << row.threads << ", \"batch\": " << row.batch << ", \"qps\": "
        << row.qps << ", \"speedup_vs_sequential\": " << row.speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

std::vector<NodeId> QuerySeeds(const Graph& graph, int count) {
  std::vector<NodeId> seeds(count);
  // Deterministic spread across the id space.
  for (int i = 0; i < count; ++i) {
    seeds[i] = static_cast<NodeId>(
        (static_cast<uint64_t>(i) * 2654435761u) % graph.num_nodes());
  }
  return seeds;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.queries < 1 || args.edges < 1) {
    std::fprintf(stderr, "--queries and --edges must be at least 1\n");
    return 1;
  }

  RmatOptions rmat;
  rmat.scale = args.scale;
  rmat.edges = args.edges;
  rmat.seed = 42;
  std::printf("generating R-MAT graph: scale %u (%u nodes), %llu edge draws\n",
              rmat.scale, 1u << rmat.scale,
              static_cast<unsigned long long>(rmat.edges));
  Stopwatch gen_watch;
  auto graph = GenerateRmat(rmat);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %u nodes / %llu edges in %.2fs\n",
              graph->num_nodes(),
              static_cast<unsigned long long>(graph->num_edges()),
              gen_watch.ElapsedSeconds());

  TpaOptions tpa_options;
  Stopwatch prep_watch;
  auto tpa = Tpa::Preprocess(*graph, tpa_options);
  if (!tpa.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 tpa.status().ToString().c_str());
    return 1;
  }
  std::printf("TPA preprocess: %.2fs (shared by every configuration below)\n",
              prep_watch.ElapsedSeconds());

  const std::vector<NodeId> seeds = QuerySeeds(*graph, args.queries);

  // Single-threaded sequential baseline: raw Tpa::Query in a loop.
  Stopwatch seq_watch;
  for (NodeId seed : seeds) {
    std::vector<double> scores = tpa->Query(seed);
    if (scores.empty()) return 1;  // keep the loop un-elidable
  }
  const double seq_seconds = seq_watch.ElapsedSeconds();
  const double seq_qps = seeds.size() / seq_seconds;

  TablePrinter table(
      {"Mode", "Threads", "Batch", "Queries/s", "vs sequential"});
  std::vector<BenchRow> rows;
  rows.push_back({"sequential Tpa::Query", 1, seeds.size(), seq_qps, 1.0});
  table.AddRow({"sequential Tpa::Query", "1",
                std::to_string(seeds.size()),
                TablePrinter::FormatDouble(seq_qps, 1), "1.00x"});

  const unsigned hardware = std::thread::hardware_concurrency();
  std::vector<int> thread_counts = {1, 2, 4};
  if (hardware > 4) thread_counts.push_back(static_cast<int>(hardware));

  auto add_row = [&](const std::string& mode, int threads, size_t batch,
                     double seconds, size_t queries) {
    const double qps = queries / seconds;
    rows.push_back({mode, threads, batch, qps, qps / seq_qps});
    table.AddRow({mode, std::to_string(threads), std::to_string(batch),
                  TablePrinter::FormatDouble(qps, 1),
                  TablePrinter::FormatDouble(qps / seq_qps, 2) + "x"});
  };

  // Batched engine serving: thread sweep at full batch.  batch_block_size 0
  // isolates pool scaling from the SpMM path measured below.
  for (int threads : thread_counts) {
    QueryEngineOptions options;
    options.num_threads = threads;
    options.batch_block_size = 0;
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(tpa_options),
                            options);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    Stopwatch watch;
    auto results = engine->QueryBatch(seeds);
    add_row("engine per-seed fan-out", threads, seeds.size(),
            watch.ElapsedSeconds(), results.size());
  }

  // Batch-size sweep: per-seed fan-out versus the SpMM group path at the
  // same client batch size.  Both engines run a hardware-matched pool (a
  // pool wider than the machine only measures scheduler thrash — group
  // jobs hop between workers, each re-warming its own thread-local
  // propagation workspace); the SpMM engine serves each cache-miss batch
  // through QueryBatchDense in groups of batch_block_size, so each sweep
  // point compares independent per-seed CSR traversals against shared
  // multi-vector sweeps.  Each point reports the best of three passes to
  // damp single-core scheduling noise.
  {
    const int threads = static_cast<int>(std::max(
        1u, std::min(hardware, static_cast<unsigned>(thread_counts.back()))));
    QueryEngineOptions per_seed_options;
    per_seed_options.num_threads = threads;
    per_seed_options.batch_block_size = 0;
    auto per_seed = QueryEngine::Create(
        *graph, std::make_unique<TpaMethod>(tpa_options), per_seed_options);
    if (!per_seed.ok()) return 1;

    QueryEngineOptions spmm_options;
    spmm_options.num_threads = threads;
    // One group block row per cache line; client batches larger than the
    // block are split into several SpMM groups.
    spmm_options.batch_block_size = 8;
    auto spmm = QueryEngine::Create(
        *graph, std::make_unique<TpaMethod>(tpa_options), spmm_options);
    if (!spmm.ok()) return 1;

    std::vector<size_t> batch_sizes = {1, 8, 16, 32};
    if (seeds.size() > 32) batch_sizes.push_back(seeds.size());
    for (size_t batch : batch_sizes) {
      if (batch > seeds.size()) continue;
      auto timed_chunks = [&](QueryEngine& engine) {
        double best_seconds = 0.0;
        size_t served = 0;
        for (int rep = 0; rep < 3; ++rep) {
          Stopwatch watch;
          served = 0;
          for (size_t begin = 0; begin < seeds.size(); begin += batch) {
            const size_t end = std::min(begin + batch, seeds.size());
            served += engine
                          .QueryBatch(std::vector<NodeId>(
                              seeds.begin() + begin, seeds.begin() + end))
                          .size();
          }
          const double seconds = watch.ElapsedSeconds();
          if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
        }
        return std::pair<double, size_t>(best_seconds, served);
      };
      auto [per_seed_seconds, per_seed_served] = timed_chunks(*per_seed);
      add_row("per-seed fan-out", threads, batch, per_seed_seconds,
              per_seed_served);
      auto [spmm_seconds, spmm_served] = timed_chunks(*spmm);
      add_row("spmm groups", threads, batch, spmm_seconds, spmm_served);
      std::printf("batch %zu: spmm %.2fx over per-seed fan-out\n", batch,
                  per_seed_seconds / spmm_seconds);
    }
  }

  // Top-k extraction instead of dense vectors.
  {
    QueryEngineOptions options;
    options.num_threads = thread_counts.back();
    options.top_k = 100;
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(tpa_options),
                            options);
    if (!engine.ok()) return 1;
    Stopwatch watch;
    auto results = engine->QueryBatch(seeds);
    add_row("engine top-100", options.num_threads, seeds.size(),
            watch.ElapsedSeconds(), results.size());
  }

  // Warm LRU cache: the repeat batch is pure cache service.
  {
    QueryEngineOptions options;
    options.num_threads = thread_counts.back();
    options.cache_capacity = seeds.size();
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(tpa_options),
                            options);
    if (!engine.ok()) return 1;
    engine->QueryBatch(seeds);  // populate
    Stopwatch watch;
    auto results = engine->QueryBatch(seeds);
    add_row("engine warm cache", options.num_threads, seeds.size(),
            watch.ElapsedSeconds(), results.size());
    const auto stats = engine->cache_stats();
    std::printf("cache: %llu hits / %llu misses\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
  }

  std::printf("\n");
  table.PrintText(std::cout);
  if (!args.json_path.empty()) {
    WriteJson(args.json_path, args, graph->num_nodes(), graph->num_edges(),
              seq_qps, rows);
  }
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
