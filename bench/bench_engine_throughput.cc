/// Query-engine throughput: queries/sec of batched multi-threaded serving
/// versus single-threaded sequential Tpa::Query, swept over thread count and
/// batch size on a generated ≥100k-node R-MAT graph.
///
///   $ ./bench_engine_throughput [--scale N] [--edges M] [--queries Q]
///
/// Defaults: scale 17 (131072 nodes), 1.5M edge draws, 64 distinct query
/// seeds.  Also reports top-k extraction and warm-cache serving modes.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tpa.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "method/tpa_method.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

struct Args {
  uint32_t scale = 17;
  uint64_t edges = 1'500'000;
  int queries = 64;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      args.scale = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--edges") == 0) {
      args.edges = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      args.queries = std::atoi(argv[i + 1]);
    }
  }
  return args;
}

std::vector<NodeId> QuerySeeds(const Graph& graph, int count) {
  std::vector<NodeId> seeds(count);
  // Deterministic spread across the id space.
  for (int i = 0; i < count; ++i) {
    seeds[i] = static_cast<NodeId>(
        (static_cast<uint64_t>(i) * 2654435761u) % graph.num_nodes());
  }
  return seeds;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.queries < 1 || args.edges < 1) {
    std::fprintf(stderr, "--queries and --edges must be at least 1\n");
    return 1;
  }

  RmatOptions rmat;
  rmat.scale = args.scale;
  rmat.edges = args.edges;
  rmat.seed = 42;
  std::printf("generating R-MAT graph: scale %u (%u nodes), %llu edge draws\n",
              rmat.scale, 1u << rmat.scale,
              static_cast<unsigned long long>(rmat.edges));
  Stopwatch gen_watch;
  auto graph = GenerateRmat(rmat);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %u nodes / %llu edges in %.2fs\n",
              graph->num_nodes(),
              static_cast<unsigned long long>(graph->num_edges()),
              gen_watch.ElapsedSeconds());

  TpaOptions tpa_options;
  Stopwatch prep_watch;
  auto tpa = Tpa::Preprocess(*graph, tpa_options);
  if (!tpa.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 tpa.status().ToString().c_str());
    return 1;
  }
  std::printf("TPA preprocess: %.2fs (shared by every configuration below)\n",
              prep_watch.ElapsedSeconds());

  const std::vector<NodeId> seeds = QuerySeeds(*graph, args.queries);

  // Single-threaded sequential baseline: raw Tpa::Query in a loop.
  Stopwatch seq_watch;
  for (NodeId seed : seeds) {
    std::vector<double> scores = tpa->Query(seed);
    if (scores.empty()) return 1;  // keep the loop un-elidable
  }
  const double seq_seconds = seq_watch.ElapsedSeconds();
  const double seq_qps = seeds.size() / seq_seconds;

  TablePrinter table(
      {"Mode", "Threads", "Batch", "Queries/s", "vs sequential"});
  table.AddRow({"sequential Tpa::Query", "1",
                std::to_string(seeds.size()),
                TablePrinter::FormatDouble(seq_qps, 1), "1.00x"});

  const unsigned hardware = std::thread::hardware_concurrency();
  std::vector<int> thread_counts = {1, 2, 4};
  if (hardware > 4) thread_counts.push_back(static_cast<int>(hardware));

  auto add_row = [&](const std::string& mode, int threads, size_t batch,
                     double seconds, size_t queries) {
    const double qps = queries / seconds;
    table.AddRow({mode, std::to_string(threads), std::to_string(batch),
                  TablePrinter::FormatDouble(qps, 1),
                  TablePrinter::FormatDouble(qps / seq_qps, 2) + "x"});
  };

  // Batched engine serving: thread sweep at full batch, then a batch-size
  // sweep at the widest pool.
  for (int threads : thread_counts) {
    QueryEngineOptions options;
    options.num_threads = threads;
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(tpa_options),
                            options);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    Stopwatch watch;
    auto results = engine->QueryBatch(seeds);
    add_row("engine batch", threads, seeds.size(), watch.ElapsedSeconds(),
            results.size());
  }

  {
    const int threads = thread_counts.back();
    QueryEngineOptions options;
    options.num_threads = threads;
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(tpa_options),
                            options);
    if (!engine.ok()) return 1;
    for (size_t batch : {size_t{1}, size_t{8}, seeds.size()}) {
      Stopwatch watch;
      size_t served = 0;
      for (size_t begin = 0; begin < seeds.size(); begin += batch) {
        const size_t end = std::min(begin + batch, seeds.size());
        served += engine
                      ->QueryBatch(std::vector<NodeId>(
                          seeds.begin() + begin, seeds.begin() + end))
                      .size();
      }
      add_row("engine batch-size sweep", threads, batch,
              watch.ElapsedSeconds(), served);
    }
  }

  // Top-k extraction instead of dense vectors.
  {
    QueryEngineOptions options;
    options.num_threads = thread_counts.back();
    options.top_k = 100;
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(tpa_options),
                            options);
    if (!engine.ok()) return 1;
    Stopwatch watch;
    auto results = engine->QueryBatch(seeds);
    add_row("engine top-100", options.num_threads, seeds.size(),
            watch.ElapsedSeconds(), results.size());
  }

  // Warm LRU cache: the repeat batch is pure cache service.
  {
    QueryEngineOptions options;
    options.num_threads = thread_counts.back();
    options.cache_capacity = seeds.size();
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(tpa_options),
                            options);
    if (!engine.ok()) return 1;
    engine->QueryBatch(seeds);  // populate
    Stopwatch watch;
    auto results = engine->QueryBatch(seeds);
    add_row("engine warm cache", options.num_threads, seeds.size(),
            watch.ElapsedSeconds(), results.size());
    const auto stats = engine->cache_stats();
    std::printf("cache: %llu hits / %llu misses\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
  }

  std::printf("\n");
  table.PrintText(std::cout);
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
