/// Figure 9: effect of T (the stranger-start iteration) on the L1 errors of
/// the neighbor approximation (NA), stranger approximation (SA), and TPA,
/// with S fixed at 5, on the LiveJournal and Pokec stand-ins.
/// Expectation: NA error grows with T, SA error shrinks, TPA's total dips
/// and then rebounds.
///
/// One converged windowed CPI pass per seed provides the exact windows for
/// every T simultaneously.

#include <iostream>

#include "core/cpi.h"
#include "core/tpa.h"
#include "eval/experiment.h"
#include "graph/presets.h"
#include "la/vector_ops.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

constexpr int kFamilyWindow = 5;  // the paper fixes S = 5 here

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  auto specs = args->SelectDatasets({"livejournal-sim", "pokec-sim"});
  if (!specs.ok()) {
    std::cerr << specs.status() << "\n";
    return 1;
  }
  const std::vector<int> ts = {6, 8, 10, 15, 20, 25};

  std::cout << "== Figure 9: effect of T on NA / SA / TPA L1 error (S=5), "
               "avg over "
            << args->seeds << " seeds ==\n";
  TablePrinter table({"Dataset", "T", "NA-error", "SA-error", "TPA-error"});

  for (const DatasetSpec& spec : *specs) {
    auto graph = MakePresetGraph(spec, args->scale);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    const std::vector<NodeId> seeds = PickQuerySeeds(*graph, args->seeds);

    // Exact windows at every T boundary in one pass per seed:
    // breakpoints {0, S, t_0, t_1, ...}.
    std::vector<int> breakpoints = {0, kFamilyWindow};
    for (int t : ts) breakpoints.push_back(t);
    CpiOptions exact_options;
    exact_options.tolerance = 1e-12;

    // exact_windows[seed_idx][w] = window sum vectors.
    std::vector<std::vector<std::vector<double>>> exact_windows;
    for (NodeId seed : seeds) {
      std::vector<double> q(graph->num_nodes(), 0.0);
      q[seed] = 1.0;
      auto windows =
          Cpi::RunWindowed(*graph, q, breakpoints, exact_options);
      if (!windows.ok()) {
        std::cerr << windows.status() << "\n";
        return 1;
      }
      exact_windows.push_back(std::move(windows).value());
    }

    for (size_t ti = 0; ti < ts.size(); ++ti) {
      const int t = ts[ti];
      TpaOptions options;
      options.family_window = kFamilyWindow;
      options.stranger_start = t;
      auto tpa = Tpa::Preprocess(*graph, options);
      if (!tpa.ok()) {
        std::cerr << tpa.status() << "\n";
        return 1;
      }

      double na_error = 0.0, sa_error = 0.0, total_error = 0.0;
      for (size_t si = 0; si < seeds.size(); ++si) {
        const auto& windows = exact_windows[si];
        // Window layout: [0]=family, [1]=S..ts[0], [1+j]=ts[j-1]..ts[j],
        // last = ts.back()..∞.  The exact neighbor part for this T is the
        // sum of windows 1..ti+... windows from S up to t; the stranger part
        // is everything after.
        std::vector<double> exact_neighbor(graph->num_nodes(), 0.0);
        std::vector<double> exact_stranger(graph->num_nodes(), 0.0);
        for (size_t w = 1; w < windows.size(); ++w) {
          // window w covers [breakpoints[w], breakpoints[w+1]) (∞ for last)
          if (breakpoints[w] < t) {
            la::Axpy(1.0, windows[w], exact_neighbor);
          } else {
            la::Axpy(1.0, windows[w], exact_stranger);
          }
        }
        Tpa::QueryParts parts = tpa->QueryDecomposed(seeds[si]);
        na_error += la::L1Distance(parts.neighbor_est, exact_neighbor);
        sa_error += la::L1Distance(tpa->stranger_scores(), exact_stranger);
        std::vector<double> exact = windows[0];
        la::Axpy(1.0, exact_neighbor, exact);
        la::Axpy(1.0, exact_stranger, exact);
        total_error += la::L1Distance(parts.total, exact);
      }
      const double n = static_cast<double>(seeds.size());
      table.AddRow({std::string(spec.name), std::to_string(t),
                    TablePrinter::FormatDouble(na_error / n, 4),
                    TablePrinter::FormatDouble(sa_error / n, 4),
                    TablePrinter::FormatDouble(total_error / n, 4)});
    }
  }
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
