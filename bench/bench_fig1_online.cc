/// Figure 1(c): online (per-query) wall-clock time of every approximate
/// method across the dataset suite, averaged over --seeds random seeds.
/// Rows are "OOM" when the method could not preprocess within the budget.

#include <iostream>

#include "eval/experiment.h"
#include "graph/presets.h"
#include "method/registry.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  std::vector<std::string> all_names;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    all_names.emplace_back(spec.name);
  }
  auto specs = args->SelectDatasets(all_names);
  if (!specs.ok()) {
    std::cerr << specs.status() << "\n";
    return 1;
  }

  std::cout << "== Figure 1(c): online time per query, avg over "
            << args->seeds << " seeds ==\n";
  TablePrinter table({"Dataset", "Method", "OnlineTime(s)"});

  for (const DatasetSpec& spec : *specs) {
    auto graph = MakePresetGraph(spec, args->scale);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    const std::vector<NodeId> seeds = PickQuerySeeds(*graph, args->seeds);
    MethodConfig config;
    config.tpa_family_window = spec.s;
    config.tpa_stranger_start = spec.t;

    for (std::string_view name : ApproximateMethodNames()) {
      auto method = CreateMethod(name, config);
      if (!method.ok()) {
        std::cerr << method.status() << "\n";
        return 1;
      }
      auto prep = MeasurePreprocess(**method, *graph, args->budget_bytes);
      if (!prep.ok()) {
        std::cerr << spec.name << "/" << name << ": " << prep.status() << "\n";
        return 1;
      }
      if (prep->out_of_memory) {
        table.AddRow({std::string(spec.name), std::string(name), "OOM"});
        continue;
      }
      auto seconds = MeasureOnlineSeconds(**method, seeds);
      if (!seconds.ok()) {
        std::cerr << spec.name << "/" << name << ": " << seconds.status()
                  << "\n";
        return 1;
      }
      table.AddRow({std::string(spec.name), std::string(name),
                    TablePrinter::FormatDouble(*seconds, 4)});
    }
  }
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
