/// Kernel microbenchmarks (google-benchmark) for the design choices called
/// out in DESIGN.md §6:
///  * push (scatter/CSR) vs pull (gather/CSC) transition matvec,
///  * one CPI iteration and full CPI convergence,
///  * forward push and random-walk sampling,
///  * sparse CSR matvec from the block-elimination substrate.

#include <benchmark/benchmark.h>

#include "core/cpi.h"
#include "core/tpa.h"
#include "graph/presets.h"
#include "la/sparse_matrix.h"
#include "method/monte_carlo.h"
#include "method/push.h"
#include "util/check.h"
#include "util/random.h"

namespace tpa {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    auto spec = FindDatasetSpec("slashdot-sim");
    TPA_CHECK(spec.ok());
    auto g = MakePresetGraph(*spec, 1.0);
    TPA_CHECK(g.ok());
    return new Graph(std::move(g).value());
  }();
  return *graph;
}

void BM_MatVecPush(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  std::vector<double> x(graph.num_nodes(), 1.0 / graph.num_nodes());
  std::vector<double> y;
  for (auto _ : state) {
    graph.MultiplyTranspose(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_edges());
}
BENCHMARK(BM_MatVecPush);

void BM_MatVecPull(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  std::vector<double> x(graph.num_nodes(), 1.0 / graph.num_nodes());
  std::vector<double> y;
  for (auto _ : state) {
    graph.MultiplyTransposePull(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_edges());
}
BENCHMARK(BM_MatVecPull);

void BM_CpiExactQuery(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  for (auto _ : state) {
    auto result = Cpi::ExactRwr(graph, 0, {});
    TPA_CHECK(result.ok());
    benchmark::DoNotOptimize(result->data());
  }
}
BENCHMARK(BM_CpiExactQuery);

void BM_TpaOnlineQuery(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  static const Tpa* tpa = [] {
    auto t = Tpa::Preprocess(BenchGraph(), {});
    TPA_CHECK(t.ok());
    return new Tpa(std::move(t).value());
  }();
  NodeId seed = 0;
  for (auto _ : state) {
    auto scores = tpa->Query(seed % graph.num_nodes());
    benchmark::DoNotOptimize(scores.data());
    seed += 17;
  }
}
BENCHMARK(BM_TpaOnlineQuery);

void BM_ForwardPush(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const double r_max = 1e-5;
  NodeId seed = 0;
  for (auto _ : state) {
    auto push = ForwardPush(graph, seed % graph.num_nodes(), 0.15, r_max);
    TPA_CHECK(push.ok());
    benchmark::DoNotOptimize(push->reserve.data());
    seed += 29;
  }
}
BENCHMARK(BM_ForwardPush);

void BM_RandomWalks(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Rng rng(5);
  for (auto _ : state) {
    NodeId endpoint = RandomWalkEndpoint(graph, 0, 0.15, rng);
    benchmark::DoNotOptimize(endpoint);
  }
}
BENCHMARK(BM_RandomWalks);

void BM_SparseMatVec(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  static const la::SparseMatrix* matrix = [] {
    const Graph& g = BenchGraph();
    std::vector<la::Triplet> triplets;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const double value = 1.0 / std::max<uint32_t>(1, g.OutDegree(u));
      for (NodeId v : g.OutNeighbors(u)) {
        triplets.push_back({v, u, value});
      }
    }
    auto m = la::SparseMatrix::FromTriplets(g.num_nodes(), g.num_nodes(),
                                            std::move(triplets));
    TPA_CHECK(m.ok());
    return new la::SparseMatrix(std::move(m).value());
  }();
  std::vector<double> x(graph.num_nodes(), 1.0 / graph.num_nodes());
  std::vector<double> y;
  for (auto _ : state) {
    matrix->MatVec(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * matrix->nnz());
}
BENCHMARK(BM_SparseMatVec);

}  // namespace
}  // namespace tpa

BENCHMARK_MAIN();
