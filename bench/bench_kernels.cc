/// Kernel microbenchmarks (google-benchmark) for the design choices called
/// out in DESIGN.md §6:
///  * push (scatter/CSR) vs pull (gather/CSC) transition matvec,
///  * one CPI iteration and full CPI convergence,
///  * forward push and random-walk sampling,
///  * sparse CSR matvec from the block-elimination substrate,
///  * frontier-sparse vs dense scatter (the adaptive-head kernels).
///
/// With `--json PATH [--scale N] [--edges M]` the binary instead runs the
/// sparse-vs-dense frontier crossover sweep on a generated R-MAT graph and
/// writes the measurements machine-readable (e.g. BENCH_kernels.json): per
/// frontier density, the time of SpMvTransposeFrontier / SpMmTransposeFrontier
/// against their dense counterparts, plus the measured crossover density —
/// the data behind CpiOptions::frontier_density_threshold's default.
///
/// The same JSON run also records the fp32-vs-fp64 precision sweep: dense
/// SpMv / SpMvTranspose / width-8 and width-16 SpMmTranspose timed at both
/// value tiers over a ladder of graph sizes ending at the (cache-exceeding)
/// sweep size — the data behind the "Precision tiers" guidance in the
/// README.  Each ladder rung also times the value-free twins (kRowConstant
/// over the same structure, ≈4 streamed bytes/nnz, bitwise-identical
/// outputs) at both tiers — the data behind the "Memory layout" section.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cpi.h"
#include "core/tpa.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "la/csr_matrix.h"
#include "la/dense_block.h"
#include "la/sparse_matrix.h"
#include "method/monte_carlo.h"
#include "method/push.h"
#include "util/check.h"
#include "util/mem_stats.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace tpa {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    auto spec = FindDatasetSpec("slashdot-sim");
    TPA_CHECK(spec.ok());
    auto g = MakePresetGraph(*spec, 1.0);
    TPA_CHECK(g.ok());
    return new Graph(std::move(g).value());
  }();
  return *graph;
}

void BM_MatVecPush(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  std::vector<double> x(graph.num_nodes(), 1.0 / graph.num_nodes());
  std::vector<double> y;
  for (auto _ : state) {
    graph.MultiplyTranspose(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_edges());
}
BENCHMARK(BM_MatVecPush);

void BM_MatVecPull(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  std::vector<double> x(graph.num_nodes(), 1.0 / graph.num_nodes());
  std::vector<double> y;
  for (auto _ : state) {
    graph.MultiplyTransposePull(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_edges());
}
BENCHMARK(BM_MatVecPull);

void BM_CpiExactQuery(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  for (auto _ : state) {
    auto result = Cpi::ExactRwr(graph, 0, {});
    TPA_CHECK(result.ok());
    benchmark::DoNotOptimize(result->data());
  }
}
BENCHMARK(BM_CpiExactQuery);

void BM_TpaOnlineQuery(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  static const Tpa* tpa = [] {
    auto t = Tpa::Preprocess(BenchGraph(), {});
    TPA_CHECK(t.ok());
    return new Tpa(std::move(t).value());
  }();
  NodeId seed = 0;
  for (auto _ : state) {
    auto scores = tpa->Query(seed % graph.num_nodes());
    benchmark::DoNotOptimize(scores.data());
    seed += 17;
  }
}
BENCHMARK(BM_TpaOnlineQuery);

void BM_ForwardPush(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const double r_max = 1e-5;
  NodeId seed = 0;
  for (auto _ : state) {
    auto push = ForwardPush(graph, seed % graph.num_nodes(), 0.15, r_max);
    TPA_CHECK(push.ok());
    benchmark::DoNotOptimize(push->reserve.data());
    seed += 29;
  }
}
BENCHMARK(BM_ForwardPush);

void BM_RandomWalks(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Rng rng(5);
  for (auto _ : state) {
    NodeId endpoint = RandomWalkEndpoint(graph, 0, 0.15, rng);
    benchmark::DoNotOptimize(endpoint);
  }
}
BENCHMARK(BM_RandomWalks);

void BM_SparseMatVec(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  static const la::SparseMatrix* matrix = [] {
    const Graph& g = BenchGraph();
    std::vector<la::Triplet> triplets;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const double value = 1.0 / std::max<uint32_t>(1, g.OutDegree(u));
      for (NodeId v : g.OutNeighbors(u)) {
        triplets.push_back({v, u, value});
      }
    }
    auto m = la::SparseMatrix::FromTriplets(g.num_nodes(), g.num_nodes(),
                                            std::move(triplets));
    TPA_CHECK(m.ok());
    return new la::SparseMatrix(std::move(m).value());
  }();
  std::vector<double> x(graph.num_nodes(), 1.0 / graph.num_nodes());
  std::vector<double> y;
  for (auto _ : state) {
    matrix->MatVec(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * matrix->nnz());
}
BENCHMARK(BM_SparseMatVec);

void BM_SpMvTransposeFrontierSparse(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const la::CsrMatrix& csr = graph.Transition();
  const uint32_t n = csr.rows();
  const auto frontier_rows = static_cast<uint32_t>(state.range(0));
  std::vector<double> x(n, 0.0);
  std::vector<uint32_t> frontier(frontier_rows);
  for (uint32_t i = 0; i < frontier_rows; ++i) {
    frontier[i] = static_cast<uint32_t>((uint64_t{i} * 2654435761u) % n);
    x[frontier[i]] = 1.0 / frontier_rows;
  }
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  std::vector<double> y(n, 0.0);
  std::vector<uint32_t> next_frontier;
  la::FrontierScratch scratch;
  for (auto _ : state) {
    for (uint32_t j : next_frontier) y[j] = 0.0;
    csr.SpMvTransposeFrontier(x, frontier, 1.0, y, next_frontier, scratch);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SpMvTransposeFrontierSparse)->Arg(64)->Arg(1024)->Arg(16384);

// ------------------------------------------------------------------ sweep

struct SweepArgs {
  uint32_t scale = 17;
  uint64_t edges = 1'500'000;
  std::string json_path;
};

SweepArgs ParseSweepArgs(int argc, char** argv) {
  SweepArgs args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.json_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      args.scale = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--edges") == 0) {
      args.edges = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return args;
}

struct SweepRow {
  size_t frontier_rows = 0;
  double density = 0.0;
  double spmv_sparse_ms = 0.0;
  double spmv_dense_ms = 0.0;
  double spmm_sparse_ms = 0.0;
  double spmm_dense_ms = 0.0;
  /// VmHWM when the row was recorded — a running process-lifetime maximum.
  size_t peak_rss_bytes = 0;
};

/// Runs `op` repeatedly until ~80ms of wall time accumulates and returns
/// the best per-call milliseconds.
template <typename Op>
double TimeMs(Op&& op) {
  double best = 1e18;
  double total = 0.0;
  do {
    Stopwatch watch;
    op();
    const double ms = watch.ElapsedSeconds() * 1e3;
    best = std::min(best, ms);
    total += ms;
  } while (total < 80.0);
  return best;
}

// -------------------------------------------------------- precision sweep

struct PrecisionRow {
  uint32_t scale = 0;
  uint32_t nodes = 0;
  uint64_t edges = 0;
  size_t csr_bytes_fp64 = 0;
  size_t csr_bytes_fp32 = 0;
  size_t csr_bytes_vf = 0;  // index-only + one n-length 1/deg array per dir
  double spmv_fp64_ms = 0.0;
  double spmv_fp32_ms = 0.0;
  double spmvt_fp64_ms = 0.0;
  double spmvt_fp32_ms = 0.0;
  double spmm8_fp64_ms = 0.0;
  double spmm8_fp32_ms = 0.0;
  double spmm16_fp64_ms = 0.0;
  double spmm16_fp32_ms = 0.0;
  // Value-free twins (CsrValueMode::kRowConstant over the same structure):
  // identical outputs bitwise, index-only ≈4 bytes/nnz streamed.
  double spmv_vf64_ms = 0.0;
  double spmv_vf32_ms = 0.0;
  double spmvt_vf64_ms = 0.0;
  double spmvt_vf32_ms = 0.0;
  double spmm8_vf64_ms = 0.0;
  double spmm8_vf32_ms = 0.0;
  double spmm16_vf64_ms = 0.0;
  double spmm16_vf32_ms = 0.0;
  /// VmHWM when the row was recorded — a running process-lifetime maximum.
  size_t peak_rss_bytes = 0;
};

/// Times the dense kernels at both value tiers on one graph pair.  Dense
/// uniform operands: every edge is touched, so the measurement isolates the
/// bytes-per-edge difference the tiers exist for.  The block scatter is
/// timed at width 8 (the fp64 line width — one fp64 block row per 64-byte
/// cache line) and width 16 (the fp32 line width): the scatter's per-edge
/// cost is one destination-line RMW at either tier, so the equal-width
/// ratios understate fp32 and the width-16 ratio is the serving-relevant
/// one — it is the group size the engine's kAuto dispatches at the fp32
/// tier.
///
/// Each output slot MIN-MERGES (0.0 = unset): the caller times the four
/// storage variants in several interleaved rounds and keeps each variant's
/// best.  One variant's kernels run in seconds, but a four-variant
/// sequential pass spans minutes — long enough for shared-host load drift
/// to corrupt exactly the cross-variant ratios this sweep exists to
/// measure.  Interleaving puts every compared pair a few seconds apart,
/// and min-over-rounds converges each variant to its quiet-machine time.
template <typename V>
void TimePrecisionKernels(const la::CsrMatrixT<V>& csr, double& spmv_ms,
                          double& spmvt_ms, double& spmm8_ms,
                          double& spmm16_ms) {
  const auto keep = [](double& slot, double ms) {
    slot = (slot == 0.0) ? ms : std::min(slot, ms);
  };
  const uint32_t n = csr.rows();
  std::vector<V> x(n, static_cast<V>(1.0 / static_cast<double>(n)));
  std::vector<V> y;
  keep(spmv_ms, TimeMs([&] { csr.SpMv(x, y); }));
  keep(spmvt_ms, TimeMs([&] { csr.SpMvTranspose(x, y); }));
  for (size_t width : {size_t{8}, size_t{16}}) {
    la::DenseBlockT<V> bx(n, width);
    for (uint32_t r = 0; r < n; ++r) {
      V* row = bx.RowPtr(r);
      for (size_t b = 0; b < width; ++b) row[b] = x[r];
    }
    la::DenseBlockT<V> by;
    keep(width == 8 ? spmm8_ms : spmm16_ms,
         TimeMs([&] { csr.SpMmTranspose(bx, by); }));
  }
}

/// fp32-vs-fp64 over a size ladder ending at the sweep size; the largest
/// graph's CSR exceeds the LLC of every host this repository targets, which
/// is where the halved value bytes turn into wall-clock.  `full_graph` is
/// the crossover sweep's already-generated graph, reused for the
/// full-scale row instead of paying a second R-MAT draw.
std::vector<PrecisionRow> RunPrecisionSweep(const SweepArgs& args,
                                            const Graph& full_graph) {
  std::vector<PrecisionRow> rows;
  for (uint32_t scale_back : {4u, 2u, 0u}) {
    if (scale_back >= args.scale) continue;
    PrecisionRow row;
    row.scale = args.scale - scale_back;
    std::optional<Graph> generated;
    const Graph* graph = &full_graph;
    if (scale_back > 0) {
      RmatOptions rmat;
      rmat.scale = row.scale;
      rmat.edges = args.edges >> scale_back;  // constant average degree
      rmat.seed = 42;
      auto smaller = GenerateRmat(rmat);
      TPA_CHECK(smaller.ok());
      generated.emplace(std::move(smaller).value());
      graph = &*generated;
    }
    Graph graph32 = RematerializeWithPrecision(*graph, la::Precision::kFloat32);
    row.nodes = graph->num_nodes();
    row.edges = graph->num_edges();
    row.csr_bytes_fp64 = graph->SizeBytes();
    row.csr_bytes_fp32 = graph32.SizeBytes();
    // Value-free twins over the explicit graph's own out-CSR structure,
    // in the exact configuration Graph serves: kRowConstant with the
    // n-length precomputed 1/out-degree array (read once per row — no
    // in-loop division), bitwise-identical to the explicit values timed
    // above.
    const la::CsrStructure& out = graph->Transition().structure();
    const std::span<const uint64_t> out_offsets = out.row_offsets.span();
    std::vector<double> scales64(graph->num_nodes(), 0.0);
    std::vector<float> scales32(graph->num_nodes(), 0.0f);
    for (uint32_t r = 0; r < graph->num_nodes(); ++r) {
      const uint64_t degree = out_offsets[r + 1] - out_offsets[r];
      if (degree == 0) continue;
      scales64[r] = 1.0 / static_cast<double>(degree);
      scales32[r] = static_cast<float>(1.0 / static_cast<double>(degree));
    }
    la::CsrMatrix vf64(out, la::CsrValueMode::kRowConstant,
                       std::move(scales64));
    la::CsrMatrixF vf32(out, la::CsrValueMode::kRowConstant,
                        std::move(scales32));
    row.csr_bytes_vf =
        la::CsrStructureBytes(out) +
        la::CsrStructureBytes(graph->TransitionTranspose().structure()) +
        2 * graph->num_nodes() * sizeof(double);
    // Three interleaved rounds, each variant next to the one it is
    // compared against; TimePrecisionKernels min-merges across rounds.
    constexpr int kTimingRounds = 3;
    for (int round = 0; round < kTimingRounds; ++round) {
      TimePrecisionKernels(graph->Transition(), row.spmv_fp64_ms,
                           row.spmvt_fp64_ms, row.spmm8_fp64_ms,
                           row.spmm16_fp64_ms);
      TimePrecisionKernels(vf64, row.spmv_vf64_ms, row.spmvt_vf64_ms,
                           row.spmm8_vf64_ms, row.spmm16_vf64_ms);
      TimePrecisionKernels(graph32.TransitionF(), row.spmv_fp32_ms,
                           row.spmvt_fp32_ms, row.spmm8_fp32_ms,
                           row.spmm16_fp32_ms);
      TimePrecisionKernels(vf32, row.spmv_vf32_ms, row.spmvt_vf32_ms,
                           row.spmm8_vf32_ms, row.spmm16_vf32_ms);
    }
    std::printf(
        "precision scale %2u (%7u nodes, %8llu edges): "
        "spmv %.3f/%.3f ms (%.2fx)  spmvt %.3f/%.3f ms (%.2fx)  "
        "spmm8 %.3f/%.3f ms (%.2fx)  spmm16 %.3f/%.3f ms (%.2fx)\n",
        row.scale, row.nodes, static_cast<unsigned long long>(row.edges),
        row.spmv_fp64_ms, row.spmv_fp32_ms, row.spmv_fp64_ms / row.spmv_fp32_ms,
        row.spmvt_fp64_ms, row.spmvt_fp32_ms,
        row.spmvt_fp64_ms / row.spmvt_fp32_ms, row.spmm8_fp64_ms,
        row.spmm8_fp32_ms, row.spmm8_fp64_ms / row.spmm8_fp32_ms,
        row.spmm16_fp64_ms, row.spmm16_fp32_ms,
        row.spmm16_fp64_ms / row.spmm16_fp32_ms);
    std::printf(
        "value-free scale %2u: spmvt vf64 %.3f ms (%.2fx vs fp64) "
        "vf32 %.3f ms (%.2fx vs fp32)  spmm16 vf64 %.3f ms (%.2fx vs fp64) "
        "vf32 %.3f ms (%.2fx vs fp32)\n",
        row.scale, row.spmvt_vf64_ms, row.spmvt_fp64_ms / row.spmvt_vf64_ms,
        row.spmvt_vf32_ms, row.spmvt_fp32_ms / row.spmvt_vf32_ms,
        row.spmm16_vf64_ms, row.spmm16_fp64_ms / row.spmm16_vf64_ms,
        row.spmm16_vf32_ms, row.spmm16_fp32_ms / row.spmm16_vf32_ms);
    row.peak_rss_bytes = PeakRssBytes();
    rows.push_back(row);
  }
  return rows;
}

void AppendPrecisionJson(std::ofstream& out,
                         const std::vector<PrecisionRow>& rows) {
  out << "  \"precision_rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const PrecisionRow& row = rows[i];
    out << "    {\"scale\": " << row.scale << ", \"nodes\": " << row.nodes
        << ", \"edges\": " << row.edges
        << ", \"csr_bytes_fp64\": " << row.csr_bytes_fp64
        << ", \"csr_bytes_fp32\": " << row.csr_bytes_fp32
        << ", \"spmv_fp64_ms\": " << row.spmv_fp64_ms
        << ", \"spmv_fp32_ms\": " << row.spmv_fp32_ms
        << ", \"spmvt_fp64_ms\": " << row.spmvt_fp64_ms
        << ", \"spmvt_fp32_ms\": " << row.spmvt_fp32_ms
        << ", \"spmm8_fp64_ms\": " << row.spmm8_fp64_ms
        << ", \"spmm8_fp32_ms\": " << row.spmm8_fp32_ms
        << ", \"spmm16_fp64_ms\": " << row.spmm16_fp64_ms
        << ", \"spmm16_fp32_ms\": " << row.spmm16_fp32_ms
        << ", \"spmm16_fp32_speedup\": "
        << row.spmm16_fp64_ms / row.spmm16_fp32_ms
        << ", \"csr_bytes_vf\": " << row.csr_bytes_vf
        << ", \"spmv_vf64_ms\": " << row.spmv_vf64_ms
        << ", \"spmv_vf32_ms\": " << row.spmv_vf32_ms
        << ", \"spmvt_vf64_ms\": " << row.spmvt_vf64_ms
        << ", \"spmvt_vf32_ms\": " << row.spmvt_vf32_ms
        << ", \"spmm8_vf64_ms\": " << row.spmm8_vf64_ms
        << ", \"spmm8_vf32_ms\": " << row.spmm8_vf32_ms
        << ", \"spmm16_vf64_ms\": " << row.spmm16_vf64_ms
        << ", \"spmm16_vf32_ms\": " << row.spmm16_vf32_ms
        << ", \"spmvt_vf64_speedup_vs_fp64\": "
        << row.spmvt_fp64_ms / row.spmvt_vf64_ms
        << ", \"spmvt_vf32_speedup_vs_fp32\": "
        << row.spmvt_fp32_ms / row.spmvt_vf32_ms
        << ", \"spmm16_vf64_speedup_vs_fp64\": "
        << row.spmm16_fp64_ms / row.spmm16_vf64_ms
        << ", \"spmm16_vf32_speedup_vs_fp32\": "
        << row.spmm16_fp32_ms / row.spmm16_vf32_ms
        << ", \"peak_rss_bytes\": " << row.peak_rss_bytes << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
}

/// The sparse-vs-dense crossover: one scatter at a synthetic frontier of f
/// rows (deterministically spread over the id space), timed for the scalar
/// and the width-8 block kernel against their dense counterparts.  The
/// crossover density — where sparse stops winning — is what
/// CpiOptions::frontier_density_threshold encodes.
int RunCrossoverSweep(const SweepArgs& args) {
  constexpr size_t kBlockWidth = 8;
  RmatOptions rmat;
  rmat.scale = args.scale;
  rmat.edges = args.edges;
  rmat.seed = 42;
  std::printf("generating R-MAT graph: scale %u, %llu edge draws\n",
              rmat.scale, static_cast<unsigned long long>(rmat.edges));
  auto graph = GenerateRmat(rmat);
  TPA_CHECK(graph.ok());
  const la::CsrMatrix& csr = graph->Transition();
  const uint32_t n = csr.rows();

  std::vector<SweepRow> rows;
  for (size_t f = 16; f < n; f *= 4) {
    SweepRow row;
    row.frontier_rows = f;
    row.density = static_cast<double>(f) / n;

    std::vector<double> x(n, 0.0);
    la::DenseBlock bx(n, kBlockWidth);
    std::vector<uint32_t> frontier;
    frontier.reserve(f);
    for (size_t i = 0; i < f; ++i) {
      const auto r = static_cast<uint32_t>((uint64_t{i} * 2654435761u) % n);
      x[r] = 1.0 / static_cast<double>(f);
      for (size_t b = 0; b < kBlockWidth; ++b) bx.At(r, b) = x[r];
      frontier.push_back(r);
    }
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());

    std::vector<double> y(n, 0.0);
    std::vector<uint32_t> next_frontier;
    la::FrontierScratch scratch;
    // The sparse timing includes the stale-support re-zeroing the adaptive
    // loop pays per iteration.
    row.spmv_sparse_ms = TimeMs([&] {
      for (uint32_t j : next_frontier) y[j] = 0.0;
      csr.SpMvTransposeFrontier(x, frontier, 1.0, y, next_frontier, scratch);
    });
    std::vector<double> dense_y;
    row.spmv_dense_ms = TimeMs([&] { csr.SpMvTranspose(x, dense_y); });

    la::DenseBlock by(n, kBlockWidth);
    next_frontier.clear();
    row.spmm_sparse_ms = TimeMs([&] {
      for (uint32_t j : next_frontier) {
        double* row_ptr = by.RowPtr(j);
        std::fill(row_ptr, row_ptr + kBlockWidth, 0.0);
      }
      csr.SpMmTransposeFrontier(bx, frontier, 1.0, by, next_frontier,
                                scratch);
    });
    la::DenseBlock dense_by;
    row.spmm_dense_ms = TimeMs([&] { csr.SpMmTranspose(bx, dense_by); });

    std::printf(
        "frontier %7zu (density %.4f): spmv %.3f/%.3f ms (%.2fx)  "
        "spmm%zu %.3f/%.3f ms (%.2fx)\n",
        row.frontier_rows, row.density, row.spmv_sparse_ms,
        row.spmv_dense_ms, row.spmv_dense_ms / row.spmv_sparse_ms,
        kBlockWidth, row.spmm_sparse_ms, row.spmm_dense_ms,
        row.spmm_dense_ms / row.spmm_sparse_ms);
    row.peak_rss_bytes = PeakRssBytes();
    rows.push_back(row);
  }

  // First measured density where the sparse kernel stops winning.
  auto crossover = [&rows](auto sparse_ms, auto dense_ms) {
    for (const SweepRow& row : rows) {
      if (sparse_ms(row) >= dense_ms(row)) return row.density;
    }
    return 1.0;
  };
  const double spmv_crossover =
      crossover([](const SweepRow& r) { return r.spmv_sparse_ms; },
                [](const SweepRow& r) { return r.spmv_dense_ms; });
  const double spmm_crossover =
      crossover([](const SweepRow& r) { return r.spmm_sparse_ms; },
                [](const SweepRow& r) { return r.spmm_dense_ms; });
  std::printf("crossover density: spmv %.4f, spmm %.4f\n", spmv_crossover,
              spmm_crossover);

  const std::vector<PrecisionRow> precision_rows =
      RunPrecisionSweep(args, *graph);

  std::ofstream out(args.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"benchmark\": \"kernels_frontier_crossover\",\n";
  out << "  \"graph\": {\"scale\": " << args.scale << ", \"nodes\": " << n
      << ", \"edges\": " << csr.nnz() << "},\n";
  out << "  \"block_width\": " << kBlockWidth << ",\n";
  out << "  \"spmv_crossover_density\": " << spmv_crossover << ",\n";
  out << "  \"spmm_crossover_density\": " << spmm_crossover << ",\n";
  out << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    out << "    {\"frontier_rows\": " << row.frontier_rows
        << ", \"density\": " << row.density
        << ", \"spmv_sparse_ms\": " << row.spmv_sparse_ms
        << ", \"spmv_dense_ms\": " << row.spmv_dense_ms
        << ", \"spmm_sparse_ms\": " << row.spmm_sparse_ms
        << ", \"spmm_dense_ms\": " << row.spmm_dense_ms
        << ", \"peak_rss_bytes\": " << row.peak_rss_bytes << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  AppendPrecisionJson(out, precision_rows);
  out << "}\n";
  std::printf("wrote %s\n", args.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) {
  const tpa::SweepArgs args = tpa::ParseSweepArgs(argc, argv);
  if (!args.json_path.empty()) return tpa::RunCrossoverSweep(args);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
