/// Table II: dataset statistics and the per-dataset TPA parameters S and T.
///
/// Prints the built statistics of every `*-sim` preset (the synthetic
/// stand-ins for the paper's seven graphs) at the requested --scale.

#include <iostream>

#include "eval/experiment.h"
#include "graph/presets.h"
#include "graph/stats.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }

  std::cout << "== Table II: dataset statistics (scale=" << args->scale
            << ") ==\n";
  TablePrinter table({"Dataset", "Nodes", "Edges", "AvgDeg", "MaxOutDeg", "S",
                      "T"});
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    auto graph = MakePresetGraph(spec, args->scale);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    GraphStats stats = ComputeGraphStats(*graph);
    table.AddRow({std::string(spec.name), std::to_string(stats.nodes),
                  std::to_string(stats.edges),
                  TablePrinter::FormatDouble(stats.avg_out_degree, 1),
                  std::to_string(stats.max_out_degree), std::to_string(spec.s),
                  std::to_string(spec.t)});
  }
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
