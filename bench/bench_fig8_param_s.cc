/// Figure 8: effect of S (the family-window size) on TPA's online time and
/// L1 error, with T fixed at 10, on the LiveJournal and Pokec stand-ins.
/// Expectation: time grows with S, error shrinks.

#include <iostream>

#include "core/cpi.h"
#include "core/tpa.h"
#include "eval/experiment.h"
#include "eval/oracle.h"
#include "graph/presets.h"
#include "la/vector_ops.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  auto specs = args->SelectDatasets({"livejournal-sim", "pokec-sim"});
  if (!specs.ok()) {
    std::cerr << specs.status() << "\n";
    return 1;
  }

  std::cout << "== Figure 8: effect of S on online time and L1 error "
               "(T=10), avg over "
            << args->seeds << " seeds ==\n";
  TablePrinter table({"Dataset", "S", "OnlineTime(s)", "L1Error"});

  for (const DatasetSpec& spec : *specs) {
    auto graph = MakePresetGraph(spec, args->scale);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    const std::vector<NodeId> seeds = PickQuerySeeds(*graph, args->seeds);
    GroundTruthOracle oracle(*graph);

    for (int s = 2; s <= 6; ++s) {
      TpaOptions options;
      options.family_window = s;
      options.stranger_start = 10;
      auto tpa = Tpa::Preprocess(*graph, options);
      if (!tpa.ok()) {
        std::cerr << tpa.status() << "\n";
        return 1;
      }
      double seconds = 0.0, error = 0.0;
      for (NodeId seed : seeds) {
        Stopwatch timer;
        std::vector<double> approx = tpa->Query(seed);
        seconds += timer.ElapsedSeconds();
        auto exact = oracle.Exact(seed);
        if (!exact.ok()) {
          std::cerr << exact.status() << "\n";
          return 1;
        }
        error += la::L1Distance(approx, *exact);
      }
      const double n = static_cast<double>(seeds.size());
      table.AddRow({std::string(spec.name), std::to_string(s),
                    TablePrinter::FormatDouble(seconds / n, 4),
                    TablePrinter::FormatDouble(error / n, 4)});
    }
  }
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
