/// Figure 10 (Appendix A): TPA vs BePI — preprocessed data size,
/// preprocessing time, and online time across the dataset suite.  BePI is
/// exact; TPA trades its bounded approximation for a much faster online
/// phase and far smaller preprocessed data.

#include <iostream>

#include "eval/experiment.h"
#include "graph/presets.h"
#include "method/registry.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

int Run(int argc, char** argv) {
  auto args = BenchArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return 1;
  }
  std::vector<std::string> all_names;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    all_names.emplace_back(spec.name);
  }
  auto specs = args->SelectDatasets(all_names);
  if (!specs.ok()) {
    std::cerr << specs.status() << "\n";
    return 1;
  }

  std::cout << "== Figure 10: TPA vs BePI (exact), avg over " << args->seeds
            << " seeds ==\n";
  TablePrinter table({"Dataset", "Method", "PreprocessedData",
                      "PreprocessTime(s)", "OnlineTime(s)"});

  for (const DatasetSpec& spec : *specs) {
    auto graph = MakePresetGraph(spec, args->scale);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    const std::vector<NodeId> seeds = PickQuerySeeds(*graph, args->seeds);
    MethodConfig config;
    config.tpa_family_window = spec.s;
    config.tpa_stranger_start = spec.t;

    for (std::string_view name : {"TPA", "BePI"}) {
      auto method = CreateMethod(name, config);
      if (!method.ok()) {
        std::cerr << method.status() << "\n";
        return 1;
      }
      // BePI's preprocessed data is linear in the graph; run unbudgeted as
      // in the paper's appendix.
      auto prep = MeasurePreprocess(**method, *graph, /*budget_bytes=*/0);
      if (!prep.ok()) {
        std::cerr << spec.name << "/" << name << ": " << prep.status() << "\n";
        return 1;
      }
      auto seconds = MeasureOnlineSeconds(**method, seeds);
      if (!seconds.ok()) {
        std::cerr << spec.name << "/" << name << ": " << seconds.status()
                  << "\n";
        return 1;
      }
      table.AddRow({std::string(spec.name), std::string(name),
                    TablePrinter::FormatBytes(prep->preprocessed_bytes),
                    TablePrinter::FormatDouble(prep->seconds, 3),
                    TablePrinter::FormatDouble(*seconds, 4)});
    }
  }
  Status emitted = EmitTable(table, *args);
  if (!emitted.ok()) std::cerr << emitted << "\n";
  return 0;
}

}  // namespace
}  // namespace tpa

int main(int argc, char** argv) { return tpa::Run(argc, argv); }
