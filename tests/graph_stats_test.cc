#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"

namespace tpa {
namespace {

TEST(GraphStatsTest, HandComputedChain) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  BuildOptions options;
  options.dangling_policy = DanglingPolicy::kKeep;
  auto graph = builder.Build(options);
  ASSERT_TRUE(graph.ok());

  GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.edges, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 0.75);
  EXPECT_EQ(stats.max_out_degree, 1u);
  EXPECT_EQ(stats.max_in_degree, 1u);
  EXPECT_EQ(stats.dangling_nodes, 1u);  // node 3
  EXPECT_EQ(stats.isolated_nodes, 0u);
}

TEST(GraphStatsTest, IsolatedNodesCounted) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  BuildOptions options;
  options.dangling_policy = DanglingPolicy::kKeep;
  auto graph = builder.Build(options);
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeGraphStats(*graph);
  // Nodes 2, 3, 4 have no edges at all; node 1 is dangling but not isolated.
  EXPECT_EQ(stats.isolated_nodes, 3u);
  EXPECT_EQ(stats.dangling_nodes, 4u);
}

TEST(GraphStatsTest, StarGraphDegrees) {
  GraphBuilder builder(11);
  for (NodeId v = 1; v <= 10; ++v) builder.AddEdge(0, v);
  auto graph = builder.Build();  // self-loops fix dangling leaves
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_EQ(stats.max_out_degree, 10u);
  EXPECT_EQ(stats.dangling_nodes, 0u);
}

TEST(GraphStatsTest, MatchesGeneratorContract) {
  DcsbmOptions options;
  options.nodes = 400;
  options.edges = 3000;
  options.blocks = 4;
  options.seed = 9;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_EQ(stats.nodes, 400u);
  EXPECT_EQ(stats.edges, graph->num_edges());
  EXPECT_EQ(stats.dangling_nodes, 0u);
  EXPECT_GT(stats.max_out_degree, stats.avg_out_degree);
}

}  // namespace
}  // namespace tpa
