/// Bound-driven top-k query path (Cpi::RunTopKT / Tpa::QueryTopK /
/// RwrMethod::QueryTopK): exact agreement with the full-vector-sort oracle
/// at both precision tiers, early termination actually firing (with
/// iteration-count assertions), k edge cases, and input validation.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cpi.h"
#include "core/tpa.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "la/precision.h"
#include "la/topk.h"
#include "la/vector_ops.h"
#include "method/power_iteration.h"
#include "method/tpa_method.h"
#include "util/check.h"
#include "util/memory_budget.h"

namespace tpa {
namespace {

Graph CommunityGraph(uint64_t seed = 33) {
  DcsbmOptions options;
  options.nodes = 400;
  options.edges = 4000;
  options.blocks = 8;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

/// Bidirectional star: from the hub, the top-1 gap dwarfs every other
/// score, so the remaining-mass bound certifies k = 1 before the family
/// window's natural end — a deterministic early-termination fixture.
Graph StarGraph(NodeId n = 300) {
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) {
    builder.AddEdge(0, v);
    builder.AddEdge(v, 0);
  }
  auto graph = builder.Build();
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

/// The full-vector oracle: dense scores, full ranking via la::TopKIndices
/// (score descending, ties toward the smaller index).
template <typename V>
std::vector<ScoredNode> OracleTopK(const std::vector<V>& scores, size_t k) {
  std::vector<ScoredNode> top;
  for (size_t i : la::TopKIndices(scores, k)) {
    top.push_back({static_cast<NodeId>(i), static_cast<double>(scores[i])});
  }
  return top;
}

TEST(TpaTopKTest, ExactModeMatchesFullSortOracleBitwise) {
  Graph graph = CommunityGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());

  TopKQueryOptions exact;
  exact.allow_early_termination = false;
  for (NodeId seed : {NodeId{0}, NodeId{57}, NodeId{211}, NodeId{399}}) {
    const std::vector<double> dense = tpa->Query(seed);
    for (int k : {1, 5, 25}) {
      const std::vector<ScoredNode> oracle =
          OracleTopK(dense, static_cast<size_t>(k));
      const TopKQueryResult result = tpa->QueryTopK(seed, k, exact);
      ASSERT_EQ(result.top.size(), oracle.size()) << "seed " << seed;
      EXPECT_FALSE(result.early_terminated);
      for (size_t i = 0; i < oracle.size(); ++i) {
        ASSERT_EQ(result.top[i].node, oracle[i].node)
            << "seed " << seed << " k " << k << " rank " << i;
        ASSERT_EQ(result.top[i].score, oracle[i].score)
            << "seed " << seed << " k " << k << " rank " << i;
      }
    }
  }
}

TEST(TpaTopKTest, EarlyTerminationPreservesExactRanking) {
  Graph graph = CommunityGraph(91);
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());

  for (NodeId seed : {NodeId{3}, NodeId{120}, NodeId{388}}) {
    const std::vector<double> dense = tpa->Query(seed);
    for (int k : {1, 10}) {
      const std::vector<ScoredNode> oracle =
          OracleTopK(dense, static_cast<size_t>(k));
      const TopKQueryResult result = tpa->QueryTopK(seed, k);
      ASSERT_EQ(result.top.size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        ASSERT_EQ(result.top[i].node, oracle[i].node)
            << "seed " << seed << " k " << k << " rank " << i;
        // Early-terminated scores are certified lower bounds of the exact
        // merged scores.
        ASSERT_LE(result.top[i].score, oracle[i].score + 1e-12);
      }
    }
  }
}

TEST(TpaTopKTest, EarlyTerminationFiresOnStarHub) {
  Graph graph = StarGraph();
  TpaOptions options;
  auto tpa = Tpa::Preprocess(graph, options);
  ASSERT_TRUE(tpa.ok());

  const TopKQueryResult result = tpa->QueryTopK(0, 1);
  EXPECT_TRUE(result.early_terminated);
  // The family window runs iterations 0 .. S-1; certification must have cut
  // at least the final one.
  EXPECT_LT(result.last_iteration, options.family_window - 1);
  ASSERT_EQ(result.top.size(), 1u);
  const std::vector<ScoredNode> oracle = OracleTopK(tpa->Query(0), 1);
  EXPECT_EQ(result.top[0].node, oracle[0].node);
}

TEST(TpaTopKTest, KEdgeCases) {
  Graph graph = CommunityGraph(5);
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  const NodeId n = graph.num_nodes();
  const NodeId seed = 17;
  const std::vector<double> dense = tpa->Query(seed);

  EXPECT_TRUE(tpa->QueryTopK(seed, 0).top.empty());

  TopKQueryOptions exact;
  exact.allow_early_termination = false;
  for (int k : {static_cast<int>(n), static_cast<int>(n) + 7}) {
    const TopKQueryResult result = tpa->QueryTopK(seed, k, exact);
    const std::vector<ScoredNode> oracle = OracleTopK(dense, n);
    ASSERT_EQ(result.top.size(), static_cast<size_t>(n)) << "k " << k;
    for (size_t i = 0; i < oracle.size(); ++i) {
      ASSERT_EQ(result.top[i].node, oracle[i].node) << "k " << k;
      ASSERT_EQ(result.top[i].score, oracle[i].score) << "k " << k;
    }
    // A ranking over all n nodes can never exclude anyone, so the bounds
    // must not have cut the window.
    EXPECT_FALSE(result.early_terminated);
  }
}

TEST(TpaTopKTest, ResultsInvariantToFrontierThreshold) {
  Graph graph = CommunityGraph(13);
  TopKQueryOptions exact;
  exact.allow_early_termination = false;
  TpaOptions base_options;
  auto reference = Tpa::Preprocess(graph, base_options);
  ASSERT_TRUE(reference.ok());
  const TopKQueryResult expected = reference->QueryTopK(42, 12, exact);

  for (double threshold : {0.0, 0.05, 1.0}) {
    TpaOptions options;
    options.topk_frontier_density_threshold = threshold;
    auto tpa = Tpa::Preprocess(graph, options);
    ASSERT_TRUE(tpa.ok());
    const TopKQueryResult result = tpa->QueryTopK(42, 12, exact);
    ASSERT_EQ(result.top.size(), expected.top.size());
    for (size_t i = 0; i < expected.top.size(); ++i) {
      ASSERT_EQ(result.top[i].node, expected.top[i].node)
          << "threshold " << threshold;
      ASSERT_EQ(result.top[i].score, expected.top[i].score)
          << "threshold " << threshold;
    }
  }
}

TEST(TpaTopKTest, Fp32TierMatchesFp32OracleBitwise) {
  Graph graph = CommunityGraph(71);
  Graph fp32 = RematerializeWithPrecision(graph, la::Precision::kFloat32);
  auto tpa = Tpa::Preprocess(fp32, {});
  ASSERT_TRUE(tpa.ok());
  ASSERT_EQ(tpa->precision(), la::Precision::kFloat32);

  TopKQueryOptions exact;
  exact.allow_early_termination = false;
  for (NodeId seed : {NodeId{9}, NodeId{250}}) {
    const std::vector<float> dense = tpa->QueryF(seed);
    const std::vector<ScoredNode> oracle = OracleTopK(dense, 10);
    const TopKQueryResult result = tpa->QueryTopK(seed, 10, exact);
    ASSERT_EQ(result.top.size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
      ASSERT_EQ(result.top[i].node, oracle[i].node) << "seed " << seed;
      ASSERT_EQ(result.top[i].score, oracle[i].score) << "seed " << seed;
    }
  }
}

TEST(PowerIterationTopKTest, EarlyTerminationCutsIterationCount) {
  Graph graph = CommunityGraph(29);
  PowerIterationRwr method;
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  ASSERT_TRUE(method.SupportsTopKQuery());

  const NodeId seed = 77;
  CpiOptions full_options;
  auto full = Cpi::Run(graph, {seed}, full_options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->converged);

  auto topk = method.QueryTopK(seed, 1);
  ASSERT_TRUE(topk.ok());
  EXPECT_TRUE(topk->early_terminated);
  // Exact RWR converges to ‖x‖₁ < 1e-9 (~130 iterations at c = 0.15); the
  // top-1 ranking certifies once the geometric tail drops below the
  // leader's gap — far earlier.
  EXPECT_LT(topk->last_iteration, full->last_iteration / 2);

  auto dense = method.Query(seed);
  ASSERT_TRUE(dense.ok());
  const std::vector<ScoredNode> oracle = OracleTopK(*dense, 1);
  ASSERT_EQ(topk->top.size(), 1u);
  EXPECT_EQ(topk->top[0].node, oracle[0].node);
}

TEST(PowerIterationTopKTest, ExactModeMatchesFullSortOracleBitwise) {
  Graph graph = CommunityGraph(47);
  PowerIterationRwr method;
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());

  TopKQueryOptions exact;
  exact.allow_early_termination = false;
  for (NodeId seed : {NodeId{1}, NodeId{199}}) {
    auto dense = method.Query(seed);
    ASSERT_TRUE(dense.ok());
    const std::vector<ScoredNode> oracle = OracleTopK(*dense, 15);
    auto result = method.QueryTopK(seed, 15, exact);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->top.size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
      ASSERT_EQ(result->top[i].node, oracle[i].node) << "seed " << seed;
      ASSERT_EQ(result->top[i].score, oracle[i].score) << "seed " << seed;
    }
  }
}

TEST(RunTopKValidationTest, RejectsBadInputs) {
  Graph graph = CommunityGraph(3);
  Cpi::TopKRunOptions run;

  run.k = -1;
  EXPECT_FALSE(Cpi::RunTopKT<double>(graph, {0}, {}, run).ok());
  run.k = 5;

  EXPECT_FALSE(Cpi::RunTopKT<double>(graph, {}, {}, run).ok());
  EXPECT_FALSE(
      Cpi::RunTopKT<double>(graph, {graph.num_nodes()}, {}, run).ok());

  Cpi::TopKBaseT<double> bad_base;
  std::vector<double> short_base(graph.num_nodes() - 1, 0.0);
  bad_base.base = &short_base;
  EXPECT_FALSE(Cpi::RunTopKT<double>(graph, {0}, {}, run, bad_base).ok());

  std::vector<double> full_base(graph.num_nodes(), 0.0);
  Cpi::TopKBaseT<double> missing_order;
  missing_order.base = &full_base;
  EXPECT_FALSE(
      Cpi::RunTopKT<double>(graph, {0}, {}, run, missing_order).ok());

  std::vector<NodeId> order(graph.num_nodes());
  for (NodeId i = 0; i < graph.num_nodes(); ++i) order[i] = i;
  Cpi::TopKBaseT<double> negative_scale;
  negative_scale.base = &full_base;
  negative_scale.order = order;
  negative_scale.post_scale = -1.0;
  EXPECT_FALSE(
      Cpi::RunTopKT<double>(graph, {0}, {}, run, negative_scale).ok());
}

}  // namespace
}  // namespace tpa
