#include "la/sparse_matrix.h"

#include <gtest/gtest.h>

#include <vector>

namespace tpa::la {
namespace {

TEST(SparseMatrixTest, AssemblesAndMultiplies) {
  auto m = SparseMatrix::FromTriplets(2, 3,
                                      {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 3u);
  std::vector<double> y;
  m->MatVec({1.0, 1.0, 1.0}, y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(SparseMatrixTest, DuplicatesAreSummed) {
  auto m = SparseMatrix::FromTriplets(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 1u);
  std::vector<double> y;
  m->MatVec({1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
}

TEST(SparseMatrixTest, ExplicitZerosDropped) {
  auto m = SparseMatrix::FromTriplets(1, 2, {{0, 0, 0.0}, {0, 1, 1.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 1u);
}

TEST(SparseMatrixTest, CancellingDuplicatesDropped) {
  auto m = SparseMatrix::FromTriplets(1, 1, {{0, 0, 2.0}, {0, 0, -2.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 0u);
}

TEST(SparseMatrixTest, OutOfRangeRejected) {
  auto m = SparseMatrix::FromTriplets(2, 2, {{2, 0, 1.0}});
  EXPECT_EQ(m.status().code(), StatusCode::kOutOfRange);
}

TEST(SparseMatrixTest, MatVecTransposeMatchesManual) {
  auto m = SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 2, 4.0}});
  ASSERT_TRUE(m.ok());
  std::vector<double> y;
  m->MatVecTranspose({1.0, 10.0}, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 40.0);
}

TEST(SparseMatrixTest, RowSpansSortedByColumn) {
  auto m = SparseMatrix::FromTriplets(
      1, 5, {{0, 4, 1.0}, {0, 0, 2.0}, {0, 2, 3.0}});
  ASSERT_TRUE(m.ok());
  auto cols = m->RowIndices(0);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 0u);
  EXPECT_EQ(cols[1], 2u);
  EXPECT_EQ(cols[2], 4u);
}

TEST(SparseMatrixTest, DroppedRemovesSmallEntries) {
  auto m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 0.5}, {0, 1, 0.001}, {1, 1, -0.002}});
  ASSERT_TRUE(m.ok());
  SparseMatrix dropped = m->Dropped(0.01);
  EXPECT_EQ(dropped.nnz(), 1u);
  std::vector<double> y;
  dropped.MatVec({1.0, 1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(SparseMatrixTest, DroppedKeepsThresholdBoundary) {
  auto m = SparseMatrix::FromTriplets(1, 1, {{0, 0, 0.01}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->Dropped(0.01).nnz(), 1u);   // >= keeps
  EXPECT_EQ(m->Dropped(0.011).nnz(), 0u);  // < drops
}

TEST(SparseMatrixTest, SizeBytesTracksContents) {
  auto empty = SparseMatrix::FromTriplets(4, 4, {});
  auto filled = SparseMatrix::FromTriplets(4, 4, {{0, 0, 1.0}, {1, 1, 1.0}});
  ASSERT_TRUE(empty.ok());
  ASSERT_TRUE(filled.ok());
  EXPECT_GT(filled->SizeBytes(), empty->SizeBytes());
}

}  // namespace
}  // namespace tpa::la
