#include "core/cpi.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <atomic>
#include <cmath>
#include <string>

#include "graph/builder.h"
#include "graph/generators.h"
#include "la/vector_ops.h"

namespace tpa {
namespace {

Graph TestGraph() {
  DcsbmOptions options;
  options.nodes = 300;
  options.edges = 2400;
  options.blocks = 4;
  options.seed = 5;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(CpiTest, ScoresSumToOneAtConvergence) {
  Graph graph = TestGraph();
  auto result = Cpi::Run(graph, {0}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  // Σ‖x(i)‖₁ = Σ c(1-c)^i = 1 up to the truncated tail (≤ ε/c iterations).
  EXPECT_NEAR(la::NormL1(result->scores), 1.0, 1e-7);
}

TEST(CpiTest, SatisfiesFixedPointEquation) {
  // Theorem 1: r = (1-c)Ã^T r + c q.
  Graph graph = TestGraph();
  CpiOptions options;
  options.tolerance = 1e-12;
  auto result = Cpi::Run(graph, {17}, options);
  ASSERT_TRUE(result.ok());
  const auto& r = result->scores;

  std::vector<double> rhs;
  graph.MultiplyTranspose(r, rhs);
  la::Scale(1.0 - options.restart_probability, rhs);
  rhs[17] += options.restart_probability;
  EXPECT_LT(la::L1Distance(r, rhs), 1e-9);
}

TEST(CpiTest, InterimNormMatchesClosedForm) {
  // ‖x(i)‖₁ = c(1-c)^i on a stochastic graph (proof of Lemma 2).
  Graph graph = TestGraph();
  CpiOptions options;
  options.terminal_iteration = 10;
  auto result = Cpi::Run(graph, {3}, options);
  ASSERT_TRUE(result.ok());
  const double c = options.restart_probability;
  EXPECT_NEAR(result->last_interim_norm, c * std::pow(1.0 - c, 10), 1e-12);
}

TEST(CpiTest, WindowsPartitionTheFullSum) {
  // family + neighbor + stranger = full CPI result, exactly.
  Graph graph = TestGraph();
  std::vector<double> q(graph.num_nodes(), 0.0);
  q[42] = 1.0;

  CpiOptions options;
  options.tolerance = 1e-12;
  auto windows = Cpi::RunWindowed(graph, q, {0, 5, 10}, options);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 3u);

  auto full = Cpi::RunWithSeedVector(graph, q, options);
  ASSERT_TRUE(full.ok());

  std::vector<double> sum = (*windows)[0];
  la::Axpy(1.0, (*windows)[1], sum);
  la::Axpy(1.0, (*windows)[2], sum);
  EXPECT_LT(la::L1Distance(sum, full->scores), 1e-12);
}

TEST(CpiTest, WindowNormsMatchLemma2) {
  Graph graph = TestGraph();
  std::vector<double> q(graph.num_nodes(), 0.0);
  q[7] = 1.0;
  const int s = 5, t = 10;
  CpiOptions options;
  options.tolerance = 1e-12;
  auto windows = Cpi::RunWindowed(graph, q, {0, s, t}, options);
  ASSERT_TRUE(windows.ok());
  const double c = options.restart_probability;
  const double decay = 1.0 - c;
  EXPECT_NEAR(la::NormL1((*windows)[0]), 1.0 - std::pow(decay, s), 1e-9);
  EXPECT_NEAR(la::NormL1((*windows)[1]),
              std::pow(decay, s) - std::pow(decay, t), 1e-9);
  EXPECT_NEAR(la::NormL1((*windows)[2]), std::pow(decay, t), 1e-7);
}

TEST(CpiTest, PartialWindowMatchesManualSum) {
  // CPI(siter=2, titer=4) == x(2)+x(3)+x(4).
  Graph graph = TestGraph();
  std::vector<double> q(graph.num_nodes(), 0.0);
  q[0] = 1.0;
  CpiOptions window;
  window.start_iteration = 2;
  window.terminal_iteration = 4;
  auto part = Cpi::RunWithSeedVector(graph, q, window);
  ASSERT_TRUE(part.ok());

  // Manually: run single-iteration windows and add.
  std::vector<double> manual(graph.num_nodes(), 0.0);
  for (int i = 2; i <= 4; ++i) {
    CpiOptions one;
    one.start_iteration = i;
    one.terminal_iteration = i;
    auto x = Cpi::RunWithSeedVector(graph, q, one);
    ASSERT_TRUE(x.ok());
    la::Axpy(1.0, x->scores, manual);
  }
  EXPECT_LT(la::L1Distance(part->scores, manual), 1e-14);
}

TEST(CpiTest, PageRankIsSeedIndependentUniformRestart) {
  Graph graph = TestGraph();
  CpiOptions options;
  auto pagerank = Cpi::PageRank(graph, options);
  ASSERT_TRUE(pagerank.ok());
  EXPECT_NEAR(la::NormL1(*pagerank), 1.0, 1e-7);
  // PageRank must differ from any single-seed RWR on a non-trivial graph.
  auto rwr = Cpi::ExactRwr(graph, 0, options);
  ASSERT_TRUE(rwr.ok());
  EXPECT_GT(la::L1Distance(*pagerank, *rwr), 0.1);
}

TEST(CpiTest, MultiSeedDistributesUniformly) {
  Graph graph = TestGraph();
  auto multi = Cpi::Run(graph, {1, 2}, {});
  ASSERT_TRUE(multi.ok());
  auto a = Cpi::ExactRwr(graph, 1, {});
  auto b = Cpi::ExactRwr(graph, 2, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Linearity: RWR({1,2}) = (RWR(1) + RWR(2)) / 2.
  std::vector<double> avg(graph.num_nodes(), 0.0);
  la::Axpy(0.5, *a, avg);
  la::Axpy(0.5, *b, avg);
  EXPECT_LT(la::L1Distance(multi->scores, avg), 1e-7);
}

TEST(CpiTest, PushAndPullVariantsAgree) {
  Graph graph = TestGraph();
  CpiOptions push, pull;
  pull.use_pull = true;
  auto a = Cpi::ExactRwr(graph, 9, push);
  auto b = Cpi::ExactRwr(graph, 9, pull);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(la::L1Distance(*a, *b), 1e-10);
}

TEST(CpiTest, IterationCountFormula) {
  // Lemma 4: iterations ≈ log_{1-c}(ε/c).
  const int iters = CpiIterationCount(0.15, 1e-9);
  EXPECT_GT(iters, 100);
  EXPECT_LT(iters, 130);
  Graph graph = TestGraph();
  auto result = Cpi::Run(graph, {0}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_LE(std::abs(result->last_iteration - iters), 1);
}

TEST(CpiTest, ValidatesArguments) {
  Graph graph = TestGraph();
  EXPECT_FALSE(Cpi::Run(graph, {}, {}).ok());
  EXPECT_FALSE(Cpi::Run(graph, {graph.num_nodes()}, {}).ok());

  CpiOptions bad_c;
  bad_c.restart_probability = 1.5;
  EXPECT_FALSE(Cpi::Run(graph, {0}, bad_c).ok());

  CpiOptions bad_window;
  bad_window.start_iteration = 5;
  bad_window.terminal_iteration = 3;
  EXPECT_FALSE(Cpi::Run(graph, {0}, bad_window).ok());

  std::vector<double> wrong_size(graph.num_nodes() + 1, 0.0);
  EXPECT_FALSE(Cpi::RunWithSeedVector(graph, wrong_size, {}).ok());

  std::vector<double> q(graph.num_nodes(), 0.0);
  EXPECT_FALSE(Cpi::RunWindowed(graph, q, {1, 5}, {}).ok());   // must start 0
  EXPECT_FALSE(Cpi::RunWindowed(graph, q, {0, 5, 5}, {}).ok()); // increasing

  CpiOptions bad_threshold;
  bad_threshold.frontier_density_threshold = 1.5;
  EXPECT_FALSE(Cpi::Run(graph, {0}, bad_threshold).ok());
  bad_threshold.frontier_density_threshold = -0.1;
  EXPECT_FALSE(Cpi::RunWindowed(graph, q, {0, 5}, bad_threshold).ok());
}

void ExpectResultBitwiseEq(const Cpi::Result& got, const Cpi::Result& expected,
                           const std::string& label) {
  EXPECT_EQ(got.last_iteration, expected.last_iteration) << label;
  EXPECT_EQ(got.converged, expected.converged) << label;
  EXPECT_EQ(got.last_interim_norm, expected.last_interim_norm) << label;
  ASSERT_EQ(got.scores.size(), expected.scores.size()) << label;
  for (size_t i = 0; i < expected.scores.size(); ++i) {
    ASSERT_EQ(got.scores[i], expected.scores[i]) << label << " node " << i;
  }
}

TEST(CpiAdaptiveTest, SparseHeadIsBitwiseIdenticalAtEveryThreshold) {
  // Threshold 0 = always dense, 1 = sparse to convergence; every setting in
  // between switches at a different iteration.  All must agree bitwise.
  Graph graph = TestGraph();
  CpiOptions dense_only;
  dense_only.frontier_density_threshold = 0.0;
  auto expected = Cpi::Run(graph, {7}, dense_only);
  ASSERT_TRUE(expected.ok());

  for (double threshold : {0.05, 0.125, 0.5, 1.0}) {
    CpiOptions adaptive;
    adaptive.frontier_density_threshold = threshold;
    auto result = Cpi::Run(graph, {7}, adaptive);
    ASSERT_TRUE(result.ok());
    ExpectResultBitwiseEq(*result, *expected,
                          "threshold " + std::to_string(threshold));
  }
}

TEST(CpiAdaptiveTest, MultiSeedAndWindowedAgreeAcrossThresholds) {
  Graph graph = TestGraph();
  CpiOptions dense_only;
  dense_only.frontier_density_threshold = 0.0;
  CpiOptions sparse_head;
  sparse_head.frontier_density_threshold = 1.0;

  auto dense_multi = Cpi::Run(graph, {3, 42, 42, 199}, dense_only);
  auto sparse_multi = Cpi::Run(graph, {3, 42, 42, 199}, sparse_head);
  ASSERT_TRUE(dense_multi.ok());
  ASSERT_TRUE(sparse_multi.ok());
  ExpectResultBitwiseEq(*sparse_multi, *dense_multi, "multi-seed");

  std::vector<double> q(graph.num_nodes(), 0.0);
  q[11] = 0.75;
  q[250] = 0.25;
  auto dense_windows = Cpi::RunWindowed(graph, q, {0, 5, 10}, dense_only);
  auto sparse_windows = Cpi::RunWindowed(graph, q, {0, 5, 10}, sparse_head);
  ASSERT_TRUE(dense_windows.ok());
  ASSERT_TRUE(sparse_windows.ok());
  ASSERT_EQ(sparse_windows->size(), dense_windows->size());
  for (size_t w = 0; w < dense_windows->size(); ++w) {
    for (size_t i = 0; i < (*dense_windows)[w].size(); ++i) {
      ASSERT_EQ((*sparse_windows)[w][i], (*dense_windows)[w][i])
          << "window " << w << " node " << i;
    }
  }
}

TEST(CpiAdaptiveTest, ReusedWorkspaceIsBitwiseStable) {
  // One workspace across a mixed sequence of queries must leave no residue:
  // every result matches a fresh-workspace run bitwise.
  Graph graph = TestGraph();
  Cpi::Workspace workspace;

  CpiOptions family_window;
  family_window.terminal_iteration = 4;

  const std::vector<std::vector<NodeId>> queries = {
      {0}, {299}, {5, 17}, {0}, {123}};
  for (const auto& seeds : queries) {
    auto reused = Cpi::Run(graph, seeds, family_window, &workspace);
    auto fresh = Cpi::Run(graph, seeds, family_window);
    ASSERT_TRUE(reused.ok());
    ASSERT_TRUE(fresh.ok());
    ExpectResultBitwiseEq(*reused, *fresh,
                          "seed " + std::to_string(seeds[0]));
  }

  // Interleave an unbounded run and a windowed run through the same
  // workspace; both must still match fresh runs.
  auto reused_full = Cpi::Run(graph, {42}, {}, &workspace);
  auto fresh_full = Cpi::Run(graph, {42}, {});
  ASSERT_TRUE(reused_full.ok());
  ASSERT_TRUE(fresh_full.ok());
  ExpectResultBitwiseEq(*reused_full, *fresh_full, "unbounded");

  std::vector<double> q(graph.num_nodes(), 0.0);
  q[9] = 1.0;
  auto reused_win = Cpi::RunWindowed(graph, q, {0, 5}, {}, &workspace);
  auto fresh_win = Cpi::RunWindowed(graph, q, {0, 5}, {});
  ASSERT_TRUE(reused_win.ok());
  ASSERT_TRUE(fresh_win.ok());
  for (size_t w = 0; w < fresh_win->size(); ++w) {
    for (size_t i = 0; i < (*fresh_win)[w].size(); ++i) {
      ASSERT_EQ((*reused_win)[w][i], (*fresh_win)[w][i])
          << "window " << w << " node " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Cooperative aborts: a context-stopped run is not "roughly" the prefix of
// the computation — it is *exactly* the run a fresh terminal_iteration
// bound would have produced, and its certified bound really covers the
// truncated tail.  Both properties hold in every build (no failpoints
// involved).

/// A context that aborts (kCancelled) at the first poll after
/// `min_iterations` — the pre-set cancel flag makes the abort land at a
/// deterministic iteration.
struct AbortPlan {
  std::atomic<bool> cancel{true};
  QueryContext context;
  explicit AbortPlan(int at_iteration) {
    context.cancel = &cancel;
    context.min_iterations = at_iteration;
  }
};

TEST(CpiAbortTest, AbortedIterateIsBitwiseTheFreshTerminalRun) {
  Graph graph = TestGraph();
  CpiOptions options;
  options.tolerance = 1e-12;

  for (int i : {0, 1, 3, 7}) {
    AbortPlan plan(i);
    auto aborted = Cpi::Run(graph, {11}, options, nullptr, &plan.context);
    ASSERT_TRUE(aborted.ok());
    EXPECT_EQ(aborted->abort_code, StatusCode::kCancelled);
    EXPECT_FALSE(aborted->converged);
    EXPECT_TRUE(plan.context.aborted);
    EXPECT_EQ(plan.context.abort_code, StatusCode::kCancelled);
    EXPECT_EQ(plan.context.aborted_at_iteration, i);

    CpiOptions fresh = options;
    fresh.terminal_iteration = i;
    auto reference = Cpi::Run(graph, {11}, fresh);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(aborted->last_iteration, reference->last_iteration);
    EXPECT_EQ(aborted->last_interim_norm, reference->last_interim_norm);
    ASSERT_EQ(aborted->scores.size(), reference->scores.size());
    for (size_t j = 0; j < reference->scores.size(); ++j) {
      ASSERT_EQ(aborted->scores[j], reference->scores[j])
          << "iteration " << i << " node " << j;
    }
  }
}

TEST(CpiAbortTest, ErrorBoundCoversTrueGapToConvergedOracle) {
  Graph graph = TestGraph();
  CpiOptions options;
  options.tolerance = 1e-10;
  auto oracle = Cpi::Run(graph, {42}, options);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(oracle->converged);

  for (int i : {0, 2, 5, 10}) {
    AbortPlan plan(i);
    auto aborted = Cpi::Run(graph, {42}, options, nullptr, &plan.context);
    ASSERT_TRUE(aborted.ok());
    ASSERT_EQ(aborted->abort_code, StatusCode::kCancelled);
    const double gap = la::L1Distance(aborted->scores, oracle->scores);
    EXPECT_GT(aborted->remaining_mass_bound, 0.0);
    EXPECT_LE(gap, aborted->remaining_mass_bound)
        << "bound does not cover the truncated tail at iteration " << i;
    EXPECT_EQ(aborted->remaining_mass_bound, plan.context.error_bound);
    // The bound stays honest, not vacuous: geometric, so within a decay
    // factor of the mass actually left on the table.
    EXPECT_LT(aborted->remaining_mass_bound, 1.0);
  }
}

TEST(CpiAbortTest, BatchAbortMatchesScalarAbortBitwise) {
  Graph graph = TestGraph();
  CpiOptions options;
  options.tolerance = 1e-12;
  const std::vector<NodeId> seeds = {7, 23, 99, 150};

  // Seeds 1 and 3 abort at different iterations; 0 and 2 run to
  // convergence inside the same shared-SpMM batch.
  AbortPlan plan1(2);
  AbortPlan plan3(5);
  const std::vector<QueryContext*> contexts = {nullptr, &plan1.context,
                                               nullptr, &plan3.context};
  auto block = Cpi::RunBatch(graph, seeds, options, nullptr, contexts);
  ASSERT_TRUE(block.ok());
  EXPECT_TRUE(plan1.context.aborted);
  EXPECT_EQ(plan1.context.aborted_at_iteration, 2);
  EXPECT_TRUE(plan3.context.aborted);
  EXPECT_EQ(plan3.context.aborted_at_iteration, 5);

  for (size_t b = 0; b < seeds.size(); ++b) {
    AbortPlan scalar_plan(b == 1 ? 2 : 5);
    QueryContext* scalar_context =
        (b == 1 || b == 3) ? &scalar_plan.context : nullptr;
    auto scalar =
        Cpi::Run(graph, {seeds[b]}, options, nullptr, scalar_context);
    ASSERT_TRUE(scalar.ok());
    for (NodeId r = 0; r < graph.num_nodes(); ++r) {
      ASSERT_EQ(block->At(r, b), scalar->scores[r])
          << "seed " << seeds[b] << " node " << r;
    }
  }
  // The batch records per-seed bounds identical to the scalar runs'.
  AbortPlan scalar1(2);
  auto scalar = Cpi::Run(graph, {seeds[1]}, options, nullptr,
                         &scalar1.context);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(plan1.context.error_bound, scalar1.context.error_bound);
}

TEST(CpiAbortTest, ConvergenceOutranksAbort) {
  // A pre-expired deadline on a run that converges at iteration 0 (seed
  // with tolerance above c) still yields the converged answer, unaborted.
  Graph graph = TestGraph();
  CpiOptions options;
  options.tolerance = 0.5;  // x(0) norm is c = 0.15 < 0.5: instant converge
  QueryContext context;
  context.deadline = std::chrono::steady_clock::time_point{};  // long past
  auto result = Cpi::Run(graph, {3}, options, nullptr, &context);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->abort_code, StatusCode::kOk);
  EXPECT_FALSE(context.aborted);
}

}  // namespace
}  // namespace tpa
