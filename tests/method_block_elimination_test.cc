#include "method/block_elimination.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include "graph/generators.h"
#include "la/vector_ops.h"

namespace tpa {
namespace {

Graph TestGraph() {
  DcsbmOptions options;
  options.nodes = 400;
  options.edges = 2600;
  options.blocks = 8;
  options.zipf_theta = 1.0;
  options.seed = 61;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(BlockEliminationTest, PartitionReconstructsH) {
  // Applying the four blocks to a permuted vector must equal
  // (I − (1-c)Ã^T) x in original coordinates.
  Graph graph = TestGraph();
  const double c = 0.15;
  auto partition = BuildHPartition(graph, c, {});
  ASSERT_TRUE(partition.ok());
  const NodeId n = graph.num_nodes();
  const NodeId n1 = partition->n1();
  const NodeId n2 = partition->n2();
  ASSERT_EQ(n1 + n2, n);

  // Random-ish test vector.
  std::vector<double> x(n);
  for (NodeId i = 0; i < n; ++i) x[i] = 0.01 * (i % 17) - 0.05;

  // Original-space H x.
  std::vector<double> hx;
  graph.MultiplyTranspose(x, hx);
  for (NodeId i = 0; i < n; ++i) hx[i] = x[i] - (1.0 - c) * hx[i];

  // Partitioned: permute, apply blocks, un-permute.
  std::vector<double> x1(n1), x2(n2);
  for (NodeId p = 0; p < n; ++p) {
    const double value = x[partition->ordering.old_of_new[p]];
    if (p < n1) {
      x1[p] = value;
    } else {
      x2[p - n1] = value;
    }
  }
  std::vector<double> y1(n1), y2(n2), t(n1), u(n2);
  partition->h11.MatVec(x1, y1);
  partition->h12.MatVec(x2, t);
  la::Axpy(1.0, t, y1);
  partition->h21.MatVec(x1, u);
  partition->h22.MatVec(x2, y2);
  la::Axpy(1.0, u, y2);

  for (NodeId p = 0; p < n; ++p) {
    const double expected = hx[partition->ordering.old_of_new[p]];
    const double actual = p < n1 ? y1[p] : y2[p - n1];
    EXPECT_NEAR(actual, expected, 1e-12) << "position " << p;
  }
}

TEST(BlockEliminationTest, H11IsBlockDiagonal) {
  Graph graph = TestGraph();
  auto partition = BuildHPartition(graph, 0.15, {});
  ASSERT_TRUE(partition.ok());
  // Every nonzero of row r must fall inside r's block.
  for (const auto& [begin, end] : partition->ordering.blocks) {
    for (NodeId r = begin; r < end; ++r) {
      for (uint32_t col : partition->h11.RowIndices(r)) {
        EXPECT_GE(col, begin);
        EXPECT_LT(col, end);
      }
    }
  }
}

TEST(BlockEliminationTest, InvertBlockDiagonalGivesTrueInverse) {
  Graph graph = TestGraph();
  auto partition = BuildHPartition(graph, 0.15, {});
  ASSERT_TRUE(partition.ok());
  MemoryBudget budget;  // unlimited
  auto inverse = InvertBlockDiagonal(partition->h11,
                                     partition->ordering.blocks,
                                     /*drop_tolerance=*/0.0, budget);
  ASSERT_TRUE(inverse.ok());

  // H11 · H11^{-1} x == x for a test vector.
  const NodeId n1 = partition->n1();
  std::vector<double> x(n1);
  for (NodeId i = 0; i < n1; ++i) x[i] = 1.0 / (1.0 + i % 7);
  std::vector<double> inv_x(n1), back(n1);
  inverse->MatVec(x, inv_x);
  partition->h11.MatVec(inv_x, back);
  EXPECT_LT(la::L1Distance(back, x), 1e-9);
}

TEST(BlockEliminationTest, DropToleranceSparsifies) {
  Graph graph = TestGraph();
  auto partition = BuildHPartition(graph, 0.15, {});
  ASSERT_TRUE(partition.ok());
  MemoryBudget budget;
  auto exact = InvertBlockDiagonal(partition->h11,
                                   partition->ordering.blocks, 0.0, budget);
  auto dropped = InvertBlockDiagonal(partition->h11,
                                     partition->ordering.blocks, 0.05, budget);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(dropped.ok());
  EXPECT_LT(dropped->nnz(), exact->nnz());
}

TEST(BlockEliminationTest, BudgetFailurePropagates) {
  Graph graph = TestGraph();
  auto partition = BuildHPartition(graph, 0.15, {});
  ASSERT_TRUE(partition.ok());
  MemoryBudget tiny(16);  // nothing fits
  auto inverse = InvertBlockDiagonal(partition->h11,
                                     partition->ordering.blocks, 0.0, tiny);
  EXPECT_EQ(inverse.status().code(), StatusCode::kResourceExhausted);
}

TEST(BlockEliminationTest, InvalidRestartProbabilityRejected) {
  Graph graph = TestGraph();
  EXPECT_FALSE(BuildHPartition(graph, 0.0, {}).ok());
  EXPECT_FALSE(BuildHPartition(graph, 1.0, {}).ok());
}

}  // namespace
}  // namespace tpa
