#include "engine/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/tpa.h"
#include "graph/generators.h"
#include "la/vector_ops.h"
#include "method/tpa_method.h"
#include "util/check.h"

namespace tpa {
namespace {

Graph ServingGraph(uint64_t seed = 77) {
  DcsbmOptions options;
  options.nodes = 500;
  options.edges = 5000;
  options.blocks = 10;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(QueryEngineTest, BatchBitwiseMatchesSequentialTpaQuery) {
  Graph graph = ServingGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());

  QueryEngineOptions options;
  options.num_threads = 4;
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  std::vector<NodeId> seeds = {0, 13, 250, 499, 13, 77};
  auto results = engine->QueryBatch(seeds);
  ASSERT_EQ(results.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << results[i].status;
    EXPECT_EQ(results[i].seed, seeds[i]);
    const std::vector<double> expected = tpa->Query(seeds[i]);
    ASSERT_EQ(results[i].scores.size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(results[i].scores[j], expected[j])
          << "seed " << seeds[i] << " node " << j;
    }
  }
}

TEST(QueryEngineTest, TopKAgreesWithFullSort) {
  Graph graph = ServingGraph();
  QueryEngineOptions options;
  options.num_threads = 2;
  options.top_k = 25;
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  const NodeId seed = 42;
  const std::vector<double> dense = tpa->Query(seed);

  QueryResult result = engine->Query(seed);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.scores.empty());  // top-k replaces the dense vector
  ASSERT_EQ(result.top.size(), 25u);

  // Full sort of the dense vector, same tie-break (score desc, node asc).
  std::vector<NodeId> order(dense.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<NodeId>(i);
  std::sort(order.begin(), order.end(), [&dense](NodeId a, NodeId b) {
    if (dense[a] != dense[b]) return dense[a] > dense[b];
    return a < b;
  });
  for (size_t i = 0; i < result.top.size(); ++i) {
    EXPECT_EQ(result.top[i].node, order[i]) << "rank " << i;
    EXPECT_EQ(result.top[i].score, dense[order[i]]);
  }
  // Scores are non-increasing.
  for (size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].score, result.top[i].score);
  }
}

TEST(QueryEngineTest, CacheHitReturnsIdenticalScores) {
  Graph graph = ServingGraph();
  QueryEngineOptions options;
  options.num_threads = 2;
  options.cache_capacity = 8;
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  QueryResult cold = engine->Query(9);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.from_cache);

  QueryResult warm = engine->Query(9);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.from_cache);
  ASSERT_EQ(warm.scores.size(), cold.scores.size());
  for (size_t j = 0; j < cold.scores.size(); ++j) {
    EXPECT_EQ(warm.scores[j], cold.scores[j]);
  }

  auto stats = engine->cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryEngineTest, CacheEvictsLeastRecentlyUsed) {
  Graph graph = ServingGraph();
  QueryEngineOptions options;
  options.num_threads = 1;
  options.cache_capacity = 2;
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  engine->Query(1);                             // cache: {1}
  engine->Query(2);                             // cache: {2, 1}
  engine->Query(1);                             // promotes 1 → {1, 2}
  engine->Query(3);                             // evicts 2 → {3, 1}
  EXPECT_TRUE(engine->Query(1).from_cache);
  EXPECT_FALSE(engine->Query(2).from_cache);    // was evicted
  EXPECT_EQ(engine->cache_stats().entries, 2u);
}

TEST(QueryEngineTest, OutOfRangeSeedFailsItsSlotOnly) {
  Graph graph = ServingGraph();
  auto engine = QueryEngine::Create(graph, std::make_unique<TpaMethod>(), {});
  ASSERT_TRUE(engine.ok());

  auto results = engine->QueryBatch({1, graph.num_nodes(), 2});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_NEAR(la::NormL1(results[0].scores), 1.0, 1e-6);
}

TEST(QueryEngineTest, LargeBatchAcrossThreadsIsDeterministic) {
  Graph graph = ServingGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());

  QueryEngineOptions options;
  options.num_threads = 8;
  options.cache_capacity = 256;  // holds every distinct seed below
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  std::vector<NodeId> seeds;
  for (int i = 0; i < 200; ++i) {
    seeds.push_back(static_cast<NodeId>((i * 37) % graph.num_nodes()));
  }
  auto results = engine->QueryBatch(seeds);
  ASSERT_EQ(results.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    EXPECT_LT(la::L1Distance(results[i].scores, tpa->Query(seeds[i])), 1e-15);
  }

  // A second identical batch is served entirely from the warm cache and must
  // reproduce the cold results exactly.
  const uint64_t hits_before = engine->cache_stats().hits;
  auto warm = engine->QueryBatch(seeds);
  ASSERT_EQ(warm.size(), results.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(warm[i].status.ok());
    EXPECT_TRUE(warm[i].from_cache) << "seed " << seeds[i];
    EXPECT_EQ(warm[i].scores, results[i].scores);
  }
  EXPECT_EQ(engine->cache_stats().hits, hits_before + seeds.size());
}

TEST(QueryEngineTest, RegistryConstructionServesAnyMethod) {
  Graph graph = ServingGraph();
  MethodConfig config;
  config.tolerance = 1e-7;
  auto engine = QueryEngine::CreateFromRegistry(graph, "PowerIteration",
                                                config, {});
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->method().name(), "PowerIteration");
  QueryResult result = engine->Query(5);
  ASSERT_TRUE(result.status.ok());
  EXPECT_NEAR(la::NormL1(result.scores), 1.0, 1e-5);

  EXPECT_FALSE(QueryEngine::CreateFromRegistry(graph, "NoSuchMethod").ok());
}

TEST(QueryEngineTest, ValidatesOptions) {
  Graph graph = ServingGraph();
  EXPECT_FALSE(QueryEngine::Create(graph, nullptr, {}).ok());
  QueryEngineOptions bad;
  bad.top_k = -1;
  EXPECT_FALSE(
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), bad).ok());
}

TEST(TopKScoresTest, ClampsAndBreaksTies) {
  const std::vector<double> scores = {0.5, 0.9, 0.5, 0.1};
  auto top = TopKScores(scores, 10);  // clamped to 4
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].node, 1u);
  EXPECT_EQ(top[1].node, 0u);  // tie with node 2 → smaller id first
  EXPECT_EQ(top[2].node, 2u);
  EXPECT_EQ(top[3].node, 3u);
  EXPECT_TRUE(TopKScores(scores, 0).empty());
}

}  // namespace
}  // namespace tpa
