#include "engine/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <latch>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/tpa.h"
#include "engine/thread_pool.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "la/vector_ops.h"
#include "method/registry.h"
#include "method/tpa_method.h"
#include "util/cache_info.h"
#include "util/check.h"

namespace tpa {
namespace {

Graph ServingGraph(uint64_t seed = 77) {
  DcsbmOptions options;
  options.nodes = 500;
  options.edges = 5000;
  options.blocks = 10;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(QueryEngineTest, BatchBitwiseMatchesSequentialTpaQuery) {
  Graph graph = ServingGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());

  QueryEngineOptions options;
  options.num_threads = 4;
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  std::vector<NodeId> seeds = {0, 13, 250, 499, 13, 77};
  auto results = engine->QueryBatch(seeds);
  ASSERT_EQ(results.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << results[i].status;
    EXPECT_EQ(results[i].seed, seeds[i]);
    const std::vector<double> expected = tpa->Query(seeds[i]);
    ASSERT_EQ(results[i].scores.size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(results[i].scores[j], expected[j])
          << "seed " << seeds[i] << " node " << j;
    }
  }
}

TEST(QueryEngineTest, TopKAgreesWithFullSort) {
  Graph graph = ServingGraph();
  QueryEngineOptions options;
  options.num_threads = 2;
  options.top_k = 25;
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  const NodeId seed = 42;
  const std::vector<double> dense = tpa->Query(seed);

  QueryResult result = engine->Query(seed);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.scores.empty());  // top-k replaces the dense vector
  ASSERT_EQ(result.top.size(), 25u);

  // Full sort of the dense vector, same tie-break (score desc, node asc).
  std::vector<NodeId> order(dense.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<NodeId>(i);
  std::sort(order.begin(), order.end(), [&dense](NodeId a, NodeId b) {
    if (dense[a] != dense[b]) return dense[a] > dense[b];
    return a < b;
  });
  for (size_t i = 0; i < result.top.size(); ++i) {
    EXPECT_EQ(result.top[i].node, order[i]) << "rank " << i;
    EXPECT_EQ(result.top[i].score, dense[order[i]]);
  }
  // Scores are non-increasing.
  for (size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].score, result.top[i].score);
  }
}

TEST(QueryEngineTest, CacheHitReturnsIdenticalScores) {
  Graph graph = ServingGraph();
  QueryEngineOptions options;
  options.num_threads = 2;
  options.cache_capacity = 8;
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  QueryResult cold = engine->Query(9);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.from_cache);

  QueryResult warm = engine->Query(9);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.from_cache);
  ASSERT_EQ(warm.scores.size(), cold.scores.size());
  for (size_t j = 0; j < cold.scores.size(); ++j) {
    EXPECT_EQ(warm.scores[j], cold.scores[j]);
  }

  auto stats = engine->cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryEngineTest, CacheEvictsLeastRecentlyUsed) {
  Graph graph = ServingGraph();
  QueryEngineOptions options;
  options.num_threads = 1;
  options.cache_capacity = 2;
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  engine->Query(1);                             // cache: {1}
  engine->Query(2);                             // cache: {2, 1}
  engine->Query(1);                             // promotes 1 → {1, 2}
  engine->Query(3);                             // evicts 2 → {3, 1}
  EXPECT_TRUE(engine->Query(1).from_cache);
  EXPECT_FALSE(engine->Query(2).from_cache);    // was evicted
  EXPECT_EQ(engine->cache_stats().entries, 2u);
}

TEST(QueryEngineTest, OutOfRangeSeedFailsItsSlotOnly) {
  Graph graph = ServingGraph();
  auto engine = QueryEngine::Create(graph, std::make_unique<TpaMethod>(), {});
  ASSERT_TRUE(engine.ok());

  auto results = engine->QueryBatch({1, graph.num_nodes(), 2});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_NEAR(la::NormL1(results[0].scores), 1.0, 1e-6);
}

TEST(QueryEngineTest, LargeBatchAcrossThreadsIsDeterministic) {
  Graph graph = ServingGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());

  QueryEngineOptions options;
  options.num_threads = 8;
  options.cache_capacity = 256;  // holds every distinct seed below
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  std::vector<NodeId> seeds;
  for (int i = 0; i < 200; ++i) {
    seeds.push_back(static_cast<NodeId>((i * 37) % graph.num_nodes()));
  }
  auto results = engine->QueryBatch(seeds);
  ASSERT_EQ(results.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    EXPECT_LT(la::L1Distance(results[i].scores, tpa->Query(seeds[i])), 1e-15);
  }

  // A second identical batch is served entirely from the warm cache and must
  // reproduce the cold results exactly.
  const uint64_t hits_before = engine->cache_stats().hits;
  auto warm = engine->QueryBatch(seeds);
  ASSERT_EQ(warm.size(), results.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(warm[i].status.ok());
    EXPECT_TRUE(warm[i].from_cache) << "seed " << seeds[i];
    EXPECT_EQ(warm[i].scores, results[i].scores);
  }
  EXPECT_EQ(engine->cache_stats().hits, hits_before + seeds.size());
}

TEST(QueryEngineTest, RegistryConstructionServesAnyMethod) {
  Graph graph = ServingGraph();
  MethodConfig config;
  config.tolerance = 1e-7;
  auto engine = QueryEngine::CreateFromRegistry(graph, "PowerIteration",
                                                config, {});
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->method().name(), "PowerIteration");
  QueryResult result = engine->Query(5);
  ASSERT_TRUE(result.status.ok());
  EXPECT_NEAR(la::NormL1(result.scores), 1.0, 1e-5);

  EXPECT_FALSE(QueryEngine::CreateFromRegistry(graph, "NoSuchMethod").ok());
}

TEST(QueryEngineTest, ValidatesOptions) {
  Graph graph = ServingGraph();
  EXPECT_FALSE(QueryEngine::Create(graph, nullptr, {}).ok());
  QueryEngineOptions bad;
  bad.top_k = -1;
  EXPECT_FALSE(
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), bad).ok());
}

TEST(QueryEngineTest, SpmmGroupingBitwiseMatchesPerSeedFanOut) {
  Graph graph = ServingGraph();
  std::vector<NodeId> seeds;
  for (int i = 0; i < 60; ++i) {
    seeds.push_back(static_cast<NodeId>((i * 41) % graph.num_nodes()));
  }

  QueryEngineOptions per_seed;
  per_seed.num_threads = 4;
  per_seed.batch_block_size = 0;  // per-seed fan-out
  auto baseline =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), per_seed);
  ASSERT_TRUE(baseline.ok());
  auto expected = baseline->QueryBatch(seeds);

  for (int block_size : {2, 8, 64}) {
    QueryEngineOptions grouped;
    grouped.num_threads = 4;
    grouped.batch_block_size = block_size;
    auto engine =
        QueryEngine::Create(graph, std::make_unique<TpaMethod>(), grouped);
    ASSERT_TRUE(engine.ok());
    auto results = engine->QueryBatch(seeds);
    ASSERT_EQ(results.size(), expected.size());
    for (size_t i = 0; i < seeds.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok());
      EXPECT_EQ(results[i].scores, expected[i].scores)
          << "block size " << block_size << " seed " << seeds[i];
    }
  }
}

TEST(QueryEngineTest, SpmmGroupingHandlesCacheHitsErrorsAndTopK) {
  Graph graph = ServingGraph();
  QueryEngineOptions options;
  options.num_threads = 4;
  options.batch_block_size = 4;
  options.top_k = 10;
  options.cache_capacity = 64;
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  // Warm a few seeds so the grouped batch mixes hits, misses, and an
  // invalid slot.
  engine->QueryBatch({10, 20, 30});
  std::vector<NodeId> mixed = {10, 1, 20, graph.num_nodes(), 2, 30, 3, 4, 5};
  auto results = engine->QueryBatch(mixed);
  ASSERT_EQ(results.size(), mixed.size());

  EXPECT_TRUE(results[0].from_cache);
  EXPECT_TRUE(results[2].from_cache);
  EXPECT_TRUE(results[5].from_cache);
  EXPECT_EQ(results[3].status.code(), StatusCode::kOutOfRange);
  for (size_t i : {size_t{1}, size_t{4}, size_t{6}, size_t{7}, size_t{8}}) {
    ASSERT_TRUE(results[i].status.ok()) << "slot " << i;
    EXPECT_FALSE(results[i].from_cache);
    EXPECT_EQ(results[i].top.size(), 10u);
  }

  // Every served seed (hit or grouped miss) agrees with a direct query.
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  for (size_t i = 0; i < mixed.size(); ++i) {
    if (!results[i].status.ok()) continue;
    const auto expected = TopKScores(tpa->Query(mixed[i]), options.top_k);
    ASSERT_EQ(results[i].top.size(), expected.size());
    for (size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(results[i].top[k].node, expected[k].node);
      EXPECT_EQ(results[i].top[k].score, expected[k].score);
    }
  }
}

/// Every registry method must serve batches identically to sequential
/// queries.  One worker thread makes the pool FIFO, so even the stochastic
/// methods (HubPPR's RNG advances per query) see the same call sequence as
/// the sequential engine and the comparison is bitwise for all of them.
class RegistryBatchTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RegistryBatchTest, BatchEqualsSequential) {
  Graph graph = ServingGraph();
  MethodConfig config;
  config.tolerance = 1e-7;

  QueryEngineOptions options;
  options.num_threads = 1;
  options.batch_block_size = 4;

  auto sequential =
      QueryEngine::CreateFromRegistry(graph, GetParam(), config, options);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto batched =
      QueryEngine::CreateFromRegistry(graph, GetParam(), config, options);
  ASSERT_TRUE(batched.ok()) << batched.status();

  const std::vector<NodeId> seeds = {0, 13, 250, 499, 77};
  auto results = batched->QueryBatch(seeds);
  ASSERT_EQ(results.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok())
        << GetParam() << ": " << results[i].status;
    const QueryResult expected = sequential->Query(seeds[i]);
    ASSERT_TRUE(expected.status.ok());
    ASSERT_EQ(results[i].scores.size(), expected.scores.size());
    for (size_t j = 0; j < expected.scores.size(); ++j) {
      ASSERT_EQ(results[i].scores[j], expected.scores[j])
          << GetParam() << " seed " << seeds[i] << " node " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, RegistryBatchTest,
                         ::testing::Values("TPA", "BEAR-APPROX", "NB-LIN",
                                           "BRPPR", "FORA", "HubPPR", "BePI",
                                           "PowerIteration"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(QueryEngineTest, ByteBudgetedCacheEvictsUntilUnderBudget) {
  Graph graph = ServingGraph();
  const size_t entry_bytes = graph.num_nodes() * sizeof(double);

  QueryEngineOptions options;
  options.num_threads = 1;
  options.cache_capacity_bytes = 3 * entry_bytes;  // room for three vectors
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  engine->Query(1);
  engine->Query(2);
  engine->Query(3);
  auto stats = engine->cache_stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes, 3 * entry_bytes);

  engine->Query(4);  // over budget → LRU seed 1 evicted
  stats = engine->cache_stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes, 3 * entry_bytes);
  EXPECT_FALSE(engine->Query(1).from_cache);
  EXPECT_TRUE(engine->Query(4).from_cache);
}

TEST(QueryEngineTest, EntryAndByteCapsComposeAndStatsReportBytes) {
  Graph graph = ServingGraph();
  const size_t entry_bytes = graph.num_nodes() * sizeof(double);

  // Byte budget allows 4 entries but the entry cap allows only 2.
  QueryEngineOptions options;
  options.num_threads = 1;
  options.cache_capacity = 2;
  options.cache_capacity_bytes = 4 * entry_bytes;
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  engine->Query(1);
  engine->Query(2);
  engine->Query(3);
  const auto stats = engine->cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 2 * entry_bytes);
}

TEST(QueryEngineTest, AutoBatchBlockSizeFollowsCacheHeuristic) {
  Graph graph = ServingGraph();
  // Default (kAuto) resolves at Create time: 8 when the CSR arrays exceed
  // the LLC, 0 (per-seed) when cache-resident.
  auto auto_engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), {});
  ASSERT_TRUE(auto_engine.ok());
  const int expected =
      graph.SizeBytes() > DetectLastLevelCacheBytes() ? 8 : 0;
  EXPECT_EQ(auto_engine->options().batch_block_size, expected);

  // Methods without a native batch path always resolve to per-seed.
  auto method = CreateMethod("BRPPR", {});
  ASSERT_TRUE(method.ok());
  auto no_batch = QueryEngine::Create(graph, std::move(*method), {});
  ASSERT_TRUE(no_batch.ok());
  EXPECT_EQ(no_batch->options().batch_block_size, 0);

  // Explicit values are the escape hatch and pass through untouched.
  for (int forced : {0, 1, 5}) {
    QueryEngineOptions options;
    options.batch_block_size = forced;
    auto engine =
        QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ(engine->options().batch_block_size, forced);
  }

  QueryEngineOptions invalid;
  invalid.batch_block_size = -2;
  EXPECT_FALSE(
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), invalid)
          .ok());
}

TEST(QueryEngineTest, ReorderedGraphServesOriginalNodeIds) {
  // Engines over the original and a hub-reordered build of the same edges
  // must be indistinguishable to clients: same dense vectors, same top-k
  // ids, across the per-seed, SpMM-group, and cache-hit paths.
  Graph original = ServingGraph();
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < original.num_nodes(); ++u) {
    for (NodeId v : original.OutNeighbors(u)) edges.emplace_back(u, v);
  }
  GraphBuilder builder(original.num_nodes());
  builder.AddEdges(edges);
  BuildOptions build_options;
  build_options.node_ordering = NodeOrdering::kHubCluster;
  auto reordered = builder.Build(build_options);
  ASSERT_TRUE(reordered.ok());
  ASSERT_NE(reordered->permutation(), nullptr);

  const std::vector<NodeId> seeds = {0, 13, 250, 499, 13, 77};
  for (int batch_block : {0, 3}) {
    QueryEngineOptions options;
    options.num_threads = 2;
    options.batch_block_size = batch_block;
    options.cache_capacity = 8;
    auto base = QueryEngine::Create(original, std::make_unique<TpaMethod>(),
                                    options);
    auto permuted = QueryEngine::Create(*reordered,
                                        std::make_unique<TpaMethod>(),
                                        options);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(permuted.ok());

    for (int pass = 0; pass < 2; ++pass) {  // second pass hits the cache
      auto expected = base->QueryBatch(seeds);
      auto results = permuted->QueryBatch(seeds);
      ASSERT_EQ(results.size(), expected.size());
      for (size_t i = 0; i < seeds.size(); ++i) {
        ASSERT_TRUE(results[i].status.ok()) << results[i].status;
        EXPECT_EQ(results[i].seed, seeds[i]);
        ASSERT_EQ(results[i].scores.size(), expected[i].scores.size());
        for (size_t j = 0; j < expected[i].scores.size(); ++j) {
          ASSERT_NEAR(results[i].scores[j], expected[i].scores[j], 1e-12)
              << "block " << batch_block << " seed " << seeds[i] << " node "
              << j;
        }
      }
    }
  }

  // Top-k extraction reports original ids.
  QueryEngineOptions topk_options;
  topk_options.top_k = 10;
  auto base = QueryEngine::Create(original, std::make_unique<TpaMethod>(),
                                  topk_options);
  auto permuted = QueryEngine::Create(*reordered,
                                      std::make_unique<TpaMethod>(),
                                      topk_options);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(permuted.ok());
  QueryResult expected = base->Query(42);
  QueryResult got = permuted->Query(42);
  ASSERT_EQ(got.top.size(), expected.top.size());
  for (size_t k = 0; k < expected.top.size(); ++k) {
    EXPECT_EQ(got.top[k].node, expected.top[k].node) << "rank " << k;
    EXPECT_NEAR(got.top[k].score, expected.top[k].score, 1e-12);
  }
}

TEST(ThreadPoolTest, ParallelForRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(64);
  pool.ParallelFor(64, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "task " << i;
  }
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no tasks expected"; });
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Saturate the pool with jobs that each fork their own ParallelFor —
  // the caller-participation guarantee must keep everything moving even
  // though no worker is free to help.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::latch done(4);
  for (int j = 0; j < 4; ++j) {
    pool.Submit([&] {
      pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(total.load(), 32);
}

TEST(TopKScoresTest, ClampsAndBreaksTies) {
  const std::vector<double> scores = {0.5, 0.9, 0.5, 0.1};
  auto top = TopKScores(scores, 10);  // clamped to 4
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].node, 1u);
  EXPECT_EQ(top[1].node, 0u);  // tie with node 2 → smaller id first
  EXPECT_EQ(top[2].node, 2u);
  EXPECT_EQ(top[3].node, 3u);
  EXPECT_TRUE(TopKScores(scores, 0).empty());
}

}  // namespace
}  // namespace tpa
