/// Pull-flavor (gather) kernel coverage: SpMv and SpMm — the non-transpose
/// direction CPI's use_pull ablation runs — pinned bitwise against a
/// reference triple-loop on random and adversarial CSRs, mirroring
/// la_frontier_test.cc's rigor on the scatter side.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "la/csr_matrix.h"
#include "la/dense_block.h"
#include "util/check.h"
#include "util/random.h"

namespace tpa {
namespace {

/// Reference y = A x: plain triple loop over (row, edge, vector) in storage
/// order — the exact accumulation order the kernels promise, so the
/// comparison below is bitwise, not approximate.
std::vector<double> ReferenceSpMv(const la::CsrMatrix& a,
                                  const std::vector<double>& x) {
  std::vector<double> y(a.rows());
  for (uint32_t r = 0; r < a.rows(); ++r) {
    const auto indices = a.RowIndices(r);
    const auto values = a.RowValues(r);
    double sum = 0.0;
    for (size_t e = 0; e < indices.size(); ++e) {
      sum += values[e] * x[indices[e]];
    }
    y[r] = sum;
  }
  return y;
}

void ExpectBitwiseEq(const std::vector<double>& got,
                     const std::vector<double>& expected,
                     const std::string& label) {
  ASSERT_EQ(got.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << label << " entry " << i;
  }
}

std::vector<double> RandomVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.NextDouble() - 0.5;
  return x;
}

/// Checks SpMv against the reference and SpMm against per-vector SpMv,
/// bitwise, across specialized (≤16) and generic (>16) block widths.
void CheckGatherKernels(const la::CsrMatrix& a, uint64_t seed,
                        const std::string& label) {
  const std::vector<double> x = RandomVector(a.cols(), seed);
  std::vector<double> y;
  a.SpMv(x, y);
  ExpectBitwiseEq(y, ReferenceSpMv(a, x), label + " SpMv");

  for (size_t width : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{8},
                       size_t{16}, size_t{17}}) {
    la::DenseBlock block_x(a.cols(), width);
    std::vector<std::vector<double>> columns(width);
    for (size_t b = 0; b < width; ++b) {
      columns[b] = RandomVector(a.cols(), seed + 1000 * (b + 1));
      block_x.SetVector(b, columns[b]);
    }
    la::DenseBlock block_y;
    a.SpMm(block_x, block_y);
    ASSERT_EQ(block_y.rows(), a.rows()) << label;
    ASSERT_EQ(block_y.num_vectors(), width) << label;
    for (size_t b = 0; b < width; ++b) {
      std::vector<double> scalar;
      a.SpMv(columns[b], scalar);
      ExpectBitwiseEq(block_y.ExtractVector(b), scalar,
                      label + " SpMm width " + std::to_string(width) +
                          " vector " + std::to_string(b));
    }
  }
}

TEST(GatherKernelTest, AdversarialCsrWithEmptyRows) {
  // 6×5 rectangular CSR: rows 1, 3, and 5 are empty; row 4 gathers from
  // repeated and boundary columns.  Column indices sorted within each row.
  la::CsrMatrix a(
      6, 5, /*row_offsets=*/{0, 2, 2, 3, 3, 6, 6},
      /*col_indices=*/{1, 3, 0, 0, 2, 4},
      /*values=*/{0.5, 0.25, 1.0, 0.125, -0.75, 2.0});

  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y;
  a.SpMv(x, y);
  // Hand-computed gathers; empty rows must come out exactly zero.
  ExpectBitwiseEq(y, {0.5 * 2.0 + 0.25 * 4.0, 0.0, 1.0,
                      0.0, 0.125 * 1.0 + -0.75 * 3.0 + 2.0 * 5.0, 0.0},
                  "hand-computed");

  CheckGatherKernels(a, 11, "empty-rows");
}

TEST(GatherKernelTest, SingleRowMatrix) {
  la::CsrMatrix a(1, 4, {0, 3}, {0, 1, 3}, {0.25, 0.5, 0.125});
  const std::vector<double> x = {8.0, 4.0, 99.0, 16.0};
  std::vector<double> y;
  a.SpMv(x, y);
  ExpectBitwiseEq(y, {0.25 * 8.0 + 0.5 * 4.0 + 0.125 * 16.0}, "single-row");
  CheckGatherKernels(a, 17, "single-row");
}

TEST(GatherKernelTest, AllRowsEmpty) {
  la::CsrMatrix a(4, 3, {0, 0, 0, 0, 0}, {}, {});
  CheckGatherKernels(a, 23, "all-empty");
  std::vector<double> y(3, 99.0);  // must be overwritten to exact zeros
  a.SpMv({1.0, 2.0, 3.0}, y);
  ExpectBitwiseEq(y, {0.0, 0.0, 0.0, 0.0}, "all-empty overwrite");
}

TEST(GatherKernelTest, DanglingNodesYieldEmptyTransitionRows) {
  // Nodes 2 and 4 are dangling (no out-edges): their Ã rows are empty and
  // the kernels must leave exact zeros there.  Node 3 has no in-edges, so
  // the transposed CSR has an empty row too — both directions covered.
  GraphBuilder builder(5);
  builder.AddEdges({{0, 1}, {0, 2}, {1, 2}, {1, 4}, {3, 0}, {3, 4}});
  BuildOptions build_options;
  // The default policy patches dangling nodes with self-loops; keep them to
  // exercise genuinely empty CSR rows.
  build_options.dangling_policy = DanglingPolicy::kKeep;
  auto graph = builder.Build(build_options);
  ASSERT_TRUE(graph.ok());
  ASSERT_GT(graph->CountDangling(), 0u);

  CheckGatherKernels(graph->Transition(), 31, "dangling out-CSR");
  CheckGatherKernels(graph->TransitionTranspose(), 37, "dangling in-CSR");

  const std::vector<double> x = RandomVector(5, 41);
  std::vector<double> y;
  graph->Transition().SpMv(x, y);
  EXPECT_EQ(y[2], 0.0);
  EXPECT_EQ(y[4], 0.0);
}

class GatherGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GatherGraphTest, RandomGraphGatherMatchesReference) {
  RmatOptions options;
  options.scale = 9;
  options.edges = 6000;
  options.seed = GetParam();
  auto graph = GenerateRmat(options);
  ASSERT_TRUE(graph.ok());

  CheckGatherKernels(graph->Transition(), GetParam() + 3, "rmat out-CSR");
  CheckGatherKernels(graph->TransitionTranspose(), GetParam() + 5,
                     "rmat in-CSR");
}

TEST_P(GatherGraphTest, PullGatherAgreesWithPushScatter) {
  // The pull flavor computes Ã^T·x by gathering over the in-CSR; the push
  // flavor scatters over the out-CSR.  Different accumulation orders, same
  // math — agreement is numerical, not bitwise.
  RmatOptions options;
  options.scale = 8;
  options.edges = 3000;
  options.seed = GetParam();
  auto graph = GenerateRmat(options);
  ASSERT_TRUE(graph.ok());

  const std::vector<double> x = RandomVector(graph->num_nodes(), GetParam());
  std::vector<double> pulled;
  graph->TransitionTranspose().SpMv(x, pulled);
  std::vector<double> pushed;
  graph->Transition().SpMvTranspose(x, pushed);
  ASSERT_EQ(pulled.size(), pushed.size());
  for (size_t i = 0; i < pulled.size(); ++i) {
    EXPECT_NEAR(pulled[i], pushed[i], 1e-12) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherGraphTest,
                         ::testing::Values(1u, 7u, 42u));

// ---------------------------------------------------------------------------
// Frontier-sparse gather head (SpMvFrontier / SpMmFrontier / ExpandFrontier)
// — the pull-side mirror of la_frontier_test.cc's scatter coverage.
// ---------------------------------------------------------------------------

/// The adversarial 6×5 CSR shared by the dense gather tests above: rows 1,
/// 3, and 5 empty, boundary and repeated columns in row 4.
la::CsrMatrix AdversarialCsr() {
  return la::CsrMatrix(6, 5, {0, 2, 2, 3, 3, 6, 6}, {1, 3, 0, 0, 2, 4},
                       {0.5, 0.25, 1.0, 0.125, -0.75, 2.0});
}

TEST(GatherFrontierTest, AllRowsAsCandidatesMatchesDenseBitwise) {
  const la::CsrMatrix a = AdversarialCsr();
  const std::vector<double> x = RandomVector(a.cols(), 3);
  std::vector<double> dense;
  a.SpMv(x, dense);

  const std::vector<uint32_t> candidates = {0, 1, 2, 3, 4, 5};
  std::vector<double> y(a.rows(), 0.0);
  std::vector<uint32_t> nonzero_rows;
  // Threshold above 1.0 keeps even the full candidate list on the sparse
  // path.
  ASSERT_TRUE(a.SpMvFrontier(x, candidates, 1.5, y, nonzero_rows));
  ExpectBitwiseEq(y, dense, "all-candidates gather");

  // nonzero_rows collects exactly the candidates with nonzero results,
  // ascending (the empty rows 1, 3, 5 gather to exact zero).
  std::vector<uint32_t> expected;
  for (uint32_t r = 0; r < a.rows(); ++r) {
    if (dense[r] != 0.0) expected.push_back(r);
  }
  EXPECT_EQ(nonzero_rows, expected);
}

TEST(GatherFrontierTest, SubsetCandidatesComputeOnlyListedRows) {
  const la::CsrMatrix a = AdversarialCsr();
  const std::vector<double> x = RandomVector(a.cols(), 5);
  std::vector<double> dense;
  a.SpMv(x, dense);

  const std::vector<uint32_t> candidates = {0, 4};
  std::vector<double> y(a.rows(), 0.0);
  std::vector<uint32_t> nonzero_rows;
  ASSERT_TRUE(a.SpMvFrontier(x, candidates, 0.5, y, nonzero_rows));
  // Listed rows bitwise match the dense gather; unlisted rows are untouched.
  EXPECT_EQ(y[0], dense[0]);
  EXPECT_EQ(y[4], dense[4]);
  for (uint32_t r : {1u, 2u, 3u, 5u}) EXPECT_EQ(y[r], 0.0) << "row " << r;
  EXPECT_EQ(nonzero_rows, (std::vector<uint32_t>{0, 4}));
}

TEST(GatherFrontierTest, EmptyCandidateListTouchesNothing) {
  const la::CsrMatrix a = AdversarialCsr();
  const std::vector<double> x = RandomVector(a.cols(), 7);
  std::vector<double> y(a.rows(), 0.0);
  std::vector<uint32_t> nonzero_rows = {99};  // must be cleared
  ASSERT_TRUE(a.SpMvFrontier(x, {}, 0.5, y, nonzero_rows));
  ExpectBitwiseEq(y, std::vector<double>(a.rows(), 0.0), "empty candidates");
  EXPECT_TRUE(nonzero_rows.empty());
}

TEST(GatherFrontierTest, DenseCandidateListFallsThroughToSpMv) {
  const la::CsrMatrix a = AdversarialCsr();
  const std::vector<double> x = RandomVector(a.cols(), 9);
  std::vector<double> dense;
  a.SpMv(x, dense);

  const std::vector<uint32_t> candidates = {0, 1, 2, 3, 4, 5};
  std::vector<double> y(a.rows(), 0.0);
  std::vector<uint32_t> nonzero_rows = {99};
  // Threshold 0 forces the dense fallthrough: full overwrite, empty
  // nonzero_rows, and `false` telling the caller to stay dense.
  ASSERT_FALSE(a.SpMvFrontier(x, candidates, 0.0, y, nonzero_rows));
  ExpectBitwiseEq(y, dense, "dense fallthrough");
  EXPECT_TRUE(nonzero_rows.empty());
}

TEST(GatherFrontierTest, ExpandFrontierIsSortedUnionOfRowIndices) {
  const la::CsrMatrix a = AdversarialCsr();
  la::FrontierScratch scratch;
  std::vector<uint32_t> expanded;
  // Rows 0 and 4 index columns {1, 3} and {0, 2, 4}: union is everything.
  a.ExpandFrontier(std::vector<uint32_t>{0, 4}, expanded, scratch);
  EXPECT_EQ(expanded, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  // Rows 2 and 4 share column 0 — the duplicate must collapse.
  a.ExpandFrontier(std::vector<uint32_t>{2, 4}, expanded, scratch);
  EXPECT_EQ(expanded, (std::vector<uint32_t>{0, 2, 4}));
  // Empty rows expand to nothing; the scratch is reusable across calls.
  a.ExpandFrontier(std::vector<uint32_t>{1, 3, 5}, expanded, scratch);
  EXPECT_TRUE(expanded.empty());
}

TEST(GatherFrontierTest, PullFrontierPipelineMatchesDenseOnGraph) {
  // End-to-end pull head: support(x) expanded over the out-CSR gives the
  // candidate outputs of the in-CSR gather, and the sparse gather matches
  // the dense one bitwise everywhere (rows off the candidate list can only
  // be exact zeros in the dense result).
  RmatOptions options;
  options.scale = 8;
  options.edges = 2500;
  options.seed = 13;
  auto graph = GenerateRmat(options);
  ASSERT_TRUE(graph.ok());
  const la::CsrMatrix& out_csr = graph->Transition();
  const la::CsrMatrix& in_csr = graph->TransitionTranspose();

  std::vector<uint32_t> support = {1, 5, 17, 100};
  std::vector<double> x(graph->num_nodes(), 0.0);
  for (uint32_t s : support) x[s] = 0.5 + 0.01 * s;

  la::FrontierScratch scratch;
  std::vector<uint32_t> candidates;
  out_csr.ExpandFrontier(support, candidates, scratch);

  std::vector<double> dense;
  in_csr.SpMv(x, dense);
  std::vector<double> y(graph->num_nodes(), 0.0);
  std::vector<uint32_t> nonzero_rows;
  ASSERT_TRUE(in_csr.SpMvFrontier(x, candidates, 0.9, y, nonzero_rows));
  ExpectBitwiseEq(y, dense, "pull pipeline");

  // Iterating: the nonzero rows are the next support.  One more hop still
  // matches dense.
  std::vector<double> x2 = y;
  out_csr.ExpandFrontier(nonzero_rows, candidates, scratch);
  in_csr.SpMv(x2, dense);
  std::fill(y.begin(), y.end(), 0.0);
  ASSERT_TRUE(in_csr.SpMvFrontier(x2, candidates, 0.9, y, nonzero_rows));
  ExpectBitwiseEq(y, dense, "pull pipeline hop 2");
}

TEST(GatherFrontierTest, BlockFrontierMatchesSpMmAcrossWidths) {
  const la::CsrMatrix a = AdversarialCsr();
  const std::vector<uint32_t> candidates = {0, 2, 4};
  for (size_t width : {size_t{1}, size_t{3}, size_t{8}, size_t{17}}) {
    la::DenseBlock block_x(a.cols(), width);
    for (size_t b = 0; b < width; ++b) {
      block_x.SetVector(b, RandomVector(a.cols(), 50 + 10 * b));
    }
    la::DenseBlock dense;
    a.SpMm(block_x, dense);

    la::DenseBlock y(a.rows(), width);
    std::vector<uint32_t> nonzero_rows;
    ASSERT_TRUE(a.SpMmFrontier(block_x, candidates, 0.9, y, nonzero_rows));
    const std::string label = "block width " + std::to_string(width);
    for (uint32_t r : candidates) {
      for (size_t b = 0; b < width; ++b) {
        ASSERT_EQ(y.At(r, b), dense.At(r, b)) << label << " row " << r;
      }
    }
    for (uint32_t r : {1u, 3u, 5u}) {
      for (size_t b = 0; b < width; ++b) {
        ASSERT_EQ(y.At(r, b), 0.0) << label << " untouched row " << r;
      }
    }
    EXPECT_EQ(nonzero_rows, (std::vector<uint32_t>{0, 2, 4})) << label;

    // Dense fallthrough mirrors SpMm for the whole block.
    la::DenseBlock y_dense(a.rows(), width);
    ASSERT_FALSE(
        a.SpMmFrontier(block_x, candidates, 0.0, y_dense, nonzero_rows));
    for (uint32_t r = 0; r < a.rows(); ++r) {
      for (size_t b = 0; b < width; ++b) {
        ASSERT_EQ(y_dense.At(r, b), dense.At(r, b)) << label;
      }
    }
    EXPECT_TRUE(nonzero_rows.empty());
  }
}

}  // namespace
}  // namespace tpa
