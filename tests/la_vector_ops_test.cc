#include "la/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tpa::la {
namespace {

TEST(VectorOpsTest, Axpy) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {10.0, 20.0, 30.0};
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(VectorOpsTest, Scale) {
  std::vector<double> x = {1.0, -2.0};
  Scale(-0.5, x);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST(VectorOpsTest, DotAndNorms) {
  std::vector<double> x = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(Dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(NormL1(x), 7.0);
  EXPECT_DOUBLE_EQ(NormL2(x), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(x), 4.0);
}

TEST(VectorOpsTest, L1Distance) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {2.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(L1Distance(x, y), 3.0);
  EXPECT_DOUBLE_EQ(L1Distance(x, x), 0.0);
}

TEST(VectorOpsTest, SetZero) {
  std::vector<double> x = {1.0, 2.0};
  SetZero(x);
  EXPECT_DOUBLE_EQ(NormL1(x), 0.0);
  EXPECT_EQ(x.size(), 2u);
}

TEST(VectorOpsTest, TopKIndicesOrderedByValue) {
  std::vector<double> x = {0.1, 0.9, 0.5, 0.9, 0.2};
  auto top = TopKIndices(x, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // ties break by smaller index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(VectorOpsTest, TopKClampsToSize) {
  std::vector<double> x = {1.0, 2.0};
  auto top = TopKIndices(x, 10);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
}

TEST(VectorOpsTest, TopKZeroIsEmpty) {
  std::vector<double> x = {1.0};
  EXPECT_TRUE(TopKIndices(x, 0).empty());
}

}  // namespace
}  // namespace tpa::la
