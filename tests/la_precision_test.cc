/// fp32 precision-tier kernel coverage: every CsrMatrixF flavor — gather,
/// scatter, block, frontier, range — pinned bitwise against reference
/// triple-loops that spell out the arithmetic contract (fp64 inner
/// arithmetic, one rounding to fp32 per store for gathers / per update for
/// scatters), on the same adversarial CSRs la_gather_test.cc and
/// la_frontier_test.cc use for the fp64 tier.  Plus the Graph-level tier
/// plumbing: fp32 materialization, byte accounting, structure parity, and
/// cross-tier numerical agreement.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "la/csr_matrix.h"
#include "la/dense_block.h"
#include "la/precision.h"
#include "la/vector_ops.h"
#include "util/check.h"
#include "util/random.h"

namespace tpa {
namespace {

/// Reference y = A x at the fp32 tier: fp64 row accumulator over fp64
/// products, rounded to fp32 once on store — the contract of SpMv and of
/// each vector of SpMm.
std::vector<float> ReferenceSpMv(const la::CsrMatrixF& a,
                                 const std::vector<float>& x) {
  std::vector<float> y(a.rows());
  for (uint32_t r = 0; r < a.rows(); ++r) {
    const auto indices = a.RowIndices(r);
    const auto values = a.RowValues(r);
    double sum = 0.0;
    for (size_t e = 0; e < indices.size(); ++e) {
      sum += static_cast<double>(values[e]) *
             static_cast<double>(x[indices[e]]);
    }
    y[r] = static_cast<float>(sum);
  }
  return y;
}

/// Reference y = A^T x at the fp32 tier: native fp32 updates (the product
/// and the add each round once per edge), rows ascending — the contract of
/// SpMvTranspose and of each vector of SpMmTranspose.
std::vector<float> ReferenceSpMvTranspose(const la::CsrMatrixF& a,
                                          const std::vector<float>& x) {
  std::vector<float> y(a.cols(), 0.0f);
  for (uint32_t r = 0; r < a.rows(); ++r) {
    const float xr = x[r];
    if (xr == 0.0f) continue;
    const auto indices = a.RowIndices(r);
    const auto values = a.RowValues(r);
    for (size_t e = 0; e < indices.size(); ++e) {
      y[indices[e]] += values[e] * xr;
    }
  }
  return y;
}

void ExpectBitwiseEq(const std::vector<float>& got,
                     const std::vector<float>& expected,
                     const std::string& label) {
  ASSERT_EQ(got.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << label << " entry " << i;
  }
}

std::vector<float> RandomVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> x(n);
  for (float& v : x) v = static_cast<float>(rng.NextDouble() - 0.5);
  return x;
}

/// Full-support sorted frontier of x (every row listed, zero rows included —
/// a legal superset).
std::vector<uint32_t> FullFrontier(size_t rows) {
  std::vector<uint32_t> frontier(rows);
  for (size_t r = 0; r < rows; ++r) frontier[r] = static_cast<uint32_t>(r);
  return frontier;
}

/// Pins every fp32 kernel flavor on one matrix, bitwise:
///  * SpMv / SpMvTranspose against the reference loops,
///  * SpMm / SpMmTranspose per vector against the scalar kernels,
///  * the frontier scatters against their dense counterparts,
///  * the range scatters composed over a split of [0, cols) against the
///    full scatter.
void CheckPrecisionKernels(const la::CsrMatrixF& a, uint64_t seed,
                           const std::string& label) {
  const std::vector<float> x_cols = RandomVector(a.cols(), seed);
  const std::vector<float> x_rows = RandomVector(a.rows(), seed + 1);

  std::vector<float> y;
  a.SpMv(x_cols, y);
  ExpectBitwiseEq(y, ReferenceSpMv(a, x_cols), label + " SpMv");

  std::vector<float> yt;
  a.SpMvTranspose(x_rows, yt);
  ExpectBitwiseEq(yt, ReferenceSpMvTranspose(a, x_rows),
                  label + " SpMvTranspose");

  // Frontier scatter with the full-support frontier and threshold 1.0 (no
  // fallthrough possible below rows+1): must equal the dense scatter and
  // emit a superset of y's support.
  if (a.rows() > 0) {
    std::vector<float> yf(a.cols(), 0.0f);
    std::vector<uint32_t> next_frontier;
    la::FrontierScratch scratch;
    const bool stayed = a.SpMvTransposeFrontier(
        x_rows, FullFrontier(a.rows()), 1.0, yf, next_frontier, scratch);
    EXPECT_TRUE(stayed) << label;
    ExpectBitwiseEq(yf, yt, label + " SpMvTransposeFrontier");
    for (size_t c = 0; c < yt.size(); ++c) {
      if (yt[c] != 0.0f) {
        EXPECT_TRUE(std::binary_search(next_frontier.begin(),
                                       next_frontier.end(),
                                       static_cast<uint32_t>(c)))
            << label << " column " << c << " missing from next frontier";
      }
    }
  }

  // Range scatter: two asymmetric ranges composing [0, cols) must match the
  // full scatter bitwise.
  if (a.cols() > 1) {
    std::vector<float> yr(a.cols(), -1.0f);
    const uint32_t mid = a.cols() / 3 + 1;
    a.SpMvTransposeRange(x_rows, yr, 0, mid);
    a.SpMvTransposeRange(x_rows, yr, mid, a.cols());
    ExpectBitwiseEq(yr, yt, label + " SpMvTransposeRange composition");
  }

  for (size_t width : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{8},
                       size_t{16}, size_t{17}}) {
    la::DenseBlockF gather_x(a.cols(), width);
    la::DenseBlockF scatter_x(a.rows(), width);
    std::vector<std::vector<float>> gather_cols(width);
    std::vector<std::vector<float>> scatter_cols(width);
    for (size_t b = 0; b < width; ++b) {
      gather_cols[b] = RandomVector(a.cols(), seed + 1000 * (b + 1));
      gather_x.SetVector(b, gather_cols[b]);
      scatter_cols[b] = RandomVector(a.rows(), seed + 2000 * (b + 1));
      scatter_x.SetVector(b, scatter_cols[b]);
    }

    la::DenseBlockF gather_y;
    a.SpMm(gather_x, gather_y);
    la::DenseBlockF scatter_y;
    a.SpMmTranspose(scatter_x, scatter_y);
    for (size_t b = 0; b < width; ++b) {
      std::vector<float> scalar;
      a.SpMv(gather_cols[b], scalar);
      ExpectBitwiseEq(gather_y.ExtractVector(b), scalar,
                      label + " SpMm width " + std::to_string(width) +
                          " vector " + std::to_string(b));
      a.SpMvTranspose(scatter_cols[b], scalar);
      ExpectBitwiseEq(scatter_y.ExtractVector(b), scalar,
                      label + " SpMmTranspose width " +
                          std::to_string(width) + " vector " +
                          std::to_string(b));
    }

    // Block frontier scatter against the dense block scatter.
    if (a.rows() > 0) {
      la::DenseBlockF frontier_y(a.cols(), width);
      std::vector<uint32_t> next_frontier;
      la::FrontierScratch scratch;
      const bool stayed =
          a.SpMmTransposeFrontier(scatter_x, FullFrontier(a.rows()), 1.0,
                                  frontier_y, next_frontier, scratch);
      EXPECT_TRUE(stayed) << label;
      for (size_t b = 0; b < width; ++b) {
        ExpectBitwiseEq(frontier_y.ExtractVector(b),
                        scatter_y.ExtractVector(b),
                        label + " SpMmTransposeFrontier width " +
                            std::to_string(width) + " vector " +
                            std::to_string(b));
      }
    }

    // Block range composition.
    if (a.cols() > 1) {
      la::DenseBlockF range_y(a.cols(), width);
      const uint32_t mid = a.cols() / 3 + 1;
      a.SpMmTransposeRange(scatter_x, range_y, 0, mid);
      a.SpMmTransposeRange(scatter_x, range_y, mid, a.cols());
      for (size_t b = 0; b < width; ++b) {
        ExpectBitwiseEq(range_y.ExtractVector(b), scatter_y.ExtractVector(b),
                        label + " SpMmTransposeRange width " +
                            std::to_string(width) + " vector " +
                            std::to_string(b));
      }
    }
  }
}

TEST(PrecisionKernelTest, AdversarialCsrWithEmptyRows) {
  // The la_gather_test.cc fixture at the fp32 tier: 6×5 rectangular CSR
  // with empty rows 1, 3, 5 and repeated/boundary columns in row 4.
  la::CsrMatrixF a(
      6, 5, /*row_offsets=*/{0, 2, 2, 3, 3, 6, 6},
      /*col_indices=*/{1, 3, 0, 0, 2, 4},
      /*values=*/{0.5f, 0.25f, 1.0f, 0.125f, -0.75f, 2.0f});

  const std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  std::vector<float> y;
  a.SpMv(x, y);
  // Hand-computed gathers (exact in fp32); empty rows exactly zero.
  ExpectBitwiseEq(y, {2.0f, 0.0f, 1.0f, 0.0f, 0.125f - 2.25f + 10.0f, 0.0f},
                  "hand-computed");

  CheckPrecisionKernels(a, 11, "empty-rows");
}

TEST(PrecisionKernelTest, SingleRowMatrix) {
  la::CsrMatrixF a(1, 4, {0, 3}, {0, 1, 3}, {0.25f, 0.5f, 0.125f});
  CheckPrecisionKernels(a, 17, "single-row");
}

TEST(PrecisionKernelTest, AllRowsEmpty) {
  la::CsrMatrixF a(4, 3, {0, 0, 0, 0, 0}, {}, {});
  CheckPrecisionKernels(a, 23, "all-empty");
  std::vector<float> y(3, 99.0f);  // must be overwritten to exact zeros
  a.SpMv({1.0f, 2.0f, 3.0f}, y);
  ExpectBitwiseEq(y, {0.0f, 0.0f, 0.0f, 0.0f}, "all-empty overwrite");
}

TEST(PrecisionKernelTest, DanglingNodesOnFp32Graph) {
  // kKeep dangling nodes → genuinely empty CSR rows, materialized at fp32.
  GraphBuilder builder(5);
  builder.AddEdges({{0, 1}, {0, 2}, {1, 2}, {1, 4}, {3, 0}, {3, 4}});
  BuildOptions build_options;
  build_options.dangling_policy = DanglingPolicy::kKeep;
  build_options.value_precision = la::Precision::kFloat32;
  auto graph = builder.Build(build_options);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->value_precision(), la::Precision::kFloat32);
  ASSERT_GT(graph->CountDangling(), 0u);

  CheckPrecisionKernels(graph->TransitionF(), 31, "dangling out-CSR");
  CheckPrecisionKernels(graph->TransitionTransposeF(), 37, "dangling in-CSR");
}

class PrecisionGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrecisionGraphTest, RandomGraphKernelsMatchReference) {
  RmatOptions options;
  options.scale = 9;
  options.edges = 6000;
  options.seed = GetParam();
  auto graph = GenerateRmat(options);
  ASSERT_TRUE(graph.ok());
  Graph graph32 = RematerializeWithPrecision(*graph, la::Precision::kFloat32);

  CheckPrecisionKernels(graph32.TransitionF(), GetParam() + 3, "rmat out-CSR");
  CheckPrecisionKernels(graph32.TransitionTransposeF(), GetParam() + 5,
                        "rmat in-CSR");
}

TEST_P(PrecisionGraphTest, TiersAgreeNumerically) {
  // The same scatter at both tiers: the fp32 result must track fp64 to
  // fp32 rounding accuracy (per-destination error O(indegree · eps_f32)).
  RmatOptions options;
  options.scale = 8;
  options.edges = 3000;
  options.seed = GetParam();
  auto graph = GenerateRmat(options);
  ASSERT_TRUE(graph.ok());
  Graph graph32 = RematerializeWithPrecision(*graph, la::Precision::kFloat32);

  std::vector<double> x64(graph->num_nodes());
  std::vector<float> x32(graph->num_nodes());
  Rng rng(GetParam());
  for (size_t i = 0; i < x64.size(); ++i) {
    x32[i] = static_cast<float>(rng.NextDouble() - 0.5);
    x64[i] = static_cast<double>(x32[i]);  // identical starting values
  }
  std::vector<double> y64;
  graph->MultiplyTranspose(x64, y64);
  std::vector<float> y32;
  graph32.MultiplyTransposeT<float>(x32, y32);
  ASSERT_EQ(y32.size(), y64.size());
  for (size_t i = 0; i < y64.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(y32[i]), y64[i], 1e-5) << "node " << i;
  }
}

TEST(PrecisionGraphTest, Fp32MaterializationHalvesValueBytes) {
  RmatOptions options;
  options.scale = 8;
  options.edges = 3000;
  options.seed = 5;
  auto graph64 = GenerateRmat(options);
  ASSERT_TRUE(graph64.ok());
  Graph graph32 =
      RematerializeWithPrecision(*graph64, la::Precision::kFloat32);

  // Structure parity: same degrees and neighbor lists at either tier.
  ASSERT_EQ(graph32.num_nodes(), graph64->num_nodes());
  ASSERT_EQ(graph32.num_edges(), graph64->num_edges());
  for (NodeId u = 0; u < graph64->num_nodes(); ++u) {
    ASSERT_EQ(graph32.OutDegree(u), graph64->OutDegree(u));
    ASSERT_EQ(graph32.InDegree(u), graph64->InDegree(u));
    const auto n32 = graph32.OutNeighbors(u);
    const auto n64 = graph64->OutNeighbors(u);
    ASSERT_TRUE(std::equal(n32.begin(), n32.end(), n64.begin(), n64.end()));
  }

  // Value bytes: the two CSR matrices drop exactly 4 bytes per stored edge
  // each (double → float), i.e. 2 · nnz · 4 total.
  const size_t nnz = graph64->num_edges();
  EXPECT_EQ(graph64->SizeBytes() - graph32.SizeBytes(), 2 * nnz * 4);

  // Edge weights agree to fp32 rounding.
  const auto v64 = graph64->Transition().RowValues(0);
  const auto v32 = graph32.TransitionF().RowValues(0);
  ASSERT_EQ(v64.size(), v32.size());
  for (size_t e = 0; e < v64.size(); ++e) {
    EXPECT_EQ(v32[e], static_cast<float>(v64[e]));
  }

  // Round-trip back to fp64 restores the exact fp64 weights (1/outdeg is a
  // deterministic function of the structure).
  Graph back = RematerializeWithPrecision(graph32, la::Precision::kFloat64);
  const auto vb = back.Transition().RowValues(0);
  ASSERT_EQ(vb.size(), v64.size());
  for (size_t e = 0; e < v64.size(); ++e) EXPECT_EQ(vb[e], v64[e]);
}

TEST(PrecisionBlockTest, DenseBlockFAndConversions) {
  la::DenseBlockF block(4, 3);
  EXPECT_EQ(block.SizeBytes(), 4 * 3 * sizeof(float));
  block.At(2, 1) = 0.5f;
  la::DenseBlock wide;
  la::ConvertBlock(block, wide);
  EXPECT_EQ(wide.rows(), 4u);
  EXPECT_EQ(wide.num_vectors(), 3u);
  EXPECT_EQ(wide.At(2, 1), 0.5);
  EXPECT_EQ(wide.At(0, 0), 0.0);

  const std::vector<float> narrow =
      la::ConvertVector<float>(std::vector<double>{1.0, 0.25, -2.0});
  EXPECT_EQ(narrow, (std::vector<float>{1.0f, 0.25f, -2.0f}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrecisionGraphTest,
                         ::testing::Values(1u, 7u, 42u));

}  // namespace
}  // namespace tpa
