#include "la/csr_matrix.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "la/vector_ops.h"
#include "util/check.h"
#include "util/random.h"

namespace tpa {
namespace {

la::CsrMatrix SmallMatrix() {
  // [ 0  2  0 ]
  // [ 1  0  3 ]
  // [ 0  0  0 ]
  return la::CsrMatrix(3, 3, {0, 1, 3, 3}, {1, 0, 2}, {2.0, 1.0, 3.0});
}

TEST(CsrMatrixTest, BasicAccessors) {
  la::CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.RowNnz(0), 1u);
  EXPECT_EQ(m.RowNnz(1), 2u);
  EXPECT_EQ(m.RowNnz(2), 0u);
  ASSERT_EQ(m.RowIndices(1).size(), 2u);
  EXPECT_EQ(m.RowIndices(1)[0], 0u);
  EXPECT_EQ(m.RowIndices(1)[1], 2u);
  EXPECT_EQ(m.RowValues(1)[1], 3.0);
  EXPECT_EQ(m.SizeBytes(),
            4 * sizeof(uint64_t) + 3 * sizeof(uint32_t) + 3 * sizeof(double));
}

TEST(CsrMatrixTest, SpMvGather) {
  la::CsrMatrix m = SmallMatrix();
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y;
  m.SpMv(x, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);   // 2·x1
  EXPECT_DOUBLE_EQ(y[1], 10.0);  // 1·x0 + 3·x2
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(CsrMatrixTest, SpMvTransposeScatter) {
  la::CsrMatrix m = SmallMatrix();
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y;
  m.SpMvTranspose(x, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 2.0);  // 1·x1
  EXPECT_DOUBLE_EQ(y[1], 2.0);  // 2·x0
  EXPECT_DOUBLE_EQ(y[2], 6.0);  // 3·x1
}

TEST(CsrMatrixTest, EmptyMatrix) {
  la::CsrMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(CsrMatrixDeathTest, RejectsMalformedArrays) {
  EXPECT_DEATH(la::CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), "CHECK");  // offsets
  EXPECT_DEATH(la::CsrMatrix(1, 1, {0, 1}, {3}, {1.0}), "CHECK");  // col range
  EXPECT_DEATH(la::CsrMatrix(1, 1, {0, 1}, {0}, {1.0, 2.0}), "CHECK");
}

/// Reference Ã^T·x straight off the adjacency lists, the pre-CSR kernel.
std::vector<double> AdjacencyMatVec(const Graph& graph,
                                    const std::vector<double>& x) {
  std::vector<double> y(graph.num_nodes(), 0.0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto out = graph.OutNeighbors(u);
    if (out.empty()) continue;
    const double share = x[u] / static_cast<double>(out.size());
    for (NodeId v : out) y[v] += share;
  }
  return y;
}

class CsrGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsrGraphTest, SpMvMatchesAdjacencyMatVec) {
  RmatOptions options;
  options.scale = 9;
  options.edges = 6000;
  options.seed = GetParam();
  auto graph = GenerateRmat(options);
  ASSERT_TRUE(graph.ok());

  Rng rng(GetParam());
  std::vector<double> x(graph->num_nodes());
  for (double& v : x) v = rng.NextDouble();

  const std::vector<double> reference = AdjacencyMatVec(*graph, x);
  std::vector<double> push;
  graph->MultiplyTranspose(x, push);
  std::vector<double> pull;
  graph->MultiplyTransposePull(x, pull);

  ASSERT_EQ(push.size(), reference.size());
  EXPECT_LT(la::L1Distance(push, reference), 1e-12);
  EXPECT_LT(la::L1Distance(pull, reference), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrGraphTest, ::testing::Values(1u, 7u, 42u));

TEST(CsrGraphTest, TransitionMatricesAgreeWithDegrees) {
  DcsbmOptions options;
  options.nodes = 300;
  options.edges = 2500;
  options.seed = 5;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());

  const la::CsrMatrix& out = graph->Transition();
  const la::CsrMatrix& in = graph->TransitionTranspose();
  EXPECT_EQ(out.rows(), graph->num_nodes());
  EXPECT_EQ(in.rows(), graph->num_nodes());
  EXPECT_EQ(out.nnz(), graph->num_edges());
  EXPECT_EQ(in.nnz(), graph->num_edges());

  // Row u of Ã holds weight 1/outdeg(u) on each out-edge.
  for (NodeId u = 0; u < graph->num_nodes(); ++u) {
    ASSERT_EQ(out.RowNnz(u), graph->OutDegree(u));
    for (double w : out.RowValues(u)) {
      EXPECT_DOUBLE_EQ(w, 1.0 / graph->OutDegree(u));
    }
  }
  // Row v of Ã^T holds weight 1/outdeg(u) for each in-neighbor u.
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const auto sources = in.RowIndices(v);
    const auto weights = in.RowValues(v);
    for (size_t e = 0; e < sources.size(); ++e) {
      EXPECT_DOUBLE_EQ(weights[e], 1.0 / graph->OutDegree(sources[e]));
    }
  }
}

TEST(CsrGraphTest, SpMvPreservesMassOnNonDanglingGraph) {
  // Row-stochastic Ã: a transition product preserves the L1 mass exactly up
  // to rounding when no node is dangling.
  ErdosRenyiOptions options;
  options.nodes = 200;
  options.edges = 3000;
  options.seed = 3;
  auto graph = GenerateErdosRenyi(options);
  ASSERT_TRUE(graph.ok());
  if (graph->CountDangling() > 0) GTEST_SKIP() << "dangling node drew";

  std::vector<double> x(graph->num_nodes(), 1.0 / graph->num_nodes());
  std::vector<double> y;
  graph->MultiplyTranspose(x, y);
  EXPECT_NEAR(la::NormL1(y), 1.0, 1e-12);
}

// MakeCsrStructureChecked is the Status-returning twin of MakeCsrStructure
// for arrays from untrusted arithmetic: every structural invariant failure
// must come back as InvalidArgument, and a valid input must assemble the
// same structure the CHECK-based constructor would.
TEST(MakeCsrStructureCheckedTest, AcceptsAValidStructure) {
  auto csr = la::MakeCsrStructureChecked(3, 3, {0, 2, 2, 3}, {1, 2, 0});
  ASSERT_TRUE(csr.ok()) << csr.status();
  EXPECT_EQ(csr->rows, 3u);
  EXPECT_EQ(csr->cols, 3u);
  EXPECT_EQ(csr->nnz(), 3u);
  EXPECT_EQ(csr->row_offsets[1], 2u);
}

TEST(MakeCsrStructureCheckedTest, AcceptsAnEmptyMatrix) {
  auto csr = la::MakeCsrStructureChecked(2, 2, {0, 0, 0}, {});
  ASSERT_TRUE(csr.ok()) << csr.status();
  EXPECT_EQ(csr->nnz(), 0u);
}

TEST(MakeCsrStructureCheckedTest, RejectsEveryBrokenInvariant) {
  // Offsets array has the wrong length for the row count.
  EXPECT_EQ(la::MakeCsrStructureChecked(3, 3, {0, 1, 1}, {0}).status().code(),
            StatusCode::kInvalidArgument);
  // First offset must be zero.
  EXPECT_EQ(
      la::MakeCsrStructureChecked(2, 2, {1, 1, 1}, {0}).status().code(),
      StatusCode::kInvalidArgument);
  // Last offset must equal the index count.
  EXPECT_EQ(
      la::MakeCsrStructureChecked(2, 2, {0, 1, 3}, {0, 1}).status().code(),
      StatusCode::kInvalidArgument);
  // Offsets must be monotone.
  EXPECT_EQ(
      la::MakeCsrStructureChecked(2, 2, {0, 2, 1}, {0}).status().code(),
      StatusCode::kInvalidArgument);
  // Column indices must be inside [0, cols).
  EXPECT_EQ(
      la::MakeCsrStructureChecked(2, 2, {0, 1, 2}, {0, 2}).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tpa
