#include "util/status.h"

#include <gtest/gtest.h>

namespace tpa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad seed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad seed");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad seed");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgumentError("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("m").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(CancelledError("m").code(), StatusCode::kCancelled);
  EXPECT_EQ(DeadlineExceededError("m").code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("hello");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  TPA_ASSIGN_OR_RETURN(int h, Half(x));
  TPA_RETURN_IF_ERROR(OkStatus());
  *out = h;
  return OkStatus();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesValue) {
  int out = 0;
  ASSERT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = UseHalf(3, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result = InternalError("boom");
  EXPECT_DEATH({ (void)result.value(); }, "boom");
}

}  // namespace
}  // namespace tpa
