/// Serialization utilities: CRC-32 against published vectors, the aligned
/// binary writer's layout contract, and MappedFile's mmap RAII.

#include "util/serial.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace tpa {
namespace {

class SerialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/serial_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST(Crc32Test, MatchesPublishedVectors) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc", 3), 0x352441C2u);
}

TEST(Crc32Test, ChainsAcrossCalls) {
  const uint32_t whole = Crc32("123456789", 9);
  uint32_t chained = Crc32("1234", 4);
  chained = Crc32("56789", 5, chained);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(257, 0xA5);
  const uint32_t clean = Crc32(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 64) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(data.data(), data.size()), clean) << "flip at " << i;
    data[i] ^= 0x01;
  }
}

TEST_F(SerialTest, WriterTracksOffsetAndAligns) {
  auto writer = BinaryFileWriter::Create(path_);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(writer->offset(), 0u);
  ASSERT_TRUE(writer->WriteBytes("abc", 3).ok());
  EXPECT_EQ(writer->offset(), 3u);
  ASSERT_TRUE(writer->AlignTo(64).ok());
  EXPECT_EQ(writer->offset(), 64u);
  // Already aligned: a second AlignTo is a no-op.
  ASSERT_TRUE(writer->AlignTo(64).ok());
  EXPECT_EQ(writer->offset(), 64u);
  ASSERT_TRUE(writer->WriteBytes("z", 1).ok());
  ASSERT_TRUE(writer->AlignTo(8).ok());
  EXPECT_EQ(writer->offset(), 72u);
  ASSERT_TRUE(writer->Close().ok());

  // The padding is zero bytes and the payload lands where offset() said.
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), 72u);
  EXPECT_EQ(bytes[0], 'a');
  EXPECT_EQ(bytes[2], 'c');
  for (size_t i = 3; i < 64; ++i) EXPECT_EQ(bytes[i], 0) << "pad at " << i;
  EXPECT_EQ(bytes[64], 'z');
}

TEST_F(SerialTest, WriterRejectsUseAfterClose) {
  auto writer = BinaryFileWriter::Create(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_EQ(writer->WriteBytes("x", 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Close().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SerialTest, MappedFileRoundTrips) {
  {
    auto writer = BinaryFileWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteBytes("hello mmap", 10).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->size(), 10u);
  EXPECT_EQ(std::memcmp(file->data(), "hello mmap", 10), 0);
}

TEST_F(SerialTest, MappedFileMoveTransfersOwnership) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "abc";
  }
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  MappedFile moved = std::move(*file);
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_EQ(std::memcmp(moved.data(), "abc", 3), 0);
}

TEST_F(SerialTest, MappedFileHandlesEmptyFile) {
  { std::ofstream out(path_, std::ios::binary); }
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->size(), 0u);
}

TEST_F(SerialTest, MappedFileMissingFileIsAnError) {
  auto file = MappedFile::Open(path_ + ".does-not-exist");
  EXPECT_FALSE(file.ok());
}

}  // namespace
}  // namespace tpa
