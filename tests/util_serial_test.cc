/// Serialization utilities: CRC-32 against published vectors, the aligned
/// binary writer's layout contract, and MappedFile's mmap RAII.

#include "util/serial.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace tpa {
namespace {

class SerialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/serial_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST(Crc32Test, MatchesPublishedVectors) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc", 3), 0x352441C2u);
}

TEST(Crc32Test, ChainsAcrossCalls) {
  const uint32_t whole = Crc32("123456789", 9);
  uint32_t chained = Crc32("1234", 4);
  chained = Crc32("56789", 5, chained);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(257, 0xA5);
  const uint32_t clean = Crc32(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 64) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(data.data(), data.size()), clean) << "flip at " << i;
    data[i] ^= 0x01;
  }
}

TEST_F(SerialTest, WriterTracksOffsetAndAligns) {
  auto writer = BinaryFileWriter::Create(path_);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(writer->offset(), 0u);
  ASSERT_TRUE(writer->WriteBytes("abc", 3).ok());
  EXPECT_EQ(writer->offset(), 3u);
  ASSERT_TRUE(writer->AlignTo(64).ok());
  EXPECT_EQ(writer->offset(), 64u);
  // Already aligned: a second AlignTo is a no-op.
  ASSERT_TRUE(writer->AlignTo(64).ok());
  EXPECT_EQ(writer->offset(), 64u);
  ASSERT_TRUE(writer->WriteBytes("z", 1).ok());
  ASSERT_TRUE(writer->AlignTo(8).ok());
  EXPECT_EQ(writer->offset(), 72u);
  ASSERT_TRUE(writer->Close().ok());

  // The padding is zero bytes and the payload lands where offset() said.
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), 72u);
  EXPECT_EQ(bytes[0], 'a');
  EXPECT_EQ(bytes[2], 'c');
  for (size_t i = 3; i < 64; ++i) EXPECT_EQ(bytes[i], 0) << "pad at " << i;
  EXPECT_EQ(bytes[64], 'z');
}

TEST_F(SerialTest, WriterRejectsUseAfterClose) {
  auto writer = BinaryFileWriter::Create(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_EQ(writer->WriteBytes("x", 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Close().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SerialTest, MappedFileRoundTrips) {
  {
    auto writer = BinaryFileWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteBytes("hello mmap", 10).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->size(), 10u);
  EXPECT_EQ(std::memcmp(file->data(), "hello mmap", 10), 0);
}

TEST_F(SerialTest, MappedFileMoveTransfersOwnership) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "abc";
  }
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  MappedFile moved = std::move(*file);
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_EQ(std::memcmp(moved.data(), "abc", 3), 0);
}

TEST_F(SerialTest, MappedFileHandlesEmptyFile) {
  { std::ofstream out(path_, std::ios::binary); }
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->size(), 0u);
}

TEST_F(SerialTest, MappedFileMissingFileIsAnError) {
  auto file = MappedFile::Open(path_ + ".does-not-exist");
  EXPECT_FALSE(file.ok());
}

TEST_F(SerialTest, WritableMappingPersistsThroughSync) {
  {
    auto file = MappedFile::Create(path_, 4096);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->writable());
    ASSERT_NE(file->mutable_data(), nullptr);
    std::memcpy(file->mutable_data(), "written in place", 16);
    file->mutable_data()[4095] = 0x7F;
    ASSERT_TRUE(file->Sync().ok());
  }
  auto readback = MappedFile::Open(path_);
  ASSERT_TRUE(readback.ok());
  ASSERT_EQ(readback->size(), 4096u);
  EXPECT_EQ(std::memcmp(readback->data(), "written in place", 16), 0);
  EXPECT_EQ(readback->data()[4095], 0x7F);
  // A read-only mapping exposes no writable view and refuses Sync.
  EXPECT_FALSE(readback->writable());
  EXPECT_EQ(readback->mutable_data(), nullptr);
  EXPECT_EQ(readback->Sync().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SerialTest, CreateRequiresPositiveSize) {
  EXPECT_FALSE(MappedFile::Create(path_, 0).ok());
}

TEST_F(SerialTest, AdviseIsAcceptedOnEveryHint) {
  auto file = MappedFile::Create(path_, 1 << 16);
  ASSERT_TRUE(file.ok());
  for (MappedAdvice advice :
       {MappedAdvice::kNormal, MappedAdvice::kSequential, MappedAdvice::kRandom,
        MappedAdvice::kWillNeed, MappedAdvice::kDontNeed}) {
    EXPECT_TRUE(file->Advise(advice).ok());
  }
  // Sub-range advice with an unaligned offset is aligned down internally.
  EXPECT_TRUE(file->Advise(MappedAdvice::kDontNeed, 100, 8000).ok());
}

class ExternalSortTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/extsort_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".spill";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Pushes `records` through a sorter with the given chunk capacity and
  /// checks the merged stream equals std::sort of the same records
  /// (duplicates preserved).
  void RoundTrip(std::vector<uint64_t> records, size_t chunk_records,
                 size_t expected_chunks, size_t merge_buffer_records = 4) {
    ExternalU64Sorter::Options options;
    options.spill_path = path_;
    options.chunk_records = chunk_records;
    options.merge_buffer_records = merge_buffer_records;
    auto sorter = ExternalU64Sorter::Create(options);
    ASSERT_TRUE(sorter.ok());
    for (uint64_t r : records) ASSERT_TRUE(sorter->Add(r).ok());
    ASSERT_TRUE(sorter->Seal().ok());
    EXPECT_EQ(sorter->record_count(), records.size());
    EXPECT_EQ(sorter->chunk_count(), expected_chunks);

    std::vector<uint64_t> expected = records;
    std::sort(expected.begin(), expected.end());

    // Twice: Merge() must be re-runnable over the same spill.
    for (int pass = 0; pass < 2; ++pass) {
      auto stream = sorter->Merge();
      ASSERT_TRUE(stream.ok());
      std::vector<uint64_t> merged;
      uint64_t record = 0;
      while (stream->Next(&record)) merged.push_back(record);
      ASSERT_TRUE(stream->status().ok());
      EXPECT_EQ(merged, expected) << "pass " << pass;
    }
  }

  std::string path_;
};

/// Deterministic scrambled sequence with duplicates sprinkled in.
std::vector<uint64_t> ScrambledRecords(size_t count) {
  std::vector<uint64_t> records(count);
  for (size_t i = 0; i < count; ++i) {
    records[i] = (i * 0x9E3779B97F4A7C15ULL) >> 13;
    if (i % 7 == 0) records[i] = records[i / 2];  // cross-chunk duplicates
  }
  return records;
}

TEST_F(ExternalSortTest, CountExactlyOnChunkBoundary) {
  RoundTrip(ScrambledRecords(64), /*chunk_records=*/8, /*expected_chunks=*/8);
}

TEST_F(ExternalSortTest, CountOneBelowChunkBoundary) {
  RoundTrip(ScrambledRecords(63), /*chunk_records=*/8, /*expected_chunks=*/8);
}

TEST_F(ExternalSortTest, CountOneAboveChunkBoundary) {
  RoundTrip(ScrambledRecords(65), /*chunk_records=*/8, /*expected_chunks=*/9);
}

TEST_F(ExternalSortTest, SingleChunkStaysInOneSpill) {
  RoundTrip(ScrambledRecords(5), /*chunk_records=*/1024,
            /*expected_chunks=*/1);
}

TEST_F(ExternalSortTest, SingleRecordPerChunkDegenerate) {
  RoundTrip(ScrambledRecords(9), /*chunk_records=*/1, /*expected_chunks=*/9);
}

TEST_F(ExternalSortTest, AllDuplicatesSurviveTheMerge) {
  RoundTrip(std::vector<uint64_t>(40, 0xDEADBEEFULL), /*chunk_records=*/8,
            /*expected_chunks=*/5);
}

TEST_F(ExternalSortTest, EmptySorterMergesToEmptyStream) {
  ExternalU64Sorter::Options options;
  options.spill_path = path_;
  options.chunk_records = 8;
  auto sorter = ExternalU64Sorter::Create(options);
  ASSERT_TRUE(sorter.ok());
  ASSERT_TRUE(sorter->Seal().ok());
  EXPECT_EQ(sorter->record_count(), 0u);
  EXPECT_EQ(sorter->chunk_count(), 0u);
  auto stream = sorter->Merge();
  ASSERT_TRUE(stream.ok());
  uint64_t record = 0;
  EXPECT_FALSE(stream->Next(&record));
  EXPECT_TRUE(stream->status().ok());
}

TEST_F(ExternalSortTest, AddAfterSealIsAnError) {
  ExternalU64Sorter::Options options;
  options.spill_path = path_;
  auto sorter = ExternalU64Sorter::Create(options);
  ASSERT_TRUE(sorter.ok());
  ASSERT_TRUE(sorter->Add(1).ok());
  ASSERT_TRUE(sorter->Seal().ok());
  EXPECT_FALSE(sorter->Add(2).ok());
  // Seal is idempotent.
  EXPECT_TRUE(sorter->Seal().ok());
}

TEST_F(ExternalSortTest, MergeBeforeSealIsAnError) {
  ExternalU64Sorter::Options options;
  options.spill_path = path_;
  auto sorter = ExternalU64Sorter::Create(options);
  ASSERT_TRUE(sorter.ok());
  EXPECT_FALSE(sorter->Merge().ok());
}

TEST_F(ExternalSortTest, SpillFileIsUnlinkedOnDestruction) {
  {
    ExternalU64Sorter::Options options;
    options.spill_path = path_;
    options.chunk_records = 4;
    auto sorter = ExternalU64Sorter::Create(options);
    ASSERT_TRUE(sorter.ok());
    for (uint64_t r = 0; r < 32; ++r) ASSERT_TRUE(sorter->Add(r).ok());
    ASSERT_TRUE(sorter->Seal().ok());
    EXPECT_GT(sorter->spilled_bytes(), 0u);
  }
  std::ifstream gone(path_);
  EXPECT_FALSE(gone.good());
}

}  // namespace
}  // namespace tpa
