/// Deterministic fault-injection suite for the serving stack: armed
/// failpoints (errors, throws, delays) must fail exactly the tickets they
/// hit — clean per-ticket statuses, exactly-once callbacks, balanced
/// queue-slot accounting — and the engine must keep serving exact answers
/// afterwards.  The real tests need the failpoint sites compiled in
/// (cmake -DTPA_FAILPOINTS=ON); production builds get a single skip.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "engine/async_query_engine.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "method/tpa_method.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace tpa {
namespace {

#if !defined(TPA_FAILPOINTS_ENABLED)

TEST(EngineFaultTest, RequiresFailpointBuild) {
  GTEST_SKIP() << "fault-injection sites are compiled out; rebuild with "
                  "-DTPA_FAILPOINTS=ON to run this suite";
}

#else

using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr milliseconds kWaitBudget{30000};

Graph ServingGraph(uint64_t seed = 77) {
  DcsbmOptions options;
  options.nodes = 500;
  options.edges = 5000;
  options.blocks = 10;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

class EngineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAllFailpoints(); }
  void TearDown() override { DisarmAllFailpoints(); }
};

TEST_F(EngineFaultTest, InjectedErrorFailsOnlyItsQuery) {
  Graph graph = ServingGraph();
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), {});
  ASSERT_TRUE(engine.ok());
  const QueryResult reference = engine->Query(3);
  ASSERT_TRUE(reference.status.ok());

  ArmFailpoint(
      "tpa.workspace_checkout",
      FailpointAction::Error(ResourceExhaustedError("injected: no workspace")),
      /*skip=*/0, /*count=*/1);
  const QueryResult faulted = engine->Query(3);
  EXPECT_EQ(faulted.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(faulted.scores.empty());

  // The very next query on the same engine is healthy and bitwise equal.
  const QueryResult healthy = engine->Query(3);
  ASSERT_TRUE(healthy.status.ok()) << healthy.status;
  EXPECT_EQ(healthy.scores, reference.scores);
}

TEST_F(EngineFaultTest, ThrownExceptionsAreContainedAsInternalErrors) {
  Graph graph = ServingGraph();
  auto engine =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), {});
  ASSERT_TRUE(engine.ok());

  // A throw at the serving boundary...
  ArmFailpoint("engine.serve_query",
               FailpointAction::Throw("injected serve throw"),
               /*skip=*/0, /*count=*/1);
  const QueryResult at_boundary = engine->Query(8);
  EXPECT_EQ(at_boundary.status.code(), StatusCode::kInternal);
  EXPECT_NE(at_boundary.status.message().find("method threw"),
            std::string::npos)
      << at_boundary.status;

  // ...and one from deep inside the propagation loop both land as a clean
  // INTERNAL on the one query, never unwinding past the engine.
  ArmFailpoint("cpi.iteration",
               FailpointAction::Throw("injected iteration throw"),
               /*skip=*/0, /*count=*/1);
  const QueryResult mid_loop = engine->Query(8);
  EXPECT_EQ(mid_loop.status.code(), StatusCode::kInternal);

  DisarmAllFailpoints();
  EXPECT_TRUE(engine->Query(8).status.ok());
}

TEST_F(EngineFaultTest, DeadlineAbortsARunningQueryWithinOneIteration) {
  Graph graph = ServingGraph();
  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  auto async = AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        engine_options, {});
  ASSERT_TRUE(async.ok());

  // Each propagation iteration sleeps 25ms, so a 100ms deadline expires a
  // few iterations in — far short of the ~100+ iterations convergence
  // needs.  Without the mid-run check this test would spend seconds.
  ArmFailpoint("cpi.iteration", FailpointAction::Delay(25));
  SubmitOptions options;
  options.deadline = steady_clock::now() + milliseconds(100);
  QueryTicket ticket = (*async)->Submit(5, options);
  ASSERT_TRUE(ticket.WaitFor(kWaitBudget));
  EXPECT_EQ(ticket.Wait().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(ticket.Wait().scores.empty());

  const int64_t iterations = FailpointHits("cpi.iteration");
  EXPECT_GE(iterations, 1);   // the query really was mid-run
  EXPECT_LE(iterations, 20);  // and stopped promptly, not at convergence
  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.aborted + stats.expired, 1u);  // aborted mid-run (or, on
  EXPECT_EQ(stats.completed + stats.expired, 1u);  // a very slow box, expired)

  DisarmAllFailpoints();
  QueryTicket clean = (*async)->Submit(5);
  EXPECT_TRUE(clean.Wait().status.ok());
}

TEST_F(EngineFaultTest, CancelAbortsARunningQueryWithinOneIteration) {
  Graph graph = ServingGraph();
  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  auto async = AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        engine_options, {});
  ASSERT_TRUE(async.ok());

  ArmFailpoint("cpi.iteration", FailpointAction::Delay(10));
  QueryTicket ticket = (*async)->Submit(7);
  while (ticket.state() == QueryTicket::State::kQueued) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(ticket.state(), QueryTicket::State::kRunning);
  EXPECT_TRUE(ticket.Cancel());  // delivered to the running query
  ASSERT_TRUE(ticket.WaitFor(kWaitBudget));
  EXPECT_EQ(ticket.Wait().status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(ticket.Wait().scores.empty());
  EXPECT_LE(FailpointHits("cpi.iteration"), 60);  // nowhere near convergence

  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.completed, 1u);  // running-cancel completes the ticket...
  EXPECT_EQ(stats.aborted, 1u);
  EXPECT_EQ(stats.cancelled, 0u);  // ...and is not a queue-phase cancel

  DisarmAllFailpoints();
  QueryTicket clean = (*async)->Submit(7);
  EXPECT_TRUE(clean.Wait().status.ok());
}

TEST_F(EngineFaultTest, ChunkFaultFailsItsTicketsAndNothingElse) {
  Graph graph = ServingGraph();
  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  auto async = AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        engine_options, {});
  ASSERT_TRUE(async.ok());

  ArmFailpoint("engine.serve_chunk",
               FailpointAction::Error(InternalError("injected chunk fault")),
               /*skip=*/0, /*count=*/1);
  std::atomic<int> callbacks{0};
  SubmitOptions options;
  options.on_complete = [&](const QueryResult&) { callbacks.fetch_add(1); };
  QueryTicket faulted = (*async)->Submit(11, options);
  ASSERT_TRUE(faulted.WaitFor(kWaitBudget));
  EXPECT_EQ(faulted.Wait().status.code(), StatusCode::kInternal);
  EXPECT_EQ(callbacks.load(), 1);

  QueryTicket healthy = (*async)->Submit(11);
  EXPECT_TRUE(healthy.Wait().status.ok());
  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.completed, 2u);  // the faulted ticket completed cleanly
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(EngineFaultTest, FailpointStormKeepsServingAndAccountingExact) {
  Graph graph = ServingGraph();
  QueryEngineOptions engine_options;
  engine_options.num_threads = 4;
  engine_options.batch_block_size = 4;
  AsyncQueryEngineOptions async_options;
  async_options.queue_capacity = 64;
  async_options.max_inflight_jobs = 4;
  async_options.queue_full_policy = QueueFullPolicy::kBlock;
  auto async = AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        engine_options, async_options);
  ASSERT_TRUE(async.ok());

  // Every fault kind at once, hitting deterministic windows of the load:
  // workspace-checkout errors, serving-boundary throws, whole-chunk
  // faults, and propagation delays that let queued deadlines expire.
  ArmFailpoint("tpa.workspace_checkout",
               FailpointAction::Error(ResourceExhaustedError("injected")),
               /*skip=*/5, /*count=*/15);
  ArmFailpoint("engine.serve_query",
               FailpointAction::Throw("injected storm throw"),
               /*skip=*/25, /*count=*/10);
  ArmFailpoint("engine.serve_chunk",
               FailpointAction::Error(InternalError("injected chunk fault")),
               /*skip=*/3, /*count=*/4);
  ArmFailpoint("cpi.iteration", FailpointAction::Delay(1), /*skip=*/200,
               /*count=*/50);

  constexpr int kClients = 4;
  constexpr int kPerClient = 30;
  constexpr int kTickets = kClients * kPerClient;  // 120 concurrent queries
  std::vector<std::atomic<int>> callback_counts(kTickets);
  std::vector<QueryTicket> tickets(kTickets);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int slot = c * kPerClient + i;
        SubmitOptions options;
        if (slot % 7 == 0) {
          options.deadline = steady_clock::now() + milliseconds(5);
        }
        options.on_complete = [&callback_counts, slot](const QueryResult&) {
          callback_counts[slot].fetch_add(1);
        };
        tickets[slot] = (*async)->Submit(
            static_cast<NodeId>((slot * 37) % graph.num_nodes()), options);
        if (slot % 11 == 0) tickets[slot].Cancel();  // queued or running
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int i = 0; i < kTickets; ++i) {
    ASSERT_TRUE(tickets[i].WaitFor(kWaitBudget)) << "ticket " << i;
    EXPECT_TRUE(tickets[i].done()) << "ticket " << i;
  }

  // Exactly one completion callback per ticket, whatever its fate.
  for (int i = 0; i < kTickets; ++i) {
    EXPECT_EQ(callback_counts[i].load(), 1) << "ticket " << i;
  }

  // Queue-slot accounting balances: every submitted ticket is in exactly
  // one terminal bucket, and no slot leaked.
  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kTickets));
  EXPECT_EQ(stats.completed + stats.rejected + stats.cancelled + stats.expired,
            stats.submitted);
  EXPECT_EQ(stats.queue_depth, 0u);

  // With the storm disarmed the same engine serves exact answers again.
  DisarmAllFailpoints();
  auto oracle =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), {});
  ASSERT_TRUE(oracle.ok());
  QueryTicket clean = (*async)->Submit(13);
  const QueryResult& result = clean.Wait();
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.scores, oracle->Query(13).scores);
}

#endif  // TPA_FAILPOINTS_ENABLED

}  // namespace
}  // namespace tpa
