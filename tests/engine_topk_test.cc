/// Engine-level routing of top-k requests through the native bound-driven
/// path (RwrMethod::QueryTopK): bitwise agreement with the dense
/// query-then-partial-sort pipeline, async serving parity, and
/// cache_topk_only entries being served and refreshed through QueryTopK
/// instead of a dense recompute.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "engine/async_query_engine.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "method/rwr_method.h"
#include "method/tpa_method.h"
#include "util/check.h"

namespace tpa {
namespace {

Graph ServingGraph(uint64_t seed = 61) {
  DcsbmOptions options;
  options.nodes = 500;
  options.edges = 5000;
  options.blocks = 10;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

/// TpaMethod with call counters, to pin *which* serving path the engine
/// took (dense Query vs native QueryTopK).  Counters are safe to read only
/// after serving quiesces.
class CountingTpaMethod final : public RwrMethod {
 public:
  std::string_view name() const override { return inner_.name(); }
  Status Preprocess(const Graph& graph, MemoryBudget& budget) override {
    return inner_.Preprocess(graph, budget);
  }
  StatusOr<std::vector<double>> Query(NodeId seed,
                                      QueryContext* context = nullptr)
      override {
    counters_->query.fetch_add(1, std::memory_order_relaxed);
    return inner_.Query(seed, context);
  }
  StatusOr<TopKQueryResult> QueryTopK(NodeId seed, int k,
                                      const TopKQueryOptions& options = {},
                                      QueryContext* context = nullptr)
      override {
    counters_->query_topk.fetch_add(1, std::memory_order_relaxed);
    return inner_.QueryTopK(seed, k, options, context);
  }
  bool SupportsTopKQuery() const override { return true; }
  bool SupportsConcurrentQuery() const override { return true; }
  size_t PreprocessedBytes() const override {
    return inner_.PreprocessedBytes();
  }

  struct Counters {
    std::atomic<int> query{0};
    std::atomic<int> query_topk{0};
  };
  /// Outlives the engine that owns the method.
  std::shared_ptr<Counters> counters() const { return counters_; }

 private:
  TpaMethod inner_;
  std::shared_ptr<Counters> counters_ = std::make_shared<Counters>();
};

TEST(EngineTopKTest, NativeRouteMatchesDensePipelineBitwise) {
  Graph graph = ServingGraph();

  QueryEngineOptions dense_options;
  dense_options.num_threads = 2;
  auto dense = QueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                   dense_options);
  ASSERT_TRUE(dense.ok());

  QueryEngineOptions topk_options;
  topk_options.num_threads = 2;
  topk_options.top_k = 10;
  auto topk = QueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                  topk_options);
  ASSERT_TRUE(topk.ok());

  std::vector<NodeId> seeds;
  for (NodeId s = 0; s < graph.num_nodes(); s += 83) seeds.push_back(s);
  const std::vector<QueryResult> batch = topk->QueryBatch(seeds);
  for (size_t i = 0; i < seeds.size(); ++i) {
    const QueryResult full = dense->Query(seeds[i]);
    ASSERT_TRUE(full.status.ok());
    const std::vector<ScoredNode> oracle = TopKScores(full.scores, 10);

    const QueryResult single = topk->Query(seeds[i]);
    ASSERT_TRUE(single.status.ok());
    ASSERT_TRUE(batch[i].status.ok());
    EXPECT_TRUE(single.scores.empty());
    ASSERT_EQ(single.top.size(), oracle.size());
    ASSERT_EQ(batch[i].top.size(), oracle.size());
    for (size_t r = 0; r < oracle.size(); ++r) {
      ASSERT_EQ(single.top[r].node, oracle[r].node) << "seed " << seeds[i];
      ASSERT_EQ(single.top[r].score, oracle[r].score) << "seed " << seeds[i];
      ASSERT_EQ(batch[i].top[r].node, oracle[r].node) << "seed " << seeds[i];
      ASSERT_EQ(batch[i].top[r].score, oracle[r].score) << "seed " << seeds[i];
    }
  }
}

TEST(EngineTopKTest, NativeRouteActuallyTaken) {
  Graph graph = ServingGraph(7);
  auto method = std::make_unique<CountingTpaMethod>();
  auto counters = method->counters();

  QueryEngineOptions options;
  options.num_threads = 1;
  options.top_k = 5;
  auto engine = QueryEngine::Create(graph, std::move(method), options);
  ASSERT_TRUE(engine.ok());

  ASSERT_TRUE(engine->Query(12).status.ok());
  EXPECT_EQ(counters->query_topk.load(), 1);
  EXPECT_EQ(counters->query.load(), 0);
}

TEST(EngineTopKTest, DenseCacheDisablesNativeRoute) {
  // A dense-entry cache needs the full vector deposited on every miss, so
  // the engine must stay on the dense pipeline.
  Graph graph = ServingGraph(7);
  auto method = std::make_unique<CountingTpaMethod>();
  auto counters = method->counters();

  QueryEngineOptions options;
  options.num_threads = 1;
  options.top_k = 5;
  options.cache_capacity = 8;  // cache_topk_only left false
  auto engine = QueryEngine::Create(graph, std::move(method), options);
  ASSERT_TRUE(engine.ok());

  ASSERT_TRUE(engine->Query(12).status.ok());
  EXPECT_EQ(counters->query_topk.load(), 0);
  EXPECT_EQ(counters->query.load(), 1);
}

TEST(EngineTopKTest, TopKOnlyCacheServedAndRefreshedThroughQueryTopK) {
  Graph graph = ServingGraph(23);
  auto method = std::make_unique<CountingTpaMethod>();
  auto counters = method->counters();

  QueryEngineOptions options;
  options.num_threads = 1;
  options.top_k = 6;
  options.cache_capacity = 8;
  options.cache_topk_only = true;
  auto engine = QueryEngine::Create(graph, std::move(method), options);
  ASSERT_TRUE(engine.ok());

  // Cold: miss → one QueryTopK, never a dense Query, entry deposited.
  const QueryResult cold = engine->Query(12);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.from_cache);
  ASSERT_EQ(cold.top.size(), 6u);
  EXPECT_EQ(counters->query_topk.load(), 1);
  EXPECT_EQ(counters->query.load(), 0);
  EXPECT_EQ(engine->cache_stats().entries, 1u);

  // Warm: served from the O(k) entry, no method call at all.
  const QueryResult warm = engine->Query(12);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(counters->query_topk.load(), 1);
  EXPECT_EQ(counters->query.load(), 0);
  ASSERT_EQ(warm.top.size(), cold.top.size());
  for (size_t r = 0; r < cold.top.size(); ++r) {
    EXPECT_EQ(warm.top[r].node, cold.top[r].node) << r;
    EXPECT_EQ(warm.top[r].score, cold.top[r].score) << r;
  }

  // Results match the dense pipeline exactly.
  QueryEngineOptions dense_options;
  dense_options.num_threads = 1;
  auto dense = QueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                   dense_options);
  ASSERT_TRUE(dense.ok());
  const std::vector<ScoredNode> oracle =
      TopKScores(dense->Query(12).scores, 6);
  for (size_t r = 0; r < oracle.size(); ++r) {
    EXPECT_EQ(cold.top[r].node, oracle[r].node) << r;
    EXPECT_EQ(cold.top[r].score, oracle[r].score) << r;
  }
}

TEST(EngineTopKTest, AsyncTopKMatchesBlockingBitwise) {
  Graph graph = ServingGraph(41);
  MethodConfig config;
  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.top_k = 10;

  auto async = AsyncQueryEngine::CreateFromRegistry(graph, "TPA", config,
                                                    engine_options);
  ASSERT_TRUE(async.ok()) << async.status();
  auto blocking =
      QueryEngine::CreateFromRegistry(graph, "TPA", config, engine_options);
  ASSERT_TRUE(blocking.ok()) << blocking.status();

  std::vector<NodeId> seeds;
  for (int i = 0; i < 32; ++i) {
    seeds.push_back(static_cast<NodeId>((i * 131) % graph.num_nodes()));
  }
  std::vector<QueryTicket> tickets;
  tickets.reserve(seeds.size());
  for (NodeId seed : seeds) tickets.push_back((*async)->Submit(seed));

  for (size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(tickets[i].WaitFor(std::chrono::milliseconds(30000)));
    const QueryResult& got = tickets[i].Wait();
    ASSERT_TRUE(got.status.ok()) << got.status;
    const QueryResult want = blocking->Query(seeds[i]);
    ASSERT_TRUE(want.status.ok());
    ASSERT_EQ(got.top.size(), want.top.size());
    for (size_t r = 0; r < want.top.size(); ++r) {
      ASSERT_EQ(got.top[r].node, want.top[r].node) << "seed " << seeds[i];
      ASSERT_EQ(got.top[r].score, want.top[r].score) << "seed " << seeds[i];
    }
  }
}

}  // namespace
}  // namespace tpa
