#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace tpa {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  ErdosRenyiOptions options;
  options.nodes = 100;
  options.edges = 500;
  options.seed = 1;
  auto graph = GenerateErdosRenyi(options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 100u);
  // Exactly 500 distinct non-loop edges, plus self-loops for dangling nodes.
  GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_GE(stats.edges, 500u);
  EXPECT_LE(stats.edges, 500u + 100u);
  EXPECT_EQ(stats.dangling_nodes, 0u);
}

TEST(ErdosRenyiTest, DeterministicFromSeed) {
  ErdosRenyiOptions options;
  options.nodes = 60;
  options.edges = 150;
  options.seed = 7;
  auto a = GenerateErdosRenyi(options);
  auto b = GenerateErdosRenyi(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_edges(), b->num_edges());
  for (NodeId u = 0; u < a->num_nodes(); ++u) {
    auto na = a->OutNeighbors(u);
    auto nb = b->OutNeighbors(u);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(ErdosRenyiTest, RejectsImpossibleEdgeCount) {
  ErdosRenyiOptions options;
  options.nodes = 3;
  options.edges = 7;  // max is 6
  EXPECT_EQ(GenerateErdosRenyi(options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ErdosRenyiTest, RejectsZeroNodes) {
  EXPECT_FALSE(GenerateErdosRenyi({}).ok());
}

TEST(RmatTest, ProducesPowerLawishGraph) {
  RmatOptions options;
  options.scale = 10;  // 1024 nodes
  options.edges = 8000;
  options.seed = 3;
  auto graph = GenerateRmat(options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 1024u);
  GraphStats stats = ComputeGraphStats(*graph);
  // Skewed quadrants concentrate edges: max degree far above average.
  EXPECT_GT(stats.max_out_degree, 4 * stats.avg_out_degree);
}

TEST(RmatTest, RejectsBadProbabilities) {
  RmatOptions options;
  options.edges = 10;
  options.a = 0.9;
  options.b = 0.1;
  options.c = 0.1;  // a+b+c >= 1
  EXPECT_FALSE(GenerateRmat(options).ok());
}

TEST(RmatTest, RejectsZeroEdges) {
  RmatOptions options;
  options.edges = 0;
  EXPECT_FALSE(GenerateRmat(options).ok());
}

class DcsbmTest : public ::testing::TestWithParam<double> {};

TEST_P(DcsbmTest, IntraFractionControlsCommunityStructure) {
  // Property sweep: higher intra_fraction ⇒ more within-block edges.
  DcsbmOptions options;
  options.nodes = 1000;
  options.edges = 10000;
  options.blocks = 10;
  options.intra_fraction = GetParam();
  options.seed = 11;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());

  const NodeId block_size = (options.nodes + options.blocks - 1) /
                            options.blocks;
  uint64_t intra = 0, total = 0;
  for (NodeId u = 0; u < graph->num_nodes(); ++u) {
    for (NodeId v : graph->OutNeighbors(u)) {
      if (u == v) continue;  // policy self-loops are not drawn edges
      ++total;
      if (u / block_size == v / block_size) ++intra;
    }
  }
  ASSERT_GT(total, 0u);
  const double observed = static_cast<double>(intra) /
                          static_cast<double>(total);
  // Inter-community draws can still land in the source's block by chance
  // (~1/blocks of the time), so observed ≥ parameter; allow sampling slack.
  EXPECT_GT(observed, GetParam() - 0.05);
}

INSTANTIATE_TEST_SUITE_P(IntraSweep, DcsbmTest,
                         ::testing::Values(0.5, 0.7, 0.85, 0.95));

TEST(DcsbmTest, HeavyTailedDegrees) {
  DcsbmOptions options;
  options.nodes = 2000;
  options.edges = 20000;
  options.blocks = 8;
  options.zipf_theta = 1.0;
  options.seed = 13;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_GT(stats.max_out_degree, 10 * stats.avg_out_degree);
}

TEST(DcsbmTest, UniformWeightsWhenThetaZero) {
  DcsbmOptions options;
  options.nodes = 2000;
  options.edges = 20000;
  options.blocks = 8;
  options.zipf_theta = 0.0;
  options.seed = 13;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeGraphStats(*graph);
  // Poisson-ish degrees: max ≈ avg + a few sigmas, far below heavy tails.
  EXPECT_LT(stats.max_out_degree, 6 * stats.avg_out_degree);
}

TEST(DcsbmTest, NoDanglingNodes) {
  DcsbmOptions options;
  options.nodes = 500;
  options.edges = 1500;
  options.blocks = 4;
  options.seed = 17;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->CountDangling(), 0u);
}

TEST(DcsbmTest, ValidatesOptions) {
  DcsbmOptions options;
  options.nodes = 0;
  EXPECT_FALSE(GenerateDcsbm(options).ok());
  options.nodes = 10;
  options.edges = 0;
  EXPECT_FALSE(GenerateDcsbm(options).ok());
  options.edges = 10;
  options.blocks = 0;
  EXPECT_FALSE(GenerateDcsbm(options).ok());
  options.blocks = 20;  // > nodes
  EXPECT_FALSE(GenerateDcsbm(options).ok());
  options.blocks = 2;
  options.intra_fraction = 1.5;
  EXPECT_FALSE(GenerateDcsbm(options).ok());
}

}  // namespace
}  // namespace tpa
