/// The out-of-core builder's contract: a file-backed CSR build of the same
/// edge sequence is indistinguishable — bitwise, through preprocessing and
/// snapshotting — from the in-RAM GraphBuilder, across the cleaning-option
/// matrix and both value tiers/storages; plus the reopen path and the
/// overflow validators' boundary behavior.

#include "graph/out_of_core.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "core/tpa.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/status.h"

namespace tpa {
namespace {

class OutOfCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/ooc_" +
              std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  void TearDown() override {
    for (const std::string& suffix :
         {".csr", ".a.snap", ".b.snap", ".csr.spill-out", ".csr.spill-in"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  std::string CsrPath() const { return prefix_ + ".csr"; }

  std::string prefix_;
};

/// Structural equality, checked through the public adjacency API in both
/// directions.
void ExpectSameTopology(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    const auto out_a = a.OutNeighbors(u);
    const auto out_b = b.OutNeighbors(u);
    ASSERT_EQ(std::vector<NodeId>(out_a.begin(), out_a.end()),
              std::vector<NodeId>(out_b.begin(), out_b.end()))
        << "out row " << u;
    const auto in_a = a.InNeighbors(u);
    const auto in_b = b.InNeighbors(u);
    ASSERT_EQ(std::vector<NodeId>(in_a.begin(), in_a.end()),
              std::vector<NodeId>(in_b.begin(), in_b.end()))
        << "in row " << u;
  }
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// The strongest equivalence we can ask for: preprocess both graphs and
/// compare the snapshot files byte for byte — topology, every value layer,
/// scales, and metadata all have to agree bitwise for this to pass.
void ExpectSameSnapshotBytes(const Graph& in_ram, const Graph& ooc,
                             const std::string& path_a,
                             const std::string& path_b) {
  auto tpa_a = Tpa::Preprocess(in_ram, {});
  ASSERT_TRUE(tpa_a.ok()) << tpa_a.status();
  auto tpa_b = Tpa::Preprocess(ooc, {});
  ASSERT_TRUE(tpa_b.ok()) << tpa_b.status();
  ASSERT_TRUE(tpa_a->SaveSnapshot(path_a).ok());
  ASSERT_TRUE(tpa_b->SaveSnapshot(path_b).ok());
  const std::string bytes_a = FileBytes(path_a);
  const std::string bytes_b = FileBytes(path_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a == bytes_b, true) << "snapshot bytes diverge";
}

TEST_F(OutOfCoreTest, BitwiseIdenticalAcrossTiersAndStorages) {
  RmatOptions rmat;
  rmat.scale = 10;
  rmat.edges = 1u << 14;
  rmat.seed = 7;
  const struct {
    la::Precision precision;
    ValueStorage storage;
  } combos[] = {
      {la::Precision::kFloat64, ValueStorage::kExplicit},
      {la::Precision::kFloat64, ValueStorage::kRowConstant},
      {la::Precision::kFloat32, ValueStorage::kExplicit},
      {la::Precision::kFloat32, ValueStorage::kRowConstant},
  };
  for (const auto& combo : combos) {
    SCOPED_TRACE(std::string(la::PrecisionName(combo.precision)) +
                 (combo.storage == ValueStorage::kExplicit ? "/explicit"
                                                           : "/value-free"));
    BuildOptions build;
    build.value_precision = combo.precision;
    build.value_storage = combo.storage;
    auto in_ram = GenerateRmat(rmat, build);
    ASSERT_TRUE(in_ram.ok()) << in_ram.status();

    OutOfCoreOptions ooc_options;
    ooc_options.csr_path = CsrPath();
    ooc_options.build = build;
    auto ooc = GenerateRmatOutOfCore(rmat, std::move(ooc_options));
    ASSERT_TRUE(ooc.ok()) << ooc.status();

    ExpectSameTopology(*in_ram, *ooc->graph);
    ExpectSameSnapshotBytes(*in_ram, *ooc->graph, prefix_ + ".a.snap",
                            prefix_ + ".b.snap");
  }
}

TEST_F(OutOfCoreTest, CleaningOptionMatrixMatchesInRamBuilder) {
  // Crafted stream: duplicates (some split across far-apart Adds),
  // self-loops, a dangling node (6), and an isolated node (7).
  const std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 0}, {0, 1}, {3, 3}, {4, 5}, {5, 4},
      {2, 0}, {1, 6}, {3, 2}, {0, 1}, {5, 5}, {4, 5}, {2, 6},
  };
  for (bool remove_self_loops : {true, false}) {
    for (bool deduplicate : {true, false}) {
      for (DanglingPolicy policy :
           {DanglingPolicy::kKeep, DanglingPolicy::kAddSelfLoop}) {
        SCOPED_TRACE(std::string("self_loops=") +
                     (remove_self_loops ? "drop" : "keep") +
                     " dedupe=" + (deduplicate ? "on" : "off") +
                     " dangling=" +
                     (policy == DanglingPolicy::kKeep ? "keep" : "loop"));
        BuildOptions build;
        build.remove_self_loops = remove_self_loops;
        build.deduplicate = deduplicate;
        build.dangling_policy = policy;

        GraphBuilder in_ram(8);
        for (const auto& [u, v] : edges) in_ram.AddEdge(u, v);
        auto expected = in_ram.Build(build);
        ASSERT_TRUE(expected.ok()) << expected.status();

        OutOfCoreOptions ooc_options;
        ooc_options.csr_path = CsrPath();
        ooc_options.build = build;
        auto builder = OutOfCoreGraphBuilder::Create(8, std::move(ooc_options));
        ASSERT_TRUE(builder.ok()) << builder.status();
        for (const auto& [u, v] : edges) {
          ASSERT_TRUE(builder->AddEdge(u, v).ok());
        }
        auto ooc = builder->Build();
        ASSERT_TRUE(ooc.ok()) << ooc.status();

        ExpectSameTopology(*expected, *ooc->graph);
      }
    }
  }
}

TEST_F(OutOfCoreTest, MultiChunkSpillsStayBitwiseIdentical) {
  // A tight budget forces the sorters through several spill chunks and a
  // real k-way merge; the result must not depend on the chunking.
  RmatOptions rmat;
  rmat.scale = 13;
  rmat.edges = (uint64_t{1} << 13) * 20;  // > 131072 records per sorter
  rmat.seed = 3;
  BuildOptions build;
  build.value_storage = ValueStorage::kRowConstant;

  auto in_ram = GenerateRmat(rmat, build);
  ASSERT_TRUE(in_ram.ok()) << in_ram.status();

  OutOfCoreOptions ooc_options;
  ooc_options.csr_path = CsrPath();
  ooc_options.memory_budget_bytes = size_t{8} << 20;  // 1 MB chunk floor
  ooc_options.build = build;
  auto ooc = GenerateRmatOutOfCore(rmat, std::move(ooc_options));
  ASSERT_TRUE(ooc.ok()) << ooc.status();

  ExpectSameTopology(*in_ram, *ooc->graph);
  ExpectSameSnapshotBytes(*in_ram, *ooc->graph, prefix_ + ".a.snap",
                          prefix_ + ".b.snap");
}

TEST_F(OutOfCoreTest, ReopenedCsrServesTheSameGraph) {
  RmatOptions rmat;
  rmat.scale = 9;
  rmat.edges = 1u << 13;
  rmat.seed = 11;
  BuildOptions build;
  build.value_storage = ValueStorage::kRowConstant;

  uint64_t built_bytes = 0;
  {
    OutOfCoreOptions ooc_options;
    ooc_options.csr_path = CsrPath();
    ooc_options.build = build;
    auto built = GenerateRmatOutOfCore(rmat, std::move(ooc_options));
    ASSERT_TRUE(built.ok()) << built.status();
    built_bytes = built->file_bytes;
  }  // mapping closed; only the file remains

  auto reopened = OpenOutOfCoreGraph(CsrPath());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->file_bytes, built_bytes);

  auto in_ram = GenerateRmat(rmat, build);
  ASSERT_TRUE(in_ram.ok());
  ExpectSameTopology(*in_ram, *reopened->graph);
  ExpectSameSnapshotBytes(*in_ram, *reopened->graph, prefix_ + ".a.snap",
                          prefix_ + ".b.snap");
}

TEST_F(OutOfCoreTest, ReopenRejectsCorruptHeaders) {
  RmatOptions rmat;
  rmat.scale = 8;
  rmat.edges = 1u << 11;
  OutOfCoreOptions ooc_options;
  ooc_options.csr_path = CsrPath();
  ASSERT_TRUE(GenerateRmatOutOfCore(rmat, std::move(ooc_options)).ok());

  // Flip one magic byte: the reopen must fail with a Status, not serve
  // garbage.
  {
    std::fstream f(CsrPath(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.put('X');
  }
  EXPECT_FALSE(OpenOutOfCoreGraph(CsrPath()).ok());
  EXPECT_FALSE(OpenOutOfCoreGraph(CsrPath() + ".missing").ok());
}

TEST_F(OutOfCoreTest, LocalityOrderingsAreUnimplemented) {
  OutOfCoreOptions ooc_options;
  ooc_options.csr_path = CsrPath();
  ooc_options.build.node_ordering = NodeOrdering::kDegreeDescending;
  auto builder = OutOfCoreGraphBuilder::Create(16, std::move(ooc_options));
  ASSERT_FALSE(builder.ok());
  EXPECT_EQ(builder.status().code(), StatusCode::kUnimplemented);
}

TEST_F(OutOfCoreTest, MissingCsrPathIsRejected) {
  EXPECT_FALSE(OutOfCoreGraphBuilder::Create(16, {}).ok());
}

TEST_F(OutOfCoreTest, OutOfRangeEndpointIsACleanError) {
  OutOfCoreOptions ooc_options;
  ooc_options.csr_path = CsrPath();
  auto builder = OutOfCoreGraphBuilder::Create(4, std::move(ooc_options));
  ASSERT_TRUE(builder.ok());
  EXPECT_TRUE(builder->AddEdge(0, 3).ok());
  EXPECT_EQ(builder->AddEdge(0, 4).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder->AddEdge(4, 0).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tpa
