#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cpi.h"
#include "core/tpa.h"
#include "graph/generators.h"
#include "la/dense_block.h"
#include "method/power_iteration.h"
#include "method/registry.h"
#include "method/tpa_method.h"
#include "util/check.h"
#include "util/memory_budget.h"

namespace tpa {
namespace {

Graph TestGraph(uint64_t seed = 31) {
  DcsbmOptions options;
  options.nodes = 400;
  options.edges = 4000;
  options.blocks = 8;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

void ExpectVectorBitwiseEq(const std::vector<double>& got,
                           const std::vector<double>& expected,
                           const std::string& label) {
  ASSERT_EQ(got.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << label << " node " << i;
  }
}

TEST(CpiRunBatchTest, MatchesScalarRunBitwise) {
  Graph graph = TestGraph();
  const std::vector<NodeId> seeds = {0, 7, 200, 399, 7};  // includes a dup

  for (bool use_pull : {false, true}) {
    CpiOptions options;
    options.use_pull = use_pull;
    options.start_iteration = 0;
    options.terminal_iteration = 4;  // TPA's family window shape

    auto block = Cpi::RunBatch(graph, seeds, options);
    ASSERT_TRUE(block.ok());
    ASSERT_EQ(block->rows(), graph.num_nodes());
    ASSERT_EQ(block->num_vectors(), seeds.size());

    for (size_t b = 0; b < seeds.size(); ++b) {
      auto scalar = Cpi::Run(graph, {seeds[b]}, options);
      ASSERT_TRUE(scalar.ok());
      ExpectVectorBitwiseEq(block->ExtractVector(b), scalar->scores,
                            "pull=" + std::to_string(use_pull) + " seed " +
                                std::to_string(seeds[b]));
    }
  }
}

TEST(CpiRunBatchTest, UnboundedRunHonorsPerSeedConvergence) {
  Graph graph = TestGraph(57);
  // Loose tolerance so different seeds converge at different iterations —
  // the per-vector freeze must reproduce each scalar run's stopping point.
  CpiOptions options;
  options.tolerance = 1e-4;

  const std::vector<NodeId> seeds = {1, 50, 399};
  auto block = Cpi::RunBatch(graph, seeds, options);
  ASSERT_TRUE(block.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    auto scalar = Cpi::Run(graph, {seeds[b]}, options);
    ASSERT_TRUE(scalar.ok());
    ExpectVectorBitwiseEq(block->ExtractVector(b), scalar->scores,
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(CpiRunBatchTest, WindowedStartSkipsEarlyIterations) {
  Graph graph = TestGraph();
  CpiOptions options;
  options.start_iteration = 3;
  options.terminal_iteration = 9;

  const std::vector<NodeId> seeds = {5, 123};
  auto block = Cpi::RunBatch(graph, seeds, options);
  ASSERT_TRUE(block.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    auto scalar = Cpi::Run(graph, {seeds[b]}, options);
    ASSERT_TRUE(scalar.ok());
    ExpectVectorBitwiseEq(block->ExtractVector(b), scalar->scores,
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(CpiRunBatchTest, RejectsBadInput) {
  Graph graph = TestGraph();
  EXPECT_FALSE(Cpi::RunBatch(graph, {}, {}).ok());
  const std::vector<NodeId> bad = {graph.num_nodes()};
  EXPECT_EQ(Cpi::RunBatch(graph, bad, {}).status().code(),
            StatusCode::kOutOfRange);
  CpiOptions invalid;
  invalid.restart_probability = 2.0;
  const std::vector<NodeId> seeds = {0};
  EXPECT_FALSE(Cpi::RunBatch(graph, seeds, invalid).ok());
}

TEST(TpaQueryBatchTest, BitwiseMatchesSequentialQuery) {
  Graph graph = TestGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());

  const std::vector<NodeId> seeds = {0, 13, 250, 399, 13, 77};
  auto block = tpa->QueryBatch(seeds);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(block->num_vectors(), seeds.size());
  for (size_t b = 0; b < seeds.size(); ++b) {
    ExpectVectorBitwiseEq(block->ExtractVector(b), tpa->Query(seeds[b]),
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(TpaQueryBatchTest, PullFlavorAlsoBitwise) {
  Graph graph = TestGraph(91);
  TpaOptions options;
  options.use_pull = true;
  auto tpa = Tpa::Preprocess(graph, options);
  ASSERT_TRUE(tpa.ok());

  const std::vector<NodeId> seeds = {3, 42, 333};
  auto block = tpa->QueryBatch(seeds);
  ASSERT_TRUE(block.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    ExpectVectorBitwiseEq(block->ExtractVector(b), tpa->Query(seeds[b]),
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(TpaQueryBatchTest, RejectsBadSeeds) {
  Graph graph = TestGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  EXPECT_FALSE(tpa->QueryBatch({}).ok());
  const std::vector<NodeId> bad = {0, graph.num_nodes()};
  EXPECT_EQ(tpa->QueryBatch(bad).status().code(), StatusCode::kOutOfRange);
}

TEST(QueryBatchDenseTest, TpaMethodNativePathIsBitwise) {
  Graph graph = TestGraph();
  TpaMethod method;
  MemoryBudget unlimited;
  ASSERT_TRUE(method.Preprocess(graph, unlimited).ok());
  EXPECT_TRUE(method.SupportsBatchQuery());

  const std::vector<NodeId> seeds = {9, 99, 199};
  auto block = method.QueryBatchDense(seeds);
  ASSERT_TRUE(block.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    auto scalar = method.Query(seeds[b]);
    ASSERT_TRUE(scalar.ok());
    ExpectVectorBitwiseEq(block->ExtractVector(b), *scalar,
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(QueryBatchDenseTest, PowerIterationNativePathIsBitwise) {
  Graph graph = TestGraph();
  PowerIterationRwr method;
  MemoryBudget unlimited;
  ASSERT_TRUE(method.Preprocess(graph, unlimited).ok());
  EXPECT_TRUE(method.SupportsBatchQuery());

  const std::vector<NodeId> seeds = {2, 77, 388};
  auto block = method.QueryBatchDense(seeds);
  ASSERT_TRUE(block.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    auto scalar = method.Query(seeds[b]);
    ASSERT_TRUE(scalar.ok());
    ExpectVectorBitwiseEq(block->ExtractVector(b), *scalar,
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(QueryBatchDenseTest, DefaultLoopImplementationMatchesQuery) {
  // BRPPR does not override QueryBatchDense; the base per-seed loop must
  // return exactly what Query returns, vector for vector.
  Graph graph = TestGraph();
  auto method = CreateMethod("BRPPR", {});
  ASSERT_TRUE(method.ok());
  EXPECT_FALSE((*method)->SupportsBatchQuery());
  MemoryBudget unlimited;
  ASSERT_TRUE((*method)->Preprocess(graph, unlimited).ok());

  const std::vector<NodeId> seeds = {4, 44};
  auto block = (*method)->QueryBatchDense(seeds);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(block->num_vectors(), seeds.size());
  for (size_t b = 0; b < seeds.size(); ++b) {
    auto scalar = (*method)->Query(seeds[b]);
    ASSERT_TRUE(scalar.ok());
    ExpectVectorBitwiseEq(block->ExtractVector(b), *scalar,
                          "seed " + std::to_string(seeds[b]));
  }
  EXPECT_FALSE((*method)->QueryBatchDense({}).ok());
}

TEST(QueryBatchDenseTest, FailsBeforePreprocess) {
  TpaMethod tpa_method;
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(tpa_method.QueryBatchDense(seeds).status().code(),
            StatusCode::kFailedPrecondition);
  PowerIterationRwr power;
  EXPECT_EQ(power.QueryBatchDense(seeds).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tpa
