#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cpi.h"
#include "core/tpa.h"
#include "engine/thread_pool.h"
#include "graph/generators.h"
#include "la/dense_block.h"
#include "method/power_iteration.h"
#include "method/registry.h"
#include "method/tpa_method.h"
#include "util/check.h"
#include "util/memory_budget.h"

namespace tpa {
namespace {

Graph TestGraph(uint64_t seed = 31) {
  DcsbmOptions options;
  options.nodes = 400;
  options.edges = 4000;
  options.blocks = 8;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

void ExpectVectorBitwiseEq(const std::vector<double>& got,
                           const std::vector<double>& expected,
                           const std::string& label) {
  ASSERT_EQ(got.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << label << " node " << i;
  }
}

TEST(CpiRunBatchTest, MatchesScalarRunBitwise) {
  Graph graph = TestGraph();
  const std::vector<NodeId> seeds = {0, 7, 200, 399, 7};  // includes a dup

  for (bool use_pull : {false, true}) {
    CpiOptions options;
    options.use_pull = use_pull;
    options.start_iteration = 0;
    options.terminal_iteration = 4;  // TPA's family window shape

    auto block = Cpi::RunBatch(graph, seeds, options);
    ASSERT_TRUE(block.ok());
    ASSERT_EQ(block->rows(), graph.num_nodes());
    ASSERT_EQ(block->num_vectors(), seeds.size());

    for (size_t b = 0; b < seeds.size(); ++b) {
      auto scalar = Cpi::Run(graph, {seeds[b]}, options);
      ASSERT_TRUE(scalar.ok());
      ExpectVectorBitwiseEq(block->ExtractVector(b), scalar->scores,
                            "pull=" + std::to_string(use_pull) + " seed " +
                                std::to_string(seeds[b]));
    }
  }
}

TEST(CpiRunBatchTest, UnboundedRunHonorsPerSeedConvergence) {
  Graph graph = TestGraph(57);
  // Loose tolerance so different seeds converge at different iterations —
  // the per-vector freeze must reproduce each scalar run's stopping point.
  CpiOptions options;
  options.tolerance = 1e-4;

  const std::vector<NodeId> seeds = {1, 50, 399};
  auto block = Cpi::RunBatch(graph, seeds, options);
  ASSERT_TRUE(block.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    auto scalar = Cpi::Run(graph, {seeds[b]}, options);
    ASSERT_TRUE(scalar.ok());
    ExpectVectorBitwiseEq(block->ExtractVector(b), scalar->scores,
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(CpiRunBatchTest, WindowedStartSkipsEarlyIterations) {
  Graph graph = TestGraph();
  CpiOptions options;
  options.start_iteration = 3;
  options.terminal_iteration = 9;

  const std::vector<NodeId> seeds = {5, 123};
  auto block = Cpi::RunBatch(graph, seeds, options);
  ASSERT_TRUE(block.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    auto scalar = Cpi::Run(graph, {seeds[b]}, options);
    ASSERT_TRUE(scalar.ok());
    ExpectVectorBitwiseEq(block->ExtractVector(b), scalar->scores,
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(CpiRunBatchTest, RejectsBadInput) {
  Graph graph = TestGraph();
  EXPECT_FALSE(Cpi::RunBatch(graph, {}, {}).ok());
  const std::vector<NodeId> bad = {graph.num_nodes()};
  EXPECT_EQ(Cpi::RunBatch(graph, bad, {}).status().code(),
            StatusCode::kOutOfRange);
  CpiOptions invalid;
  invalid.restart_probability = 2.0;
  const std::vector<NodeId> seeds = {0};
  EXPECT_FALSE(Cpi::RunBatch(graph, seeds, invalid).ok());
}

TEST(CpiRunBatchTest, ThresholdSweepAgreesWithDenseOnlyScalar) {
  // The strongest cross-pin: a fully sparse batch (threshold 1) against a
  // fully dense scalar run (threshold 0), plus the default in between.
  Graph graph = TestGraph();
  const std::vector<NodeId> seeds = {0, 7, 200, 399};

  CpiOptions dense_scalar;
  dense_scalar.terminal_iteration = 4;
  dense_scalar.frontier_density_threshold = 0.0;

  for (double threshold : {0.125, 1.0}) {
    CpiOptions batch_options = dense_scalar;
    batch_options.frontier_density_threshold = threshold;
    auto block = Cpi::RunBatch(graph, seeds, batch_options);
    ASSERT_TRUE(block.ok());
    for (size_t b = 0; b < seeds.size(); ++b) {
      auto scalar = Cpi::Run(graph, {seeds[b]}, dense_scalar);
      ASSERT_TRUE(scalar.ok());
      ExpectVectorBitwiseEq(block->ExtractVector(b), scalar->scores,
                            "threshold " + std::to_string(threshold) +
                                " seed " + std::to_string(seeds[b]));
    }
  }
}

TEST(CpiRunBatchTest, ParallelDenseTailMatchesSerialBitwise) {
  Graph graph = TestGraph();
  const std::vector<NodeId> seeds = {1, 50, 399, 200};

  CpiOptions serial_options;
  serial_options.tolerance = 1e-6;  // long enough to reach the dense tail
  auto serial = Cpi::RunBatch(graph, seeds, serial_options);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(3);
  CpiOptions parallel_options = serial_options;
  parallel_options.task_runner = &pool;
  auto parallel = Cpi::RunBatch(graph, seeds, parallel_options);
  ASSERT_TRUE(parallel.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    ExpectVectorBitwiseEq(parallel->ExtractVector(b),
                          serial->ExtractVector(b),
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(CpiRunBatchTest, ReusedWorkspaceMatchesFreshRuns) {
  Graph graph = TestGraph();
  Cpi::Workspace workspace;
  CpiOptions options;
  options.terminal_iteration = 4;

  const std::vector<std::vector<NodeId>> batches = {
      {0, 7}, {399}, {200, 200, 5}, {0, 7}};
  for (const auto& seeds : batches) {
    auto reused = Cpi::RunBatch(graph, seeds, options, &workspace);
    auto fresh = Cpi::RunBatch(graph, seeds, options);
    ASSERT_TRUE(reused.ok());
    ASSERT_TRUE(fresh.ok());
    for (size_t b = 0; b < seeds.size(); ++b) {
      ExpectVectorBitwiseEq(reused->ExtractVector(b),
                            fresh->ExtractVector(b),
                            "batch seed " + std::to_string(seeds[b]));
    }
  }
}

TEST(TpaQueryBatchTest, BitwiseMatchesSequentialQuery) {
  Graph graph = TestGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());

  const std::vector<NodeId> seeds = {0, 13, 250, 399, 13, 77};
  auto block = tpa->QueryBatch(seeds);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(block->num_vectors(), seeds.size());
  for (size_t b = 0; b < seeds.size(); ++b) {
    ExpectVectorBitwiseEq(block->ExtractVector(b), tpa->Query(seeds[b]),
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(TpaQueryBatchTest, PullFlavorAlsoBitwise) {
  Graph graph = TestGraph(91);
  TpaOptions options;
  options.use_pull = true;
  auto tpa = Tpa::Preprocess(graph, options);
  ASSERT_TRUE(tpa.ok());

  const std::vector<NodeId> seeds = {3, 42, 333};
  auto block = tpa->QueryBatch(seeds);
  ASSERT_TRUE(block.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    ExpectVectorBitwiseEq(block->ExtractVector(b), tpa->Query(seeds[b]),
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(TpaQueryBatchTest, RejectsBadSeeds) {
  Graph graph = TestGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  EXPECT_FALSE(tpa->QueryBatch({}).ok());
  const std::vector<NodeId> bad = {0, graph.num_nodes()};
  EXPECT_EQ(tpa->QueryBatch(bad).status().code(), StatusCode::kOutOfRange);
}

TEST(QueryBatchDenseTest, TpaMethodNativePathIsBitwise) {
  Graph graph = TestGraph();
  TpaMethod method;
  MemoryBudget unlimited;
  ASSERT_TRUE(method.Preprocess(graph, unlimited).ok());
  EXPECT_TRUE(method.SupportsBatchQuery());

  const std::vector<NodeId> seeds = {9, 99, 199};
  auto block = method.QueryBatchDense(seeds);
  ASSERT_TRUE(block.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    auto scalar = method.Query(seeds[b]);
    ASSERT_TRUE(scalar.ok());
    ExpectVectorBitwiseEq(block->ExtractVector(b), *scalar,
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(QueryBatchDenseTest, PowerIterationNativePathIsBitwise) {
  Graph graph = TestGraph();
  PowerIterationRwr method;
  MemoryBudget unlimited;
  ASSERT_TRUE(method.Preprocess(graph, unlimited).ok());
  EXPECT_TRUE(method.SupportsBatchQuery());

  const std::vector<NodeId> seeds = {2, 77, 388};
  auto block = method.QueryBatchDense(seeds);
  ASSERT_TRUE(block.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    auto scalar = method.Query(seeds[b]);
    ASSERT_TRUE(scalar.ok());
    ExpectVectorBitwiseEq(block->ExtractVector(b), *scalar,
                          "seed " + std::to_string(seeds[b]));
  }
}

TEST(QueryBatchDenseTest, DefaultLoopImplementationMatchesQuery) {
  // BRPPR does not override QueryBatchDense; the base per-seed loop must
  // return exactly what Query returns, vector for vector.
  Graph graph = TestGraph();
  auto method = CreateMethod("BRPPR", {});
  ASSERT_TRUE(method.ok());
  EXPECT_FALSE((*method)->SupportsBatchQuery());
  MemoryBudget unlimited;
  ASSERT_TRUE((*method)->Preprocess(graph, unlimited).ok());

  const std::vector<NodeId> seeds = {4, 44};
  auto block = (*method)->QueryBatchDense(seeds);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(block->num_vectors(), seeds.size());
  for (size_t b = 0; b < seeds.size(); ++b) {
    auto scalar = (*method)->Query(seeds[b]);
    ASSERT_TRUE(scalar.ok());
    ExpectVectorBitwiseEq(block->ExtractVector(b), *scalar,
                          "seed " + std::to_string(seeds[b]));
  }
  EXPECT_FALSE((*method)->QueryBatchDense({}).ok());
}

TEST(QueryBatchDenseTest, FailsBeforePreprocess) {
  TpaMethod tpa_method;
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(tpa_method.QueryBatchDense(seeds).status().code(),
            StatusCode::kFailedPrecondition);
  PowerIterationRwr power;
  EXPECT_EQ(power.QueryBatchDense(seeds).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tpa
