#include "method/push.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include "core/cpi.h"
#include "graph/generators.h"
#include "la/vector_ops.h"

namespace tpa {
namespace {

Graph TestGraph(uint64_t seed = 31) {
  DcsbmOptions options;
  options.nodes = 250;
  options.edges = 2000;
  options.blocks = 5;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(ForwardPushTest, MassConservation) {
  // reserve + c·(residual propagated) accounts for all mass:
  // ‖p‖₁ + ... in fact ‖p‖₁ + (mass still pending in r as future reserve)
  // obeys ‖p‖₁ ≤ 1 and ‖p‖₁ + ‖r‖₁ ≥ ... simplest exact invariant:
  // applying the estimate identity to the all-ones test function:
  // Σ_t π(s,t) = 1  ⇒  ‖p‖₁ + ‖r‖₁·1 = ... Σ p + Σ r = 1 when every π sums
  // to one (self-loop-completed graphs).
  Graph graph = TestGraph();
  auto push = ForwardPush(graph, 0, 0.15, 1e-4);
  ASSERT_TRUE(push.ok());
  EXPECT_NEAR(la::NormL1(push->reserve) + la::NormL1(push->residual), 1.0,
              1e-10);
}

TEST(ForwardPushTest, InvariantAgainstExactRwr) {
  // π(s,·) = p(·) + Σ_v r(v)·π(v,·): validate at a handful of targets using
  // exact RWR vectors.
  Graph graph = TestGraph();
  const NodeId s = 3;
  auto push = ForwardPush(graph, s, 0.15, 1e-3);
  ASSERT_TRUE(push.ok());

  CpiOptions exact_options;
  exact_options.tolerance = 1e-12;
  auto pi_s = Cpi::ExactRwr(graph, s, exact_options);
  ASSERT_TRUE(pi_s.ok());

  // Build Σ_v r(v)·π(v,·) — dense, fine at this size.
  std::vector<double> combined = push->reserve;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (push->residual[v] == 0.0) continue;
    auto pi_v = Cpi::ExactRwr(graph, v, exact_options);
    ASSERT_TRUE(pi_v.ok());
    la::Axpy(push->residual[v], *pi_v, combined);
  }
  EXPECT_LT(la::L1Distance(combined, *pi_s), 1e-8);
}

TEST(ForwardPushTest, ResidualsRespectThreshold) {
  Graph graph = TestGraph();
  const double r_max = 1e-4;
  auto push = ForwardPush(graph, 7, 0.15, r_max);
  ASSERT_TRUE(push.ok());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint32_t deg = graph.OutDegree(v);
    EXPECT_LE(push->residual[v], r_max * std::max(1u, deg) + 1e-15)
        << "node " << v;
  }
}

TEST(ForwardPushTest, TighterThresholdMoreAccurate) {
  Graph graph = TestGraph();
  CpiOptions exact_options;
  exact_options.tolerance = 1e-12;
  auto exact = Cpi::ExactRwr(graph, 11, exact_options);
  ASSERT_TRUE(exact.ok());

  double prev_error = 1e9;
  for (double r_max : {1e-2, 1e-3, 1e-4, 1e-5}) {
    auto push = ForwardPush(graph, 11, 0.15, r_max);
    ASSERT_TRUE(push.ok());
    const double error = la::L1Distance(push->reserve, *exact);
    EXPECT_LT(error, prev_error + 1e-12);
    prev_error = error;
  }
  EXPECT_LT(prev_error, 1e-2);
}

TEST(ForwardPushTest, ValidatesArguments) {
  Graph graph = TestGraph();
  EXPECT_FALSE(ForwardPush(graph, 0, 0.15, 0.0).ok());
  EXPECT_FALSE(ForwardPush(graph, 0, 1.5, 1e-4).ok());
  EXPECT_FALSE(ForwardPush(graph, graph.num_nodes(), 0.15, 1e-4).ok());
}

TEST(BackwardPushTest, InvariantAgainstExactRwr) {
  // π(s,t) = p(s) + Σ_v π(s,v)·r(v) for every source s.
  Graph graph = TestGraph();
  const NodeId t = 5;
  auto push = BackwardPush(graph, t, 0.15, 1e-4);
  ASSERT_TRUE(push.ok());

  CpiOptions exact_options;
  exact_options.tolerance = 1e-12;
  for (NodeId s : {NodeId{0}, NodeId{50}, NodeId{249}}) {
    auto pi_s = Cpi::ExactRwr(graph, s, exact_options);
    ASSERT_TRUE(pi_s.ok());
    double estimate = push->reserve[s];
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      estimate += (*pi_s)[v] * push->residual[v];
    }
    EXPECT_NEAR(estimate, (*pi_s)[t], 1e-10) << "source " << s;
  }
}

TEST(BackwardPushTest, ResidualsBelowThreshold) {
  Graph graph = TestGraph();
  const double r_max = 1e-3;
  auto push = BackwardPush(graph, 9, 0.15, r_max);
  ASSERT_TRUE(push.ok());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_LE(push->residual[v], r_max + 1e-15);
  }
}

TEST(BackwardPushTest, OperationCapStopsEarly) {
  Graph graph = TestGraph();
  auto capped = BackwardPush(graph, 9, 0.15, 1e-6, /*max_operations=*/10);
  ASSERT_TRUE(capped.ok());
  auto full = BackwardPush(graph, 9, 0.15, 1e-6);
  ASSERT_TRUE(full.ok());
  EXPECT_LE(capped->push_count, full->push_count);
}

TEST(BackwardPushTest, ValidatesArguments) {
  Graph graph = TestGraph();
  EXPECT_FALSE(BackwardPush(graph, 0, 0.15, -1.0).ok());
  EXPECT_FALSE(BackwardPush(graph, graph.num_nodes(), 0.15, 1e-4).ok());
}

}  // namespace
}  // namespace tpa
