/// Accuracy-envelope and bitwise-consistency coverage of the fp32
/// propagation tier in core: Cpi at fp32 (scalar, batch, windowed) against
/// its own scalar pins and against the fp64 tier, and fp32 TPA end to end
/// against the fp64 ground-truth oracle — the fp32 rounding must disappear
/// inside the approximation envelope the method already guarantees.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/cpi.h"
#include "core/tpa.h"
#include "eval/metrics.h"
#include "eval/oracle.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "la/precision.h"
#include "la/vector_ops.h"
#include "method/power_iteration.h"
#include "method/tpa_method.h"
#include "util/check.h"

namespace tpa {
namespace {

/// One community-structured graph at both tiers (identical structure).
struct TierPair {
  Graph fp64;
  Graph fp32;
};

TierPair MakeTierPair(uint64_t seed = 7) {
  DcsbmOptions options;
  options.nodes = 600;
  options.edges = 6000;
  options.blocks = 12;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  Graph fp32 = RematerializeWithPrecision(*graph, la::Precision::kFloat32);
  return {std::move(graph).value(), std::move(fp32)};
}

TEST(CpiPrecisionTest, Fp32BatchMatchesFp32ScalarBitwise) {
  const TierPair graphs = MakeTierPair();
  const std::vector<NodeId> seeds = {3, 141, 7, 399, 27, 555, 0, 88};

  for (double threshold : {0.0, 0.125, 1.0}) {
    CpiOptions options;
    options.tolerance = 1e-8;
    options.frontier_density_threshold = threshold;
    auto batch = Cpi::RunBatchT<float>(graphs.fp32, seeds, options);
    ASSERT_TRUE(batch.ok());
    for (size_t b = 0; b < seeds.size(); ++b) {
      auto scalar = Cpi::RunT<float>(graphs.fp32, {seeds[b]}, options);
      ASSERT_TRUE(scalar.ok());
      const std::vector<float> column = batch->ExtractVector(b);
      ASSERT_EQ(column.size(), scalar->scores.size());
      for (size_t i = 0; i < column.size(); ++i) {
        ASSERT_EQ(column[i], scalar->scores[i])
            << "threshold " << threshold << " seed " << seeds[b] << " node "
            << i;
      }
    }
  }
}

TEST(CpiPrecisionTest, Fp32PullMatchesPushNumerically) {
  const TierPair graphs = MakeTierPair(11);
  CpiOptions push;
  push.tolerance = 1e-8;
  CpiOptions pull = push;
  pull.use_pull = true;
  auto r_push = Cpi::RunT<float>(graphs.fp32, {42}, push);
  auto r_pull = Cpi::RunT<float>(graphs.fp32, {42}, pull);
  ASSERT_TRUE(r_push.ok());
  ASSERT_TRUE(r_pull.ok());
  EXPECT_LE(la::L1Distance(r_push->scores, r_pull->scores), 1e-4);
}

TEST(CpiPrecisionTest, Fp32TracksFp64WithinRoundingScale) {
  // The fp32 run solves the same fixed point; its whole-vector L1 distance
  // from the fp64 run must sit at fp32-rounding scale — orders of magnitude
  // below any approximation bound the methods use.
  const TierPair graphs = MakeTierPair(13);
  CpiOptions options;
  options.tolerance = 1e-8;
  for (NodeId seed : {NodeId{0}, NodeId{42}, NodeId{599}}) {
    auto r64 = Cpi::Run(graphs.fp64, {seed}, options);
    auto r32 = Cpi::RunT<float>(graphs.fp32, {seed}, options);
    ASSERT_TRUE(r64.ok());
    ASSERT_TRUE(r32.ok());
    EXPECT_LE(la::L1Distance(r32->scores, r64->scores), 1e-4) << seed;
    EXPECT_TRUE(r32->converged);
  }
}

TEST(CpiPrecisionTest, Fp32WindowedPartsSumToFullRun) {
  const TierPair graphs = MakeTierPair(17);
  std::vector<float> q(graphs.fp32.num_nodes(), 0.0f);
  q[9] = 1.0f;
  CpiOptions options;
  options.tolerance = 1e-8;
  auto windows = Cpi::RunWindowedT<float>(graphs.fp32, q, {0, 5, 10}, options);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 3u);

  auto full = Cpi::RunT<float>(graphs.fp32, {9}, options);
  ASSERT_TRUE(full.ok());
  std::vector<double> sum(graphs.fp32.num_nodes(), 0.0);
  for (const std::vector<float>& window : *windows) {
    for (size_t i = 0; i < window.size(); ++i) {
      sum[i] += static_cast<double>(window[i]);
    }
  }
  // The windows were accumulated in fp32, so their sum differs from the
  // single-accumulator run only by rounding.
  EXPECT_LE(la::L1Distance(full->scores, sum), 1e-4);
}

TEST(TpaPrecisionTest, Fp32TpaStaysInsideTheApproximationEnvelope) {
  // The acceptance pin: fp32 TPA's end-to-end L1 error against the fp64
  // ground-truth oracle must stay within the method's existing theoretical
  // envelope (Theorem 2's 2(1-c)^S), and within a whisker of the fp64
  // TPA's own error — fp32 rounding must not consume the budget.
  const TierPair graphs = MakeTierPair(19);
  TpaOptions options;
  options.family_window = 5;
  options.stranger_start = 10;

  auto tpa64 = Tpa::Preprocess(graphs.fp64, options);
  auto tpa32 = Tpa::Preprocess(graphs.fp32, options);
  ASSERT_TRUE(tpa64.ok());
  ASSERT_TRUE(tpa32.ok());
  EXPECT_EQ(tpa32->precision(), la::Precision::kFloat32);
  // The preprocessed tail is one fp32 value per node — half the fp64 tier.
  EXPECT_EQ(tpa32->PreprocessedBytes() * 2, tpa64->PreprocessedBytes());

  GroundTruthOracle oracle(graphs.fp64);
  const double bound =
      TotalErrorBound(options.restart_probability, options.family_window);
  for (NodeId seed : {NodeId{1}, NodeId{250}, NodeId{599}}) {
    auto exact = oracle.Exact(seed);
    ASSERT_TRUE(exact.ok());
    const std::vector<double> r64 = tpa64->Query(seed);
    const std::vector<float> r32 = tpa32->QueryF(seed);
    const double e64 = la::L1Distance(r64, *exact);
    const double e32 = la::L1Distance(r32, *exact);
    EXPECT_LE(e32, bound) << "seed " << seed;
    // fp32 rounding adds error at ~1e-6 L1 scale; the approximation error
    // itself is ~1e-1.  Pin the gap three orders below the envelope.
    EXPECT_NEAR(e32, e64, bound * 1e-3) << "seed " << seed;
  }
}

TEST(TpaPrecisionTest, Fp32QuerySurfacesAreConsistent) {
  const TierPair graphs = MakeTierPair(23);
  auto tpa = Tpa::Preprocess(graphs.fp32, {});
  ASSERT_TRUE(tpa.ok());

  const NodeId seed = 123;
  const std::vector<float> native = tpa->QueryF(seed);
  const std::vector<double> widened = tpa->Query(seed);
  ASSERT_EQ(native.size(), widened.size());
  for (size_t i = 0; i < native.size(); ++i) {
    // Query on an fp32 Tpa is exactly the widened fp32 result.
    ASSERT_EQ(widened[i], static_cast<double>(native[i])) << i;
  }

  const std::vector<NodeId> seeds = {123, 4, 577};
  auto batch = tpa->QueryBatchF(seeds);
  ASSERT_TRUE(batch.ok());
  for (size_t b = 0; b < seeds.size(); ++b) {
    const std::vector<float> column = batch->ExtractVector(b);
    const std::vector<float> scalar = tpa->QueryF(seeds[b]);
    ASSERT_EQ(column.size(), scalar.size());
    for (size_t i = 0; i < column.size(); ++i) {
      ASSERT_EQ(column[i], scalar[i]) << "seed " << seeds[b] << " node " << i;
    }
  }

  // The decomposition widens the same fp32 parts.
  const Tpa::QueryParts parts = tpa->QueryDecomposed(seed);
  EXPECT_LE(la::L1Distance(parts.total, widened), 1e-5);
}

TEST(MethodPrecisionTest, PowerIterationFp32MatchesOracleClosely) {
  // Exact CPI at fp32 has no approximation error — only rounding.  Against
  // the fp64 oracle the L1 gap must sit at fp32 scale.
  const TierPair graphs = MakeTierPair(29);
  PowerIterationRwr method{[] {
    CpiOptions options;
    options.tolerance = 1e-8;
    return options;
  }()};
  MemoryBudget unlimited;
  ASSERT_TRUE(method.Preprocess(graphs.fp32, unlimited).ok());

  GroundTruthOracle oracle(graphs.fp64);
  auto exact = oracle.Exact(77);
  ASSERT_TRUE(exact.ok());
  auto scores = method.QueryF32(77);
  ASSERT_TRUE(scores.ok());
  // CPI truncation at 1e-8 plus fp32 rounding.
  EXPECT_LE(la::L1Distance(*scores, *exact), 1e-4);

  // The fp64-typed Query on an fp32 graph is the widened fp32 result.
  auto widened = method.Query(77);
  ASSERT_TRUE(widened.ok());
  ASSERT_EQ(widened->size(), scores->size());
  for (size_t i = 0; i < scores->size(); ++i) {
    ASSERT_EQ((*widened)[i], static_cast<double>((*scores)[i])) << i;
  }
}

}  // namespace
}  // namespace tpa
