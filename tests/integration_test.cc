/// End-to-end integration tests: generate a preset-style dataset, run every
/// method through the shared harness, and check the paper's headline
/// qualitative claims (accuracy ordering, memory ordering, OOM behavior) on
/// a small instance.

#include <gtest/gtest.h>

#include <cmath>

#include <map>
#include <string>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/oracle.h"
#include "graph/presets.h"
#include "method/registry.h"

namespace tpa {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  // slashdot-sim at ~1500 nodes: large enough that top-k stays inside the
  // high-score region (the paper's k is ≤ 0.6% of n; recall collapses for
  // every method when k reaches deep into the flat tail).
  static constexpr double kScale = 0.25;

  void SetUp() override {
    auto spec = FindDatasetSpec("slashdot-sim");
    ASSERT_TRUE(spec.ok());
    spec_ = *spec;
    auto graph = MakePresetGraph(spec_, kScale);
    ASSERT_TRUE(graph.ok());
    graph_.emplace(std::move(graph).value());
  }

  MethodConfig Config() const {
    MethodConfig config;
    config.tpa_family_window = spec_.s;
    config.tpa_stranger_start = spec_.t;
    return config;
  }

  DatasetSpec spec_;
  std::optional<Graph> graph_;
};

TEST_F(IntegrationTest, FullPipelineAllMethods) {
  GroundTruthOracle oracle(*graph_);
  const auto seeds = PickQuerySeeds(*graph_, 3);

  std::map<std::string, double> recall;
  std::map<std::string, size_t> bytes;
  for (std::string_view name : ApproximateMethodNames()) {
    auto method = CreateMethod(name, Config());
    ASSERT_TRUE(method.ok()) << name;
    auto prep = MeasurePreprocess(**method, *graph_, /*budget=*/1ull << 30);
    ASSERT_TRUE(prep.ok()) << name;
    ASSERT_FALSE(prep->out_of_memory) << name;

    double total_recall = 0.0;
    for (NodeId seed : seeds) {
      auto scores = (*method)->Query(seed);
      ASSERT_TRUE(scores.ok()) << name;
      auto exact = oracle.Exact(seed);
      ASSERT_TRUE(exact.ok());
      total_recall += RecallAtK(*scores, *exact, 30);
    }
    recall[std::string(name)] = total_recall / seeds.size();
    bytes[std::string(name)] = (*method)->PreprocessedBytes();
  }

  // Paper Figure 7's qualitative ordering.  On the synthetic stand-ins
  // TPA's recall sits below the other accurate methods (its stranger
  // approximation leans on real-graph mixing speed; see EXPERIMENTS.md) but
  // stays far above NB-LIN, the paper's clear loser.
  for (const auto& [name, value] : recall) {
    if (name == "NB-LIN" || name == "TPA") continue;
    EXPECT_GT(value, 0.8) << name;
  }
  EXPECT_GT(recall["TPA"], 0.55);
  EXPECT_GT(recall["TPA"], recall["NB-LIN"]);
  // Paper Figure 1(a): TPA's preprocessed data is the smallest of the
  // preprocessing methods.
  for (std::string_view other : {"BEAR-APPROX", "NB-LIN", "FORA", "HubPPR"}) {
    EXPECT_LT(bytes["TPA"], bytes[std::string(other)]) << other;
  }
}

TEST_F(IntegrationTest, BepiAgreesWithOracle) {
  auto bepi = CreateMethod("BePI", Config());
  ASSERT_TRUE(bepi.ok());
  MemoryBudget budget;
  ASSERT_TRUE((*bepi)->Preprocess(*graph_, budget).ok());

  GroundTruthOracle oracle(*graph_);
  for (NodeId seed : PickQuerySeeds(*graph_, 3, /*rng_seed=*/9)) {
    auto approx = (*bepi)->Query(seed);
    ASSERT_TRUE(approx.ok());
    auto exact = oracle.Exact(seed);
    ASSERT_TRUE(exact.ok());
    EXPECT_LT(L1Error(*approx, *exact), 1e-6) << "seed " << seed;
  }
}

TEST_F(IntegrationTest, TpaBeatsTheoreticalBound) {
  auto tpa = CreateMethod("TPA", Config());
  ASSERT_TRUE(tpa.ok());
  MemoryBudget budget;
  ASSERT_TRUE((*tpa)->Preprocess(*graph_, budget).ok());

  GroundTruthOracle oracle(*graph_);
  const double bound = 2.0 * std::pow(0.85, spec_.s);
  for (NodeId seed : PickQuerySeeds(*graph_, 3, /*rng_seed=*/11)) {
    auto approx = (*tpa)->Query(seed);
    ASSERT_TRUE(approx.ok());
    auto exact = oracle.Exact(seed);
    ASSERT_TRUE(exact.ok());
    EXPECT_LT(L1Error(*approx, *exact), bound) << "seed " << seed;
  }
}

TEST_F(IntegrationTest, OomGateOrdersMethodsLikeThePaper) {
  // With a budget squeezed between TPA's footprint and the heavy methods',
  // TPA survives while BEAR-APPROX runs out — the Figure 1(a) missing-bars
  // mechanism.
  auto tpa = CreateMethod("TPA", Config());
  auto bear = CreateMethod("BEAR-APPROX", Config());
  ASSERT_TRUE(tpa.ok());
  ASSERT_TRUE(bear.ok());

  const size_t squeeze = graph_->num_nodes() * sizeof(double) + 1024;
  auto tpa_result = MeasurePreprocess(**tpa, *graph_, squeeze);
  auto bear_result = MeasurePreprocess(**bear, *graph_, squeeze);
  ASSERT_TRUE(tpa_result.ok());
  ASSERT_TRUE(bear_result.ok());
  EXPECT_FALSE(tpa_result->out_of_memory);
  EXPECT_TRUE(bear_result->out_of_memory);
}

}  // namespace
}  // namespace tpa
