#include "la/gmres.h"

#include <gtest/gtest.h>

#include <cmath>

#include "la/dense_matrix.h"
#include "util/random.h"

namespace tpa::la {
namespace {

LinearOperator AsOperator(const DenseMatrix& m) {
  LinearOperator op;
  op.rows = m.rows();
  op.cols = m.cols();
  op.apply = [&m](const std::vector<double>& x, std::vector<double>& y) {
    y = m.MatVec(x);
  };
  return op;
}

TEST(GmresTest, SolvesIdentity) {
  DenseMatrix eye = DenseMatrix::Identity(5);
  auto op = AsOperator(eye);
  std::vector<double> b = {1, 2, 3, 4, 5};
  auto result = Gmres(op, b, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(result->x[i], b[i], 1e-9);
}

TEST(GmresTest, SolvesRandomDiagonallyDominantSystem) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    const size_t n = 40;
    DenseMatrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a.At(i, j) = 0.3 * rng.NextGaussian();
      a.At(i, i) += 6.0;
    }
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.NextGaussian();
    std::vector<double> b = a.MatVec(x_true);

    auto op = AsOperator(a);
    GmresOptions options;
    options.tolerance = 1e-11;
    auto result = Gmres(op, b, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->converged) << "seed " << seed;
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(result->x[i], x_true[i], 1e-7);
  }
}

TEST(GmresTest, RestartedSolveConverges) {
  Rng rng(9);
  const size_t n = 60;
  DenseMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a.At(i, j) = 0.2 * rng.NextGaussian();
    a.At(i, i) += 4.0;
  }
  std::vector<double> b(n, 1.0);
  auto op = AsOperator(a);
  GmresOptions options;
  options.restart = 8;  // force several restart cycles
  options.tolerance = 1e-10;
  auto result = Gmres(op, b, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  // Verify residual directly.
  std::vector<double> ax = a.MatVec(result->x);
  double err = 0.0;
  for (size_t i = 0; i < n; ++i) err += std::abs(ax[i] - b[i]);
  EXPECT_LT(err, 1e-7);
}

TEST(GmresTest, ZeroRhsReturnsZero) {
  auto op = AsOperator(DenseMatrix::Identity(3));
  auto result = Gmres(op, {0.0, 0.0, 0.0}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  for (double v : result->x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(GmresTest, RwrStyleSystem) {
  // The exact system BePI solves: (I − (1-c) P) x = c q with P column
  // stochastic (here: a small ring transition matrix).
  const size_t n = 10;
  const double c = 0.15;
  DenseMatrix h(n, n);
  for (size_t i = 0; i < n; ++i) {
    h.At(i, i) = 1.0;
    h.At((i + 1) % n, i) -= (1.0 - c);  // each node points to its successor
  }
  std::vector<double> q(n, 0.0);
  q[0] = c;
  auto op = AsOperator(h);
  auto result = Gmres(op, q, {});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->converged);
  // Solution is the geometric RWR distribution around the ring.
  double expected = c;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += result->x[i];
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result->x[i], expected / (1.0 - std::pow(1.0 - c, n)), 1e-9);
    expected *= (1.0 - c);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GmresTest, DimensionMismatchRejected) {
  auto op = AsOperator(DenseMatrix::Identity(3));
  auto result = Gmres(op, {1.0, 2.0}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GmresTest, NonSquareRejected) {
  DenseMatrix rect(3, 2);
  auto op = AsOperator(rect);
  auto result = Gmres(op, {1.0, 2.0, 3.0}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tpa::la
