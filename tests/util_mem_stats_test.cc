/// Resident-memory accounting: /proc counters, the VmHWM peak used by the
/// bench JSON rows, and the ResidentSteward's region drop mechanics.  The
/// watermark-polling path is timing-dependent, so the steward tests drive
/// DropAll directly and only smoke the thread lifecycle.

#include "util/mem_stats.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "util/serial.h"

namespace tpa {
namespace {

TEST(MemStatsTest, CountersAreLiveOnLinux) {
  const MemStats stats = ReadMemStats();
  // A running test binary is resident; the high-water mark can never be
  // below the current set.
  EXPECT_GT(stats.vm_rss_bytes, 0u);
  EXPECT_GE(stats.vm_hwm_bytes, stats.vm_rss_bytes);
  // VmHWM is monotone; the allocator may grow RSS between the two reads
  // (sanitizer builds do), so only the ordering is stable.
  EXPECT_GE(PeakRssBytes(), stats.vm_hwm_bytes);
}

TEST(MemStatsTest, PeakIsMonotone) {
  const size_t before = PeakRssBytes();
  // Touch ~8 MB of fresh heap; the peak may only move up.
  std::string ballast(size_t{8} << 20, 'x');
  ASSERT_EQ(ballast.back(), 'x');
  EXPECT_GE(PeakRssBytes(), before);
}

class ResidentStewardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/steward_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(ResidentStewardTest, DropAllPreservesMappedContents) {
  constexpr size_t kBytes = size_t{4} << 20;
  auto created = MappedFile::Create(path_, kBytes);
  ASSERT_TRUE(created.ok());
  auto file = std::make_shared<MappedFile>(std::move(*created));
  for (size_t i = 0; i < kBytes; ++i) {
    file->mutable_data()[i] = static_cast<uint8_t>(i * 31);
  }

  ResidentSteward::Options options;
  options.budget_bytes = size_t{64} << 20;
  ResidentSteward steward(options);
  steward.RegisterRegion(file, file->data(), file->size());

  // MAP_SHARED dirty pages live in the page cache: dropping the resident
  // copies must not lose a byte.
  steward.DropAll();
  for (size_t i = 0; i < kBytes; i += 4096) {
    ASSERT_EQ(file->data()[i], static_cast<uint8_t>(i * 31)) << "page " << i;
  }
  ASSERT_EQ(file->data()[kBytes - 1],
            static_cast<uint8_t>((kBytes - 1) * 31));
}

TEST_F(ResidentStewardTest, RegisteredOwnerOutlivesCallerHandle) {
  auto created = MappedFile::Create(path_, 1 << 20);
  ASSERT_TRUE(created.ok());
  auto file = std::make_shared<MappedFile>(std::move(*created));
  const uint8_t* data = file->data();

  ResidentSteward steward({});
  steward.RegisterRegion(file, data, file->size());
  file.reset();  // steward's shared_ptr keeps the mapping alive
  steward.DropAll();
}

TEST_F(ResidentStewardTest, StartStopLifecycleIsIdempotent) {
  ResidentSteward::Options options;
  options.budget_bytes = size_t{1} << 30;
  options.poll_interval_ms = 1;
  ResidentSteward steward(options);
  steward.Start();
  steward.Start();  // no-op
  steward.Stop();
  steward.Stop();  // no-op
  steward.Start();
  // Destructor stops the thread.
}

TEST_F(ResidentStewardTest, ZeroBudgetDisablesThePollingThread) {
  ResidentSteward steward({});
  steward.Start();  // no-op under budget 0
  steward.Stop();
  EXPECT_EQ(steward.drop_count(), 0u);
}

}  // namespace
}  // namespace tpa
