#include <gtest/gtest.h>

#include <cmath>

#include "la/dense_matrix.h"
#include "la/linear_operator.h"
#include "la/symmetric_eigen.h"
#include "la/truncated_svd.h"
#include "util/random.h"

namespace tpa::la {
namespace {

TEST(SymmetricEigenTest, DiagonalMatrix) {
  DenseMatrix a(3, 3);
  a.At(0, 0) = 1.0;
  a.At(1, 1) = 5.0;
  a.At(2, 2) = 3.0;
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 5.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[2], 1.0, 1e-10);
}

TEST(SymmetricEigenTest, ReconstructsMatrix) {
  Rng rng(3);
  const size_t n = 8;
  DenseMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.NextGaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  // A = V diag(w) V^T
  DenseMatrix lambda(n, n);
  for (size_t i = 0; i < n; ++i) lambda.At(i, i) = eig->eigenvalues[i];
  DenseMatrix reconstructed = eig->eigenvectors.MatMul(lambda).MatMul(
      eig->eigenvectors.Transposed());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(reconstructed, a), 1e-8);
}

TEST(SymmetricEigenTest, EigenvectorsOrthonormal) {
  Rng rng(5);
  const size_t n = 6;
  DenseMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.NextGaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  DenseMatrix vtv =
      eig->eigenvectors.Transposed().MatMul(eig->eigenvectors);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(vtv, DenseMatrix::Identity(n)), 1e-8);
}

TEST(SymmetricEigenTest, NonSquareRejected) {
  auto eig = ComputeSymmetricEigen(DenseMatrix(2, 3));
  EXPECT_EQ(eig.status().code(), StatusCode::kInvalidArgument);
}

/// Wraps a dense matrix as a pair of LinearOperators for the SVD.
struct OperatorPair {
  DenseMatrix matrix;
  LinearOperator a;
  LinearOperator at;

  explicit OperatorPair(DenseMatrix m) : matrix(std::move(m)) {
    a.rows = matrix.rows();
    a.cols = matrix.cols();
    a.apply = [this](const std::vector<double>& x, std::vector<double>& y) {
      y = matrix.MatVec(x);
    };
    at.rows = matrix.cols();
    at.cols = matrix.rows();
    at.apply = [this](const std::vector<double>& x, std::vector<double>& y) {
      y = matrix.MatVecTranspose(x);
    };
  }
};

TEST(TruncatedSvdTest, RecoversLowRankMatrixExactly) {
  // Build a rank-3 matrix A = U S V^T and recover its spectrum.
  Rng rng(7);
  const size_t n = 30, rank = 3;
  DenseMatrix left = DenseMatrix(n, rank), right = DenseMatrix(n, rank);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < rank; ++j) {
      left.At(i, j) = rng.NextGaussian();
      right.At(i, j) = rng.NextGaussian();
    }
  }
  DenseMatrix a = left.MatMul(right.Transposed());

  OperatorPair ops(a);
  TruncatedSvdOptions options;
  options.rank = rank;
  options.power_iterations = 30;
  auto svd = ComputeTruncatedSvd(ops.a, ops.at, options);
  ASSERT_TRUE(svd.ok());

  // U diag(s) V^T should reconstruct A.
  DenseMatrix sigma(rank, rank);
  for (size_t i = 0; i < rank; ++i) sigma.At(i, i) = svd->singular[i];
  DenseMatrix reconstructed =
      svd->u.MatMul(sigma).MatMul(svd->v.Transposed());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(reconstructed, a), 1e-6);
}

TEST(TruncatedSvdTest, SingularValuesDecreasing) {
  Rng rng(11);
  const size_t n = 25;
  DenseMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a.At(i, j) = rng.NextGaussian();
  }
  OperatorPair ops(a);
  TruncatedSvdOptions options;
  options.rank = 5;
  options.power_iterations = 20;
  auto svd = ComputeTruncatedSvd(ops.a, ops.at, options);
  ASSERT_TRUE(svd.ok());
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_GE(svd->singular[i - 1], svd->singular[i] - 1e-12);
  }
}

TEST(TruncatedSvdTest, FactorsAreOrthonormal) {
  Rng rng(13);
  const size_t n = 20;
  DenseMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a.At(i, j) = rng.NextGaussian();
  }
  OperatorPair ops(a);
  TruncatedSvdOptions options;
  options.rank = 4;
  options.power_iterations = 25;
  auto svd = ComputeTruncatedSvd(ops.a, ops.at, options);
  ASSERT_TRUE(svd.ok());
  DenseMatrix utu = svd->u.Transposed().MatMul(svd->u);
  DenseMatrix vtv = svd->v.Transposed().MatMul(svd->v);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(utu, DenseMatrix::Identity(4)), 1e-6);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(vtv, DenseMatrix::Identity(4)), 1e-6);
}

TEST(TruncatedSvdTest, InvalidRankRejected) {
  OperatorPair ops{DenseMatrix::Identity(4)};
  TruncatedSvdOptions options;
  options.rank = 0;
  EXPECT_FALSE(ComputeTruncatedSvd(ops.a, ops.at, options).ok());
  options.rank = 10;
  EXPECT_FALSE(ComputeTruncatedSvd(ops.a, ops.at, options).ok());
}

}  // namespace
}  // namespace tpa::la
