/// Direct ResultCache coverage, including the async-serving concern: many
/// threads hammering hit / miss / evict under byte-budget pressure must
/// leave the stats and bounds exactly consistent.

#include "engine/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/random.h"

namespace tpa {
namespace {

ResultCache::Entry MakeEntry(NodeId seed, size_t size) {
  // Every element carries the seed so a corrupt or cross-wired hit is
  // detectable from any entry.
  return std::make_shared<const CachedResult>(CachedResult::Dense(
      std::vector<double>(size, static_cast<double>(seed))));
}

TEST(ResultCacheTest, GetPromotesAndPutRefreshes) {
  ResultCache cache(/*capacity=*/2);
  cache.Put(1, MakeEntry(1, 4));
  cache.Put(2, MakeEntry(2, 4));
  ASSERT_NE(cache.Get(1), nullptr);  // promotes 1 over 2
  cache.Put(3, MakeEntry(3, 4));     // evicts LRU seed 2
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);

  // Refreshing a key swaps the payload and adjusts the byte count.
  cache.Put(1, MakeEntry(1, 10));
  EXPECT_EQ(cache.bytes(), (10 + 4) * sizeof(double));
  EXPECT_EQ(cache.Get(1)->dense64.size(), 10u);
}

TEST(ResultCacheTest, OversizedEntryNeverPinsTheByteBudget) {
  ResultCache cache(/*capacity=*/0, /*capacity_bytes=*/64 * sizeof(double));
  cache.Put(1, MakeEntry(1, 100));  // larger than the whole budget
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  cache.Put(2, MakeEntry(2, 30));
  cache.Put(3, MakeEntry(3, 30));
  EXPECT_EQ(cache.size(), 2u);
  cache.Put(4, MakeEntry(4, 30));  // over budget → LRU seed 2 evicted
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.bytes(), 64 * sizeof(double));
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(ResultCacheTest, BothBoundsZeroCachesNothing) {
  ResultCache cache(0, 0);
  cache.Put(1, MakeEntry(1, 4));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(ResultCacheTest, RefusesPartialAndMalformedEntries) {
  // Regression: a degraded partial deposited as an exact answer would be
  // replayed to every later query for the same seed.  The cache is the
  // second line of defense (serving already bypasses it for degraded
  // results) and must silently refuse partial-tagged, null, and
  // payload-less entries.
  ResultCache cache(/*capacity=*/4);

  CachedResult tagged = CachedResult::Dense(std::vector<double>(4, 1.0));
  tagged.partial = true;
  cache.Put(1, std::make_shared<const CachedResult>(std::move(tagged)));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);

  cache.Put(2, nullptr);
  cache.Put(3, std::make_shared<const CachedResult>());  // no payload
  CachedResult empty_topk =
      CachedResult::TopKOnly(la::Precision::kFloat64, {});
  cache.Put(4, std::make_shared<const CachedResult>(std::move(empty_topk)));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);

  // A well-formed entry for a previously refused key still lands.
  cache.Put(1, MakeEntry(1, 4));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Get(1), nullptr);
}

TEST(ResultCacheTest, ConcurrentStormKeepsStatsAndBoundsConsistent) {
  // The async engine probes and fills this cache from every pool worker at
  // once.  N threads × mixed key popularity × varied entry sizes under a
  // byte budget small enough to force constant eviction: afterwards the
  // stats must balance exactly (hits + misses == lookups), the bounds must
  // hold, and every hit observed mid-storm must have carried the right
  // payload.
  constexpr int kThreads = 8;
  constexpr int kIterations = 3000;
  constexpr NodeId kKeySpace = 64;
  constexpr size_t kCapacity = 16;
  const size_t byte_budget = 40 * 100 * sizeof(double) / 2;

  ResultCache cache(kCapacity, byte_budget);
  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> observed_hits{0};
  std::atomic<bool> corrupt{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      uint64_t local_lookups = 0;
      for (int i = 0; i < kIterations; ++i) {
        // Skewed popularity: half the traffic on an 8-key hot set, so the
        // storm mixes steady hits with eviction churn.
        const NodeId key = (rng.NextUint64() % 2 == 0)
                               ? static_cast<NodeId>(rng.NextUint64() % 8)
                               : static_cast<NodeId>(rng.NextUint64() %
                                                     kKeySpace);
        ResultCache::Entry entry = cache.Get(key);
        ++local_lookups;
        if (entry != nullptr) {
          observed_hits.fetch_add(1, std::memory_order_relaxed);
          if (entry->dense64.empty() ||
              entry->dense64[0] != static_cast<double>(key)) {
            corrupt.store(true);
          }
        } else {
          // Entry sizes vary with the key to stress the byte accounting.
          cache.Put(key, MakeEntry(key, 40 + (key % 7) * 10));
        }
      }
      lookups.fetch_add(local_lookups, std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(corrupt.load()) << "a hit returned the wrong payload";
  EXPECT_EQ(lookups.load(), uint64_t{kThreads} * kIterations);
  // The exact hit/miss split depends on interleaving, but the totals must
  // balance and match what the clients observed.
  EXPECT_EQ(cache.hits() + cache.misses(), lookups.load());
  EXPECT_EQ(cache.hits(), observed_hits.load());
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_LE(cache.bytes(), byte_budget);
  EXPECT_GT(cache.size(), 0u);
}

}  // namespace
}  // namespace tpa
