#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/memory_budget.h"
#include "util/stopwatch.h"

namespace tpa {
namespace {

TEST(TablePrinterTest, TextAlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  std::ostringstream out;
  table.PrintText(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  // Header separator line of dashes exists.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatScientific(0.000321, 2), "3.21e-04");
  EXPECT_EQ(TablePrinter::FormatBytes(512), "512.0 B");
  EXPECT_EQ(TablePrinter::FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(TablePrinter::FormatBytes(3ull << 20), "3.0 MB");
}

TEST(TablePrinterDeathTest, MismatchedRowDies) {
  TablePrinter table({"only-one"});
  EXPECT_DEATH(table.AddRow({"a", "b"}), "CHECK");
}

TEST(MemoryBudgetTest, UnlimitedNeverFails) {
  MemoryBudget budget;  // limit 0 = unlimited
  EXPECT_TRUE(budget.unlimited());
  EXPECT_TRUE(budget.Reserve(1ull << 40).ok());
}

TEST(MemoryBudgetTest, EnforcesLimit) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Reserve(60).ok());
  EXPECT_TRUE(budget.Reserve(40).ok());
  Status overflow = budget.Reserve(1);
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 100u);
}

TEST(MemoryBudgetTest, ReleaseRestoresHeadroom) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Reserve(80).ok());
  budget.Release(50);
  EXPECT_EQ(budget.used(), 30u);
  EXPECT_TRUE(budget.Reserve(70).ok());
}

TEST(MemoryBudgetTest, ReleaseClampsAtZero) {
  MemoryBudget budget(100);
  budget.Release(10);  // nothing reserved
  EXPECT_EQ(budget.used(), 0u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch timer;
  // Busy-wait a tiny, deterministic amount of work.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace tpa
