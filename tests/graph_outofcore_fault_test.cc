/// Fault injection for the out-of-core build pipeline: a simulated
/// disk-full / short-read at each of its three failpoint sites
/// ("builder.spill" on chunk writes, "builder.merge" on merge refills,
/// "serial.msync" on the final durability sync) must surface as a clean
/// Status from the build — no crash, no partial Graph — and the same build
/// must succeed once the fault is disarmed.  Needs the failpoint sites
/// compiled in (cmake -DTPA_FAILPOINTS=ON); production builds get a skip.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "graph/generators.h"
#include "graph/out_of_core.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace tpa {
namespace {

#if !defined(TPA_FAILPOINTS_ENABLED)

TEST(OutOfCoreFaultTest, RequiresFailpointBuild) {
  GTEST_SKIP() << "fault-injection sites are compiled out; rebuild with "
                  "-DTPA_FAILPOINTS=ON to run this suite";
}

#else

class OutOfCoreFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    csr_path_ = ::testing::TempDir() + "/ooc_fault_" +
                std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csr";
  }
  void TearDown() override {
    DisarmAllFailpoints();
    for (const std::string& suffix : {"", ".spill-out", ".spill-in"}) {
      std::remove((csr_path_ + suffix).c_str());
    }
  }

  /// One small R-MAT build against the file-backed pipeline.
  StatusOr<OutOfCoreGraph> BuildOnce() {
    RmatOptions rmat;
    rmat.scale = 8;
    rmat.edges = 1u << 12;
    OutOfCoreOptions options;
    options.csr_path = csr_path_;
    return GenerateRmatOutOfCore(rmat, std::move(options));
  }

  std::string csr_path_;
};

TEST_F(OutOfCoreFaultTest, SpillFaultFailsTheBuildCleanly) {
  ArmFailpoint("builder.spill",
               FailpointAction::Error(ResourceExhaustedError(
                   "injected: spill device full")));
  auto built = BuildOnce();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(FailpointHits("builder.spill"), 0);

  DisarmAllFailpoints();
  EXPECT_TRUE(BuildOnce().ok());
}

TEST_F(OutOfCoreFaultTest, MergeFaultFailsTheBuildCleanly) {
  ArmFailpoint("builder.merge",
               FailpointAction::Error(InternalError("injected: short read")));
  auto built = BuildOnce();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInternal);
  EXPECT_GT(FailpointHits("builder.merge"), 0);

  DisarmAllFailpoints();
  EXPECT_TRUE(BuildOnce().ok());
}

TEST_F(OutOfCoreFaultTest, LateMergeFaultStillFailsTheBuild) {
  // Let the counting pass and the out-CSR pass succeed and fail the
  // transpose pass's refill instead — the mapped file exists and is
  // half-written by then, and the build must still come back as a Status.
  // (A single-chunk build refills once per merge: hit 1 counts, hit 2
  // writes the out direction, hit 3 writes the in direction.)
  ArmFailpoint("builder.merge",
               FailpointAction::Error(InternalError("injected: late fault")),
               /*skip=*/2);
  auto built = BuildOnce();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInternal);
}

TEST_F(OutOfCoreFaultTest, MsyncFaultFailsTheFinishCleanly) {
  ArmFailpoint("serial.msync",
               FailpointAction::Error(ResourceExhaustedError(
                   "injected: msync disk full")));
  auto built = BuildOnce();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(FailpointHits("serial.msync"), 0);

  DisarmAllFailpoints();
  EXPECT_TRUE(BuildOnce().ok());
}

TEST_F(OutOfCoreFaultTest, SkippingTheSyncAvoidsTheMsyncSite) {
  ArmFailpoint("serial.msync",
               FailpointAction::Error(InternalError("injected")));
  RmatOptions rmat;
  rmat.scale = 8;
  rmat.edges = 1u << 12;
  OutOfCoreOptions options;
  options.csr_path = csr_path_;
  options.sync_on_finish = false;
  EXPECT_TRUE(GenerateRmatOutOfCore(rmat, std::move(options)).ok());
}

#endif  // TPA_FAILPOINTS_ENABLED

}  // namespace
}  // namespace tpa
