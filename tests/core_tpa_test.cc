#include "core/tpa.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <cmath>

#include "graph/generators.h"
#include "graph/presets.h"
#include "la/vector_ops.h"

namespace tpa {
namespace {

Graph CommunityGraph(uint64_t seed = 21) {
  DcsbmOptions options;
  options.nodes = 400;
  options.edges = 4000;
  options.blocks = 8;
  options.intra_fraction = 0.9;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(TpaTest, QueryMassIsApproximatelyOne) {
  Graph graph = CommunityGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  auto scores = tpa->Query(0);
  // family (1-(1-c)^S) + scaled neighbor + stranger tail ≈ 1.
  EXPECT_NEAR(la::NormL1(scores), 1.0, 1e-6);
}

TEST(TpaTest, NeighborScaleMatchesLemma2) {
  TpaOptions options;
  options.family_window = 5;
  options.stranger_start = 10;
  Graph graph = CommunityGraph();
  auto tpa = Tpa::Preprocess(graph, options);
  ASSERT_TRUE(tpa.ok());
  const double c = options.restart_probability;
  const double expected = (std::pow(1 - c, 5) - std::pow(1 - c, 10)) /
                          (1.0 - std::pow(1 - c, 5));
  EXPECT_NEAR(tpa->NeighborScale(), expected, 1e-12);
}

TEST(TpaTest, DecompositionIsConsistent) {
  Graph graph = CommunityGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  auto parts = tpa->QueryDecomposed(11);

  // total = family + neighbor_est + stranger.
  std::vector<double> sum = parts.family;
  la::Axpy(1.0, parts.neighbor_est, sum);
  la::Axpy(1.0, tpa->stranger_scores(), sum);
  EXPECT_LT(la::L1Distance(sum, parts.total), 1e-14);

  // neighbor_est = scale * family, entrywise.
  for (size_t i = 0; i < parts.family.size(); ++i) {
    EXPECT_NEAR(parts.neighbor_est[i], parts.family[i] * tpa->NeighborScale(),
                1e-14);
  }
}

TEST(TpaTest, StrangerVectorIsSeedIndependent) {
  Graph graph = CommunityGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  auto a = tpa->QueryDecomposed(0);
  auto b = tpa->QueryDecomposed(200);
  // Different seeds share the identical precomputed stranger part but have
  // different family parts.
  EXPECT_GT(la::L1Distance(a.family, b.family), 0.1);
  EXPECT_EQ(tpa->PreprocessedBytes(),
            graph.num_nodes() * sizeof(double));
}

/// Theorem 2 sweep: ‖r_CPI − r_TPA‖₁ ≤ 2(1-c)^S for every (S, T) setting.
class TpaBoundTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TpaBoundTest, TotalErrorWithinTheorem2Bound) {
  const auto [s, t] = GetParam();
  Graph graph = CommunityGraph();
  TpaOptions options;
  options.family_window = s;
  options.stranger_start = t;
  auto tpa = Tpa::Preprocess(graph, options);
  ASSERT_TRUE(tpa.ok());

  CpiOptions exact_options;
  exact_options.tolerance = 1e-12;
  for (NodeId seed : {NodeId{0}, NodeId{57}, NodeId{399}}) {
    auto exact = Cpi::ExactRwr(graph, seed, exact_options);
    ASSERT_TRUE(exact.ok());
    auto approx = tpa->Query(seed);
    const double error = la::L1Distance(approx, *exact);
    EXPECT_LE(error, TotalErrorBound(options.restart_probability, s) + 1e-9)
        << "S=" << s << " T=" << t << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, TpaBoundTest,
    ::testing::Values(std::make_tuple(2, 5), std::make_tuple(3, 8),
                      std::make_tuple(5, 10), std::make_tuple(5, 15),
                      std::make_tuple(4, 20), std::make_tuple(8, 16)));

TEST(TpaTest, PartErrorsWithinLemmaBounds) {
  // Lemma 1 and Lemma 3 bounds on the individual approximations.
  Graph graph = CommunityGraph();
  TpaOptions options;
  options.family_window = 5;
  options.stranger_start = 10;
  const double c = options.restart_probability;
  auto tpa = Tpa::Preprocess(graph, options);
  ASSERT_TRUE(tpa.ok());

  std::vector<double> q(graph.num_nodes(), 0.0);
  q[33] = 1.0;
  CpiOptions exact_options;
  exact_options.tolerance = 1e-12;
  auto windows = Cpi::RunWindowed(graph, q, {0, 5, 10}, exact_options);
  ASSERT_TRUE(windows.ok());
  const auto& exact_neighbor = (*windows)[1];
  const auto& exact_stranger = (*windows)[2];

  auto parts = tpa->QueryDecomposed(33);
  const double neighbor_error =
      la::L1Distance(parts.neighbor_est, exact_neighbor);
  const double stranger_error =
      la::L1Distance(tpa->stranger_scores(), exact_stranger);
  EXPECT_LE(neighbor_error, NeighborErrorBound(c, 5, 10) + 1e-9);
  EXPECT_LE(stranger_error, StrangerErrorBound(c, 10) + 1e-9);
}

TEST(TpaTest, BlockStructureBeatsBoundSubstantially) {
  // Section IV-C: on block-structured graphs the realized error sits well
  // below the theoretical bound.
  Graph graph = CommunityGraph();
  TpaOptions options;
  options.family_window = 5;
  options.stranger_start = 10;
  auto tpa = Tpa::Preprocess(graph, options);
  ASSERT_TRUE(tpa.ok());

  CpiOptions exact_options;
  exact_options.tolerance = 1e-12;
  double total_error = 0.0;
  const std::vector<NodeId> seeds = {5, 100, 250, 300, 390};
  for (NodeId seed : seeds) {
    auto exact = Cpi::ExactRwr(graph, seed, exact_options);
    ASSERT_TRUE(exact.ok());
    total_error += la::L1Distance(tpa->Query(seed), *exact);
  }
  const double avg_error = total_error / seeds.size();
  const double bound = TotalErrorBound(options.restart_probability, 5);
  EXPECT_LT(avg_error, 0.6 * bound);
}

TEST(TpaTest, BoundFormulas) {
  EXPECT_NEAR(TotalErrorBound(0.15, 5), 2 * std::pow(0.85, 5), 1e-12);
  EXPECT_NEAR(StrangerErrorBound(0.15, 10), 2 * std::pow(0.85, 10), 1e-12);
  EXPECT_NEAR(NeighborErrorBound(0.15, 5, 10),
              2 * std::pow(0.85, 5) - 2 * std::pow(0.85, 10), 1e-12);
  // Theorem 2 consistency: total = neighbor + stranger bounds.
  EXPECT_NEAR(TotalErrorBound(0.15, 5),
              NeighborErrorBound(0.15, 5, 10) + StrangerErrorBound(0.15, 10),
              1e-12);
}

TEST(TpaTest, ValidatesOptions) {
  Graph graph = CommunityGraph();
  TpaOptions bad;
  bad.family_window = 0;
  EXPECT_FALSE(Tpa::Preprocess(graph, bad).ok());
  bad.family_window = 5;
  bad.stranger_start = 5;  // T must exceed S
  EXPECT_FALSE(Tpa::Preprocess(graph, bad).ok());
  bad.stranger_start = 10;
  bad.restart_probability = 0.0;
  EXPECT_FALSE(Tpa::Preprocess(graph, bad).ok());
}

TEST(TpaDeathTest, OutOfRangeSeedDies) {
  Graph graph = CommunityGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  EXPECT_DEATH(tpa->Query(graph.num_nodes()), "CHECK");
}

}  // namespace
}  // namespace tpa
