#include "graph/permutation.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/cpi.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "la/vector_ops.h"
#include "method/registry.h"
#include "util/check.h"
#include "util/memory_budget.h"

namespace tpa {
namespace {

Graph TestGraph(uint64_t seed = 71) {
  DcsbmOptions options;
  options.nodes = 400;
  options.edges = 3600;
  options.blocks = 8;
  options.zipf_theta = 1.0;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

std::vector<std::pair<NodeId, NodeId>> ExtractEdges(const Graph& graph) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(graph.num_edges());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) edges.emplace_back(u, v);
  }
  return edges;
}

Graph Rebuild(const std::vector<std::pair<NodeId, NodeId>>& edges,
              NodeId num_nodes, NodeOrdering ordering) {
  GraphBuilder builder(num_nodes);
  builder.AddEdges(edges);
  BuildOptions options;
  options.node_ordering = ordering;
  auto graph = builder.Build(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(PermutationTest, FromInternalOrderValidates) {
  EXPECT_FALSE(Permutation::FromInternalOrder({}).ok());
  EXPECT_FALSE(Permutation::FromInternalOrder({0, 0, 1}).ok());  // repeated
  EXPECT_FALSE(Permutation::FromInternalOrder({0, 3}).ok());     // range

  auto perm = Permutation::FromInternalOrder({2, 0, 1});
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(perm->size(), 3u);
  // Internal slot 0 holds original node 2.
  EXPECT_EQ(perm->ToExternal(0), 2u);
  EXPECT_EQ(perm->ToInternal(2), 0u);
  for (NodeId e = 0; e < 3; ++e) {
    EXPECT_EQ(perm->ToExternal(perm->ToInternal(e)), e);
  }
}

TEST(PermutationTest, ScoreTranslationRoundTrips) {
  auto perm = Permutation::FromInternalOrder({2, 0, 1});
  ASSERT_TRUE(perm.ok());
  const std::vector<double> internal = {10.0, 20.0, 30.0};
  const std::vector<double> external = perm->ScoresToExternal(internal);
  // internal slot 0 ↔ external node 2, etc.
  EXPECT_EQ(external, (std::vector<double>{20.0, 30.0, 10.0}));
  EXPECT_EQ(perm->ValuesToInternal(external), internal);
}

class OrderingTest : public ::testing::TestWithParam<NodeOrdering> {};

TEST_P(OrderingTest, ReorderedGraphIsIsomorphic) {
  Graph original = TestGraph();
  const auto edges = ExtractEdges(original);
  Graph reordered = Rebuild(edges, original.num_nodes(), GetParam());

  ASSERT_NE(reordered.permutation(), nullptr);
  const Permutation& perm = *reordered.permutation();
  ASSERT_EQ(perm.size(), original.num_nodes());
  EXPECT_EQ(reordered.num_nodes(), original.num_nodes());
  EXPECT_EQ(reordered.num_edges(), original.num_edges());

  // Adjacency is preserved under translation: u → v externally iff
  // ToInternal(u) → ToInternal(v) internally.
  for (NodeId u = 0; u < original.num_nodes(); ++u) {
    const NodeId iu = perm.ToInternal(u);
    ASSERT_EQ(reordered.OutDegree(iu), original.OutDegree(u)) << "node " << u;
    std::vector<NodeId> translated;
    for (NodeId iv : reordered.OutNeighbors(iu)) {
      translated.push_back(perm.ToExternal(iv));
    }
    std::sort(translated.begin(), translated.end());
    const auto expected = original.OutNeighbors(u);
    ASSERT_TRUE(std::equal(translated.begin(), translated.end(),
                           expected.begin(), expected.end()))
        << "node " << u;
  }
}

TEST_P(OrderingTest, ExactRwrMatchesUnreorderedGraph) {
  Graph original = TestGraph();
  const auto edges = ExtractEdges(original);
  Graph reordered = Rebuild(edges, original.num_nodes(), GetParam());
  const Permutation& perm = *reordered.permutation();

  for (NodeId seed : {NodeId{0}, NodeId{57}, NodeId{399}}) {
    auto expected = Cpi::ExactRwr(original, seed, {});
    ASSERT_TRUE(expected.ok());
    auto internal = Cpi::ExactRwr(reordered, perm.ToInternal(seed), {});
    ASSERT_TRUE(internal.ok());
    const std::vector<double> translated = perm.ScoresToExternal(*internal);
    EXPECT_LT(la::L1Distance(translated, *expected), 1e-12)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Orderings, OrderingTest,
                         ::testing::Values(NodeOrdering::kDegreeDescending,
                                           NodeOrdering::kHubCluster));

TEST(OrderingTest, OriginalOrderingAttachesNoPermutation) {
  Graph original = TestGraph();
  const auto edges = ExtractEdges(original);
  Graph rebuilt = Rebuild(edges, original.num_nodes(), NodeOrdering::kOriginal);
  EXPECT_EQ(rebuilt.permutation(), nullptr);
}

/// Round trip for every registry method: preprocess on the original and the
/// reordered graph, query the same external seed, translate, compare.
struct MethodCase {
  std::string_view name;
  /// Deterministic methods must agree to rounding noise; the sampling
  /// methods (FORA, HubPPR) draw different — equally valid — walks when the
  /// node ids change, and NB-LIN's truncated-SVD power iteration converges
  /// to an order-dependent low-rank subspace, so those are held to their
  /// approximation envelope instead.
  double tolerance;
};

class MethodRoundTripTest : public ::testing::TestWithParam<MethodCase> {};

TEST_P(MethodRoundTripTest, ReorderedScoresMatchUnreordered) {
  const MethodCase& test_case = GetParam();
  Graph original = TestGraph(73);
  const auto edges = ExtractEdges(original);

  const NodeId seed = 5;
  MethodConfig config;

  auto base_method = CreateMethod(test_case.name, config);
  ASSERT_TRUE(base_method.ok());
  MemoryBudget unlimited;
  ASSERT_TRUE((*base_method)->Preprocess(original, unlimited).ok());
  auto expected = (*base_method)->Query(seed);
  ASSERT_TRUE(expected.ok());

  for (NodeOrdering ordering :
       {NodeOrdering::kDegreeDescending, NodeOrdering::kHubCluster}) {
    Graph reordered = Rebuild(edges, original.num_nodes(), ordering);
    const Permutation& perm = *reordered.permutation();

    auto method = CreateMethod(test_case.name, config);
    ASSERT_TRUE(method.ok());
    MemoryBudget budget;
    ASSERT_TRUE((*method)->Preprocess(reordered, budget).ok());
    auto internal = (*method)->Query(perm.ToInternal(seed));
    ASSERT_TRUE(internal.ok());
    const std::vector<double> translated = perm.ScoresToExternal(*internal);
    EXPECT_LT(la::L1Distance(translated, *expected), test_case.tolerance)
        << test_case.name << " ordering "
        << static_cast<int>(ordering);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, MethodRoundTripTest,
    ::testing::Values(MethodCase{"TPA", 1e-12},
                      MethodCase{"PowerIteration", 1e-12},
                      MethodCase{"BePI", 1e-12},
                      MethodCase{"BEAR-APPROX", 1e-12},
                      MethodCase{"NB-LIN", 0.5},
                      MethodCase{"BRPPR", 1e-12},
                      MethodCase{"FORA", 0.3}, MethodCase{"HubPPR", 0.5}),
    [](const ::testing::TestParamInfo<MethodCase>& info) {
      std::string name(info.param.name);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tpa
