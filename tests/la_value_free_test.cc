/// Value-free CSR coverage: every kernel of CsrMatrixT, run on a value-free
/// matrix (kRowConstant synthesized, kRowConstant with a per-row scale
/// array, and kColumnScale) and pinned bitwise against its explicit twin —
/// the same structure with the same numbers materialized per edge — across
/// adversarial CSRs (empty rows, dangling kKeep graphs, boundary columns)
/// and block widths 1–17.  Plus the dual-tier shared-structure Graph
/// round-trip: EnsureTier / RematerializeWithPrecision aliasing one
/// topology, SizeBytes accounting, and the permutation interplay.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/thread_pool.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "la/csr_matrix.h"
#include "la/dense_block.h"
#include "util/random.h"

namespace tpa {
namespace {

template <typename V>
std::vector<V> RandomVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<V> x(n);
  for (V& v : x) v = static_cast<V>(rng.NextDouble() - 0.5);
  return x;
}

template <typename V>
void ExpectBitwiseEq(const std::vector<V>& got, const std::vector<V>& expected,
                     const std::string& label) {
  ASSERT_EQ(got.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << label << " entry " << i;
  }
}

template <typename V>
void ExpectBitwiseEq(const la::DenseBlockT<V>& got,
                     const la::DenseBlockT<V>& expected,
                     const std::string& label) {
  ASSERT_EQ(got.rows(), expected.rows()) << label;
  ASSERT_EQ(got.num_vectors(), expected.num_vectors()) << label;
  for (size_t r = 0; r < expected.rows(); ++r) {
    for (size_t b = 0; b < expected.num_vectors(); ++b) {
      ASSERT_EQ(got.At(r, b), expected.At(r, b))
          << label << " row " << r << " vector " << b;
    }
  }
}

/// The explicit twin of a value-free matrix: same shared structure, the
/// per-edge value array filled with exactly the numbers the value-free
/// kernels synthesize (EdgeWeight is the mode-agnostic oracle).  Bitwise
/// agreement between the twin and the original is the tentpole contract.
template <typename V>
la::CsrMatrixT<V> ExplicitTwin(const la::CsrMatrixT<V>& a) {
  std::vector<V> values(a.nnz());
  const std::span<const uint64_t> offsets = a.structure().row_offsets.span();
  for (uint32_t r = 0; r < a.rows(); ++r) {
    for (uint64_t e = offsets[r]; e < offsets[r + 1]; ++e) {
      values[e] = a.EdgeWeight(r, e);
    }
  }
  return la::CsrMatrixT<V>(a.structure(), std::move(values));
}

/// Runs the full kernel family on `vf` and its explicit twin and asserts
/// bitwise-identical outputs: SpMv, SpMvTranspose, SpMm/SpMmTranspose at
/// specialized and generic widths, the frontier heads in both directions,
/// and the range/parallel scatter drivers.
template <typename V>
void CheckValueFreeBitwise(const la::CsrMatrixT<V>& vf, uint64_t seed,
                           const std::string& label) {
  ASSERT_NE(vf.value_mode(), la::CsrValueMode::kExplicit) << label;
  const la::CsrMatrixT<V> ex = ExplicitTwin(vf);
  // The twin aliases the structure rather than copying it.
  ASSERT_EQ(ex.structure().col_indices.data(),
            vf.structure().col_indices.data());

  const std::vector<V> x_cols = RandomVector<V>(vf.cols(), seed);
  const std::vector<V> x_rows = RandomVector<V>(vf.rows(), seed + 1);

  std::vector<V> y_vf, y_ex;
  vf.SpMv(x_cols, y_vf);
  ex.SpMv(x_cols, y_ex);
  ExpectBitwiseEq(y_vf, y_ex, label + " SpMv");

  vf.SpMvTranspose(x_rows, y_vf);
  ex.SpMvTranspose(x_rows, y_ex);
  ExpectBitwiseEq(y_vf, y_ex, label + " SpMvTranspose");

  for (size_t width : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{8},
                       size_t{16}, size_t{17}}) {
    const std::string wlabel = label + " width " + std::to_string(width);
    la::DenseBlockT<V> bx_cols(vf.cols(), width);
    la::DenseBlockT<V> bx_rows(vf.rows(), width);
    for (size_t b = 0; b < width; ++b) {
      bx_cols.SetVector(b, RandomVector<V>(vf.cols(), seed + 100 * (b + 1)));
      bx_rows.SetVector(b, RandomVector<V>(vf.rows(), seed + 101 * (b + 1)));
    }
    la::DenseBlockT<V> by_vf, by_ex;
    vf.SpMm(bx_cols, by_vf);
    ex.SpMm(bx_cols, by_ex);
    ExpectBitwiseEq(by_vf, by_ex, wlabel + " SpMm");

    vf.SpMmTranspose(bx_rows, by_vf);
    ex.SpMmTranspose(bx_rows, by_ex);
    ExpectBitwiseEq(by_vf, by_ex, wlabel + " SpMmTranspose");
  }

  // Frontier scatter: a sparse x supported on a few rows, full pipeline.
  {
    std::vector<V> sparse(vf.rows(), V{0});
    std::vector<uint32_t> frontier;
    for (uint32_t r = 0; r < vf.rows(); r += 2) {
      sparse[r] = static_cast<V>(0.25 + 0.125 * r);
      frontier.push_back(r);
    }
    la::FrontierScratch scratch_vf, scratch_ex;
    std::vector<V> sy_vf(vf.cols(), V{0}), sy_ex(vf.cols(), V{0});
    std::vector<uint32_t> next_vf, next_ex;
    const bool sparse_vf = vf.SpMvTransposeFrontier(sparse, frontier, 1.5,
                                                    sy_vf, next_vf, scratch_vf);
    const bool sparse_ex = ex.SpMvTransposeFrontier(sparse, frontier, 1.5,
                                                    sy_ex, next_ex, scratch_ex);
    ASSERT_EQ(sparse_vf, sparse_ex) << label;
    ExpectBitwiseEq(sy_vf, sy_ex, label + " SpMvTransposeFrontier");
    EXPECT_EQ(next_vf, next_ex) << label;
  }

  // Frontier gather: every row as candidate ≡ dense, both matrices.
  {
    std::vector<uint32_t> candidates(vf.rows());
    for (uint32_t r = 0; r < vf.rows(); ++r) candidates[r] = r;
    std::vector<V> gy_vf(vf.rows(), V{0}), gy_ex(vf.rows(), V{0});
    std::vector<uint32_t> nz_vf, nz_ex;
    ASSERT_EQ(vf.SpMvFrontier(x_cols, candidates, 1.5, gy_vf, nz_vf),
              ex.SpMvFrontier(x_cols, candidates, 1.5, gy_ex, nz_ex))
        << label;
    ExpectBitwiseEq(gy_vf, gy_ex, label + " SpMvFrontier");
    EXPECT_EQ(nz_vf, nz_ex) << label;
  }

  // Range scatter: thirds of the destination space compose to the full
  // kernel; each range must agree across modes.
  {
    std::vector<V> ry_vf(vf.cols(), V{0}), ry_ex(vf.cols(), V{0});
    const uint32_t third = vf.cols() / 3;
    const std::vector<std::pair<uint32_t, uint32_t>> ranges = {
        {0, third}, {third, 2 * third}, {2 * third, vf.cols()}};
    for (const auto& [begin, end] : ranges) {
      vf.SpMvTransposeRange(x_rows, ry_vf, begin, end);
      ex.SpMvTransposeRange(x_rows, ry_ex, begin, end);
    }
    ExpectBitwiseEq(ry_vf, ry_ex, label + " SpMvTransposeRange");
    ex.SpMvTranspose(x_rows, y_ex);
    ExpectBitwiseEq(ry_vf, y_ex, label + " range composition");
  }

  // Parallel scatter driver over an nnz-balanced partition.
  {
    ThreadPool pool(2);
    const std::vector<uint32_t> boundaries = vf.NnzBalancedColumnRanges(2);
    std::vector<V> py_vf, py_ex;
    vf.SpMvTransposeParallel(x_rows, py_vf, boundaries, pool);
    ex.SpMvTransposeParallel(x_rows, py_ex, boundaries, pool);
    ExpectBitwiseEq(py_vf, py_ex, label + " SpMvTransposeParallel");
  }
}

/// The adversarial structure every mode is exercised on: 6×6 with empty
/// rows 1, 3, 5, a full row, and boundary columns.  Square so that both
/// scatter and gather directions have matching operand sizes.
la::CsrStructure AdversarialStructure() {
  return la::MakeCsrStructure(6, 6, {0, 2, 2, 3, 3, 7, 7},
                              {1, 3, 0, 0, 2, 4, 5});
}

TEST(ValueFreeKernelTest, SynthesizedRowConstantMatchesExplicit) {
  la::CsrMatrix a(AdversarialStructure(), la::CsrValueMode::kRowConstant);
  EXPECT_EQ(a.value_mode(), la::CsrValueMode::kRowConstant);
  // Synthesized weight is 1/row-nnz, rounded once from fp64.
  EXPECT_EQ(a.EdgeWeight(0, 0), 0.5);
  EXPECT_EQ(a.EdgeWeight(4, 3), 0.25);
  CheckValueFreeBitwise(a, 3, "synth fp64");

  la::CsrMatrixF af(AdversarialStructure(), la::CsrValueMode::kRowConstant);
  EXPECT_EQ(af.EdgeWeight(4, 3), 0.25f);
  CheckValueFreeBitwise(af, 5, "synth fp32");
}

TEST(ValueFreeKernelTest, PerRowScaleArrayMatchesExplicit) {
  const std::vector<double> scales = {0.5, 9.0, -1.25, 9.0, 0.125, 9.0};
  la::CsrMatrix a(AdversarialStructure(), la::CsrValueMode::kRowConstant,
                  scales);
  EXPECT_EQ(a.EdgeWeight(2, 2), -1.25);
  CheckValueFreeBitwise(a, 7, "row-scale fp64");

  const std::vector<float> scales_f(scales.begin(), scales.end());
  la::CsrMatrixF af(AdversarialStructure(), la::CsrValueMode::kRowConstant,
                    scales_f);
  CheckValueFreeBitwise(af, 9, "row-scale fp32");
}

TEST(ValueFreeKernelTest, ColumnScaleMatchesExplicit) {
  const std::vector<double> scales = {0.25, 0.5, -2.0, 0.125, 1.0, 3.0};
  la::CsrMatrix a(AdversarialStructure(), la::CsrValueMode::kColumnScale,
                  scales);
  // Edge 1 of row 0 points at column 3: weight is scales[3].
  EXPECT_EQ(a.EdgeWeight(0, 1), 0.125);
  CheckValueFreeBitwise(a, 11, "col-scale fp64");

  const std::vector<float> scales_f(scales.begin(), scales.end());
  la::CsrMatrixF af(AdversarialStructure(), la::CsrValueMode::kColumnScale,
                    scales_f);
  CheckValueFreeBitwise(af, 13, "col-scale fp32");
}

TEST(ValueFreeKernelTest, AllRowsEmpty) {
  la::CsrMatrix a(4, 4, {0, 0, 0, 0, 0}, {}, la::CsrValueMode::kRowConstant);
  CheckValueFreeBitwise(a, 17, "all-empty");
  std::vector<double> y(4, 99.0);
  a.SpMv({1.0, 2.0, 3.0, 4.0}, y);
  ExpectBitwiseEq(y, {0.0, 0.0, 0.0, 0.0}, "all-empty overwrite");
}

TEST(ValueFreeKernelTest, RandomGraphAllModes) {
  RmatOptions options;
  options.scale = 9;
  options.edges = 6000;
  options.seed = 42;
  auto graph = GenerateRmat(options);
  ASSERT_TRUE(graph.ok());
  const la::CsrStructure& out = graph->Transition().structure();
  const la::CsrStructure& in = graph->TransitionTranspose().structure();

  CheckValueFreeBitwise(la::CsrMatrix(out, la::CsrValueMode::kRowConstant),
                        21, "rmat out synth");
  std::vector<double> col_scales(in.cols);
  Rng rng(99);
  for (double& s : col_scales) s = rng.NextDouble() + 0.25;
  CheckValueFreeBitwise(
      la::CsrMatrix(in, la::CsrValueMode::kColumnScale, col_scales), 23,
      "rmat in col-scale");
}

TEST(ValueFreeKernelTest, RowValuesChecksOnValueFreeMatrices) {
  la::CsrMatrix a(AdversarialStructure(), la::CsrValueMode::kRowConstant);
  EXPECT_DEATH(a.RowValues(0), "kExplicit");
}

TEST(ValueFreeKernelTest, SizeBytesAccounting) {
  const la::CsrStructure s = AdversarialStructure();
  const size_t structure_bytes = la::CsrStructureBytes(s);
  EXPECT_EQ(structure_bytes, 7 * sizeof(uint64_t) + 7 * sizeof(uint32_t));

  la::CsrMatrix synth(s, la::CsrValueMode::kRowConstant);
  EXPECT_EQ(synth.ValueBytes(), 0u);
  EXPECT_EQ(synth.SizeBytes(), structure_bytes);

  la::CsrMatrix row_scaled(s, la::CsrValueMode::kRowConstant,
                           std::vector<double>(6, 0.5));
  EXPECT_EQ(row_scaled.ValueBytes(), 6 * sizeof(double));

  la::CsrMatrix ex = ExplicitTwin(synth);
  EXPECT_EQ(ex.ValueBytes(), s.nnz() * sizeof(double));
  EXPECT_EQ(ex.SizeBytes(), structure_bytes + s.nnz() * sizeof(double));
  EXPECT_EQ(ex.StructureBytes(), synth.StructureBytes());
}

// ---------------------------------------------------------------------------
// Graph level: value-free storage end to end and the dual-tier round-trip.
// ---------------------------------------------------------------------------

StatusOr<Graph> BuildTestGraph(
    ValueStorage storage, la::Precision precision, DanglingPolicy dangling,
    NodeOrdering ordering = NodeOrdering::kOriginal) {
  RmatOptions rmat;
  rmat.scale = 8;
  rmat.edges = 2500;
  rmat.seed = 7;
  auto seeded = GenerateRmat(rmat);
  if (!seeded.ok()) return seeded.status();
  GraphBuilder builder(seeded->num_nodes());
  for (NodeId u = 0; u < seeded->num_nodes(); ++u) {
    for (NodeId v : seeded->OutNeighbors(u)) builder.AddEdge(u, v);
  }
  BuildOptions options;
  options.value_storage = storage;
  options.value_precision = precision;
  options.dangling_policy = dangling;
  options.node_ordering = ordering;
  return builder.Build(options);
}

template <typename V>
void CheckGraphsBitwise(const Graph& vf, const Graph& ex, uint64_t seed) {
  const std::vector<V> x = RandomVector<V>(vf.num_nodes(), seed);
  std::vector<V> y_vf, y_ex;
  vf.TransitionT<V>().SpMvTranspose(x, y_vf);
  ex.TransitionT<V>().SpMvTranspose(x, y_ex);
  ExpectBitwiseEq(y_vf, y_ex, "graph push");
  vf.TransitionTransposeT<V>().SpMv(x, y_vf);
  ex.TransitionTransposeT<V>().SpMv(x, y_ex);
  ExpectBitwiseEq(y_vf, y_ex, "graph pull");
}

TEST(ValueFreeGraphTest, ValueFreeGraphMatchesExplicitBitwise) {
  // kKeep leaves genuinely dangling nodes: empty out-rows for the
  // synthesized mode and never-read zero column scales for the in-CSR.
  for (DanglingPolicy dangling :
       {DanglingPolicy::kKeep, DanglingPolicy::kAddSelfLoop}) {
    auto vf = BuildTestGraph(ValueStorage::kRowConstant,
                             la::Precision::kFloat64, dangling);
    auto ex = BuildTestGraph(ValueStorage::kExplicit, la::Precision::kFloat64,
                             dangling);
    ASSERT_TRUE(vf.ok() && ex.ok());
    ASSERT_EQ(vf->value_storage(), ValueStorage::kRowConstant);
    if (dangling == DanglingPolicy::kKeep) {
      ASSERT_GT(vf->CountDangling(), 0u);
    }
    CheckGraphsBitwise<double>(*vf, *ex, 31);
    // And the whole kernel family on both directions.
    CheckValueFreeBitwise(vf->Transition(), 33, "graph out");
    CheckValueFreeBitwise(vf->TransitionTranspose(), 35, "graph in");
  }
}

TEST(ValueFreeGraphTest, Fp32TierMatchesExplicitBitwise) {
  auto vf = BuildTestGraph(ValueStorage::kRowConstant, la::Precision::kFloat32,
                           DanglingPolicy::kKeep);
  auto ex = BuildTestGraph(ValueStorage::kExplicit, la::Precision::kFloat32,
                           DanglingPolicy::kKeep);
  ASSERT_TRUE(vf.ok() && ex.ok());
  ASSERT_FALSE(vf->HasTier(la::Precision::kFloat64));
  CheckGraphsBitwise<float>(*vf, *ex, 37);
}

TEST(ValueFreeGraphTest, SizeBytesReflectsStorageMode) {
  auto vf = BuildTestGraph(ValueStorage::kRowConstant, la::Precision::kFloat64,
                           DanglingPolicy::kAddSelfLoop);
  auto ex = BuildTestGraph(ValueStorage::kExplicit, la::Precision::kFloat64,
                           DanglingPolicy::kAddSelfLoop);
  ASSERT_TRUE(vf.ok() && ex.ok());
  const size_t structure_bytes =
      la::CsrStructureBytes(vf->Transition().structure()) +
      la::CsrStructureBytes(vf->TransitionTranspose().structure());
  // Value-free: one n-length 1/deg array per direction (row scales for the
  // out-CSR, column scales for the in-CSR) — nothing proportional to nnz.
  EXPECT_EQ(vf->SizeBytes(),
            structure_bytes + 2 * vf->num_nodes() * sizeof(double));
  // Explicit: 2·nnz fp64 values on top of the same structure.
  EXPECT_EQ(ex->SizeBytes(),
            structure_bytes + 2 * ex->num_edges() * sizeof(double));
  EXPECT_LT(vf->SizeBytes(), ex->SizeBytes());
}

TEST(ValueFreeGraphTest, EnsureTierSharesOneTopology) {
  auto graph = BuildTestGraph(ValueStorage::kRowConstant,
                              la::Precision::kFloat64, DanglingPolicy::kKeep);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->HasTier(la::Precision::kFloat64));
  ASSERT_FALSE(graph->HasTier(la::Precision::kFloat32));

  const size_t before = graph->SizeBytes();
  graph->EnsureTier(la::Precision::kFloat32);
  ASSERT_TRUE(graph->HasTier(la::Precision::kFloat32));
  // The second tier added only its value layer (here: n fp32 row scales +
  // n fp32 column scales), never a second copy of the topology…
  EXPECT_EQ(graph->SizeBytes(),
            before + 2 * graph->num_nodes() * sizeof(float));
  // …because both tiers alias the same index arrays.
  EXPECT_EQ(graph->Transition().structure().col_indices.data(),
            graph->TransitionF().structure().col_indices.data());
  EXPECT_EQ(graph->TransitionTranspose().structure().row_offsets.data(),
            graph->TransitionTransposeF().structure().row_offsets.data());
  // EnsureTier is idempotent.
  graph->EnsureTier(la::Precision::kFloat32);
  EXPECT_EQ(graph->SizeBytes(),
            before + 2 * graph->num_nodes() * sizeof(float));

  // Both tiers serve correct products off the shared topology.
  CheckGraphsBitwise<double>(*graph, *graph, 41);
  const std::vector<float> xf = RandomVector<float>(graph->num_nodes(), 43);
  std::vector<float> yf;
  graph->TransitionF().SpMvTranspose(xf, yf);
  ASSERT_EQ(yf.size(), graph->num_nodes());
}

TEST(ValueFreeGraphTest, TierAccessorsCheckUnmaterializedTier) {
  auto graph = BuildTestGraph(ValueStorage::kRowConstant,
                              la::Precision::kFloat64, DanglingPolicy::kKeep);
  ASSERT_TRUE(graph.ok());
  EXPECT_DEATH(graph->TransitionF(), "fp32");
}

TEST(ValueFreeGraphTest, RematerializeSharesStructureAndPermutation) {
  auto graph =
      BuildTestGraph(ValueStorage::kRowConstant, la::Precision::kFloat64,
                     DanglingPolicy::kAddSelfLoop,
                     NodeOrdering::kDegreeDescending);
  ASSERT_TRUE(graph.ok());
  ASSERT_NE(graph->permutation(), nullptr);

  Graph sibling = RematerializeWithPrecision(*graph, la::Precision::kFloat32);
  EXPECT_EQ(sibling.value_precision(), la::Precision::kFloat32);
  EXPECT_EQ(sibling.value_storage(), ValueStorage::kRowConstant);
  // The sibling aliases the topology and the permutation — no O(nnz) copy.
  EXPECT_EQ(sibling.TransitionF().structure().col_indices.data(),
            graph->Transition().structure().col_indices.data());
  EXPECT_EQ(sibling.permutation(), graph->permutation());
  // Partition caches are shared too: a partition computed through one graph
  // is visible through the other (same boundary data).
  const auto boundaries = graph->OutColumnPartition(4);
  const auto sibling_boundaries = sibling.OutColumnPartition(4);
  EXPECT_EQ(boundaries.data(), sibling_boundaries.data());

  // The fp32 sibling's weights are the fp64 weights rounded once — spot
  // check through the mode-agnostic oracle.
  for (NodeId u = 0; u < graph->num_nodes(); u += 50) {
    if (graph->OutDegree(u) == 0) continue;
    const uint64_t e = graph->Transition().structure().row_offsets[u];
    EXPECT_EQ(sibling.TransitionF().EdgeWeight(u, e),
              static_cast<float>(graph->Transition().EdgeWeight(u, e)));
  }
}

}  // namespace
}  // namespace tpa
