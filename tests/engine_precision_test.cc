/// Engine-level fp32 serving coverage: the halved-footprint path through
/// QueryEngine / AsyncQueryEngine — fp32 dense results, fp32 cache entries
/// at half the bytes, top-k-only cache entries at O(k) bytes, tier
/// isolation in the cache, the precision-aware kAuto resolution, and the
/// refusal to run fp64-only methods on an fp32 graph.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/async_query_engine.h"
#include "engine/query_engine.h"
#include "engine/result_cache.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "la/precision.h"
#include "method/tpa_method.h"
#include "util/cache_info.h"
#include "util/check.h"

namespace tpa {
namespace {

struct TierPair {
  Graph fp64;
  Graph fp32;
};

TierPair ServingGraphs(uint64_t seed = 7) {
  DcsbmOptions options;
  options.nodes = 500;
  options.edges = 5000;
  options.blocks = 10;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  Graph fp32 = RematerializeWithPrecision(*graph, la::Precision::kFloat32);
  return {std::move(graph).value(), std::move(fp32)};
}

TEST(EnginePrecisionTest, Fp32EngineServesNativeFp32Dense) {
  const TierPair graphs = ServingGraphs();
  QueryEngineOptions options;
  options.num_threads = 2;
  options.batch_block_size = 0;
  auto engine = QueryEngine::Create(graphs.fp32,
                                    std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(engine->precision(), la::Precision::kFloat32);

  QueryResult result = engine->Query(42);
  ASSERT_TRUE(result.status.ok());
  // Dense fp32 serving populates scores_f32 and never materializes the
  // fp64 vector.
  EXPECT_TRUE(result.scores.empty());
  ASSERT_EQ(result.scores_f32.size(), graphs.fp32.num_nodes());

  // Bitwise against the core fp32 path.
  auto tpa = Tpa::Preprocess(graphs.fp32, {});
  ASSERT_TRUE(tpa.ok());
  const std::vector<float> expected = tpa->QueryF(42);
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(result.scores_f32[i], expected[i]) << i;
  }
}

TEST(EnginePrecisionTest, Fp32BatchAndGroupPathsMatchPerSeedBitwise) {
  const TierPair graphs = ServingGraphs(11);
  const std::vector<NodeId> seeds = {5, 123, 5, 499, 0, 321, 77, 9, 250};

  QueryEngineOptions per_seed;
  per_seed.num_threads = 2;
  per_seed.batch_block_size = 0;
  auto baseline = QueryEngine::Create(graphs.fp32,
                                      std::make_unique<TpaMethod>(), per_seed);
  ASSERT_TRUE(baseline.ok());

  QueryEngineOptions grouped;
  grouped.num_threads = 2;
  grouped.batch_block_size = 4;
  auto spmm = QueryEngine::Create(graphs.fp32, std::make_unique<TpaMethod>(),
                                  grouped);
  ASSERT_TRUE(spmm.ok());

  const std::vector<QueryResult> a = baseline->QueryBatch(seeds);
  const std::vector<QueryResult> b = spmm->QueryBatch(seeds);
  ASSERT_EQ(a.size(), seeds.size());
  ASSERT_EQ(b.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(a[i].status.ok());
    ASSERT_TRUE(b[i].status.ok());
    const QueryResult solo = baseline->Query(seeds[i]);
    ASSERT_EQ(a[i].scores_f32.size(), solo.scores_f32.size());
    for (size_t j = 0; j < solo.scores_f32.size(); ++j) {
      ASSERT_EQ(a[i].scores_f32[j], solo.scores_f32[j]) << i << "," << j;
      ASSERT_EQ(b[i].scores_f32[j], solo.scores_f32[j]) << i << "," << j;
    }
  }
}

TEST(EnginePrecisionTest, Fp32TopKMatchesWidenedRanking) {
  const TierPair graphs = ServingGraphs(13);
  QueryEngineOptions options;
  options.num_threads = 1;
  options.top_k = 10;
  auto engine = QueryEngine::Create(graphs.fp32,
                                    std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  QueryResult result = engine->Query(99);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.top.size(), 10u);

  auto tpa = Tpa::Preprocess(graphs.fp32, {});
  ASSERT_TRUE(tpa.ok());
  const std::vector<ScoredNode> expected = TopKScores(tpa->QueryF(99), 10);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.top[i].node, expected[i].node) << i;
    EXPECT_EQ(result.top[i].score, expected[i].score) << i;
  }
}

TEST(EnginePrecisionTest, Fp32CacheEntriesCostHalfTheBytes) {
  const TierPair graphs = ServingGraphs(17);
  const std::vector<NodeId> seeds = {1, 2, 3, 4};

  auto serve = [&](const Graph& graph) {
    QueryEngineOptions options;
    options.num_threads = 1;
    options.cache_capacity = 16;
    auto engine =
        QueryEngine::Create(graph, std::make_unique<TpaMethod>(), options);
    TPA_CHECK(engine.ok());
    engine->QueryBatch(seeds);
    return engine->cache_stats();
  };

  const QueryEngine::CacheStats stats64 = serve(graphs.fp64);
  const QueryEngine::CacheStats stats32 = serve(graphs.fp32);
  ASSERT_EQ(stats64.entries, seeds.size());
  ASSERT_EQ(stats32.entries, seeds.size());
  EXPECT_EQ(stats64.bytes,
            seeds.size() * graphs.fp64.num_nodes() * sizeof(double));
  EXPECT_EQ(stats32.bytes,
            seeds.size() * graphs.fp32.num_nodes() * sizeof(float));
  EXPECT_EQ(stats32.bytes * 2, stats64.bytes);

  // Warm repeats serve from cache in the fp32 shape.
  QueryEngineOptions options;
  options.num_threads = 1;
  options.cache_capacity = 16;
  auto engine = QueryEngine::Create(graphs.fp32,
                                    std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());
  const QueryResult cold = engine->Query(9);
  const QueryResult warm = engine->Query(9);
  ASSERT_TRUE(warm.from_cache);
  ASSERT_EQ(warm.scores_f32.size(), cold.scores_f32.size());
  for (size_t i = 0; i < cold.scores_f32.size(); ++i) {
    ASSERT_EQ(warm.scores_f32[i], cold.scores_f32[i]) << i;
  }
}

TEST(EnginePrecisionTest, TiersNeverServeEachOthersCacheEntries) {
  // The isolation contract at the ResultCache level: a seed cached at one
  // tier is a *miss* for the other tier's compatibility predicate, and the
  // refresh replaces the entry (the byte accounting follows).
  ResultCache cache(/*capacity=*/8);
  cache.Put(1, std::make_shared<const CachedResult>(CachedResult::Dense(
                   std::vector<double>(100, 0.5))));

  auto wants = [](la::Precision precision) {
    return [precision](const CachedResult& entry) {
      return !entry.topk_only && entry.precision == precision;
    };
  };

  // Same tier: hit.  Other tier: miss, even though the seed is present.
  EXPECT_NE(cache.GetMatching(1, wants(la::Precision::kFloat64)), nullptr);
  EXPECT_EQ(cache.GetMatching(1, wants(la::Precision::kFloat32)), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.bytes(), 100 * sizeof(double));

  // The fp32 serve path refreshes the entry; now the fp64 side misses.
  cache.Put(1, std::make_shared<const CachedResult>(CachedResult::Dense(
                   std::vector<float>(100, 0.5f))));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 100 * sizeof(float));
  EXPECT_NE(cache.GetMatching(1, wants(la::Precision::kFloat32)), nullptr);
  EXPECT_EQ(cache.GetMatching(1, wants(la::Precision::kFloat64)), nullptr);
}

TEST(EnginePrecisionTest, TopKOnlyCacheEntriesCostOofK) {
  const TierPair graphs = ServingGraphs(19);
  QueryEngineOptions options;
  options.num_threads = 1;
  options.top_k = 8;
  options.cache_topk_only = true;
  options.cache_capacity = 16;
  auto engine = QueryEngine::Create(graphs.fp64,
                                    std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine.ok());

  const QueryResult cold = engine->Query(42);
  ASSERT_TRUE(cold.status.ok());
  ASSERT_EQ(cold.top.size(), 8u);
  const QueryEngine::CacheStats stats = engine->cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  // O(k), not ~8n: one ScoredNode per retained rank.
  EXPECT_EQ(stats.bytes, 8 * sizeof(ScoredNode));
  EXPECT_LT(stats.bytes, graphs.fp64.num_nodes() * sizeof(double));

  const QueryResult warm = engine->Query(42);
  ASSERT_TRUE(warm.from_cache);
  ASSERT_EQ(warm.top.size(), cold.top.size());
  for (size_t i = 0; i < cold.top.size(); ++i) {
    EXPECT_EQ(warm.top[i].node, cold.top[i].node) << i;
    EXPECT_EQ(warm.top[i].score, cold.top[i].score) << i;
  }
}

TEST(EnginePrecisionTest, DenseRequestBypassesAndRefreshesTopKOnlyEntry) {
  // A dense-requesting engine must not mistake a top-k-only entry for a
  // dense vector: the ResultCache predicate misses and the recompute
  // refreshes the entry to the dense shape.
  ResultCache cache(/*capacity=*/4);
  cache.Put(7, std::make_shared<const CachedResult>(CachedResult::TopKOnly(
                   la::Precision::kFloat64,
                   {{3, 0.5}, {1, 0.25}, {0, 0.125}})));
  EXPECT_EQ(cache.bytes(), 3 * sizeof(ScoredNode));

  auto dense_fp64 = [](const CachedResult& entry) {
    return !entry.topk_only && entry.precision == la::Precision::kFloat64;
  };
  auto topk_fp64 = [](const CachedResult& entry) {
    return entry.precision == la::Precision::kFloat64 &&
           (!entry.topk_only || entry.topk.size() >= 3);
  };

  // A top-k request it covers: hit.  A dense request: miss → refresh.
  EXPECT_NE(cache.GetMatching(7, topk_fp64), nullptr);
  EXPECT_EQ(cache.GetMatching(7, dense_fp64), nullptr);
  cache.Put(7, std::make_shared<const CachedResult>(CachedResult::Dense(
                   std::vector<double>(50, 1.0))));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 50 * sizeof(double));
  ResultCache::Entry refreshed = cache.GetMatching(7, dense_fp64);
  ASSERT_NE(refreshed, nullptr);
  EXPECT_FALSE(refreshed->topk_only);
}

TEST(EnginePrecisionTest, KAutoResolvesFromMaterializedCsrBytes) {
  // The kAuto heuristic keys on the actual (precision-dependent) CSR bytes
  // and sizes the group so one block row fills a 64-byte cache line: 8
  // seeds at fp64, 16 at fp32.  Both tiers of the same graph must resolve
  // exactly per the documented rule against the detected LLC.
  const TierPair graphs = ServingGraphs(23);
  ASSERT_LT(graphs.fp32.SizeBytes(), graphs.fp64.SizeBytes());

  for (const Graph* graph : {&graphs.fp64, &graphs.fp32}) {
    QueryEngineOptions options;
    options.num_threads = 1;
    options.batch_block_size = QueryEngineOptions::kAuto;
    auto engine =
        QueryEngine::Create(*graph, std::make_unique<TpaMethod>(), options);
    ASSERT_TRUE(engine.ok());
    const int line_width =
        graph->value_precision() == la::Precision::kFloat32 ? 16 : 8;
    const int expected =
        graph->SizeBytes() > DetectLastLevelCacheBytes() ? line_width : 0;
    EXPECT_EQ(engine->options().batch_block_size, expected);
  }
}

TEST(EnginePrecisionTest, Fp64OnlyMethodsAreRefusedOnFp32Graphs) {
  const TierPair graphs = ServingGraphs(29);
  // FORA has no fp32 path; Create must refuse up front instead of letting
  // the typed CSR accessors CHECK-fail mid-preprocess.
  auto engine = QueryEngine::CreateFromRegistry(graphs.fp32, "FORA");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);

  // The same method is fine at fp64, and TPA is fine at fp32.
  EXPECT_TRUE(QueryEngine::CreateFromRegistry(graphs.fp64, "FORA").ok());
  EXPECT_TRUE(QueryEngine::CreateFromRegistry(graphs.fp32, "TPA").ok());
}

TEST(EnginePrecisionTest, AsyncServesFp32BitwiseWithBlockingPath) {
  const TierPair graphs = ServingGraphs(31);
  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.batch_block_size = 4;

  auto async = AsyncQueryEngine::Create(
      graphs.fp32, std::make_unique<TpaMethod>(), engine_options);
  ASSERT_TRUE(async.ok());
  auto blocking = QueryEngine::Create(graphs.fp32,
                                      std::make_unique<TpaMethod>(),
                                      engine_options);
  ASSERT_TRUE(blocking.ok());

  std::vector<QueryTicket> tickets;
  const std::vector<NodeId> seeds = {3, 141, 7, 399, 27, 499, 0, 88};
  tickets.reserve(seeds.size());
  for (NodeId seed : seeds) tickets.push_back((*async)->Submit(seed));
  for (size_t i = 0; i < seeds.size(); ++i) {
    const QueryResult& got = tickets[i].Wait();
    ASSERT_TRUE(got.status.ok());
    const QueryResult expected = blocking->Query(seeds[i]);
    ASSERT_EQ(got.scores_f32.size(), expected.scores_f32.size());
    for (size_t j = 0; j < expected.scores_f32.size(); ++j) {
      ASSERT_EQ(got.scores_f32[j], expected.scores_f32[j])
          << seeds[i] << "," << j;
    }
  }
}

TEST(EnginePrecisionTest, DualTierServingSharesOneTopology) {
  // The fp32 graph is a RematerializeWithPrecision sibling: both tiers
  // alias one set of index arrays, so a process serving both precisions
  // holds the topology once.
  const TierPair graphs = ServingGraphs(37);
  ASSERT_EQ(graphs.fp64.Transition().structure().col_indices.data(),
            graphs.fp32.TransitionF().structure().col_indices.data());
  ASSERT_EQ(graphs.fp64.TransitionTranspose().structure().row_offsets.data(),
            graphs.fp32.TransitionTransposeF().structure().row_offsets.data());

  QueryEngineOptions options;
  options.num_threads = 2;
  options.batch_block_size = 0;
  auto engine64 = QueryEngine::Create(graphs.fp64,
                                      std::make_unique<TpaMethod>(), options);
  auto engine32 = QueryEngine::Create(graphs.fp32,
                                      std::make_unique<TpaMethod>(), options);
  ASSERT_TRUE(engine64.ok() && engine32.ok());

  // Each tier serves its own native path off the shared topology, and the
  // fp32 scores track the fp64 ones within fp32 rounding.
  for (NodeId seed : {NodeId{42}, NodeId{0}, NodeId{499}}) {
    const QueryResult r64 = engine64->Query(seed);
    const QueryResult r32 = engine32->Query(seed);
    ASSERT_TRUE(r64.status.ok() && r32.status.ok());
    ASSERT_EQ(r64.scores.size(), graphs.fp64.num_nodes());
    ASSERT_EQ(r32.scores_f32.size(), graphs.fp32.num_nodes());
    for (size_t i = 0; i < r64.scores.size(); ++i) {
      ASSERT_NEAR(static_cast<double>(r32.scores_f32[i]), r64.scores[i], 1e-4)
          << seed << "," << i;
    }
  }
}

/// Rebuilds `graph`'s edge set through GraphBuilder with the given value
/// storage (generators always build explicit; the serving comparison needs
/// a value-free twin of the identical cleaned edge set).
Graph RebuildWithStorage(const Graph& graph, ValueStorage storage) {
  GraphBuilder builder(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) builder.AddEdge(u, v);
  }
  BuildOptions options;
  // The generator's graph is already cleaned; keep it verbatim (its
  // self-loops are the dangling policy's, which kKeep must not re-add).
  options.remove_self_loops = false;
  options.dangling_policy = DanglingPolicy::kKeep;
  options.value_storage = storage;
  auto rebuilt = builder.Build(options);
  TPA_CHECK(rebuilt.ok());
  return std::move(rebuilt).value();
}

TEST(EnginePrecisionTest, ValueFreeGraphServesBitwiseIdenticalResults) {
  DcsbmOptions graph_options;
  graph_options.nodes = 400;
  graph_options.edges = 4000;
  graph_options.blocks = 8;
  graph_options.seed = 41;
  auto generated = GenerateDcsbm(graph_options);
  ASSERT_TRUE(generated.ok());
  const Graph explicit_graph =
      RebuildWithStorage(*generated, ValueStorage::kExplicit);
  const Graph value_free =
      RebuildWithStorage(*generated, ValueStorage::kRowConstant);
  ASSERT_EQ(value_free.value_storage(), ValueStorage::kRowConstant);
  // The value-free twin drops the 2·nnz fp64 values for n column scales —
  // the footprint the kAuto threshold keys on.
  ASSERT_LT(value_free.SizeBytes(), explicit_graph.SizeBytes());

  QueryEngineOptions options;
  options.num_threads = 2;
  for (int batch_block_size : {0, 4}) {
    options.batch_block_size = batch_block_size;
    auto baseline = QueryEngine::Create(
        explicit_graph, std::make_unique<TpaMethod>(), options);
    auto engine = QueryEngine::Create(value_free,
                                      std::make_unique<TpaMethod>(), options);
    ASSERT_TRUE(baseline.ok() && engine.ok());

    const std::vector<NodeId> seeds = {5, 123, 399, 0, 321, 77, 9, 250};
    const std::vector<QueryResult> expected = baseline->QueryBatch(seeds);
    const std::vector<QueryResult> got = engine->QueryBatch(seeds);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t q = 0; q < expected.size(); ++q) {
      ASSERT_TRUE(got[q].status.ok());
      ASSERT_EQ(got[q].scores.size(), expected[q].scores.size());
      for (size_t i = 0; i < expected[q].scores.size(); ++i) {
        ASSERT_EQ(got[q].scores[i], expected[q].scores[i])
            << "block " << batch_block_size << " seed " << seeds[q]
            << " node " << i;
      }
    }
  }
}

}  // namespace
}  // namespace tpa
