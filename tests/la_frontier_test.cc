#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/thread_pool.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "la/csr_matrix.h"
#include "la/dense_block.h"
#include "la/task_runner.h"
#include "util/check.h"
#include "util/random.h"

namespace tpa {
namespace {

Graph TestGraph(uint64_t seed) {
  RmatOptions options;
  options.scale = 9;
  options.edges = 6000;
  options.seed = seed;
  auto graph = GenerateRmat(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

void ExpectBitwiseEq(const std::vector<double>& got,
                     const std::vector<double>& expected,
                     const std::string& label) {
  ASSERT_EQ(got.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << label << " entry " << i;
  }
}

void ExpectBlockBitwiseEq(const la::DenseBlock& got,
                          const la::DenseBlock& expected,
                          const std::string& label) {
  ASSERT_EQ(got.rows(), expected.rows()) << label;
  ASSERT_EQ(got.num_vectors(), expected.num_vectors()) << label;
  for (size_t b = 0; b < expected.num_vectors(); ++b) {
    ExpectBitwiseEq(got.ExtractVector(b), expected.ExtractVector(b),
                    label + " vector " + std::to_string(b));
  }
}

/// Sparse x with `support_size` deterministic nonzero entries; returns the
/// sorted support.
std::vector<uint32_t> FillSparse(std::vector<double>& x, size_t support_size,
                                 uint64_t seed) {
  Rng rng(seed);
  std::fill(x.begin(), x.end(), 0.0);
  std::vector<uint32_t> support;
  while (support.size() < support_size) {
    const auto i = static_cast<uint32_t>(rng.NextUint64() % x.size());
    if (x[i] == 0.0) {
      x[i] = rng.NextDouble() + 0.1;
      support.push_back(i);
    }
  }
  std::sort(support.begin(), support.end());
  return support;
}

class FrontierKernelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FrontierKernelTest, SpMvMatchesDenseBitwise) {
  Graph graph = TestGraph(GetParam());
  const la::CsrMatrix& csr = graph.Transition();
  const uint32_t n = csr.rows();

  for (size_t support_size : {size_t{1}, size_t{5}, size_t{64}}) {
    std::vector<double> x(n);
    const std::vector<uint32_t> frontier =
        FillSparse(x, support_size, GetParam() + support_size);

    std::vector<double> dense;
    csr.SpMvTranspose(x, dense);

    std::vector<double> sparse(n, 0.0);
    std::vector<uint32_t> next_frontier;
    la::FrontierScratch scratch;
    ASSERT_TRUE(csr.SpMvTransposeFrontier(x, frontier, 1.0, sparse,
                                          next_frontier, scratch));
    ExpectBitwiseEq(sparse, dense,
                    "support " + std::to_string(support_size));

    // The emitted frontier is sorted, unique, and a superset of the
    // nonzero destinations.
    ASSERT_TRUE(std::is_sorted(next_frontier.begin(), next_frontier.end()));
    ASSERT_EQ(std::adjacent_find(next_frontier.begin(), next_frontier.end()),
              next_frontier.end());
    for (uint32_t i = 0; i < n; ++i) {
      if (dense[i] != 0.0) {
        ASSERT_TRUE(std::binary_search(next_frontier.begin(),
                                       next_frontier.end(), i))
            << "nonzero destination " << i << " missing from frontier";
      }
    }
  }
}

TEST_P(FrontierKernelTest, FrontierMayListZeroRows) {
  // A frontier is a *superset* of the support: rows with x == 0 contribute
  // nothing, exactly like the dense kernel's zero-source skip.
  Graph graph = TestGraph(GetParam());
  const la::CsrMatrix& csr = graph.Transition();
  const uint32_t n = csr.rows();

  std::vector<double> x(n);
  std::vector<uint32_t> frontier = FillSparse(x, 8, GetParam());
  for (uint32_t pad : {0u, n / 2, n - 1}) frontier.push_back(pad);
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());

  std::vector<double> dense;
  csr.SpMvTranspose(x, dense);
  std::vector<double> sparse(n, 0.0);
  std::vector<uint32_t> next_frontier;
  la::FrontierScratch scratch;
  ASSERT_TRUE(csr.SpMvTransposeFrontier(x, frontier, 1.0, sparse,
                                        next_frontier, scratch));
  ExpectBitwiseEq(sparse, dense, "padded frontier");
}

TEST_P(FrontierKernelTest, DenseFallthroughAboveThreshold) {
  Graph graph = TestGraph(GetParam());
  const la::CsrMatrix& csr = graph.Transition();
  const uint32_t n = csr.rows();

  std::vector<double> x(n);
  const std::vector<uint32_t> frontier = FillSparse(x, 32, GetParam());

  std::vector<double> dense;
  csr.SpMvTranspose(x, dense);

  // Threshold 0 forces the fallthrough regardless of frontier size; the
  // buffer need not be pre-zeroed because the dense kernel zeroes it.
  std::vector<double> fell(n, 123.0);
  std::vector<uint32_t> next_frontier = {7};
  la::FrontierScratch scratch;
  EXPECT_FALSE(csr.SpMvTransposeFrontier(x, frontier, 0.0, fell,
                                         next_frontier, scratch));
  ExpectBitwiseEq(fell, dense, "fallthrough");
  EXPECT_TRUE(next_frontier.empty());
}

TEST_P(FrontierKernelTest, SpMmMatchesDenseBitwiseAcrossWidths) {
  Graph graph = TestGraph(GetParam());
  const la::CsrMatrix& csr = graph.Transition();
  const uint32_t n = csr.rows();
  Rng rng(GetParam());

  // Widths through the specialized range plus one generic (> 16).
  for (size_t width : {size_t{1}, size_t{2}, size_t{3}, size_t{8},
                       size_t{16}, size_t{17}}) {
    la::DenseBlock x(n, width);
    std::vector<uint32_t> frontier;
    for (size_t b = 0; b < width; ++b) {
      // Distinct small supports per vector; the union is the frontier.
      for (int k = 0; k < 4; ++k) {
        const auto i = static_cast<uint32_t>(rng.NextUint64() % n);
        x.At(i, b) = rng.NextDouble() + 0.1;
        frontier.push_back(i);
      }
    }
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());

    la::DenseBlock dense;
    csr.SpMmTranspose(x, dense);

    la::DenseBlock sparse(n, width);
    std::vector<uint32_t> next_frontier;
    la::FrontierScratch scratch;
    ASSERT_TRUE(csr.SpMmTransposeFrontier(x, frontier, 1.0, sparse,
                                          next_frontier, scratch));
    ExpectBlockBitwiseEq(sparse, dense, "width " + std::to_string(width));
    ASSERT_TRUE(std::is_sorted(next_frontier.begin(), next_frontier.end()));

    la::DenseBlock fell;
    std::vector<uint32_t> ignored;
    EXPECT_FALSE(csr.SpMmTransposeFrontier(x, frontier, 0.0, fell, ignored,
                                           scratch));
    ExpectBlockBitwiseEq(fell, dense,
                         "fallthrough width " + std::to_string(width));
  }
}

TEST_P(FrontierKernelTest, RecycledBufferChainMatchesDense) {
  // The CPI usage pattern: propagate a chain of frontier scatters, clearing
  // only the previously-emitted frontier of the recycled buffer between
  // iterations, and compare every interim vector against the dense chain.
  Graph graph = TestGraph(GetParam());
  const la::CsrMatrix& csr = graph.Transition();
  const uint32_t n = csr.rows();

  std::vector<double> x(n, 0.0);
  x[GetParam() % n] = 1.0;
  std::vector<uint32_t> frontier = {static_cast<uint32_t>(GetParam() % n)};
  std::vector<double> next(n, 0.0);
  std::vector<uint32_t> next_frontier;
  la::FrontierScratch scratch;

  std::vector<double> dense_x = x;
  std::vector<double> dense_next;

  for (int iter = 0; iter < 4; ++iter) {
    for (uint32_t j : next_frontier) next[j] = 0.0;
    ASSERT_TRUE(csr.SpMvTransposeFrontier(x, frontier, 1.0, next,
                                          next_frontier, scratch));
    x.swap(next);
    frontier.swap(next_frontier);

    csr.SpMvTranspose(dense_x, dense_next);
    dense_x.swap(dense_next);

    ExpectBitwiseEq(x, dense_x, "iteration " + std::to_string(iter));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontierKernelTest,
                         ::testing::Values(1u, 7u, 42u));

class RangeKernelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeKernelTest, ColumnRangesAreValidPartitions) {
  Graph graph = TestGraph(GetParam());
  const la::CsrMatrix& csr = graph.Transition();
  for (size_t parts : {size_t{1}, size_t{2}, size_t{5}, size_t{32}}) {
    const std::vector<uint32_t> boundaries =
        csr.NnzBalancedColumnRanges(parts);
    ASSERT_EQ(boundaries.size(), parts + 1);
    EXPECT_EQ(boundaries.front(), 0u);
    EXPECT_EQ(boundaries.back(), csr.cols());
    EXPECT_TRUE(std::is_sorted(boundaries.begin(), boundaries.end()));
  }
}

TEST_P(RangeKernelTest, RangesComposeToFullScatterBitwise) {
  Graph graph = TestGraph(GetParam());
  const la::CsrMatrix& csr = graph.Transition();
  const uint32_t n = csr.rows();
  Rng rng(GetParam());

  std::vector<double> x(n);
  for (double& v : x) v = rng.NextDouble();
  std::vector<double> dense;
  csr.SpMvTranspose(x, dense);

  for (size_t parts : {size_t{1}, size_t{3}, size_t{8}}) {
    const std::vector<uint32_t> boundaries =
        csr.NnzBalancedColumnRanges(parts);
    std::vector<double> composed(n, -1.0);  // ranges must overwrite fully
    for (size_t p = 0; p < parts; ++p) {
      csr.SpMvTransposeRange(x, composed, boundaries[p], boundaries[p + 1]);
    }
    ExpectBitwiseEq(composed, dense, "parts " + std::to_string(parts));
  }
}

TEST_P(RangeKernelTest, ParallelScatterMatchesSequentialBitwise) {
  Graph graph = TestGraph(GetParam());
  const la::CsrMatrix& csr = graph.Transition();
  const uint32_t n = csr.rows();
  Rng rng(GetParam());

  std::vector<double> x(n);
  for (double& v : x) v = rng.NextDouble();
  std::vector<double> dense;
  csr.SpMvTranspose(x, dense);

  la::DenseBlock bx(n, 6);
  for (uint32_t r = 0; r < n; ++r) {
    for (size_t b = 0; b < 6; ++b) bx.At(r, b) = rng.NextDouble();
  }
  la::DenseBlock bdense;
  csr.SpMmTranspose(bx, bdense);

  const std::vector<uint32_t> boundaries = csr.NnzBalancedColumnRanges(4);

  la::SerialTaskRunner serial;
  ThreadPool pool(4);
  for (la::TaskRunner* runner :
       {static_cast<la::TaskRunner*>(&serial),
        static_cast<la::TaskRunner*>(&pool)}) {
    std::vector<double> y;
    csr.SpMvTransposeParallel(x, y, boundaries, *runner);
    ExpectBitwiseEq(y, dense, "SpMv parallel");

    la::DenseBlock by;
    csr.SpMmTransposeParallel(bx, by, boundaries, *runner);
    ExpectBlockBitwiseEq(by, bdense, "SpMm parallel");
  }
}

TEST_P(RangeKernelTest, GraphParallelMultiplyMatchesSequential) {
  Graph graph = TestGraph(GetParam());
  const uint32_t n = graph.num_nodes();
  Rng rng(GetParam());

  std::vector<double> x(n);
  for (double& v : x) v = rng.NextDouble();
  std::vector<double> expected;
  graph.MultiplyTranspose(x, expected);

  ThreadPool pool(3);
  std::vector<double> got;
  graph.MultiplyTransposeParallel(x, got, pool);
  ExpectBitwiseEq(got, expected, "graph SpMv parallel");

  la::DenseBlock bx(n, 8);
  for (uint32_t r = 0; r < n; ++r) {
    for (size_t b = 0; b < 8; ++b) bx.At(r, b) = rng.NextDouble();
  }
  la::DenseBlock bexpected;
  graph.MultiplyTransposeBlock(bx, bexpected);
  la::DenseBlock bgot;
  graph.MultiplyTransposeBlockParallel(bx, bgot, pool);
  ExpectBlockBitwiseEq(bgot, bexpected, "graph SpMm parallel");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeKernelTest,
                         ::testing::Values(1u, 7u, 42u));

}  // namespace
}  // namespace tpa
