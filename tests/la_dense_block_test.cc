#include "la/dense_block.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "la/csr_matrix.h"
#include "la/vector_ops.h"
#include "util/check.h"
#include "util/random.h"

namespace tpa {
namespace {

TEST(DenseBlockTest, ShapeAndAccessors) {
  la::DenseBlock block(4, 3);
  EXPECT_EQ(block.rows(), 4u);
  EXPECT_EQ(block.num_vectors(), 3u);
  EXPECT_EQ(block.SizeBytes(), 12 * sizeof(double));
  for (size_t r = 0; r < 4; ++r) {
    for (size_t b = 0; b < 3; ++b) EXPECT_EQ(block.At(r, b), 0.0);
  }
  block.At(2, 1) = 7.5;
  EXPECT_EQ(block.At(2, 1), 7.5);
  // The B entries of one block row are contiguous.
  EXPECT_EQ(block.RowPtr(2)[1], 7.5);
}

TEST(DenseBlockTest, VectorRoundTrip) {
  la::DenseBlock block(3, 2);
  const std::vector<double> v0 = {1.0, 2.0, 3.0};
  const std::vector<double> v1 = {-4.0, 0.0, 5.5};
  block.SetVector(0, v0);
  block.SetVector(1, v1);
  EXPECT_EQ(block.ExtractVector(0), v0);
  EXPECT_EQ(block.ExtractVector(1), v1);
  block.SetZero();
  EXPECT_EQ(block.ExtractVector(1), std::vector<double>(3, 0.0));
}

TEST(DenseBlockTest, SwapExchangesContents) {
  la::DenseBlock a(2, 1);
  la::DenseBlock b(3, 2);
  a.At(0, 0) = 1.0;
  b.At(2, 1) = 2.0;
  a.swap(b);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.At(2, 1), 2.0);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.At(0, 0), 1.0);
}

la::DenseBlock RandomBlock(size_t rows, size_t num_vectors, uint64_t seed) {
  la::DenseBlock block(rows, num_vectors);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t b = 0; b < num_vectors; ++b) {
      block.At(r, b) = rng.NextDouble();
    }
  }
  return block;
}

/// The kernel contract of the batched execution path: vector b of an SpMM
/// result is bitwise-identical to SpMv on vector b alone.
class SpMmPinTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SpMmPinTest, SpMmMatchesIndependentSpMvBitwise) {
  RmatOptions options;
  options.scale = 8;
  options.edges = 3000;
  options.seed = 11;
  auto graph = GenerateRmat(options);
  ASSERT_TRUE(graph.ok());
  const la::CsrMatrix& m = graph->TransitionTranspose();

  const size_t num_vectors = GetParam();
  const la::DenseBlock x = RandomBlock(m.cols(), num_vectors, 5 + num_vectors);
  la::DenseBlock y;
  m.SpMm(x, y);
  ASSERT_EQ(y.rows(), m.rows());
  ASSERT_EQ(y.num_vectors(), num_vectors);

  for (size_t b = 0; b < num_vectors; ++b) {
    std::vector<double> expected;
    m.SpMv(x.ExtractVector(b), expected);
    const std::vector<double> got = y.ExtractVector(b);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      EXPECT_EQ(got[r], expected[r]) << "vector " << b << " row " << r;
    }
  }
}

TEST_P(SpMmPinTest, SpMmTransposeMatchesIndependentSpMvTransposeBitwise) {
  RmatOptions options;
  options.scale = 8;
  options.edges = 3000;
  options.seed = 23;
  auto graph = GenerateRmat(options);
  ASSERT_TRUE(graph.ok());
  const la::CsrMatrix& m = graph->Transition();

  const size_t num_vectors = GetParam();
  la::DenseBlock x = RandomBlock(m.rows(), num_vectors, 9 + num_vectors);
  // Sparsify some block rows entirely and some entries per vector, so both
  // the all-zero row skip and the mixed zero/nonzero case are exercised.
  for (size_t r = 0; r < x.rows(); r += 3) {
    for (size_t b = 0; b < num_vectors; ++b) x.At(r, b) = 0.0;
  }
  for (size_t r = 1; r < x.rows(); r += 5) x.At(r, 0) = 0.0;

  la::DenseBlock y;
  m.SpMmTranspose(x, y);
  ASSERT_EQ(y.rows(), m.cols());
  ASSERT_EQ(y.num_vectors(), num_vectors);

  for (size_t b = 0; b < num_vectors; ++b) {
    std::vector<double> expected;
    m.SpMvTranspose(x.ExtractVector(b), expected);
    const std::vector<double> got = y.ExtractVector(b);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      EXPECT_EQ(got[r], expected[r]) << "vector " << b << " row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, SpMmPinTest,
                         ::testing::Values(1u, 2u, 8u, 17u));

TEST(SpMmTest, SmallMatrixKnownValues) {
  // [ 0  2  0 ]
  // [ 1  0  3 ]
  // [ 0  0  0 ]
  la::CsrMatrix m(3, 3, {0, 1, 3, 3}, {1, 0, 2}, {2.0, 1.0, 3.0});
  la::DenseBlock x(3, 2);
  x.SetVector(0, {1.0, 2.0, 3.0});
  x.SetVector(1, {0.5, 1.0, -1.0});

  la::DenseBlock y;
  m.SpMm(x, y);
  EXPECT_EQ(y.ExtractVector(0), (std::vector<double>{4.0, 10.0, 0.0}));
  EXPECT_EQ(y.ExtractVector(1), (std::vector<double>{2.0, -2.5, 0.0}));

  la::DenseBlock yt;
  m.SpMmTranspose(x, yt);
  EXPECT_EQ(yt.ExtractVector(0), (std::vector<double>{2.0, 2.0, 6.0}));
  EXPECT_EQ(yt.ExtractVector(1), (std::vector<double>{1.0, 1.0, 3.0}));
}

TEST(BlockVectorOpsTest, MatchScalarOpsBitwise) {
  const size_t rows = 200;
  const size_t num_vectors = 5;
  la::DenseBlock x = RandomBlock(rows, num_vectors, 3);
  la::DenseBlock y = RandomBlock(rows, num_vectors, 4);

  std::vector<std::vector<double>> xs(num_vectors), ys(num_vectors);
  for (size_t b = 0; b < num_vectors; ++b) {
    xs[b] = x.ExtractVector(b);
    ys[b] = y.ExtractVector(b);
  }

  la::BlockAxpy(0.75, x, y);
  la::BlockScale(1.25, y);
  Rng rng(6);
  std::vector<double> shared(rows);
  for (double& v : shared) v = rng.NextDouble();
  la::BlockAddVector(-0.5, shared, y);
  const std::vector<double> norms = la::BlockColumnNormsL1(y);

  for (size_t b = 0; b < num_vectors; ++b) {
    la::Axpy(0.75, xs[b], ys[b]);
    la::Scale(1.25, ys[b]);
    la::Axpy(-0.5, shared, ys[b]);
    const std::vector<double> got = y.ExtractVector(b);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(got[r], ys[b][r]) << "vector " << b << " row " << r;
    }
    EXPECT_EQ(norms[b], la::NormL1(ys[b])) << "vector " << b;
  }
}

}  // namespace
}  // namespace tpa
