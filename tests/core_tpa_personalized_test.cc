#include <gtest/gtest.h>

#include "core/cpi.h"
#include "core/tpa.h"
#include "graph/generators.h"
#include "la/vector_ops.h"
#include "util/check.h"

namespace tpa {
namespace {

Graph CommunityGraph() {
  DcsbmOptions options;
  options.nodes = 350;
  options.edges = 3200;
  options.blocks = 7;
  options.intra_fraction = 0.9;
  options.seed = 23;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(TpaPersonalizedTest, SingleSeedMatchesQuery) {
  Graph graph = CommunityGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  auto multi = tpa->QueryPersonalized({42});
  ASSERT_TRUE(multi.ok());
  std::vector<double> single = tpa->Query(42);
  EXPECT_LT(la::L1Distance(*multi, single), 1e-12);
}

TEST(TpaPersonalizedTest, LinearInSeedSet) {
  // RWR is linear in q, and both TPA approximations preserve linearity:
  // TPA({a,b}) == (TPA(a) + TPA(b) + stranger corrections) — concretely,
  // family and neighbor parts average, the stranger part is shared, so
  // TPA({a,b}) = (TPA(a)+TPA(b))/2 + stranger/2·... verify via direct
  // algebra: (Q(a)+Q(b))/2 has one full stranger vector, as does Q({a,b}).
  Graph graph = CommunityGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  auto multi = tpa->QueryPersonalized({10, 200});
  ASSERT_TRUE(multi.ok());

  std::vector<double> expected(graph.num_nodes(), 0.0);
  la::Axpy(0.5, tpa->Query(10), expected);
  la::Axpy(0.5, tpa->Query(200), expected);
  EXPECT_LT(la::L1Distance(*multi, expected), 1e-10);
}

TEST(TpaPersonalizedTest, WithinTheorem2BoundAgainstExactPpr) {
  Graph graph = CommunityGraph();
  TpaOptions options;
  options.family_window = 5;
  options.stranger_start = 10;
  auto tpa = Tpa::Preprocess(graph, options);
  ASSERT_TRUE(tpa.ok());

  const std::vector<NodeId> seeds = {3, 77, 150, 340};
  auto approx = tpa->QueryPersonalized(seeds);
  ASSERT_TRUE(approx.ok());

  CpiOptions exact_options;
  exact_options.tolerance = 1e-12;
  auto exact = Cpi::Run(graph, seeds, exact_options);
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(la::L1Distance(*approx, exact->scores),
            TotalErrorBound(options.restart_probability, 5) + 1e-9);
}

TEST(TpaPersonalizedTest, MassApproximatelyOne) {
  Graph graph = CommunityGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  auto scores = tpa->QueryPersonalized({1, 2, 3});
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(la::NormL1(*scores), 1.0, 1e-6);
}

TEST(TpaPersonalizedTest, ValidatesSeeds) {
  Graph graph = CommunityGraph();
  auto tpa = Tpa::Preprocess(graph, {});
  ASSERT_TRUE(tpa.ok());
  EXPECT_FALSE(tpa->QueryPersonalized({}).ok());
  EXPECT_FALSE(tpa->QueryPersonalized({graph.num_nodes()}).ok());
}

}  // namespace
}  // namespace tpa
