/// Snapshot persistence: save → load → query bitwise-identity across both
/// precision tiers, both value-storage modes (covering all three
/// CsrValueModes), both load modes (mmap views and heap copies), and
/// reordered graphs; warm-started engines (sync and async) serving bitwise
/// the fresh-preprocess results; the corruption matrix (truncation, bad
/// magic/version/endianness, checksum flips) surfacing as Status errors —
/// never crashes; and mmap-view lifetime under ASan.

#include "snapshot/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/async_query_engine.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "method/tpa_method.h"
#include "snapshot/format.h"
#include "util/failpoint.h"
#include "util/mem_stats.h"

namespace tpa {
namespace {

Graph MakeGraph(la::Precision precision, ValueStorage storage,
                NodeOrdering ordering = NodeOrdering::kOriginal) {
  RmatOptions rmat;
  rmat.scale = 8;
  rmat.edges = 4096;
  rmat.seed = 42;
  BuildOptions build;
  build.value_precision = precision;
  build.value_storage = storage;
  build.node_ordering = ordering;
  auto graph = GenerateRmat(rmat, build);
  EXPECT_TRUE(graph.ok()) << graph.status().message();
  return std::move(*graph);
}

Tpa MakeTpa(const Graph& graph) {
  auto tpa = Tpa::Preprocess(graph, TpaOptions{});
  EXPECT_TRUE(tpa.ok()) << tpa.status().message();
  return std::move(*tpa);
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/snapshot_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".tpasnap";
  }
  void TearDown() override {
    DisarmAllFailpoints();
    std::remove(path_.c_str());
  }

  std::vector<uint8_t> ReadFileBytes() const {
    std::ifstream in(path_, std::ios::binary);
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  }
  void WriteFileBytes(const std::vector<uint8_t>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

/// The tentpole contract, across every configuration axis: a query against
/// the loaded state is bitwise-identical to one against the original
/// preprocessed state.
TEST_F(SnapshotTest, RoundTripIsBitwiseAcrossTiersStoragesAndLoadModes) {
  const la::Precision precisions[] = {la::Precision::kFloat64,
                                      la::Precision::kFloat32};
  const ValueStorage storages[] = {ValueStorage::kExplicit,
                                   ValueStorage::kRowConstant};
  const snapshot::LoadMode modes[] = {snapshot::LoadMode::kMap,
                                      snapshot::LoadMode::kCopy};
  for (la::Precision precision : precisions) {
    for (ValueStorage storage : storages) {
      const Graph graph = MakeGraph(precision, storage);
      const Tpa fresh = MakeTpa(graph);
      ASSERT_TRUE(fresh.SaveSnapshot(path_).ok());
      for (snapshot::LoadMode mode : modes) {
        SCOPED_TRACE(std::string(la::PrecisionName(precision)) +
                     (storage == ValueStorage::kExplicit ? "/explicit"
                                                         : "/value-free") +
                     (mode == snapshot::LoadMode::kMap ? "/mmap" : "/copy"));
        snapshot::LoadOptions load;
        load.mode = mode;
        auto loaded = Tpa::LoadSnapshot(path_, load);
        ASSERT_TRUE(loaded.ok()) << loaded.status().message();
        ASSERT_EQ(loaded->graph->num_nodes(), graph.num_nodes());
        ASSERT_EQ(loaded->graph->num_edges(), graph.num_edges());
        EXPECT_EQ(loaded->graph->value_precision(), precision);
        EXPECT_EQ(loaded->graph->value_storage(), storage);
        // The stored preprocessed arrays round-trip bitwise.
        EXPECT_EQ(loaded->tpa->stranger_scores(), fresh.stranger_scores());
        EXPECT_EQ(loaded->tpa->stranger_scores_f32(),
                  fresh.stranger_scores_f32());
        EXPECT_EQ(loaded->tpa->stranger_order(), fresh.stranger_order());
        for (NodeId seed : {NodeId{0}, NodeId{7}, NodeId{200}}) {
          if (precision == la::Precision::kFloat64) {
            EXPECT_EQ(loaded->tpa->Query(seed), fresh.Query(seed));
          } else {
            EXPECT_EQ(loaded->tpa->QueryF(seed), fresh.QueryF(seed));
          }
          const auto fresh_topk = fresh.QueryTopK(seed, 10);
          const auto loaded_topk = loaded->tpa->QueryTopK(seed, 10);
          ASSERT_EQ(loaded_topk.top.size(), fresh_topk.top.size());
          for (size_t i = 0; i < fresh_topk.top.size(); ++i) {
            EXPECT_EQ(loaded_topk.top[i].node, fresh_topk.top[i].node);
            EXPECT_EQ(loaded_topk.top[i].score, fresh_topk.top[i].score);
          }
        }
      }
    }
  }
}

TEST_F(SnapshotTest, RoundTripPreservesPermutation) {
  const Graph graph = MakeGraph(la::Precision::kFloat64,
                                ValueStorage::kExplicit,
                                NodeOrdering::kHubCluster);
  ASSERT_NE(graph.permutation(), nullptr);
  const Tpa fresh = MakeTpa(graph);
  ASSERT_TRUE(fresh.SaveSnapshot(path_).ok());

  auto loaded = Tpa::LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_NE(loaded->graph->permutation(), nullptr);
  EXPECT_EQ(loaded->graph->permutation()->external_of_internal(),
            graph.permutation()->external_of_internal());
  for (NodeId seed : {NodeId{3}, NodeId{150}}) {
    EXPECT_EQ(loaded->tpa->Query(seed), fresh.Query(seed));
  }
}

TEST_F(SnapshotTest, InfoReflectsConfiguration) {
  const Graph graph =
      MakeGraph(la::Precision::kFloat32, ValueStorage::kRowConstant);
  TpaOptions options;
  options.family_window = 4;
  options.stranger_start = 9;
  auto fresh = Tpa::Preprocess(graph, options);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh->SaveSnapshot(path_).ok());

  auto info = snapshot::ReadSnapshotInfo(path_);
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_EQ(info->num_nodes, graph.num_nodes());
  EXPECT_EQ(info->num_edges, graph.num_edges());
  EXPECT_EQ(info->precision, la::Precision::kFloat32);
  EXPECT_EQ(info->value_storage, ValueStorage::kRowConstant);
  EXPECT_FALSE(info->has_fp64);
  EXPECT_TRUE(info->has_fp32);
  EXPECT_FALSE(info->has_permutation);
  EXPECT_EQ(info->options.family_window, 4);
  EXPECT_EQ(info->options.stranger_start, 9);
  EXPECT_EQ(info->section_count, 8u);
}

TEST_F(SnapshotTest, VerifyAcceptsCleanFile) {
  const Graph graph =
      MakeGraph(la::Precision::kFloat64, ValueStorage::kRowConstant);
  ASSERT_TRUE(MakeTpa(graph).SaveSnapshot(path_).ok());
  EXPECT_TRUE(snapshot::VerifySnapshot(path_).ok());
}

/// Every corruption is a Status, never a crash — the load path must treat
/// the file as hostile until verified.
TEST_F(SnapshotTest, CorruptFilesAreRejectedWithClearErrors) {
  const Graph graph =
      MakeGraph(la::Precision::kFloat64, ValueStorage::kExplicit);
  ASSERT_TRUE(MakeTpa(graph).SaveSnapshot(path_).ok());
  const std::vector<uint8_t> clean = ReadFileBytes();
  ASSERT_GT(clean.size(), 256u);

  auto expect_rejected = [&](const std::string& trace,
                             const std::string& needle) {
    SCOPED_TRACE(trace);
    const Status verify = snapshot::VerifySnapshot(path_);
    EXPECT_FALSE(verify.ok());
    if (!needle.empty()) {
      EXPECT_NE(verify.message().find(needle), std::string::npos)
          << verify.message();
    }
    const auto loaded = snapshot::LoadSnapshot(path_);
    EXPECT_FALSE(loaded.ok());
  };

  // Truncated to half: the header's file_bytes no longer matches.
  WriteFileBytes(std::vector<uint8_t>(clean.begin(),
                                      clean.begin() + clean.size() / 2));
  expect_rejected("truncated", "truncated");

  // Truncated below even the header.
  WriteFileBytes(std::vector<uint8_t>(clean.begin(), clean.begin() + 10));
  expect_rejected("tiny", "header");

  std::vector<uint8_t> bytes = clean;
  bytes[0] ^= 0xFF;  // magic
  WriteFileBytes(bytes);
  expect_rejected("bad magic", "magic");

  bytes = clean;
  bytes[8] = 0x01;  // endian tag as an opposite-endian writer would store it
  bytes[9] = 0x02;
  bytes[10] = 0x03;
  bytes[11] = 0x04;
  WriteFileBytes(bytes);
  expect_rejected("wrong endianness", "endianness");

  bytes = clean;
  bytes[12] = 99;  // format_version
  WriteFileBytes(bytes);
  expect_rejected("wrong version", "version");

  bytes = clean;
  bytes[sizeof(snapshot::SnapshotHeader) + 4] ^= 0x01;  // section table
  WriteFileBytes(bytes);
  expect_rejected("table corruption", "section table checksum");

  bytes = clean;
  bytes[bytes.size() - 1] ^= 0x01;  // last payload byte
  WriteFileBytes(bytes);
  expect_rejected("payload corruption", "checksum");

  WriteFileBytes({});
  expect_rejected("empty file", "header");

  WriteFileBytes(std::vector<uint8_t>(4096, 0xAB));
  expect_rejected("garbage", "magic");

  std::remove(path_.c_str());
  EXPECT_FALSE(snapshot::VerifySnapshot(path_).ok());
  EXPECT_FALSE(snapshot::LoadSnapshot(path_).ok());
  EXPECT_FALSE(snapshot::ReadSnapshotInfo(path_).ok());
}

/// The mmap views must keep the mapping alive through arbitrary moves: the
/// Graph and Tpa are moved out of the LoadedSnapshot bundle, the bundle
/// dies, and queries still read the (file-backed) CSR arrays.  ASan turns
/// any lifetime bug here into a hard failure.
TEST_F(SnapshotTest, MappedViewsOutliveTheLoadedSnapshotBundle) {
  const Graph graph =
      MakeGraph(la::Precision::kFloat64, ValueStorage::kExplicit);
  const Tpa fresh = MakeTpa(graph);
  ASSERT_TRUE(fresh.SaveSnapshot(path_).ok());

  std::unique_ptr<Graph> loaded_graph;
  std::unique_ptr<Tpa> loaded_tpa;
  {
    auto loaded = Tpa::LoadSnapshot(path_);
    ASSERT_TRUE(loaded.ok());
    loaded_graph = std::move(loaded->graph);
    loaded_tpa = std::move(loaded->tpa);
  }
  // The snapshot file is deleted from the filesystem; the mapping persists
  // until the last view dies (POSIX keeps unlinked mappings alive).
  std::remove(path_.c_str());
  for (NodeId seed : {NodeId{1}, NodeId{99}}) {
    EXPECT_EQ(loaded_tpa->Query(seed), fresh.Query(seed));
  }
}

/// A kMap load exposes its backing mapping (the handle a bounded-RSS
/// server registers with ResidentSteward); kCopy closes the file before
/// returning, so it exposes nothing.
TEST_F(SnapshotTest, MappedFileHandleTracksTheLoadMode) {
  const Graph graph =
      MakeGraph(la::Precision::kFloat64, ValueStorage::kExplicit);
  ASSERT_TRUE(MakeTpa(graph).SaveSnapshot(path_).ok());

  auto mapped = Tpa::LoadSnapshot(path_);
  ASSERT_TRUE(mapped.ok());
  ASSERT_NE(mapped->mapped_file, nullptr);
  EXPECT_EQ(mapped->mapped_file->size(), mapped->info.file_bytes);

  snapshot::LoadOptions copy;
  copy.mode = snapshot::LoadMode::kCopy;
  auto copied = Tpa::LoadSnapshot(path_, copy);
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied->mapped_file, nullptr);

  // Dropping the handle must not tear down the graph's views: they share
  // ownership of the mapping independently.
  mapped->mapped_file.reset();
  EXPECT_EQ(mapped->tpa->Query(1), copied->tpa->Query(1));
}

/// LoadOptions::steward registers the mapping before the verification
/// sweep; a drop of every resident snapshot page afterwards must refault
/// to identical contents (the serving contract the bounded-RSS path
/// relies on).
TEST_F(SnapshotTest, StewardedLoadSurvivesAFullPageDrop) {
  const Graph graph =
      MakeGraph(la::Precision::kFloat64, ValueStorage::kRowConstant);
  const Tpa fresh = MakeTpa(graph);
  ASSERT_TRUE(fresh.SaveSnapshot(path_).ok());

  ResidentSteward steward({});  // budget 0: registration only, no thread
  snapshot::LoadOptions load;
  load.steward = &steward;
  auto loaded = Tpa::LoadSnapshot(path_, load);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_NE(loaded->mapped_file, nullptr);

  steward.DropAll();
  EXPECT_EQ(loaded->tpa->Query(7), fresh.Query(7));
  steward.DropAll();
  const auto fresh_topk = fresh.QueryTopK(7, 10);
  const auto loaded_topk = loaded->tpa->QueryTopK(7, 10);
  ASSERT_EQ(loaded_topk.top.size(), fresh_topk.top.size());
  for (size_t i = 0; i < fresh_topk.top.size(); ++i) {
    EXPECT_EQ(loaded_topk.top[i].node, fresh_topk.top[i].node);
    EXPECT_EQ(loaded_topk.top[i].score, fresh_topk.top[i].score);
  }
}

/// Warm-started QueryEngine: construction from a loaded snapshot skips the
/// CPI recompute and serves bitwise the fresh engine's results.
TEST_F(SnapshotTest, WarmStartedEngineServesBitwiseIdenticalResults) {
  const Graph graph =
      MakeGraph(la::Precision::kFloat64, ValueStorage::kRowConstant);
  ASSERT_TRUE(MakeTpa(graph).SaveSnapshot(path_).ok());

  QueryEngineOptions options;
  options.num_threads = 2;
  auto fresh_engine = QueryEngine::Create(
      graph, std::make_unique<TpaMethod>(TpaOptions{}), options);
  ASSERT_TRUE(fresh_engine.ok());

  auto loaded = Tpa::LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok());
  auto warm_engine = QueryEngine::Create(
      *loaded->graph, std::make_unique<TpaMethod>(std::move(*loaded->tpa)),
      options);
  ASSERT_TRUE(warm_engine.ok()) << warm_engine.status().message();

  const std::vector<NodeId> seeds = {0, 3, 77, 191, 255};
  std::vector<QueryResult> fresh_results = fresh_engine->QueryBatch(seeds);
  std::vector<QueryResult> warm_results = warm_engine->QueryBatch(seeds);
  for (size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(fresh_results[i].status.ok());
    ASSERT_TRUE(warm_results[i].status.ok());
    EXPECT_EQ(warm_results[i].scores, fresh_results[i].scores);
  }
}

TEST_F(SnapshotTest, WarmStartedAsyncEngineServesBitwiseIdenticalResults) {
  const Graph graph =
      MakeGraph(la::Precision::kFloat32, ValueStorage::kExplicit);
  ASSERT_TRUE(MakeTpa(graph).SaveSnapshot(path_).ok());

  QueryEngineOptions options;
  options.num_threads = 2;
  auto fresh_engine = QueryEngine::Create(
      graph, std::make_unique<TpaMethod>(TpaOptions{}), options);
  ASSERT_TRUE(fresh_engine.ok());

  auto loaded = Tpa::LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok());
  auto async_engine = AsyncQueryEngine::Create(
      *loaded->graph, std::make_unique<TpaMethod>(std::move(*loaded->tpa)),
      options);
  ASSERT_TRUE(async_engine.ok()) << async_engine.status().message();

  const std::vector<NodeId> seeds = {2, 50, 130};
  std::vector<QueryTicket> tickets;
  for (NodeId seed : seeds) tickets.push_back((*async_engine)->Submit(seed));
  for (size_t i = 0; i < seeds.size(); ++i) {
    const QueryResult& warm = tickets[i].Wait();
    ASSERT_TRUE(warm.status.ok()) << warm.status.message();
    QueryResult fresh = fresh_engine->Query(seeds[i]);
    ASSERT_TRUE(fresh.status.ok());
    EXPECT_EQ(warm.scores_f32, fresh.scores_f32);
  }
}

/// A preloaded TpaMethod is graph-specific: binding it to a different graph
/// must fail loudly instead of serving stale scores.
TEST_F(SnapshotTest, PreloadedMethodRejectsADifferentGraph) {
  const Graph graph =
      MakeGraph(la::Precision::kFloat64, ValueStorage::kExplicit);
  ASSERT_TRUE(MakeTpa(graph).SaveSnapshot(path_).ok());
  auto loaded = Tpa::LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok());

  const Graph other =
      MakeGraph(la::Precision::kFloat64, ValueStorage::kExplicit);
  auto engine = QueryEngine::Create(
      other, std::make_unique<TpaMethod>(std::move(*loaded->tpa)));
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotTest, LoadFailpointInjectsError) {
#if !defined(TPA_FAILPOINTS_ENABLED)
  GTEST_SKIP() << "requires a TPA_FAILPOINTS=ON build";
#else
  const Graph graph =
      MakeGraph(la::Precision::kFloat64, ValueStorage::kExplicit);
  ASSERT_TRUE(MakeTpa(graph).SaveSnapshot(path_).ok());

  ArmFailpoint("snapshot.load",
               FailpointAction::Error(InternalError("injected load fault")));
  auto loaded = snapshot::LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("injected load fault"),
            std::string::npos);
  DisarmFailpoint("snapshot.load");
  EXPECT_TRUE(snapshot::LoadSnapshot(path_).ok());
#endif
}

}  // namespace
}  // namespace tpa
