#include "graph/builder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "la/vector_ops.h"

namespace tpa {
namespace {

TEST(GraphBuilderTest, BuildsSimpleChain) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  BuildOptions options;
  options.dangling_policy = DanglingPolicy::kKeep;
  auto graph = builder.Build(options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 3u);
  EXPECT_EQ(graph->num_edges(), 2u);
  EXPECT_EQ(graph->OutDegree(0), 1u);
  EXPECT_EQ(graph->OutNeighbors(0)[0], 1u);
  EXPECT_EQ(graph->InDegree(2), 1u);
  EXPECT_EQ(graph->InNeighbors(2)[0], 1u);
  EXPECT_EQ(graph->CountDangling(), 1u);  // node 2
}

TEST(GraphBuilderTest, DeduplicatesEdges) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  // 1 deduped edge + 1 self-loop for dangling node 1.
  EXPECT_EQ(graph->OutDegree(0), 1u);
}

TEST(GraphBuilderTest, RemovesSelfLoopsFromInput) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  BuildOptions options;
  options.dangling_policy = DanglingPolicy::kKeep;
  auto graph = builder.Build(options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 1u);
}

TEST(GraphBuilderTest, SelfLoopPolicyFixesDangling) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  auto graph = builder.Build();  // default: kAddSelfLoop
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->CountDangling(), 0u);
  EXPECT_EQ(graph->OutNeighbors(1)[0], 1u);
  EXPECT_EQ(graph->OutNeighbors(2)[0], 2u);
}

TEST(GraphBuilderTest, NeighborsSortedById) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 3);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto neighbors = graph->OutNeighbors(0);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0], 1u);
  EXPECT_EQ(neighbors[1], 3u);
  EXPECT_EQ(neighbors[2], 4u);
}

TEST(GraphBuilderTest, EmptyGraphRejected) {
  GraphBuilder builder(0);
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderDeathTest, OutOfRangeEdgeDies) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.AddEdge(0, 2), "CHECK");
}

// The CSR representability validators at their exact uint32/uint64
// boundaries: the largest legal value passes, one past it is a clean
// InvalidArgument (never a silent truncation).
TEST(GraphBuilderTest, ValidateNodeCountBoundaries) {
  EXPECT_EQ(ValidateNodeCount(0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(ValidateNodeCount(1).ok());
  EXPECT_TRUE(ValidateNodeCount(uint64_t{0xFFFFFFFF}).ok());
  EXPECT_EQ(ValidateNodeCount(uint64_t{0x100000000}).code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, ValidateRowDegreeBoundaries) {
  EXPECT_TRUE(ValidateRowDegree(7, 0).ok());
  EXPECT_TRUE(ValidateRowDegree(7, uint64_t{0xFFFFFFFF}).ok());
  const Status status = ValidateRowDegree(7, uint64_t{0x100000000});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The message names the offending node so the failure is actionable.
  EXPECT_NE(status.message().find("7"), std::string::npos);
}

TEST(GraphBuilderTest, ValidateEdgeCountBoundaries) {
  EXPECT_TRUE(ValidateEdgeCount(4, 0).ok());
  // The limit leaves room for one dangling self-loop per node in uint64
  // offset arithmetic.
  const uint64_t nodes = 1000;
  EXPECT_TRUE(ValidateEdgeCount(nodes, UINT64_MAX - nodes).ok());
  EXPECT_EQ(ValidateEdgeCount(nodes, UINT64_MAX - nodes + 1).code(),
            StatusCode::kInvalidArgument);
  // An invalid node count fails the edge validation too.
  EXPECT_EQ(ValidateEdgeCount(uint64_t{0x100000000}, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphTest, MultiplyTransposeIsColumnStochastic) {
  // With self-loop dangling policy, Ã^T preserves the L1 norm of
  // non-negative vectors — the property the paper's lemmas rely on.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());

  std::vector<double> x = {0.25, 0.25, 0.25, 0.25};
  std::vector<double> y;
  graph->MultiplyTranspose(x, y);
  EXPECT_NEAR(la::NormL1(y), 1.0, 1e-12);
}

TEST(GraphTest, PushAndPullMatvecsAgree) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 0);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());

  std::vector<double> x = {0.1, 0.2, 0.3, 0.1, 0.2, 0.1};
  std::vector<double> push, pull;
  graph->MultiplyTranspose(x, push);
  graph->MultiplyTransposePull(x, pull);
  ASSERT_EQ(push.size(), pull.size());
  for (size_t i = 0; i < push.size(); ++i) {
    EXPECT_NEAR(push[i], pull[i], 1e-14);
  }
}

TEST(GraphTest, MultiplyTransposeExactValues) {
  // 0 → {1, 2}: x[0] splits evenly.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  BuildOptions options;
  options.dangling_policy = DanglingPolicy::kKeep;
  auto graph = builder.Build(options);
  ASSERT_TRUE(graph.ok());
  std::vector<double> y;
  graph->MultiplyTranspose({1.0, 0.0, 0.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
  EXPECT_DOUBLE_EQ(y[2], 0.5);
}

TEST(GraphTest, SizeBytesScalesWithEdges) {
  GraphBuilder small_builder(10), large_builder(10);
  small_builder.AddEdge(0, 1);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      if (u != v) large_builder.AddEdge(u, v);
    }
  }
  auto small = small_builder.Build();
  auto large = large_builder.Build();
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->SizeBytes(), small->SizeBytes());
}

}  // namespace
}  // namespace tpa
