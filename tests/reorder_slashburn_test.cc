#include "reorder/slashburn.h"

#include <gtest/gtest.h>
#include "util/check.h"

#include <set>

#include "graph/builder.h"
#include "graph/generators.h"

namespace tpa {
namespace {

/// Star graph: node 0 is a hub connected to everything else.
Graph StarGraph(NodeId leaves) {
  GraphBuilder builder(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) {
    builder.AddEdge(0, v);
    builder.AddEdge(v, 0);
  }
  auto graph = builder.Build();
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(SlashBurnTest, PermutationIsBijective) {
  Graph graph = StarGraph(50);
  auto ordering = SlashBurn(graph, {});
  ASSERT_TRUE(ordering.ok());
  std::set<NodeId> seen(ordering->old_of_new.begin(),
                        ordering->old_of_new.end());
  EXPECT_EQ(seen.size(), graph.num_nodes());
  for (NodeId p = 0; p < graph.num_nodes(); ++p) {
    EXPECT_EQ(ordering->new_of_old[ordering->old_of_new[p]], p);
  }
}

TEST(SlashBurnTest, StarHubIsIdentified) {
  Graph graph = StarGraph(100);
  SlashBurnOptions options;
  options.max_spoke_size = 10;
  auto ordering = SlashBurn(graph, options);
  ASSERT_TRUE(ordering.ok());
  // Node 0 must land in the hub part (positions >= num_spokes).
  EXPECT_GE(ordering->new_of_old[0], ordering->num_spokes);
  // Almost everything else is a spoke.
  EXPECT_GE(ordering->num_spokes, 90u);
}

TEST(SlashBurnTest, BlocksPartitionSpokeRange) {
  Graph graph = StarGraph(64);
  SlashBurnOptions options;
  options.max_spoke_size = 8;
  auto ordering = SlashBurn(graph, options);
  ASSERT_TRUE(ordering.ok());
  NodeId covered = 0;
  for (const auto& [begin, end] : ordering->blocks) {
    EXPECT_EQ(begin, covered);  // contiguous, in order
    EXPECT_GT(end, begin);
    covered = end;
  }
  EXPECT_EQ(covered, ordering->num_spokes);
}

TEST(SlashBurnTest, NoEdgesBetweenDifferentSpokeBlocks) {
  // The property BEAR/BePI rely on: H11 block-diagonality.
  DcsbmOptions generator;
  generator.nodes = 800;
  generator.edges = 5000;
  generator.blocks = 8;
  generator.zipf_theta = 1.0;
  generator.seed = 51;
  auto graph = GenerateDcsbm(generator);
  ASSERT_TRUE(graph.ok());

  SlashBurnOptions options;
  options.max_spoke_size = 64;
  auto ordering = SlashBurn(*graph, options);
  ASSERT_TRUE(ordering.ok());

  // Map node -> block id (hubs get block -1).
  std::vector<int> block_of(graph->num_nodes(), -1);
  for (size_t b = 0; b < ordering->blocks.size(); ++b) {
    for (NodeId p = ordering->blocks[b].first; p < ordering->blocks[b].second;
         ++p) {
      block_of[ordering->old_of_new[p]] = static_cast<int>(b);
    }
  }
  for (NodeId u = 0; u < graph->num_nodes(); ++u) {
    if (block_of[u] < 0) continue;
    for (NodeId v : graph->OutNeighbors(u)) {
      if (block_of[v] < 0 || u == v) continue;
      EXPECT_EQ(block_of[u], block_of[v])
          << "edge " << u << "→" << v << " crosses spoke blocks";
    }
  }
}

TEST(SlashBurnTest, BlockSizesRespectCapWhenShatteringSucceeds) {
  Graph graph = StarGraph(200);
  SlashBurnOptions options;
  options.max_spoke_size = 16;
  auto ordering = SlashBurn(graph, options);
  ASSERT_TRUE(ordering.ok());
  for (const auto& [begin, end] : ordering->blocks) {
    EXPECT_LE(end - begin, options.max_spoke_size);
  }
}

TEST(SlashBurnTest, HubBudgetDumpsUnshatteredCore) {
  // A dense ER graph does not shatter; the cap must move the leftover core
  // into the hub part rather than looping forever.
  ErdosRenyiOptions generator;
  generator.nodes = 300;
  generator.edges = 6000;  // avg degree 20: no shattering
  generator.seed = 53;
  auto graph = GenerateErdosRenyi(generator);
  ASSERT_TRUE(graph.ok());

  SlashBurnOptions options;
  options.max_spoke_size = 8;
  options.max_hub_fraction = 0.10;
  auto ordering = SlashBurn(*graph, options);
  ASSERT_TRUE(ordering.ok());
  // Most of the graph ends up in the hub part.
  EXPECT_GT(ordering->num_hubs(), graph->num_nodes() / 2);
}

TEST(SlashBurnTest, SmallGraphBecomesSingleSpoke) {
  Graph graph = StarGraph(5);
  SlashBurnOptions options;
  options.max_spoke_size = 100;  // everything fits in one block
  auto ordering = SlashBurn(graph, options);
  ASSERT_TRUE(ordering.ok());
  EXPECT_EQ(ordering->num_spokes, graph.num_nodes());
  EXPECT_EQ(ordering->blocks.size(), 1u);
}

TEST(SlashBurnTest, ValidatesOptions) {
  Graph graph = StarGraph(4);
  SlashBurnOptions bad;
  bad.hub_fraction_per_round = 0.0;
  EXPECT_FALSE(SlashBurn(graph, bad).ok());
  bad = {};
  bad.max_spoke_size = 0;
  EXPECT_FALSE(SlashBurn(graph, bad).ok());
  bad = {};
  bad.max_hub_fraction = 0.0;
  EXPECT_FALSE(SlashBurn(graph, bad).ok());
}

}  // namespace
}  // namespace tpa
