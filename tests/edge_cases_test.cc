/// Degenerate-input coverage: tiny, disconnected, and pathological graphs
/// pushed through the full stack (CPI, TPA, push, block elimination).

#include <gtest/gtest.h>

#include "core/cpi.h"
#include "core/tpa.h"
#include "graph/builder.h"
#include "la/vector_ops.h"
#include "method/bepi.h"
#include "method/push.h"

namespace tpa {
namespace {

StatusOr<Graph> SingleNodeGraph() {
  GraphBuilder builder(1);
  return builder.Build();  // self-loop policy covers the dangling node
}

TEST(EdgeCasesTest, SingleNodeCpi) {
  auto graph = SingleNodeGraph();
  ASSERT_TRUE(graph.ok());
  auto exact = Cpi::ExactRwr(*graph, 0, {});
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR((*exact)[0], 1.0, 1e-7);
}

TEST(EdgeCasesTest, SingleNodeTpa) {
  auto graph = SingleNodeGraph();
  ASSERT_TRUE(graph.ok());
  TpaOptions options;
  options.family_window = 2;
  options.stranger_start = 4;
  auto tpa = Tpa::Preprocess(*graph, options);
  ASSERT_TRUE(tpa.ok());
  auto scores = tpa->Query(0);
  EXPECT_NEAR(scores[0], 1.0, 1e-6);
}

TEST(EdgeCasesTest, TwoNodeCycleHasClosedForm) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto exact = Cpi::ExactRwr(*graph, 0, {});
  ASSERT_TRUE(exact.ok());
  // r0 = c/(1-(1-c)²), r1 = (1-c)·r0.
  const double c = 0.15;
  const double r0 = c / (1.0 - (1.0 - c) * (1.0 - c));
  EXPECT_NEAR((*exact)[0], r0, 1e-8);
  EXPECT_NEAR((*exact)[1], (1.0 - c) * r0, 1e-8);
}

TEST(EdgeCasesTest, DisconnectedComponentsGetNoMass) {
  // Two disjoint triangles; a walk from component A never reaches B.
  GraphBuilder builder(6);
  for (NodeId base : {NodeId{0}, NodeId{3}}) {
    builder.AddEdge(base, base + 1);
    builder.AddEdge(base + 1, base + 2);
    builder.AddEdge(base + 2, base);
  }
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto exact = Cpi::ExactRwr(*graph, 0, {});
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR((*exact)[3] + (*exact)[4] + (*exact)[5], 0.0, 1e-12);
  EXPECT_NEAR(la::NormL1(*exact), 1.0, 1e-7);
}

TEST(EdgeCasesTest, DisconnectedGraphThroughBepi) {
  GraphBuilder builder(8);
  for (NodeId base : {NodeId{0}, NodeId{4}}) {
    for (NodeId i = 0; i < 4; ++i) {
      builder.AddEdge(base + i, base + (i + 1) % 4);
    }
  }
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  Bepi bepi;
  MemoryBudget budget;
  ASSERT_TRUE(bepi.Preprocess(*graph, budget).ok());
  auto scores = bepi.Query(5);
  ASSERT_TRUE(scores.ok());
  auto exact = Cpi::ExactRwr(*graph, 5, {});
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(la::L1Distance(*scores, *exact), 1e-6);
}

TEST(EdgeCasesTest, DanglingHeavyGraphLosesMassGracefully) {
  // Star with kKeep policy: all leaves dangle; CPI mass decays instead of
  // summing to 1 and nothing crashes.
  GraphBuilder builder(5);
  for (NodeId v = 1; v < 5; ++v) builder.AddEdge(0, v);
  BuildOptions options;
  options.dangling_policy = DanglingPolicy::kKeep;
  auto graph = builder.Build(options);
  ASSERT_TRUE(graph.ok());
  auto exact = Cpi::ExactRwr(*graph, 0, {});
  ASSERT_TRUE(exact.ok());
  const double total = la::NormL1(*exact);
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total, 1.0);  // leaked via dangling leaves
}

TEST(EdgeCasesTest, PushOnSeedWithOnlySelfLoop) {
  GraphBuilder builder(3);
  builder.AddEdge(1, 2);  // node 0 gets a policy self-loop
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto push = ForwardPush(*graph, 0, 0.15, 1e-6);
  ASSERT_TRUE(push.ok());
  // All mass stays at the isolated-but-self-looped seed.
  EXPECT_NEAR(push->reserve[0] + push->residual[0], 1.0, 1e-9);
}

TEST(EdgeCasesTest, TpaWindowLargerThanConvergenceHorizon) {
  // S beyond the ε-convergence point: family covers everything, the
  // approximation terms contribute ~nothing, result is near exact.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  TpaOptions options;
  options.family_window = 200;   // >> log_{1-c}(ε/c) ≈ 116
  options.stranger_start = 300;
  auto tpa = Tpa::Preprocess(*graph, options);
  ASSERT_TRUE(tpa.ok());
  auto exact = Cpi::ExactRwr(*graph, 0, {});
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(la::L1Distance(tpa->Query(0), *exact), 1e-6);
}

}  // namespace
}  // namespace tpa
