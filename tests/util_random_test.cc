#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace tpa {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  for (int count : counts) {
    // Expected 10000; allow generous 10% tolerance.
    EXPECT_NEAR(count, kDraws / kBound, kDraws / kBound * 0.1);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(17);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double variance = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 a(42), b(42);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), a.Next());
}

TEST(AliasSamplerTest, MatchesWeightDistribution) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  Rng rng(29);
  constexpr int kDraws = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  const double total = 10.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = kDraws * weights[i] / total;
    EXPECT_NEAR(counts[i], expected, expected * 0.05) << "index " << i;
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  std::vector<double> weights = {0.0, 1.0, 0.0, 1.0};
  AliasSampler sampler(weights);
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = sampler.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleElement) {
  AliasSampler sampler(std::vector<double>{5.0});
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

}  // namespace
}  // namespace tpa
