#include "engine/async_query_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/tpa.h"
#include "graph/generators.h"
#include "la/vector_ops.h"
#include "method/registry.h"
#include "method/rwr_method.h"
#include "method/tpa_method.h"
#include "util/check.h"

namespace tpa {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr milliseconds kWaitBudget{30000};

Graph ServingGraph(uint64_t seed = 77) {
  DcsbmOptions options;
  options.nodes = 500;
  options.edges = 5000;
  options.blocks = 10;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

/// Test method whose Query blocks until the test opens a shared gate —
/// makes queue occupancy, cancellation windows, and shutdown drains
/// deterministic instead of racing against real service times.
class GateMethod final : public RwrMethod {
 public:
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;

    void Open() {
      {
        std::lock_guard<std::mutex> lock(mu);
        open = true;
      }
      cv.notify_all();
    }
    void Await() {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return open; });
    }
  };

  explicit GateMethod(std::shared_ptr<Gate> gate) : gate_(std::move(gate)) {}

  std::string_view name() const override { return "Gate"; }

  Status Preprocess(const Graph& graph, MemoryBudget&) override {
    num_nodes_ = graph.num_nodes();
    return OkStatus();
  }

  StatusOr<std::vector<double>> Query(NodeId seed,
                                      QueryContext* context = nullptr)
      override {
    (void)context;
    gate_->Await();
    std::vector<double> scores(num_nodes_, 0.0);
    scores[seed] = 1.0;
    return scores;
  }

  size_t PreprocessedBytes() const override { return 0; }
  bool SupportsConcurrentQuery() const override { return true; }

 private:
  std::shared_ptr<Gate> gate_;
  uint32_t num_nodes_ = 0;
};

/// Polls until `ticket` has left the queue (running or done).
void AwaitDispatched(const QueryTicket& ticket) {
  while (ticket.state() == QueryTicket::State::kQueued) {
    std::this_thread::sleep_for(milliseconds(1));
  }
}

TEST(AsyncQueryEngineTest, MultiClientSubmitWaitMatchesSequentialBitwise) {
  Graph graph = ServingGraph();
  MethodConfig config;
  config.tolerance = 1e-7;

  for (std::string_view name :
       {"TPA", "BEAR-APPROX", "NB-LIN", "BRPPR", "FORA", "HubPPR", "BePI",
        "PowerIteration"}) {
    auto probe = CreateMethod(name, config);
    ASSERT_TRUE(probe.ok()) << name;
    if (!(*probe)->SupportsConcurrentQuery()) continue;  // RNG-stateful

    QueryEngineOptions engine_options;
    engine_options.num_threads = 4;
    engine_options.batch_block_size = 4;
    auto async = AsyncQueryEngine::CreateFromRegistry(graph, name, config,
                                                      engine_options);
    ASSERT_TRUE(async.ok()) << async.status();
    auto sequential =
        QueryEngine::CreateFromRegistry(graph, name, config, engine_options);
    ASSERT_TRUE(sequential.ok()) << sequential.status();

    // Three clients, interleaved seed sets, all submitting concurrently.
    constexpr int kClients = 3;
    constexpr int kPerClient = 20;
    std::vector<std::vector<QueryTicket>> tickets(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kPerClient; ++i) {
          const NodeId seed = static_cast<NodeId>(
              (c * kPerClient + i * 37) % graph.num_nodes());
          tickets[c].push_back((*async)->Submit(seed));
        }
      });
    }
    for (std::thread& client : clients) client.join();

    for (int c = 0; c < kClients; ++c) {
      for (int i = 0; i < kPerClient; ++i) {
        const QueryResult& result = tickets[c][i].Wait();
        ASSERT_TRUE(result.status.ok()) << name << ": " << result.status;
        const QueryResult expected = sequential->Query(result.seed);
        ASSERT_TRUE(expected.status.ok());
        ASSERT_EQ(result.scores.size(), expected.scores.size()) << name;
        for (size_t j = 0; j < expected.scores.size(); ++j) {
          ASSERT_EQ(result.scores[j], expected.scores[j])
              << name << " seed " << result.seed << " node " << j;
        }
      }
    }
    const auto stats = (*async)->stats();
    EXPECT_EQ(stats.submitted, uint64_t{kClients * kPerClient});
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.rejected, 0u);
  }
}

TEST(AsyncQueryEngineTest, AsyncMatchesBlockingQueryBatchBitwise) {
  Graph graph = ServingGraph();
  std::vector<NodeId> seeds;
  for (int i = 0; i < 48; ++i) {
    seeds.push_back(static_cast<NodeId>((i * 41) % graph.num_nodes()));
  }

  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.batch_block_size = 8;
  auto blocking = QueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                      engine_options);
  ASSERT_TRUE(blocking.ok());
  const std::vector<QueryResult> expected = blocking->QueryBatch(seeds);

  auto async = AsyncQueryEngine::Create(
      graph, std::make_unique<TpaMethod>(), engine_options);
  ASSERT_TRUE(async.ok());
  std::vector<QueryTicket> tickets;
  for (NodeId seed : seeds) tickets.push_back((*async)->Submit(seed));
  for (size_t i = 0; i < seeds.size(); ++i) {
    const QueryResult& result = tickets[i].Wait();
    ASSERT_TRUE(result.status.ok()) << result.status;
    EXPECT_EQ(result.seed, seeds[i]);
    ASSERT_EQ(result.scores.size(), expected[i].scores.size());
    for (size_t j = 0; j < expected[i].scores.size(); ++j) {
      ASSERT_EQ(result.scores[j], expected[i].scores[j])
          << "seed " << seeds[i] << " node " << j;
    }
  }

  // The burst outpaces service on the shared engine, so at least some
  // dispatches must have coalesced several tickets into one group job.
  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.completed, seeds.size());
  EXPECT_EQ(stats.seeds_dispatched, seeds.size());
  EXPECT_LT(stats.groups_dispatched, stats.seeds_dispatched);
}

TEST(AsyncQueryEngineTest, DeadlineExpiryIsDistinctAndDoesNotCorruptLater) {
  Graph graph = ServingGraph();
  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  auto async = AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        engine_options);
  ASSERT_TRUE(async.ok());

  // Already-expired deadline: completes with the distinct status, never runs.
  SubmitOptions expired;
  expired.deadline = steady_clock::now() - milliseconds(5);
  QueryTicket dead = (*async)->Submit(7, expired);
  ASSERT_TRUE(dead.WaitFor(kWaitBudget));
  EXPECT_EQ(dead.Wait().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(dead.Wait().scores.empty());

  // Later queries on the same engine are unaffected and exact.
  auto reference = QueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                       engine_options);
  ASSERT_TRUE(reference.ok());
  QueryTicket alive = (*async)->Submit(7);
  const QueryResult& result = alive.Wait();
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.scores, reference->Query(7).scores);

  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(AsyncQueryEngineTest, DeadlinePassingWhileQueuedExpires) {
  Graph graph = ServingGraph();
  auto gate = std::make_shared<GateMethod::Gate>();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  AsyncQueryEngineOptions async_options;
  async_options.max_inflight_jobs = 1;
  auto async = AsyncQueryEngine::Create(
      graph, std::make_unique<GateMethod>(gate), engine_options,
      async_options);
  ASSERT_TRUE(async.ok());

  QueryTicket running = (*async)->Submit(1);  // occupies the only job slot
  AwaitDispatched(running);

  SubmitOptions options;
  options.deadline = steady_clock::now() + milliseconds(10);
  QueryTicket queued = (*async)->Submit(2, options);
  std::this_thread::sleep_for(milliseconds(50));  // deadline passes in queue
  gate->Open();

  EXPECT_EQ(queued.Wait().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(running.Wait().status.ok());
}

TEST(AsyncQueryEngineTest, CancelQueuedTicketBeforeItStarts) {
  Graph graph = ServingGraph();
  auto gate = std::make_shared<GateMethod::Gate>();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  AsyncQueryEngineOptions async_options;
  async_options.max_inflight_jobs = 1;
  auto async = AsyncQueryEngine::Create(
      graph, std::make_unique<GateMethod>(gate), engine_options,
      async_options);
  ASSERT_TRUE(async.ok());

  QueryTicket running = (*async)->Submit(1);
  AwaitDispatched(running);

  std::atomic<int> callbacks{0};
  SubmitOptions options;
  options.on_complete = [&](const QueryResult& result) {
    EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
    callbacks.fetch_add(1);
  };
  QueryTicket queued = (*async)->Submit(2, options);
  EXPECT_EQ(queued.state(), QueryTicket::State::kQueued);

  EXPECT_TRUE(queued.Cancel());
  EXPECT_TRUE(queued.done());
  EXPECT_EQ(queued.Wait().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(callbacks.load(), 1);
  EXPECT_FALSE(queued.Cancel());  // already done

  gate->Open();
  const QueryResult& served = running.Wait();
  ASSERT_TRUE(served.status.ok());
  EXPECT_EQ(served.scores[1], 1.0);
  EXPECT_FALSE(running.Cancel());  // serving already finished

  // Cancellation is counted by Cancel itself (the ticket may never reach
  // the scheduler at all now that Cancel unlinks it from the queue).
  QueryTicket last = (*async)->Submit(3);
  last.Wait();
  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(AsyncQueryEngineTest, CancelReleasesQueueSlotImmediately) {
  // Regression for the PR-4 limitation "cancelled tickets free their queue
  // slot only when the scheduler reaches them": with the one job slot held
  // behind a closed gate the scheduler can make no progress, so the only
  // way the blocked kBlock submitter below can ever get in is Cancel
  // releasing the queued ticket's slot directly.
  Graph graph = ServingGraph();
  auto gate = std::make_shared<GateMethod::Gate>();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  AsyncQueryEngineOptions async_options;
  async_options.queue_capacity = 1;
  async_options.max_inflight_jobs = 1;
  async_options.queue_full_policy = QueueFullPolicy::kBlock;
  auto async = AsyncQueryEngine::Create(
      graph, std::make_unique<GateMethod>(gate), engine_options,
      async_options);
  ASSERT_TRUE(async.ok());

  QueryTicket running = (*async)->Submit(1);  // occupies the only job slot
  AwaitDispatched(running);
  QueryTicket queued = (*async)->Submit(2);  // fills the queue
  EXPECT_EQ((*async)->stats().queue_depth, 1u);

  std::atomic<bool> submitted{false};
  QueryTicket blocked;
  std::thread submitter([&] {
    blocked = (*async)->Submit(3);  // queue full → blocks on a slot
    submitted.store(true);
  });
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(submitted.load());

  // No serving progress is possible (gate closed, job slot busy) — the
  // cancel alone must free the slot and wake the submitter.
  EXPECT_TRUE(queued.Cancel());
  const auto deadline = steady_clock::now() + kWaitBudget;
  while (!submitted.load() && steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_TRUE(submitted.load())
      << "cancel did not release the admission-queue slot";
  submitter.join();
  EXPECT_EQ(queued.Wait().status.code(), StatusCode::kCancelled);
  // Counted immediately, before any scheduler involvement.
  EXPECT_EQ((*async)->stats().cancelled, 1u);

  gate->Open();
  EXPECT_TRUE(running.Wait().status.ok());
  const QueryResult& late = blocked.Wait();
  ASSERT_TRUE(late.status.ok());
  EXPECT_EQ(late.scores[3], 1.0);

  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(AsyncQueryEngineTest, QueueFullRejectPolicyFailsFast) {
  Graph graph = ServingGraph();
  auto gate = std::make_shared<GateMethod::Gate>();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  AsyncQueryEngineOptions async_options;
  async_options.queue_capacity = 1;
  async_options.max_inflight_jobs = 1;
  async_options.queue_full_policy = QueueFullPolicy::kReject;
  auto async = AsyncQueryEngine::Create(
      graph, std::make_unique<GateMethod>(gate), engine_options,
      async_options);
  ASSERT_TRUE(async.ok());

  QueryTicket running = (*async)->Submit(1);  // popped into the job slot
  AwaitDispatched(running);
  QueryTicket queued = (*async)->Submit(2);  // fills the queue
  QueryTicket bounced = (*async)->Submit(3);  // queue full → reject

  EXPECT_TRUE(bounced.done());  // rejection is immediate
  EXPECT_EQ(bounced.Wait().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(bounced.Wait().seed, 3u);

  gate->Open();
  EXPECT_TRUE(running.Wait().status.ok());
  EXPECT_TRUE(queued.Wait().status.ok());
  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(AsyncQueryEngineTest, QueueFullBlockPolicyWaitsForASlot) {
  Graph graph = ServingGraph();
  auto gate = std::make_shared<GateMethod::Gate>();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  AsyncQueryEngineOptions async_options;
  async_options.queue_capacity = 1;
  async_options.max_inflight_jobs = 1;
  async_options.queue_full_policy = QueueFullPolicy::kBlock;
  auto async = AsyncQueryEngine::Create(
      graph, std::make_unique<GateMethod>(gate), engine_options,
      async_options);
  ASSERT_TRUE(async.ok());

  QueryTicket running = (*async)->Submit(1);
  AwaitDispatched(running);
  QueryTicket queued = (*async)->Submit(2);

  std::atomic<bool> submitted{false};
  QueryTicket blocked;
  std::thread submitter([&] {
    blocked = (*async)->Submit(3);  // queue full → blocks until a slot frees
    submitted.store(true);
  });
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(submitted.load());  // still blocked while the queue is full

  gate->Open();  // service resumes, slots free, the submitter unblocks
  submitter.join();
  EXPECT_TRUE(submitted.load());
  EXPECT_TRUE(running.Wait().status.ok());
  EXPECT_TRUE(queued.Wait().status.ok());
  const QueryResult& late = blocked.Wait();
  ASSERT_TRUE(late.status.ok());
  EXPECT_EQ(late.scores[3], 1.0);
  EXPECT_EQ((*async)->stats().rejected, 0u);
}

TEST(AsyncQueryEngineTest, CallbackSubmitOnFullQueueRejectsInsteadOfDeadlock) {
  // A Submit from an on_complete callback runs on the serving job that is
  // the only thing freeing queue slots — under kBlock it must fall back to
  // rejecting on a full queue instead of self-deadlocking.
  Graph graph = ServingGraph();
  auto gate = std::make_shared<GateMethod::Gate>();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  AsyncQueryEngineOptions async_options;
  async_options.queue_capacity = 1;
  async_options.max_inflight_jobs = 1;
  async_options.queue_full_policy = QueueFullPolicy::kBlock;
  auto async = AsyncQueryEngine::Create(
      graph, std::make_unique<GateMethod>(gate), engine_options,
      async_options);
  ASSERT_TRUE(async.ok());

  std::atomic<bool> callback_ran{false};
  StatusCode nested_code = StatusCode::kOk;
  SubmitOptions options;
  options.on_complete = [&](const QueryResult&) {
    // The queue still holds the second ticket (the serving job has not
    // finished, so the scheduler cannot pop), so this nested Submit sees a
    // full queue on the serving thread.
    QueryTicket nested = (*async)->Submit(4);
    nested_code = nested.Wait().status.code();
    callback_ran.store(true);
  };
  QueryTicket running = (*async)->Submit(1, options);
  AwaitDispatched(running);
  QueryTicket queued = (*async)->Submit(2);  // fills the 1-slot queue

  gate->Open();
  ASSERT_TRUE(running.WaitFor(kWaitBudget)) << "callback submit deadlocked";
  EXPECT_TRUE(callback_ran.load());
  EXPECT_EQ(nested_code, StatusCode::kResourceExhausted);
  EXPECT_TRUE(queued.Wait().status.ok());
}

TEST(AsyncQueryEngineTest, ShutdownDrainsInflightAndQueuedWork) {
  Graph graph = ServingGraph();
  auto gate = std::make_shared<GateMethod::Gate>();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  AsyncQueryEngineOptions async_options;
  async_options.max_inflight_jobs = 2;
  auto async = AsyncQueryEngine::Create(
      graph, std::make_unique<GateMethod>(gate), engine_options,
      async_options);
  ASSERT_TRUE(async.ok());

  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 20; ++i) {
    tickets.push_back((*async)->Submit(static_cast<NodeId>(i)));
  }

  std::thread shutdown([&] { (*async)->Shutdown(); });
  std::this_thread::sleep_for(milliseconds(20));
  gate->Open();  // let the drain proceed
  shutdown.join();

  // Every admitted ticket was served to completion before Shutdown
  // returned.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(tickets[i].done()) << "ticket " << i;
    const QueryResult& result = tickets[i].Wait();
    ASSERT_TRUE(result.status.ok()) << result.status;
    EXPECT_EQ(result.scores[static_cast<size_t>(i)], 1.0);
  }
  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.completed, 20u);
  EXPECT_EQ(stats.queue_depth, 0u);

  // Admissions after shutdown fail with a distinct status; double shutdown
  // and destruction stay safe.
  QueryTicket refused = (*async)->Submit(5);
  EXPECT_EQ(refused.Wait().status.code(), StatusCode::kFailedPrecondition);
  (*async)->Shutdown();
}

TEST(AsyncQueryEngineTest, CompletionCallbacksFireExactlyOncePerTicket) {
  Graph graph = ServingGraph();
  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.batch_block_size = 4;
  auto async = AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        engine_options);
  ASSERT_TRUE(async.ok());

  std::atomic<int> completions{0};
  std::atomic<int> ok_count{0};
  std::vector<QueryTicket> tickets;
  SubmitOptions options;
  options.on_complete = [&](const QueryResult& result) {
    completions.fetch_add(1);
    if (result.status.ok()) ok_count.fetch_add(1);
  };
  for (int i = 0; i < 30; ++i) {
    tickets.push_back(
        (*async)->Submit(static_cast<NodeId>(i % graph.num_nodes()), options));
  }
  // An invalid seed fails its own ticket through the same callback path.
  tickets.push_back((*async)->Submit(graph.num_nodes(), options));

  for (QueryTicket& ticket : tickets) ticket.Wait();
  EXPECT_EQ(completions.load(), 31);
  EXPECT_EQ(ok_count.load(), 30);
  EXPECT_EQ(tickets.back().Wait().status.code(), StatusCode::kOutOfRange);
}

TEST(AsyncQueryEngineTest, CacheIsSharedAcrossAsyncAndBlockingPaths) {
  Graph graph = ServingGraph();
  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.cache_capacity = 8;
  auto async = AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        engine_options);
  ASSERT_TRUE(async.ok());

  QueryTicket cold_ticket = (*async)->Submit(9);
  const QueryResult& cold = cold_ticket.Wait();
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.from_cache);

  QueryTicket warm_ticket = (*async)->Submit(9);
  const QueryResult& warm = warm_ticket.Wait();
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.scores, cold.scores);

  // The blocking surface sees the same cache.
  QueryResult blocking = (*async)->engine().Query(9);
  EXPECT_TRUE(blocking.from_cache);
  EXPECT_EQ(blocking.scores, cold.scores);
}

TEST(AsyncQueryEngineTest, ValidatesOptions) {
  Graph graph = ServingGraph();
  AsyncQueryEngineOptions bad_capacity;
  bad_capacity.queue_capacity = 0;
  EXPECT_FALSE(AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        {}, bad_capacity)
                   .ok());
  AsyncQueryEngineOptions bad_inflight;
  bad_inflight.max_inflight_jobs = -1;
  EXPECT_FALSE(AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        {}, bad_inflight)
                   .ok());
  EXPECT_FALSE(AsyncQueryEngine::Create(graph, nullptr, {}, {}).ok());
  EXPECT_FALSE(
      AsyncQueryEngine::CreateFromRegistry(graph, "NoSuchMethod").ok());
}

TEST(AsyncQueryEngineTest, WorkspacePopulationStaysWithinPoolSize) {
  // Regression for the ROADMAP-known limit: group jobs hopping between pool
  // workers used to re-warm one thread-local Cpi::Workspace each; the
  // shared checkout pool must instead bound the population by concurrency —
  // at most one workspace per worker thread, no matter how many groups ran.
  Graph graph = ServingGraph();
  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.batch_block_size = 4;
  auto method = std::make_unique<TpaMethod>();
  const TpaMethod* tpa_method = method.get();
  auto async = AsyncQueryEngine::Create(graph, std::move(method),
                                        engine_options);
  ASSERT_TRUE(async.ok());

  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 200; ++i) {  // many more groups than workers
    tickets.push_back(
        (*async)->Submit(static_cast<NodeId>((i * 13) % graph.num_nodes())));
  }
  for (QueryTicket& ticket : tickets) {
    ASSERT_TRUE(ticket.Wait().status.ok());
  }

  ASSERT_NE(tpa_method->tpa(), nullptr);
  const WorkspacePool& pool = tpa_method->tpa()->workspace_pool();
  EXPECT_GE(pool.created(), 1u);
  EXPECT_LE(pool.created(), 2u) << "workspaces must not exceed pool size";
  EXPECT_EQ(pool.available(), pool.created());  // all returned at quiescence
}

TEST(AsyncQueryEngineTest, ShutdownWakesBlockedSubmittersCleanly) {
  // Regression: kBlock submitters parked on the admission queue used to
  // reference engine members after waking — a shutdown racing the wakeup
  // could free those members under them.  Blocked submitters must wake on
  // Shutdown, fail their tickets cleanly, and touch only the admission
  // block (which they keep alive themselves) even while the engine object
  // is being destroyed.
  Graph graph = ServingGraph();
  auto gate = std::make_shared<GateMethod::Gate>();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  AsyncQueryEngineOptions async_options;
  async_options.queue_capacity = 1;
  async_options.max_inflight_jobs = 1;
  async_options.queue_full_policy = QueueFullPolicy::kBlock;
  auto created = AsyncQueryEngine::Create(
      graph, std::make_unique<GateMethod>(gate), engine_options,
      async_options);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<AsyncQueryEngine> engine = std::move(created).value();

  QueryTicket running = engine->Submit(1);  // occupies the only job slot
  AwaitDispatched(running);
  QueryTicket queued = engine->Submit(2);  // fills the 1-slot queue

  constexpr int kBlocked = 8;
  std::atomic<int> callbacks{0};
  std::atomic<int> entered{0};
  std::vector<QueryTicket> blocked(kBlocked);
  std::vector<std::thread> submitters;
  // The submitters hold a raw pointer: the object under test is
  // Submit-racing-destructor, and reading the unique_ptr itself while the
  // destroyer resets it would be a (test-local) data race of its own.
  AsyncQueryEngine* raw_engine = engine.get();
  for (int i = 0; i < kBlocked; ++i) {
    submitters.emplace_back([&, i] {
      SubmitOptions options;
      options.on_complete = [&](const QueryResult&) { callbacks.fetch_add(1); };
      entered.fetch_add(1);
      blocked[i] = raw_engine->Submit(static_cast<NodeId>(3 + i), options);
      blocked[i].Wait();
    });
  }
  while (entered.load() < kBlocked) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  std::this_thread::sleep_for(milliseconds(50));  // let them park on the queue

  // Destroy the engine while the submitters are parked: Shutdown wakes
  // them, then drains the admitted work (which needs the gate open).
  std::thread destroyer([&] { engine.reset(); });
  std::this_thread::sleep_for(milliseconds(20));
  gate->Open();
  destroyer.join();
  for (std::thread& submitter : submitters) submitter.join();

  // Nothing hung, every blocked submitter got a cleanly failed ticket with
  // its callback fired exactly once, and the admitted work was drained.
  EXPECT_EQ(callbacks.load(), kBlocked);
  for (int i = 0; i < kBlocked; ++i) {
    ASSERT_TRUE(blocked[i].valid()) << "ticket " << i;
    ASSERT_TRUE(blocked[i].done()) << "ticket " << i;
    EXPECT_EQ(blocked[i].Wait().status.code(), StatusCode::kFailedPrecondition)
        << "ticket " << i;
  }
  EXPECT_TRUE(running.Wait().status.ok());
  EXPECT_TRUE(queued.Wait().status.ok());
}

TEST(AsyncQueryEngineTest, CancelRunningTicketIsACooperativeRequest) {
  // GateMethod never polls its QueryContext, so cancelling a *running*
  // ticket is a request, not a guarantee: Cancel returns true (the request
  // was delivered), and the ticket still completes exactly once through
  // the serving path with whatever the method produced.
  Graph graph = ServingGraph();
  auto gate = std::make_shared<GateMethod::Gate>();

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  auto async = AsyncQueryEngine::Create(
      graph, std::make_unique<GateMethod>(gate), engine_options, {});
  ASSERT_TRUE(async.ok());

  std::atomic<int> callbacks{0};
  SubmitOptions options;
  options.on_complete = [&](const QueryResult&) { callbacks.fetch_add(1); };
  QueryTicket running = (*async)->Submit(1, options);
  AwaitDispatched(running);

  EXPECT_TRUE(running.Cancel());   // delivered to the running query
  EXPECT_FALSE(running.done());    // ...which has not honored it yet
  gate->Open();
  const QueryResult& result = running.Wait();
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.scores[1], 1.0);
  EXPECT_EQ(callbacks.load(), 1);

  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cancelled, 0u);  // queue-phase counter stays untouched
}

TEST(AsyncQueryEngineTest, OverloadDegradesPastDeadlineIntoCertifiedPartial) {
  Graph graph = ServingGraph();
  QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  AsyncQueryEngineOptions async_options;
  async_options.degradation.enabled = true;  // watermark 0: always overloaded
  async_options.degradation.min_iterations = 3;
  auto async = AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        engine_options, async_options);
  ASSERT_TRUE(async.ok()) << async.status();

  auto oracle =
      QueryEngine::Create(graph, std::make_unique<TpaMethod>(), {});
  ASSERT_TRUE(oracle.ok());

  for (NodeId seed : {NodeId{5}, NodeId{77}, NodeId{201}}) {
    SubmitOptions options;
    options.deadline = steady_clock::now() - milliseconds(1);
    QueryTicket ticket = (*async)->Submit(seed, options);
    ASSERT_TRUE(ticket.WaitFor(kWaitBudget));
    const QueryResult& result = ticket.Wait();
    // Under the degradation policy an expired deadline yields a *bounded
    // partial*, not an error: OK status, degraded flag, and a certified
    // error bound that covers the true L1 gap to the converged answer.
    ASSERT_TRUE(result.status.ok()) << result.status;
    ASSERT_TRUE(result.degraded) << "seed " << seed;
    EXPECT_EQ(result.degrade_reason, StatusCode::kDeadlineExceeded);
    ASSERT_FALSE(result.scores.empty());
    ASSERT_GT(result.error_bound, 0.0);
    ASSERT_LT(result.error_bound, 1.0);

    const QueryResult exact = oracle->Query(seed);
    ASSERT_TRUE(exact.status.ok());
    EXPECT_LE(la::L1Distance(result.scores, exact.scores), result.error_bound)
        << "seed " << seed;
    EXPECT_NE(result.scores, exact.scores)  // genuinely partial
        << "seed " << seed;
  }

  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.degraded, 3u);
  EXPECT_EQ(stats.expired, 0u);  // degradation replaced outright expiry
  EXPECT_GT(stats.deadline_miss_rate, 0.0);
}

TEST(AsyncQueryEngineTest, DegradedPartialsNeverEnterTheSharedCache) {
  Graph graph = ServingGraph();
  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.cache_capacity = 8;
  AsyncQueryEngineOptions async_options;
  async_options.degradation.enabled = true;
  async_options.degradation.min_iterations = 2;
  auto async = AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        engine_options, async_options);
  ASSERT_TRUE(async.ok()) << async.status();

  SubmitOptions expired;
  expired.deadline = steady_clock::now() - milliseconds(1);
  QueryTicket partial = (*async)->Submit(9, expired);
  ASSERT_TRUE(partial.Wait().status.ok());
  ASSERT_TRUE(partial.Wait().degraded);
  EXPECT_EQ((*async)->engine().cache_stats().entries, 0u)
      << "a degraded partial must never be deposited as an exact answer";

  // The next query for the same seed runs fresh, converges, and is the
  // one that populates the cache.
  QueryTicket full = (*async)->Submit(9);
  const QueryResult& converged = full.Wait();
  ASSERT_TRUE(converged.status.ok());
  EXPECT_FALSE(converged.degraded);
  EXPECT_FALSE(converged.from_cache);
  EXPECT_EQ((*async)->engine().cache_stats().entries, 1u);

  auto oracle = QueryEngine::Create(graph, std::make_unique<TpaMethod>(), {});
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(converged.scores, oracle->Query(9).scores);

  QueryTicket warm = (*async)->Submit(9);
  EXPECT_TRUE(warm.Wait().from_cache);
  EXPECT_EQ(warm.Wait().scores, converged.scores);
}

TEST(AsyncQueryEngineTest, ShedToFp32ServesFromTheFloatTier) {
  Graph graph = ServingGraph();

  AsyncQueryEngineOptions shed_options;
  shed_options.degradation.enabled = true;
  shed_options.degradation.shed_to_fp32 = true;
  shed_options.degradation.min_iterations = 2;

  // Create() cannot build the second method instance the fp32 tier needs.
  auto direct = AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                         {}, shed_options);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kInvalidArgument);

  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  auto async = AsyncQueryEngine::CreateFromRegistry(graph, "TPA", {},
                                                    engine_options,
                                                    shed_options);
  ASSERT_TRUE(async.ok()) << async.status();

  // Overloaded (watermark 0) + shed tier: the query routes to fp32.  With
  // no deadline or cancel the context never trips, so the shed answer is
  // the fully converged fp32 iterate.
  QueryTicket shed = (*async)->Submit(21);
  const QueryResult& result = shed.Wait();
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_TRUE(result.shed_to_fp32);
  EXPECT_FALSE(result.degraded);
  ASSERT_FALSE(result.scores_f32.empty());
  EXPECT_TRUE(result.scores.empty());

  auto oracle = QueryEngine::Create(graph, std::make_unique<TpaMethod>(), {});
  ASSERT_TRUE(oracle.ok());
  const QueryResult exact = oracle->Query(21);
  ASSERT_TRUE(exact.status.ok());
  double gap = 0.0;
  ASSERT_EQ(result.scores_f32.size(), exact.scores.size());
  for (size_t i = 0; i < exact.scores.size(); ++i) {
    gap += std::abs(static_cast<double>(result.scores_f32[i]) -
                    exact.scores[i]);
  }
  EXPECT_LT(gap, 1e-3);  // fp32 tier tracks the fp64 answer

  // An expired deadline on the shed tier still degrades with a bound.
  SubmitOptions options;
  options.deadline = steady_clock::now() - milliseconds(1);
  QueryTicket bounded = (*async)->Submit(33, options);
  const QueryResult& partial = bounded.Wait();
  ASSERT_TRUE(partial.status.ok()) << partial.status;
  EXPECT_TRUE(partial.shed_to_fp32);
  EXPECT_TRUE(partial.degraded);
  EXPECT_GT(partial.error_bound, 0.0);

  const auto stats = (*async)->stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.degraded, 1u);
}

TEST(AsyncQueryEngineTest, ValidatesDegradationPolicy) {
  Graph graph = ServingGraph();

  AsyncQueryEngineOptions bad_watermark;
  bad_watermark.degradation.enabled = true;
  bad_watermark.degradation.queue_watermark = 1.5;
  EXPECT_FALSE(AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        {}, bad_watermark)
                   .ok());

  AsyncQueryEngineOptions bad_min_iterations;
  bad_min_iterations.degradation.enabled = true;
  bad_min_iterations.degradation.min_iterations = -1;
  EXPECT_FALSE(AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        {}, bad_min_iterations)
                   .ok());

  AsyncQueryEngineOptions shed_without_enable;
  shed_without_enable.degradation.shed_to_fp32 = true;
  EXPECT_FALSE(AsyncQueryEngine::Create(graph, std::make_unique<TpaMethod>(),
                                        {}, shed_without_enable)
                   .ok());
}

}  // namespace
}  // namespace tpa
