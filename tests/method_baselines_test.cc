#include <gtest/gtest.h>

#include "util/check.h"

#include <memory>

#include "core/cpi.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "la/vector_ops.h"
#include "method/bear.h"
#include "method/bepi.h"
#include "method/brppr.h"
#include "method/fora.h"
#include "method/hubppr.h"
#include "method/nblin.h"
#include "method/power_iteration.h"
#include "method/registry.h"
#include "method/tpa_method.h"

namespace tpa {
namespace {

Graph TestGraph(uint64_t seed = 71) {
  DcsbmOptions options;
  options.nodes = 500;
  options.edges = 4000;
  options.blocks = 8;
  options.zipf_theta = 1.0;
  options.intra_fraction = 0.9;
  options.seed = seed;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

std::vector<double> Exact(const Graph& graph, NodeId seed) {
  CpiOptions options;
  options.tolerance = 1e-12;
  auto exact = Cpi::ExactRwr(graph, seed, options);
  TPA_CHECK(exact.ok());
  return std::move(exact).value();
}

TEST(PowerIterationTest, MatchesOracleExactly) {
  Graph graph = TestGraph();
  PowerIterationRwr method;
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  auto scores = method.Query(10);
  ASSERT_TRUE(scores.ok());
  EXPECT_LT(la::L1Distance(*scores, Exact(graph, 10)), 1e-6);
  EXPECT_EQ(method.PreprocessedBytes(), 0u);
}

TEST(BepiTest, IsExactToGmresTolerance) {
  // BePI solves the same system as CPI: agreement validates both the
  // block-elimination algebra and the paper's use of BePI as ground truth.
  Graph graph = TestGraph();
  Bepi method;
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  for (NodeId seed : {NodeId{0}, NodeId{123}, NodeId{499}}) {
    auto scores = method.Query(seed);
    ASSERT_TRUE(scores.ok());
    EXPECT_LT(la::L1Distance(*scores, Exact(graph, seed)), 1e-6)
        << "seed " << seed;
  }
  EXPECT_GT(method.PreprocessedBytes(), 0u);
}

TEST(BearTest, HighAccuracyWithDropTolerance) {
  Graph graph = TestGraph();
  // The paper's n^{-1/2} tolerance assumes n ≥ 80k (tol ≤ 0.0035); on a
  // 500-node test graph it would wipe out most stored entries, so pin an
  // equivalent absolute tolerance here.
  BearOptions options;
  options.drop_tolerance = 0.003;
  BearApprox method(options);
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  auto scores = method.Query(42);
  ASSERT_TRUE(scores.ok());
  const auto exact = Exact(graph, 42);
  EXPECT_GT(RecallAtK(*scores, exact, 50), 0.9);
  EXPECT_LT(la::L1Distance(*scores, exact), 0.2);
}

TEST(BearTest, ExactWithZeroDropTolerance) {
  Graph graph = TestGraph();
  BearOptions options;
  options.drop_tolerance = 0.0;
  BearApprox method(options);
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  auto scores = method.Query(7);
  ASSERT_TRUE(scores.ok());
  EXPECT_LT(la::L1Distance(*scores, Exact(graph, 7)), 1e-8);
}

TEST(BearTest, OomOnTinyBudget) {
  Graph graph = TestGraph();
  BearApprox method;
  MemoryBudget budget(1024);  // 1 KB: the Schur workspace cannot fit
  Status status = method.Preprocess(graph, budget);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(BrpprTest, ConcentratesAccuracyNearSeed) {
  Graph graph = TestGraph();
  Brppr method;
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  auto scores = method.Query(3);
  ASSERT_TRUE(scores.ok());
  const auto exact = Exact(graph, 3);
  EXPECT_GT(RecallAtK(*scores, exact, 50), 0.85);
  // Mass parked at never-activated boundary nodes loses its future
  // propagation — that truncation IS BRPPR's approximation error, so the
  // total lands slightly under 1.
  EXPECT_GT(la::NormL1(*scores), 0.95);
  EXPECT_LE(la::NormL1(*scores), 1.0 + 1e-9);
  EXPECT_GT(method.last_active_count(), 0u);
  EXPECT_EQ(method.PreprocessedBytes(), 0u);
}

TEST(BrpprTest, TighterThresholdImprovesAccuracy) {
  Graph graph = TestGraph();
  const auto exact = Exact(graph, 9);
  double loose_error = 0.0, tight_error = 0.0;
  {
    BrpprOptions options;
    options.expansion_threshold = 1e-2;
    Brppr method(options);
    MemoryBudget budget;
    ASSERT_TRUE(method.Preprocess(graph, budget).ok());
    auto scores = method.Query(9);
    ASSERT_TRUE(scores.ok());
    loose_error = la::L1Distance(*scores, exact);
  }
  {
    BrpprOptions options;
    options.expansion_threshold = 1e-5;
    Brppr method(options);
    MemoryBudget budget;
    ASSERT_TRUE(method.Preprocess(graph, budget).ok());
    auto scores = method.Query(9);
    ASSERT_TRUE(scores.ok());
    tight_error = la::L1Distance(*scores, exact);
  }
  EXPECT_LT(tight_error, loose_error + 1e-12);
}

TEST(NbLinTest, LowRankGivesCoarseApproximation) {
  Graph graph = TestGraph();
  NbLinOptions options;
  options.rank = 48;
  options.power_iterations = 4;
  NbLin method(options);
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  auto scores = method.Query(15);
  ASSERT_TRUE(scores.ok());
  const auto exact = Exact(graph, 15);
  // NB-LIN is the paper's least accurate method: sanity-check that it is
  // meaningfully correlated with the truth without demanding high recall.
  EXPECT_GT(RecallAtK(*scores, exact, 50), 0.3);
  EXPECT_GT(method.PreprocessedBytes(), 0u);
}

TEST(NbLinTest, SeedEntryDominatesItsOwnScore) {
  Graph graph = TestGraph();
  NbLinOptions options;
  options.rank = 32;
  NbLin method(options);
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  auto scores = method.Query(8);
  ASSERT_TRUE(scores.ok());
  // The explicit c·q term guarantees the seed keeps a large score.
  EXPECT_GT((*scores)[8], 0.1);
}

TEST(NbLinTest, OomOnTinyBudget) {
  Graph graph = TestGraph();
  NbLin method;
  MemoryBudget budget(1024);
  EXPECT_EQ(method.Preprocess(graph, budget).code(),
            StatusCode::kResourceExhausted);
}

TEST(ForaTest, HighRecallAndSmallL1Error) {
  Graph graph = TestGraph();
  Fora method;
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  EXPECT_GT(method.omega(), 0u);
  EXPECT_GT(method.r_max(), 0.0);
  auto scores = method.Query(21);
  ASSERT_TRUE(scores.ok());
  const auto exact = Exact(graph, 21);
  EXPECT_GT(RecallAtK(*scores, exact, 50), 0.9);
  EXPECT_LT(la::L1Distance(*scores, exact), 0.15);
}

TEST(ForaTest, ScoresApproximatelySumToOne) {
  Graph graph = TestGraph();
  Fora method;
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  auto scores = method.Query(33);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(la::NormL1(*scores), 1.0, 0.05);
}

TEST(HubPprTest, ReasonableRecallOnTopK) {
  Graph graph = TestGraph();
  HubPpr method;
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  EXPECT_GT(method.num_hubs(), 0u);
  auto scores = method.Query(17);
  ASSERT_TRUE(scores.ok());
  const auto exact = Exact(graph, 17);
  EXPECT_GT(RecallAtK(*scores, exact, 50), 0.8);
}

TEST(MethodsTest, QueryBeforePreprocessFails) {
  std::unique_ptr<RwrMethod> methods[] = {
      std::make_unique<TpaMethod>(),  std::make_unique<BearApprox>(),
      std::make_unique<Bepi>(),       std::make_unique<Brppr>(),
      std::make_unique<Fora>(),       std::make_unique<HubPpr>(),
      std::make_unique<NbLin>(),      std::make_unique<PowerIterationRwr>(),
  };
  for (auto& method : methods) {
    EXPECT_EQ(method->Query(0).status().code(),
              StatusCode::kFailedPrecondition)
        << method->name();
  }
}

TEST(RegistryTest, CreatesEveryMethod) {
  MethodConfig config;
  for (std::string_view name :
       {"TPA", "BEAR-APPROX", "NB-LIN", "BRPPR", "FORA", "HubPPR", "BePI",
        "PowerIteration"}) {
    auto method = CreateMethod(name, config);
    ASSERT_TRUE(method.ok()) << name;
    EXPECT_EQ((*method)->name(), name);
  }
  EXPECT_EQ(CreateMethod("nope", config).status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, MethodListsAreConsistent) {
  MethodConfig config;
  for (std::string_view name : PreprocessingMethodNames()) {
    EXPECT_TRUE(CreateMethod(name, config).ok()) << name;
  }
  for (std::string_view name : ApproximateMethodNames()) {
    EXPECT_TRUE(CreateMethod(name, config).ok()) << name;
  }
}

/// Accuracy sweep across every approximate method: all must beat a sanity
/// L1 threshold against the oracle on a block-structured graph.
class AllMethodsAccuracyTest
    : public ::testing::TestWithParam<std::string_view> {};

TEST_P(AllMethodsAccuracyTest, L1ErrorBelowSanityThreshold) {
  Graph graph = TestGraph(73);
  MethodConfig config;
  config.tpa_family_window = 5;
  config.tpa_stranger_start = 10;
  auto method = CreateMethod(GetParam(), config);
  ASSERT_TRUE(method.ok());
  MemoryBudget budget;
  ASSERT_TRUE((*method)->Preprocess(graph, budget).ok());
  auto scores = (*method)->Query(5);
  ASSERT_TRUE(scores.ok());
  const auto exact = Exact(graph, 5);
  // NB-LIN is known-coarse; everything else should be well under 0.5.
  const double threshold = GetParam() == "NB-LIN" ? 1.2 : 0.5;
  EXPECT_LT(la::L1Distance(*scores, exact), threshold) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllMethodsAccuracyTest,
                         ::testing::Values("TPA", "BRPPR", "BEAR-APPROX",
                                           "NB-LIN", "HubPPR", "FORA",
                                           "BePI"));

}  // namespace
}  // namespace tpa
