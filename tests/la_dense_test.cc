#include <gtest/gtest.h>

#include <cmath>

#include "la/dense_matrix.h"
#include "la/lu.h"
#include "la/qr.h"
#include "util/random.h"

namespace tpa::la {
namespace {

DenseMatrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m.At(r, c) = rng.NextGaussian();
  }
  return m;
}

TEST(DenseMatrixTest, IdentityAndMatVec) {
  DenseMatrix eye = DenseMatrix::Identity(3);
  std::vector<double> x = {1.0, 2.0, 3.0};
  auto y = eye.MatVec(x);
  EXPECT_EQ(y, x);
}

TEST(DenseMatrixTest, MatVecTransposeMatchesExplicitTranspose) {
  DenseMatrix a = RandomMatrix(4, 3, 5);
  std::vector<double> x = {1.0, -1.0, 0.5, 2.0};
  auto direct = a.MatVecTranspose(x);
  auto via_transpose = a.Transposed().MatVec(x);
  ASSERT_EQ(direct.size(), via_transpose.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via_transpose[i], 1e-12);
  }
}

TEST(DenseMatrixTest, MatMulAgainstHandComputed) {
  DenseMatrix a(2, 2), b(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  b.At(0, 0) = 5;
  b.At(0, 1) = 6;
  b.At(1, 0) = 7;
  b.At(1, 1) = 8;
  DenseMatrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(DenseMatrixTest, SizeBytes) {
  DenseMatrix m(10, 20);
  EXPECT_EQ(m.SizeBytes(), 10u * 20u * sizeof(double));
}

TEST(LuTest, SolvesRandomSystems) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const size_t n = 20;
    DenseMatrix a = RandomMatrix(n, n, seed);
    for (size_t i = 0; i < n; ++i) a.At(i, i) += 5.0;  // well-conditioned
    Rng rng(seed + 100);
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.NextGaussian();
    std::vector<double> b = a.MatVec(x_true);

    auto lu = LuDecomposition::Compute(a);
    ASSERT_TRUE(lu.ok());
    auto x = lu->Solve(b);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  DenseMatrix a = RandomMatrix(15, 15, 7);
  for (size_t i = 0; i < 15; ++i) a.At(i, i) += 4.0;
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  DenseMatrix prod = a.MatMul(lu->Inverse());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(prod, DenseMatrix::Identity(15)), 1e-9);
}

TEST(LuTest, SingularMatrixIsRejected) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 2.0;
  a.At(1, 0) = 2.0;
  a.At(1, 1) = 4.0;  // rank 1
  auto lu = LuDecomposition::Compute(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LuTest, NonSquareIsRejected) {
  auto lu = LuDecomposition::Compute(DenseMatrix(2, 3));
  EXPECT_EQ(lu.status().code(), StatusCode::kInvalidArgument);
}

TEST(LuTest, DeterminantOfKnownMatrix) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 3.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 2.0;
  a.At(1, 1) = 4.0;
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), 10.0, 1e-12);
}

TEST(QrTest, ReconstructsMatrix) {
  DenseMatrix a = RandomMatrix(12, 5, 11);
  auto qr = QrDecomposition::ComputeThin(a);
  ASSERT_TRUE(qr.ok());
  DenseMatrix reconstructed = qr->q().MatMul(qr->r());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(reconstructed, a), 1e-10);
}

TEST(QrTest, QHasOrthonormalColumns) {
  DenseMatrix a = RandomMatrix(30, 8, 13);
  auto qr = QrDecomposition::ComputeThin(a);
  ASSERT_TRUE(qr.ok());
  DenseMatrix qtq = qr->q().Transposed().MatMul(qr->q());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(qtq, DenseMatrix::Identity(8)), 1e-10);
}

TEST(QrTest, RIsUpperTriangular) {
  DenseMatrix a = RandomMatrix(10, 4, 17);
  auto qr = QrDecomposition::ComputeThin(a);
  ASSERT_TRUE(qr.ok());
  for (size_t i = 1; i < 4; ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(qr->r().At(i, j), 0.0, 1e-12);
    }
  }
}

TEST(QrTest, LeastSquaresRecoversExactSolution) {
  // Consistent overdetermined system: b in range(A).
  DenseMatrix a = RandomMatrix(20, 6, 19);
  Rng rng(23);
  std::vector<double> x_true(6);
  for (double& v : x_true) v = rng.NextGaussian();
  std::vector<double> b = a.MatVec(x_true);
  auto qr = QrDecomposition::ComputeThin(a);
  ASSERT_TRUE(qr.ok());
  auto x = qr->LeastSquares(b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-9);
}

TEST(QrTest, WideMatrixRejected) {
  auto qr = QrDecomposition::ComputeThin(DenseMatrix(3, 5));
  EXPECT_EQ(qr.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tpa::la
