#include "graph/presets.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace tpa {
namespace {

TEST(PresetsTest, SevenDatasetsOrderedBySize) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 7u);
  for (size_t i = 1; i < specs.size(); ++i) {
    EXPECT_GT(specs[i].nodes, specs[i - 1].nodes);
    EXPECT_GT(specs[i].edges, specs[i - 1].edges);
  }
}

TEST(PresetsTest, TableIIParametersPreserved) {
  // S and T exactly as the paper's Table II.
  struct Expected {
    const char* name;
    int s;
    int t;
  };
  const Expected expected[] = {
      {"slashdot-sim", 5, 15},    {"google-sim", 5, 20},
      {"pokec-sim", 5, 10},       {"livejournal-sim", 5, 10},
      {"wikilink-sim", 5, 6},     {"twitter-sim", 4, 6},
      {"friendster-sim", 4, 20},
  };
  for (const auto& e : expected) {
    auto spec = FindDatasetSpec(e.name);
    ASSERT_TRUE(spec.ok()) << e.name;
    EXPECT_EQ(spec->s, e.s) << e.name;
    EXPECT_EQ(spec->t, e.t) << e.name;
  }
}

TEST(PresetsTest, UnknownNameIsNotFound) {
  EXPECT_EQ(FindDatasetSpec("orkut-sim").status().code(),
            StatusCode::kNotFound);
}

TEST(PresetsTest, ScaledGraphMatchesSpec) {
  auto spec = FindDatasetSpec("slashdot-sim");
  ASSERT_TRUE(spec.ok());
  auto graph = MakePresetGraph(*spec, 0.1);
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_NEAR(stats.nodes, spec->nodes * 0.1, spec->nodes * 0.01);
  // Heavy-tailed weights collapse many duplicate draws on small graphs;
  // the built count still tracks the draw count within a factor ~2.
  EXPECT_GT(stats.edges, spec->edges * 0.1 * 0.5);
  EXPECT_LE(stats.edges, spec->edges * 0.1 + stats.nodes);
  EXPECT_EQ(stats.dangling_nodes, 0u);
}

TEST(PresetsTest, RandomTwinMatchesSizes) {
  auto spec = FindDatasetSpec("slashdot-sim");
  ASSERT_TRUE(spec.ok());
  auto real = MakePresetGraph(*spec, 0.1);
  ASSERT_TRUE(real.ok());
  auto twin = MakeRandomTwin(*real);
  ASSERT_TRUE(twin.ok());
  EXPECT_EQ(real->num_nodes(), twin->num_nodes());
  const double ratio = static_cast<double>(twin->num_edges()) /
                       static_cast<double>(real->num_edges());
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.05);
}

TEST(PresetsTest, GenerationIsDeterministic) {
  auto spec = FindDatasetSpec("google-sim");
  ASSERT_TRUE(spec.ok());
  auto a = MakePresetGraph(*spec, 0.05);
  auto b = MakePresetGraph(*spec, 0.05);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_edges(), b->num_edges());
}

TEST(PresetsTest, InvalidScaleRejected) {
  auto spec = FindDatasetSpec("slashdot-sim");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(MakePresetGraph(*spec, 0.0).ok());
  EXPECT_FALSE(MakePresetGraph(*spec, -1.0).ok());
}

TEST(PresetsTest, TinyScaleClampsToMinimumSize) {
  auto spec = FindDatasetSpec("slashdot-sim");
  ASSERT_TRUE(spec.ok());
  auto graph = MakePresetGraph(*spec, 1e-9);
  ASSERT_TRUE(graph.ok());
  EXPECT_GE(graph->num_nodes(), 64u);
}

}  // namespace
}  // namespace tpa
