#include "method/monte_carlo.h"

#include <gtest/gtest.h>
#include <cmath>

#include "util/check.h"

#include "core/cpi.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "la/vector_ops.h"

namespace tpa {
namespace {

Graph SmallGraph() {
  DcsbmOptions options;
  options.nodes = 120;
  options.edges = 900;
  options.blocks = 3;
  options.seed = 41;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(RandomWalkTest, EndpointDistributionMatchesRwr) {
  // The endpoint of a restart-terminated walk is distributed exactly as the
  // RWR vector; check empirically with many walks.
  Graph graph = SmallGraph();
  const NodeId seed_node = 4;
  Rng rng(99);
  constexpr int kWalks = 400000;
  std::vector<double> frequency(graph.num_nodes(), 0.0);
  for (int i = 0; i < kWalks; ++i) {
    frequency[RandomWalkEndpoint(graph, seed_node, 0.15, rng)] +=
        1.0 / kWalks;
  }
  CpiOptions exact_options;
  exact_options.tolerance = 1e-12;
  auto exact = Cpi::ExactRwr(graph, seed_node, exact_options);
  ASSERT_TRUE(exact.ok());
  // L1 distance of an empirical distribution shrinks like sqrt(n/kWalks).
  EXPECT_LT(la::L1Distance(frequency, *exact), 0.05);
}

TEST(RandomWalkTest, DanglingNodeTerminatesWalk) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  BuildOptions options;
  options.dangling_policy = DanglingPolicy::kKeep;
  auto graph = builder.Build(options);
  ASSERT_TRUE(graph.ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const NodeId end = RandomWalkEndpoint(*graph, 0, 0.15, rng);
    EXPECT_TRUE(end == 0 || end == 1);
  }
}

TEST(WalkIndexTest, StoresRequestedWalkCounts) {
  Graph graph = SmallGraph();
  auto index = WalkIndex::Build(graph, 0.15, /*walks_per_edge=*/0.5,
                                /*walks_per_node=*/2, /*seed=*/7);
  ASSERT_TRUE(index.ok());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint64_t expected =
        static_cast<uint64_t>(
            std::ceil(0.5 * graph.OutDegree(v))) + 2;
    EXPECT_EQ(index->Endpoints(v).size(), expected) << "node " << v;
  }
  EXPECT_GT(index->total_walks(), 0u);
  EXPECT_EQ(index->SizeBytes(),
            (graph.num_nodes() + 1) * sizeof(uint64_t) +
                index->total_walks() * sizeof(NodeId));
}

TEST(WalkIndexTest, EndpointsAreValidNodes) {
  Graph graph = SmallGraph();
  auto index = WalkIndex::Build(graph, 0.15, 1.0, 1, 13);
  ASSERT_TRUE(index.ok());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId endpoint : index->Endpoints(v)) {
      EXPECT_LT(endpoint, graph.num_nodes());
    }
  }
}

TEST(WalkIndexTest, DeterministicFromSeed) {
  Graph graph = SmallGraph();
  auto a = WalkIndex::Build(graph, 0.15, 0.5, 1, 3);
  auto b = WalkIndex::Build(graph, 0.15, 0.5, 1, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->total_walks(), b->total_walks());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto ea = a->Endpoints(v);
    auto eb = b->Endpoints(v);
    for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
  }
}

TEST(WalkIndexTest, ValidatesArguments) {
  Graph graph = SmallGraph();
  EXPECT_FALSE(WalkIndex::Build(graph, 0.15, -1.0, 1, 1).ok());
  EXPECT_FALSE(WalkIndex::Build(graph, 0.15, 0.0, 0, 1).ok());
  EXPECT_FALSE(WalkIndex::Build(graph, 2.0, 1.0, 1, 1).ok());
}

}  // namespace
}  // namespace tpa
