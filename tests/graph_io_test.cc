#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generators.h"

namespace tpa {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/graph_io_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }

  std::string path_;
};

TEST_F(GraphIoTest, LoadsBasicEdgeList) {
  WriteFile("0 1\n1 2\n2 0\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 3u);
  EXPECT_EQ(graph->num_edges(), 3u);
}

TEST_F(GraphIoTest, SkipsCommentsAndBlankLines) {
  WriteFile("# comment\n% konect style\n\n0 1\n\n1 0\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 2u);
}

TEST_F(GraphIoTest, InfersNodeCountFromMaxId) {
  WriteFile("0 7\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 8u);
}

TEST_F(GraphIoTest, ExplicitNodeCountValidatesIds) {
  WriteFile("0 5\n");
  auto graph = LoadEdgeList(path_, /*num_nodes=*/3);
  EXPECT_EQ(graph.status().code(), StatusCode::kOutOfRange);
}

TEST_F(GraphIoTest, MalformedLineReportsLineNumber) {
  WriteFile("0 1\nnot an edge\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find(":2"), std::string::npos);
}

TEST_F(GraphIoTest, MissingFileIsNotFound) {
  auto graph = LoadEdgeList(path_ + ".does-not-exist");
  EXPECT_EQ(graph.status().code(), StatusCode::kNotFound);
}

TEST_F(GraphIoTest, RoundTripPreservesGraph) {
  ErdosRenyiOptions options;
  options.nodes = 50;
  options.edges = 200;
  options.seed = 5;
  auto original = GenerateErdosRenyi(options);
  ASSERT_TRUE(original.ok());

  ASSERT_TRUE(SaveEdgeList(*original, path_).ok());
  auto loaded = LoadEdgeList(path_, original->num_nodes());
  ASSERT_TRUE(loaded.ok());

  ASSERT_EQ(loaded->num_nodes(), original->num_nodes());
  ASSERT_EQ(loaded->num_edges(), original->num_edges());
  for (NodeId u = 0; u < original->num_nodes(); ++u) {
    auto a = original->OutNeighbors(u);
    auto b = loaded->OutNeighbors(u);
    ASSERT_EQ(a.size(), b.size()) << "node " << u;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST_F(GraphIoTest, HandlesTabsAndCarriageReturns) {
  WriteFile("0\t1\r\n1\t0\r\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 2u);
}

TEST_F(GraphIoTest, RejectsTrailingGarbageAfterSecondId) {
  WriteFile("0 1\n1 2junk\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(graph.status().message().find(":2"), std::string::npos);
}

TEST_F(GraphIoTest, RejectsThirdFieldOnEdgeLine) {
  WriteFile("1 2 3\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, AcceptsTrailingWhitespaceAfterSecondId) {
  WriteFile("0 1 \t\r\n1 0\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 2u);
}

TEST_F(GraphIoTest, RoundTripKeepsIsolatedTrailingNodes) {
  // Nodes 3..9 have no edges, so the edge lines alone name only ids 0..2.
  // SaveEdgeList's header records the true count and LoadEdgeList (with
  // num_nodes unset) must honor it instead of shrinking to max id + 1.
  GraphBuilder builder(10);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  BuildOptions keep;  // no self-loops: nodes 3..9 stay truly isolated
  keep.dangling_policy = DanglingPolicy::kKeep;
  auto original = builder.Build(keep);
  ASSERT_TRUE(original.ok());
  ASSERT_EQ(original->num_nodes(), 10u);
  ASSERT_EQ(original->num_edges(), 3u);

  ASSERT_TRUE(SaveEdgeList(*original, path_).ok());
  auto loaded = LoadEdgeList(path_, /*num_nodes=*/0, keep);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), 10u);
  EXPECT_EQ(loaded->num_edges(), original->num_edges());
}

TEST_F(GraphIoTest, ExplicitNodeCountOverridesHeader) {
  WriteFile("# directed edge list: 10 nodes, 1 edges\n0 1\n");
  auto graph = LoadEdgeList(path_, /*num_nodes=*/4);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 4u);
}

TEST_F(GraphIoTest, RejectsEdgeBeyondHeaderNodeCount) {
  WriteFile("# directed edge list: 3 nodes, 1 edges\n0 7\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, EmptyFileWithoutNodeCountIsAnError) {
  WriteFile("");
  auto graph = LoadEdgeList(path_);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, CommentOnlyFileWithoutNodeCountIsAnError) {
  WriteFile("# just a comment\n% another\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, EdgeFreeFileWithHeaderBuildsEmptyGraph) {
  WriteFile("# directed edge list: 5 nodes, 0 edges\n");
  auto graph = LoadEdgeList(path_);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 5u);
}

TEST_F(GraphIoTest, EmptyFileWithExplicitNodeCountStillLoads) {
  WriteFile("");
  auto graph = LoadEdgeList(path_, /*num_nodes=*/3);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 3u);
}

}  // namespace
}  // namespace tpa
