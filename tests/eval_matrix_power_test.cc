#include "eval/matrix_power.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"

namespace tpa {
namespace {

TEST(MatrixPowerTest, NnzGrowsWithPower) {
  // Figure 4(a)'s qualitative claim on a small community graph.
  DcsbmOptions options;
  options.nodes = 200;
  options.edges = 1200;
  options.blocks = 4;
  options.seed = 81;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());

  auto stats = AnalyzeMatrixPowers(*graph, 5, {0, 10, 20});
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 5u);
  for (size_t i = 1; i < stats->size(); ++i) {
    EXPECT_GE((*stats)[i].nnz, (*stats)[i - 1].nnz);
  }
}

TEST(MatrixPowerTest, CiDecreasesWithPower) {
  // Figure 4(b)'s qualitative claim: columns of (Ã^T)^i converge as i grows.
  DcsbmOptions options;
  options.nodes = 150;
  options.edges = 1500;
  options.blocks = 3;
  options.zipf_theta = 0.8;
  options.seed = 83;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());

  auto stats = AnalyzeMatrixPowers(*graph, 7, {5, 50, 100});
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->back().avg_ci, stats->front().avg_ci);
  // C_i ∈ [0, 2] always (difference of two unit L1 vectors).
  for (const auto& entry : *stats) {
    EXPECT_GE(entry.avg_ci, 0.0);
    EXPECT_LE(entry.avg_ci, 2.0 + 1e-12);
  }
}

TEST(MatrixPowerTest, FirstPowerNnzEqualsTransitionNnz) {
  // (Ã^T)^1 has exactly one nonzero per edge (entries never collide).
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto stats = AnalyzeMatrixPowers(*graph, 1, {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*stats)[0].nnz, graph->num_edges());
}

TEST(MatrixPowerTest, RejectsOversizedGraph) {
  DcsbmOptions options;
  options.nodes = 100;
  options.edges = 500;
  options.seed = 85;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());
  auto stats = AnalyzeMatrixPowers(*graph, 2, {}, /*max_dense_elements=*/100);
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

TEST(MatrixPowerTest, ValidatesArguments) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(AnalyzeMatrixPowers(*graph, 0, {}).ok());
  EXPECT_FALSE(AnalyzeMatrixPowers(*graph, 2, {5}).ok());  // seed range
}

TEST(SpyGridTest, DensitiesInUnitInterval) {
  DcsbmOptions options;
  options.nodes = 120;
  options.edges = 900;
  options.blocks = 4;
  options.seed = 87;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());
  auto grid = SpyGrid(*graph, 3, 8);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->rows(), 8u);
  double total = 0.0;
  for (size_t r = 0; r < 8; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      EXPECT_GE(grid->At(r, c), 0.0);
      EXPECT_LE(grid->At(r, c), 1.0 + 1e-12);
      total += grid->At(r, c);
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST(SpyGridTest, HigherPowerDenserGrid) {
  DcsbmOptions options;
  options.nodes = 120;
  options.edges = 700;
  options.blocks = 4;
  options.seed = 89;
  auto graph = GenerateDcsbm(options);
  ASSERT_TRUE(graph.ok());
  auto low = SpyGrid(*graph, 1, 8);
  auto high = SpyGrid(*graph, 5, 8);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  double low_total = 0.0, high_total = 0.0;
  for (size_t r = 0; r < 8; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      low_total += low->At(r, c);
      high_total += high->At(r, c);
    }
  }
  EXPECT_GT(high_total, low_total);
}

}  // namespace
}  // namespace tpa
