#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <cstdio>
#include <fstream>
#include <set>

#include "eval/oracle.h"
#include "graph/generators.h"
#include "la/vector_ops.h"
#include "method/tpa_method.h"
#include "util/table_printer.h"

namespace tpa {
namespace {

Graph TestGraph() {
  DcsbmOptions options;
  options.nodes = 300;
  options.edges = 2400;
  options.blocks = 6;
  options.seed = 91;
  auto graph = GenerateDcsbm(options);
  TPA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(PickQuerySeedsTest, DistinctAndDeterministic) {
  Graph graph = TestGraph();
  auto a = PickQuerySeeds(graph, 10, 7);
  auto b = PickQuerySeeds(graph, 10, 7);
  EXPECT_EQ(a, b);
  std::set<NodeId> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 10u);
  for (NodeId s : a) EXPECT_LT(s, graph.num_nodes());
}

TEST(PickQuerySeedsTest, ClampsToNodeCount) {
  Graph graph = TestGraph();
  auto seeds = PickQuerySeeds(graph, 100000, 1);
  EXPECT_EQ(seeds.size(), graph.num_nodes());
}

TEST(MeasurePreprocessTest, ReportsBytesAndTime) {
  Graph graph = TestGraph();
  TpaMethod method;
  auto measurement = MeasurePreprocess(method, graph, 1ull << 30);
  ASSERT_TRUE(measurement.ok());
  EXPECT_FALSE(measurement->out_of_memory);
  EXPECT_EQ(measurement->preprocessed_bytes,
            graph.num_nodes() * sizeof(double));
  EXPECT_GE(measurement->seconds, 0.0);
}

TEST(MeasurePreprocessTest, MapsResourceExhaustedToOom) {
  Graph graph = TestGraph();
  TpaMethod method;
  auto measurement = MeasurePreprocess(method, graph, /*budget_bytes=*/8);
  ASSERT_TRUE(measurement.ok());
  EXPECT_TRUE(measurement->out_of_memory);
}

TEST(MeasureOnlineTest, AveragesOverSeeds) {
  Graph graph = TestGraph();
  TpaMethod method;
  MemoryBudget budget;
  ASSERT_TRUE(method.Preprocess(graph, budget).ok());
  auto seconds = MeasureOnlineSeconds(method, {0, 1, 2});
  ASSERT_TRUE(seconds.ok());
  EXPECT_GE(*seconds, 0.0);
  EXPECT_FALSE(MeasureOnlineSeconds(method, {}).ok());
}

TEST(OracleTest, CachesExactVectors) {
  Graph graph = TestGraph();
  GroundTruthOracle oracle(graph);
  auto first = oracle.Exact(5);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(oracle.cached_queries(), 1u);
  auto second = oracle.Exact(5);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(oracle.cached_queries(), 1u);  // served from cache
  EXPECT_LT(la::L1Distance(*first, *second), 1e-15);
  EXPECT_NEAR(la::NormL1(*first), 1.0, 1e-9);
}

TEST(BenchArgsTest, ParsesAllFlags) {
  const char* argv[] = {"bench",      "--scale", "0.5",  "--seeds",
                        "12",         "--budget-mb", "64",   "--csv",
                        "/tmp/x.csv", "--datasets",  "slashdot-sim,pokec-sim"};
  auto args = BenchArgs::Parse(11, const_cast<char**>(argv));
  ASSERT_TRUE(args.ok());
  EXPECT_DOUBLE_EQ(args->scale, 0.5);
  EXPECT_EQ(args->seeds, 12u);
  EXPECT_EQ(args->budget_bytes, 64ull << 20);
  EXPECT_EQ(args->csv_path, "/tmp/x.csv");
  ASSERT_EQ(args->datasets.size(), 2u);
  EXPECT_EQ(args->datasets[0], "slashdot-sim");
}

TEST(BenchArgsTest, RejectsBadFlags) {
  {
    const char* argv[] = {"bench", "--scale", "-1"};
    EXPECT_FALSE(BenchArgs::Parse(3, const_cast<char**>(argv)).ok());
  }
  {
    const char* argv[] = {"bench", "--unknown"};
    EXPECT_FALSE(BenchArgs::Parse(2, const_cast<char**>(argv)).ok());
  }
  {
    const char* argv[] = {"bench", "--seeds"};
    EXPECT_FALSE(BenchArgs::Parse(2, const_cast<char**>(argv)).ok());
  }
}

TEST(BenchArgsTest, SelectDatasetsUsesFallback) {
  BenchArgs args;
  auto specs = args.SelectDatasets({"slashdot-sim", "google-sim"});
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].name, "slashdot-sim");

  args.datasets = {"pokec-sim"};
  specs = args.SelectDatasets({"slashdot-sim"});
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 1u);
  EXPECT_EQ((*specs)[0].name, "pokec-sim");

  args.datasets = {"bogus"};
  EXPECT_FALSE(args.SelectDatasets({}).ok());
}

TEST(EmitTableTest, WritesCsvWhenRequested) {
  TablePrinter table({"x"});
  table.AddRow({"1"});
  BenchArgs args;
  args.csv_path = ::testing::TempDir() + "/emit_table_test.csv";
  ASSERT_TRUE(EmitTable(table, args).ok());
  std::ifstream in(args.csv_path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x");
  std::remove(args.csv_path.c_str());
}

}  // namespace
}  // namespace tpa
