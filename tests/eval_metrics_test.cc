#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace tpa {
namespace {

TEST(RecallTest, PerfectMatch) {
  std::vector<double> v = {0.5, 0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(RecallAtK(v, v, 2), 1.0);
}

TEST(RecallTest, DisjointTopK) {
  std::vector<double> approx = {1.0, 0.9, 0.0, 0.0};
  std::vector<double> exact = {0.0, 0.0, 1.0, 0.9};
  EXPECT_DOUBLE_EQ(RecallAtK(approx, exact, 2), 0.0);
}

TEST(RecallTest, PartialOverlap) {
  std::vector<double> approx = {1.0, 0.9, 0.1, 0.0};
  std::vector<double> exact = {1.0, 0.0, 0.9, 0.0};
  // top-2(approx) = {0,1}, top-2(exact) = {0,2} → overlap {0} → 0.5.
  EXPECT_DOUBLE_EQ(RecallAtK(approx, exact, 2), 0.5);
}

TEST(RecallTest, OrderWithinTopKIrrelevant) {
  std::vector<double> approx = {0.3, 0.5, 0.2, 0.0};  // swapped ranks
  std::vector<double> exact = {0.5, 0.3, 0.2, 0.0};
  EXPECT_DOUBLE_EQ(RecallAtK(approx, exact, 2), 1.0);
}

TEST(RecallTest, KClampedToVectorSize) {
  std::vector<double> v = {1.0, 0.5};
  EXPECT_DOUBLE_EQ(RecallAtK(v, v, 100), 1.0);
}

TEST(RecallTest, KZeroIsVacuouslyPerfect) {
  std::vector<double> v = {1.0};
  EXPECT_DOUBLE_EQ(RecallAtK(v, v, 0), 1.0);
}

TEST(L1ErrorTest, MatchesVectorDistance) {
  std::vector<double> a = {0.5, 0.5};
  std::vector<double> b = {0.25, 0.75};
  EXPECT_DOUBLE_EQ(L1Error(a, b), 0.5);
  EXPECT_DOUBLE_EQ(L1Error(a, a), 0.0);
}

TEST(TopKAbsoluteErrorTest, AveragesOverExactTopK) {
  std::vector<double> exact = {1.0, 0.5, 0.1};
  std::vector<double> approx = {0.9, 0.6, 0.1};
  // exact top-2 = {0, 1}; errors 0.1 and 0.1 → mean 0.1.
  EXPECT_NEAR(TopKAbsoluteError(approx, exact, 2), 0.1, 1e-12);
}

TEST(TopKAbsoluteErrorTest, ZeroKIsZero) {
  std::vector<double> v = {1.0};
  EXPECT_DOUBLE_EQ(TopKAbsoluteError(v, v, 0), 0.0);
}

}  // namespace
}  // namespace tpa
