#include "method/brppr.h"

#include "core/cpi.h"
#include "la/vector_ops.h"

namespace tpa {

Status Brppr::Preprocess(const Graph& graph, MemoryBudget& budget) {
  (void)budget;
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options_.restart_probability,
                                            options_.tolerance));
  if (options_.expansion_threshold <= 0.0) {
    return InvalidArgumentError("expansion_threshold must be positive");
  }
  if (options_.max_iterations < 1) {
    return InvalidArgumentError("max_iterations must be positive");
  }
  graph_ = &graph;
  return OkStatus();
}

StatusOr<std::vector<double>> Brppr::Query(NodeId seed,
                                           QueryContext* context) {
  // No iteration boundary to poll; an expired or cancelled context fails
  // up front.
  TPA_RETURN_IF_ERROR(CheckQueryContext(context));
  if (graph_ == nullptr) {
    return FailedPreconditionError("Preprocess must be called before Query");
  }
  if (seed >= graph_->num_nodes()) {
    return OutOfRangeError("seed out of range");
  }
  const Graph& graph = *graph_;
  const NodeId n = graph.num_nodes();
  const double c = options_.restart_probability;

  std::vector<double> scores(n, 0.0);   // accumulated RWR estimate
  std::vector<double> interim(n, 0.0);  // x(i), propagating mass
  std::vector<double> parked(n, 0.0);   // mass held at inactive nodes
  std::vector<bool> active(n, false);
  std::vector<NodeId> active_list;

  active[seed] = true;
  active_list.push_back(seed);
  interim[seed] = c;
  scores[seed] += c;
  double interim_mass = c;

  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (interim_mass < options_.tolerance) break;

    // Propagate one step, but only out of active nodes.
    for (NodeId u : active_list) {
      const double x_u = interim[u];
      if (x_u == 0.0) continue;
      interim[u] = 0.0;
      const uint32_t deg = graph.OutDegree(u);
      if (deg == 0) continue;  // dangling mass evaporates, as in CPI
      const double share = (1.0 - c) * x_u / static_cast<double>(deg);
      for (NodeId v : graph.OutNeighbors(u)) next[v] += share;
    }

    // Activation sweep: active nodes keep their mass flowing; inactive ones
    // park it until the expansion threshold is crossed.
    interim_mass = 0.0;
    for (NodeId u : active_list) {
      if (next[u] == 0.0) continue;
      interim[u] = next[u];
      scores[u] += next[u];
      interim_mass += next[u];
      next[u] = 0.0;
    }
    // Scan for newly parked mass.  `next` only has nonzeros at out-neighbors
    // of previously active nodes, so iterate those neighborhoods.
    for (size_t idx = active_list.size(); idx-- > 0;) {
      const NodeId u = active_list[idx];
      for (NodeId v : graph.OutNeighbors(u)) {
        if (next[v] == 0.0) continue;
        parked[v] += next[v];
        next[v] = 0.0;
        if (!active[v] && parked[v] >= options_.expansion_threshold) {
          active[v] = true;
          active_list.push_back(v);
          // Release parked mass into the propagation.
          interim[v] += parked[v];
          scores[v] += parked[v];
          interim_mass += parked[v];
          parked[v] = 0.0;
        }
      }
    }
  }

  // Parked mass that never activated is reported where it sits — the
  // boundary approximation of the original method.
  la::Axpy(1.0, parked, scores);
  last_active_count_ = active_list.size();
  return scores;
}

}  // namespace tpa
