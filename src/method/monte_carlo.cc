#include "method/monte_carlo.h"

#include <cmath>

#include "core/cpi.h"

namespace tpa {

NodeId RandomWalkEndpoint(const Graph& graph, NodeId start, double c,
                          Rng& rng) {
  NodeId current = start;
  while (rng.NextDouble() >= c) {
    const auto neighbors = graph.OutNeighbors(current);
    if (neighbors.empty()) break;  // dangling: restart (terminate) here
    current = neighbors[rng.NextBounded(neighbors.size())];
  }
  return current;
}

StatusOr<WalkIndex> WalkIndex::Build(const Graph& graph, double c,
                                     double walks_per_edge,
                                     uint32_t walks_per_node, uint64_t seed) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(c, 1e-12));
  if (walks_per_edge < 0.0) {
    return InvalidArgumentError("walks_per_edge must be non-negative");
  }
  if (walks_per_edge == 0.0 && walks_per_node == 0) {
    return InvalidArgumentError("index would be empty");
  }

  const NodeId n = graph.num_nodes();
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const uint64_t walks =
        static_cast<uint64_t>(
            std::ceil(walks_per_edge * graph.OutDegree(v))) +
        walks_per_node;
    offsets[v + 1] = offsets[v] + walks;
  }

  std::vector<NodeId> endpoints(offsets.back());
  Rng rng(seed);
  for (NodeId v = 0; v < n; ++v) {
    for (uint64_t w = offsets[v]; w < offsets[v + 1]; ++w) {
      endpoints[w] = RandomWalkEndpoint(graph, v, c, rng);
    }
  }
  return WalkIndex(std::move(offsets), std::move(endpoints));
}

}  // namespace tpa
