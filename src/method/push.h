#ifndef TPA_METHOD_PUSH_H_
#define TPA_METHOD_PUSH_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tpa {

/// Result of a local push: reserve (settled probability mass) and residual
/// (unsettled mass), both sparse in practice but stored densely for O(1)
/// access — the graphs here comfortably fit n-sized vectors.
struct PushResult {
  std::vector<double> reserve;
  std::vector<double> residual;
  /// Number of individual push operations performed (cost accounting).
  size_t push_count = 0;
};

/// Forward push (Andersen et al., local PPR propagation), the deterministic
/// half of FORA.
///
/// Maintains the invariant
///   π(s, t) = reserve(t) + Σ_v residual(v) · π(v, t)   for all t,
/// pushing any node v while residual(v) > r_max · out_degree(v).
/// With r_max → 0 this converges to the exact RWR vector.
///
/// `c` is the restart probability.  Fails on invalid parameters or seed.
StatusOr<PushResult> ForwardPush(const Graph& graph, NodeId seed, double c,
                                 double r_max);

/// Backward push (Andersen et al.; the reverse propagation used by
/// bidirectional methods such as HubPPR).
///
/// For a target t, maintains
///   π(s, t) = reserve(s) + Σ_v π(s, v) · residual(v)   for all s,
/// pushing any node v while residual(v) > r_max.
/// `max_operations` caps total neighbor updates (0 = unlimited); hub index
/// construction uses it to bound per-target preprocessing work.  The
/// invariant holds at whatever precision the cap permits.
StatusOr<PushResult> BackwardPush(const Graph& graph, NodeId target, double c,
                                  double r_max, size_t max_operations = 0);

}  // namespace tpa

#endif  // TPA_METHOD_PUSH_H_
