#ifndef TPA_METHOD_HUBPPR_H_
#define TPA_METHOD_HUBPPR_H_

#include <optional>
#include <vector>

#include "method/push.h"
#include "method/rwr_method.h"
#include "util/random.h"

namespace tpa {

struct HubPprOptions {
  double restart_probability = 0.15;
  /// Relative error parameter; the evaluation uses 0.5 (with δ = p_fail
  /// = 1/n, matching FORA's setting).
  double epsilon = 0.5;
  /// Practical cap on the per-query forward walk count.
  uint64_t omega_cap = 2'000'000;
  /// Fraction of nodes (highest in-degree) indexed as hubs.
  double hub_fraction = 0.015;
  /// Backward-push accuracy for the hub index.
  double backward_r_max = 1e-3;
  /// Work cap per hub during index construction.
  size_t backward_max_ops = 200'000;
  uint64_t seed = 13;
};

/// HubPPR (Wang, Tang, Xiao, Yang & Li, "HubPPR: Effective indexing for
/// approximate personalized PageRank", VLDB 2016), adapted — as in the
/// paper's evaluation — to produce a full RWR vector by treating every node
/// as a target.
///
/// Preprocessing runs backward push from the highest in-degree "hub" nodes
/// and stores their reserve/residual vectors.  A query runs ω forward random
/// walks from the seed (the Monte Carlo estimate π̂) and refines every hub
/// target t through the bidirectional identity
///   π(s,t) = reserve_t(s) + Σ_v π(s,v)·residual_t(v).
/// Hubs are precisely the nodes likely to appear in top-k answers, so the
/// refinement concentrates accuracy where recall is measured.
class HubPpr final : public RwrMethod {
 public:
  explicit HubPpr(HubPprOptions options = {})
      : options_(options), rng_(options.seed) {}

  std::string_view name() const override { return "HubPPR"; }

  Status Preprocess(const Graph& graph, MemoryBudget& budget) override;
  StatusOr<std::vector<double>> Query(NodeId seed,
                                      QueryContext* context = nullptr)
      override;
  size_t PreprocessedBytes() const override;

  uint64_t omega() const { return omega_; }
  size_t num_hubs() const { return hub_ids_.size(); }

 private:
  /// Sparse backward-push snapshot for one hub target.
  struct HubEntry {
    NodeId hub;
    std::vector<std::pair<NodeId, double>> reserve;
    std::vector<std::pair<NodeId, double>> residual;
  };

  HubPprOptions options_;
  Rng rng_;
  const Graph* graph_ = nullptr;
  std::vector<NodeId> hub_ids_;
  std::vector<HubEntry> hub_index_;
  size_t hub_index_bytes_ = 0;
  uint64_t omega_ = 0;
};

}  // namespace tpa

#endif  // TPA_METHOD_HUBPPR_H_
