#ifndef TPA_METHOD_NBLIN_H_
#define TPA_METHOD_NBLIN_H_

#include <cstdint>

#include "la/dense_matrix.h"
#include "method/rwr_method.h"

namespace tpa {

struct NbLinOptions {
  double restart_probability = 0.15;
  /// Low-rank target t.  0 derives it from the graph as
  /// max(16, nodes / rank_divisor) — larger graphs get larger bases, which
  /// is what drives NB-LIN's super-linear memory in Figure 1(a).
  size_t rank = 0;
  size_t rank_divisor = 500;
  /// Subspace-iteration sweeps for the truncated SVD.
  int power_iterations = 2;
  uint64_t seed = 7;
};

/// NB-LIN (Tong, Faloutsos & Pan, "Random walk with restart: fast solutions
/// and applications").
///
/// Preprocessing computes a rank-t SVD of the normalized transition matrix,
/// Ã^T ≈ U Σ V^T, and the small core Λ = (Σ^{-1} − (1-c) V^T U)^{-1}.  By the
/// Sherman–Morrison–Woodbury identity,
///   r = c (I − (1-c) Ã^T)^{-1} q ≈ c·q + c(1-c)·U Λ (V^T q),
/// so the online phase is two thin dense matvecs — fast, but accurate only
/// as far as the spectrum is captured: the paper's Figure 7 shows NB-LIN
/// trailing every other method in recall, which this implementation
/// reproduces.  (The original also offers a partition-based variant; the
/// global low-rank variant is the one matching the evaluated drop tolerance
/// 0 configuration.)
class NbLin final : public RwrMethod {
 public:
  explicit NbLin(NbLinOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "NB-LIN"; }

  Status Preprocess(const Graph& graph, MemoryBudget& budget) override;
  StatusOr<std::vector<double>> Query(NodeId seed,
                                      QueryContext* context = nullptr)
      override;
  size_t PreprocessedBytes() const override;

  /// Rank actually used (after the divisor rule).
  size_t EffectiveRank(const Graph& graph) const;

 private:
  NbLinOptions options_;
  const Graph* graph_ = nullptr;
  la::DenseMatrix u_;            // n × t
  la::DenseMatrix v_;            // n × t
  la::DenseMatrix core_;         // t × t:  Λ
};

}  // namespace tpa

#endif  // TPA_METHOD_NBLIN_H_
