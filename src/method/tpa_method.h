#ifndef TPA_METHOD_TPA_METHOD_H_
#define TPA_METHOD_TPA_METHOD_H_

#include <optional>

#include "core/tpa.h"
#include "method/rwr_method.h"

namespace tpa {

/// RwrMethod adapter over the core Tpa implementation, so the proposed
/// method participates in the same experiment harness as the competitors.
class TpaMethod final : public RwrMethod {
 public:
  explicit TpaMethod(TpaOptions options = {}) : options_(options) {}

  /// Warm start: adopts an already-preprocessed core object (snapshot load,
  /// or a Tpa shared with non-engine code).  Preprocess then only verifies
  /// it is asked to serve the same graph the state was preprocessed against
  /// and skips the CPI recompute — queries are bitwise-identical to a
  /// freshly preprocessed engine because the adopted arrays *are* the
  /// preprocessed state.
  explicit TpaMethod(Tpa preloaded) : options_(preloaded.options()) {
    tpa_.emplace(std::move(preloaded));
  }

  std::string_view name() const override { return "TPA"; }

  Status Preprocess(const Graph& graph, MemoryBudget& budget) override {
    TPA_RETURN_IF_ERROR(ValidateTpaOptions(options_));
    // Preprocessed data is one value per node (Theorem 4), at the graph's
    // precision tier.
    TPA_RETURN_IF_ERROR(budget.Reserve(
        graph.num_nodes() *
        la::PrecisionValueBytes(graph.value_precision())));
    if (tpa_.has_value()) {
      // Preloaded path: the state is graph-specific, so reject an engine
      // that binds a different graph instead of silently serving stale
      // scores.
      if (&graph != &tpa_->graph()) {
        return FailedPreconditionError(
            "preloaded TPA state was preprocessed against a different graph");
      }
      tpa_->set_task_runner(options_.task_runner);
      return OkStatus();
    }
    TPA_ASSIGN_OR_RETURN(Tpa tpa, Tpa::Preprocess(graph, options_));
    tpa_.emplace(std::move(tpa));
    return OkStatus();
  }

  StatusOr<std::vector<double>> Query(NodeId seed,
                                      QueryContext* context =
                                          nullptr) override {
    if (!tpa_.has_value()) {
      return FailedPreconditionError("Preprocess must be called before Query");
    }
    // The single-seed personalized path is bitwise Tpa::Query and threads
    // the cooperative abort into the family propagation.
    return tpa_->QueryPersonalized({seed}, context);
  }

  /// Native SpMM path: the S family iterations for the whole batch run as
  /// one multi-vector chain (Tpa::QueryBatch), bitwise-identical per seed
  /// to Query.
  StatusOr<la::DenseBlock> QueryBatchDense(
      std::span<const NodeId> seeds,
      std::span<QueryContext* const> contexts = {}) override {
    if (!tpa_.has_value()) {
      return FailedPreconditionError("Preprocess must be called before Query");
    }
    return tpa_->QueryBatch(seeds, contexts);
  }

  bool SupportsBatchQuery() const override { return true; }

  /// Native bound-driven path: the family CPI under Cpi::RunTopKT with the
  /// stranger tail as the merge baseline, at the graph's tier.
  StatusOr<TopKQueryResult> QueryTopK(NodeId seed, int k,
                                      const TopKQueryOptions& options = {},
                                      QueryContext* context =
                                          nullptr) override {
    if (!tpa_.has_value()) {
      return FailedPreconditionError("Preprocess must be called before Query");
    }
    if (seed >= tpa_->stranger_order().size()) {
      return OutOfRangeError("seed node out of range");
    }
    if (k < 0) return InvalidArgumentError("k must be non-negative");
    return tpa_->QueryTopK(seed, k, options, context);
  }

  bool SupportsTopKQuery() const override { return true; }

  /// TPA runs natively at either tier: on an fp32 graph every propagation
  /// buffer, the stranger tail, and the returned scores stay fp32.
  bool SupportsPrecision(la::Precision) const override { return true; }

  StatusOr<std::vector<float>> QueryF32(NodeId seed,
                                        QueryContext* context =
                                            nullptr) override {
    if (!tpa_.has_value()) {
      return FailedPreconditionError("Preprocess must be called before Query");
    }
    if (tpa_->precision() != la::Precision::kFloat32) {
      return FailedPreconditionError("graph is not materialized at fp32");
    }
    return tpa_->QueryPersonalizedF({seed}, context);
  }

  StatusOr<la::DenseBlockF> QueryBatchDenseF32(
      std::span<const NodeId> seeds,
      std::span<QueryContext* const> contexts = {}) override {
    if (!tpa_.has_value()) {
      return FailedPreconditionError("Preprocess must be called before Query");
    }
    if (tpa_->precision() != la::Precision::kFloat32) {
      return FailedPreconditionError("graph is not materialized at fp32");
    }
    return tpa_->QueryBatchF(seeds, contexts);
  }

  void SetTaskRunner(la::TaskRunner* runner) override {
    options_.task_runner = runner;
    if (tpa_.has_value()) tpa_->set_task_runner(runner);
  }

  size_t PreprocessedBytes() const override {
    return tpa_.has_value() ? tpa_->PreprocessedBytes() : 0;
  }

  /// Tpa::Query is const over immutable preprocessed state.
  bool SupportsConcurrentQuery() const override { return true; }

  /// The wrapped core object (null before Preprocess) — lets tests observe
  /// serving internals like the workspace pool through an engine that owns
  /// the method.
  const Tpa* tpa() const { return tpa_.has_value() ? &*tpa_ : nullptr; }

 private:
  TpaOptions options_;
  std::optional<Tpa> tpa_;
};

}  // namespace tpa

#endif  // TPA_METHOD_TPA_METHOD_H_
