#ifndef TPA_METHOD_FORA_H_
#define TPA_METHOD_FORA_H_

#include <optional>

#include "method/monte_carlo.h"
#include "method/push.h"
#include "method/rwr_method.h"

namespace tpa {

struct ForaOptions {
  double restart_probability = 0.15;
  /// Relative error target ε of the (ε, δ, p_fail) guarantee.  The paper's
  /// evaluation uses (δ, p_fail, ε) = (1/n, 1/n, 0.5).
  double epsilon = 0.5;
  /// δ and p_fail; 0 selects the evaluation's 1/n.
  double delta = 0.0;
  double p_fail = 0.0;
  /// Practical cap on ω (the theoretical walk count), keeping single-core
  /// query times proportional to the paper's relative measurements.
  uint64_t omega_cap = 4'000'000;
  uint64_t seed = 11;
};

/// FORA (Wang, Yang, Xiao, Wei & Yang, "FORA: Simple and effective
/// approximate single-source personalized PageRank", KDD 2017), in its
/// indexed (FORA+) form.
///
/// Preprocessing stores, for every node v, enough random-walk destinations
/// to cover the worst-case residual forward push can leave on v
/// (⌈ω·r_max·d(v)⌉ + 1 endpoints).  A query runs forward push with
/// threshold r_max and then converts each leftover residual into stored walk
/// endpoints:  π̂(t) = reserve(t) + Σ_v residual(v) · freq_v(t).
/// r_max balances push cost (∝ 1/(c·r_max)) against walk cost (∝ ω·r_max·m).
///
/// The walk index is what makes FORA's preprocessed data large (the 15–40×
/// TPA gap in Figure 1(a)): it is proportional to ω·r_max·m, whereas TPA
/// stores one double per node.
class Fora final : public RwrMethod {
 public:
  explicit Fora(ForaOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "FORA"; }

  Status Preprocess(const Graph& graph, MemoryBudget& budget) override;
  StatusOr<std::vector<double>> Query(NodeId seed,
                                      QueryContext* context = nullptr)
      override;
  size_t PreprocessedBytes() const override;

  /// Derived parameters (visible for tests and experiment logs).
  uint64_t omega() const { return omega_; }
  double r_max() const { return r_max_; }

 private:
  ForaOptions options_;
  const Graph* graph_ = nullptr;
  std::optional<WalkIndex> index_;
  uint64_t omega_ = 0;
  double r_max_ = 0.0;
};

}  // namespace tpa

#endif  // TPA_METHOD_FORA_H_
