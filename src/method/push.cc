#include "method/push.h"

#include <deque>

#include "core/cpi.h"

namespace tpa {

StatusOr<PushResult> ForwardPush(const Graph& graph, NodeId seed, double c,
                                 double r_max) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(c, 1e-12));
  if (r_max <= 0.0) return InvalidArgumentError("r_max must be positive");
  if (seed >= graph.num_nodes()) return OutOfRangeError("seed out of range");

  PushResult out;
  out.reserve.assign(graph.num_nodes(), 0.0);
  out.residual.assign(graph.num_nodes(), 0.0);
  out.residual[seed] = 1.0;

  std::deque<NodeId> queue{seed};
  std::vector<bool> queued(graph.num_nodes(), false);
  queued[seed] = true;

  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    queued[u] = false;

    const uint32_t deg = graph.OutDegree(u);
    const double r_u = out.residual[u];
    if (deg == 0) {
      // Dangling: mass restarts entirely (self-absorbed reserve).
      out.reserve[u] += r_u;
      out.residual[u] = 0.0;
      continue;
    }
    if (r_u <= r_max * deg) continue;

    ++out.push_count;
    out.reserve[u] += c * r_u;
    out.residual[u] = 0.0;
    const double share = (1.0 - c) * r_u / static_cast<double>(deg);
    for (NodeId v : graph.OutNeighbors(u)) {
      out.residual[v] += share;
      const uint32_t deg_v = graph.OutDegree(v);
      if (!queued[v] && out.residual[v] > r_max * (deg_v == 0 ? 1 : deg_v)) {
        queue.push_back(v);
        queued[v] = true;
      }
    }
  }
  return out;
}

StatusOr<PushResult> BackwardPush(const Graph& graph, NodeId target, double c,
                                  double r_max, size_t max_operations) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(c, 1e-12));
  if (r_max <= 0.0) return InvalidArgumentError("r_max must be positive");
  if (target >= graph.num_nodes()) {
    return OutOfRangeError("target out of range");
  }

  PushResult out;
  out.reserve.assign(graph.num_nodes(), 0.0);
  out.residual.assign(graph.num_nodes(), 0.0);
  out.residual[target] = 1.0;

  std::deque<NodeId> queue{target};
  std::vector<bool> queued(graph.num_nodes(), false);
  queued[target] = true;
  size_t operations = 0;

  while (!queue.empty()) {
    if (max_operations != 0 && operations >= max_operations) break;
    const NodeId v = queue.front();
    queue.pop_front();
    queued[v] = false;

    const double r_v = out.residual[v];
    if (r_v <= r_max) continue;

    ++out.push_count;
    out.reserve[v] += c * r_v;
    out.residual[v] = 0.0;
    // Mass flows backwards: an in-neighbor w reaches v through one of
    // out_degree(w) outgoing edges.
    for (NodeId w : graph.InNeighbors(v)) {
      ++operations;
      out.residual[w] +=
          (1.0 - c) * r_v / static_cast<double>(graph.OutDegree(w));
      if (!queued[w] && out.residual[w] > r_max) {
        queue.push_back(w);
        queued[w] = true;
      }
    }
  }
  return out;
}

}  // namespace tpa
