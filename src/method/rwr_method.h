#ifndef TPA_METHOD_RWR_METHOD_H_
#define TPA_METHOD_RWR_METHOD_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "la/dense_block.h"
#include "la/precision.h"
#include "la/task_runner.h"
#include "la/topk.h"
#include "util/memory_budget.h"
#include "util/query_context.h"
#include "util/status.h"

namespace tpa {

/// Common interface of every RWR solver in the evaluation (TPA and all six
/// competitors).
///
/// Lifecycle: construct → Preprocess(graph, budget) once per graph →
/// Query(seed) per seed.  Preprocess may fail with RESOURCE_EXHAUSTED when
/// the method's (peak) preprocessing footprint exceeds the budget — the
/// experiments render that as the paper's "out of memory" missing bars.
/// Implementations borrow the graph; it must outlive the method object.
class RwrMethod {
 public:
  virtual ~RwrMethod() = default;

  /// Display name used in experiment tables, e.g. "TPA", "BEAR-APPROX".
  virtual std::string_view name() const = 0;

  /// One-time preprocessing.  Methods without a preprocessing phase
  /// implement this as a cheap graph binding.
  virtual Status Preprocess(const Graph& graph, MemoryBudget& budget) = 0;

  /// Full approximate (or exact) RWR score vector for `seed`.
  /// Non-const: Monte Carlo methods advance their RNG state.
  ///
  /// Every query entry point takes an optional QueryContext — the
  /// engines' cooperative deadline/cancel channel.  Methods with
  /// iteration-shaped hot loops (TPA, power iteration) poll it at
  /// iteration boundaries and, on abort, return the partial iterate with
  /// the context's certified error bound set; methods without a natural
  /// poll point at least check it on entry (CheckQueryContext) so an
  /// already-expired query fails fast.  A null context costs nothing.
  virtual StatusOr<std::vector<double>> Query(NodeId seed,
                                              QueryContext* context =
                                                  nullptr) = 0;

  /// Dense score vectors for a whole batch of seeds at once; vector b of
  /// the block is the result for seeds[b].  The base implementation loops
  /// Query per seed (identical results, no speedup).  Methods that
  /// override SupportsBatchQuery() provide a native multi-vector path that
  /// shares one matrix traversal across the batch and must keep each
  /// vector bitwise-identical to the corresponding Query(seed).  Fails on
  /// an empty batch; a per-seed failure (e.g. out of range) fails the
  /// whole call — the QueryEngine validates seeds before dispatching.
  /// `contexts`, when non-empty, aligns with `seeds` (null entries allowed)
  /// and aborts only its own seed's accumulation in native batch paths.
  virtual StatusOr<la::DenseBlock> QueryBatchDense(
      std::span<const NodeId> seeds,
      std::span<QueryContext* const> contexts = {});

  /// True when QueryBatchDense runs natively batched (one shared SpMM sweep
  /// instead of B matvec sweeps) and is therefore worth dispatching whole
  /// seed groups to.  Conservative default: false (the base QueryBatchDense
  /// still works, it just offers no advantage over per-seed fan-out).
  virtual bool SupportsBatchQuery() const { return false; }

  /// Top k of the seed's score vector at the method's serving tier: the
  /// ranking always equals TopKScores over the corresponding full query
  /// (score descending, ties toward the smaller node id), and with early
  /// termination disabled (see TopKQueryOptions) the scores are bitwise
  /// that path's too.  The base implementation runs the full Query and
  /// sorts — identical results, no speedup; methods that override
  /// SupportsTopKQuery() provide a bound-driven native path that can stop
  /// as soon as the ranking is certified and never materialize the dense
  /// vector.  Fails on an out-of-range seed or negative k.
  /// A context abort always fails a top-k query (kCancelled /
  /// kDeadlineExceeded): an uncertified partial ranking carries no usable
  /// error bound, so top-k never returns degraded results.
  virtual StatusOr<TopKQueryResult> QueryTopK(
      NodeId seed, int k, const TopKQueryOptions& options = {},
      QueryContext* context = nullptr);

  /// True when QueryTopK runs natively bound-driven (cheaper than a full
  /// query) and is therefore worth routing the engines' top-k requests to.
  /// Conservative default: false.
  virtual bool SupportsTopKQuery() const { return false; }

  /// True when the method can run against a graph materialized at the given
  /// value-precision tier (Graph::value_precision).  Conservative default:
  /// fp64 only — the QueryEngine refuses to build an engine over an fp32
  /// graph for methods that do not opt in, instead of letting the typed CSR
  /// accessors CHECK-fail mid-preprocess.
  virtual bool SupportsPrecision(la::Precision precision) const {
    return precision == la::Precision::kFloat64;
  }

  /// Native fp32 score vector for `seed` — the halved-footprint serving
  /// path: no fp64 dense vector is materialized anywhere between the seed
  /// and the returned scores.  Only meaningful for methods that return true
  /// from SupportsPrecision(kFloat32) and were preprocessed against an fp32
  /// graph; the default fails with UNIMPLEMENTED.
  virtual StatusOr<std::vector<float>> QueryF32(NodeId seed,
                                                QueryContext* context =
                                                    nullptr);

  /// fp32 flavor of QueryBatchDense; vector b must be bitwise-identical to
  /// QueryF32(seeds[b]).  Default: UNIMPLEMENTED.
  virtual StatusOr<la::DenseBlockF> QueryBatchDenseF32(
      std::span<const NodeId> seeds,
      std::span<QueryContext* const> contexts = {});

  /// Installs a fork-join runner that batched queries may use to partition
  /// their dense propagation sweeps across threads (the QueryEngine passes
  /// its ThreadPool in; results stay bitwise-identical — see
  /// CsrMatrix::SpMmTransposeParallel).  The runner must outlive the method
  /// or be cleared with nullptr first.  Default: ignored.
  virtual void SetTaskRunner(la::TaskRunner* runner) { (void)runner; }

  /// Logical size of the preprocessed data retained for the online phase
  /// (Figure 1(a) / Figure 10(a) metric).  Zero before Preprocess.
  virtual size_t PreprocessedBytes() const = 0;

  /// True when concurrent Query calls against the shared preprocessed state
  /// are safe (deterministic methods whose online phase only reads).  The
  /// QueryEngine serializes Query for methods that return false (e.g. Monte
  /// Carlo samplers advancing an RNG).  Conservative default: false.
  virtual bool SupportsConcurrentQuery() const { return false; }
};

}  // namespace tpa

#endif  // TPA_METHOD_RWR_METHOD_H_
