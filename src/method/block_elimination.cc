#include "method/block_elimination.h"

#include <cmath>

#include "la/lu.h"
#include "util/check.h"

namespace tpa {

StatusOr<HPartition> BuildHPartition(const Graph& graph,
                                     double restart_probability,
                                     const SlashBurnOptions& slashburn) {
  if (!(restart_probability > 0.0 && restart_probability < 1.0)) {
    return InvalidArgumentError("restart probability must be in (0,1)");
  }
  TPA_ASSIGN_OR_RETURN(HubSpokeOrdering ordering, SlashBurn(graph, slashburn));

  const NodeId n = graph.num_nodes();
  const NodeId n1 = ordering.num_spokes;
  const NodeId n2 = ordering.num_hubs();
  const double decay = 1.0 - restart_probability;

  std::vector<la::Triplet> t11, t12, t21, t22;
  // Identity diagonal.
  for (NodeId p = 0; p < n; ++p) {
    if (p < n1) {
      t11.push_back({p, p, 1.0});
    } else {
      t22.push_back({p - n1, p - n1, 1.0});
    }
  }
  // −(1-c)·Ã^T: edge u→v contributes −(1-c)/outdeg(u) at (new(v), new(u)).
  for (NodeId u = 0; u < n; ++u) {
    const auto neighbors = graph.OutNeighbors(u);
    if (neighbors.empty()) continue;
    const double value = -decay / static_cast<double>(neighbors.size());
    const NodeId pu = ordering.new_of_old[u];
    for (NodeId v : neighbors) {
      const NodeId pv = ordering.new_of_old[v];
      if (pv < n1 && pu < n1) {
        t11.push_back({pv, pu, value});
      } else if (pv < n1) {
        t12.push_back({pv, pu - n1, value});
      } else if (pu < n1) {
        t21.push_back({pv - n1, pu, value});
      } else {
        t22.push_back({pv - n1, pu - n1, value});
      }
    }
  }

  HPartition partition;
  TPA_ASSIGN_OR_RETURN(partition.h11,
                       la::SparseMatrix::FromTriplets(n1, n1, std::move(t11)));
  TPA_ASSIGN_OR_RETURN(partition.h12,
                       la::SparseMatrix::FromTriplets(n1, n2, std::move(t12)));
  TPA_ASSIGN_OR_RETURN(partition.h21,
                       la::SparseMatrix::FromTriplets(n2, n1, std::move(t21)));
  TPA_ASSIGN_OR_RETURN(partition.h22,
                       la::SparseMatrix::FromTriplets(n2, n2, std::move(t22)));
  partition.ordering = std::move(ordering);
  return partition;
}

StatusOr<la::SparseMatrix> InvertBlockDiagonal(
    const la::SparseMatrix& h11,
    const std::vector<std::pair<NodeId, NodeId>>& blocks, double drop_tolerance,
    MemoryBudget& budget) {
  if (drop_tolerance < 0.0) {
    return InvalidArgumentError("drop_tolerance must be non-negative");
  }
  std::vector<la::Triplet> triplets;
  size_t reserved_storage = 0;

  for (const auto& [begin, end] : blocks) {
    const uint32_t b = end - begin;
    TPA_CHECK_GT(b, 0u);
    const size_t scratch = 2 * static_cast<size_t>(b) * b * sizeof(double);
    TPA_RETURN_IF_ERROR(budget.Reserve(scratch));

    // Extract the dense block; H11's block-diagonality guarantees all
    // nonzeros of these rows fall inside [begin, end).
    la::DenseMatrix dense(b, b);
    for (uint32_t r = begin; r < end; ++r) {
      const auto cols = h11.RowIndices(r);
      const auto vals = h11.RowValues(r);
      for (size_t e = 0; e < cols.size(); ++e) {
        if (cols[e] < begin || cols[e] >= end) {
          budget.Release(scratch);
          return InternalError(
              "H11 is not block diagonal: SlashBurn ordering violated");
        }
        dense.At(r - begin, cols[e] - begin) = vals[e];
      }
    }

    auto lu = la::LuDecomposition::Compute(dense);
    if (!lu.ok()) {
      budget.Release(scratch);
      return lu.status();
    }
    la::DenseMatrix inverse = lu->Inverse();

    size_t kept = 0;
    for (uint32_t r = 0; r < b; ++r) {
      for (uint32_t c = 0; c < b; ++c) {
        const double value = inverse.At(r, c);
        if (value != 0.0 && std::abs(value) >= drop_tolerance) {
          triplets.push_back({begin + r, begin + c, value});
          ++kept;
        }
      }
    }
    budget.Release(scratch);
    const size_t stored = kept * sizeof(la::Triplet);
    TPA_RETURN_IF_ERROR(budget.Reserve(stored));
    reserved_storage += stored;
  }

  auto result = la::SparseMatrix::FromTriplets(h11.rows(), h11.cols(),
                                               std::move(triplets));
  if (!result.ok()) {
    budget.Release(reserved_storage);
    return result.status();
  }
  // Swap the triplet reservation for the final CSR footprint.
  budget.Release(reserved_storage);
  TPA_RETURN_IF_ERROR(budget.Reserve(result->SizeBytes()));
  return result;
}

}  // namespace tpa
