#include "method/hubppr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "method/monte_carlo.h"

namespace tpa {

Status HubPpr::Preprocess(const Graph& graph, MemoryBudget& budget) {
  if (options_.epsilon <= 0.0 || options_.epsilon >= 1.0) {
    return InvalidArgumentError("epsilon must be in (0,1)");
  }
  if (options_.hub_fraction < 0.0 || options_.hub_fraction > 1.0) {
    return InvalidArgumentError("hub_fraction must be in [0,1]");
  }
  graph_ = &graph;
  const double n = static_cast<double>(graph.num_nodes());

  // Same ω schedule as FORA's guarantee with δ = p_fail = 1/n.
  const double eps = options_.epsilon;
  const double omega_theory =
      (2.0 * eps / 3.0 + 2.0) * std::log(2.0 * n) / (eps * eps) * n;
  omega_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::min(
             omega_theory, static_cast<double>(options_.omega_cap))));

  // Hub selection: top in-degree nodes (the nodes queries rank highest).
  const size_t num_hubs = static_cast<size_t>(options_.hub_fraction * n);
  std::vector<NodeId> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<long>(
                                        std::min(num_hubs, order.size())),
                    order.end(), [&graph](NodeId a, NodeId b) {
                      if (graph.InDegree(a) != graph.InDegree(b)) {
                        return graph.InDegree(a) > graph.InDegree(b);
                      }
                      return a < b;
                    });
  order.resize(std::min(num_hubs, order.size()));
  hub_ids_ = order;

  hub_index_.clear();
  hub_index_bytes_ = 0;
  for (NodeId hub : hub_ids_) {
    TPA_ASSIGN_OR_RETURN(
        PushResult push,
        BackwardPush(graph, hub, options_.restart_probability,
                     options_.backward_r_max, options_.backward_max_ops));
    HubEntry entry;
    entry.hub = hub;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (push.reserve[v] != 0.0) {
        entry.reserve.emplace_back(v, push.reserve[v]);
      }
      if (push.residual[v] != 0.0) {
        entry.residual.emplace_back(v, push.residual[v]);
      }
    }
    const size_t bytes =
        (entry.reserve.size() + entry.residual.size()) *
        (sizeof(NodeId) + sizeof(double));
    TPA_RETURN_IF_ERROR(budget.Reserve(bytes));
    hub_index_bytes_ += bytes;
    hub_index_.push_back(std::move(entry));
  }
  return OkStatus();
}

StatusOr<std::vector<double>> HubPpr::Query(NodeId seed,
                                            QueryContext* context) {
  // No iteration boundary to poll; an expired or cancelled context fails
  // up front.
  TPA_RETURN_IF_ERROR(CheckQueryContext(context));
  if (graph_ == nullptr) {
    return FailedPreconditionError("Preprocess must be called before Query");
  }
  if (seed >= graph_->num_nodes()) {
    return OutOfRangeError("seed out of range");
  }
  const Graph& graph = *graph_;

  // Forward Monte Carlo estimate: endpoint frequency of restart walks.
  std::vector<double> scores(graph.num_nodes(), 0.0);
  const double weight = 1.0 / static_cast<double>(omega_);
  for (uint64_t w = 0; w < omega_; ++w) {
    scores[RandomWalkEndpoint(graph, seed, options_.restart_probability,
                              rng_)] += weight;
  }

  // Bidirectional refinement for the indexed hub targets:
  // π(s,t) = reserve_t(s) + Σ_v π̂(s,v)·residual_t(v).
  for (const HubEntry& entry : hub_index_) {
    double estimate = 0.0;
    for (const auto& [v, value] : entry.reserve) {
      if (v == seed) {
        estimate += value;
        break;  // reserve list is sorted by node id; seed appears once
      }
    }
    for (const auto& [v, value] : entry.residual) {
      estimate += scores[v] * value;
    }
    scores[entry.hub] = estimate;
  }
  return scores;
}

size_t HubPpr::PreprocessedBytes() const {
  return hub_index_bytes_ + hub_ids_.size() * sizeof(NodeId);
}

}  // namespace tpa
