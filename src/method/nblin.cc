#include "method/nblin.h"

#include <algorithm>

#include "core/cpi.h"
#include "la/lu.h"
#include "la/truncated_svd.h"
#include "la/vector_ops.h"

namespace tpa {

size_t NbLin::EffectiveRank(const Graph& graph) const {
  if (options_.rank != 0) return options_.rank;
  const size_t derived =
      graph.num_nodes() / std::max<size_t>(1, options_.rank_divisor);
  return std::min<size_t>(std::max<size_t>(16, derived), graph.num_nodes());
}

Status NbLin::Preprocess(const Graph& graph, MemoryBudget& budget) {
  TPA_RETURN_IF_ERROR(
      ValidateCpiParameters(options_.restart_probability, 1e-12));
  graph_ = &graph;
  const size_t n = graph.num_nodes();
  const size_t t = EffectiveRank(graph);

  // Peak footprint: start basis + two iteration workspaces + U + V
  // (≈ 5 n·t doubles) plus the t×t core.  Reserve before any allocation so
  // over-budget graphs fail exactly like the paper's OOM runs.
  const size_t peak_bytes = (5 * n * t + t * t) * sizeof(double);
  TPA_RETURN_IF_ERROR(budget.Reserve(peak_bytes));

  la::LinearOperator a{
      n, n,
      [&graph](const std::vector<double>& x, std::vector<double>& y) {
        graph.MultiplyTranspose(x, y);  // y = Ã^T x
      }};
  // (Ã^T)^T = Ã: y[u] = Σ_{u→v} x[v] / outdeg(u).
  la::LinearOperator at{
      n, n,
      [&graph](const std::vector<double>& x, std::vector<double>& y) {
        y.assign(graph.num_nodes(), 0.0);
        for (NodeId u = 0; u < graph.num_nodes(); ++u) {
          const auto neighbors = graph.OutNeighbors(u);
          if (neighbors.empty()) continue;
          double sum = 0.0;
          for (NodeId v : neighbors) sum += x[v];
          y[u] = sum / static_cast<double>(neighbors.size());
        }
      }};

  la::TruncatedSvdOptions svd_options;
  svd_options.rank = t;
  svd_options.power_iterations = options_.power_iterations;
  svd_options.seed = options_.seed;
  auto svd = la::ComputeTruncatedSvd(a, at, svd_options);
  if (!svd.ok()) {
    budget.Release(peak_bytes);
    return svd.status();
  }

  // Core Λ = (Σ^{-1} − (1-c) V^T U)^{-1}  (t × t).
  la::DenseMatrix vtu = svd->v.Transposed().MatMul(svd->u);
  la::DenseMatrix small(t, t);
  for (size_t i = 0; i < t; ++i) {
    for (size_t j = 0; j < t; ++j) {
      small.At(i, j) = -(1.0 - options_.restart_probability) * vtu.At(i, j);
    }
    if (svd->singular[i] <= 0.0) {
      budget.Release(peak_bytes);
      return FailedPreconditionError("zero singular value; lower the rank");
    }
    small.At(i, i) += 1.0 / svd->singular[i];
  }
  auto lu = la::LuDecomposition::Compute(small);
  if (!lu.ok()) {
    budget.Release(peak_bytes);
    return lu.status();
  }
  core_ = lu->Inverse();
  u_ = std::move(svd->u);
  v_ = std::move(svd->v);

  // Keep only the stored factors accounted; release the scratch part.
  budget.Release(peak_bytes);
  TPA_RETURN_IF_ERROR(budget.Reserve(PreprocessedBytes()));
  return OkStatus();
}

StatusOr<std::vector<double>> NbLin::Query(NodeId seed,
                                           QueryContext* context) {
  // No iteration boundary to poll; an expired or cancelled context fails
  // up front.
  TPA_RETURN_IF_ERROR(CheckQueryContext(context));
  if (graph_ == nullptr || core_.rows() == 0) {
    return FailedPreconditionError("Preprocess must be called before Query");
  }
  if (seed >= graph_->num_nodes()) {
    return OutOfRangeError("seed out of range");
  }
  const double c = options_.restart_probability;
  const size_t t = core_.rows();

  // V^T q is just row `seed` of V.
  std::vector<double> vtq(t);
  for (size_t j = 0; j < t; ++j) vtq[j] = v_.At(seed, j);
  std::vector<double> core_vtq = core_.MatVec(vtq);
  std::vector<double> scores = u_.MatVec(core_vtq);
  la::Scale(c * (1.0 - c), scores);
  scores[seed] += c;
  return scores;
}

size_t NbLin::PreprocessedBytes() const {
  return u_.SizeBytes() + v_.SizeBytes() + core_.SizeBytes();
}

}  // namespace tpa
