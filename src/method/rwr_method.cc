#include "method/rwr_method.h"

#include "la/vector_ops.h"

namespace tpa {

StatusOr<TopKQueryResult> RwrMethod::QueryTopK(NodeId seed, int k,
                                               const TopKQueryOptions&,
                                               QueryContext* context) {
  if (k < 0) return InvalidArgumentError("k must be non-negative");
  // Full-vector fallback: no bounds to terminate on, so the options'
  // early-termination flag is moot — the ranking and scores are exactly the
  // dense path's either way.  An abort mid-query fails the call: top-k
  // never returns a partial ranking.
  TPA_ASSIGN_OR_RETURN(std::vector<double> scores, Query(seed, context));
  if (context != nullptr && context->aborted) return context->AbortStatus();
  TopKQueryResult result;
  const std::vector<size_t> idx =
      la::TopKIndices(scores, static_cast<size_t>(k));
  result.top.reserve(idx.size());
  for (size_t i : idx) {
    result.top.push_back({static_cast<NodeId>(i), scores[i]});
  }
  return result;
}

StatusOr<la::DenseBlock> RwrMethod::QueryBatchDense(
    std::span<const NodeId> seeds, std::span<QueryContext* const> contexts) {
  if (seeds.empty()) {
    return InvalidArgumentError("seed batch must be non-empty");
  }
  if (!contexts.empty() && contexts.size() != seeds.size()) {
    return InvalidArgumentError(
        "contexts must be empty or align with the seed batch");
  }
  la::DenseBlock block;
  for (size_t b = 0; b < seeds.size(); ++b) {
    QueryContext* context = contexts.empty() ? nullptr : contexts[b];
    TPA_ASSIGN_OR_RETURN(std::vector<double> scores,
                         Query(seeds[b], context));
    if (b == 0) block.Resize(scores.size(), seeds.size());
    if (scores.size() != block.rows()) {
      return InternalError("Query returned inconsistently sized vectors");
    }
    block.SetVector(b, scores);
  }
  return block;
}

StatusOr<std::vector<float>> RwrMethod::QueryF32(NodeId seed,
                                                 QueryContext* context) {
  (void)seed;
  (void)context;
  return UnimplementedError("method has no fp32 query path");
}

StatusOr<la::DenseBlockF> RwrMethod::QueryBatchDenseF32(
    std::span<const NodeId> seeds, std::span<QueryContext* const> contexts) {
  if (seeds.empty()) {
    return InvalidArgumentError("seed batch must be non-empty");
  }
  if (!contexts.empty() && contexts.size() != seeds.size()) {
    return InvalidArgumentError(
        "contexts must be empty or align with the seed batch");
  }
  la::DenseBlockF block;
  for (size_t b = 0; b < seeds.size(); ++b) {
    QueryContext* context = contexts.empty() ? nullptr : contexts[b];
    TPA_ASSIGN_OR_RETURN(std::vector<float> scores,
                         QueryF32(seeds[b], context));
    if (b == 0) block.Resize(scores.size(), seeds.size());
    if (scores.size() != block.rows()) {
      return InternalError("QueryF32 returned inconsistently sized vectors");
    }
    block.SetVector(b, scores);
  }
  return block;
}

}  // namespace tpa
