#include "method/rwr_method.h"

namespace tpa {

StatusOr<la::DenseBlock> RwrMethod::QueryBatchDense(
    std::span<const NodeId> seeds) {
  if (seeds.empty()) {
    return InvalidArgumentError("seed batch must be non-empty");
  }
  la::DenseBlock block;
  for (size_t b = 0; b < seeds.size(); ++b) {
    TPA_ASSIGN_OR_RETURN(std::vector<double> scores, Query(seeds[b]));
    if (b == 0) block.Resize(scores.size(), seeds.size());
    if (scores.size() != block.rows()) {
      return InternalError("Query returned inconsistently sized vectors");
    }
    block.SetVector(b, scores);
  }
  return block;
}

StatusOr<std::vector<float>> RwrMethod::QueryF32(NodeId seed) {
  (void)seed;
  return UnimplementedError("method has no fp32 query path");
}

StatusOr<la::DenseBlockF> RwrMethod::QueryBatchDenseF32(
    std::span<const NodeId> seeds) {
  if (seeds.empty()) {
    return InvalidArgumentError("seed batch must be non-empty");
  }
  la::DenseBlockF block;
  for (size_t b = 0; b < seeds.size(); ++b) {
    TPA_ASSIGN_OR_RETURN(std::vector<float> scores, QueryF32(seeds[b]));
    if (b == 0) block.Resize(scores.size(), seeds.size());
    if (scores.size() != block.rows()) {
      return InternalError("QueryF32 returned inconsistently sized vectors");
    }
    block.SetVector(b, scores);
  }
  return block;
}

}  // namespace tpa
