#include "method/rwr_method.h"

namespace tpa {

StatusOr<la::DenseBlock> RwrMethod::QueryBatchDense(
    std::span<const NodeId> seeds) {
  if (seeds.empty()) {
    return InvalidArgumentError("seed batch must be non-empty");
  }
  la::DenseBlock block;
  for (size_t b = 0; b < seeds.size(); ++b) {
    TPA_ASSIGN_OR_RETURN(std::vector<double> scores, Query(seeds[b]));
    if (b == 0) block.Resize(scores.size(), seeds.size());
    if (scores.size() != block.rows()) {
      return InternalError("Query returned inconsistently sized vectors");
    }
    block.SetVector(b, scores);
  }
  return block;
}

}  // namespace tpa
