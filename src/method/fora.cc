#include "method/fora.h"

#include <algorithm>
#include <cmath>

namespace tpa {

Status Fora::Preprocess(const Graph& graph, MemoryBudget& budget) {
  if (options_.epsilon <= 0.0 || options_.epsilon >= 1.0) {
    return InvalidArgumentError("epsilon must be in (0,1)");
  }
  graph_ = &graph;
  const double n = static_cast<double>(graph.num_nodes());
  const double m =
      static_cast<double>(std::max<uint64_t>(1, graph.num_edges()));
  const double delta = options_.delta > 0.0 ? options_.delta : 1.0 / n;
  const double p_fail = options_.p_fail > 0.0 ? options_.p_fail : 1.0 / n;
  const double eps = options_.epsilon;

  // ω = (2ε/3 + 2)·ln(2/p_fail) / (ε²·δ)  (FORA Theorem 1), capped.
  const double omega_theory =
      (2.0 * eps / 3.0 + 2.0) * std::log(2.0 / p_fail) / (eps * eps * delta);
  omega_ = static_cast<uint64_t>(std::min(
      omega_theory, static_cast<double>(options_.omega_cap)));
  omega_ = std::max<uint64_t>(omega_, 1);

  // Cost-balancing threshold: push work ≈ 1/(c·r_max) vs walk work
  // ≈ ω·r_max·m  ⇒  r_max = 1/sqrt(c·ω·m).
  r_max_ = 1.0 / std::sqrt(options_.restart_probability *
                           static_cast<double>(omega_) * m);

  // Index enough endpoints per node for the worst residual the push can
  // leave there: residual(v) ≤ r_max·d(v)  ⇒  ⌈ω·r_max·d(v)⌉ (+1 slack).
  auto index = WalkIndex::Build(graph, options_.restart_probability,
                                /*walks_per_edge=*/r_max_ *
                                    static_cast<double>(omega_),
                                /*walks_per_node=*/1, options_.seed);
  TPA_RETURN_IF_ERROR(index.status());
  TPA_RETURN_IF_ERROR(budget.Reserve(index->SizeBytes()));
  index_.emplace(std::move(index).value());
  return OkStatus();
}

StatusOr<std::vector<double>> Fora::Query(NodeId seed,
                                          QueryContext* context) {
  // Push/walk methods have no iteration boundary to poll; an expired or
  // cancelled context fails up front.
  TPA_RETURN_IF_ERROR(CheckQueryContext(context));
  if (!index_.has_value()) {
    return FailedPreconditionError("Preprocess must be called before Query");
  }
  TPA_ASSIGN_OR_RETURN(PushResult push,
                       ForwardPush(*graph_, seed,
                                   options_.restart_probability, r_max_));

  std::vector<double> scores = std::move(push.reserve);
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    const double residual = push.residual[v];
    if (residual <= 0.0) continue;
    const auto endpoints = index_->Endpoints(v);
    const uint64_t walks = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(residual * static_cast<double>(omega_))));
    const double weight = residual / static_cast<double>(walks);
    for (uint64_t i = 0; i < walks; ++i) {
      // The index stores ⌈ω·r_max·d(v)⌉+1 walks which covers the push bound;
      // cycling is a safety net for boundary rounding only.
      scores[endpoints[i % endpoints.size()]] += weight;
    }
  }
  return scores;
}

size_t Fora::PreprocessedBytes() const {
  return index_.has_value() ? index_->SizeBytes() : 0;
}

}  // namespace tpa
