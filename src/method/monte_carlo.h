#ifndef TPA_METHOD_MONTE_CARLO_H_
#define TPA_METHOD_MONTE_CARLO_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"
#include "util/status.h"

namespace tpa {

/// Simulates one restart-terminated random walk from `start`: at each step
/// the walk stops with probability c, otherwise moves to a uniform
/// out-neighbor (dangling nodes stop the walk).  Returns the terminal node.
/// The endpoint distribution over many walks is exactly the RWR vector.
NodeId RandomWalkEndpoint(const Graph& graph, NodeId start, double c,
                          Rng& rng);

/// Precomputed random-walk destination index — the preprocessing artifact of
/// FORA (and the forward half of HubPPR).  For each node a fixed number of
/// independent walk endpoints is stored; queries consume stored endpoints
/// (cycling when they need more than were stored, the standard index-reuse
/// compromise) instead of walking the graph.
class WalkIndex {
 public:
  /// Builds an index with `WalksFor(v) = ceil(walks_per_edge * out_degree(v))
  /// + walks_per_node` endpoints per node.
  static StatusOr<WalkIndex> Build(const Graph& graph, double c,
                                   double walks_per_edge,
                                   uint32_t walks_per_node, uint64_t seed);

  /// Stored endpoints for node v.
  std::span<const NodeId> Endpoints(NodeId v) const {
    return {endpoints_.data() + offsets_[v],
            endpoints_.data() + offsets_[v + 1]};
  }

  uint64_t total_walks() const { return endpoints_.size(); }

  /// Logical index size (the Figure 1(a) metric for FORA/HubPPR).
  size_t SizeBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           endpoints_.size() * sizeof(NodeId);
  }

 private:
  WalkIndex(std::vector<uint64_t> offsets, std::vector<NodeId> endpoints)
      : offsets_(std::move(offsets)), endpoints_(std::move(endpoints)) {}

  std::vector<uint64_t> offsets_;  // size n+1
  std::vector<NodeId> endpoints_;
};

}  // namespace tpa

#endif  // TPA_METHOD_MONTE_CARLO_H_
