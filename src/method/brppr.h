#ifndef TPA_METHOD_BRPPR_H_
#define TPA_METHOD_BRPPR_H_

#include "method/rwr_method.h"

namespace tpa {

/// Parameters of boundary-restricted personalized PageRank.
struct BrpprOptions {
  double restart_probability = 0.15;
  /// Expansion threshold: an inactive node joins the active set once the
  /// score mass parked on it reaches this value (the paper sets 1e-4 for
  /// the RPPR/BRPPR competitors).
  double expansion_threshold = 1e-4;
  /// Global convergence tolerance on the propagating interim mass.
  double tolerance = 1e-9;
  /// Safety cap on propagation rounds.
  int max_iterations = 1000;
};

/// BRPPR (Gleich & Polito, "Approximating personalized PageRank with
/// minimal use of web graph data").
///
/// The method restricts power iteration to an *active* vertex set that
/// starts as {seed} and grows lazily: score propagates only out of active
/// nodes; mass arriving at an inactive node is parked there, and the node is
/// activated (its parked mass released into the propagation) only when the
/// parked mass crosses `expansion_threshold`.  Mass that never crosses the
/// threshold stays parked, which is exactly the approximation error — the
/// method reads only the subgraph around the seed, its selling point on
/// web-scale graphs.
///
/// Online-only: no preprocessing phase, PreprocessedBytes() == 0.
class Brppr final : public RwrMethod {
 public:
  explicit Brppr(BrpprOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "BRPPR"; }

  Status Preprocess(const Graph& graph, MemoryBudget& budget) override;
  StatusOr<std::vector<double>> Query(NodeId seed,
                                      QueryContext* context = nullptr)
      override;
  size_t PreprocessedBytes() const override { return 0; }

  /// Active-set size of the last query (experiment diagnostics).
  size_t last_active_count() const { return last_active_count_; }

 private:
  BrpprOptions options_;
  const Graph* graph_ = nullptr;
  size_t last_active_count_ = 0;
};

}  // namespace tpa

#endif  // TPA_METHOD_BRPPR_H_
