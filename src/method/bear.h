#ifndef TPA_METHOD_BEAR_H_
#define TPA_METHOD_BEAR_H_

#include <optional>

#include "method/block_elimination.h"
#include "method/rwr_method.h"

namespace tpa {

struct BearOptions {
  double restart_probability = 0.15;
  /// Drop tolerance for stored inverses; negative selects the paper's
  /// n^{-1/2}.
  double drop_tolerance = -1.0;
  SlashBurnOptions slashburn = {
      .hub_fraction_per_round = 0.02,
      .max_spoke_size = 512,
      .max_hub_fraction = 0.18,
  };
};

/// BEAR-APPROX (Shin, Jung, Sael & Kang, "BEAR: Block elimination approach
/// for random walk with restart on large graphs", SIGMOD 2015).
///
/// Preprocessing reorders the graph hub-and-spoke (SlashBurn), inverts the
/// block-diagonal spoke system H11 block by block, materializes the hub
/// Schur complement S = H22 − H21 H11^{-1} H12, inverts it densely, and
/// sparsifies everything with the drop tolerance.  The dense n2×n2 Schur
/// work is the method's scalability wall: preprocessing takes Θ(n2³) time
/// and Θ(n2²) peak memory, which is why the paper reports OOM from Pokec
/// upward — reproduced here through the memory budget.
///
/// Online phase is four sparse matvecs (fast, like the paper's Figure 1(c)).
class BearApprox final : public RwrMethod {
 public:
  explicit BearApprox(BearOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "BEAR-APPROX"; }

  Status Preprocess(const Graph& graph, MemoryBudget& budget) override;
  StatusOr<std::vector<double>> Query(NodeId seed,
                                      QueryContext* context = nullptr)
      override;
  size_t PreprocessedBytes() const override;

 private:
  BearOptions options_;
  const Graph* graph_ = nullptr;
  std::optional<HPartition> partition_;
  la::SparseMatrix h11_inv_;  // sparsified block-diagonal inverse
  la::SparseMatrix s_inv_;    // sparsified Schur complement inverse
};

}  // namespace tpa

#endif  // TPA_METHOD_BEAR_H_
