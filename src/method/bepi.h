#ifndef TPA_METHOD_BEPI_H_
#define TPA_METHOD_BEPI_H_

#include <optional>

#include "la/gmres.h"
#include "method/block_elimination.h"
#include "method/rwr_method.h"

namespace tpa {

struct BepiOptions {
  double restart_probability = 0.15;
  /// Relative residual target of the online GMRES solve.  1e-9 matches the
  /// evaluation's CPI tolerance, making BePI an exact method in practice.
  double gmres_tolerance = 1e-9;
  size_t gmres_restart = 40;
  size_t gmres_max_iterations = 4000;
  SlashBurnOptions slashburn = {
      .hub_fraction_per_round = 0.02,
      .max_spoke_size = 512,
      .max_hub_fraction = 0.18,
  };
};

/// BePI (Jung, Park, Sael & Kang, "BePI: Fast and memory-efficient method
/// for billion-scale random walk with restart", SIGMOD 2017) — the exact
/// method the paper benchmarks against in Appendix A (Figure 10) and uses as
/// ground truth.
///
/// Like BEAR it block-eliminates the hub-and-spoke reordered system, but it
/// never materializes the dense Schur complement: the hub system
///   S r2 = c (q2 − H21 H11^{-1} q1),   S = H22 − H21 H11^{-1} H12,
/// is solved at query time by matrix-free GMRES, with S applied through
/// sparse products and block solves.  Preprocessed data is therefore linear
/// in the graph (sparse blocks + small per-block inverses), so BePI scales
/// to every dataset — at the cost of an online phase that does the iterative
/// work TPA's two approximations avoid.
class Bepi final : public RwrMethod {
 public:
  explicit Bepi(BepiOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "BePI"; }

  Status Preprocess(const Graph& graph, MemoryBudget& budget) override;
  StatusOr<std::vector<double>> Query(NodeId seed,
                                      QueryContext* context = nullptr)
      override;
  size_t PreprocessedBytes() const override;

  /// GMRES iterations spent on the last query (diagnostics).
  size_t last_gmres_iterations() const { return last_gmres_iterations_; }

 private:
  BepiOptions options_;
  const Graph* graph_ = nullptr;
  std::optional<HPartition> partition_;
  la::SparseMatrix h11_inv_;  // exact block-diagonal inverse
  size_t last_gmres_iterations_ = 0;
};

}  // namespace tpa

#endif  // TPA_METHOD_BEPI_H_
