#ifndef TPA_METHOD_BLOCK_ELIMINATION_H_
#define TPA_METHOD_BLOCK_ELIMINATION_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "la/sparse_matrix.h"
#include "reorder/slashburn.h"
#include "util/memory_budget.h"
#include "util/status.h"

namespace tpa {

/// The reordered linear system shared by the block-elimination methods
/// (BEAR, BePI).  With P the hub-and-spoke permutation, the RWR fixed point
/// (I − (1-c)Ã^T) r = c·q becomes H r' = c·q' where
///
///   H = [ H11  H12 ]   spokes (n1, first)
///       [ H21  H22 ]   hubs   (n2, last)
///
/// and H11 is block diagonal with the SlashBurn spoke blocks.
struct HPartition {
  HubSpokeOrdering ordering;
  la::SparseMatrix h11;  // n1 × n1, block diagonal
  la::SparseMatrix h12;  // n1 × n2
  la::SparseMatrix h21;  // n2 × n1
  la::SparseMatrix h22;  // n2 × n2

  NodeId n1() const { return ordering.num_spokes; }
  NodeId n2() const { return ordering.num_hubs(); }

  size_t SizeBytes() const {
    return h11.SizeBytes() + h12.SizeBytes() + h21.SizeBytes() +
           h22.SizeBytes();
  }
};

/// Runs SlashBurn and assembles the four H blocks.
StatusOr<HPartition> BuildHPartition(const Graph& graph,
                                     double restart_probability,
                                     const SlashBurnOptions& slashburn);

/// Inverts the block-diagonal H11 block by block (dense LU per block) and
/// returns the inverse as one sparse matrix, with entries below
/// `drop_tolerance` removed (pass 0 to keep everything — BePI keeps exact
/// inverses, BEAR-APPROX drops).
///
/// Reserves the per-block dense scratch and the retained storage against
/// `budget`; scratch is released before returning.
StatusOr<la::SparseMatrix> InvertBlockDiagonal(
    const la::SparseMatrix& h11,
    const std::vector<std::pair<NodeId, NodeId>>& blocks, double drop_tolerance,
    MemoryBudget& budget);

}  // namespace tpa

#endif  // TPA_METHOD_BLOCK_ELIMINATION_H_
