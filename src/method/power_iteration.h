#ifndef TPA_METHOD_POWER_ITERATION_H_
#define TPA_METHOD_POWER_ITERATION_H_

#include "core/cpi.h"
#include "la/vector_ops.h"
#include "method/rwr_method.h"

namespace tpa {

/// Exact RWR via cumulative power iteration run to convergence.
///
/// Serves as the numeric oracle of the evaluation (the paper uses BePI for
/// ground truth; both solve the same fixed point — see the BePI/CPI
/// agreement tests) and as the no-preprocessing reference point.
class PowerIterationRwr final : public RwrMethod {
 public:
  explicit PowerIterationRwr(CpiOptions options = {}) : options_(options) {
    options_.start_iteration = 0;
    options_.terminal_iteration = CpiOptions::kUnbounded;
  }

  std::string_view name() const override { return "PowerIteration"; }

  Status Preprocess(const Graph& graph, MemoryBudget& budget) override {
    (void)budget;  // no preprocessed data
    TPA_RETURN_IF_ERROR(ValidateCpiParameters(options_.restart_probability,
                                              options_.tolerance));
    graph_ = &graph;
    return OkStatus();
  }

  StatusOr<std::vector<double>> Query(NodeId seed,
                                      QueryContext* context =
                                          nullptr) override {
    if (graph_ == nullptr) {
      return FailedPreconditionError("Preprocess must be called before Query");
    }
    if (graph_->value_precision() == la::Precision::kFloat32) {
      // fp32 graph: run the fp32 loop and widen once at the boundary.
      TPA_ASSIGN_OR_RETURN(
          Cpi::ResultF result,
          Cpi::RunT<float>(*graph_, {seed}, options_, nullptr, context));
      return la::ConvertVector<double>(result.scores);
    }
    TPA_ASSIGN_OR_RETURN(
        Cpi::Result result,
        Cpi::Run(*graph_, {seed}, options_, nullptr, context));
    return std::move(result.scores);
  }

  /// Reference native batch path: CPI to convergence for all seeds as one
  /// SpMM chain; each seed's accumulation stops at its own convergence
  /// iteration, so vectors match Query bitwise.
  StatusOr<la::DenseBlock> QueryBatchDense(
      std::span<const NodeId> seeds,
      std::span<QueryContext* const> contexts = {}) override {
    if (graph_ == nullptr) {
      return FailedPreconditionError("Preprocess must be called before Query");
    }
    if (graph_->value_precision() == la::Precision::kFloat32) {
      TPA_ASSIGN_OR_RETURN(
          la::DenseBlockF block,
          Cpi::RunBatchT<float>(*graph_, seeds, options_, nullptr, contexts));
      la::DenseBlock wide;
      la::ConvertBlock(block, wide);
      return wide;
    }
    return Cpi::RunBatch(*graph_, seeds, options_, nullptr, contexts);
  }

  bool SupportsBatchQuery() const override { return true; }

  /// Native bound-driven path: the convergence loop under Cpi::RunTopKT
  /// with no merge baseline — exact RWR's ranking typically certifies long
  /// before the 1e-9 norm tolerance, cutting the iteration count well
  /// below the full run's.
  StatusOr<TopKQueryResult> QueryTopK(NodeId seed, int k,
                                      const TopKQueryOptions& options = {},
                                      QueryContext* context =
                                          nullptr) override {
    if (graph_ == nullptr) {
      return FailedPreconditionError("Preprocess must be called before Query");
    }
    if (seed >= graph_->num_nodes()) {
      return OutOfRangeError("seed node out of range");
    }
    Cpi::TopKRunOptions run;
    run.k = k;
    run.allow_early_termination = options.allow_early_termination;
    if (graph_->value_precision() == la::Precision::kFloat32) {
      return Cpi::RunTopKT<float>(*graph_, {seed}, options_, run, {}, nullptr,
                                  context);
    }
    return Cpi::RunTopKT<double>(*graph_, {seed}, options_, run, {}, nullptr,
                                 context);
  }

  bool SupportsTopKQuery() const override { return true; }

  /// CPI runs at either tier (the oracle of the fp32 accuracy-envelope
  /// tests runs on a separate fp64 graph).
  bool SupportsPrecision(la::Precision) const override { return true; }

  StatusOr<std::vector<float>> QueryF32(NodeId seed,
                                        QueryContext* context =
                                            nullptr) override {
    if (graph_ == nullptr) {
      return FailedPreconditionError("Preprocess must be called before Query");
    }
    if (graph_->value_precision() != la::Precision::kFloat32) {
      return FailedPreconditionError("graph is not materialized at fp32");
    }
    TPA_ASSIGN_OR_RETURN(
        Cpi::ResultF result,
        Cpi::RunT<float>(*graph_, {seed}, options_, nullptr, context));
    return std::move(result.scores);
  }

  StatusOr<la::DenseBlockF> QueryBatchDenseF32(
      std::span<const NodeId> seeds,
      std::span<QueryContext* const> contexts = {}) override {
    if (graph_ == nullptr) {
      return FailedPreconditionError("Preprocess must be called before Query");
    }
    if (graph_->value_precision() != la::Precision::kFloat32) {
      return FailedPreconditionError("graph is not materialized at fp32");
    }
    return Cpi::RunBatchT<float>(*graph_, seeds, options_, nullptr, contexts);
  }

  void SetTaskRunner(la::TaskRunner* runner) override {
    options_.task_runner = runner;
  }

  size_t PreprocessedBytes() const override { return 0; }

  /// Each Query runs an independent CPI over the immutable graph.
  bool SupportsConcurrentQuery() const override { return true; }

 private:
  CpiOptions options_;
  const Graph* graph_ = nullptr;
};

}  // namespace tpa

#endif  // TPA_METHOD_POWER_ITERATION_H_
