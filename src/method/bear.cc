#include "method/bear.h"

#include <cmath>

#include "la/lu.h"
#include "la/vector_ops.h"
#include "util/check.h"

namespace tpa {

Status BearApprox::Preprocess(const Graph& graph, MemoryBudget& budget) {
  if (!(options_.restart_probability > 0.0 &&
        options_.restart_probability < 1.0)) {
    return InvalidArgumentError("restart probability must be in (0,1)");
  }
  graph_ = &graph;
  const double drop =
      options_.drop_tolerance >= 0.0
          ? options_.drop_tolerance
          : 1.0 / std::sqrt(static_cast<double>(graph.num_nodes()));

  TPA_ASSIGN_OR_RETURN(
      HPartition partition,
      BuildHPartition(graph, options_.restart_probability, options_.slashburn));
  const size_t n2 = partition.n2();

  // Fail fast on the dense Schur workspace (S and S^{-1}) before doing any
  // heavy work — this is where the paper's out-of-memory runs die.
  const size_t schur_peak = 2 * n2 * n2 * sizeof(double);
  TPA_RETURN_IF_ERROR(budget.Reserve(schur_peak));
  TPA_RETURN_IF_ERROR(budget.Reserve(partition.SizeBytes()));

  TPA_ASSIGN_OR_RETURN(
      la::SparseMatrix h11_inv,
      InvertBlockDiagonal(partition.h11, partition.ordering.blocks, drop,
                          budget));

  // S = H22 − H21 H11^{-1} H12, built row by row:
  //   S[i,:] = H22[i,:] − z H12   with   z = H21[i,:] · H11^{-1}.
  la::DenseMatrix s(n2, n2);
  const NodeId n1 = partition.n1();
  std::vector<double> z(n1);
  for (uint32_t i = 0; i < n2; ++i) {
    std::fill(z.begin(), z.end(), 0.0);
    {
      const auto cols = partition.h21.RowIndices(i);
      const auto vals = partition.h21.RowValues(i);
      for (size_t e = 0; e < cols.size(); ++e) {
        // z += H21[i,k] · (row k of H11^{-1}); the inverse is symmetric in
        // *structure* only, so use its rows via the transpose identity:
        // (H21[i,:]·M)[j] = Σ_k H21[i,k]·M[k,j].
        const auto inv_cols = h11_inv.RowIndices(cols[e]);
        const auto inv_vals = h11_inv.RowValues(cols[e]);
        for (size_t f = 0; f < inv_cols.size(); ++f) {
          z[inv_cols[f]] += vals[e] * inv_vals[f];
        }
      }
    }
    double* s_row = s.RowPtr(i);
    {
      const auto cols = partition.h22.RowIndices(i);
      const auto vals = partition.h22.RowValues(i);
      for (size_t e = 0; e < cols.size(); ++e) s_row[cols[e]] += vals[e];
    }
    for (uint32_t j = 0; j < n1; ++j) {
      if (z[j] == 0.0) continue;
      const auto cols = partition.h12.RowIndices(j);
      const auto vals = partition.h12.RowValues(j);
      for (size_t e = 0; e < cols.size(); ++e) {
        s_row[cols[e]] -= z[j] * vals[e];
      }
    }
  }

  la::SparseMatrix s_inv;
  if (n2 > 0) {
    TPA_ASSIGN_OR_RETURN(la::LuDecomposition lu,
                         la::LuDecomposition::Compute(s));
    la::DenseMatrix inverse = lu.Inverse();
    std::vector<la::Triplet> kept;
    for (uint32_t r = 0; r < n2; ++r) {
      for (uint32_t c = 0; c < n2; ++c) {
        const double value = inverse.At(r, c);
        if (value != 0.0 && std::abs(value) >= drop) {
          kept.push_back({r, c, value});
        }
      }
    }
    TPA_ASSIGN_OR_RETURN(
        s_inv, la::SparseMatrix::FromTriplets(static_cast<uint32_t>(n2),
                                              static_cast<uint32_t>(n2),
                                              std::move(kept)));
  } else {
    TPA_ASSIGN_OR_RETURN(s_inv, la::SparseMatrix::FromTriplets(0, 0, {}));
  }

  // Swap the dense Schur scratch for the retained sparse inverse.
  budget.Release(schur_peak);
  TPA_RETURN_IF_ERROR(budget.Reserve(s_inv.SizeBytes()));

  partition_.emplace(std::move(partition));
  h11_inv_ = std::move(h11_inv);
  s_inv_ = std::move(s_inv);
  return OkStatus();
}

StatusOr<std::vector<double>> BearApprox::Query(NodeId seed,
                                                QueryContext* context) {
  // No iteration boundary to poll; an expired or cancelled context fails
  // up front.
  TPA_RETURN_IF_ERROR(CheckQueryContext(context));
  if (!partition_.has_value()) {
    return FailedPreconditionError("Preprocess must be called before Query");
  }
  if (seed >= graph_->num_nodes()) {
    return OutOfRangeError("seed out of range");
  }
  const HPartition& part = *partition_;
  const NodeId n1 = part.n1();
  const NodeId n2 = part.n2();
  const double c = options_.restart_probability;
  const NodeId p = part.ordering.new_of_old[seed];

  // q split into spoke / hub parts (a unit vector).
  std::vector<double> q1(n1, 0.0), q2(n2, 0.0);
  if (p < n1) {
    q1[p] = 1.0;
  } else {
    q2[p - n1] = 1.0;
  }

  // t1 = H11^{-1} q1
  std::vector<double> t1(n1, 0.0);
  h11_inv_.MatVec(q1, t1);
  // rhs2 = q2 − H21 t1
  std::vector<double> rhs2(n2, 0.0);
  part.h21.MatVec(t1, rhs2);
  for (NodeId i = 0; i < n2; ++i) rhs2[i] = q2[i] - rhs2[i];
  // r2 = c · S^{-1} rhs2
  std::vector<double> r2(n2, 0.0);
  s_inv_.MatVec(rhs2, r2);
  la::Scale(c, r2);
  // r1 = H11^{-1}(c q1 − H12 r2) = c t1 − H11^{-1} (H12 r2)
  std::vector<double> w(n1, 0.0);
  part.h12.MatVec(r2, w);
  std::vector<double> correction(n1, 0.0);
  h11_inv_.MatVec(w, correction);
  std::vector<double> r1 = t1;
  la::Scale(c, r1);
  la::Axpy(-1.0, correction, r1);

  // Back to original node ids.
  std::vector<double> scores(graph_->num_nodes(), 0.0);
  for (NodeId pos = 0; pos < n1; ++pos) {
    scores[part.ordering.old_of_new[pos]] = r1[pos];
  }
  for (NodeId pos = 0; pos < n2; ++pos) {
    scores[part.ordering.old_of_new[n1 + pos]] = r2[pos];
  }
  return scores;
}

size_t BearApprox::PreprocessedBytes() const {
  if (!partition_.has_value()) return 0;
  return partition_->h12.SizeBytes() + partition_->h21.SizeBytes() +
         h11_inv_.SizeBytes() + s_inv_.SizeBytes() +
         partition_->ordering.old_of_new.size() * sizeof(NodeId) * 2;
}

}  // namespace tpa
