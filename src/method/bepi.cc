#include "method/bepi.h"

#include "la/vector_ops.h"

namespace tpa {

Status Bepi::Preprocess(const Graph& graph, MemoryBudget& budget) {
  if (!(options_.restart_probability > 0.0 &&
        options_.restart_probability < 1.0)) {
    return InvalidArgumentError("restart probability must be in (0,1)");
  }
  graph_ = &graph;

  TPA_ASSIGN_OR_RETURN(
      HPartition partition,
      BuildHPartition(graph, options_.restart_probability, options_.slashburn));
  TPA_RETURN_IF_ERROR(budget.Reserve(partition.SizeBytes()));

  // Exact (undropped) block inverses: the blocks are small by construction.
  TPA_ASSIGN_OR_RETURN(la::SparseMatrix h11_inv,
                       InvertBlockDiagonal(partition.h11,
                                           partition.ordering.blocks,
                                           /*drop_tolerance=*/0.0, budget));
  partition_.emplace(std::move(partition));
  h11_inv_ = std::move(h11_inv);
  return OkStatus();
}

StatusOr<std::vector<double>> Bepi::Query(NodeId seed,
                                          QueryContext* context) {
  // No iteration boundary to poll; an expired or cancelled context fails
  // up front.
  TPA_RETURN_IF_ERROR(CheckQueryContext(context));
  if (!partition_.has_value()) {
    return FailedPreconditionError("Preprocess must be called before Query");
  }
  if (seed >= graph_->num_nodes()) {
    return OutOfRangeError("seed out of range");
  }
  const HPartition& part = *partition_;
  const NodeId n1 = part.n1();
  const NodeId n2 = part.n2();
  const double c = options_.restart_probability;
  const NodeId p = part.ordering.new_of_old[seed];

  std::vector<double> q1(n1, 0.0), q2(n2, 0.0);
  if (p < n1) {
    q1[p] = 1.0;
  } else {
    q2[p - n1] = 1.0;
  }

  // rhs = c (q2 − H21 H11^{-1} q1).
  std::vector<double> t1(n1, 0.0);
  h11_inv_.MatVec(q1, t1);
  std::vector<double> rhs(n2, 0.0);
  part.h21.MatVec(t1, rhs);
  for (NodeId i = 0; i < n2; ++i) rhs[i] = c * (q2[i] - rhs[i]);

  // Matrix-free Schur operator: y = H22 x − H21 H11^{-1} H12 x.
  std::vector<double> r2(n2, 0.0);
  last_gmres_iterations_ = 0;
  if (n2 > 0) {
    std::vector<double> w1(n1), w2(n1), y22(n2), y21(n2);
    la::LinearOperator schur{
        n2, n2,
        [&](const std::vector<double>& x, std::vector<double>& y) {
          part.h12.MatVec(x, w1);        // H12 x
          h11_inv_.MatVec(w1, w2);       // H11^{-1} H12 x
          part.h21.MatVec(w2, y21);      // H21 ...
          part.h22.MatVec(x, y22);       // H22 x
          y.resize(n2);
          for (NodeId i = 0; i < n2; ++i) y[i] = y22[i] - y21[i];
        }};

    la::GmresOptions gmres;
    gmres.tolerance = options_.gmres_tolerance;
    gmres.restart = options_.gmres_restart;
    gmres.max_iterations = options_.gmres_max_iterations;
    TPA_ASSIGN_OR_RETURN(la::GmresResult solved, la::Gmres(schur, rhs, gmres));
    if (!solved.converged) {
      return InternalError("BePI GMRES did not converge");
    }
    r2 = std::move(solved.x);
    last_gmres_iterations_ = solved.iterations;
  }

  // r1 = H11^{-1}(c q1 − H12 r2).
  std::vector<double> w(n1, 0.0);
  part.h12.MatVec(r2, w);
  for (NodeId i = 0; i < n1; ++i) w[i] = c * q1[i] - w[i];
  std::vector<double> r1(n1, 0.0);
  h11_inv_.MatVec(w, r1);

  std::vector<double> scores(graph_->num_nodes(), 0.0);
  for (NodeId pos = 0; pos < n1; ++pos) {
    scores[part.ordering.old_of_new[pos]] = r1[pos];
  }
  for (NodeId pos = 0; pos < n2; ++pos) {
    scores[part.ordering.old_of_new[n1 + pos]] = r2[pos];
  }
  return scores;
}

size_t Bepi::PreprocessedBytes() const {
  if (!partition_.has_value()) return 0;
  return partition_->SizeBytes() + h11_inv_.SizeBytes() +
         partition_->ordering.old_of_new.size() * sizeof(NodeId) * 2;
}

}  // namespace tpa
