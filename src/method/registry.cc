#include "method/registry.h"

#include <string>

#include "method/bear.h"
#include "method/bepi.h"
#include "method/brppr.h"
#include "method/fora.h"
#include "method/hubppr.h"
#include "method/nblin.h"
#include "method/power_iteration.h"
#include "method/tpa_method.h"

namespace tpa {

StatusOr<std::unique_ptr<RwrMethod>> CreateMethod(std::string_view name,
                                                  const MethodConfig& config) {
  if (name == "TPA") {
    TpaOptions options;
    options.restart_probability = config.restart_probability;
    options.tolerance = config.tolerance;
    options.family_window = config.tpa_family_window;
    options.stranger_start = config.tpa_stranger_start;
    return std::unique_ptr<RwrMethod>(new TpaMethod(options));
  }
  if (name == "BEAR-APPROX") {
    BearOptions options;
    options.restart_probability = config.restart_probability;
    return std::unique_ptr<RwrMethod>(new BearApprox(options));
  }
  if (name == "NB-LIN") {
    NbLinOptions options;
    options.restart_probability = config.restart_probability;
    return std::unique_ptr<RwrMethod>(new NbLin(options));
  }
  if (name == "BRPPR") {
    BrpprOptions options;
    options.restart_probability = config.restart_probability;
    options.tolerance = config.tolerance;
    return std::unique_ptr<RwrMethod>(new Brppr(options));
  }
  if (name == "FORA") {
    ForaOptions options;
    options.restart_probability = config.restart_probability;
    return std::unique_ptr<RwrMethod>(new Fora(options));
  }
  if (name == "HubPPR") {
    HubPprOptions options;
    options.restart_probability = config.restart_probability;
    return std::unique_ptr<RwrMethod>(new HubPpr(options));
  }
  if (name == "BePI") {
    BepiOptions options;
    options.restart_probability = config.restart_probability;
    options.gmres_tolerance = config.tolerance;
    return std::unique_ptr<RwrMethod>(new Bepi(options));
  }
  if (name == "PowerIteration") {
    CpiOptions options;
    options.restart_probability = config.restart_probability;
    options.tolerance = config.tolerance;
    return std::unique_ptr<RwrMethod>(new PowerIterationRwr(options));
  }
  return NotFoundError("unknown method: " + std::string(name));
}

std::vector<std::string_view> PreprocessingMethodNames() {
  return {"TPA", "BEAR-APPROX", "NB-LIN", "HubPPR", "FORA"};
}

std::vector<std::string_view> ApproximateMethodNames() {
  return {"TPA", "BRPPR", "BEAR-APPROX", "NB-LIN", "HubPPR", "FORA"};
}

}  // namespace tpa
