#ifndef TPA_METHOD_REGISTRY_H_
#define TPA_METHOD_REGISTRY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "method/rwr_method.h"
#include "util/status.h"

namespace tpa {

/// Per-dataset knobs shared across methods when instantiating them for an
/// experiment.  Everything else uses each method's paper defaults.
struct MethodConfig {
  double restart_probability = 0.15;
  double tolerance = 1e-9;
  /// TPA's S and T (Table II values live in DatasetSpec).
  int tpa_family_window = 5;
  int tpa_stranger_start = 10;
};

/// Instantiates a method by display name ("TPA", "BEAR-APPROX", "NB-LIN",
/// "BRPPR", "FORA", "HubPPR", "BePI", "PowerIteration").
/// NOT_FOUND for unknown names.
StatusOr<std::unique_ptr<RwrMethod>> CreateMethod(std::string_view name,
                                                  const MethodConfig& config);

/// Methods with a preprocessing phase (the Figure 1(a)/(b) set).
std::vector<std::string_view> PreprocessingMethodNames();

/// All approximate methods compared in Figure 1(c) / Figure 7.
std::vector<std::string_view> ApproximateMethodNames();

}  // namespace tpa

#endif  // TPA_METHOD_REGISTRY_H_
