#ifndef TPA_SNAPSHOT_SNAPSHOT_H_
#define TPA_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/tpa.h"
#include "graph/graph.h"
#include "util/serial.h"
#include "util/status.h"

namespace tpa {
class ResidentSteward;
}  // namespace tpa

namespace tpa::snapshot {

/// How LoadSnapshot materializes the O(nnz) arrays.
enum class LoadMode {
  /// mmap the file and serve the CSR index/value arrays as non-owning views
  /// straight out of the mapping (the MappedFile is the SharedArray owner,
  /// pinned until the last view dies).  Pages fault in lazily; nothing
  /// O(nnz) is copied.  The warm-start default.
  kMap,
  /// Copy every section into heap vectors and close the mapping before
  /// returning — for writable paths or when the snapshot file may be
  /// replaced/truncated underneath a long-lived process.
  kCopy,
};

struct LoadOptions {
  LoadMode mode = LoadMode::kMap;
  /// Verify per-section checksums and structural invariants (offset
  /// monotonicity, index ranges) before trusting the file.  The default;
  /// turning it off skips the O(file) verification passes and is only safe
  /// for files this process just wrote and fsync'd.  Header and section-
  /// table sanity (magic, version, endianness, bounds, sizes) are always
  /// checked either way — a corrupt file yields a Status, never a crash.
  bool verify = true;
  /// Paging-pattern hint applied to the whole mapping after a kMap load
  /// (ignored under kCopy).  kSequential suits the propagation sweeps of a
  /// preprocess/benchmark run (aggressive readahead, eager reclaim behind
  /// the sweep); kWillNeed prefetches the file for a serving process about
  /// to be hit; kRandom suits sparse single-seed query traffic (no wasted
  /// readahead on the gathers).  Best-effort — advice failures don't fail
  /// the load.
  MappedAdvice advice = MappedAdvice::kNormal;
  /// When set (and running), the mapping is registered with this steward
  /// immediately after mmap — before the verification sweep touches the
  /// payload — so even the load's own O(file) passes stay inside the
  /// steward's resident budget.  The registration persists for the
  /// mapping's lifetime; the caller must keep the steward alive at least
  /// as long as it stays started.  No effect under kCopy beyond the load
  /// itself (the mapping closes when the load returns).
  ResidentSteward* steward = nullptr;
};

/// What a snapshot file says about itself (header + meta section only —
/// reading it never touches the O(nnz) payload bytes).
struct SnapshotInfo {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  la::Precision precision = la::Precision::kFloat64;
  ValueStorage value_storage = ValueStorage::kExplicit;
  bool has_fp64 = false;
  bool has_fp32 = false;
  bool has_permutation = false;
  TpaOptions options;
  uint64_t file_bytes = 0;
  uint32_t section_count = 0;
};

/// A warm-started serving state: the Graph (address-stable behind
/// unique_ptr — the Tpa borrows it) plus the preprocessed Tpa, ready for
/// QueryEngine::Create with a preloaded TpaMethod.  Under LoadMode::kMap
/// the graph's index/value arrays alias the mapped file, which stays mapped
/// for as long as any of them (or any structure-sharing sibling) lives.
struct LoadedSnapshot {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<Tpa> tpa;
  SnapshotInfo info;
  /// The backing mapping under LoadMode::kMap (null under kCopy) — the
  /// handle a bounded-RSS server hands to ResidentSteward::RegisterRegion
  /// so query sweeps over a snapshot larger than the budget stay
  /// droppable, and to MappedFile::Advise for per-phase paging hints.
  /// The graph's views share ownership; holding or dropping this pointer
  /// does not affect their lifetime.
  std::shared_ptr<const MappedFile> mapped_file;
};

/// Serializes the Tpa's full preprocessed state — graph topology, value
/// layers of every materialized tier, permutation, stranger tail + order,
/// and TpaOptions — into a versioned, checksummed snapshot at `path`.
Status WriteSnapshot(const Tpa& tpa, const std::string& path);

/// Opens a snapshot and reassembles the serving state.  A query against the
/// loaded state is bitwise-identical to one against the freshly preprocessed
/// original: the stored bytes are exactly the preprocessed arrays.
StatusOr<LoadedSnapshot> LoadSnapshot(const std::string& path,
                                      const LoadOptions& options = {});

/// Header + meta only (no payload verification).
StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

/// Full integrity check — header, section table, per-section checksums, and
/// structural invariants — without building the serving state.
Status VerifySnapshot(const std::string& path);

}  // namespace tpa::snapshot

#endif  // TPA_SNAPSHOT_SNAPSHOT_H_
