#ifndef TPA_SNAPSHOT_FORMAT_H_
#define TPA_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace tpa::snapshot {

/// On-disk snapshot format, version 1.
///
/// Layout:
///   [SnapshotHeader: 64 bytes]
///   [SectionDesc × section_count]        (the section table)
///   [section payloads, each 64-byte aligned, in table order]
///
/// All multi-byte fields are host-endian; the header's endian_tag detects a
/// file written on the other endianness (rejected — snapshots are a
/// same-architecture serving format, not an interchange format).  Sections
/// are raw little arrays of the in-memory element types, so a mapped file
/// can be served zero-copy: 64-byte section alignment satisfies (with room
/// to spare) every element type's alignment requirement and keeps each
/// section cacheline-clean.

inline constexpr char kMagic[8] = {'T', 'P', 'A', 'S', 'N', 'A', 'P', '1'};
inline constexpr uint32_t kEndianTag = 0x01020304u;
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kSectionAlignment = 64;

/// Section identifiers.  A file carries the subset its graph configuration
/// needs (e.g. no value sections under value-free storage, no fp32 sections
/// when only the fp64 tier is materialized); readers locate sections by id,
/// never by position.
enum class SectionId : uint32_t {
  kMeta = 1,          // MetaSection
  kOutOffsets = 2,    // uint64 × (num_nodes + 1)
  kOutIndices = 3,    // uint32 × num_edges
  kInOffsets = 4,     // uint64 × (num_nodes + 1)
  kInIndices = 5,     // uint32 × num_edges
  kOutValuesF64 = 6,  // double × num_edges   (kExplicit, fp64 tier)
  kInValuesF64 = 7,   // double × num_edges   (kExplicit, fp64 tier)
  kOutValuesF32 = 8,  // float × num_edges    (kExplicit, fp32 tier)
  kInValuesF32 = 9,   // float × num_edges    (kExplicit, fp32 tier)
  kScalesF64 = 10,    // double × num_nodes   (kRowConstant, fp64 tier)
  kScalesF32 = 11,    // float × num_nodes    (kRowConstant, fp32 tier)
  kStrangerF64 = 12,  // double × num_nodes   (fp64-precision preprocess)
  kStrangerF32 = 13,  // float × num_nodes    (fp32-precision preprocess)
  kStrangerOrder = 14,  // uint32 × num_nodes
  kPermutation = 15,    // uint32 × num_nodes (external_of_internal)
};

struct SnapshotHeader {
  char magic[8];                 // kMagic
  uint32_t endian_tag;           // kEndianTag as written by the producer
  uint32_t format_version;       // kFormatVersion
  uint64_t file_bytes;           // total file size, truncation tripwire
  uint64_t section_table_offset; // == sizeof(SnapshotHeader)
  uint32_t section_count;
  uint32_t section_table_crc;    // Crc32 of the whole section table
  uint8_t reserved[24];
};
static_assert(sizeof(SnapshotHeader) == 64, "header is exactly 64 bytes");

struct SectionDesc {
  uint32_t id;          // SectionId
  uint32_t reserved0;
  uint64_t offset;      // absolute file offset, kSectionAlignment-aligned
  uint64_t size_bytes;  // payload bytes (excludes alignment padding)
  uint32_t crc;         // Crc32 of the payload bytes
  uint32_t reserved1;
};
static_assert(sizeof(SectionDesc) == 32, "section descriptor is 32 bytes");

/// Payload of SectionId::kMeta: everything needed to interpret the other
/// sections and to reconstruct the Graph configuration and TpaOptions.
struct MetaSection {
  uint64_t num_nodes;
  uint64_t num_edges;
  uint32_t precision;       // la::Precision: 0 = fp64, 1 = fp32
  uint32_t value_storage;   // ValueStorage: 0 = kExplicit, 1 = kRowConstant
  uint32_t has_fp64;        // which tiers carry materialized value layers
  uint32_t has_fp32;
  uint32_t has_permutation;
  uint32_t pad0;
  // TpaOptions of the preprocessed state (task_runner excluded — a process-
  // local pointer the engine re-wires after load).
  double restart_probability;
  double tolerance;
  int32_t family_window;
  int32_t stranger_start;
  uint32_t use_pull;
  uint32_t pad1;
  double frontier_density_threshold;
  double topk_frontier_density_threshold;
};
static_assert(sizeof(MetaSection) == 88, "meta section is 88 bytes");

}  // namespace tpa::snapshot

#endif  // TPA_SNAPSHOT_FORMAT_H_
