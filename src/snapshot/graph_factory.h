#ifndef TPA_SNAPSHOT_GRAPH_FACTORY_H_
#define TPA_SNAPSHOT_GRAPH_FACTORY_H_

#include <memory>
#include <utility>

#include "graph/graph.h"
#include "graph/permutation.h"
#include "la/csr_matrix.h"
#include "la/shared_array.h"

namespace tpa::snapshot {

/// The one friend of Graph: wires pre-built (possibly mmap-backed)
/// structures and value layers directly into Graph's private fields, and
/// exposes the private in-direction structure for the snapshot writer.
/// Everything passed to Make must already be validated — the factory only
/// assembles.  Two producers use it: the snapshot loader (arrays are
/// SharedArray views into the mapped snapshot) and the out-of-core builder
/// (arrays are views into the file-backed CSR it just wrote) — both get a
/// Graph whose kernels stream straight off the mapping, no heap copy.
class GraphFactory {
 public:
  struct Parts {
    NodeId num_nodes = 0;
    la::Precision precision = la::Precision::kFloat64;
    ValueStorage value_storage = ValueStorage::kExplicit;
    la::CsrStructure out_structure;
    la::CsrStructure in_structure;
    bool has_fp64 = false;
    bool has_fp32 = false;
    // kExplicit layers (per materialized tier): one value per edge.
    la::SharedArray<double> out_values64, in_values64;
    la::SharedArray<float> out_values32, in_values32;
    // kRowConstant layers: the n-length 1/out-degree array shared by both
    // directions (per-row scale out, per-column scale in).
    la::SharedArray<double> scales64;
    la::SharedArray<float> scales32;
    std::shared_ptr<const Permutation> permutation;
  };

  static std::unique_ptr<Graph> Make(Parts parts) {
    auto graph = std::unique_ptr<Graph>(new Graph());
    graph->num_nodes_ = parts.num_nodes;
    graph->precision_ = parts.precision;
    graph->value_storage_ = parts.value_storage;
    graph->out_structure_ = parts.out_structure;
    graph->in_structure_ = parts.in_structure;
    graph->has_fp64_ = parts.has_fp64;
    graph->has_fp32_ = parts.has_fp32;
    const bool explicit_values =
        parts.value_storage == ValueStorage::kExplicit;
    if (parts.has_fp64) {
      if (explicit_values) {
        graph->out_csr_ = la::CsrMatrix(parts.out_structure,
                                        std::move(parts.out_values64));
        graph->in_csr_ =
            la::CsrMatrix(parts.in_structure, std::move(parts.in_values64));
      } else {
        graph->out_csr_ = la::CsrMatrix(
            parts.out_structure, la::CsrValueMode::kRowConstant,
            parts.scales64);
        graph->in_csr_ = la::CsrMatrix(parts.in_structure,
                                       la::CsrValueMode::kColumnScale,
                                       std::move(parts.scales64));
      }
    }
    if (parts.has_fp32) {
      if (explicit_values) {
        graph->out_csr_f_ = la::CsrMatrixF(parts.out_structure,
                                           std::move(parts.out_values32));
        graph->in_csr_f_ =
            la::CsrMatrixF(parts.in_structure, std::move(parts.in_values32));
      } else {
        graph->out_csr_f_ = la::CsrMatrixF(
            parts.out_structure, la::CsrValueMode::kRowConstant,
            parts.scales32);
        graph->in_csr_f_ = la::CsrMatrixF(parts.in_structure,
                                          la::CsrValueMode::kColumnScale,
                                          std::move(parts.scales32));
      }
    }
    graph->permutation_ = std::move(parts.permutation);
    graph->partition_cache_ = std::make_shared<Graph::PartitionCache>();
    return graph;
  }

  static const la::CsrStructure& OutStructure(const Graph& graph) {
    return graph.out_structure_;
  }
  static const la::CsrStructure& InStructure(const Graph& graph) {
    return graph.in_structure_;
  }
};

}  // namespace tpa::snapshot

#endif  // TPA_SNAPSHOT_GRAPH_FACTORY_H_
