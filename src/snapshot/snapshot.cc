#include "snapshot/snapshot.h"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "graph/permutation.h"
#include "la/shared_array.h"
#include "snapshot/format.h"
#include "snapshot/graph_factory.h"
#include "util/failpoint.h"
#include "util/mem_stats.h"
#include "util/serial.h"

namespace tpa::snapshot {

namespace {

/// A section queued for writing: id plus a borrowed byte range.
struct PendingSection {
  SectionId id;
  const void* data;
  uint64_t size_bytes;
};

uint64_t AlignUp(uint64_t offset, uint64_t alignment) {
  return (offset + alignment - 1) / alignment * alignment;
}

template <typename T>
void PushArraySection(std::vector<PendingSection>& sections, SectionId id,
                      const T* data, size_t count) {
  sections.push_back({id, data, count * sizeof(T)});
}

/// A snapshot file parsed, bounds-checked, and (optionally) payload-
/// verified.  Section payload pointers index into `file`'s mapping.
struct ParsedSnapshot {
  std::shared_ptr<const MappedFile> file;
  SnapshotHeader header;
  std::vector<SectionDesc> table;
  MetaSection meta;

  const SectionDesc* Find(SectionId id) const {
    for (const SectionDesc& desc : table) {
      if (desc.id == static_cast<uint32_t>(id)) return &desc;
    }
    return nullptr;
  }
  const uint8_t* Payload(const SectionDesc& desc) const {
    return file->data() + desc.offset;
  }
};

Status CorruptError(const std::string& path, const std::string& what) {
  return InvalidArgumentError("snapshot '" + path + "': " + what);
}

/// The exact sections (and byte sizes) a file with this meta must carry —
/// presence and sizes are always enforced, so the typed readers below can
/// index payloads without further bounds checks.
StatusOr<std::vector<SectionDesc>> ExpectedSections(
    const MetaSection& meta, const std::string& path) {
  const uint64_t n = meta.num_nodes;
  const uint64_t m = meta.num_edges;
  std::vector<SectionDesc> expected;
  auto expect = [&expected](SectionId id, uint64_t size_bytes) {
    expected.push_back({static_cast<uint32_t>(id), 0, 0, size_bytes, 0, 0});
  };
  expect(SectionId::kMeta, sizeof(MetaSection));
  expect(SectionId::kOutOffsets, (n + 1) * sizeof(uint64_t));
  expect(SectionId::kOutIndices, m * sizeof(uint32_t));
  expect(SectionId::kInOffsets, (n + 1) * sizeof(uint64_t));
  expect(SectionId::kInIndices, m * sizeof(uint32_t));
  const bool explicit_values =
      meta.value_storage == static_cast<uint32_t>(ValueStorage::kExplicit);
  if (meta.has_fp64) {
    if (explicit_values) {
      expect(SectionId::kOutValuesF64, m * sizeof(double));
      expect(SectionId::kInValuesF64, m * sizeof(double));
    } else {
      expect(SectionId::kScalesF64, n * sizeof(double));
    }
  }
  if (meta.has_fp32) {
    if (explicit_values) {
      expect(SectionId::kOutValuesF32, m * sizeof(float));
      expect(SectionId::kInValuesF32, m * sizeof(float));
    } else {
      expect(SectionId::kScalesF32, n * sizeof(float));
    }
  }
  const bool fp64_precision =
      meta.precision == static_cast<uint32_t>(la::Precision::kFloat64);
  expect(fp64_precision ? SectionId::kStrangerF64 : SectionId::kStrangerF32,
         n * (fp64_precision ? sizeof(double) : sizeof(float)));
  expect(SectionId::kStrangerOrder, n * sizeof(NodeId));
  if (meta.has_permutation) {
    expect(SectionId::kPermutation, n * sizeof(NodeId));
  }
  return expected;
}

/// Structural invariants of a CSR offsets/indices pair, checked in Status
/// land so a corrupt file can never reach the CHECK-ing constructors or the
/// kernels' unchecked indexing.
Status CheckCsrArrays(const uint64_t* offsets, uint64_t n,
                      const uint32_t* indices, uint64_t m,
                      const std::string& path, const std::string& which) {
  if (offsets[0] != 0) {
    return CorruptError(path, which + " offsets do not start at 0");
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (offsets[i + 1] < offsets[i]) {
      return CorruptError(path, which + " offsets are not monotone");
    }
  }
  if (offsets[n] != m) {
    return CorruptError(path,
                        which + " offsets do not end at the edge count");
  }
  for (uint64_t e = 0; e < m; ++e) {
    if (indices[e] >= n) {
      return CorruptError(path, which + " indices reference nodes >= n");
    }
  }
  return OkStatus();
}

/// Ranks/permutations must be bijections over [0, n).
Status CheckNodePermutation(const uint32_t* nodes, uint64_t n,
                            const std::string& path,
                            const std::string& which) {
  std::vector<bool> seen(n, false);
  for (uint64_t i = 0; i < n; ++i) {
    if (nodes[i] >= n || seen[nodes[i]]) {
      return CorruptError(path, which + " is not a permutation of [0, n)");
    }
    seen[nodes[i]] = true;
  }
  return OkStatus();
}

/// Opens and parses `path`: header, section table, meta, section presence
/// and exact sizes — always; payload checksums and structural invariants
/// when `verify_payload`.
StatusOr<ParsedSnapshot> ParseSnapshot(const std::string& path,
                                       bool verify_payload,
                                       ResidentSteward* steward = nullptr) {
  ParsedSnapshot parsed;
  {
    TPA_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
    parsed.file = std::make_shared<const MappedFile>(std::move(file));
  }
  if (steward != nullptr) {
    // Register before the verification sweep below pages the payload in,
    // so a snapshot larger than the budget can still be verified inside it.
    steward->RegisterRegion(parsed.file, parsed.file->data(),
                            parsed.file->size());
  }
  const MappedFile& file = *parsed.file;
  if (file.size() < sizeof(SnapshotHeader)) {
    return CorruptError(path, "smaller than the 64-byte header");
  }
  std::memcpy(&parsed.header, file.data(), sizeof(SnapshotHeader));
  const SnapshotHeader& header = parsed.header;
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return CorruptError(path, "bad magic (not a TPA snapshot)");
  }
  if (header.endian_tag != kEndianTag) {
    if (header.endian_tag == 0x04030201u) {
      return CorruptError(path,
                          "written on the opposite-endianness architecture");
    }
    return CorruptError(path, "bad endianness tag");
  }
  if (header.format_version != kFormatVersion) {
    return CorruptError(
        path, "unsupported format version " +
                  std::to_string(header.format_version) + " (reader supports " +
                  std::to_string(kFormatVersion) + ")");
  }
  if (header.file_bytes != file.size()) {
    return CorruptError(path, "truncated (header records " +
                                  std::to_string(header.file_bytes) +
                                  " bytes, file has " +
                                  std::to_string(file.size()) + ")");
  }
  if (header.section_table_offset != sizeof(SnapshotHeader)) {
    return CorruptError(path, "section table is not at offset 64");
  }
  if (header.section_count == 0 || header.section_count > 64) {
    return CorruptError(path, "implausible section count");
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionDesc);
  if (header.section_table_offset + table_bytes > file.size()) {
    return CorruptError(path, "section table extends past end of file");
  }
  const uint8_t* table_start = file.data() + header.section_table_offset;
  if (Crc32(table_start, table_bytes) != header.section_table_crc) {
    return CorruptError(path, "section table checksum mismatch");
  }
  parsed.table.resize(header.section_count);
  std::memcpy(parsed.table.data(), table_start, table_bytes);
  for (const SectionDesc& desc : parsed.table) {
    if (desc.offset % kSectionAlignment != 0) {
      return CorruptError(path, "misaligned section payload");
    }
    if (desc.offset > file.size() ||
        desc.size_bytes > file.size() - desc.offset) {
      return CorruptError(path, "section payload extends past end of file");
    }
  }

  const SectionDesc* meta_desc = parsed.Find(SectionId::kMeta);
  if (meta_desc == nullptr || meta_desc->size_bytes != sizeof(MetaSection)) {
    return CorruptError(path, "missing or malformed meta section");
  }
  std::memcpy(&parsed.meta, parsed.Payload(*meta_desc), sizeof(MetaSection));
  const MetaSection& meta = parsed.meta;
  if (meta.precision > static_cast<uint32_t>(la::Precision::kFloat32) ||
      meta.value_storage >
          static_cast<uint32_t>(ValueStorage::kRowConstant)) {
    return CorruptError(path, "meta enum field out of range");
  }
  if (meta.num_nodes == 0 || meta.num_nodes > UINT32_MAX) {
    return CorruptError(path, "node count out of the NodeId range");
  }
  const bool fp64_precision =
      meta.precision == static_cast<uint32_t>(la::Precision::kFloat64);
  if (fp64_precision ? !meta.has_fp64 : !meta.has_fp32) {
    return CorruptError(path,
                        "primary precision tier is not marked materialized");
  }

  TPA_ASSIGN_OR_RETURN(std::vector<SectionDesc> expected,
                       ExpectedSections(meta, path));
  if (expected.size() != parsed.table.size()) {
    return CorruptError(path, "section table does not match configuration");
  }
  for (const SectionDesc& want : expected) {
    const SectionDesc* have =
        parsed.Find(static_cast<SectionId>(want.id));
    if (have == nullptr || have->size_bytes != want.size_bytes) {
      return CorruptError(
          path, "missing or mis-sized section id " + std::to_string(want.id));
    }
  }

  if (!verify_payload) return parsed;

  for (const SectionDesc& desc : parsed.table) {
    if (Crc32(parsed.Payload(desc), desc.size_bytes) != desc.crc) {
      return CorruptError(path, "payload checksum mismatch in section id " +
                                    std::to_string(desc.id));
    }
  }
  const uint64_t n = meta.num_nodes;
  const uint64_t m = meta.num_edges;
  const auto* out_offsets = reinterpret_cast<const uint64_t*>(
      parsed.Payload(*parsed.Find(SectionId::kOutOffsets)));
  const auto* out_indices = reinterpret_cast<const uint32_t*>(
      parsed.Payload(*parsed.Find(SectionId::kOutIndices)));
  const auto* in_offsets = reinterpret_cast<const uint64_t*>(
      parsed.Payload(*parsed.Find(SectionId::kInOffsets)));
  const auto* in_indices = reinterpret_cast<const uint32_t*>(
      parsed.Payload(*parsed.Find(SectionId::kInIndices)));
  TPA_RETURN_IF_ERROR(
      CheckCsrArrays(out_offsets, n, out_indices, m, path, "out-CSR"));
  TPA_RETURN_IF_ERROR(
      CheckCsrArrays(in_offsets, n, in_indices, m, path, "in-CSR"));
  TPA_RETURN_IF_ERROR(CheckNodePermutation(
      reinterpret_cast<const uint32_t*>(
          parsed.Payload(*parsed.Find(SectionId::kStrangerOrder))),
      n, path, "stranger order"));
  if (meta.has_permutation) {
    TPA_RETURN_IF_ERROR(CheckNodePermutation(
        reinterpret_cast<const uint32_t*>(
            parsed.Payload(*parsed.Find(SectionId::kPermutation))),
        n, path, "permutation"));
  }
  return parsed;
}

SnapshotInfo InfoFromParsed(const ParsedSnapshot& parsed) {
  const MetaSection& meta = parsed.meta;
  SnapshotInfo info;
  info.num_nodes = meta.num_nodes;
  info.num_edges = meta.num_edges;
  info.precision = static_cast<la::Precision>(meta.precision);
  info.value_storage = static_cast<ValueStorage>(meta.value_storage);
  info.has_fp64 = meta.has_fp64 != 0;
  info.has_fp32 = meta.has_fp32 != 0;
  info.has_permutation = meta.has_permutation != 0;
  info.options.restart_probability = meta.restart_probability;
  info.options.tolerance = meta.tolerance;
  info.options.family_window = meta.family_window;
  info.options.stranger_start = meta.stranger_start;
  info.options.use_pull = meta.use_pull != 0;
  info.options.frontier_density_threshold = meta.frontier_density_threshold;
  info.options.topk_frontier_density_threshold =
      meta.topk_frontier_density_threshold;
  info.file_bytes = parsed.header.file_bytes;
  info.section_count = parsed.header.section_count;
  return info;
}

/// A section payload as a SharedArray at the chosen materialization: a
/// non-owning view pinning the mapping (kMap) or an owned heap copy
/// (kCopy).
template <typename T>
la::SharedArray<T> SectionArray(const ParsedSnapshot& parsed, SectionId id,
                                LoadMode mode) {
  const SectionDesc& desc = *parsed.Find(id);
  const T* data = reinterpret_cast<const T*>(parsed.Payload(desc));
  const size_t count = desc.size_bytes / sizeof(T);
  if (mode == LoadMode::kMap) {
    return la::SharedArray<T>::View(parsed.file, data, count);
  }
  return la::SharedArray<T>(std::vector<T>(data, data + count));
}

/// A section payload copied into a vector (the O(n) arrays Tpa and
/// Permutation keep as plain vectors regardless of load mode).
template <typename T>
std::vector<T> SectionVector(const ParsedSnapshot& parsed, SectionId id) {
  const SectionDesc& desc = *parsed.Find(id);
  const T* data = reinterpret_cast<const T*>(parsed.Payload(desc));
  return std::vector<T>(data, data + desc.size_bytes / sizeof(T));
}

}  // namespace

Status WriteSnapshot(const Tpa& tpa, const std::string& path) {
  const Graph& graph = tpa.graph();
  const la::CsrStructure& out_structure = GraphFactory::OutStructure(graph);
  const la::CsrStructure& in_structure = GraphFactory::InStructure(graph);
  const uint64_t n = graph.num_nodes();
  const uint64_t m = graph.num_edges();
  const bool explicit_values =
      graph.value_storage() == ValueStorage::kExplicit;
  const bool has_fp64 = graph.HasTier(la::Precision::kFloat64);
  const bool has_fp32 = graph.HasTier(la::Precision::kFloat32);

  MetaSection meta = {};
  meta.num_nodes = n;
  meta.num_edges = m;
  meta.precision = static_cast<uint32_t>(graph.value_precision());
  meta.value_storage = static_cast<uint32_t>(graph.value_storage());
  meta.has_fp64 = has_fp64 ? 1 : 0;
  meta.has_fp32 = has_fp32 ? 1 : 0;
  meta.has_permutation = graph.permutation() != nullptr ? 1 : 0;
  const TpaOptions& options = tpa.options();
  meta.restart_probability = options.restart_probability;
  meta.tolerance = options.tolerance;
  meta.family_window = options.family_window;
  meta.stranger_start = options.stranger_start;
  meta.use_pull = options.use_pull ? 1 : 0;
  meta.frontier_density_threshold = options.frontier_density_threshold;
  meta.topk_frontier_density_threshold =
      options.topk_frontier_density_threshold;

  std::vector<PendingSection> sections;
  sections.push_back({SectionId::kMeta, &meta, sizeof(meta)});
  PushArraySection(sections, SectionId::kOutOffsets,
                   out_structure.row_offsets.data(), n + 1);
  PushArraySection(sections, SectionId::kOutIndices,
                   out_structure.col_indices.data(), m);
  PushArraySection(sections, SectionId::kInOffsets,
                   in_structure.row_offsets.data(), n + 1);
  PushArraySection(sections, SectionId::kInIndices,
                   in_structure.col_indices.data(), m);
  if (has_fp64) {
    if (explicit_values) {
      PushArraySection(sections, SectionId::kOutValuesF64,
                       graph.Transition().values().data(), m);
      PushArraySection(sections, SectionId::kInValuesF64,
                       graph.TransitionTranspose().values().data(), m);
    } else {
      // The out-CSR's per-row scales and the in-CSR's per-column scales
      // hold the same n numbers (1/out-degree); one section serves both.
      PushArraySection(sections, SectionId::kScalesF64,
                       graph.Transition().scales().data(), n);
    }
  }
  if (has_fp32) {
    if (explicit_values) {
      PushArraySection(sections, SectionId::kOutValuesF32,
                       graph.TransitionF().values().data(), m);
      PushArraySection(sections, SectionId::kInValuesF32,
                       graph.TransitionTransposeF().values().data(), m);
    } else {
      PushArraySection(sections, SectionId::kScalesF32,
                       graph.TransitionF().scales().data(), n);
    }
  }
  if (tpa.precision() == la::Precision::kFloat64) {
    PushArraySection(sections, SectionId::kStrangerF64,
                     tpa.stranger_scores().data(), n);
  } else {
    PushArraySection(sections, SectionId::kStrangerF32,
                     tpa.stranger_scores_f32().data(), n);
  }
  PushArraySection(sections, SectionId::kStrangerOrder,
                   tpa.stranger_order().data(), n);
  if (graph.permutation() != nullptr) {
    PushArraySection(sections, SectionId::kPermutation,
                     graph.permutation()->external_of_internal().data(), n);
  }

  // Lay out the file and checksum every payload before the first write, so
  // the header and table land in one forward pass.
  std::vector<SectionDesc> table(sections.size());
  uint64_t offset = AlignUp(
      sizeof(SnapshotHeader) + sections.size() * sizeof(SectionDesc),
      kSectionAlignment);
  for (size_t i = 0; i < sections.size(); ++i) {
    table[i] = {};
    table[i].id = static_cast<uint32_t>(sections[i].id);
    table[i].offset = offset;
    table[i].size_bytes = sections[i].size_bytes;
    table[i].crc = Crc32(sections[i].data, sections[i].size_bytes);
    offset = AlignUp(offset + sections[i].size_bytes, kSectionAlignment);
  }
  const uint64_t last = table.back().offset + table.back().size_bytes;

  SnapshotHeader header = {};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.endian_tag = kEndianTag;
  header.format_version = kFormatVersion;
  header.file_bytes = last;
  header.section_table_offset = sizeof(SnapshotHeader);
  header.section_count = static_cast<uint32_t>(table.size());
  header.section_table_crc =
      Crc32(table.data(), table.size() * sizeof(SectionDesc));

  TPA_ASSIGN_OR_RETURN(BinaryFileWriter writer,
                       BinaryFileWriter::Create(path));
  TPA_RETURN_IF_ERROR(writer.WriteBytes(&header, sizeof(header)));
  TPA_RETURN_IF_ERROR(
      writer.WriteBytes(table.data(), table.size() * sizeof(SectionDesc)));
  for (size_t i = 0; i < sections.size(); ++i) {
    TPA_RETURN_IF_ERROR(writer.AlignTo(kSectionAlignment));
    TPA_RETURN_IF_ERROR(
        writer.WriteBytes(sections[i].data, sections[i].size_bytes));
  }
  return writer.Close();
}

StatusOr<LoadedSnapshot> LoadSnapshot(const std::string& path,
                                      const LoadOptions& options) {
  TPA_FAILPOINT("snapshot.load");
  const LoadMode mode = options.mode;
  TPA_ASSIGN_OR_RETURN(
      ParsedSnapshot parsed,
      ParseSnapshot(path, options.verify, options.steward));
  const MetaSection& meta = parsed.meta;
  const uint64_t n = meta.num_nodes;
  if (mode == LoadMode::kMap && options.advice != MappedAdvice::kNormal) {
    (void)parsed.file->Advise(options.advice);  // best-effort
  }

  GraphFactory::Parts parts;
  parts.num_nodes = static_cast<NodeId>(n);
  parts.precision = static_cast<la::Precision>(meta.precision);
  parts.value_storage = static_cast<ValueStorage>(meta.value_storage);
  parts.has_fp64 = meta.has_fp64 != 0;
  parts.has_fp32 = meta.has_fp32 != 0;
  parts.out_structure.rows = static_cast<uint32_t>(n);
  parts.out_structure.cols = static_cast<uint32_t>(n);
  parts.out_structure.row_offsets =
      SectionArray<uint64_t>(parsed, SectionId::kOutOffsets, mode);
  parts.out_structure.col_indices =
      SectionArray<uint32_t>(parsed, SectionId::kOutIndices, mode);
  parts.in_structure.rows = static_cast<uint32_t>(n);
  parts.in_structure.cols = static_cast<uint32_t>(n);
  parts.in_structure.row_offsets =
      SectionArray<uint64_t>(parsed, SectionId::kInOffsets, mode);
  parts.in_structure.col_indices =
      SectionArray<uint32_t>(parsed, SectionId::kInIndices, mode);
  const bool explicit_values =
      parts.value_storage == ValueStorage::kExplicit;
  if (parts.has_fp64) {
    if (explicit_values) {
      parts.out_values64 =
          SectionArray<double>(parsed, SectionId::kOutValuesF64, mode);
      parts.in_values64 =
          SectionArray<double>(parsed, SectionId::kInValuesF64, mode);
    } else {
      parts.scales64 =
          SectionArray<double>(parsed, SectionId::kScalesF64, mode);
    }
  }
  if (parts.has_fp32) {
    if (explicit_values) {
      parts.out_values32 =
          SectionArray<float>(parsed, SectionId::kOutValuesF32, mode);
      parts.in_values32 =
          SectionArray<float>(parsed, SectionId::kInValuesF32, mode);
    } else {
      parts.scales32 =
          SectionArray<float>(parsed, SectionId::kScalesF32, mode);
    }
  }
  if (meta.has_permutation) {
    TPA_ASSIGN_OR_RETURN(
        Permutation permutation,
        Permutation::FromInternalOrder(
            SectionVector<NodeId>(parsed, SectionId::kPermutation)));
    parts.permutation =
        std::make_shared<const Permutation>(std::move(permutation));
  }

  LoadedSnapshot loaded;
  loaded.info = InfoFromParsed(parsed);
  loaded.graph = GraphFactory::Make(std::move(parts));

  std::vector<double> stranger;
  std::vector<float> stranger_f;
  if (meta.precision == static_cast<uint32_t>(la::Precision::kFloat64)) {
    stranger = SectionVector<double>(parsed, SectionId::kStrangerF64);
  } else {
    stranger_f = SectionVector<float>(parsed, SectionId::kStrangerF32);
  }
  TPA_ASSIGN_OR_RETURN(
      Tpa tpa,
      Tpa::FromPreprocessedState(
          *loaded.graph, loaded.info.options, std::move(stranger),
          std::move(stranger_f),
          SectionVector<NodeId>(parsed, SectionId::kStrangerOrder)));
  loaded.tpa = std::make_unique<Tpa>(std::move(tpa));
  if (mode == LoadMode::kMap) loaded.mapped_file = parsed.file;
  return loaded;
}

StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  TPA_ASSIGN_OR_RETURN(ParsedSnapshot parsed, ParseSnapshot(path, false));
  return InfoFromParsed(parsed);
}

Status VerifySnapshot(const std::string& path) {
  TPA_ASSIGN_OR_RETURN(ParsedSnapshot parsed, ParseSnapshot(path, true));
  (void)parsed;
  return OkStatus();
}

}  // namespace tpa::snapshot

namespace tpa {

Status Tpa::SaveSnapshot(const std::string& path) const {
  return snapshot::WriteSnapshot(*this, path);
}

StatusOr<snapshot::LoadedSnapshot> Tpa::LoadSnapshot(
    const std::string& path) {
  return snapshot::LoadSnapshot(path);
}

StatusOr<snapshot::LoadedSnapshot> Tpa::LoadSnapshot(
    const std::string& path, const snapshot::LoadOptions& options) {
  return snapshot::LoadSnapshot(path, options);
}

}  // namespace tpa
