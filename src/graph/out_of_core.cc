#include "graph/out_of_core.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "la/csr_matrix.h"
#include "la/precision.h"
#include "la/shared_array.h"
#include "snapshot/graph_factory.h"

namespace tpa {

namespace {

constexpr char kOocMagic[8] = {'T', 'P', 'A', 'C', 'S', 'R', '1', '\0'};
constexpr uint32_t kOocEndianTag = 0x01020304u;
constexpr uint32_t kOocVersion = 1;
constexpr uint64_t kOocAlignment = 64;

/// Self-describing header of the file-backed CSR, so a previously built
/// file can be reopened (OpenOutOfCoreGraph) without re-running the build.
struct OocHeader {
  char magic[8];
  uint32_t endian_tag;
  uint32_t version;
  uint64_t num_nodes;
  uint64_t num_edges;
  uint32_t precision;      // la::Precision
  uint32_t value_storage;  // ValueStorage
  uint64_t file_bytes;
  uint8_t reserved[16];
};
static_assert(sizeof(OocHeader) == 64, "OOC CSR header is exactly 64 bytes");

uint64_t AlignUp(uint64_t offset, uint64_t alignment) {
  return (offset + alignment - 1) / alignment * alignment;
}

/// Byte offsets of every array in the CSR file — a pure function of the
/// graph dimensions and the value configuration, shared by the writer and
/// the reopen path.
struct OocLayout {
  uint64_t out_offsets = 0;
  uint64_t out_indices = 0;
  uint64_t in_offsets = 0;
  uint64_t in_indices = 0;
  /// kExplicit: per-edge out values then per-edge in values.
  /// kRowConstant: one n-length scales array (values_b unused).
  uint64_t values_a = 0;
  uint64_t values_b = 0;
  uint64_t total = 0;
};

OocLayout ComputeLayout(uint64_t n, uint64_t m, la::Precision precision,
                        ValueStorage storage) {
  const uint64_t value_bytes = la::PrecisionValueBytes(precision);
  OocLayout layout;
  uint64_t offset = sizeof(OocHeader);
  auto place = [&offset](uint64_t size) {
    offset = AlignUp(offset, kOocAlignment);
    const uint64_t at = offset;
    offset += size;
    return at;
  };
  layout.out_offsets = place((n + 1) * sizeof(uint64_t));
  layout.out_indices = place(m * sizeof(uint32_t));
  layout.in_offsets = place((n + 1) * sizeof(uint64_t));
  layout.in_indices = place(m * sizeof(uint32_t));
  if (storage == ValueStorage::kExplicit) {
    layout.values_a = place(m * value_bytes);
    layout.values_b = place(m * value_bytes);
  } else {
    layout.values_a = place(n * value_bytes);
  }
  layout.total = offset;
  return layout;
}

uint32_t EdgeHigh(uint64_t record) {
  return static_cast<uint32_t>(record >> 32);
}
uint32_t EdgeLow(uint64_t record) { return static_cast<uint32_t>(record); }

/// Explicit out-CSR values: every edge of row u carries 1/out-degree(u),
/// the fp64 reciprocal rounded once to V — Graph's OutWeights expression,
/// swept sequentially over the mapped arrays.
template <typename V>
void WriteOutValues(const uint64_t* out_offsets, uint64_t n, V* values) {
  for (uint64_t u = 0; u < n; ++u) {
    const uint64_t begin = out_offsets[u];
    const uint64_t end = out_offsets[u + 1];
    if (begin == end) continue;
    const V w = static_cast<V>(1.0 / static_cast<double>(end - begin));
    for (uint64_t e = begin; e < end; ++e) values[e] = w;
  }
}

/// Explicit in-CSR values: edge (v ← u) carries 1/out-degree(u) — Graph's
/// InWeights expression.  Streams in_indices sequentially; the out-offset
/// lookups are the one gather of the build.
template <typename V>
void WriteInValues(const uint64_t* out_offsets, const uint32_t* in_indices,
                   uint64_t m, V* values) {
  for (uint64_t e = 0; e < m; ++e) {
    const uint32_t u = in_indices[e];
    values[e] = static_cast<V>(
        1.0 / static_cast<double>(out_offsets[u + 1] - out_offsets[u]));
  }
}

/// Value-free scales: Graph's OutDegreeReciprocals expression (dangling
/// nodes 0).
template <typename V>
void WriteScales(const uint64_t* out_offsets, uint64_t n, V* scales) {
  for (uint64_t u = 0; u < n; ++u) {
    const uint64_t degree = out_offsets[u + 1] - out_offsets[u];
    scales[u] = degree == 0
                    ? V{0}
                    : static_cast<V>(1.0 / static_cast<double>(degree));
  }
}

/// Assembles the Graph over a mapped CSR file whose header has already been
/// validated.  `base` may be the writable or the read-only mapping.
StatusOr<OutOfCoreGraph> AssembleGraph(std::shared_ptr<MappedFile> file,
                                       const uint8_t* base) {
  const OocHeader* header = reinterpret_cast<const OocHeader*>(base);
  const uint64_t n = header->num_nodes;
  const uint64_t m = header->num_edges;
  const la::Precision precision =
      static_cast<la::Precision>(header->precision);
  const ValueStorage storage =
      static_cast<ValueStorage>(header->value_storage);
  const OocLayout layout = ComputeLayout(n, m, precision, storage);

  auto view_u64 = [&](uint64_t offset, uint64_t count) {
    return la::SharedArray<uint64_t>::View(
        file, reinterpret_cast<const uint64_t*>(base + offset), count);
  };
  auto view_u32 = [&](uint64_t offset, uint64_t count) {
    return la::SharedArray<uint32_t>::View(
        file, reinterpret_cast<const uint32_t*>(base + offset), count);
  };

  snapshot::GraphFactory::Parts parts;
  parts.num_nodes = static_cast<NodeId>(n);
  parts.precision = precision;
  parts.value_storage = storage;
  parts.has_fp64 = precision == la::Precision::kFloat64;
  parts.has_fp32 = precision == la::Precision::kFloat32;
  parts.out_structure.rows = static_cast<uint32_t>(n);
  parts.out_structure.cols = static_cast<uint32_t>(n);
  parts.out_structure.row_offsets = view_u64(layout.out_offsets, n + 1);
  parts.out_structure.col_indices = view_u32(layout.out_indices, m);
  parts.in_structure.rows = static_cast<uint32_t>(n);
  parts.in_structure.cols = static_cast<uint32_t>(n);
  parts.in_structure.row_offsets = view_u64(layout.in_offsets, n + 1);
  parts.in_structure.col_indices = view_u32(layout.in_indices, m);

  if (storage == ValueStorage::kExplicit) {
    if (parts.has_fp64) {
      parts.out_values64 = la::SharedArray<double>::View(
          file, reinterpret_cast<const double*>(base + layout.values_a), m);
      parts.in_values64 = la::SharedArray<double>::View(
          file, reinterpret_cast<const double*>(base + layout.values_b), m);
    } else {
      parts.out_values32 = la::SharedArray<float>::View(
          file, reinterpret_cast<const float*>(base + layout.values_a), m);
      parts.in_values32 = la::SharedArray<float>::View(
          file, reinterpret_cast<const float*>(base + layout.values_b), m);
    }
  } else {
    if (parts.has_fp64) {
      parts.scales64 = la::SharedArray<double>::View(
          file, reinterpret_cast<const double*>(base + layout.values_a), n);
    } else {
      parts.scales32 = la::SharedArray<float>::View(
          file, reinterpret_cast<const float*>(base + layout.values_a), n);
    }
  }

  OutOfCoreGraph result;
  result.graph = snapshot::GraphFactory::Make(std::move(parts));
  result.file_bytes = layout.total;
  result.file = std::move(file);
  return result;
}

Status ValidateOocHeader(const OocHeader& header, uint64_t mapped_bytes,
                         const std::string& path) {
  if (std::memcmp(header.magic, kOocMagic, sizeof(kOocMagic)) != 0) {
    return InvalidArgumentError("'" + path + "' is not a TPACSR1 file");
  }
  if (header.endian_tag != kOocEndianTag) {
    return InvalidArgumentError("'" + path +
                                "' was written on a different endianness");
  }
  if (header.version != kOocVersion) {
    return InvalidArgumentError("'" + path + "' has unsupported version " +
                                std::to_string(header.version));
  }
  TPA_RETURN_IF_ERROR(ValidateNodeCount(header.num_nodes));
  const OocLayout layout = ComputeLayout(
      header.num_nodes, header.num_edges,
      static_cast<la::Precision>(header.precision),
      static_cast<ValueStorage>(header.value_storage));
  if (header.file_bytes != layout.total || mapped_bytes < layout.total) {
    return InvalidArgumentError("'" + path + "' is truncated: header says " +
                                std::to_string(header.file_bytes) +
                                " bytes, layout needs " +
                                std::to_string(layout.total) + ", file has " +
                                std::to_string(mapped_bytes));
  }
  return OkStatus();
}

}  // namespace

StatusOr<OutOfCoreGraphBuilder> OutOfCoreGraphBuilder::Create(
    NodeId num_nodes, OutOfCoreOptions options) {
  TPA_RETURN_IF_ERROR(ValidateNodeCount(num_nodes));
  if (options.csr_path.empty()) {
    return InvalidArgumentError("OutOfCoreOptions.csr_path is required");
  }
  if (options.build.node_ordering != NodeOrdering::kOriginal) {
    return UnimplementedError(
        "out-of-core builds support NodeOrdering::kOriginal only (locality "
        "orderings need the edge list in RAM)");
  }

  // The two chunk buffers are the builder's dominant heap use; give each
  // 1/8 of the budget so the merge buffers, the dangling bitset, and the
  // mapped-page working set fit comfortably in the rest.
  ExternalU64Sorter::Options sorter_options;
  if (options.memory_budget_bytes > 0) {
    const size_t chunk_bytes =
        std::max<size_t>(options.memory_budget_bytes / 8, size_t{1} << 20);
    sorter_options.chunk_records = chunk_bytes / sizeof(uint64_t);
  }
  const std::string spill_prefix =
      options.spill_dir.empty() ? options.csr_path
                                : options.spill_dir + "/tpa-ooc";

  OutOfCoreGraphBuilder builder;
  builder.num_nodes_ = num_nodes;

  sorter_options.spill_path = spill_prefix + ".spill-out";
  TPA_ASSIGN_OR_RETURN(ExternalU64Sorter fwd,
                       ExternalU64Sorter::Create(sorter_options));
  builder.fwd_ = std::make_unique<ExternalU64Sorter>(std::move(fwd));

  sorter_options.spill_path = spill_prefix + ".spill-in";
  TPA_ASSIGN_OR_RETURN(ExternalU64Sorter rev,
                       ExternalU64Sorter::Create(sorter_options));
  builder.rev_ = std::make_unique<ExternalU64Sorter>(std::move(rev));

  builder.options_ = std::move(options);
  return builder;
}

Status OutOfCoreGraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return InvalidArgumentError(
        "edge (" + std::to_string(u) + ", " + std::to_string(v) +
        ") out of range for " + std::to_string(num_nodes_) + " nodes");
  }
  if (options_.build.remove_self_loops && u == v) return OkStatus();
  TPA_RETURN_IF_ERROR(
      fwd_->Add((static_cast<uint64_t>(u) << 32) | v));
  TPA_RETURN_IF_ERROR(
      rev_->Add((static_cast<uint64_t>(v) << 32) | u));
  ++added_edges_;
  return OkStatus();
}

uint64_t OutOfCoreGraphBuilder::spilled_bytes() const {
  return (fwd_ ? fwd_->spilled_bytes() : 0) +
         (rev_ ? rev_->spilled_bytes() : 0);
}

StatusOr<OutOfCoreGraph> OutOfCoreGraphBuilder::Build() {
  const uint64_t n = num_nodes_;
  const bool dedupe = options_.build.deduplicate;
  const bool add_self_loops =
      options_.build.dangling_policy == DanglingPolicy::kAddSelfLoop;
  TPA_RETURN_IF_ERROR(fwd_->Seal());
  TPA_RETURN_IF_ERROR(rev_->Seal());
  TPA_RETURN_IF_ERROR(ValidateEdgeCount(n, fwd_->record_count()));

  // Counting pass: one streamed merge determines the cleaned edge count
  // (duplicates collapsed, dangling self-loops added), which sizes the
  // file before a single CSR byte is written.
  uint64_t kept = 0;
  uint64_t nodes_with_out = 0;
  {
    TPA_ASSIGN_OR_RETURN(ExternalU64Sorter::MergeStream stream,
                         fwd_->Merge());
    uint64_t record = 0, prev = 0;
    bool has_prev = false;
    while (stream.Next(&record)) {
      if (!has_prev || EdgeHigh(record) != EdgeHigh(prev)) ++nodes_with_out;
      if (!(dedupe && has_prev && record == prev)) ++kept;
      prev = record;
      has_prev = true;
    }
    TPA_RETURN_IF_ERROR(stream.status());
  }
  const uint64_t dangling = add_self_loops ? n - nodes_with_out : 0;
  const uint64_t m = kept + dangling;
  TPA_RETURN_IF_ERROR(ValidateEdgeCount(n, m));

  const la::Precision precision = options_.build.value_precision;
  const ValueStorage storage = options_.build.value_storage;
  const OocLayout layout = ComputeLayout(n, m, precision, storage);
  TPA_ASSIGN_OR_RETURN(MappedFile mapped,
                       MappedFile::Create(options_.csr_path, layout.total));
  auto file = std::make_shared<MappedFile>(std::move(mapped));
  uint8_t* base = file->mutable_data();
  if (options_.steward != nullptr) {
    options_.steward->RegisterRegion(file, base, file->size());
  }

  uint64_t* out_offsets =
      reinterpret_cast<uint64_t*>(base + layout.out_offsets);
  uint32_t* out_indices =
      reinterpret_cast<uint32_t*>(base + layout.out_indices);
  uint64_t* in_offsets = reinterpret_cast<uint64_t*>(base + layout.in_offsets);
  uint32_t* in_indices = reinterpret_cast<uint32_t*>(base + layout.in_indices);

  // One bit per node: which rows received a dangling self-loop in the out
  // pass (the transpose pass must merge the same loops in).  The only O(n)
  // heap the build keeps.
  std::vector<uint64_t> dangling_bits;
  if (add_self_loops) dangling_bits.assign((n + 63) / 64, 0);
  auto mark_dangling = [&dangling_bits](uint64_t u) {
    dangling_bits[u >> 6] |= uint64_t{1} << (u & 63);
  };
  auto is_dangling = [&dangling_bits](uint64_t u) {
    return (dangling_bits[u >> 6] >> (u & 63)) & 1;
  };

  // Out pass: sequential write of offsets and indices off the (u, v)-sorted
  // stream, collapsing duplicates and appending a self-loop to every row
  // that would otherwise stay empty — the streaming equivalent of the
  // in-RAM builder's erase/unique/inplace_merge cleaning.
  {
    TPA_ASSIGN_OR_RETURN(ExternalU64Sorter::MergeStream stream,
                         fwd_->Merge());
    uint64_t record = 0;
    bool have = stream.Next(&record);
    uint64_t pos = 0;
    out_offsets[0] = 0;
    for (uint64_t u = 0; u < n; ++u) {
      uint64_t row_begin = pos;
      uint64_t prev = 0;
      bool has_prev = false;
      while (have && EdgeHigh(record) == u) {
        if (!(dedupe && has_prev && record == prev)) {
          out_indices[pos++] = EdgeLow(record);
        }
        prev = record;
        has_prev = true;
        have = stream.Next(&record);
      }
      if (pos == row_begin && add_self_loops) {
        out_indices[pos++] = static_cast<uint32_t>(u);
        mark_dangling(u);
      }
      TPA_RETURN_IF_ERROR(ValidateRowDegree(u, pos - row_begin));
      out_offsets[u + 1] = pos;
    }
    TPA_RETURN_IF_ERROR(stream.status());
    if (have || pos != m) {
      return InternalError(
          "out-of-core out pass wrote " + std::to_string(pos) +
          " edges, counting pass said " + std::to_string(m));
    }
  }

  // In pass: same streaming cleanup off the (v, u)-sorted transpose order,
  // with each dangling row's self-loop inserted at its sorted position
  // among the sources.
  {
    TPA_ASSIGN_OR_RETURN(ExternalU64Sorter::MergeStream stream,
                         rev_->Merge());
    uint64_t record = 0;
    bool have = stream.Next(&record);
    uint64_t pos = 0;
    in_offsets[0] = 0;
    for (uint64_t v = 0; v < n; ++v) {
      const uint64_t row_begin = pos;
      bool inserted = !(add_self_loops && is_dangling(v));
      uint64_t prev = 0;
      bool has_prev = false;
      while (have && EdgeHigh(record) == v) {
        const uint32_t u = EdgeLow(record);
        if (!(dedupe && has_prev && record == prev)) {
          if (!inserted && u > v) {
            in_indices[pos++] = static_cast<uint32_t>(v);
            inserted = true;
          }
          in_indices[pos++] = u;
        }
        prev = record;
        has_prev = true;
        have = stream.Next(&record);
      }
      if (!inserted) in_indices[pos++] = static_cast<uint32_t>(v);
      TPA_RETURN_IF_ERROR(ValidateRowDegree(v, pos - row_begin));
      in_offsets[v + 1] = pos;
    }
    TPA_RETURN_IF_ERROR(stream.status());
    if (have || pos != m) {
      return InternalError(
          "out-of-core in pass wrote " + std::to_string(pos) +
          " edges, counting pass said " + std::to_string(m));
    }
  }

  // Value passes, same expressions as the in-RAM Graph's tier
  // materialization.
  if (storage == ValueStorage::kExplicit) {
    if (precision == la::Precision::kFloat64) {
      WriteOutValues(out_offsets, n,
                     reinterpret_cast<double*>(base + layout.values_a));
      WriteInValues(out_offsets, in_indices, m,
                    reinterpret_cast<double*>(base + layout.values_b));
    } else {
      WriteOutValues(out_offsets, n,
                     reinterpret_cast<float*>(base + layout.values_a));
      WriteInValues(out_offsets, in_indices, m,
                    reinterpret_cast<float*>(base + layout.values_b));
    }
  } else {
    if (precision == la::Precision::kFloat64) {
      WriteScales(out_offsets, n,
                  reinterpret_cast<double*>(base + layout.values_a));
    } else {
      WriteScales(out_offsets, n,
                  reinterpret_cast<float*>(base + layout.values_a));
    }
  }

  OocHeader header = {};
  std::memcpy(header.magic, kOocMagic, sizeof(kOocMagic));
  header.endian_tag = kOocEndianTag;
  header.version = kOocVersion;
  header.num_nodes = n;
  header.num_edges = m;
  header.precision = static_cast<uint32_t>(precision);
  header.value_storage = static_cast<uint32_t>(storage);
  header.file_bytes = layout.total;
  std::memcpy(base, &header, sizeof(header));

  if (options_.sync_on_finish) TPA_RETURN_IF_ERROR(file->Sync());

  // The spill files are no longer needed; drop them before the graph goes
  // to work so the disk footprint is just the CSR.
  fwd_.reset();
  rev_.reset();

  return AssembleGraph(std::move(file), base);
}

StatusOr<OutOfCoreGraph> OpenOutOfCoreGraph(const std::string& csr_path) {
  TPA_ASSIGN_OR_RETURN(MappedFile mapped, MappedFile::Open(csr_path));
  if (mapped.size() < sizeof(OocHeader)) {
    return InvalidArgumentError("'" + csr_path +
                                "' is too small to be a TPACSR1 file");
  }
  auto file = std::make_shared<MappedFile>(std::move(mapped));
  const uint8_t* base = file->data();
  const OocHeader* header = reinterpret_cast<const OocHeader*>(base);
  TPA_RETURN_IF_ERROR(ValidateOocHeader(*header, file->size(), csr_path));
  return AssembleGraph(std::move(file), base);
}

}  // namespace tpa
