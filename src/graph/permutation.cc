#include "graph/permutation.h"

#include <utility>

#include "util/check.h"

namespace tpa {

StatusOr<Permutation> Permutation::FromInternalOrder(
    std::vector<NodeId> external_of_internal) {
  const size_t n = external_of_internal.size();
  if (n == 0) return InvalidArgumentError("permutation must be non-empty");
  std::vector<NodeId> internal_of_external(n, static_cast<NodeId>(n));
  for (size_t p = 0; p < n; ++p) {
    const NodeId ext = external_of_internal[p];
    if (ext >= n) {
      return InvalidArgumentError("permutation entry out of range");
    }
    if (internal_of_external[ext] != static_cast<NodeId>(n)) {
      return InvalidArgumentError("permutation entry repeated");
    }
    internal_of_external[ext] = static_cast<NodeId>(p);
  }
  return Permutation(std::move(internal_of_external),
                     std::move(external_of_internal));
}

std::vector<double> Permutation::ScoresToExternal(
    const std::vector<double>& internal_scores) const {
  TPA_DCHECK(internal_scores.size() == external_of_internal_.size());
  std::vector<double> external(internal_scores.size());
  for (size_t e = 0; e < external.size(); ++e) {
    external[e] = internal_scores[internal_of_external_[e]];
  }
  return external;
}

std::vector<double> Permutation::ValuesToInternal(
    const std::vector<double>& external_values) const {
  TPA_DCHECK(external_values.size() == external_of_internal_.size());
  std::vector<double> internal(external_values.size());
  for (size_t p = 0; p < internal.size(); ++p) {
    internal[p] = external_values[external_of_internal_[p]];
  }
  return internal;
}

}  // namespace tpa
