#include "graph/permutation.h"

#include <utility>

#include "util/check.h"

namespace tpa {

StatusOr<Permutation> Permutation::FromInternalOrder(
    std::vector<NodeId> external_of_internal) {
  const size_t n = external_of_internal.size();
  if (n == 0) return InvalidArgumentError("permutation must be non-empty");
  std::vector<NodeId> internal_of_external(n, static_cast<NodeId>(n));
  for (size_t p = 0; p < n; ++p) {
    const NodeId ext = external_of_internal[p];
    if (ext >= n) {
      return InvalidArgumentError("permutation entry out of range");
    }
    if (internal_of_external[ext] != static_cast<NodeId>(n)) {
      return InvalidArgumentError("permutation entry repeated");
    }
    internal_of_external[ext] = static_cast<NodeId>(p);
  }
  return Permutation(std::move(internal_of_external),
                     std::move(external_of_internal));
}

}  // namespace tpa
