#include "graph/builder.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "graph/permutation.h"
#include "reorder/slashburn.h"
#include "util/check.h"

namespace tpa {

namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

/// The out-adjacency half of the CSR build (counting sort over the sorted
/// edge list) — all the structure SlashBurn's ordering pass needs, without
/// the transpose, the weights, or Graph validation.
std::pair<std::vector<uint64_t>, std::vector<NodeId>> OutAdjacency(
    NodeId num_nodes, const EdgeList& edges) {
  const size_t m = edges.size();
  std::vector<uint64_t> out_offsets(static_cast<size_t>(num_nodes) + 1, 0);
  std::vector<NodeId> out_targets(m);
  for (const auto& [u, v] : edges) ++out_offsets[u + 1];
  for (size_t i = 1; i < out_offsets.size(); ++i) {
    out_offsets[i] += out_offsets[i - 1];
  }
  {
    std::vector<uint64_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
    for (const auto& [u, v] : edges) out_targets[cursor[u]++] = v;
  }
  return {std::move(out_offsets), std::move(out_targets)};
}

/// Converts a cleaned (sorted, deduplicated, dangling-resolved) edge list
/// into the CSR Graph.  `edges` must be sorted by (u, v).
StatusOr<Graph> FinalizeCsr(NodeId num_nodes, const EdgeList& edges,
                            la::Precision precision = la::Precision::kFloat64,
                            ValueStorage value_storage =
                                ValueStorage::kExplicit) {
  const size_t m = edges.size();
  TPA_RETURN_IF_ERROR(ValidateEdgeCount(num_nodes, m));
  auto [out_offsets, out_targets] = OutAdjacency(num_nodes, edges);
  for (NodeId u = 0; u < num_nodes; ++u) {
    TPA_RETURN_IF_ERROR(
        ValidateRowDegree(u, out_offsets[u + 1] - out_offsets[u]));
  }

  // Transpose (counting sort by target); sources end up sorted within each
  // in-list because `edges` is sorted by (u, v).
  std::vector<uint64_t> in_offsets(static_cast<size_t>(num_nodes) + 1, 0);
  std::vector<NodeId> in_sources(m);
  for (const auto& [u, v] : edges) ++in_offsets[v + 1];
  for (size_t i = 1; i < in_offsets.size(); ++i) {
    in_offsets[i] += in_offsets[i - 1];
  }
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (const auto& [u, v] : edges) in_sources[cursor[v]++] = u;
  }
  for (NodeId v = 0; v < num_nodes; ++v) {
    TPA_RETURN_IF_ERROR(
        ValidateRowDegree(v, in_offsets[v + 1] - in_offsets[v]));
  }

  return Graph(num_nodes, std::move(out_offsets), std::move(out_targets),
               std::move(in_offsets), std::move(in_sources), precision,
               value_storage);
}

/// Internal storage order for kDegreeDescending: total (in+out) degree
/// descending, ties toward the smaller original id, so hubs cluster at the
/// low internal ids without a throwaway CSR build.
std::vector<NodeId> DegreeDescendingOrder(NodeId num_nodes,
                                          const EdgeList& edges) {
  std::vector<uint64_t> degree(num_nodes, 0);
  for (const auto& [u, v] : edges) {
    ++degree[u];
    ++degree[v];
  }
  std::vector<NodeId> order(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) order[u] = u;
  std::stable_sort(order.begin(), order.end(),
                   [&degree](NodeId a, NodeId b) {
                     if (degree[a] != degree[b]) return degree[a] > degree[b];
                     return a < b;
                   });
  return order;
}

/// Internal storage order for kHubCluster: SlashBurn over the out-adjacency
/// arrays of the cleaned edges (spokes first in component blocks, hubs
/// contiguous at the end).  No throwaway Graph build — the ordering pass
/// never needs the transpose or the normalized weights.
StatusOr<std::vector<NodeId>> HubClusterOrder(NodeId num_nodes,
                                              const EdgeList& edges) {
  const auto [out_offsets, out_targets] = OutAdjacency(num_nodes, edges);
  TPA_ASSIGN_OR_RETURN(HubSpokeOrdering ordering,
                       SlashBurn(num_nodes, out_offsets, out_targets, {}));
  return std::move(ordering.old_of_new);
}

}  // namespace

Status ValidateNodeCount(uint64_t num_nodes) {
  if (num_nodes == 0) {
    return InvalidArgumentError("graph must have at least one node");
  }
  // NodeId is uint32 and the offset arrays hold num_nodes + 1 entries, so
  // the largest representable node count is 2^32 - 1.
  constexpr uint64_t kMaxNodes = uint64_t{0xFFFFFFFF};
  if (num_nodes > kMaxNodes) {
    return InvalidArgumentError("node count " + std::to_string(num_nodes) +
                                " exceeds the uint32 node-id limit " +
                                std::to_string(kMaxNodes));
  }
  return OkStatus();
}

Status ValidateRowDegree(uint64_t node, uint64_t degree) {
  constexpr uint64_t kMaxDegree = uint64_t{0xFFFFFFFF};
  if (degree > kMaxDegree) {
    return InvalidArgumentError(
        "node " + std::to_string(node) + " has degree " +
        std::to_string(degree) +
        ", which exceeds the uint32 per-row limit " +
        std::to_string(kMaxDegree));
  }
  return OkStatus();
}

Status ValidateEdgeCount(uint64_t num_nodes, uint64_t num_edges) {
  TPA_RETURN_IF_ERROR(ValidateNodeCount(num_nodes));
  // Leave headroom for one dangling self-loop per node so the uint64 nnz
  // arithmetic (and the final offsets entry) cannot wrap mid-build.
  const uint64_t limit = UINT64_MAX - num_nodes;
  if (num_edges > limit) {
    return InvalidArgumentError(
        "edge count " + std::to_string(num_edges) + " with " +
        std::to_string(num_nodes) +
        " nodes overflows the uint64 offset arithmetic (limit " +
        std::to_string(limit) + ")");
  }
  return OkStatus();
}

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  TPA_CHECK_LT(u, num_nodes_);
  TPA_CHECK_LT(v, num_nodes_);
  edges_.emplace_back(u, v);
}

void GraphBuilder::AddEdges(
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const auto& [u, v] : edges) AddEdge(u, v);
}

StatusOr<Graph> GraphBuilder::Build(const BuildOptions& options) {
  if (num_nodes_ == 0) {
    return InvalidArgumentError("graph must have at least one node");
  }
  EdgeList edges = std::move(edges_);
  edges_.clear();

  if (options.remove_self_loops) {
    std::erase_if(edges, [](const auto& e) { return e.first == e.second; });
  }
  std::sort(edges.begin(), edges.end());
  if (options.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  if (options.dangling_policy == DanglingPolicy::kAddSelfLoop) {
    // Find nodes with no out-edge and append self-loops, keeping sort order
    // by a final merge.
    std::vector<bool> has_out(num_nodes_, false);
    for (const auto& [u, v] : edges) has_out[u] = true;
    EdgeList loops;
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (!has_out[u]) loops.emplace_back(u, u);
    }
    if (!loops.empty()) {
      const size_t mid = edges.size();
      edges.insert(edges.end(), loops.begin(), loops.end());
      std::inplace_merge(edges.begin(),
                         edges.begin() + static_cast<long>(mid), edges.end());
    }
  }

  if (options.node_ordering == NodeOrdering::kOriginal) {
    return FinalizeCsr(num_nodes_, edges, options.value_precision,
                       options.value_storage);
  }

  // Locality ordering: compute the internal storage order on the cleaned
  // edges (degrees and components are invariant under the dangling policy's
  // self-loops), relabel every endpoint, re-sort, and attach the mapping so
  // the serving boundary can translate back.  Self-loops stay self-loops and
  // degrees are preserved, so no cleaning step needs re-running.
  std::vector<NodeId> external_of_internal;
  if (options.node_ordering == NodeOrdering::kDegreeDescending) {
    external_of_internal = DegreeDescendingOrder(num_nodes_, edges);
  } else {
    TPA_ASSIGN_OR_RETURN(external_of_internal,
                         HubClusterOrder(num_nodes_, edges));
  }
  TPA_ASSIGN_OR_RETURN(
      Permutation permutation,
      Permutation::FromInternalOrder(std::move(external_of_internal)));

  const std::vector<NodeId>& to_internal = permutation.internal_of_external();
  for (auto& [u, v] : edges) {
    u = to_internal[u];
    v = to_internal[v];
  }
  std::sort(edges.begin(), edges.end());

  TPA_ASSIGN_OR_RETURN(Graph graph,
                       FinalizeCsr(num_nodes_, edges, options.value_precision,
                                   options.value_storage));
  graph.AttachPermutation(
      std::make_shared<const Permutation>(std::move(permutation)));
  return graph;
}

}  // namespace tpa
