#include "graph/builder.h"

#include <algorithm>

#include "util/check.h"

namespace tpa {

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  TPA_CHECK_LT(u, num_nodes_);
  TPA_CHECK_LT(v, num_nodes_);
  edges_.emplace_back(u, v);
}

void GraphBuilder::AddEdges(
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const auto& [u, v] : edges) AddEdge(u, v);
}

StatusOr<Graph> GraphBuilder::Build(const BuildOptions& options) {
  if (num_nodes_ == 0) {
    return InvalidArgumentError("graph must have at least one node");
  }
  std::vector<std::pair<NodeId, NodeId>> edges = std::move(edges_);
  edges_.clear();

  if (options.remove_self_loops) {
    std::erase_if(edges, [](const auto& e) { return e.first == e.second; });
  }
  std::sort(edges.begin(), edges.end());
  if (options.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  if (options.dangling_policy == DanglingPolicy::kAddSelfLoop) {
    // Find nodes with no out-edge and append self-loops, keeping sort order
    // by a final merge.
    std::vector<bool> has_out(num_nodes_, false);
    for (const auto& [u, v] : edges) has_out[u] = true;
    std::vector<std::pair<NodeId, NodeId>> loops;
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (!has_out[u]) loops.emplace_back(u, u);
    }
    if (!loops.empty()) {
      const size_t mid = edges.size();
      edges.insert(edges.end(), loops.begin(), loops.end());
      std::inplace_merge(edges.begin(),
                         edges.begin() + static_cast<long>(mid), edges.end());
    }
  }

  const size_t m = edges.size();
  std::vector<uint64_t> out_offsets(static_cast<size_t>(num_nodes_) + 1, 0);
  std::vector<NodeId> out_targets(m);
  for (const auto& [u, v] : edges) ++out_offsets[u + 1];
  for (size_t i = 1; i < out_offsets.size(); ++i) {
    out_offsets[i] += out_offsets[i - 1];
  }
  {
    std::vector<uint64_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
    for (const auto& [u, v] : edges) out_targets[cursor[u]++] = v;
  }

  // Transpose (counting sort by target); sources end up sorted within each
  // in-list because `edges` is sorted by (u, v).
  std::vector<uint64_t> in_offsets(static_cast<size_t>(num_nodes_) + 1, 0);
  std::vector<NodeId> in_sources(m);
  for (const auto& [u, v] : edges) ++in_offsets[v + 1];
  for (size_t i = 1; i < in_offsets.size(); ++i) {
    in_offsets[i] += in_offsets[i - 1];
  }
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (const auto& [u, v] : edges) in_sources[cursor[v]++] = u;
  }

  return Graph(num_nodes_, std::move(out_offsets), std::move(out_targets),
               std::move(in_offsets), std::move(in_sources));
}

}  // namespace tpa
