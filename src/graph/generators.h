#ifndef TPA_GRAPH_GENERATORS_H_
#define TPA_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/out_of_core.h"
#include "util/status.h"

namespace tpa {

/// Synthetic graph generators.
///
/// The paper evaluates on seven public graphs (up to 2.6B edges) that are not
/// redistributable here and exceed a CI machine anyway.  The generators below
/// produce scaled-down graphs with the two structural properties TPA's
/// approximations depend on: block-wise community structure (neighbor
/// approximation, Section III-B) and heavy-tailed degrees (stranger
/// approximation's density argument, Section III-A).  All generators are
/// deterministic functions of their seed.

struct ErdosRenyiOptions {
  NodeId nodes = 0;
  uint64_t edges = 0;   // exact count of distinct directed non-loop edges
  uint64_t seed = 1;
};

/// G(n, m) with exactly `edges` distinct directed edges (no self-loops).
/// This is the "random graph" twin used by the Figure 6 experiment.
/// Fails if edges exceeds n*(n-1) or nodes == 0.
StatusOr<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options);

struct RmatOptions {
  uint32_t scale = 10;   // n = 2^scale
  uint64_t edges = 0;    // number of edge draws (duplicates collapse)
  double a = 0.57, b = 0.19, c = 0.19;  // quadrant probabilities; d = 1-a-b-c
  uint64_t seed = 1;
};

/// Recursive-matrix (R-MAT) generator: heavy-tailed, self-similar graphs of
/// the kind common in the graph-mining literature.  Fails on invalid
/// probabilities (each in (0,1), a+b+c < 1) or edges == 0.
/// `build_options` selects the finalized graph's precision tier, value
/// storage, and node ordering (tpa_snapshot's build path).
StatusOr<Graph> GenerateRmat(const RmatOptions& options,
                             const BuildOptions& build_options = {});

/// The same R-MAT draw sequence streamed through OutOfCoreGraphBuilder:
/// edges spill to disk in bounded chunks instead of accumulating on the
/// heap, and the result is a Graph served off a file-backed CSR.  Identical
/// options and seed yield a graph bitwise-identical to GenerateRmat's (both
/// generators share one edge-draw routine, so they consume the Rng
/// identically), at a resident footprint set by
/// `ooc_options.memory_budget_bytes` instead of by the edge count.
/// `ooc_options.build` plays the role of `build_options` above, restricted
/// to NodeOrdering::kOriginal.
StatusOr<OutOfCoreGraph> GenerateRmatOutOfCore(const RmatOptions& options,
                                               OutOfCoreOptions ooc_options);

struct DcsbmOptions {
  NodeId nodes = 0;
  uint64_t edges = 0;      // number of edge draws (duplicates collapse)
  uint32_t blocks = 16;    // planted communities
  double intra_fraction = 0.85;  // probability an edge stays in-community
  double zipf_theta = 0.75;      // degree-weight exponent (0 = uniform)
  /// Inter-community edges draw both endpoints ∝ weight^γ — long-range
  /// links concentrate on hubs, the core-periphery trait of real networks
  /// (and the reason SlashBurn separates real communities: removing hubs
  /// cuts almost every inter-community edge).  1.0 = same skew as
  /// intra-community traffic.
  double inter_weight_exponent = 2.0;
  uint64_t seed = 1;
};

/// Degree-corrected stochastic block model: nodes carry Zipf weights and are
/// split into contiguous equal blocks; each edge draw keeps its endpoints in
/// one community with probability `intra_fraction`.  This is the generator
/// behind every `*-sim` dataset preset.
StatusOr<Graph> GenerateDcsbm(const DcsbmOptions& options);

}  // namespace tpa

#endif  // TPA_GRAPH_GENERATORS_H_
