#ifndef TPA_GRAPH_IO_H_
#define TPA_GRAPH_IO_H_

#include <string>

#include "graph/builder.h"
#include "graph/graph.h"
#include "util/status.h"

namespace tpa {

/// Loads a whitespace-separated directed edge list ("u v" per line).
/// Lines starting with '#' or '%' are comments (KONECT/SNAP conventions).
/// Node ids must be < num_nodes when `num_nodes` > 0; with num_nodes == 0
/// the node count is inferred as max id + 1.
StatusOr<Graph> LoadEdgeList(const std::string& path, NodeId num_nodes = 0,
                             const BuildOptions& options = {});

/// Writes the graph as a "u v" edge list with a header comment.
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace tpa

#endif  // TPA_GRAPH_IO_H_
