#ifndef TPA_GRAPH_IO_H_
#define TPA_GRAPH_IO_H_

#include <string>

#include "graph/builder.h"
#include "graph/graph.h"
#include "util/status.h"

namespace tpa {

/// Loads a whitespace-separated directed edge list ("u v" per line; a line
/// must contain exactly two ids — trailing non-whitespace is malformed).
/// Lines starting with '#' or '%' are comments (KONECT/SNAP conventions).
/// Node ids must be < num_nodes when `num_nodes` > 0.  With num_nodes == 0
/// the count comes from SaveEdgeList's "# directed edge list: N nodes"
/// header when present (so graphs with isolated trailing nodes round-trip
/// at full size), else is inferred as max id + 1; an empty edge list with
/// neither source of a count is an InvalidArgument error.
StatusOr<Graph> LoadEdgeList(const std::string& path, NodeId num_nodes = 0,
                             const BuildOptions& options = {});

/// Writes the graph as a "u v" edge list with a node/edge-count header
/// comment that LoadEdgeList reads back (see above).
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace tpa

#endif  // TPA_GRAPH_IO_H_
