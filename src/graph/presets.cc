#include "graph/presets.h"

#include <algorithm>
#include <string>

#include "graph/generators.h"

namespace tpa {

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  // S and T per dataset follow the paper's Table II.  Average degrees track
  // the originals (6.7, 5.8, 18.8, 14.1, 31.1, 35.3, 37.8).  The two
  // smallest presets plant communities small enough (≤ ~400 nodes) for the
  // block-elimination baselines to be feasible, mirroring the original
  // Slashdot/Google hub-and-spoke structure.
  static const std::vector<DatasetSpec>* specs = new std::vector<DatasetSpec>{
      {"slashdot-sim", 6'000, 48'000, 5, 15, 24, 0.90, 0.75, 101},
      {"google-sim", 15'000, 90'000, 5, 20, 40, 0.90, 0.75, 102},
      {"pokec-sim", 25'000, 450'000, 5, 10, 20, 0.88, 0.72, 103},
      {"livejournal-sim", 40'000, 560'000, 5, 10, 32, 0.90, 0.75, 104},
      {"wikilink-sim", 60'000, 1'900'000, 5, 6, 32, 0.85, 0.80, 105},
      {"twitter-sim", 80'000, 2'800'000, 4, 6, 40, 0.85, 0.85, 106},
      {"friendster-sim", 120'000, 4'500'000, 4, 20, 48, 0.88, 0.78, 107},
  };
  return *specs;
}

StatusOr<DatasetSpec> FindDatasetSpec(std::string_view name) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == name) return spec;
  }
  return NotFoundError("unknown dataset preset: " + std::string(name));
}

namespace {

NodeId ScaledNodes(const DatasetSpec& spec, double scale) {
  const double n = static_cast<double>(spec.nodes) * scale;
  return static_cast<NodeId>(std::max(64.0, n));
}

uint64_t ScaledEdges(const DatasetSpec& spec, double scale) {
  const double m = static_cast<double>(spec.edges) * scale;
  return static_cast<uint64_t>(std::max(128.0, m));
}

}  // namespace

StatusOr<Graph> MakePresetGraph(const DatasetSpec& spec, double scale) {
  if (scale <= 0.0) return InvalidArgumentError("scale must be positive");
  DcsbmOptions options;
  options.nodes = ScaledNodes(spec, scale);
  options.edges = ScaledEdges(spec, scale);
  options.blocks = spec.blocks;
  options.intra_fraction = spec.intra_fraction;
  options.zipf_theta = spec.zipf_theta;
  options.seed = spec.seed;
  return GenerateDcsbm(options);
}

StatusOr<Graph> MakeRandomTwin(const Graph& graph, uint64_t seed) {
  ErdosRenyiOptions options;
  options.nodes = graph.num_nodes();
  options.edges = graph.num_edges();
  options.seed = seed;
  const uint64_t max_edges = static_cast<uint64_t>(options.nodes) *
                             (static_cast<uint64_t>(options.nodes) - 1);
  options.edges = std::min(options.edges, max_edges);
  return GenerateErdosRenyi(options);
}

}  // namespace tpa
