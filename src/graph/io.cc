#include "graph/io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

namespace tpa {

namespace {

/// Parses "u v" from a line; returns false for malformed content.
bool ParseEdgeLine(std::string_view line, uint64_t& u, uint64_t& v) {
  const char* ptr = line.data();
  const char* end = line.data() + line.size();
  auto skip_ws = [&]() {
    while (ptr != end && (*ptr == ' ' || *ptr == '\t' || *ptr == '\r')) ++ptr;
  };
  skip_ws();
  auto r1 = std::from_chars(ptr, end, u);
  if (r1.ec != std::errc()) return false;
  ptr = r1.ptr;
  skip_ws();
  auto r2 = std::from_chars(ptr, end, v);
  if (r2.ec != std::errc()) return false;
  return true;
}

}  // namespace

StatusOr<Graph> LoadEdgeList(const std::string& path, NodeId num_nodes,
                             const BuildOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open edge list: " + path);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  uint64_t max_id = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    uint64_t u = 0, v = 0;
    if (!ParseEdgeLine(line, u, v)) {
      std::ostringstream oss;
      oss << "malformed edge at " << path << ":" << line_no;
      return InvalidArgumentError(oss.str());
    }
    if (num_nodes != 0 && (u >= num_nodes || v >= num_nodes)) {
      std::ostringstream oss;
      oss << "node id out of range at " << path << ":" << line_no;
      return OutOfRangeError(oss.str());
    }
    max_id = std::max({max_id, u, v});
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  const NodeId n =
      num_nodes != 0 ? num_nodes : static_cast<NodeId>(max_id + 1);
  GraphBuilder builder(n);
  builder.AddEdges(edges);
  return builder.Build(options);
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return InvalidArgumentError("cannot open for writing: " + path);
  }
  out << "# directed edge list: " << graph.num_nodes() << " nodes, "
      << graph.num_edges() << " edges\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      out << u << ' ' << v << '\n';
    }
  }
  if (!out) {
    return InternalError("write failed: " + path);
  }
  return OkStatus();
}

}  // namespace tpa
