#include "graph/io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

namespace tpa {

namespace {

/// Parses "u v" from a line; returns false for malformed content, including
/// anything but whitespace after the second id ("1 2junk", "1 2 3").
bool ParseEdgeLine(std::string_view line, uint64_t& u, uint64_t& v) {
  const char* ptr = line.data();
  const char* end = line.data() + line.size();
  auto skip_ws = [&]() {
    while (ptr != end && (*ptr == ' ' || *ptr == '\t' || *ptr == '\r')) ++ptr;
  };
  skip_ws();
  auto r1 = std::from_chars(ptr, end, u);
  if (r1.ec != std::errc()) return false;
  ptr = r1.ptr;
  skip_ws();
  auto r2 = std::from_chars(ptr, end, v);
  if (r2.ec != std::errc()) return false;
  ptr = r2.ptr;
  skip_ws();
  return ptr == end;
}

/// Recognizes the node-count header SaveEdgeList writes
/// ("# directed edge list: <N> nodes, ...").  Returns false for any other
/// comment line.
bool ParseNodeCountHeader(std::string_view line, uint64_t& nodes) {
  constexpr std::string_view kPrefix = "# directed edge list: ";
  if (line.substr(0, kPrefix.size()) != kPrefix) return false;
  const char* ptr = line.data() + kPrefix.size();
  const char* end = line.data() + line.size();
  auto result = std::from_chars(ptr, end, nodes);
  return result.ec == std::errc();
}

}  // namespace

StatusOr<Graph> LoadEdgeList(const std::string& path, NodeId num_nodes,
                             const BuildOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open edge list: " + path);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  uint64_t max_id = 0;
  uint64_t header_nodes = 0;
  bool have_header = false;
  bool have_edges = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      if (!have_header && ParseNodeCountHeader(line, header_nodes)) {
        have_header = true;
      }
      continue;
    }
    uint64_t u = 0, v = 0;
    if (!ParseEdgeLine(line, u, v)) {
      std::ostringstream oss;
      oss << "malformed edge at " << path << ":" << line_no;
      return InvalidArgumentError(oss.str());
    }
    if (num_nodes != 0 && (u >= num_nodes || v >= num_nodes)) {
      std::ostringstream oss;
      oss << "node id out of range at " << path << ":" << line_no;
      return OutOfRangeError(oss.str());
    }
    max_id = std::max({max_id, u, v});
    have_edges = true;
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  NodeId n = num_nodes;
  if (n == 0 && have_header) {
    // SaveEdgeList's header carries the exact node count, so graphs whose
    // trailing nodes are isolated (never named by an edge) round-trip at
    // full size instead of shrinking to max id + 1.
    if (header_nodes == 0 || header_nodes > UINT32_MAX) {
      std::ostringstream oss;
      oss << "header node count out of range in " << path;
      return InvalidArgumentError(oss.str());
    }
    if (have_edges && max_id >= header_nodes) {
      std::ostringstream oss;
      oss << "edge references node " << max_id
          << " beyond the header node count " << header_nodes << " in "
          << path;
      return InvalidArgumentError(oss.str());
    }
    n = static_cast<NodeId>(header_nodes);
  } else if (n == 0) {
    if (!have_edges) {
      // No count was given, the file declares none, and there are no edges
      // to infer one from — fabricating a 1-node graph here would silently
      // hand the caller a graph that matches nothing they loaded.
      return InvalidArgumentError(
          "cannot infer a node count from an empty edge list: " + path);
    }
    n = static_cast<NodeId>(max_id + 1);
  }
  GraphBuilder builder(n);
  builder.AddEdges(edges);
  return builder.Build(options);
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return InvalidArgumentError("cannot open for writing: " + path);
  }
  out << "# directed edge list: " << graph.num_nodes() << " nodes, "
      << graph.num_edges() << " edges\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      out << u << ' ' << v << '\n';
    }
  }
  if (!out) {
    return InternalError("write failed: " + path);
  }
  return OkStatus();
}

}  // namespace tpa
