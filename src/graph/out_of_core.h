#ifndef TPA_GRAPH_OUT_OF_CORE_H_
#define TPA_GRAPH_OUT_OF_CORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "graph/builder.h"
#include "graph/graph.h"
#include "util/mem_stats.h"
#include "util/serial.h"
#include "util/status.h"

namespace tpa {

/// Out-of-core CSR construction: build a Graph whose arrays live in a
/// mapped file, from an edge stream that never sits in RAM.
///
/// The in-RAM GraphBuilder holds the full edge list (16 bytes/edge), sorts
/// it, and counting-sorts into heap CSR arrays — ~3x the final graph in
/// transient heap.  This builder instead spills the edges to disk in two
/// sorted orders ((u,v) for the out-CSR, (v,u) for its transpose) through
/// bounded ExternalU64Sorter chunks, then streams the k-way merges straight
/// into a file-backed CSR laid out with MappedFile::Create: one counting
/// pass to size the file, one sequential write pass per direction.  Heap
/// use is the sorter buffers (sized from the memory budget) plus an n-bit
/// dangling set; the O(nnz) arrays only ever exist as mapped pages, which a
/// ResidentSteward can drop at will.
///
/// Cleaning semantics replicate GraphBuilder::Build exactly — self-loop
/// removal at Add, duplicate collapse on the sorted stream, dangling
/// self-loops merged in id order, values/scales computed with the same
/// fp64-reciprocal-rounded-once expression — so the resulting Graph (and
/// any snapshot written from it) is bitwise-identical to the in-RAM build
/// of the same edge sequence.  Locality orderings need the edge list in
/// RAM, so only NodeOrdering::kOriginal is supported.
struct OutOfCoreOptions {
  /// The file-backed CSR this build produces ("TPACSR1" format).  Required.
  /// Reopenable later with OpenOutOfCoreGraph — the build is also a
  /// persistence step.
  std::string csr_path;
  /// Directory for the two spill files (deleted when the builder dies).
  /// Empty: alongside csr_path.
  std::string spill_dir;
  /// Target resident budget.  Sizes the sorter chunk buffers (the
  /// builder's dominant heap use) to a fraction of it; the mapped-page
  /// traffic on top is what a ResidentSteward bounds.  0 = defaults.
  size_t memory_budget_bytes = 0;
  /// Cleaning/value configuration; node_ordering must be kOriginal.
  BuildOptions build;
  /// msync the finished CSR before assembling the Graph (durability; the
  /// mapping itself is valid either way).
  bool sync_on_finish = true;
  /// When set, the freshly created mapping is registered here so the
  /// steward can drop streamed pages during the build passes.  Borrowed;
  /// must outlive Build().
  ResidentSteward* steward = nullptr;
};

/// A Graph served straight off its mapped CSR file, plus the mapping handle
/// callers need for paging control (ResidentSteward::RegisterRegion,
/// MappedFile::Advise).  The graph's arrays alias the mapping; `file` is
/// also the SharedArray owner, so the mapping outlives the last view either
/// way.
struct OutOfCoreGraph {
  std::unique_ptr<Graph> graph;
  std::shared_ptr<MappedFile> file;
  uint64_t file_bytes = 0;
};

class OutOfCoreGraphBuilder {
 public:
  /// Validates options (node ordering, paths) and opens the spill files.
  static StatusOr<OutOfCoreGraphBuilder> Create(NodeId num_nodes,
                                                OutOfCoreOptions options);

  OutOfCoreGraphBuilder(OutOfCoreGraphBuilder&&) = default;
  OutOfCoreGraphBuilder& operator=(OutOfCoreGraphBuilder&&) = default;

  /// Streams the directed edge u → v to the spill chunks.  Out-of-range
  /// endpoints surface as InvalidArgument (the streaming twin of
  /// GraphBuilder::AddEdge's CHECK).
  Status AddEdge(NodeId u, NodeId v);

  /// Edge draws accepted so far (before cleaning).
  uint64_t added_edges() const { return added_edges_; }
  NodeId num_nodes() const { return num_nodes_; }

  /// Bytes currently spilled across both sort orders.
  uint64_t spilled_bytes() const;

  /// Seals the spills, sizes and writes the file-backed CSR, and assembles
  /// the Graph over the mapping.  One-shot: the builder is consumed.
  StatusOr<OutOfCoreGraph> Build();

 private:
  OutOfCoreGraphBuilder() = default;

  NodeId num_nodes_ = 0;
  OutOfCoreOptions options_;
  uint64_t added_edges_ = 0;
  // Two sort orders over the same edges: records (u<<32)|v and (v<<32)|u.
  std::unique_ptr<ExternalU64Sorter> fwd_;
  std::unique_ptr<ExternalU64Sorter> rev_;
};

/// Reopens a CSR file written by OutOfCoreGraphBuilder (read-only mapping).
StatusOr<OutOfCoreGraph> OpenOutOfCoreGraph(const std::string& csr_path);

}  // namespace tpa

#endif  // TPA_GRAPH_OUT_OF_CORE_H_
