#ifndef TPA_GRAPH_GRAPH_H_
#define TPA_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/permutation.h"
#include "la/csr_matrix.h"
#include "la/task_runner.h"

namespace tpa {

/// Node identifier.  32 bits covers every graph this repository targets
/// (the paper's largest graph has 68M nodes).
using NodeId = uint32_t;

/// Immutable directed graph stored as two weighted CSR matrices: the
/// row-normalized adjacency matrix Ã over out-edges, and its transpose Ã^T
/// over in-edges.  The normalized edge weights (1/out-degree of the source)
/// are materialized once at construction, so the transition-matrix products
/// that dominate every method's runtime are pure CSR SpMv kernels — a
/// contiguous (index, value) sweep with no per-edge degree lookup or
/// division.
///
/// The in/out dual layout supports the two product flavors used throughout
/// the library:
///  * push (scatter) over out-edges  — natural for CPI/TPA,
///  * pull (gather) over in-edges    — natural for per-node residual updates
///    in push-style local methods and exposed for the ablation benchmarks.
///
/// Dangling nodes (out-degree 0) lose their score mass during propagation,
/// matching CPI's column-substochastic treatment; graph sources that need
/// strict stochasticity (the paper's convergence lemmas assume it) should
/// build with GraphBuilder's self-loop policy.
class Graph {
 public:
  /// Builds from a sorted, deduplicated edge set.  Use GraphBuilder instead
  /// of calling this directly.
  Graph(NodeId num_nodes, std::vector<uint64_t> out_offsets,
        std::vector<NodeId> out_targets, std::vector<uint64_t> in_offsets,
        std::vector<NodeId> in_sources);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return out_csr_.nnz(); }

  uint32_t OutDegree(NodeId u) const { return out_csr_.RowNnz(u); }
  uint32_t InDegree(NodeId v) const { return in_csr_.RowNnz(v); }

  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return out_csr_.RowIndices(u);
  }
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return in_csr_.RowIndices(v);
  }

  /// Ã as a weighted CSR matrix: row u holds u's out-neighbors with weight
  /// 1/out-degree(u).  Exposed for kernels that want the raw matrix (the
  /// query engine, benchmarks).
  const la::CsrMatrix& Transition() const { return out_csr_; }

  /// Ã^T as a weighted CSR matrix: row v holds v's in-neighbors u with
  /// weight 1/out-degree(u).
  const la::CsrMatrix& TransitionTranspose() const { return in_csr_; }

  /// Number of dangling (out-degree zero) nodes.
  NodeId CountDangling() const;

  /// y = Ã^T x via push/scatter over out-edges.  y is resized and zeroed.
  void MultiplyTranspose(const std::vector<double>& x,
                         std::vector<double>& y) const {
    out_csr_.SpMvTranspose(x, y);
  }

  /// y = Ã^T x via pull/gather over in-edges; bitwise-equal semantics to
  /// MultiplyTranspose up to floating point association order.
  void MultiplyTransposePull(const std::vector<double>& x,
                             std::vector<double>& y) const {
    in_csr_.SpMv(x, y);
  }

  /// Y = Ã^T X for a whole block of vectors in one sweep over the out-edge
  /// CSR arrays; vector b of Y is bitwise-identical to MultiplyTranspose on
  /// vector b of X (see CsrMatrix::SpMmTranspose).
  void MultiplyTransposeBlock(const la::DenseBlock& x,
                              la::DenseBlock& y) const {
    out_csr_.SpMmTranspose(x, y);
  }

  /// Pull-flavor block product over the in-edge CSR arrays; per-vector
  /// bitwise match of MultiplyTransposePull.
  void MultiplyTransposePullBlock(const la::DenseBlock& x,
                                  la::DenseBlock& y) const {
    in_csr_.SpMm(x, y);
  }

  /// Parallel y = Ã^T x: the scatter partitioned by destination range and
  /// dispatched on `runner`.  Each destination is owned by exactly one
  /// partition, so the result is bitwise-identical to MultiplyTranspose
  /// regardless of scheduling.  The nnz-balanced partition is computed once
  /// per (graph, parts) pair and cached.
  void MultiplyTransposeParallel(const std::vector<double>& x,
                                 std::vector<double>& y,
                                 la::TaskRunner& runner) const;

  /// Parallel block flavor; per-vector bitwise match of
  /// MultiplyTransposeBlock — the engine's intra-group parallel SpMM.
  void MultiplyTransposeBlockParallel(const la::DenseBlock& x,
                                      la::DenseBlock& y,
                                      la::TaskRunner& runner) const;

  /// The nnz-balanced destination partition of the out-CSR for `parts`
  /// ranges, built lazily and cached (thread-safe).
  std::span<const uint32_t> OutColumnPartition(size_t parts) const;

  /// The external↔internal node-id mapping applied by GraphBuilder when a
  /// locality ordering was requested; null when nodes are stored in their
  /// original order.  Serving layers translate at this boundary — see
  /// Permutation.
  const Permutation* permutation() const { return permutation_.get(); }

  /// Attaches the build-time ordering (GraphBuilder only).
  void AttachPermutation(std::shared_ptr<const Permutation> permutation) {
    permutation_ = std::move(permutation);
  }

  /// Logical bytes held by the two CSR matrices (experiment reporting).
  size_t SizeBytes() const {
    return out_csr_.SizeBytes() + in_csr_.SizeBytes();
  }

 private:
  /// Lazily built destination partitions keyed by part count (small: one
  /// entry per distinct ThreadPool size that served this graph).
  struct PartitionCache {
    std::mutex mu;
    std::vector<std::pair<size_t, std::vector<uint32_t>>> entries;
  };

  NodeId num_nodes_;
  la::CsrMatrix out_csr_;  // Ã:   row u → out-neighbors, weight 1/outdeg(u)
  la::CsrMatrix in_csr_;   // Ã^T: row v → in-neighbors u, weight 1/outdeg(u)
  std::shared_ptr<const Permutation> permutation_;  // null = original order
  std::unique_ptr<PartitionCache> partition_cache_;
};

}  // namespace tpa

#endif  // TPA_GRAPH_GRAPH_H_
