#ifndef TPA_GRAPH_GRAPH_H_
#define TPA_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "graph/permutation.h"
#include "la/csr_matrix.h"
#include "la/precision.h"
#include "la/task_runner.h"

namespace tpa {

namespace snapshot {
/// Assembles Graphs from deserialized parts (src/snapshot/) — the one friend
/// allowed to wire pre-built value layers and mmap-backed structures into a
/// Graph without going through GraphBuilder.
class GraphFactory;
}  // namespace snapshot

/// Node identifier.  32 bits covers every graph this repository targets
/// (the paper's largest graph has 68M nodes).
using NodeId = uint32_t;

/// How the normalized edge weights of a Graph are stored (see
/// la::CsrValueMode for the kernel-level mechanics).
enum class ValueStorage : uint8_t {
  /// One materialized value per edge — 12 bytes/nnz at fp64, 8 at fp32.
  /// The general mode; a future weighted-graph build path requires it.
  kExplicit,
  /// Value-free: the out-CSR synthesizes 1/out-degree in registers (no
  /// array at all) and the in-CSR reads a per-node column scale (n entries,
  /// not nnz), cutting the streamed hot-loop footprint to the index-only
  /// ≈4 bytes/nnz.  Applies exactly because the out-degree normalization
  /// makes every edge weight a function of its source node — bitwise
  /// identical to kExplicit, which stores those same numbers per edge.
  kRowConstant,
};

/// Immutable directed graph stored as one shared index structure per
/// direction — the row-normalized adjacency matrix Ã over out-edges and its
/// transpose Ã^T over in-edges — plus per-precision-tier value arrays on
/// top.  The normalized edge weights (1/out-degree of the source) are
/// materialized once (or, under ValueStorage::kRowConstant, synthesized by
/// the kernels), so the transition-matrix products that dominate every
/// method's runtime are pure CSR sweeps with no per-edge degree lookup or
/// division.
///
/// Dual-tier layout: the topology (offsets + indices) lives in
/// la::CsrStructure bundles held by shared_ptr, and each precision tier is
/// a CsrMatrixT aliasing that structure with its own (possibly empty)
/// value array.  A graph is built at one primary tier
/// (BuildOptions::value_precision, returned by value_precision());
/// EnsureTier materializes the other tier in place — value arrays only,
/// topology shared — and RematerializeWithPrecision produces a sibling
/// Graph at the other tier that shares the same structure arrays, so one
/// process serves fp64 and fp32 off one copy of the topology.  The
/// structure accessors (degrees, neighbor spans, offsets) read the shared
/// structure directly and work regardless of tiers; the typed matrix
/// accessors CHECK that the requested tier is materialized.
///
/// The in/out dual layout supports the two product flavors used throughout
/// the library:
///  * push (scatter) over out-edges  — natural for CPI/TPA,
///  * pull (gather) over in-edges    — natural for per-node residual updates
///    in push-style local methods and exposed for the ablation benchmarks.
///
/// Dangling nodes (out-degree 0) lose their score mass during propagation,
/// matching CPI's column-substochastic treatment; graph sources that need
/// strict stochasticity (the paper's convergence lemmas assume it) should
/// build with GraphBuilder's self-loop policy.
class Graph {
 public:
  /// Builds from a sorted, deduplicated edge set.  Use GraphBuilder instead
  /// of calling this directly.
  Graph(NodeId num_nodes, std::vector<uint64_t> out_offsets,
        std::vector<NodeId> out_targets, std::vector<uint64_t> in_offsets,
        std::vector<NodeId> in_sources,
        la::Precision value_precision = la::Precision::kFloat64,
        ValueStorage value_storage = ValueStorage::kExplicit);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return out_structure_.nnz(); }

  /// The primary precision tier — the one the graph was built at and the
  /// one engines serve at.  EnsureTier may materialize the other tier too;
  /// HasTier reports what is actually available.
  la::Precision value_precision() const { return precision_; }

  /// The value storage mode shared by every materialized tier.
  ValueStorage value_storage() const { return value_storage_; }

  /// Whether the given tier's matrices are materialized.
  bool HasTier(la::Precision tier) const {
    return tier == la::Precision::kFloat64 ? has_fp64_ : has_fp32_;
  }

  /// Materializes the given tier's value arrays over the shared topology
  /// (no-op when already present).  O(n) under kRowConstant, O(nnz) under
  /// kExplicit — never copies the index structure.  Not thread-safe; call
  /// before concurrent serving starts.
  void EnsureTier(la::Precision tier);

  uint32_t OutDegree(NodeId u) const {
    const uint64_t* offsets = out_structure_.row_offsets.data();
    return static_cast<uint32_t>(offsets[u + 1] - offsets[u]);
  }
  uint32_t InDegree(NodeId v) const {
    const uint64_t* offsets = in_structure_.row_offsets.data();
    return static_cast<uint32_t>(offsets[v + 1] - offsets[v]);
  }

  std::span<const NodeId> OutNeighbors(NodeId u) const {
    const uint64_t* offsets = out_structure_.row_offsets.data();
    const NodeId* targets = out_structure_.col_indices.data();
    return {targets + offsets[u], targets + offsets[u + 1]};
  }
  std::span<const NodeId> InNeighbors(NodeId v) const {
    const uint64_t* offsets = in_structure_.row_offsets.data();
    const NodeId* sources = in_structure_.col_indices.data();
    return {sources + offsets[v], sources + offsets[v + 1]};
  }

  /// The raw out-CSR index arrays — the adjacency view consumed by
  /// structure-only algorithms (reorder::SlashBurn).
  std::span<const uint64_t> OutOffsets() const {
    return out_structure_.row_offsets.span();
  }
  std::span<const NodeId> OutTargets() const {
    return out_structure_.col_indices.span();
  }

  /// Ã as a weighted CSR at tier V: row u holds u's out-neighbors with
  /// weight 1/out-degree(u).  CHECK-fails when that tier has not been
  /// materialized (fp64-only methods must not silently run on an fp32-only
  /// graph, and vice versa) — see EnsureTier.
  template <typename V>
  const la::CsrMatrixT<V>& TransitionT() const {
    if constexpr (std::is_same_v<V, double>) {
      TPA_CHECK(has_fp64_);
      return out_csr_;
    } else {
      TPA_CHECK(has_fp32_);
      return out_csr_f_;
    }
  }

  /// Ã^T as a weighted CSR at tier V: row v holds v's in-neighbors u with
  /// weight 1/out-degree(u).
  template <typename V>
  const la::CsrMatrixT<V>& TransitionTransposeT() const {
    if constexpr (std::is_same_v<V, double>) {
      TPA_CHECK(has_fp64_);
      return in_csr_;
    } else {
      TPA_CHECK(has_fp32_);
      return in_csr_f_;
    }
  }

  /// The fp64 matrices (the historical accessors; CHECK fp64 tier).
  const la::CsrMatrix& Transition() const { return TransitionT<double>(); }
  const la::CsrMatrix& TransitionTranspose() const {
    return TransitionTransposeT<double>();
  }
  /// The fp32 matrices (CHECK fp32 tier).
  const la::CsrMatrixF& TransitionF() const { return TransitionT<float>(); }
  const la::CsrMatrixF& TransitionTransposeF() const {
    return TransitionTransposeT<float>();
  }

  /// Number of dangling (out-degree zero) nodes.
  NodeId CountDangling() const;

  /// y = Ã^T x via push/scatter over out-edges.  y is resized and zeroed.
  template <typename V>
  void MultiplyTransposeT(const std::vector<V>& x, std::vector<V>& y) const {
    TransitionT<V>().SpMvTranspose(x, y);
  }
  void MultiplyTranspose(const std::vector<double>& x,
                         std::vector<double>& y) const {
    MultiplyTransposeT<double>(x, y);
  }

  /// y = Ã^T x via pull/gather over in-edges; bitwise-equal semantics to
  /// MultiplyTranspose up to floating point association order.
  template <typename V>
  void MultiplyTransposePullT(const std::vector<V>& x,
                              std::vector<V>& y) const {
    TransitionTransposeT<V>().SpMv(x, y);
  }
  void MultiplyTransposePull(const std::vector<double>& x,
                             std::vector<double>& y) const {
    MultiplyTransposePullT<double>(x, y);
  }

  /// Y = Ã^T X for a whole block of vectors in one sweep over the out-edge
  /// CSR arrays; vector b of Y is bitwise-identical to MultiplyTranspose on
  /// vector b of X (see CsrMatrixT::SpMmTranspose).
  template <typename V>
  void MultiplyTransposeBlockT(const la::DenseBlockT<V>& x,
                               la::DenseBlockT<V>& y) const {
    TransitionT<V>().SpMmTranspose(x, y);
  }
  void MultiplyTransposeBlock(const la::DenseBlock& x,
                              la::DenseBlock& y) const {
    MultiplyTransposeBlockT<double>(x, y);
  }

  /// Pull-flavor block product over the in-edge CSR arrays; per-vector
  /// bitwise match of MultiplyTransposePull.
  template <typename V>
  void MultiplyTransposePullBlockT(const la::DenseBlockT<V>& x,
                                   la::DenseBlockT<V>& y) const {
    TransitionTransposeT<V>().SpMm(x, y);
  }
  void MultiplyTransposePullBlock(const la::DenseBlock& x,
                                  la::DenseBlock& y) const {
    MultiplyTransposePullBlockT<double>(x, y);
  }

  /// Parallel y = Ã^T x: the scatter partitioned by destination range and
  /// dispatched on `runner`.  Each destination is owned by exactly one
  /// partition, so the result is bitwise-identical to MultiplyTranspose
  /// regardless of scheduling.  The nnz-balanced partition is computed once
  /// per (graph, parts) pair and cached.
  template <typename V>
  void MultiplyTransposeParallelT(const std::vector<V>& x, std::vector<V>& y,
                                  la::TaskRunner& runner) const {
    TransitionT<V>().SpMvTransposeParallel(
        x, y, OutColumnPartition(static_cast<size_t>(runner.concurrency())),
        runner);
  }
  void MultiplyTransposeParallel(const std::vector<double>& x,
                                 std::vector<double>& y,
                                 la::TaskRunner& runner) const {
    MultiplyTransposeParallelT<double>(x, y, runner);
  }

  /// Parallel block flavor; per-vector bitwise match of
  /// MultiplyTransposeBlock — the engine's intra-group parallel SpMM.
  template <typename V>
  void MultiplyTransposeBlockParallelT(const la::DenseBlockT<V>& x,
                                       la::DenseBlockT<V>& y,
                                       la::TaskRunner& runner) const {
    TransitionT<V>().SpMmTransposeParallel(
        x, y, OutColumnPartition(static_cast<size_t>(runner.concurrency())),
        runner);
  }
  void MultiplyTransposeBlockParallel(const la::DenseBlock& x,
                                      la::DenseBlock& y,
                                      la::TaskRunner& runner) const {
    MultiplyTransposeBlockParallelT<double>(x, y, runner);
  }

  /// The nnz-balanced destination partition of the out-CSR for `parts`
  /// ranges, built lazily and cached (thread-safe).  Purely structural, so
  /// the same partition serves both precision tiers — and the cache itself
  /// is shared between structure-sharing graphs (RematerializeWithPrecision
  /// siblings reuse partitions computed by either side).
  std::span<const uint32_t> OutColumnPartition(size_t parts) const;

  /// The external↔internal node-id mapping applied by GraphBuilder when a
  /// locality ordering was requested; null when nodes are stored in their
  /// original order.  Serving layers translate at this boundary — see
  /// Permutation.
  const Permutation* permutation() const { return permutation_.get(); }

  /// Attaches the build-time ordering (GraphBuilder only).
  void AttachPermutation(std::shared_ptr<const Permutation> permutation) {
    permutation_ = std::move(permutation);
  }

  /// Logical bytes held by this graph (experiment reporting and the
  /// engine's kAuto batch heuristic): each direction's index structure
  /// counted once, plus the value/scale arrays of every materialized tier.
  /// Under kRowConstant the per-tier addition is O(n) scale bytes instead
  /// of O(nnz) values — the footprint the value-free hot loops actually
  /// stream.  Structure-sharing sibling graphs each report the full
  /// structure; callers deduplicating across siblings can subtract
  /// la::CsrStructureBytes.
  size_t SizeBytes() const {
    size_t bytes = la::CsrStructureBytes(out_structure_) +
                   la::CsrStructureBytes(in_structure_);
    if (has_fp64_) bytes += out_csr_.ValueBytes() + in_csr_.ValueBytes();
    if (has_fp32_) bytes += out_csr_f_.ValueBytes() + in_csr_f_.ValueBytes();
    return bytes;
  }

 private:
  /// Lazily built destination partitions keyed by part count (small: one
  /// entry per distinct ThreadPool size that served this graph).  Shared
  /// between structure-sharing graphs, hence behind a shared_ptr.
  struct PartitionCache {
    std::mutex mu;
    std::vector<std::pair<size_t, std::vector<uint32_t>>> entries;
  };

  /// Shared-structure sibling at another tier (RematerializeWithPrecision).
  Graph(const Graph& other, la::Precision tier);
  friend Graph RematerializeWithPrecision(const Graph& graph,
                                          la::Precision precision);
  /// Snapshot load path: GraphFactory fills the fields directly from
  /// deserialized (possibly mmap-backed) structures and value layers.
  Graph() = default;
  friend class snapshot::GraphFactory;

  template <typename V>
  void MaterializeTierT(la::CsrMatrixT<V>& out, la::CsrMatrixT<V>& in) const;

  NodeId num_nodes_ = 0;
  la::Precision precision_ = la::Precision::kFloat64;
  ValueStorage value_storage_ = ValueStorage::kExplicit;
  la::CsrStructure out_structure_;  // Ã topology: row u → out-neighbors
  la::CsrStructure in_structure_;   // Ã^T topology: row v → in-neighbors
  bool has_fp64_ = false;
  bool has_fp32_ = false;
  // Tier value layers over the shared structures; weight of an edge from u
  // is 1/out-degree(u) at both tiers, stored or synthesized per
  // value_storage_.  Unmaterialized tiers stay default-empty.
  la::CsrMatrix out_csr_;
  la::CsrMatrix in_csr_;
  la::CsrMatrixF out_csr_f_;
  la::CsrMatrixF in_csr_f_;
  std::shared_ptr<const Permutation> permutation_;  // null = original order
  std::shared_ptr<PartitionCache> partition_cache_;
};

/// Re-materializes `graph` at the other precision tier: a sibling Graph
/// whose primary tier is `precision` and whose index structure *aliases*
/// the input's (shared_ptr topology — no O(nnz) copy; only the new tier's
/// value arrays are built).  The permutation and the partition cache are
/// shared too.  Used by benchmarks and tests to compare tiers on identical
/// graphs, and by servers that load a graph once and serve both tiers off
/// one topology.
Graph RematerializeWithPrecision(const Graph& graph, la::Precision precision);

}  // namespace tpa

#endif  // TPA_GRAPH_GRAPH_H_
