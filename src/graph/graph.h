#ifndef TPA_GRAPH_GRAPH_H_
#define TPA_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace tpa {

/// Node identifier.  32 bits covers every graph this repository targets
/// (the paper's largest graph has 68M nodes).
using NodeId = uint32_t;

/// Immutable directed graph in CSR form, with both out-adjacency (CSR) and
/// in-adjacency (CSC, i.e. CSR of the transpose) materialized.
///
/// The in/out dual layout supports the two transition-matrix products used
/// throughout the library:
///  * push (scatter) over out-edges  — natural for CPI/TPA,
///  * pull (gather) over in-edges    — natural for per-node residual updates
///    in push-style local methods and exposed for the ablation benchmarks.
///
/// The RWR transition matrix is the row-normalized adjacency matrix Ã; all
/// methods use products with Ã^T.  Row-normalization is implicit: edge
/// weights are 1/out-degree(u), never stored.
///
/// Dangling nodes (out-degree 0) lose their score mass during propagation,
/// matching CPI's column-substochastic treatment; graph sources that need
/// strict stochasticity (the paper's convergence lemmas assume it) should
/// build with GraphBuilder's self-loop policy.
class Graph {
 public:
  /// Builds from a sorted, deduplicated edge set.  Use GraphBuilder instead
  /// of calling this directly.
  Graph(NodeId num_nodes, std::vector<uint64_t> out_offsets,
        std::vector<NodeId> out_targets, std::vector<uint64_t> in_offsets,
        std::vector<NodeId> in_sources);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return out_targets_.size(); }

  uint32_t OutDegree(NodeId u) const {
    return static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  uint32_t InDegree(NodeId v) const {
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// Number of dangling (out-degree zero) nodes.
  NodeId CountDangling() const;

  /// y = Ã^T x via push/scatter over out-edges.  y is resized and zeroed.
  void MultiplyTranspose(const std::vector<double>& x,
                         std::vector<double>& y) const;

  /// y = Ã^T x via pull/gather over in-edges; bitwise-equal semantics to
  /// MultiplyTranspose up to floating point association order.
  void MultiplyTransposePull(const std::vector<double>& x,
                             std::vector<double>& y) const;

  /// Logical bytes held by the CSR+CSC arrays (experiment reporting).
  size_t SizeBytes() const;

 private:
  NodeId num_nodes_;
  std::vector<uint64_t> out_offsets_;  // size n+1
  std::vector<NodeId> out_targets_;    // size m, sorted within each row
  std::vector<uint64_t> in_offsets_;   // size n+1
  std::vector<NodeId> in_sources_;     // size m, sorted within each column
};

}  // namespace tpa

#endif  // TPA_GRAPH_GRAPH_H_
