#ifndef TPA_GRAPH_GRAPH_H_
#define TPA_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "graph/permutation.h"
#include "la/csr_matrix.h"
#include "la/precision.h"
#include "la/task_runner.h"

namespace tpa {

/// Node identifier.  32 bits covers every graph this repository targets
/// (the paper's largest graph has 68M nodes).
using NodeId = uint32_t;

/// Immutable directed graph stored as two weighted CSR matrices: the
/// row-normalized adjacency matrix Ã over out-edges, and its transpose Ã^T
/// over in-edges.  The normalized edge weights (1/out-degree of the source)
/// are materialized once at construction, so the transition-matrix products
/// that dominate every method's runtime are pure CSR SpMv kernels — a
/// contiguous (index, value) sweep with no per-edge degree lookup or
/// division.
///
/// The edge values are materialized at one precision tier
/// (BuildOptions::value_precision): fp64 — the default, feeding the
/// historical all-double pipeline bitwise-unchanged — or fp32, which cuts
/// the per-edge footprint from 12 to 8 bytes (index + value) and feeds the
/// fp32 propagation stack (Cpi/Tpa fp32 workspaces, fp32 serving).  The
/// structure accessors (degrees, neighbor spans) work at either tier; the
/// typed matrix accessors CHECK that the requested tier is the one
/// materialized — a graph holds exactly one value array per direction.
///
/// The in/out dual layout supports the two product flavors used throughout
/// the library:
///  * push (scatter) over out-edges  — natural for CPI/TPA,
///  * pull (gather) over in-edges    — natural for per-node residual updates
///    in push-style local methods and exposed for the ablation benchmarks.
///
/// Dangling nodes (out-degree 0) lose their score mass during propagation,
/// matching CPI's column-substochastic treatment; graph sources that need
/// strict stochasticity (the paper's convergence lemmas assume it) should
/// build with GraphBuilder's self-loop policy.
class Graph {
 public:
  /// Builds from a sorted, deduplicated edge set.  Use GraphBuilder instead
  /// of calling this directly.
  Graph(NodeId num_nodes, std::vector<uint64_t> out_offsets,
        std::vector<NodeId> out_targets, std::vector<uint64_t> in_offsets,
        std::vector<NodeId> in_sources,
        la::Precision value_precision = la::Precision::kFloat64);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const {
    return precision_ == la::Precision::kFloat64 ? out_csr_.nnz()
                                                 : out_csr_f_.nnz();
  }

  /// The precision tier of the materialized edge values.
  la::Precision value_precision() const { return precision_; }

  uint32_t OutDegree(NodeId u) const {
    return precision_ == la::Precision::kFloat64 ? out_csr_.RowNnz(u)
                                                 : out_csr_f_.RowNnz(u);
  }
  uint32_t InDegree(NodeId v) const {
    return precision_ == la::Precision::kFloat64 ? in_csr_.RowNnz(v)
                                                 : in_csr_f_.RowNnz(v);
  }

  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return precision_ == la::Precision::kFloat64 ? out_csr_.RowIndices(u)
                                                 : out_csr_f_.RowIndices(u);
  }
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return precision_ == la::Precision::kFloat64 ? in_csr_.RowIndices(v)
                                                 : in_csr_f_.RowIndices(v);
  }

  /// Ã as a weighted CSR at tier V: row u holds u's out-neighbors with
  /// weight 1/out-degree(u).  CHECK-fails when the graph was materialized
  /// at the other tier (fp64-only methods must not silently run on an fp32
  /// graph, and vice versa).
  template <typename V>
  const la::CsrMatrixT<V>& TransitionT() const {
    if constexpr (std::is_same_v<V, double>) {
      TPA_CHECK(precision_ == la::Precision::kFloat64);
      return out_csr_;
    } else {
      TPA_CHECK(precision_ == la::Precision::kFloat32);
      return out_csr_f_;
    }
  }

  /// Ã^T as a weighted CSR at tier V: row v holds v's in-neighbors u with
  /// weight 1/out-degree(u).
  template <typename V>
  const la::CsrMatrixT<V>& TransitionTransposeT() const {
    if constexpr (std::is_same_v<V, double>) {
      TPA_CHECK(precision_ == la::Precision::kFloat64);
      return in_csr_;
    } else {
      TPA_CHECK(precision_ == la::Precision::kFloat32);
      return in_csr_f_;
    }
  }

  /// The fp64 matrices (the historical accessors; CHECK fp64 tier).
  const la::CsrMatrix& Transition() const { return TransitionT<double>(); }
  const la::CsrMatrix& TransitionTranspose() const {
    return TransitionTransposeT<double>();
  }
  /// The fp32 matrices (CHECK fp32 tier).
  const la::CsrMatrixF& TransitionF() const { return TransitionT<float>(); }
  const la::CsrMatrixF& TransitionTransposeF() const {
    return TransitionTransposeT<float>();
  }

  /// Number of dangling (out-degree zero) nodes.
  NodeId CountDangling() const;

  /// y = Ã^T x via push/scatter over out-edges.  y is resized and zeroed.
  template <typename V>
  void MultiplyTransposeT(const std::vector<V>& x, std::vector<V>& y) const {
    TransitionT<V>().SpMvTranspose(x, y);
  }
  void MultiplyTranspose(const std::vector<double>& x,
                         std::vector<double>& y) const {
    MultiplyTransposeT<double>(x, y);
  }

  /// y = Ã^T x via pull/gather over in-edges; bitwise-equal semantics to
  /// MultiplyTranspose up to floating point association order.
  template <typename V>
  void MultiplyTransposePullT(const std::vector<V>& x,
                              std::vector<V>& y) const {
    TransitionTransposeT<V>().SpMv(x, y);
  }
  void MultiplyTransposePull(const std::vector<double>& x,
                             std::vector<double>& y) const {
    MultiplyTransposePullT<double>(x, y);
  }

  /// Y = Ã^T X for a whole block of vectors in one sweep over the out-edge
  /// CSR arrays; vector b of Y is bitwise-identical to MultiplyTranspose on
  /// vector b of X (see CsrMatrixT::SpMmTranspose).
  template <typename V>
  void MultiplyTransposeBlockT(const la::DenseBlockT<V>& x,
                               la::DenseBlockT<V>& y) const {
    TransitionT<V>().SpMmTranspose(x, y);
  }
  void MultiplyTransposeBlock(const la::DenseBlock& x,
                              la::DenseBlock& y) const {
    MultiplyTransposeBlockT<double>(x, y);
  }

  /// Pull-flavor block product over the in-edge CSR arrays; per-vector
  /// bitwise match of MultiplyTransposePull.
  template <typename V>
  void MultiplyTransposePullBlockT(const la::DenseBlockT<V>& x,
                                   la::DenseBlockT<V>& y) const {
    TransitionTransposeT<V>().SpMm(x, y);
  }
  void MultiplyTransposePullBlock(const la::DenseBlock& x,
                                  la::DenseBlock& y) const {
    MultiplyTransposePullBlockT<double>(x, y);
  }

  /// Parallel y = Ã^T x: the scatter partitioned by destination range and
  /// dispatched on `runner`.  Each destination is owned by exactly one
  /// partition, so the result is bitwise-identical to MultiplyTranspose
  /// regardless of scheduling.  The nnz-balanced partition is computed once
  /// per (graph, parts) pair and cached.
  template <typename V>
  void MultiplyTransposeParallelT(const std::vector<V>& x, std::vector<V>& y,
                                  la::TaskRunner& runner) const {
    TransitionT<V>().SpMvTransposeParallel(
        x, y, OutColumnPartition(static_cast<size_t>(runner.concurrency())),
        runner);
  }
  void MultiplyTransposeParallel(const std::vector<double>& x,
                                 std::vector<double>& y,
                                 la::TaskRunner& runner) const {
    MultiplyTransposeParallelT<double>(x, y, runner);
  }

  /// Parallel block flavor; per-vector bitwise match of
  /// MultiplyTransposeBlock — the engine's intra-group parallel SpMM.
  template <typename V>
  void MultiplyTransposeBlockParallelT(const la::DenseBlockT<V>& x,
                                       la::DenseBlockT<V>& y,
                                       la::TaskRunner& runner) const {
    TransitionT<V>().SpMmTransposeParallel(
        x, y, OutColumnPartition(static_cast<size_t>(runner.concurrency())),
        runner);
  }
  void MultiplyTransposeBlockParallel(const la::DenseBlock& x,
                                      la::DenseBlock& y,
                                      la::TaskRunner& runner) const {
    MultiplyTransposeBlockParallelT<double>(x, y, runner);
  }

  /// The nnz-balanced destination partition of the out-CSR for `parts`
  /// ranges, built lazily and cached (thread-safe).  Purely structural, so
  /// the same partition serves both precision tiers.
  std::span<const uint32_t> OutColumnPartition(size_t parts) const;

  /// The external↔internal node-id mapping applied by GraphBuilder when a
  /// locality ordering was requested; null when nodes are stored in their
  /// original order.  Serving layers translate at this boundary — see
  /// Permutation.
  const Permutation* permutation() const { return permutation_.get(); }

  /// Attaches the build-time ordering (GraphBuilder only).
  void AttachPermutation(std::shared_ptr<const Permutation> permutation) {
    permutation_ = std::move(permutation);
  }

  /// Logical bytes held by the two CSR matrices (experiment reporting and
  /// the engine's kAuto batch heuristic) — precision-dependent: the fp32
  /// tier reports 8 bytes/nnz where fp64 reports 12.
  size_t SizeBytes() const {
    return out_csr_.SizeBytes() + in_csr_.SizeBytes() +
           out_csr_f_.SizeBytes() + in_csr_f_.SizeBytes();
  }

 private:
  /// Lazily built destination partitions keyed by part count (small: one
  /// entry per distinct ThreadPool size that served this graph).
  struct PartitionCache {
    std::mutex mu;
    std::vector<std::pair<size_t, std::vector<uint32_t>>> entries;
  };

  NodeId num_nodes_;
  la::Precision precision_;
  // Exactly one pair is populated, per precision_; the other pair stays
  // empty (zero bytes).
  la::CsrMatrix out_csr_;   // Ã:   row u → out-neighbors, weight 1/outdeg(u)
  la::CsrMatrix in_csr_;    // Ã^T: row v → in-neighbors u, weight 1/outdeg(u)
  la::CsrMatrixF out_csr_f_;
  la::CsrMatrixF in_csr_f_;
  std::shared_ptr<const Permutation> permutation_;  // null = original order
  std::unique_ptr<PartitionCache> partition_cache_;
};

/// Re-materializes `graph` at the other precision tier: same structure,
/// same permutation, freshly normalized edge values stored at `precision`.
/// The one-time cost is a structure copy — used by benchmarks and tests to
/// compare tiers on identical graphs, and by callers that load a graph
/// once and serve both tiers.
Graph RematerializeWithPrecision(const Graph& graph, la::Precision precision);

}  // namespace tpa

#endif  // TPA_GRAPH_GRAPH_H_
