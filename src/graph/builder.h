#ifndef TPA_GRAPH_BUILDER_H_
#define TPA_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tpa {

/// Policy for out-degree-zero nodes at build time.
enum class DanglingPolicy {
  /// Keep dangling nodes as-is; propagation loses their mass (CPI treats the
  /// transition matrix as column-substochastic).
  kKeep,
  /// Add a self-loop to every dangling node, making Ã^T exactly column
  /// stochastic (the setting assumed by the paper's lemmas).
  kAddSelfLoop,
};

/// Storage order of nodes in the built CSR arrays.  Anything other than
/// kOriginal relabels nodes internally for cache locality and attaches the
/// external↔internal Permutation to the Graph, so serving layers keep
/// speaking original ids (see Permutation).
enum class NodeOrdering {
  /// Nodes stored under their original ids.
  kOriginal,
  /// Nodes sorted by total (in+out) degree, descending, ties toward the
  /// smaller original id.  Hubs become contiguous low ids, so the hot rows
  /// of the scatter share cache lines — the cheap locality fallback when a
  /// full SlashBurn run is not worth its preprocessing cost.
  kDegreeDescending,
  /// SlashBurn hub-and-spoke ordering (reorder::SlashBurn with default
  /// options): spoke blocks first grouped by connected component, hubs
  /// contiguous at the end — the paper's locality ordering.  Runs on the
  /// builder's out-adjacency arrays directly (one counting sort over the
  /// cleaned edges), no throwaway Graph build.
  kHubCluster,
};

struct BuildOptions {
  /// Drop u→u edges present in the input (self-loops added by the dangling
  /// policy are exempt).
  bool remove_self_loops = true;
  /// Collapse duplicate (u, v) pairs to a single edge.
  bool deduplicate = true;
  DanglingPolicy dangling_policy = DanglingPolicy::kAddSelfLoop;
  NodeOrdering node_ordering = NodeOrdering::kOriginal;
  /// Storage tier of the normalized edge values (see la::Precision):
  /// kFloat64 feeds the historical all-double pipeline bitwise-unchanged;
  /// kFloat32 materializes the CSR values at 4 bytes/edge for the fp32
  /// propagation stack.
  la::Precision value_precision = la::Precision::kFloat64;
  /// Whether the normalized values are materialized per edge (kExplicit)
  /// or dropped entirely and synthesized by the kernels (kRowConstant —
  /// index-only ≈4 bytes/nnz hot loops, bitwise-identical results).  See
  /// ValueStorage; applies at every precision tier.
  ValueStorage value_storage = ValueStorage::kExplicit;
};

/// Bounds the CSR representation can actually hold: node ids are NodeId
/// (uint32) and Graph::OutDegree narrows each row's offset difference to
/// uint32, so a node count above 2^32 or a single row with 2^32 or more
/// edges cannot round-trip the arrays.  These checks turn such counts into
/// a clean InvalidArgument naming the offending node/count instead of a
/// silent truncation; both builders call them, and the streaming
/// (out-of-core) builder feeds them aggregates it never materializes as
/// vectors — which is why they take plain integers, not arrays.
Status ValidateNodeCount(uint64_t num_nodes);
Status ValidateRowDegree(uint64_t node, uint64_t degree);
/// Total edges must leave room for up to one dangling self-loop per node
/// without wrapping the uint64 offset arithmetic.
Status ValidateEdgeCount(uint64_t num_nodes, uint64_t num_edges);

/// Accumulates an edge list and finalizes it into an immutable CSR Graph.
///
/// Build is O(m log m) (sort-based) and produces neighbor lists sorted by id,
/// which downstream code relies on for binary-searchable adjacency.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Adds the directed edge u → v.  Fails fast (CHECK) on out-of-range ids.
  void AddEdge(NodeId u, NodeId v);

  /// Bulk variant of AddEdge.
  void AddEdges(const std::vector<std::pair<NodeId, NodeId>>& edges);

  size_t PendingEdges() const { return edges_.size(); }
  NodeId num_nodes() const { return num_nodes_; }

  /// Finalizes into a Graph; the builder is left empty.
  /// Fails if num_nodes is 0.
  StatusOr<Graph> Build(const BuildOptions& options = {});

 private:
  NodeId num_nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace tpa

#endif  // TPA_GRAPH_BUILDER_H_
