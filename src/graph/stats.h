#ifndef TPA_GRAPH_STATS_H_
#define TPA_GRAPH_STATS_H_

#include <cstdint>

#include "graph/graph.h"

namespace tpa {

/// Summary statistics used by the Table II bench and the examples.
struct GraphStats {
  NodeId nodes = 0;
  uint64_t edges = 0;
  double avg_out_degree = 0.0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
  NodeId dangling_nodes = 0;
  NodeId isolated_nodes = 0;  // no in- and no out-edges
};

GraphStats ComputeGraphStats(const Graph& graph);

}  // namespace tpa

#endif  // TPA_GRAPH_STATS_H_
