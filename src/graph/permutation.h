#ifndef TPA_GRAPH_PERMUTATION_H_
#define TPA_GRAPH_PERMUTATION_H_

#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace tpa {

/// Node identifier (mirrors graph.h; kept here to avoid a circular include —
/// Graph carries a Permutation).
using NodeId = uint32_t;

/// Bijection between the node ids a client speaks ("external": whatever the
/// edge list used) and the positions nodes occupy in the stored CSR arrays
/// ("internal": the cache-locality ordering GraphBuilder applied).
///
/// Everything inside the library — methods, kernels, score vectors —
/// operates on internal ids; the translation happens at the serving
/// boundary: QueryEngine maps incoming seeds with ToInternal and gathers
/// outgoing dense vectors back with ScoresToExternal, so clients and top-k
/// results keep speaking original node ids.
class Permutation {
 public:
  /// Builds from the internal→external map (internal slot p holds original
  /// node external_of_internal[p]).  Fails unless the vector is a
  /// permutation of [0, n).
  static StatusOr<Permutation> FromInternalOrder(
      std::vector<NodeId> external_of_internal);

  NodeId size() const {
    return static_cast<NodeId>(external_of_internal_.size());
  }

  /// Internal position of original node `external`.  DCHECK-bounded.
  NodeId ToInternal(NodeId external) const {
    TPA_DCHECK(external < internal_of_external_.size());
    return internal_of_external_[external];
  }
  /// Original id of the node stored at internal position `internal`.
  /// DCHECK-bounded.
  NodeId ToExternal(NodeId internal) const {
    TPA_DCHECK(internal < external_of_internal_.size());
    return external_of_internal_[internal];
  }

  const std::vector<NodeId>& internal_of_external() const {
    return internal_of_external_;
  }
  const std::vector<NodeId>& external_of_internal() const {
    return external_of_internal_;
  }

  /// Gathers a dense internal-indexed score vector into external order:
  /// result[e] = internal_scores[ToInternal(e)].  Works at either precision
  /// tier (pure element moves, no arithmetic).
  template <typename V>
  std::vector<V> ScoresToExternal(
      const std::vector<V>& internal_scores) const {
    TPA_DCHECK(internal_scores.size() == external_of_internal_.size());
    std::vector<V> external(internal_scores.size());
    for (size_t e = 0; e < external.size(); ++e) {
      external[e] = internal_scores[internal_of_external_[e]];
    }
    return external;
  }

  /// Scatters a dense external-indexed vector into internal order:
  /// result[ToInternal(e)] = external_values[e].  The inverse of
  /// ScoresToExternal; used to translate whole seed distributions.
  template <typename V>
  std::vector<V> ValuesToInternal(
      const std::vector<V>& external_values) const {
    TPA_DCHECK(external_values.size() == external_of_internal_.size());
    std::vector<V> internal(external_values.size());
    for (size_t p = 0; p < internal.size(); ++p) {
      internal[p] = external_values[external_of_internal_[p]];
    }
    return internal;
  }

 private:
  Permutation(std::vector<NodeId> internal_of_external,
              std::vector<NodeId> external_of_internal)
      : internal_of_external_(std::move(internal_of_external)),
        external_of_internal_(std::move(external_of_internal)) {}

  std::vector<NodeId> internal_of_external_;
  std::vector<NodeId> external_of_internal_;
};

}  // namespace tpa

#endif  // TPA_GRAPH_PERMUTATION_H_
