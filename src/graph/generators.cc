#include "graph/generators.h"

#include <cmath>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "util/random.h"

namespace tpa {

namespace {

uint64_t PackEdge(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

Status ValidateRmatOptions(const RmatOptions& options) {
  if (options.edges == 0) return InvalidArgumentError("edges must be positive");
  const double d = 1.0 - options.a - options.b - options.c;
  if (options.a <= 0 || options.b <= 0 || options.c <= 0 || d <= 0) {
    return InvalidArgumentError("quadrant probabilities must be in (0,1)");
  }
  return OkStatus();
}

/// One R-MAT edge draw: `scale` quadrant choices, one NextDouble each.
/// Shared by the in-RAM and out-of-core generators so both consume the Rng
/// identically — same options and seed, same edge sequence, which is what
/// pins the two build paths bitwise-equal.
std::pair<NodeId, NodeId> DrawRmatEdge(Rng& rng, const RmatOptions& options) {
  NodeId u = 0, v = 0;
  for (uint32_t bit = options.scale; bit-- > 0;) {
    const double p = rng.NextDouble();
    if (p < options.a) {
      // top-left quadrant: both bits 0
    } else if (p < options.a + options.b) {
      v |= NodeId{1} << bit;
    } else if (p < options.a + options.b + options.c) {
      u |= NodeId{1} << bit;
    } else {
      u |= NodeId{1} << bit;
      v |= NodeId{1} << bit;
    }
  }
  return {u, v};
}

}  // namespace

StatusOr<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  const NodeId n = options.nodes;
  if (n == 0) return InvalidArgumentError("nodes must be positive");
  const uint64_t max_edges =
      static_cast<uint64_t>(n) * (static_cast<uint64_t>(n) - 1);
  if (options.edges > max_edges) {
    return InvalidArgumentError("edge count exceeds n*(n-1)");
  }

  Rng rng(options.seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(options.edges * 2);
  GraphBuilder builder(n);
  while (seen.size() < options.edges) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (seen.insert(PackEdge(u, v)).second) builder.AddEdge(u, v);
  }
  return builder.Build();
}

StatusOr<Graph> GenerateRmat(const RmatOptions& options,
                             const BuildOptions& build_options) {
  TPA_RETURN_IF_ERROR(ValidateRmatOptions(options));
  const NodeId n = NodeId{1} << options.scale;

  Rng rng(options.seed);
  GraphBuilder builder(n);
  for (uint64_t e = 0; e < options.edges; ++e) {
    const auto [u, v] = DrawRmatEdge(rng, options);
    builder.AddEdge(u, v);
  }
  return builder.Build(build_options);
}

StatusOr<OutOfCoreGraph> GenerateRmatOutOfCore(const RmatOptions& options,
                                               OutOfCoreOptions ooc_options) {
  TPA_RETURN_IF_ERROR(ValidateRmatOptions(options));
  const NodeId n = NodeId{1} << options.scale;

  Rng rng(options.seed);
  TPA_ASSIGN_OR_RETURN(
      OutOfCoreGraphBuilder builder,
      OutOfCoreGraphBuilder::Create(n, std::move(ooc_options)));
  for (uint64_t e = 0; e < options.edges; ++e) {
    const auto [u, v] = DrawRmatEdge(rng, options);
    TPA_RETURN_IF_ERROR(builder.AddEdge(u, v));
  }
  return builder.Build();
}

StatusOr<Graph> GenerateDcsbm(const DcsbmOptions& options) {
  const NodeId n = options.nodes;
  if (n == 0) return InvalidArgumentError("nodes must be positive");
  if (options.edges == 0) return InvalidArgumentError("edges must be positive");
  if (options.blocks == 0 || options.blocks > n) {
    return InvalidArgumentError("blocks must be in [1, nodes]");
  }
  if (options.intra_fraction < 0.0 || options.intra_fraction > 1.0) {
    return InvalidArgumentError("intra_fraction must be in [0,1]");
  }
  if (options.inter_weight_exponent < 0.0) {
    return InvalidArgumentError("inter_weight_exponent must be non-negative");
  }

  const uint32_t num_blocks = options.blocks;
  const NodeId block_size = (n + num_blocks - 1) / num_blocks;
  auto block_of = [block_size](NodeId u) { return u / block_size; };
  // With ceil-divided block sizes the last blocks may be short or empty;
  // clamp both ends so the per-block weight slices stay well formed.
  auto block_begin = [block_size, n](uint32_t blk) {
    return std::min<NodeId>(n, blk * block_size);
  };
  auto block_end = [block_size, n](uint32_t blk) {
    return std::min<NodeId>(n, (blk + 1) * block_size);
  };

  // Zipf-like degree weights.  Ranks are scattered over node ids with a
  // multiplicative hash so hubs spread across blocks rather than piling up
  // in block 0.
  Rng rng(options.seed);
  std::vector<double> weight(n);
  for (NodeId u = 0; u < n; ++u) {
    const uint64_t rank = (u * 0x9e3779b97f4a7c15ULL) % n;
    weight[u] =
        std::pow(static_cast<double>(rank + 1), -options.zipf_theta);
  }

  AliasSampler global(weight);
  std::vector<double> inter_weight(n);
  for (NodeId u = 0; u < n; ++u) {
    inter_weight[u] = std::pow(weight[u], options.inter_weight_exponent);
  }
  AliasSampler inter(inter_weight);
  // Empty trailing blocks have no member nodes, so their samplers are never
  // consulted; leave them unset.
  std::vector<std::optional<AliasSampler>> per_block(num_blocks);
  for (uint32_t blk = 0; blk < num_blocks; ++blk) {
    if (block_begin(blk) >= block_end(blk)) continue;
    std::vector<double> w(weight.begin() + block_begin(blk),
                          weight.begin() + block_end(blk));
    per_block[blk].emplace(w);
  }

  GraphBuilder builder(n);
  for (uint64_t e = 0; e < options.edges; ++e) {
    NodeId u, v;
    if (rng.NextDouble() < options.intra_fraction) {
      u = static_cast<NodeId>(global.Sample(rng));
      const uint32_t blk = block_of(u);
      v = block_begin(blk) +
          static_cast<NodeId>(per_block[blk]->Sample(rng));
    } else {
      u = static_cast<NodeId>(inter.Sample(rng));
      v = static_cast<NodeId>(inter.Sample(rng));
    }
    if (u == v) continue;  // collapsed by builder anyway; skip early
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace tpa
