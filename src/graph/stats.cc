#include "graph/stats.h"

#include <algorithm>

namespace tpa {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.nodes = graph.num_nodes();
  stats.edges = graph.num_edges();
  stats.avg_out_degree =
      stats.nodes == 0
          ? 0.0
          : static_cast<double>(stats.edges) / static_cast<double>(stats.nodes);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const uint32_t out = graph.OutDegree(u);
    const uint32_t in = graph.InDegree(u);
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    stats.max_in_degree = std::max(stats.max_in_degree, in);
    if (out == 0) ++stats.dangling_nodes;
    if (out == 0 && in == 0) ++stats.isolated_nodes;
  }
  return stats;
}

}  // namespace tpa
