#ifndef TPA_GRAPH_PRESETS_H_
#define TPA_GRAPH_PRESETS_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tpa {

/// Scaled-down synthetic stand-in for one of the paper's seven datasets
/// (Table II).  `s` and `t` are the per-dataset TPA parameters the paper
/// tuned; we keep them verbatim.  `nodes`/`edges` follow the originals'
/// relative ordering and average degree at roughly 1/10–1/600 scale.
struct DatasetSpec {
  std::string_view name;   // e.g. "slashdot-sim"
  NodeId nodes;
  uint64_t edges;          // edge draws; built graphs land within a few %
  int s;                   // starting iteration of the neighbor part
  int t;                   // starting iteration of the stranger part
  uint32_t blocks;         // DCSBM planted communities
  double intra_fraction;   // DCSBM in-community edge probability
  double zipf_theta;       // DCSBM degree skew
  uint64_t seed;           // generator seed (fixed: datasets are reproducible)
};

/// All seven presets, smallest to largest (slashdot-sim … friendster-sim).
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Looks up a preset by name; NOT_FOUND for unknown names.
StatusOr<DatasetSpec> FindDatasetSpec(std::string_view name);

/// Generates the preset's graph.  `scale` multiplies node and edge counts
/// (clamped to at least 64 nodes); 1.0 is the default experiment size.
StatusOr<Graph> MakePresetGraph(const DatasetSpec& spec, double scale = 1.0);

/// Erdős–Rényi twin of an already-built graph: same node count, same edge
/// count, random edge placement — the Figure 6 "random graph" baseline.
/// (Built edge counts differ from the draw count because duplicate draws
/// collapse, so the twin is matched to the realized graph, not the spec.)
StatusOr<Graph> MakeRandomTwin(const Graph& graph, uint64_t seed = 7777);

}  // namespace tpa

#endif  // TPA_GRAPH_PRESETS_H_
