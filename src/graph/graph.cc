#include "graph/graph.h"

#include <utility>

#include "util/check.h"

namespace tpa {

namespace {

/// Per-edge normalized weights for the out-CSR: every edge in row u carries
/// 1/out-degree(u).  The reciprocal is computed in fp64 and rounded once to
/// the storage tier V — the exact expression the value-free kernels
/// synthesize per row, which is what pins kExplicit and kRowConstant
/// bitwise-identical.
template <typename V>
std::vector<V> OutWeights(std::span<const uint64_t> out_offsets,
                          size_t num_edges) {
  std::vector<V> weights(num_edges);
  const size_t num_nodes = out_offsets.size() - 1;
  for (size_t u = 0; u < num_nodes; ++u) {
    const uint64_t begin = out_offsets[u];
    const uint64_t end = out_offsets[u + 1];
    if (begin == end) continue;
    const V w = static_cast<V>(1.0 / static_cast<double>(end - begin));
    for (uint64_t e = begin; e < end; ++e) weights[e] = w;
  }
  return weights;
}

/// Per-edge weights for the in-CSR: the edge (v ← u) carries
/// 1/out-degree(u), looked up from the out offsets.
template <typename V>
std::vector<V> InWeights(std::span<const uint64_t> out_offsets,
                         std::span<const NodeId> in_sources) {
  std::vector<V> weights(in_sources.size());
  for (size_t e = 0; e < in_sources.size(); ++e) {
    const NodeId u = in_sources[e];
    weights[e] = static_cast<V>(
        1.0 / static_cast<double>(out_offsets[u + 1] - out_offsets[u]));
  }
  return weights;
}

/// Per-node reciprocal out-degrees, the one n-length array value-free
/// storage keeps per direction: the out-CSR reads it as a per-row scale
/// (kRowConstant — once per row, which beats synthesizing the division
/// in-loop on frontier-sparse queries), the in-CSR as a column scale
/// (kColumnScale — edge (v ← u) carries 1/out-degree(u), and u is the
/// column there).  Each entry is the same fp64-reciprocal-rounded-once
/// expression as OutWeights/InWeights, which pins the value-free modes
/// bitwise-identical to explicit storage.  Dangling nodes get 0: an empty
/// row is skipped by the kernels and a node with no out-edge never appears
/// as an in-CSR column, so those entries exist for indexing but are never
/// read.
template <typename V>
std::vector<V> OutDegreeReciprocals(std::span<const uint64_t> out_offsets) {
  const size_t num_nodes = out_offsets.size() - 1;
  std::vector<V> scales(num_nodes, V{0});
  for (size_t u = 0; u < num_nodes; ++u) {
    const uint64_t degree = out_offsets[u + 1] - out_offsets[u];
    if (degree == 0) continue;
    scales[u] = static_cast<V>(1.0 / static_cast<double>(degree));
  }
  return scales;
}

}  // namespace

Graph::Graph(NodeId num_nodes, std::vector<uint64_t> out_offsets,
             std::vector<NodeId> out_targets, std::vector<uint64_t> in_offsets,
             std::vector<NodeId> in_sources, la::Precision value_precision,
             ValueStorage value_storage)
    : num_nodes_(num_nodes),
      precision_(value_precision),
      value_storage_(value_storage),
      partition_cache_(std::make_shared<PartitionCache>()) {
  TPA_CHECK_EQ(out_targets.size(), in_sources.size());
  // MakeCsrStructure validates offsets shape/monotonicity and index range
  // (in particular in_sources < num_nodes, which the weight builders rely
  // on before dereferencing out_offsets[u + 1]).
  out_structure_ = la::MakeCsrStructure(num_nodes_, num_nodes_,
                                        std::move(out_offsets),
                                        std::move(out_targets));
  in_structure_ = la::MakeCsrStructure(num_nodes_, num_nodes_,
                                       std::move(in_offsets),
                                       std::move(in_sources));
  EnsureTier(precision_);
}

Graph::Graph(const Graph& other, la::Precision tier)
    : num_nodes_(other.num_nodes_),
      precision_(tier),
      value_storage_(other.value_storage_),
      out_structure_(other.out_structure_),  // aliases the shared topology
      in_structure_(other.in_structure_),
      permutation_(other.permutation_),
      partition_cache_(other.partition_cache_) {
  EnsureTier(tier);
}

template <typename V>
void Graph::MaterializeTierT(la::CsrMatrixT<V>& out,
                             la::CsrMatrixT<V>& in) const {
  const std::span<const uint64_t> out_offsets =
      out_structure_.row_offsets.span();
  if (value_storage_ == ValueStorage::kExplicit) {
    out = la::CsrMatrixT<V>(out_structure_,
                            OutWeights<V>(out_offsets, out_structure_.nnz()));
    in = la::CsrMatrixT<V>(in_structure_,
                           InWeights<V>(out_offsets,
                                        in_structure_.col_indices.span()));
  } else {
    std::vector<V> scales = OutDegreeReciprocals<V>(out_offsets);
    out = la::CsrMatrixT<V>(out_structure_, la::CsrValueMode::kRowConstant,
                            std::vector<V>(scales));
    in = la::CsrMatrixT<V>(in_structure_, la::CsrValueMode::kColumnScale,
                           std::move(scales));
  }
}

void Graph::EnsureTier(la::Precision tier) {
  if (HasTier(tier)) return;
  if (tier == la::Precision::kFloat64) {
    MaterializeTierT<double>(out_csr_, in_csr_);
    has_fp64_ = true;
  } else {
    MaterializeTierT<float>(out_csr_f_, in_csr_f_);
    has_fp32_ = true;
  }
}

std::span<const uint32_t> Graph::OutColumnPartition(size_t parts) const {
  std::lock_guard<std::mutex> lock(partition_cache_->mu);
  for (const auto& [cached_parts, boundaries] : partition_cache_->entries) {
    if (cached_parts == parts) return boundaries;
  }
  partition_cache_->entries.emplace_back(
      parts, precision_ == la::Precision::kFloat64
                 ? out_csr_.NnzBalancedColumnRanges(parts)
                 : out_csr_f_.NnzBalancedColumnRanges(parts));
  return partition_cache_->entries.back().second;
}

NodeId Graph::CountDangling() const {
  NodeId count = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (OutDegree(u) == 0) ++count;
  }
  return count;
}

Graph RematerializeWithPrecision(const Graph& graph, la::Precision precision) {
  return Graph(graph, precision);
}

}  // namespace tpa
