#include "graph/graph.h"

#include <utility>

#include "util/check.h"

namespace tpa {

namespace {

/// Per-edge normalized weights for the out-CSR: every edge in row u carries
/// 1/out-degree(u).
std::vector<double> OutWeights(const std::vector<uint64_t>& out_offsets,
                               size_t num_edges) {
  std::vector<double> weights(num_edges);
  const size_t num_nodes = out_offsets.size() - 1;
  for (size_t u = 0; u < num_nodes; ++u) {
    const uint64_t begin = out_offsets[u];
    const uint64_t end = out_offsets[u + 1];
    if (begin == end) continue;
    const double w = 1.0 / static_cast<double>(end - begin);
    for (uint64_t e = begin; e < end; ++e) weights[e] = w;
  }
  return weights;
}

/// Per-edge weights for the in-CSR: the edge (v ← u) carries
/// 1/out-degree(u), looked up from the out offsets.
std::vector<double> InWeights(const std::vector<uint64_t>& out_offsets,
                              const std::vector<NodeId>& in_sources) {
  std::vector<double> weights(in_sources.size());
  for (size_t e = 0; e < in_sources.size(); ++e) {
    const NodeId u = in_sources[e];
    weights[e] =
        1.0 / static_cast<double>(out_offsets[u + 1] - out_offsets[u]);
  }
  return weights;
}

}  // namespace

Graph::Graph(NodeId num_nodes, std::vector<uint64_t> out_offsets,
             std::vector<NodeId> out_targets, std::vector<uint64_t> in_offsets,
             std::vector<NodeId> in_sources)
    : num_nodes_(num_nodes),
      partition_cache_(std::make_unique<PartitionCache>()) {
  TPA_CHECK_EQ(out_offsets.size(), static_cast<size_t>(num_nodes_) + 1);
  TPA_CHECK_EQ(in_offsets.size(), static_cast<size_t>(num_nodes_) + 1);
  TPA_CHECK_EQ(out_targets.size(), in_sources.size());
  TPA_CHECK_EQ(out_offsets.back(), out_targets.size());
  TPA_CHECK_EQ(in_offsets.back(), in_sources.size());
  // Fail fast before InWeights dereferences out_offsets[u + 1]; the
  // CsrMatrix constructors re-validate but run only afterwards.
  for (NodeId u : in_sources) TPA_CHECK_LT(u, num_nodes_);

  std::vector<double> out_weights = OutWeights(out_offsets, out_targets.size());
  std::vector<double> in_weights = InWeights(out_offsets, in_sources);
  out_csr_ = la::CsrMatrix(num_nodes_, num_nodes_, std::move(out_offsets),
                           std::move(out_targets), std::move(out_weights));
  in_csr_ = la::CsrMatrix(num_nodes_, num_nodes_, std::move(in_offsets),
                          std::move(in_sources), std::move(in_weights));
}

std::span<const uint32_t> Graph::OutColumnPartition(size_t parts) const {
  std::lock_guard<std::mutex> lock(partition_cache_->mu);
  for (const auto& [cached_parts, boundaries] : partition_cache_->entries) {
    if (cached_parts == parts) return boundaries;
  }
  partition_cache_->entries.emplace_back(
      parts, out_csr_.NnzBalancedColumnRanges(parts));
  return partition_cache_->entries.back().second;
}

void Graph::MultiplyTransposeParallel(const std::vector<double>& x,
                                      std::vector<double>& y,
                                      la::TaskRunner& runner) const {
  out_csr_.SpMvTransposeParallel(
      x, y, OutColumnPartition(static_cast<size_t>(runner.concurrency())),
      runner);
}

void Graph::MultiplyTransposeBlockParallel(const la::DenseBlock& x,
                                           la::DenseBlock& y,
                                           la::TaskRunner& runner) const {
  out_csr_.SpMmTransposeParallel(
      x, y, OutColumnPartition(static_cast<size_t>(runner.concurrency())),
      runner);
}

NodeId Graph::CountDangling() const {
  NodeId count = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (OutDegree(u) == 0) ++count;
  }
  return count;
}

}  // namespace tpa
