#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace tpa {

Graph::Graph(NodeId num_nodes, std::vector<uint64_t> out_offsets,
             std::vector<NodeId> out_targets, std::vector<uint64_t> in_offsets,
             std::vector<NodeId> in_sources)
    : num_nodes_(num_nodes),
      out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)),
      in_offsets_(std::move(in_offsets)),
      in_sources_(std::move(in_sources)) {
  TPA_CHECK_EQ(out_offsets_.size(), static_cast<size_t>(num_nodes_) + 1);
  TPA_CHECK_EQ(in_offsets_.size(), static_cast<size_t>(num_nodes_) + 1);
  TPA_CHECK_EQ(out_targets_.size(), in_sources_.size());
  TPA_CHECK_EQ(out_offsets_.back(), out_targets_.size());
  TPA_CHECK_EQ(in_offsets_.back(), in_sources_.size());
}

NodeId Graph::CountDangling() const {
  NodeId count = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (OutDegree(u) == 0) ++count;
  }
  return count;
}

void Graph::MultiplyTranspose(const std::vector<double>& x,
                              std::vector<double>& y) const {
  TPA_DCHECK(x.size() == num_nodes_);
  y.assign(num_nodes_, 0.0);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const uint64_t begin = out_offsets_[u];
    const uint64_t end = out_offsets_[u + 1];
    if (begin == end) continue;
    const double share = x[u] / static_cast<double>(end - begin);
    if (share == 0.0) continue;
    for (uint64_t e = begin; e < end; ++e) y[out_targets_[e]] += share;
  }
}

void Graph::MultiplyTransposePull(const std::vector<double>& x,
                                  std::vector<double>& y) const {
  TPA_DCHECK(x.size() == num_nodes_);
  y.assign(num_nodes_, 0.0);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    double sum = 0.0;
    for (NodeId u : InNeighbors(v)) {
      sum += x[u] / static_cast<double>(OutDegree(u));
    }
    y[v] = sum;
  }
}

size_t Graph::SizeBytes() const {
  return out_offsets_.size() * sizeof(uint64_t) +
         out_targets_.size() * sizeof(NodeId) +
         in_offsets_.size() * sizeof(uint64_t) +
         in_sources_.size() * sizeof(NodeId);
}

}  // namespace tpa
