#include "graph/graph.h"

#include <utility>

#include "util/check.h"

namespace tpa {

namespace {

/// Per-edge normalized weights for the out-CSR: every edge in row u carries
/// 1/out-degree(u).  The reciprocal is computed in fp64 and rounded once to
/// the storage tier V.
template <typename V>
std::vector<V> OutWeights(const std::vector<uint64_t>& out_offsets,
                          size_t num_edges) {
  std::vector<V> weights(num_edges);
  const size_t num_nodes = out_offsets.size() - 1;
  for (size_t u = 0; u < num_nodes; ++u) {
    const uint64_t begin = out_offsets[u];
    const uint64_t end = out_offsets[u + 1];
    if (begin == end) continue;
    const V w = static_cast<V>(1.0 / static_cast<double>(end - begin));
    for (uint64_t e = begin; e < end; ++e) weights[e] = w;
  }
  return weights;
}

/// Per-edge weights for the in-CSR: the edge (v ← u) carries
/// 1/out-degree(u), looked up from the out offsets.
template <typename V>
std::vector<V> InWeights(const std::vector<uint64_t>& out_offsets,
                         const std::vector<NodeId>& in_sources) {
  std::vector<V> weights(in_sources.size());
  for (size_t e = 0; e < in_sources.size(); ++e) {
    const NodeId u = in_sources[e];
    weights[e] = static_cast<V>(
        1.0 / static_cast<double>(out_offsets[u + 1] - out_offsets[u]));
  }
  return weights;
}

}  // namespace

Graph::Graph(NodeId num_nodes, std::vector<uint64_t> out_offsets,
             std::vector<NodeId> out_targets, std::vector<uint64_t> in_offsets,
             std::vector<NodeId> in_sources, la::Precision value_precision)
    : num_nodes_(num_nodes),
      precision_(value_precision),
      partition_cache_(std::make_unique<PartitionCache>()) {
  TPA_CHECK_EQ(out_offsets.size(), static_cast<size_t>(num_nodes_) + 1);
  TPA_CHECK_EQ(in_offsets.size(), static_cast<size_t>(num_nodes_) + 1);
  TPA_CHECK_EQ(out_targets.size(), in_sources.size());
  TPA_CHECK_EQ(out_offsets.back(), out_targets.size());
  TPA_CHECK_EQ(in_offsets.back(), in_sources.size());
  // Fail fast before InWeights dereferences out_offsets[u + 1]; the
  // CsrMatrixT constructors re-validate but run only afterwards.
  for (NodeId u : in_sources) TPA_CHECK_LT(u, num_nodes_);

  if (precision_ == la::Precision::kFloat64) {
    std::vector<double> out_weights =
        OutWeights<double>(out_offsets, out_targets.size());
    std::vector<double> in_weights = InWeights<double>(out_offsets, in_sources);
    out_csr_ = la::CsrMatrix(num_nodes_, num_nodes_, std::move(out_offsets),
                             std::move(out_targets), std::move(out_weights));
    in_csr_ = la::CsrMatrix(num_nodes_, num_nodes_, std::move(in_offsets),
                            std::move(in_sources), std::move(in_weights));
  } else {
    std::vector<float> out_weights =
        OutWeights<float>(out_offsets, out_targets.size());
    std::vector<float> in_weights = InWeights<float>(out_offsets, in_sources);
    out_csr_f_ = la::CsrMatrixF(num_nodes_, num_nodes_, std::move(out_offsets),
                                std::move(out_targets),
                                std::move(out_weights));
    in_csr_f_ = la::CsrMatrixF(num_nodes_, num_nodes_, std::move(in_offsets),
                               std::move(in_sources), std::move(in_weights));
  }
}

std::span<const uint32_t> Graph::OutColumnPartition(size_t parts) const {
  std::lock_guard<std::mutex> lock(partition_cache_->mu);
  for (const auto& [cached_parts, boundaries] : partition_cache_->entries) {
    if (cached_parts == parts) return boundaries;
  }
  partition_cache_->entries.emplace_back(
      parts, precision_ == la::Precision::kFloat64
                 ? out_csr_.NnzBalancedColumnRanges(parts)
                 : out_csr_f_.NnzBalancedColumnRanges(parts));
  return partition_cache_->entries.back().second;
}

NodeId Graph::CountDangling() const {
  NodeId count = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (OutDegree(u) == 0) ++count;
  }
  return count;
}

Graph RematerializeWithPrecision(const Graph& graph, la::Precision precision) {
  const NodeId n = graph.num_nodes();
  std::vector<uint64_t> out_offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<uint64_t> in_offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    out_offsets[u + 1] = out_offsets[u] + graph.OutDegree(u);
    in_offsets[u + 1] = in_offsets[u] + graph.InDegree(u);
  }
  std::vector<NodeId> out_targets;
  std::vector<NodeId> in_sources;
  out_targets.reserve(out_offsets.back());
  in_sources.reserve(in_offsets.back());
  for (NodeId u = 0; u < n; ++u) {
    const auto out = graph.OutNeighbors(u);
    out_targets.insert(out_targets.end(), out.begin(), out.end());
    const auto in = graph.InNeighbors(u);
    in_sources.insert(in_sources.end(), in.begin(), in.end());
  }
  Graph result(n, std::move(out_offsets), std::move(out_targets),
               std::move(in_offsets), std::move(in_sources), precision);
  if (graph.permutation() != nullptr) {
    result.AttachPermutation(
        std::make_shared<const Permutation>(*graph.permutation()));
  }
  return result;
}

}  // namespace tpa
