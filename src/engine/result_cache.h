#ifndef TPA_ENGINE_RESULT_CACHE_H_
#define TPA_ENGINE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace tpa {

/// Thread-safe LRU cache from seed node to its dense RWR score vector.
///
/// Entries are shared_ptr<const …> so a hit can be handed to a client (or
/// sliced for top-k) with no copy while eviction proceeds concurrently.
/// Capacity is bounded on two independent axes — an entry count and an
/// optional byte budget over the stored score payloads (~8n bytes per
/// entry); eviction pops LRU entries until both bounds hold.  A zero bound
/// means "unlimited" on that axis, except that a cache with both bounds
/// zero caches nothing (the engine's caching-disabled configuration).
class ResultCache {
 public:
  using Entry = std::shared_ptr<const std::vector<double>>;

  /// CHECK-free: capacity 0 with no byte budget simply caches nothing.
  explicit ResultCache(size_t capacity, size_t capacity_bytes = 0)
      : capacity_(capacity), capacity_bytes_(capacity_bytes) {}

  /// Returns the cached scores for `seed` (promoting it to most-recent), or
  /// nullptr on miss.
  Entry Get(NodeId seed);

  /// Inserts (or refreshes) `seed`, evicting least-recently-used entries
  /// until both the entry cap and the byte budget hold.  An entry larger
  /// than the whole byte budget is evicted immediately (the cache stays
  /// within budget rather than pinning one oversized result).
  void Put(NodeId seed, Entry scores);

  size_t size() const;
  /// Payload bytes currently held (sum over entries of 8·scores->size()).
  size_t bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  using LruList = std::list<std::pair<NodeId, Entry>>;

  static size_t EntryBytes(const Entry& scores) {
    return scores == nullptr ? 0 : scores->size() * sizeof(double);
  }

  mutable std::mutex mu_;
  size_t capacity_;
  size_t capacity_bytes_;
  size_t bytes_ = 0;
  LruList order_;  // front = most recently used
  std::unordered_map<NodeId, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tpa

#endif  // TPA_ENGINE_RESULT_CACHE_H_
