#ifndef TPA_ENGINE_RESULT_CACHE_H_
#define TPA_ENGINE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace tpa {

/// Thread-safe LRU cache from seed node to its dense RWR score vector.
///
/// Entries are shared_ptr<const …> so a hit can be handed to a client (or
/// sliced for top-k) with no copy while eviction proceeds concurrently.
/// The capacity is counted in entries; one entry costs ~n doubles, so
/// serving deployments should size it as cache_bytes ≈ capacity · 8n.
class ResultCache {
 public:
  using Entry = std::shared_ptr<const std::vector<double>>;

  /// CHECK-free: a zero capacity simply caches nothing.
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached scores for `seed` (promoting it to most-recent), or
  /// nullptr on miss.
  Entry Get(NodeId seed);

  /// Inserts (or refreshes) `seed`, evicting the least-recently-used entry
  /// when over capacity.
  void Put(NodeId seed, Entry scores);

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  using LruList = std::list<std::pair<NodeId, Entry>>;

  mutable std::mutex mu_;
  size_t capacity_;
  LruList order_;  // front = most recently used
  std::unordered_map<NodeId, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tpa

#endif  // TPA_ENGINE_RESULT_CACHE_H_
