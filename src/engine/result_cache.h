#ifndef TPA_ENGINE_RESULT_CACHE_H_
#define TPA_ENGINE_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "la/precision.h"
#include "la/topk.h"

namespace tpa {

// ScoredNode — one (node, score) pair of a top-k result — now lives in
// la/topk.h so the bound-driven top-k path in core can produce the same
// type that top-k-only cache entries store.

/// One cached query result.  Exactly one payload is populated, described by
/// the (precision, topk_only) tag pair:
///  * fp64 dense  — dense64, ~8n bytes (the historical entry shape),
///  * fp32 dense  — dense32, ~4n bytes (the halved-footprint serving tier),
///  * top-k only  — topk, O(k) bytes (cache_topk_only engines).
/// The tags exist so serving can refuse mismatched entries: an fp32 engine
/// never hands out an fp64 payload (or vice versa), and a dense-requesting
/// query never treats a top-k-only entry as a full vector — it refreshes it
/// instead (see ResultCache::GetMatching).
struct CachedResult {
  la::Precision precision = la::Precision::kFloat64;
  bool topk_only = false;
  /// True for a result that is not the converged answer — a degraded
  /// partial iterate or anything served under an aborted query context.
  /// The cache refuses such entries outright (see ResultCache::Put): a
  /// cached partial would be replayed as the exact answer to every later
  /// query for the same seed.  The serving layer never constructs one
  /// (degraded results bypass the cache), so this tag is the second,
  /// independent line of defense.
  bool partial = false;
  std::vector<double> dense64;
  std::vector<float> dense32;
  std::vector<ScoredNode> topk;

  static CachedResult Dense(std::vector<double> scores) {
    CachedResult result;
    result.precision = la::Precision::kFloat64;
    result.dense64 = std::move(scores);
    return result;
  }
  static CachedResult Dense(std::vector<float> scores) {
    CachedResult result;
    result.precision = la::Precision::kFloat32;
    result.dense32 = std::move(scores);
    return result;
  }
  static CachedResult TopKOnly(la::Precision precision,
                               std::vector<ScoredNode> top) {
    CachedResult result;
    result.precision = precision;
    result.topk_only = true;
    result.topk = std::move(top);
    return result;
  }

  /// Payload bytes of this entry — what the cache's byte budget charges:
  /// 8n for fp64 dense, 4n for fp32 dense, k·sizeof(ScoredNode) for
  /// top-k-only.
  size_t Bytes() const {
    return dense64.size() * sizeof(double) + dense32.size() * sizeof(float) +
           topk.size() * sizeof(ScoredNode);
  }
};

/// Thread-safe LRU cache from seed node to its cached RWR result.
///
/// Entries are shared_ptr<const …> so a hit can be handed to a client (or
/// sliced for top-k) with no copy while eviction proceeds concurrently.
/// Capacity is bounded on two independent axes — an entry count and an
/// optional byte budget over the stored payloads (CachedResult::Bytes);
/// eviction pops LRU entries until both bounds hold.  A zero bound means
/// "unlimited" on that axis, except that a cache with both bounds zero
/// caches nothing (the engine's caching-disabled configuration).
class ResultCache {
 public:
  using Entry = std::shared_ptr<const CachedResult>;

  /// CHECK-free: capacity 0 with no byte budget simply caches nothing.
  explicit ResultCache(size_t capacity, size_t capacity_bytes = 0)
      : capacity_(capacity), capacity_bytes_(capacity_bytes) {}

  /// Returns the cached result for `seed` (promoting it to most-recent), or
  /// nullptr on miss.
  Entry Get(NodeId seed);

  /// Shape-aware probe: a stored entry counts as a hit only when `matches`
  /// accepts it.  A present-but-mismatched entry — wrong precision tier, or
  /// top-k-only where the query needs the dense vector — counts as a miss
  /// and returns nullptr (leaving the entry in place at its LRU position;
  /// the caller's subsequent Put refreshes it to the compatible shape).
  Entry GetMatching(NodeId seed,
                    const std::function<bool(const CachedResult&)>& matches);

  /// Inserts (or refreshes) `seed`, evicting least-recently-used entries
  /// until both the entry cap and the byte budget hold.  An entry larger
  /// than the whole byte budget is evicted immediately (the cache stays
  /// within budget rather than pinning one oversized result).
  ///
  /// Shape guard: the call is a silent no-op for entries that must never be
  /// served as an exact answer — null entries, entries tagged `partial`,
  /// and malformed entries with an empty payload (a dense entry with no
  /// scores, or a top-k-only entry with no pairs).  Existing entries are
  /// left untouched in that case.
  void Put(NodeId seed, Entry scores);

  size_t size() const;
  /// Payload bytes currently held (sum of CachedResult::Bytes over
  /// entries — 8n/4n/O(k) per entry depending on its shape).
  size_t bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  using LruList = std::list<std::pair<NodeId, Entry>>;

  static size_t EntryBytes(const Entry& entry) {
    return entry == nullptr ? 0 : entry->Bytes();
  }

  mutable std::mutex mu_;
  size_t capacity_;
  size_t capacity_bytes_;
  size_t bytes_ = 0;
  LruList order_;  // front = most recently used
  std::unordered_map<NodeId, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tpa

#endif  // TPA_ENGINE_RESULT_CACHE_H_
