#include "engine/result_cache.h"

namespace tpa {

ResultCache::Entry ResultCache::Get(NodeId seed) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(seed);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second);
  return it->second->second;
}

ResultCache::Entry ResultCache::GetMatching(
    NodeId seed, const std::function<bool(const CachedResult&)>& matches) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(seed);
  if (it == index_.end() || !matches(*it->second->second)) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second);
  return it->second->second;
}

void ResultCache::Put(NodeId seed, Entry scores) {
  if (capacity_ == 0 && capacity_bytes_ == 0) return;
  // Refuse anything that is not a complete exact answer: a partial or
  // empty entry served from the cache would silently replace the converged
  // result for every later query on this seed.
  if (scores == nullptr || scores->partial) return;
  if (scores->topk_only ? scores->topk.empty()
                        : (scores->dense64.empty() &&
                           scores->dense32.empty())) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(seed);
  if (it != index_.end()) {
    bytes_ -= EntryBytes(it->second->second);
    bytes_ += EntryBytes(scores);
    it->second->second = std::move(scores);
    order_.splice(order_.begin(), order_, it->second);
  } else {
    bytes_ += EntryBytes(scores);
    order_.emplace_front(seed, std::move(scores));
    index_[seed] = order_.begin();
  }
  while (!order_.empty() &&
         ((capacity_ > 0 && index_.size() > capacity_) ||
          (capacity_bytes_ > 0 && bytes_ > capacity_bytes_))) {
    bytes_ -= EntryBytes(order_.back().second);
    index_.erase(order_.back().first);
    order_.pop_back();
  }
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace tpa
