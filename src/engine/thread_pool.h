#ifndef TPA_ENGINE_THREAD_POOL_H_
#define TPA_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpa {

/// Fixed-size worker pool used by QueryEngine to fan a batch of seed queries
/// out across cores.
///
/// Deliberately minimal: jobs are fire-and-forget `void()` closures drained
/// FIFO by `num_threads` workers; completion tracking (a latch, a counter)
/// is the caller's business.  The destructor drains the queue — every job
/// submitted before destruction runs to completion — and then joins.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers.  CHECK-fails on num_threads < 1.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding jobs, then joins all workers.
  ~ThreadPool();

  /// Enqueues a job.  CHECK-fails after destruction has begun.
  void Submit(std::function<void()> job);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tpa

#endif  // TPA_ENGINE_THREAD_POOL_H_
