#ifndef TPA_ENGINE_THREAD_POOL_H_
#define TPA_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "la/task_runner.h"

namespace tpa {

/// Fixed-size worker pool used by QueryEngine to fan a batch of seed queries
/// out across cores.
///
/// Deliberately minimal: jobs are fire-and-forget `void()` closures drained
/// FIFO by `num_threads` workers; completion tracking (a latch, a counter)
/// is the caller's business.  The destructor drains the queue — every job
/// submitted before destruction runs to completion — and then joins.
///
/// ThreadPool also implements la::TaskRunner, so the partitioned dense
/// kernels (CsrMatrix::SpMmTransposeParallel) can fan one SpMM across the
/// same workers that serve queries.
class ThreadPool : public la::TaskRunner {
 public:
  /// Spawns `num_threads` workers.  CHECK-fails on num_threads < 1.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding jobs, then joins all workers.
  ~ThreadPool() override;

  /// Enqueues a job.  CHECK-fails after destruction has begun.
  void Submit(std::function<void()> job);

  /// Blocking fork-join: runs fn(0) .. fn(num_tasks-1) and returns once all
  /// have completed.  The calling thread claims tasks from the same shared
  /// index as the submitted helpers, so the call makes progress — and
  /// cannot deadlock — even when every pool worker is blocked inside a
  /// ParallelFor of its own (the nested case: a query job on a pool thread
  /// fanning its SpMM out over the very same pool).  Helpers that arrive
  /// after the caller drained everything are no-ops.
  void ParallelFor(size_t num_tasks,
                   const std::function<void(size_t)>& fn) override;

  int concurrency() const override { return num_threads(); }

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tpa

#endif  // TPA_ENGINE_THREAD_POOL_H_
