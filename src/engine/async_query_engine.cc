#include "engine/async_query_engine.h"

#include <algorithm>
#include <condition_variable>
#include <list>
#include <utility>

#include "util/check.h"
#include "util/failpoint.h"
#include "util/query_context.h"

namespace tpa {

namespace internal_async {

/// The admission queue and its synchronization, shared (via shared_ptr)
/// between the engine and every ticket it admitted: QueryTicket::Cancel
/// reaches back through a weak_ptr to erase the ticket from the queue and
/// wake a blocked submitter.  All fields transition under `mu` except the
/// atomic cancellation counter.
struct AdmissionState {
  std::mutex mu;
  std::condition_variable work_cv;   // scheduler: work or shutdown
  std::condition_variable space_cv;  // blocked submitters: slot or shutdown
  std::condition_variable idle_cv;   // shutdown: in-flight jobs drained
  /// A list (not a deque) so a queued ticket can be unlinked in O(1) from
  /// its stored iterator when the client cancels it.
  std::list<std::shared_ptr<TicketState>> queue;
  size_t inflight = 0;
  bool stopping = false;
  /// Counted by the cancelling thread (the only kQueued→cancelled
  /// transition), not the scheduler — a cancelled ticket may never be seen
  /// by the scheduler at all once Cancel has unlinked it from the queue.
  std::atomic<uint64_t> cancelled{0};
  /// Queue-full rejects plus submit-during-shutdown failures.  Lives here
  /// (not in the engine) because the rejecting Submit may be a kBlock
  /// submitter that woke from Shutdown after the engine object died — the
  /// admission block is the only state it may still touch.
  std::atomic<uint64_t> rejected{0};
};

/// Shared state behind one QueryTicket.  `state` transitions under `mu`;
/// `result` is written by exactly one completer before `state` flips to
/// kDone (the mutex hand-off orders the writes for waiters) and is
/// immutable afterwards.
struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  QueryTicket::State state = QueryTicket::State::kQueued;
  QueryResult result;
  std::function<void(const QueryResult&)> on_complete;
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  /// Set by Cancel once serving has begun; the serving job wires it into
  /// the query's cooperative context, so iteration-shaped methods observe
  /// it at the next propagation-iteration boundary.  Relaxed is enough:
  /// the flag is monotonic and carries no dependent data.
  std::atomic<bool> cancel_requested{false};
  /// The queue this ticket was admitted to; dead once the engine is gone.
  std::weak_ptr<AdmissionState> admission;
  /// Position in AdmissionState::queue while admitted.  Both fields are
  /// guarded by AdmissionState::mu (not this->mu): they belong to the
  /// queue, the ticket just carries them so Cancel can unlink in O(1).
  std::list<std::shared_ptr<TicketState>>::iterator queue_pos;
  bool in_queue = false;

  /// Claims the ticket for serving; false when cancellation won the race.
  bool TryBegin() {
    std::lock_guard<std::mutex> lock(mu);
    if (state != QueryTicket::State::kQueued) return false;
    state = QueryTicket::State::kRunning;
    return true;
  }

  /// The one completion protocol, shared by serving, rejection, and
  /// cancellation: fire the callback exactly once (before the ticket
  /// becomes observable as done, so a client returning from Wait knows it
  /// already ran), then flip to kDone and wake waiters.  `result` must be
  /// final before the call.
  void Finish() {
    std::function<void(const QueryResult&)> callback;
    {
      std::lock_guard<std::mutex> lock(mu);
      callback = std::move(on_complete);
    }
    if (callback) callback(result);
    {
      std::lock_guard<std::mutex> lock(mu);
      state = QueryTicket::State::kDone;
    }
    cv.notify_all();
  }
};

}  // namespace internal_async

using internal_async::AdmissionState;
using internal_async::TicketState;

namespace {

/// True while this thread is inside a serving job.  A Submit from an
/// on_complete callback must never block on queue space: the serving job
/// it would run on is the very thing that frees slots, so kBlock would
/// self-deadlock — such submits fall back to reject-on-full instead.
thread_local bool tls_on_serving_thread = false;

}  // namespace

const QueryResult& QueryTicket::Wait() const {
  TPA_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock,
                  [&] { return state_->state == State::kDone; });
  return state_->result;
}

bool QueryTicket::WaitFor(std::chrono::milliseconds timeout) const {
  TPA_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(
      lock, timeout, [&] { return state_->state == State::kDone; });
}

bool QueryTicket::done() const {
  TPA_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->state == State::kDone;
}

QueryTicket::State QueryTicket::state() const {
  TPA_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->state;
}

bool QueryTicket::Cancel() {
  TPA_CHECK(state_ != nullptr);
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->state == State::kDone) return false;
    if (state_->state == State::kRunning) {
      // Serving already began: request a cooperative mid-run abort.  The
      // serving job completes the ticket as usual — with CANCELLED (or a
      // degraded partial) once the method observes the flag at an
      // iteration boundary, or with the full result if it finished first.
      state_->cancel_requested.store(true, std::memory_order_relaxed);
      return true;
    }
    // Claim the ticket: concurrent Cancel calls and serving lose the race.
    state_->state = State::kRunning;
    state_->result.status = CancelledError("query cancelled by client");
  }
  // Release the admission-queue slot immediately: unlink the ticket from
  // the queue (unless the scheduler popped it first, in which case the pop
  // already freed the slot) and wake one blocked kBlock submitter.  A dead
  // weak_ptr means the engine is gone — nothing left to release.
  if (std::shared_ptr<AdmissionState> admission = state_->admission.lock()) {
    bool erased = false;
    {
      std::lock_guard<std::mutex> lock(admission->mu);
      if (state_->in_queue) {
        admission->queue.erase(state_->queue_pos);
        state_->in_queue = false;
        erased = true;
      }
    }
    if (erased) admission->space_cv.notify_one();
    admission->cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  state_->Finish();
  return true;
}

AsyncQueryEngine::AsyncQueryEngine(QueryEngine engine,
                                   const AsyncQueryEngineOptions& options,
                                   std::unique_ptr<Graph> shed_graph,
                                   std::optional<QueryEngine> shed_engine)
    : engine_(std::move(engine)),
      options_(options),
      shed_graph_(std::move(shed_graph)),
      shed_engine_(std::move(shed_engine)),
      admission_(std::make_shared<AdmissionState>()) {
  const bool group_serving = engine_.options().batch_block_size > 1 &&
                             engine_.method().SupportsBatchQuery();
  chunk_limit_ = group_serving
                     ? static_cast<size_t>(engine_.options().batch_block_size)
                     : 1;
  max_inflight_ =
      options_.max_inflight_jobs > 0
          ? static_cast<size_t>(options_.max_inflight_jobs)
          : static_cast<size_t>(engine_.num_threads());
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

AsyncQueryEngine::~AsyncQueryEngine() { Shutdown(); }

Status AsyncQueryEngine::ValidatePolicy(const DegradationPolicy& policy) {
  if (!policy.enabled) {
    if (policy.shed_to_fp32) {
      return InvalidArgumentError("shed_to_fp32 requires degradation.enabled");
    }
    return OkStatus();
  }
  if (policy.queue_watermark < 0.0 || policy.queue_watermark > 1.0) {
    return InvalidArgumentError("queue_watermark must lie in [0, 1]");
  }
  if (policy.min_iterations < 0) {
    return InvalidArgumentError("min_iterations must be non-negative");
  }
  return OkStatus();
}

StatusOr<std::unique_ptr<AsyncQueryEngine>> AsyncQueryEngine::Create(
    const Graph& graph, std::unique_ptr<RwrMethod> method,
    const QueryEngineOptions& engine_options,
    const AsyncQueryEngineOptions& async_options) {
  if (async_options.queue_capacity < 1) {
    return InvalidArgumentError("queue_capacity must be at least 1");
  }
  if (async_options.max_inflight_jobs < 0) {
    return InvalidArgumentError("max_inflight_jobs must be non-negative");
  }
  TPA_RETURN_IF_ERROR(ValidatePolicy(async_options.degradation));
  if (async_options.degradation.shed_to_fp32) {
    // The shed tier needs a second instance of the method over the fp32
    // graph; only the registry can manufacture one.
    return InvalidArgumentError(
        "shed_to_fp32 requires CreateFromRegistry (a second method instance "
        "must be built for the fp32 tier)");
  }
  TPA_ASSIGN_OR_RETURN(
      QueryEngine engine,
      QueryEngine::Create(graph, std::move(method), engine_options));
  // Not make_unique: the constructor (which starts the scheduler) is
  // private.
  return std::unique_ptr<AsyncQueryEngine>(
      new AsyncQueryEngine(std::move(engine), async_options,
                           /*shed_graph=*/nullptr,
                           /*shed_engine=*/std::nullopt));
}

StatusOr<std::unique_ptr<AsyncQueryEngine>>
AsyncQueryEngine::CreateFromRegistry(
    const Graph& graph, std::string_view method_name,
    const MethodConfig& config, const QueryEngineOptions& engine_options,
    const AsyncQueryEngineOptions& async_options) {
  TPA_ASSIGN_OR_RETURN(std::unique_ptr<RwrMethod> method,
                       CreateMethod(method_name, config));
  if (!async_options.degradation.shed_to_fp32) {
    return Create(graph, std::move(method), engine_options, async_options);
  }

  if (async_options.queue_capacity < 1) {
    return InvalidArgumentError("queue_capacity must be at least 1");
  }
  if (async_options.max_inflight_jobs < 0) {
    return InvalidArgumentError("max_inflight_jobs must be non-negative");
  }
  TPA_RETURN_IF_ERROR(ValidatePolicy(async_options.degradation));
  if (graph.value_precision() != la::Precision::kFloat64) {
    return InvalidArgumentError(
        "shed_to_fp32 requires an fp64 primary graph — an fp32 engine has "
        "no cheaper tier to shed to");
  }

  // The shed tier: the same method (second instance) over the same graph
  // rematerialized at fp32, serving cache-less on one thread.  The result
  // shape (top_k) must match the primary engine so shed answers are
  // drop-in, but everything about capacity is minimal — shedding is an
  // overflow valve, not a parallel serving hierarchy.
  TPA_ASSIGN_OR_RETURN(std::unique_ptr<RwrMethod> shed_method,
                       CreateMethod(method_name, config));
  if (!shed_method->SupportsPrecision(la::Precision::kFloat32)) {
    return InvalidArgumentError(
        "shed_to_fp32 requires a method supporting the fp32 tier");
  }
  auto shed_graph = std::make_unique<Graph>(
      RematerializeWithPrecision(graph, la::Precision::kFloat32));
  QueryEngineOptions shed_options;
  shed_options.num_threads = 1;
  shed_options.top_k = engine_options.top_k;
  shed_options.batch_block_size = 0;
  TPA_ASSIGN_OR_RETURN(QueryEngine shed_engine,
                       QueryEngine::Create(*shed_graph, std::move(shed_method),
                                           shed_options));

  TPA_ASSIGN_OR_RETURN(
      QueryEngine engine,
      QueryEngine::Create(graph, std::move(method), engine_options));
  return std::unique_ptr<AsyncQueryEngine>(new AsyncQueryEngine(
      std::move(engine), async_options, std::move(shed_graph),
      std::move(shed_engine)));
}

QueryTicket AsyncQueryEngine::Submit(NodeId seed,
                                     const SubmitOptions& options) {
  auto state = std::make_shared<TicketState>();
  state->result.seed = seed;
  state->on_complete = options.on_complete;
  state->admission = admission_;
  if (options.deadline.has_value()) {
    state->deadline = *options.deadline;
    state->has_deadline = true;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);

  // Everything past this point must survive the engine being destroyed
  // while a kBlock submitter is parked on space_cv: Shutdown wakes blocked
  // submitters but does not wait for them, so after the wait only this
  // local shared_ptr (keeping the admission block alive) and these copied
  // options may be touched — never another engine member.
  const std::shared_ptr<AdmissionState> admission = admission_;
  const size_t queue_capacity = options_.queue_capacity;
  const QueueFullPolicy queue_full_policy = options_.queue_full_policy;
  AdmissionState& adm = *admission;
  Status failure;
  {
    std::unique_lock<std::mutex> lock(adm.mu);
    if (adm.stopping) {
      failure = FailedPreconditionError("engine is shutting down");
    } else if (adm.queue.size() >= queue_capacity &&
               (queue_full_policy == QueueFullPolicy::kReject ||
                tls_on_serving_thread)) {
      failure = ResourceExhaustedError("admission queue full");
    } else {
      if (adm.queue.size() >= queue_capacity) {
        adm.space_cv.wait(lock, [&] {
          return adm.stopping || adm.queue.size() < queue_capacity;
        });
      }
      if (adm.stopping) {
        failure = FailedPreconditionError("engine is shutting down");
      } else {
        adm.queue.push_back(state);
        state->queue_pos = std::prev(adm.queue.end());
        state->in_queue = true;
        adm.work_cv.notify_one();
      }
    }
  }
  QueryTicket ticket{state};
  if (!failure.ok()) {
    adm.rejected.fetch_add(1, std::memory_order_relaxed);
    state->result.status = std::move(failure);
    // Not Complete(): that is an engine member function reading engine
    // state, and this rejection path runs on woken-after-shutdown
    // submitters too.
    state->Finish();
  }
  return ticket;
}

void AsyncQueryEngine::SchedulerLoop() {
  AdmissionState& adm = *admission_;
  std::unique_lock<std::mutex> lock(adm.mu);
  for (;;) {
    adm.work_cv.wait(lock, [&] {
      return (!adm.queue.empty() && adm.inflight < max_inflight_) ||
             (adm.stopping && adm.queue.empty());
    });
    if (adm.queue.empty()) return;  // stopping and fully drained

    // The overload sample happens here, at dispatch time under the queue
    // lock: the depth the dispatch observes (including the tickets it is
    // about to pop) is what decides whether this chunk runs degraded.
    const bool overloaded = IsOverloaded(adm.queue.size());

    // Pop whatever is waiting, up to one SpMM group — arrivals that
    // accumulated while every job slot was busy coalesce here.
    std::vector<std::shared_ptr<TicketState>> chunk;
    chunk.reserve(std::min(adm.queue.size(), chunk_limit_));
    while (!adm.queue.empty() && chunk.size() < chunk_limit_) {
      std::shared_ptr<TicketState>& front = adm.queue.front();
      front->in_queue = false;  // leaving the queue: Cancel must not unlink
      chunk.push_back(std::move(front));
      adm.queue.pop_front();
    }
    ++adm.inflight;
    lock.unlock();
    adm.space_cv.notify_all();  // freed queue slots
    groups_dispatched_.fetch_add(1, std::memory_order_relaxed);
    seeds_dispatched_.fetch_add(chunk.size(), std::memory_order_relaxed);
    engine_.pool_->Submit([this, &adm, overloaded, chunk = std::move(chunk)] {
      ServeChunk(chunk, overloaded);
      tls_on_serving_thread = false;
      // Notify while holding the lock: once a waiter can observe
      // inflight == 0 it may destroy the engine (Shutdown returns), so
      // the condition variables must not be touched after unlocking.
      std::lock_guard<std::mutex> job_lock(adm.mu);
      --adm.inflight;
      adm.work_cv.notify_all();  // a job slot freed
      adm.idle_cv.notify_all();  // Shutdown may be waiting for the drain
    });
    lock.lock();
  }
}

bool AsyncQueryEngine::IsOverloaded(size_t queue_depth) const {
  const DegradationPolicy& policy = options_.degradation;
  if (!policy.enabled) return false;
  const double watermark =
      policy.queue_watermark * static_cast<double>(options_.queue_capacity);
  if (static_cast<double>(queue_depth) >= watermark) return true;
  return policy.miss_rate_watermark <= 1.0 &&
         miss_ewma_.load(std::memory_order_relaxed) >=
             policy.miss_rate_watermark;
}

void AsyncQueryEngine::RecordDeadlineOutcome(bool missed) {
  constexpr double kAlpha = 0.05;
  const double sample = missed ? 1.0 : 0.0;
  double current = miss_ewma_.load(std::memory_order_relaxed);
  double next = current + kAlpha * (sample - current);
  while (!miss_ewma_.compare_exchange_weak(current, next,
                                           std::memory_order_relaxed)) {
    next = current + kAlpha * (sample - current);
  }
}

void AsyncQueryEngine::ServeChunk(
    const std::vector<std::shared_ptr<TicketState>>& chunk, bool overloaded) {
  tls_on_serving_thread = true;
  const DegradationPolicy& policy = options_.degradation;
  const bool degrade = policy.enabled && overloaded;
  const auto now = std::chrono::steady_clock::now();
  std::vector<TicketState*> runnable;
  runnable.reserve(chunk.size());
  for (const std::shared_ptr<TicketState>& state : chunk) {
    if (!state->TryBegin()) {
      // Cancellation won the race (and already counted itself).
      continue;
    }
    // A degrading dispatch never expires a ticket outright: a deadline
    // that already passed still buys a bounded partial answer below.
    if (state->has_deadline && state->deadline <= now && !degrade) {
      state->result.status =
          DeadlineExceededError("deadline expired before serving began");
      expired_.fetch_add(1, std::memory_order_relaxed);
      RecordDeadlineOutcome(/*missed=*/true);
      Complete(*state, /*served=*/false);
      continue;
    }
    runnable.push_back(state.get());
  }
  if (runnable.empty()) return;

  // A fault in the serving job itself (before any method runs) fails every
  // runnable ticket with its own status — each still completes exactly
  // once, and the engine keeps serving afterwards.
  const Status chunk_fault = [] {
    try {
      TPA_FAILPOINT("engine.serve_chunk");
      return OkStatus();
    } catch (const std::exception& e) {
      return InternalError(std::string("serving job threw: ") + e.what());
    } catch (...) {
      return InternalError("serving job threw a non-exception object");
    }
  }();
  if (!chunk_fault.ok()) {
    for (TicketState* state : runnable) {
      state->result.status = chunk_fault;
      Complete(*state, /*served=*/true);
    }
    return;
  }

  // Every served miss runs under a cooperative context: the ticket's
  // deadline, its mid-run cancel flag, and — on a degrading dispatch — the
  // policy's partial-answer contract.
  const auto make_context = [&](TicketState& state) {
    QueryContext context;
    if (state.has_deadline) context.deadline = state.deadline;
    context.cancel = &state.cancel_requested;
    if (degrade) {
      context.degrade_to_partial = true;
      context.min_iterations = policy.min_iterations;
    }
    return context;
  };
  // Post-serve accounting: abort/degrade counters and the deadline-miss
  // EWMA (deadline-bearing tickets only — a miss is any outcome where the
  // converged answer did not arrive in time).
  const auto account = [&](const QueryContext& context, TicketState& state) {
    const QueryResult& result = state.result;
    if (result.shed_to_fp32) shed_.fetch_add(1, std::memory_order_relaxed);
    if (context.aborted) {
      (result.degraded ? degraded_ : aborted_)
          .fetch_add(1, std::memory_order_relaxed);
    }
    if (state.has_deadline) {
      const bool missed =
          context.aborted
              ? context.abort_code == StatusCode::kDeadlineExceeded
              : result.status.code() == StatusCode::kDeadlineExceeded;
      RecordDeadlineOutcome(missed);
    }
  };

  const bool use_shed = degrade && shed_engine_.has_value();
  const auto serve_one = [&](TicketState& state) {
    QueryContext context = make_context(state);
    QueryResult& result = state.result;
    const NodeId seed = result.seed;
    if (use_shed) {
      if (seed >= engine_.graph_->num_nodes()) {
        result.status = OutOfRangeError("seed node out of range");
      } else if (!engine_.TryServeFromCache(seed, result)) {
        // An exact cached answer beats a shed one; only true misses pay
        // the fp32 tier.
        shed_engine_->ServeInto(seed, result, &context);
        result.shed_to_fp32 = true;
      }
    } else {
      engine_.ServeInto(seed, result, &context);
    }
    account(context, state);
    Complete(state, /*served=*/true);
  };

  // Shedding serves per-seed regardless of the primary engine's grouping:
  // the shed tier is deliberately group-free (see CreateFromRegistry).
  if (chunk_limit_ <= 1 || use_shed) {
    for (TicketState* state : runnable) serve_one(*state);
    return;
  }

  // Mirror QueryBatch's SpMM path: invalid and cached slots complete
  // per-ticket, the remaining misses run as one multi-vector group — each
  // miss under its own context, so one aborting ticket freezes out of the
  // shared SpMM while the rest of the group converges normally.
  std::vector<TicketState*> misses;
  std::vector<NodeId> group;
  for (TicketState* state : runnable) {
    const NodeId seed = state->result.seed;
    if (seed >= engine_.graph_->num_nodes()) {
      state->result.status = OutOfRangeError("seed node out of range");
      Complete(*state, /*served=*/true);
      continue;
    }
    if (engine_.TryServeFromCache(seed, state->result)) {
      if (state->has_deadline) RecordDeadlineOutcome(/*missed=*/false);
      Complete(*state, /*served=*/true);
      continue;
    }
    misses.push_back(state);
    group.push_back(seed);
  }
  if (misses.empty()) return;
  std::vector<QueryContext> contexts;
  contexts.reserve(misses.size());
  for (TicketState* state : misses) contexts.push_back(make_context(*state));
  std::vector<QueryResult*> slots;
  std::vector<QueryContext*> context_ptrs;
  slots.reserve(misses.size());
  context_ptrs.reserve(misses.size());
  for (size_t k = 0; k < misses.size(); ++k) {
    slots.push_back(&misses[k]->result);
    context_ptrs.push_back(&contexts[k]);
  }
  engine_.ServeGroup(group, slots, context_ptrs);
  for (size_t k = 0; k < misses.size(); ++k) {
    account(contexts[k], *misses[k]);
    Complete(*misses[k], /*served=*/true);
  }
}

void AsyncQueryEngine::Complete(TicketState& state, bool served) {
  if (served) completed_.fetch_add(1, std::memory_order_relaxed);
  state.Finish();
}

void AsyncQueryEngine::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shutdown_done_) return;
  AdmissionState& adm = *admission_;
  {
    std::lock_guard<std::mutex> lock(adm.mu);
    adm.stopping = true;
  }
  adm.work_cv.notify_all();
  adm.space_cv.notify_all();
  scheduler_.join();  // exits once the queue is drained
  {
    std::unique_lock<std::mutex> lock(adm.mu);
    adm.idle_cv.wait(lock, [&] { return adm.inflight == 0; });
  }
  shutdown_done_ = true;
}

AsyncQueryEngine::AsyncStats AsyncQueryEngine::stats() const {
  AsyncStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.rejected = admission_->rejected.load(std::memory_order_relaxed);
  stats.cancelled = admission_->cancelled.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.aborted = aborted_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.groups_dispatched =
      groups_dispatched_.load(std::memory_order_relaxed);
  stats.seeds_dispatched = seeds_dispatched_.load(std::memory_order_relaxed);
  stats.deadline_miss_rate = miss_ewma_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(admission_->mu);
  stats.queue_depth = admission_->queue.size();
  return stats;
}

}  // namespace tpa
