#include "engine/async_query_engine.h"

#include <algorithm>
#include <condition_variable>
#include <list>
#include <utility>

#include "util/check.h"

namespace tpa {

namespace internal_async {

/// The admission queue and its synchronization, shared (via shared_ptr)
/// between the engine and every ticket it admitted: QueryTicket::Cancel
/// reaches back through a weak_ptr to erase the ticket from the queue and
/// wake a blocked submitter.  All fields transition under `mu` except the
/// atomic cancellation counter.
struct AdmissionState {
  std::mutex mu;
  std::condition_variable work_cv;   // scheduler: work or shutdown
  std::condition_variable space_cv;  // blocked submitters: slot or shutdown
  std::condition_variable idle_cv;   // shutdown: in-flight jobs drained
  /// A list (not a deque) so a queued ticket can be unlinked in O(1) from
  /// its stored iterator when the client cancels it.
  std::list<std::shared_ptr<TicketState>> queue;
  size_t inflight = 0;
  bool stopping = false;
  /// Counted by the cancelling thread (the only kQueued→cancelled
  /// transition), not the scheduler — a cancelled ticket may never be seen
  /// by the scheduler at all once Cancel has unlinked it from the queue.
  std::atomic<uint64_t> cancelled{0};
};

/// Shared state behind one QueryTicket.  `state` transitions under `mu`;
/// `result` is written by exactly one completer before `state` flips to
/// kDone (the mutex hand-off orders the writes for waiters) and is
/// immutable afterwards.
struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  QueryTicket::State state = QueryTicket::State::kQueued;
  QueryResult result;
  std::function<void(const QueryResult&)> on_complete;
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  /// The queue this ticket was admitted to; dead once the engine is gone.
  std::weak_ptr<AdmissionState> admission;
  /// Position in AdmissionState::queue while admitted.  Both fields are
  /// guarded by AdmissionState::mu (not this->mu): they belong to the
  /// queue, the ticket just carries them so Cancel can unlink in O(1).
  std::list<std::shared_ptr<TicketState>>::iterator queue_pos;
  bool in_queue = false;

  /// Claims the ticket for serving; false when cancellation won the race.
  bool TryBegin() {
    std::lock_guard<std::mutex> lock(mu);
    if (state != QueryTicket::State::kQueued) return false;
    state = QueryTicket::State::kRunning;
    return true;
  }

  /// The one completion protocol, shared by serving, rejection, and
  /// cancellation: fire the callback exactly once (before the ticket
  /// becomes observable as done, so a client returning from Wait knows it
  /// already ran), then flip to kDone and wake waiters.  `result` must be
  /// final before the call.
  void Finish() {
    std::function<void(const QueryResult&)> callback;
    {
      std::lock_guard<std::mutex> lock(mu);
      callback = std::move(on_complete);
    }
    if (callback) callback(result);
    {
      std::lock_guard<std::mutex> lock(mu);
      state = QueryTicket::State::kDone;
    }
    cv.notify_all();
  }
};

}  // namespace internal_async

using internal_async::AdmissionState;
using internal_async::TicketState;

namespace {

/// True while this thread is inside a serving job.  A Submit from an
/// on_complete callback must never block on queue space: the serving job
/// it would run on is the very thing that frees slots, so kBlock would
/// self-deadlock — such submits fall back to reject-on-full instead.
thread_local bool tls_on_serving_thread = false;

}  // namespace

const QueryResult& QueryTicket::Wait() const {
  TPA_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock,
                  [&] { return state_->state == State::kDone; });
  return state_->result;
}

bool QueryTicket::WaitFor(std::chrono::milliseconds timeout) const {
  TPA_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(
      lock, timeout, [&] { return state_->state == State::kDone; });
}

bool QueryTicket::done() const {
  TPA_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->state == State::kDone;
}

QueryTicket::State QueryTicket::state() const {
  TPA_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->state;
}

bool QueryTicket::Cancel() {
  TPA_CHECK(state_ != nullptr);
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->state != State::kQueued) return false;
    // Claim the ticket: concurrent Cancel calls and serving lose the race.
    state_->state = State::kRunning;
    state_->result.status = CancelledError("query cancelled by client");
  }
  // Release the admission-queue slot immediately: unlink the ticket from
  // the queue (unless the scheduler popped it first, in which case the pop
  // already freed the slot) and wake one blocked kBlock submitter.  A dead
  // weak_ptr means the engine is gone — nothing left to release.
  if (std::shared_ptr<AdmissionState> admission = state_->admission.lock()) {
    bool erased = false;
    {
      std::lock_guard<std::mutex> lock(admission->mu);
      if (state_->in_queue) {
        admission->queue.erase(state_->queue_pos);
        state_->in_queue = false;
        erased = true;
      }
    }
    if (erased) admission->space_cv.notify_one();
    admission->cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  state_->Finish();
  return true;
}

AsyncQueryEngine::AsyncQueryEngine(QueryEngine engine,
                                   const AsyncQueryEngineOptions& options)
    : engine_(std::move(engine)),
      options_(options),
      admission_(std::make_shared<AdmissionState>()) {
  const bool group_serving = engine_.options().batch_block_size > 1 &&
                             engine_.method().SupportsBatchQuery();
  chunk_limit_ = group_serving
                     ? static_cast<size_t>(engine_.options().batch_block_size)
                     : 1;
  max_inflight_ =
      options_.max_inflight_jobs > 0
          ? static_cast<size_t>(options_.max_inflight_jobs)
          : static_cast<size_t>(engine_.num_threads());
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

AsyncQueryEngine::~AsyncQueryEngine() { Shutdown(); }

StatusOr<std::unique_ptr<AsyncQueryEngine>> AsyncQueryEngine::Create(
    const Graph& graph, std::unique_ptr<RwrMethod> method,
    const QueryEngineOptions& engine_options,
    const AsyncQueryEngineOptions& async_options) {
  if (async_options.queue_capacity < 1) {
    return InvalidArgumentError("queue_capacity must be at least 1");
  }
  if (async_options.max_inflight_jobs < 0) {
    return InvalidArgumentError("max_inflight_jobs must be non-negative");
  }
  TPA_ASSIGN_OR_RETURN(
      QueryEngine engine,
      QueryEngine::Create(graph, std::move(method), engine_options));
  // Not make_unique: the constructor (which starts the scheduler) is
  // private.
  return std::unique_ptr<AsyncQueryEngine>(
      new AsyncQueryEngine(std::move(engine), async_options));
}

StatusOr<std::unique_ptr<AsyncQueryEngine>>
AsyncQueryEngine::CreateFromRegistry(
    const Graph& graph, std::string_view method_name,
    const MethodConfig& config, const QueryEngineOptions& engine_options,
    const AsyncQueryEngineOptions& async_options) {
  TPA_ASSIGN_OR_RETURN(std::unique_ptr<RwrMethod> method,
                       CreateMethod(method_name, config));
  return Create(graph, std::move(method), engine_options, async_options);
}

QueryTicket AsyncQueryEngine::Submit(NodeId seed,
                                     const SubmitOptions& options) {
  auto state = std::make_shared<TicketState>();
  state->result.seed = seed;
  state->on_complete = options.on_complete;
  state->admission = admission_;
  if (options.deadline.has_value()) {
    state->deadline = *options.deadline;
    state->has_deadline = true;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);

  AdmissionState& adm = *admission_;
  Status failure;
  {
    std::unique_lock<std::mutex> lock(adm.mu);
    if (adm.stopping) {
      failure = FailedPreconditionError("engine is shutting down");
    } else if (adm.queue.size() >= options_.queue_capacity &&
               (options_.queue_full_policy == QueueFullPolicy::kReject ||
                tls_on_serving_thread)) {
      failure = ResourceExhaustedError("admission queue full");
    } else {
      if (adm.queue.size() >= options_.queue_capacity) {
        adm.space_cv.wait(lock, [&] {
          return adm.stopping || adm.queue.size() < options_.queue_capacity;
        });
      }
      if (adm.stopping) {
        failure = FailedPreconditionError("engine is shutting down");
      } else {
        adm.queue.push_back(state);
        state->queue_pos = std::prev(adm.queue.end());
        state->in_queue = true;
        adm.work_cv.notify_one();
      }
    }
  }
  QueryTicket ticket{state};
  if (!failure.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    state->result.status = std::move(failure);
    Complete(*state, /*served=*/false);
  }
  return ticket;
}

void AsyncQueryEngine::SchedulerLoop() {
  AdmissionState& adm = *admission_;
  std::unique_lock<std::mutex> lock(adm.mu);
  for (;;) {
    adm.work_cv.wait(lock, [&] {
      return (!adm.queue.empty() && adm.inflight < max_inflight_) ||
             (adm.stopping && adm.queue.empty());
    });
    if (adm.queue.empty()) return;  // stopping and fully drained

    // Pop whatever is waiting, up to one SpMM group — arrivals that
    // accumulated while every job slot was busy coalesce here.
    std::vector<std::shared_ptr<TicketState>> chunk;
    chunk.reserve(std::min(adm.queue.size(), chunk_limit_));
    while (!adm.queue.empty() && chunk.size() < chunk_limit_) {
      std::shared_ptr<TicketState>& front = adm.queue.front();
      front->in_queue = false;  // leaving the queue: Cancel must not unlink
      chunk.push_back(std::move(front));
      adm.queue.pop_front();
    }
    ++adm.inflight;
    lock.unlock();
    adm.space_cv.notify_all();  // freed queue slots
    groups_dispatched_.fetch_add(1, std::memory_order_relaxed);
    seeds_dispatched_.fetch_add(chunk.size(), std::memory_order_relaxed);
    engine_.pool_->Submit([this, &adm, chunk = std::move(chunk)] {
      ServeChunk(chunk);
      tls_on_serving_thread = false;
      // Notify while holding the lock: once a waiter can observe
      // inflight == 0 it may destroy the engine (Shutdown returns), so
      // the condition variables must not be touched after unlocking.
      std::lock_guard<std::mutex> job_lock(adm.mu);
      --adm.inflight;
      adm.work_cv.notify_all();  // a job slot freed
      adm.idle_cv.notify_all();  // Shutdown may be waiting for the drain
    });
    lock.lock();
  }
}

void AsyncQueryEngine::ServeChunk(
    const std::vector<std::shared_ptr<TicketState>>& chunk) {
  tls_on_serving_thread = true;
  const auto now = std::chrono::steady_clock::now();
  std::vector<TicketState*> runnable;
  runnable.reserve(chunk.size());
  for (const std::shared_ptr<TicketState>& state : chunk) {
    if (!state->TryBegin()) {
      // Cancellation won the race (and already counted itself).
      continue;
    }
    if (state->has_deadline && state->deadline <= now) {
      state->result.status =
          DeadlineExceededError("deadline expired before serving began");
      expired_.fetch_add(1, std::memory_order_relaxed);
      Complete(*state, /*served=*/false);
      continue;
    }
    runnable.push_back(state.get());
  }
  if (runnable.empty()) return;

  if (chunk_limit_ <= 1) {
    for (TicketState* state : runnable) {
      engine_.ServeInto(state->result.seed, state->result);
      Complete(*state, /*served=*/true);
    }
    return;
  }

  // Mirror QueryBatch's SpMM path: invalid and cached slots complete
  // per-ticket, the remaining misses run as one multi-vector group.
  std::vector<TicketState*> misses;
  std::vector<NodeId> group;
  for (TicketState* state : runnable) {
    const NodeId seed = state->result.seed;
    if (seed >= engine_.graph_->num_nodes()) {
      state->result.status = OutOfRangeError("seed node out of range");
      Complete(*state, /*served=*/true);
      continue;
    }
    if (engine_.TryServeFromCache(seed, state->result)) {
      Complete(*state, /*served=*/true);
      continue;
    }
    misses.push_back(state);
    group.push_back(seed);
  }
  if (misses.empty()) return;
  std::vector<QueryResult*> slots;
  slots.reserve(misses.size());
  for (TicketState* state : misses) slots.push_back(&state->result);
  engine_.ServeGroup(group, slots);
  for (TicketState* state : misses) Complete(*state, /*served=*/true);
}

void AsyncQueryEngine::Complete(TicketState& state, bool served) {
  if (served) completed_.fetch_add(1, std::memory_order_relaxed);
  state.Finish();
}

void AsyncQueryEngine::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shutdown_done_) return;
  AdmissionState& adm = *admission_;
  {
    std::lock_guard<std::mutex> lock(adm.mu);
    adm.stopping = true;
  }
  adm.work_cv.notify_all();
  adm.space_cv.notify_all();
  scheduler_.join();  // exits once the queue is drained
  {
    std::unique_lock<std::mutex> lock(adm.mu);
    adm.idle_cv.wait(lock, [&] { return adm.inflight == 0; });
  }
  shutdown_done_ = true;
}

AsyncQueryEngine::AsyncStats AsyncQueryEngine::stats() const {
  AsyncStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.cancelled = admission_->cancelled.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.groups_dispatched =
      groups_dispatched_.load(std::memory_order_relaxed);
  stats.seeds_dispatched = seeds_dispatched_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(admission_->mu);
  stats.queue_depth = admission_->queue.size();
  return stats;
}

}  // namespace tpa
