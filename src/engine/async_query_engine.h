#ifndef TPA_ENGINE_ASYNC_QUERY_ENGINE_H_
#define TPA_ENGINE_ASYNC_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "method/registry.h"
#include "util/status.h"

namespace tpa {

namespace internal_async {
struct TicketState;
struct AdmissionState;
}  // namespace internal_async

/// What Submit does when the admission queue is at capacity.
enum class QueueFullPolicy {
  /// Submit blocks until a queue slot frees (or shutdown begins).
  kBlock,
  /// Submit returns immediately with a ticket already failed with
  /// RESOURCE_EXHAUSTED — the client's signal to back off.
  kReject,
};

/// Engine-level overload response: when enabled and the engine is past a
/// watermark at dispatch time, deadline/cancel aborts stop failing queries
/// and start degrading them — the client receives the last complete
/// propagation iterate as a certified approximate answer
/// (QueryResult::degraded, with its L1 error bound) instead of
/// DEADLINE_EXCEEDED.  A ticket whose deadline has already expired when a
/// degrading dispatch picks it up runs a bounded partial instead of
/// expiring outright.  Degraded answers are never cached.
struct DegradationPolicy {
  /// Master switch; when false every other field is ignored and aborts
  /// fail with their status code as usual.
  bool enabled = false;
  /// Queue-depth watermark as a fraction of queue_capacity: a dispatch
  /// that observes at least this much of the queue occupied runs degraded.
  /// 0 (the default) means "always overloaded" once the policy is enabled.
  /// Must lie in [0, 1].
  double queue_watermark = 0.0;
  /// Deadline-miss-rate watermark over the EWMA of deadline-bearing
  /// completions (1 = every deadline missed).  Values above 1 disable the
  /// signal (the default): queue depth alone decides.
  double miss_rate_watermark = 2.0;
  /// Iterations a degrading query must complete before honoring an abort,
  /// so a degraded answer is never the bare restart vector.  The error
  /// bound stays certified regardless.
  int min_iterations = 0;
  /// Shed overloaded queries to a private fp32 serving tier: the engine
  /// rematerializes the graph at fp32 and builds a second instance of the
  /// method over it; overloaded dispatches serve per-seed through that
  /// tier (QueryResult::scores_f32 + shed_to_fp32) at roughly half the
  /// memory traffic.  Requires CreateFromRegistry over an fp64 graph with
  /// a method that supports the fp32 tier — plain Create cannot build the
  /// second method instance and fails with INVALID_ARGUMENT.
  bool shed_to_fp32 = false;
};

/// Configuration of the admission queue layered over a QueryEngine.
struct AsyncQueryEngineOptions {
  /// Admission-queue capacity in tickets; Submit applies queue_full_policy
  /// once this many are waiting.  Must be at least 1.
  size_t queue_capacity = 1024;
  QueueFullPolicy queue_full_policy = QueueFullPolicy::kBlock;
  /// Serving jobs allowed in flight on the pool at once; 0 resolves to the
  /// pool's thread count.  The scheduler dispatches only when a slot is
  /// free, so under load tickets accumulate in the queue — which is exactly
  /// what lets the next dispatch coalesce them into one SpMM group.
  int max_inflight_jobs = 0;
  /// Overload response; disabled by default (aborts fail, nothing sheds).
  DegradationPolicy degradation;
};

/// Per-submit options.
struct SubmitOptions {
  /// Absolute deadline, enforced end to end.  A ticket whose deadline has
  /// already passed when a serving job picks it up completes with
  /// DEADLINE_EXCEEDED without running (unless a degrading dispatch turns
  /// it into a bounded partial — see DegradationPolicy).  A ticket that is
  /// already running carries the deadline into the method: iteration-shaped
  /// methods poll it at propagation-iteration boundaries and abort within
  /// one iteration, failing with DEADLINE_EXCEEDED or degrading per policy.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Invoked exactly once with the final result, before the ticket becomes
  /// observable as done (a client returning from Wait knows its callback
  /// has already run) — on the serving thread for served tickets, on the
  /// submitting thread for rejected ones, on the cancelling thread for
  /// cancelled ones.  Must not block for long, must not Wait on its own
  /// ticket, and must not destroy the engine.
  std::function<void(const QueryResult&)> on_complete;
};

/// Handle to one submitted query: a future over its QueryResult plus
/// client-side cancellation.  Cheap to copy (all copies share the state).
/// A ticket outliving the engine stays valid — the engine's shutdown drain
/// completes every admitted ticket first.
class QueryTicket {
 public:
  /// kQueued → kRunning → kDone, except that rejection, cancellation, and
  /// deadline expiry jump straight from kQueued to kDone.
  enum class State { kQueued, kRunning, kDone };

  QueryTicket() = default;  // empty; CHECK-fails on use

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the ticket completes; the reference stays valid for the
  /// life of the ticket.  result().status distinguishes the outcomes:
  /// OK / method error, RESOURCE_EXHAUSTED (rejected at admission),
  /// CANCELLED, DEADLINE_EXCEEDED, FAILED_PRECONDITION (submitted during
  /// shutdown).
  const QueryResult& Wait() const;

  /// Wait with a timeout; false when the ticket is still pending.
  bool WaitFor(std::chrono::milliseconds timeout) const;

  /// True once the result is available (never blocks).
  bool done() const;
  State state() const;

  /// Client-side cancellation.  A still-queued ticket completes with
  /// CANCELLED immediately and its admission-queue slot is released on the
  /// spot — unlinked from the queue, waking one kBlock-blocked submitter —
  /// instead of a dead ticket occupying capacity until the scheduler
  /// reaches it.  A *running* ticket gets a cooperative abort request:
  /// iteration-shaped methods observe it at the next propagation-iteration
  /// boundary and the result arrives (through Wait/on_complete as usual)
  /// as CANCELLED — or as a degraded partial under an active
  /// DegradationPolicy; a method that finished first, or one with no
  /// iteration boundary to poll, completes normally.  Returns true when
  /// the ticket was still queued or running (the cancel landed or was
  /// requested), false when it had already completed.
  bool Cancel();

 private:
  friend class AsyncQueryEngine;
  explicit QueryTicket(std::shared_ptr<internal_async::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal_async::TicketState> state_;
};

/// Asynchronous admission-queue serving over a QueryEngine: one engine
/// multiplexes many concurrent clients through per-query Submit / ticket
/// completion instead of the blocking QueryBatch latch.
///
/// Submitted tickets enter a bounded FIFO queue; a scheduler thread drains
/// them into serving jobs on the engine's pool, dispatching only while a
/// job slot is free (max_inflight_jobs).  When the underlying method
/// supports native batched queries, each dispatch pops up to
/// batch_block_size waiting tickets and serves the cache-miss seeds as one
/// SpMM group — so opportunistic batching emerges from arrival order under
/// load, without clients pre-batching.  Serving runs the exact same private
/// QueryEngine paths as Query / QueryBatch, so results are bitwise
/// identical to the blocking API for the same seeds — at either precision
/// tier (an engine over an fp32 graph serves fp32 through the async
/// surface too).
///
/// Shutdown (or destruction) stops admissions, then drains: every ticket
/// already admitted is served to completion before the engine dies.
class AsyncQueryEngine {
 public:
  /// Builds the wrapped QueryEngine (running the method's one-time
  /// preprocessing) and starts the scheduler.
  static StatusOr<std::unique_ptr<AsyncQueryEngine>> Create(
      const Graph& graph, std::unique_ptr<RwrMethod> method,
      const QueryEngineOptions& engine_options = {},
      const AsyncQueryEngineOptions& async_options = {});

  /// Registry convenience, mirroring QueryEngine::CreateFromRegistry.
  static StatusOr<std::unique_ptr<AsyncQueryEngine>> CreateFromRegistry(
      const Graph& graph, std::string_view method_name,
      const MethodConfig& config = {},
      const QueryEngineOptions& engine_options = {},
      const AsyncQueryEngineOptions& async_options = {});

  AsyncQueryEngine(const AsyncQueryEngine&) = delete;
  AsyncQueryEngine& operator=(const AsyncQueryEngine&) = delete;

  /// Shuts down (draining all admitted tickets) and joins.
  ~AsyncQueryEngine();

  /// Enqueues one seed query and returns its ticket.  Applies the
  /// queue-full policy; never throws.  Safe from any thread, including
  /// completion callbacks of other tickets — with one liveness guard: a
  /// Submit from a serving-side callback never blocks on queue space (the
  /// serving job it runs on is what frees slots), so on a full queue it
  /// rejects with RESOURCE_EXHAUSTED even under kBlock.
  QueryTicket Submit(NodeId seed, const SubmitOptions& options = {});

  /// Stops admissions (later Submits fail with FAILED_PRECONDITION), wakes
  /// blocked submitters, serves every already-admitted ticket, and joins
  /// the scheduler.  Idempotent and safe to call concurrently.
  void Shutdown();

  /// The wrapped engine: the blocking Query / QueryBatch surface remains
  /// available and shares the cache and pool with the async path.
  QueryEngine& engine() { return engine_; }
  const QueryEngine& engine() const { return engine_; }

  /// Monotonic counters; at quiescence
  /// submitted == completed + rejected + cancelled + expired.
  struct AsyncStats {
    uint64_t submitted = 0;
    /// Tickets served by the engine (including per-slot errors).
    uint64_t completed = 0;
    /// Queue-full rejects plus submit-during-shutdown failures.
    uint64_t rejected = 0;
    uint64_t cancelled = 0;
    uint64_t expired = 0;
    /// Running tickets whose serve ended in a cooperative abort (deadline
    /// or mid-run Cancel) without a degraded answer.  Subset of completed —
    /// the ticket was served, just with an abort status.
    uint64_t aborted = 0;
    /// Tickets completed with a degraded partial answer (QueryResult::
    /// degraded).  Subset of completed.
    uint64_t degraded = 0;
    /// Tickets routed to the fp32 shed tier (DegradationPolicy::
    /// shed_to_fp32).  Subset of completed.
    uint64_t shed = 0;
    /// Serving jobs dispatched and the tickets they carried — the coalescing
    /// signal: seeds_dispatched / groups_dispatched is the mean group size.
    uint64_t groups_dispatched = 0;
    uint64_t seeds_dispatched = 0;
    /// Tickets currently waiting for dispatch.
    size_t queue_depth = 0;
    /// EWMA of deadline misses over deadline-bearing completions (1 =
    /// every recent deadline missed) — the DegradationPolicy miss-rate
    /// signal.  0 while no deadline-bearing ticket has completed.
    double deadline_miss_rate = 0.0;
  };
  AsyncStats stats() const;

 private:
  AsyncQueryEngine(QueryEngine engine, const AsyncQueryEngineOptions& options,
                   std::unique_ptr<Graph> shed_graph,
                   std::optional<QueryEngine> shed_engine);

  /// Validates a DegradationPolicy (watermark range, min_iterations);
  /// shared by Create and CreateFromRegistry.
  static Status ValidatePolicy(const DegradationPolicy& policy);

  void SchedulerLoop();
  /// Whether a dispatch observing `queue_depth` waiting tickets should run
  /// degraded under the policy's watermarks.
  bool IsOverloaded(size_t queue_depth) const;
  /// Folds one deadline-bearing completion into the miss-rate EWMA.
  void RecordDeadlineOutcome(bool missed);
  /// One serving job: claims each ticket (skipping cancelled ones, expiring
  /// past-deadline ones unless the dispatch degrades), then serves cache
  /// hits and invalid seeds per slot and the remaining misses per seed or
  /// as one SpMM group — each miss under a per-ticket QueryContext wiring
  /// its deadline, its mid-run cancel flag, and the dispatch's degradation
  /// decision into the method.  `overloaded` is the scheduler's
  /// dispatch-time watermark sample.
  void ServeChunk(
      const std::vector<std::shared_ptr<internal_async::TicketState>>& chunk,
      bool overloaded);
  /// Marks `state` done with `result`'s current content and fires its
  /// callback; bumps completed_ when `served` is true.
  void Complete(internal_async::TicketState& state, bool served);

  QueryEngine engine_;
  AsyncQueryEngineOptions options_;
  /// fp32 shed tier (DegradationPolicy::shed_to_fp32): the rematerialized
  /// graph must outlive the engine borrowing it, hence the member order.
  /// The shed engine is cache-less and single-threaded — shed queries are
  /// the cheap overflow path, not a second serving hierarchy.
  std::unique_ptr<Graph> shed_graph_;
  std::optional<QueryEngine> shed_engine_;
  /// Tickets per dispatch: batch_block_size when the method batches
  /// natively, else 1.
  size_t chunk_limit_ = 1;
  size_t max_inflight_ = 1;

  /// The queue, its synchronization, and the cancellation / rejection
  /// counters live in a shared state block so a QueryTicket can reach back
  /// (via weak_ptr) and release its queue slot on Cancel even though
  /// tickets may outlive the engine — a dead weak_ptr simply skips the
  /// release (the shutdown drain has already emptied the queue by then).
  /// Submit keeps its own strong reference across any kBlock wait, so a
  /// submitter woken by Shutdown survives the engine being destroyed
  /// right after Shutdown returns.
  std::shared_ptr<internal_async::AdmissionState> admission_;

  std::mutex shutdown_mu_;  // serializes Shutdown callers
  bool shutdown_done_ = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> groups_dispatched_{0};
  std::atomic<uint64_t> seeds_dispatched_{0};
  /// Deadline-miss EWMA (α = 0.05), updated lock-free via CAS at each
  /// deadline-bearing completion.
  std::atomic<double> miss_ewma_{0.0};

  std::thread scheduler_;  // last member: joined by Shutdown before teardown
};

}  // namespace tpa

#endif  // TPA_ENGINE_ASYNC_QUERY_ENGINE_H_
