#include "engine/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

#include "util/check.h"

namespace tpa {

ThreadPool::ThreadPool(int num_threads) {
  TPA_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TPA_CHECK(!stopping_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

namespace {

/// Shared state of one ParallelFor: a claim index drained by the caller and
/// any helpers that get scheduled, plus a completion count the caller waits
/// on.  Heap-allocated and shared so a helper scheduled after the caller
/// already returned (having drained everything itself) touches valid
/// memory.
struct ParallelForState {
  explicit ParallelForState(size_t total_tasks,
                            const std::function<void(size_t)>& task_fn)
      : total(total_tasks), fn(task_fn) {}

  const size_t total;
  const std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t done = 0;

  /// Claims and runs tasks until the index is exhausted.
  void Drain() {
    size_t completed = 0;
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < total;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
      ++completed;
    }
    if (completed > 0) {
      std::lock_guard<std::mutex> lock(mu);
      done += completed;
      if (done == total) done_cv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t num_tasks,
                             const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || num_threads() <= 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ParallelForState>(num_tasks, fn);
  const size_t helpers =
      std::min<size_t>(num_tasks, static_cast<size_t>(num_threads())) - 1;
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->done == state->total; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace tpa
