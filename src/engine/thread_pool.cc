#include "engine/thread_pool.h"

#include <utility>

#include "util/check.h"

namespace tpa {

ThreadPool::ThreadPool(int num_threads) {
  TPA_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TPA_CHECK(!stopping_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace tpa
