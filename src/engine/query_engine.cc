#include "engine/query_engine.h"

#include <algorithm>
#include <latch>
#include <thread>
#include <utility>

#include "la/vector_ops.h"
#include "util/check.h"
#include "util/memory_budget.h"

namespace tpa {

namespace {

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

}  // namespace

std::vector<ScoredNode> TopKScores(const std::vector<double>& scores, int k) {
  // la::TopKIndices already clamps k and breaks ties toward smaller index.
  std::vector<ScoredNode> top;
  for (size_t i : la::TopKIndices(scores, static_cast<size_t>(std::max(k, 0)))) {
    top.push_back({static_cast<NodeId>(i), scores[i]});
  }
  return top;
}

QueryEngine::QueryEngine(const Graph& graph, std::unique_ptr<RwrMethod> method,
                         const QueryEngineOptions& options, int num_threads)
    : graph_(&graph),
      options_(options),
      method_(std::move(method)),
      pool_(std::make_unique<ThreadPool>(num_threads)),
      cache_(options.cache_capacity > 0
                 ? std::make_unique<ResultCache>(options.cache_capacity)
                 : nullptr),
      method_mu_(std::make_unique<std::mutex>()) {}

StatusOr<QueryEngine> QueryEngine::Create(const Graph& graph,
                                          std::unique_ptr<RwrMethod> method,
                                          const QueryEngineOptions& options) {
  if (method == nullptr) {
    return InvalidArgumentError("method must be non-null");
  }
  if (options.num_threads < 0) {
    return InvalidArgumentError("num_threads must be non-negative");
  }
  if (options.top_k < 0) {
    return InvalidArgumentError("top_k must be non-negative");
  }
  MemoryBudget unlimited;
  TPA_RETURN_IF_ERROR(method->Preprocess(graph, unlimited));
  return QueryEngine(graph, std::move(method), options,
                     ResolveThreadCount(options.num_threads));
}

StatusOr<QueryEngine> QueryEngine::CreateFromRegistry(
    const Graph& graph, std::string_view method_name,
    const MethodConfig& config, const QueryEngineOptions& options) {
  TPA_ASSIGN_OR_RETURN(std::unique_ptr<RwrMethod> method,
                       CreateMethod(method_name, config));
  return Create(graph, std::move(method), options);
}

void QueryEngine::ServeInto(NodeId seed, QueryResult& result) {
  result.seed = seed;
  if (seed >= graph_->num_nodes()) {
    result.status = OutOfRangeError("seed node out of range");
    return;
  }

  if (cache_ != nullptr) {
    if (ResultCache::Entry hit = cache_->Get(seed)) {
      result.from_cache = true;
      if (options_.top_k > 0) {
        result.top = TopKScores(*hit, options_.top_k);
      } else {
        result.scores = *hit;
      }
      return;
    }
  }

  StatusOr<std::vector<double>> scores = [&] {
    if (method_->SupportsConcurrentQuery()) return method_->Query(seed);
    std::lock_guard<std::mutex> lock(*method_mu_);
    return method_->Query(seed);
  }();
  if (!scores.ok()) {
    result.status = scores.status();
    return;
  }

  std::vector<double> dense = std::move(scores).value();
  if (options_.top_k > 0) {
    result.top = TopKScores(dense, options_.top_k);
    if (cache_ != nullptr) {
      cache_->Put(seed, std::make_shared<const std::vector<double>>(
                            std::move(dense)));
    }
  } else if (cache_ != nullptr) {
    // The client owns its result vector, so the cached copy is the one
    // unavoidable duplication on a dense-mode miss.
    auto entry =
        std::make_shared<const std::vector<double>>(std::move(dense));
    result.scores = *entry;
    cache_->Put(seed, std::move(entry));
  } else {
    result.scores = std::move(dense);
  }
}

QueryResult QueryEngine::Query(NodeId seed) {
  QueryResult result;
  ServeInto(seed, result);
  return result;
}

std::vector<QueryResult> QueryEngine::QueryBatch(
    const std::vector<NodeId>& seeds) {
  std::vector<QueryResult> results(seeds.size());
  if (seeds.empty()) return results;

  std::latch pending(static_cast<ptrdiff_t>(seeds.size()));
  for (size_t i = 0; i < seeds.size(); ++i) {
    pool_->Submit([this, &seeds, &results, &pending, i] {
      ServeInto(seeds[i], results[i]);
      pending.count_down();
    });
  }
  pending.wait();
  return results;
}

QueryEngine::CacheStats QueryEngine::cache_stats() const {
  CacheStats stats;
  if (cache_ != nullptr) {
    stats.hits = cache_->hits();
    stats.misses = cache_->misses();
    stats.entries = cache_->size();
  }
  return stats;
}

}  // namespace tpa
