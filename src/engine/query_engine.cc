#include "engine/query_engine.h"

#include <algorithm>
#include <latch>
#include <thread>
#include <type_traits>
#include <utility>

#include "la/vector_ops.h"
#include "util/cache_info.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/memory_budget.h"

namespace tpa {

namespace {

/// Every method invocation runs inside this guard: the serving contract is
/// Status-based, so a method (or anything it calls) that throws must fail
/// only its own query with INTERNAL — never unwind into the thread pool or
/// the async scheduler, where an escaped exception would terminate the
/// process.  The failpoint sits inside the try so injected throws exercise
/// the same containment as real ones.
template <typename Fn>
auto InvokeMethodGuarded(Fn&& fn) -> decltype(fn()) {
  try {
    TPA_FAILPOINT("engine.serve_query");
    return fn();
  } catch (const std::exception& e) {
    return InternalError(std::string("method threw: ") + e.what());
  } catch (...) {
    return InternalError("method threw a non-exception object");
  }
}

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

/// The kAuto heuristic: grouped SpMM serving only pays once the shared CSR
/// traversal is the bottleneck, i.e. the arrays no longer fit the
/// last-level cache; a cache-resident graph serves faster per-seed thanks
/// to frontier sparsity (see QueryEngineOptions::batch_block_size).
/// graph.SizeBytes() reports the materialized bytes, so both cheaper
/// layouts cross the LLC threshold later than explicit fp64: the fp32 tier
/// at 8 bytes/nnz, and value-free (ValueStorage::kRowConstant) storage at
/// ≈4 bytes/nnz — a value-free graph stays on the faster cache-resident
/// per-seed path up to ~3× the edge count.
int ResolveBatchBlockSize(int requested, const Graph& graph,
                          const RwrMethod& method) {
  if (requested != QueryEngineOptions::kAuto) return requested;
  if (!method.SupportsBatchQuery()) return 0;
  if (graph.SizeBytes() <= DetectLastLevelCacheBytes()) return 0;
  // One group block row per 64-byte cache line: 8 fp64 seeds or 16 fp32
  // seeds.  The scatter's per-edge cost is one line RMW either way, so the
  // fp32 tier serves twice the seeds per CSR traversal at the same line
  // traffic — where its headline SpMM speedup comes from
  // (BENCH_kernels.json precision rows).  Value storage does not enter
  // this formula: dropping the value array narrows the *streamed* CSR
  // bytes per edge (12 → 4 at fp64), but the group width is pinned by the
  // *scattered* multivector row — width × value bytes must stay one line,
  // or every edge RMWs multiple lines of y and the amortization inverts
  // (verified empirically: see BENCH_kernels.json value-free spmm rows,
  // which peak at the same widths as their explicit twins).
  return static_cast<int>(64 /
                          la::PrecisionValueBytes(graph.value_precision()));
}

template <typename V>
std::vector<ScoredNode> TopKScoresImpl(const std::vector<V>& scores, int k) {
  // la::TopKIndices already clamps k and breaks ties toward smaller index.
  std::vector<ScoredNode> top;
  const size_t clamped = static_cast<size_t>(std::max(k, 0));
  for (size_t i : la::TopKIndices(scores, clamped)) {
    top.push_back({static_cast<NodeId>(i), static_cast<double>(scores[i])});
  }
  return top;
}

}  // namespace

std::vector<ScoredNode> TopKScores(const std::vector<double>& scores, int k) {
  return TopKScoresImpl(scores, k);
}

std::vector<ScoredNode> TopKScores(const std::vector<float>& scores, int k) {
  return TopKScoresImpl(scores, k);
}

QueryEngine::QueryEngine(const Graph& graph, std::unique_ptr<RwrMethod> method,
                         const QueryEngineOptions& options, int num_threads)
    : graph_(&graph),
      options_(options),
      precision_(graph.value_precision()),
      method_(std::move(method)),
      pool_(std::make_unique<ThreadPool>(num_threads)),
      cache_(options.cache_capacity > 0 || options.cache_capacity_bytes > 0
                 ? std::make_unique<ResultCache>(options.cache_capacity,
                                                 options.cache_capacity_bytes)
                 : nullptr),
      method_mu_(std::make_unique<std::mutex>()) {
  options_.batch_block_size =
      ResolveBatchBlockSize(options.batch_block_size, graph, *method_);
  // Batched queries may partition their dense SpMM sweeps across the same
  // pool that runs the group jobs (ThreadPool::ParallelFor is re-entrant).
  // Gate on real parallelism: each destination partition rescans the whole
  // row set (binary-searching its column sub-ranges), so on a single
  // hardware thread — or a single-worker pool — the fan-out is pure
  // overhead.
  if (pool_->num_threads() > 1 && std::thread::hardware_concurrency() > 1) {
    method_->SetTaskRunner(pool_.get());
  }
}

StatusOr<QueryEngine> QueryEngine::Create(const Graph& graph,
                                          std::unique_ptr<RwrMethod> method,
                                          const QueryEngineOptions& options) {
  if (method == nullptr) {
    return InvalidArgumentError("method must be non-null");
  }
  if (options.num_threads < 0) {
    return InvalidArgumentError("num_threads must be non-negative");
  }
  if (options.top_k < 0) {
    return InvalidArgumentError("top_k must be non-negative");
  }
  if (options.batch_block_size < 0 &&
      options.batch_block_size != QueryEngineOptions::kAuto) {
    return InvalidArgumentError(
        "batch_block_size must be non-negative or kAuto");
  }
  if (!method->SupportsPrecision(graph.value_precision())) {
    return InvalidArgumentError(
        "method does not support the graph's value precision tier");
  }
  MemoryBudget unlimited;
  TPA_RETURN_IF_ERROR(method->Preprocess(graph, unlimited));
  return QueryEngine(graph, std::move(method), options,
                     ResolveThreadCount(options.num_threads));
}

StatusOr<QueryEngine> QueryEngine::CreateFromRegistry(
    const Graph& graph, std::string_view method_name,
    const MethodConfig& config, const QueryEngineOptions& options) {
  TPA_ASSIGN_OR_RETURN(std::unique_ptr<RwrMethod> method,
                       CreateMethod(method_name, config));
  return Create(graph, std::move(method), options);
}

bool QueryEngine::EntryCompatible(const CachedResult& entry) const {
  // The tiers never serve each other's entries: an fp32 engine's clients
  // expect fp32-rounded scores and vice versa — a mismatch silently mixing
  // tiers would make results depend on cache history.
  if (entry.precision != precision_) return false;
  if (entry.topk_only) {
    // A top-k-only entry serves only top-k requests it fully covers; a
    // dense-requesting query must recompute (and refresh the entry).
    if (options_.top_k <= 0) return false;
    const size_t need = std::min<size_t>(static_cast<size_t>(options_.top_k),
                                         graph_->num_nodes());
    return entry.topk.size() >= need;
  }
  return true;
}

void QueryEngine::ShapeFromEntry(const ResultCache::Entry& entry,
                                 QueryResult& result) {
  result.from_cache = true;
  if (options_.top_k > 0) {
    if (entry->topk_only) {
      const size_t k = std::min<size_t>(static_cast<size_t>(options_.top_k),
                                        entry->topk.size());
      result.top.assign(entry->topk.begin(),
                        entry->topk.begin() + static_cast<long>(k));
    } else if (precision_ == la::Precision::kFloat64) {
      result.top = TopKScores(entry->dense64, options_.top_k);
    } else {
      result.top = TopKScores(entry->dense32, options_.top_k);
    }
  } else if (precision_ == la::Precision::kFloat64) {
    result.scores = entry->dense64;
  } else {
    result.scores_f32 = entry->dense32;
  }
}

bool QueryEngine::UseNativeTopKPath() const {
  return options_.top_k > 0 && method_->SupportsTopKQuery() &&
         graph_->permutation() == nullptr &&
         (cache_ == nullptr || options_.cache_topk_only);
}

void QueryEngine::ServeTopKInto(NodeId seed, QueryResult& result,
                                QueryContext* context) {
  result.seed = seed;
  TopKQueryOptions topk_options;
  // Serving stays score-exact: results must be bitwise-identical to the
  // dense path (and to what a dense-caching engine would serve), so the
  // engine never trades certified-lower-bound scores for the last few
  // iterations.  The win is skipping the dense merge and full-vector sort.
  topk_options.allow_early_termination = false;
  StatusOr<TopKQueryResult> top = InvokeMethodGuarded([&] {
    if (method_->SupportsConcurrentQuery()) {
      return method_->QueryTopK(seed, options_.top_k, topk_options, context);
    }
    std::lock_guard<std::mutex> lock(*method_mu_);
    return method_->QueryTopK(seed, options_.top_k, topk_options, context);
  });
  if (!top.ok()) {
    result.status = top.status();
    return;
  }
  result.top = std::move(top->top);
  if (cache_ != nullptr) {
    cache_->Put(seed, std::make_shared<const CachedResult>(
                          CachedResult::TopKOnly(precision_, result.top)));
  }
}

bool QueryEngine::TryServeFromCache(NodeId seed, QueryResult& result) {
  if (cache_ == nullptr) return false;
  ResultCache::Entry hit = cache_->GetMatching(
      seed, [this](const CachedResult& entry) {
        return EntryCompatible(entry);
      });
  if (hit == nullptr) return false;
  ShapeFromEntry(hit, result);
  return true;
}

namespace {

/// The dense payload of a cached entry / query result at tier V.
template <typename V>
const std::vector<V>& EntryDense(const CachedResult& entry) {
  if constexpr (std::is_same_v<V, double>) {
    return entry.dense64;
  } else {
    return entry.dense32;
  }
}
template <typename V>
std::vector<V>& ResultDense(QueryResult& result) {
  if constexpr (std::is_same_v<V, double>) {
    return result.scores;
  } else {
    return result.scores_f32;
  }
}

}  // namespace

bool QueryEngine::FinalizeAbort(QueryContext* context, QueryResult& result) {
  if (context == nullptr || !context->aborted) return true;
  if (!context->degrade_to_partial) {
    // Abort without a degradation contract: the partial iterate is
    // discarded and the query fails with the abort's own code.
    result.status = context->AbortStatus();
    result.scores.clear();
    result.scores_f32.clear();
    result.top.clear();
    return false;
  }
  result.degraded = true;
  result.degrade_reason = context->abort_code;
  result.error_bound = context->error_bound;
  return false;
}

template <typename V>
void QueryEngine::ShapeAndCacheT(NodeId seed, std::vector<V> dense,
                                 QueryResult& result, bool cacheable) {
  if (options_.top_k > 0) {
    result.top = TopKScores(dense, options_.top_k);
    if (cacheable && cache_ != nullptr) {
      if (options_.cache_topk_only) {
        cache_->Put(seed, std::make_shared<const CachedResult>(
                              CachedResult::TopKOnly(precision_, result.top)));
      } else {
        cache_->Put(seed, std::make_shared<const CachedResult>(
                              CachedResult::Dense(std::move(dense))));
      }
    }
  } else if (cacheable && cache_ != nullptr) {
    // The client owns its result vector, so the cached copy is the one
    // unavoidable duplication on a dense-mode miss.
    auto entry = std::make_shared<const CachedResult>(
        CachedResult::Dense(std::move(dense)));
    ResultDense<V>(result) = EntryDense<V>(*entry);
    cache_->Put(seed, std::move(entry));
  } else {
    ResultDense<V>(result) = std::move(dense);
  }
}

void QueryEngine::ServeInto(NodeId seed, QueryResult& result,
                            QueryContext* context) {
  result.seed = seed;
  if (seed >= graph_->num_nodes()) {
    result.status = OutOfRangeError("seed node out of range");
    return;
  }
  // A cache hit beats any deadline: serving it is a copy, so an expired or
  // cancelled context still gets the exact answer for free.
  if (TryServeFromCache(seed, result)) return;
  if (UseNativeTopKPath()) {
    ServeTopKInto(seed, result, context);
    return;
  }

  // The method speaks the graph's internal storage order; translate the
  // seed in and the dense vector back out (see Permutation).
  const Permutation* permutation = graph_->permutation();
  const NodeId internal =
      permutation != nullptr ? permutation->ToInternal(seed) : seed;

  if (precision_ == la::Precision::kFloat32) {
    StatusOr<std::vector<float>> scores = InvokeMethodGuarded([&] {
      if (method_->SupportsConcurrentQuery()) {
        return method_->QueryF32(internal, context);
      }
      std::lock_guard<std::mutex> lock(*method_mu_);
      return method_->QueryF32(internal, context);
    });
    if (!scores.ok()) {
      result.status = scores.status();
      return;
    }
    std::vector<float> dense = std::move(scores).value();
    const bool cacheable = FinalizeAbort(context, result);
    if (!result.status.ok()) return;
    if (permutation != nullptr) dense = permutation->ScoresToExternal(dense);
    ShapeAndCacheT<float>(seed, std::move(dense), result, cacheable);
    return;
  }

  StatusOr<std::vector<double>> scores = InvokeMethodGuarded([&] {
    if (method_->SupportsConcurrentQuery()) {
      return method_->Query(internal, context);
    }
    std::lock_guard<std::mutex> lock(*method_mu_);
    return method_->Query(internal, context);
  });
  if (!scores.ok()) {
    result.status = scores.status();
    return;
  }
  std::vector<double> dense = std::move(scores).value();
  const bool cacheable = FinalizeAbort(context, result);
  if (!result.status.ok()) return;
  if (permutation != nullptr) dense = permutation->ScoresToExternal(dense);
  ShapeAndCacheT<double>(seed, std::move(dense), result, cacheable);
}

namespace {

/// Fans an SpMM result block back into per-seed dense vectors in one pass
/// over the block rows (per-vector ExtractVector would re-stream the whole
/// n×B block B times), translating internal→external row positions on the
/// fly when the graph is reordered.
template <typename V>
std::vector<std::vector<V>> FanOutBlock(const la::DenseBlockT<V>& block,
                                        const Permutation* permutation) {
  const size_t rows = block.rows();
  const size_t num_vectors = block.num_vectors();
  std::vector<std::vector<V>> dense(num_vectors, std::vector<V>(rows));
  for (size_t r = 0; r < rows; ++r) {
    const V* row = block.RowPtr(r);
    const size_t e = permutation != nullptr
                         ? permutation->ToExternal(static_cast<NodeId>(r))
                         : r;
    for (size_t b = 0; b < num_vectors; ++b) dense[b][e] = row[b];
  }
  return dense;
}

}  // namespace

void QueryEngine::ServeGroup(const std::vector<NodeId>& group,
                             const std::vector<QueryResult*>& slots,
                             std::span<QueryContext* const> contexts) {
  const auto context_for = [&contexts](size_t k) {
    return contexts.empty() ? nullptr : contexts[k];
  };
  if (UseNativeTopKPath()) {
    // Bound-driven top-k queries never materialize dense vectors, so there
    // is no SpMM block to share across the group; each slot runs the native
    // path (this also covers the async engine's grouped chunks).
    for (size_t k = 0; k < slots.size(); ++k) {
      ServeTopKInto(group[k], *slots[k], context_for(k));
    }
    return;
  }

  const Permutation* permutation = graph_->permutation();
  std::vector<NodeId> internal_group;
  const std::vector<NodeId>* method_group = &group;
  if (permutation != nullptr) {
    internal_group.reserve(group.size());
    for (NodeId seed : group) {
      internal_group.push_back(permutation->ToInternal(seed));
    }
    method_group = &internal_group;
  }

  if (precision_ == la::Precision::kFloat32) {
    StatusOr<la::DenseBlockF> block = InvokeMethodGuarded([&] {
      if (method_->SupportsConcurrentQuery()) {
        return method_->QueryBatchDenseF32(*method_group, contexts);
      }
      std::lock_guard<std::mutex> lock(*method_mu_);
      return method_->QueryBatchDenseF32(*method_group, contexts);
    });
    if (!block.ok()) {
      for (QueryResult* slot : slots) slot->status = block.status();
      return;
    }
    std::vector<std::vector<float>> dense = FanOutBlock(*block, permutation);
    for (size_t k = 0; k < slots.size(); ++k) {
      const bool cacheable = FinalizeAbort(context_for(k), *slots[k]);
      if (!slots[k]->status.ok()) continue;
      ShapeAndCacheT<float>(group[k], std::move(dense[k]), *slots[k],
                            cacheable);
    }
    return;
  }

  StatusOr<la::DenseBlock> block = InvokeMethodGuarded([&] {
    if (method_->SupportsConcurrentQuery()) {
      return method_->QueryBatchDense(*method_group, contexts);
    }
    std::lock_guard<std::mutex> lock(*method_mu_);
    return method_->QueryBatchDense(*method_group, contexts);
  });
  if (!block.ok()) {
    for (QueryResult* slot : slots) slot->status = block.status();
    return;
  }
  std::vector<std::vector<double>> dense = FanOutBlock(*block, permutation);
  for (size_t k = 0; k < slots.size(); ++k) {
    const bool cacheable = FinalizeAbort(context_for(k), *slots[k]);
    if (!slots[k]->status.ok()) continue;
    ShapeAndCacheT<double>(group[k], std::move(dense[k]), *slots[k],
                           cacheable);
  }
}

QueryResult QueryEngine::Query(NodeId seed) {
  QueryResult result;
  ServeInto(seed, result);
  return result;
}

std::vector<QueryResult> QueryEngine::QueryBatch(
    const std::vector<NodeId>& seeds) {
  std::vector<QueryResult> results(seeds.size());
  if (seeds.empty()) return results;

  if (options_.batch_block_size <= 1 || !method_->SupportsBatchQuery()) {
    // Per-seed fan-out: one pool job per seed.
    std::latch pending(static_cast<ptrdiff_t>(seeds.size()));
    for (size_t i = 0; i < seeds.size(); ++i) {
      pool_->Submit([this, &seeds, &results, &pending, i] {
        ServeInto(seeds[i], results[i]);
        pending.count_down();
      });
    }
    pending.wait();
    return results;
  }

  // SpMM group path.  The calling thread resolves each slot's fate first —
  // invalid seed, cache hit, or miss — so misses can be partitioned into
  // multi-vector groups.  Hits are shaped on the pool (top-k extraction is
  // a partial sort over n) alongside the group jobs.
  struct PendingHit {
    size_t slot;
    ResultCache::Entry entry;
  };
  std::vector<PendingHit> hits;
  std::vector<size_t> misses;
  for (size_t i = 0; i < seeds.size(); ++i) {
    results[i].seed = seeds[i];
    if (seeds[i] >= graph_->num_nodes()) {
      results[i].status = OutOfRangeError("seed node out of range");
      continue;
    }
    if (cache_ != nullptr) {
      if (ResultCache::Entry entry = cache_->GetMatching(
              seeds[i], [this](const CachedResult& e) {
                return EntryCompatible(e);
              })) {
        hits.push_back({i, std::move(entry)});
        continue;
      }
    }
    misses.push_back(i);
  }

  const size_t block = static_cast<size_t>(options_.batch_block_size);
  const size_t num_groups = (misses.size() + block - 1) / block;
  std::latch pending(static_cast<ptrdiff_t>(hits.size() + num_groups));

  for (size_t h = 0; h < hits.size(); ++h) {
    pool_->Submit([this, &results, &hits, &pending, h] {
      ShapeFromEntry(hits[h].entry, results[hits[h].slot]);
      pending.count_down();
    });
  }

  for (size_t begin = 0; begin < misses.size(); begin += block) {
    pool_->Submit([this, &seeds, &results, &misses, &pending, begin, block] {
      const size_t end = std::min(begin + block, misses.size());
      std::vector<NodeId> group;
      std::vector<QueryResult*> slots;
      group.reserve(end - begin);
      slots.reserve(end - begin);
      for (size_t k = begin; k < end; ++k) {
        group.push_back(seeds[misses[k]]);
        slots.push_back(&results[misses[k]]);
      }
      ServeGroup(group, slots);
      pending.count_down();
    });
  }

  pending.wait();
  return results;
}

QueryEngine::CacheStats QueryEngine::cache_stats() const {
  CacheStats stats;
  if (cache_ != nullptr) {
    stats.hits = cache_->hits();
    stats.misses = cache_->misses();
    stats.entries = cache_->size();
    stats.bytes = cache_->bytes();
  }
  return stats;
}

}  // namespace tpa
