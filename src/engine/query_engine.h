#ifndef TPA_ENGINE_QUERY_ENGINE_H_
#define TPA_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "engine/result_cache.h"
#include "engine/thread_pool.h"
#include "graph/graph.h"
#include "la/precision.h"
#include "method/registry.h"
#include "method/rwr_method.h"
#include "util/query_context.h"
#include "util/status.h"

namespace tpa {

/// Engine configuration.  The defaults serve dense full-vector results with
/// no caching on all available cores.
struct QueryEngineOptions {
  /// Worker threads in the pool; 0 = std::thread::hardware_concurrency().
  int num_threads = 0;
  /// When > 0, results carry only the top-k (node, score) pairs extracted
  /// with a partial sort instead of the dense n-vector.
  int top_k = 0;
  /// LRU result-cache capacity in entries (each entry is one dense score
  /// vector — ~8n bytes fp64, ~4n fp32 — or O(k) with cache_topk_only).
  /// 0 disables entry-count capping.
  size_t cache_capacity = 0;
  /// Optional LRU byte budget over the cached payloads; eviction keeps the
  /// cache under both this and cache_capacity.  0 disables byte capping.
  /// Caching is enabled when either bound is set.
  size_t cache_capacity_bytes = 0;
  /// Top-k engines only (top_k > 0): cache the extracted top-k list
  /// instead of the dense vector, cutting a cached entry from ~8n (fp64) /
  /// ~4n (fp32) bytes to O(k) — under a byte budget this multiplies how
  /// many seeds stay warm by orders of magnitude.  A later dense-requesting
  /// query against the same cache (e.g. through a second engine sharing
  /// it, or after reconfiguring) never mistakes such an entry for a dense
  /// vector: it misses and refreshes the entry to the dense shape (see
  /// CachedResult).  Ignored when top_k == 0.
  bool cache_topk_only = false;
  /// Seeds per SpMM group when the method supports native batched queries
  /// (RwrMethod::SupportsBatchQuery): cache-miss seeds of a QueryBatch are
  /// served in groups of this size through QueryBatchDense — one shared
  /// CSR traversal per group instead of one per seed.  Results are bitwise
  /// identical either way; this is purely a throughput knob.  Grouping
  /// pays off when the shared traversal is the bottleneck — CSR arrays
  /// much larger than the last-level cache, or many cores contending for
  /// memory bandwidth; when the graph is cache-resident, per-seed fan-out
  /// exploits frontier sparsity (early CPI iterations touch few rows) that
  /// a shared sweep over the union frontier gives up.
  ///
  /// kAuto (the default) picks at Create time from exactly that trade-off:
  /// when the graph's CSR bytes exceed the detected last-level cache,
  /// groups sized so one block row fills a 64-byte cache line — 8 seeds at
  /// fp64, 16 at fp32 (the scatter pays one line per edge either way, so
  /// the fp32 tier shares each traversal across twice the seeds) — and
  /// per-seed fan-out otherwise.  The CSR bytes are the *actual
  /// materialized* bytes, so the cheaper layouts cross the threshold
  /// later than explicit fp64 (12 bytes/nnz): fp32 at 8, and value-free
  /// (ValueStorage::kRowConstant) at ≈4 — a value-free graph stays on the
  /// cache-resident per-seed path up to ~3× the edge count.  Value
  /// storage does not change the group width, only the threshold: the
  /// width is pinned by the scattered block row filling one line, not by
  /// the streamed CSR bytes.  Explicit
  /// values are the escape hatch: 0 or 1 forces per-seed fan-out, ≥ 2
  /// forces that group size.  The resolved value is visible through
  /// options().  `bench_engine_throughput` measures both paths.
  int batch_block_size = kAuto;

  /// Sentinel for batch_block_size: resolve from graph size vs LLC size.
  static constexpr int kAuto = -1;
};

/// Outcome of a single seed query within a batch.
struct QueryResult {
  NodeId seed = 0;
  /// Per-query status: an out-of-range seed fails its own slot, never the
  /// batch.
  Status status;
  /// Dense score vector (top_k == 0, fp64 engine), empty otherwise.
  std::vector<double> scores;
  /// Dense score vector of an fp32 engine (top_k == 0): the halved-footprint
  /// serving path hands the client fp32 scores without ever materializing
  /// an fp64 copy.  Empty on fp64 engines and in top-k mode.
  std::vector<float> scores_f32;
  /// Top-k extraction (top_k > 0), empty otherwise.  Always fp64-scored
  /// (k is small; the widening is exact).
  std::vector<ScoredNode> top;
  /// True when the scores came from the LRU cache.
  bool from_cache = false;
  /// True when the query was aborted (deadline / cancellation) under a
  /// degradation policy and the payload is the last complete propagation
  /// iterate instead of the converged answer.  `status` is OK — the partial
  /// is a certified approximate answer, not a failure — and `error_bound`
  /// holds its guarantee.  Degraded results are never cached.
  bool degraded = false;
  /// Why the query degraded: kDeadlineExceeded or kCancelled when
  /// `degraded`, kOk otherwise.
  StatusCode degrade_reason = StatusCode::kOk;
  /// Certified L1 bound on the gap to the converged answer when `degraded`:
  /// ‖answer − converged‖₁ ≤ error_bound (the geometric remaining-mass
  /// bound, scaled through the TPA family/stranger merge when applicable).
  double error_bound = 0.0;
  /// True when an overloaded engine shed this query to its private fp32
  /// serving tier (AsyncQueryEngine's DegradationPolicy::shed_to_fp32):
  /// dense scores arrive in `scores_f32` even though the primary engine
  /// serves fp64.
  bool shed_to_fp32 = false;
};

/// Batched, concurrent RWR query serving over one shared preprocessed
/// method — the paper's client–server scenario (many seed queries against
/// TPA state precomputed once).
///
/// When the graph was built with a locality ordering (BuildOptions::
/// node_ordering), the engine is the translation boundary: incoming seeds
/// are mapped to the internal storage order before the method runs, and
/// dense vectors / top-k entries are mapped back, so clients always speak
/// the original node ids.
///
/// The engine serves at the graph's precision tier (Graph::
/// value_precision): on an fp32 graph it requires a method that opts in
/// (RwrMethod::SupportsPrecision), runs the fp32 query paths end to end,
/// stores fp32 cache entries (half the bytes under the same budget), and
/// returns dense results in QueryResult::scores_f32.  fp64 engines are
/// bit-for-bit the historical pipeline.  The two tiers never serve each
/// other's cache entries (see CachedResult).
///
/// `QueryBatch` is batch-first: when the method supports native batched
/// queries (SupportsBatchQuery), cache-miss seeds are partitioned into
/// SpMM groups of `batch_block_size` and each group runs the method's
/// multi-vector path as one pool job — a single traversal of the CSR
/// arrays shared by the whole group — before results fan back into
/// per-seed slots with the same cache/top-k behavior as individual
/// queries.  Other methods fan each seed out individually across the
/// pool.  Methods that declare SupportsConcurrentQuery() run fully
/// parallel; stateful methods (Monte Carlo RNGs) are serialized
/// internally, still overlapping cache lookups and result extraction.
///
/// The engine borrows the graph (it must outlive the engine) and owns the
/// method, pool, and cache.
class QueryEngine {
 public:
  /// Takes ownership of `method`, runs its Preprocess against `graph` with
  /// an unlimited memory budget, and spins up the worker pool.  Fails with
  /// INVALID_ARGUMENT when the graph's precision tier is one the method
  /// does not support.
  static StatusOr<QueryEngine> Create(const Graph& graph,
                                      std::unique_ptr<RwrMethod> method,
                                      const QueryEngineOptions& options = {});

  /// Registry convenience: Create(graph, CreateMethod(method_name, config)).
  static StatusOr<QueryEngine> CreateFromRegistry(
      const Graph& graph, std::string_view method_name,
      const MethodConfig& config = {}, const QueryEngineOptions& options = {});

  QueryEngine(QueryEngine&&) = default;
  QueryEngine& operator=(QueryEngine&&) = default;

  /// Serves one seed on the calling thread (cache-aware, same result shape
  /// as a batch slot).
  QueryResult Query(NodeId seed);

  /// Serves a batch of seeds concurrently; results align index-for-index
  /// with `seeds`.  Identical to calling Query sequentially per seed —
  /// including bitwise-identical scores for deterministic methods — just
  /// faster.
  std::vector<QueryResult> QueryBatch(const std::vector<NodeId>& seeds);

  int num_threads() const { return pool_->num_threads(); }
  const RwrMethod& method() const { return *method_; }
  const QueryEngineOptions& options() const { return options_; }
  /// The serving tier — always the graph's value precision.
  la::Precision precision() const { return precision_; }

  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;
    /// Payload bytes currently held: ~8n per fp64 dense entry, ~4n per
    /// fp32 dense entry, O(k) per top-k-only entry.
    size_t bytes = 0;
  };
  /// All-zero when caching is disabled.
  CacheStats cache_stats() const;

 private:
  /// The async serving layer reuses this engine's private serving paths
  /// (ServeInto / ServeGroup / TryServeFromCache) verbatim, which is what
  /// keeps async results bitwise-identical to Query / QueryBatch.
  friend class AsyncQueryEngine;

  QueryEngine(const Graph& graph, std::unique_ptr<RwrMethod> method,
              const QueryEngineOptions& options, int num_threads);

  /// Computes (or fetches) the dense vector and shapes it into `result`.
  /// `context`, when non-null, rides along into the method: iteration-shaped
  /// methods poll it at propagation-iteration boundaries, so a deadline or
  /// cancellation lands within one iteration.  On abort the result either
  /// fails with the abort status (default) or — when the context asks for
  /// degradation — carries the partial iterate with its certified bound
  /// (QueryResult::degraded); either way nothing is cached.
  void ServeInto(NodeId seed, QueryResult& result,
                 QueryContext* context = nullptr);

  /// Whether top-k requests route through the method's native bound-driven
  /// path (RwrMethod::QueryTopK) instead of dense-query-then-partial-sort.
  /// Requires top_k > 0 and a method opting in via SupportsTopKQuery, and
  /// excludes two configurations where the dense vector is needed anyway:
  /// a reordered graph (the method speaks internal ids, and the engine's
  /// score translation — including equal-score tie-breaks — is defined on
  /// the dense external vector) and a dense-entry cache (the miss must
  /// deposit the full vector for later dense requests).  Routed results are
  /// score-exact: the engine always disables early termination, so the
  /// (node, score) pairs stay bitwise-identical to the dense path's.
  bool UseNativeTopKPath() const;

  /// Serves one seed through the native top-k path (caller has already
  /// missed the cache): runs QueryTopK (locking for non-concurrent
  /// methods), fills result.top, and refreshes the top-k-only cache entry.
  /// An aborted context always fails the result — a partial top-k ranking
  /// carries no certificate, so top-k queries never degrade.
  void ServeTopKInto(NodeId seed, QueryResult& result,
                     QueryContext* context = nullptr);

  /// Whether a stored entry can serve this engine's requests: same
  /// precision tier, and top-k-only entries only for top-k requests they
  /// cover.
  bool EntryCompatible(const CachedResult& entry) const;

  /// Shapes a cache entry into `result` (top-k or dense copy, sets
  /// from_cache) — the one hit-serving path for both the per-seed and the
  /// SpMM-group flows.  The entry must be EntryCompatible.
  void ShapeFromEntry(const ResultCache::Entry& entry, QueryResult& result);

  /// Cache probe; on a compatible hit, shapes the entry into `result` and
  /// returns true.  A mismatched entry counts as a miss (and is refreshed
  /// by the subsequent insert).
  bool TryServeFromCache(NodeId seed, QueryResult& result);

  /// Applies a context's abort outcome to a served result.  No-op (returns
  /// true) when `context` is null or the query ran to convergence.  On an
  /// abort without degradation the result fails with the abort status and
  /// its payload is dropped; with degradation the result is marked degraded
  /// and carries the context's certified error bound.  Returns whether the
  /// result is cacheable — only a converged, unaborted answer is.
  static bool FinalizeAbort(QueryContext* context, QueryResult& result);

  /// Shapes a freshly computed dense tier-V vector into `result` (top-k or
  /// dense) and inserts it into the cache when caching is enabled
  /// (top-k-only shaped under cache_topk_only).  `cacheable` is false for
  /// degraded partials: they are shaped for the client but must never
  /// poison the cache with an un-converged vector.
  template <typename V>
  void ShapeAndCacheT(NodeId seed, std::vector<V> dense, QueryResult& result,
                      bool cacheable = true);

  /// Serves one SpMM group: runs QueryBatchDense (or the fp32 flavor) for
  /// `group` (locking for non-concurrent methods) and fans the block back
  /// into the result slots `slots[k]` ← vector k.  On failure every slot
  /// gets the group status.  `contexts`, when non-empty, aligns with
  /// `group`: an aborting seed is frozen out of the shared SpMM (identical
  /// to aborting a scalar run) and its slot fails or degrades per
  /// FinalizeAbort while the rest of the group completes normally.
  void ServeGroup(const std::vector<NodeId>& group,
                  const std::vector<QueryResult*>& slots,
                  std::span<QueryContext* const> contexts = {});

  const Graph* graph_;  // not owned
  QueryEngineOptions options_;
  la::Precision precision_ = la::Precision::kFloat64;
  std::unique_ptr<RwrMethod> method_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ResultCache> cache_;  // null when caching is disabled
  /// Serializes Query for methods without SupportsConcurrentQuery.
  std::unique_ptr<std::mutex> method_mu_;
};

/// Extracts the k highest-scoring nodes from a dense vector via partial
/// sort (ties toward smaller node id); k is clamped to scores.size().
/// Exposed for tests and for clients that cache dense vectors themselves.
std::vector<ScoredNode> TopKScores(const std::vector<double>& scores, int k);
/// fp32 overload: ranking happens on the fp32 values; the reported scores
/// are widened exactly.
std::vector<ScoredNode> TopKScores(const std::vector<float>& scores, int k);

}  // namespace tpa

#endif  // TPA_ENGINE_QUERY_ENGINE_H_
