#ifndef TPA_LA_TOPK_H_
#define TPA_LA_TOPK_H_

#include <cstdint>
#include <span>
#include <vector>

namespace tpa {

/// Kept in sync with graph/graph.h (la/ stays below the graph layer; the
/// alias redeclaration is checked by every TU that includes both).
using NodeId = uint32_t;

/// One (node, score) pair of a top-k result, highest score first; ties break
/// toward the smaller node id so results are deterministic.  (Lives here —
/// below core and engine — because the bound-driven top-k path produces
/// these in core::Cpi while top-k-only cache entries store them in the
/// engine.)
struct ScoredNode {
  NodeId node;
  double score;
};

/// Per-query options of the bound-driven top-k path, shared by the core
/// runner (Cpi::RunTopKT), the methods (RwrMethod::QueryTopK), and the
/// engines.
struct TopKQueryOptions {
  /// Stop the propagation as soon as the top-k ranking is *certified* by
  /// the remaining-mass bounds — the reported order is then exactly the
  /// full run's order, but the reported scores are the certified lower
  /// bounds rather than the fully accumulated scores.  Disable to always
  /// run the full window: the scores are then bitwise-identical to the
  /// dense query followed by a full sort (what the QueryEngine serves).
  bool allow_early_termination = true;
};

/// Result of a bound-driven top-k query: the k best (node, score) pairs in
/// decreasing score order (ties toward the smaller id), plus how the
/// propagation ended.
struct TopKQueryResult {
  std::vector<ScoredNode> top;
  /// Index of the last propagation iteration computed (0 when the method
  /// has no iteration notion, e.g. the generic full-query fallback).
  int last_iteration = 0;
  /// True when ‖x(i)‖₁ < ε stopped the run.
  bool converged = false;
  /// True when the ranking was certified (and the run cut short) before the
  /// window's natural end.
  bool early_terminated = false;
};

namespace la {

/// Upper bound on the future interim mass of a CPI-style run: after an
/// iteration with interim norm `norm`, at most Σ_{j=1..left} norm·decay^j
/// more mass can ever be accumulated (‖x(i+1)‖₁ ≤ decay·‖x(i)‖₁ for the
/// substochastic Ã^T).  Inflated by one part in 10^10 so fp64 rounding of
/// the closed form can never under-state the true sum.
double GeometricTailMass(double norm, double decay, int iterations_left);

/// Bounded selection of the best (score, node) pairs: keeps the `capacity`
/// best offers in decreasing score order, ties toward the smaller node id —
/// the same total order as la::TopKIndices, so an exhaustive offer pass
/// reproduces TopKScores exactly.  Offers are O(capacity) worst case but
/// one compare for the common reject; reuse one selector across checks via
/// Reset.
class TopKSelector {
 public:
  /// Clears held entries and sets the number retained.
  void Reset(size_t capacity);

  void Offer(NodeId node, double score);

  /// Held entries, best first (at most `capacity`).
  std::span<const ScoredNode> entries() const {
    return {entries_.data(), entries_.size()};
  }

  /// Whether the first k held entries are certified as the exact final
  /// top-k ranking when every unseen candidate can gain at most `slack`:
  /// each of the first k entries must beat its successor by strictly more
  /// than slack (strict, so bound-equal ties can never reorder), which
  /// covers the k-th-vs-rest boundary because entry k is the best excluded
  /// candidate.  Callers must have offered every candidate that could rank
  /// (the full accumulated support plus the k+1 best never-touched nodes).
  bool CertifiesTopK(size_t k, double slack) const;

  /// Smallest separating gap the certification would have needed: the
  /// minimum successor gap among the first k+1 entries (infinity when fewer
  /// than two entries are held).  Lets callers skip re-selection while the
  /// remaining-mass slack still exceeds any gap seen.
  double MinCertGap(size_t k) const;

 private:
  size_t capacity_ = 0;
  std::vector<ScoredNode> entries_;  // sorted: score desc, node asc
};

}  // namespace la
}  // namespace tpa

#endif  // TPA_LA_TOPK_H_
