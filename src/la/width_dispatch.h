#ifndef TPA_LA_WIDTH_DISPATCH_H_
#define TPA_LA_WIDTH_DISPATCH_H_

#include <cstddef>

namespace tpa::la {

/// Dispatches a blocked kernel to a compile-time block width so its
/// per-edge inner loop over the B right-hand sides unrolls and vectorizes.
/// Invokes `fixed.template operator()<W>()` for W == num_vectors ≤ 16
/// (every group size the engine dispatches by default), else `generic()`.
template <typename Fixed, typename Generic>
void DispatchWidth(size_t num_vectors, Fixed&& fixed, Generic&& generic) {
  switch (num_vectors) {
    case 1: return fixed.template operator()<1>();
    case 2: return fixed.template operator()<2>();
    case 3: return fixed.template operator()<3>();
    case 4: return fixed.template operator()<4>();
    case 5: return fixed.template operator()<5>();
    case 6: return fixed.template operator()<6>();
    case 7: return fixed.template operator()<7>();
    case 8: return fixed.template operator()<8>();
    case 9: return fixed.template operator()<9>();
    case 10: return fixed.template operator()<10>();
    case 11: return fixed.template operator()<11>();
    case 12: return fixed.template operator()<12>();
    case 13: return fixed.template operator()<13>();
    case 14: return fixed.template operator()<14>();
    case 15: return fixed.template operator()<15>();
    case 16: return fixed.template operator()<16>();
    default: return generic();
  }
}

}  // namespace tpa::la

#endif  // TPA_LA_WIDTH_DISPATCH_H_
