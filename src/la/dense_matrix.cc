#include "la/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tpa::la {

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

std::vector<double> DenseMatrix::MatVec(const std::vector<double>& x) const {
  TPA_CHECK_EQ(x.size(), cols_);
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

std::vector<double> DenseMatrix::MatVecTranspose(
    const std::vector<double>& x) const {
  TPA_CHECK_EQ(x.size(), rows_);
  std::vector<double> y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

DenseMatrix DenseMatrix::MatMul(const DenseMatrix& other) const {
  TPA_CHECK_EQ(cols_, other.rows());
  DenseMatrix out(rows_, other.cols());
  // i-k-j loop order: streams through `other` rows, cache friendly.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = RowPtr(i);
    double* out_row = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = a_row[k];
      if (aik == 0.0) continue;
      const double* b_row = other.RowPtr(k);
      for (size_t j = 0; j < other.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  TPA_CHECK_EQ(a.rows(), b.rows());
  TPA_CHECK_EQ(a.cols(), b.cols());
  double best = 0.0;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      best = std::max(best, std::abs(a.At(r, c) - b.At(r, c)));
    }
  }
  return best;
}

}  // namespace tpa::la
