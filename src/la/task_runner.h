#ifndef TPA_LA_TASK_RUNNER_H_
#define TPA_LA_TASK_RUNNER_H_

#include <cstddef>
#include <functional>

namespace tpa::la {

/// Minimal parallel-execution interface consumed by the partitioned dense
/// kernels (CsrMatrix::SpMvTransposeParallel / SpMmTransposeParallel).
///
/// The kernels only need a blocking fork-join over an index range; keeping
/// the interface here (rather than depending on the engine's ThreadPool)
/// preserves the layering la ← core ← method ← engine.  The engine's
/// ThreadPool implements it; SerialTaskRunner is the trivial
/// single-threaded fallback.
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;

  /// Invokes fn(0) .. fn(num_tasks-1), possibly concurrently, and returns
  /// once every invocation has completed.  Implementations must be safe to
  /// call from a task already running on the same runner (no deadlock when
  /// the pool is saturated), which in practice means the calling thread
  /// participates in the work.
  virtual void ParallelFor(size_t num_tasks,
                           const std::function<void(size_t)>& fn) = 0;

  /// Worker parallelism hint used to size partitions (including the calling
  /// thread); at least 1.
  virtual int concurrency() const = 0;
};

/// Runs every task inline on the calling thread.
class SerialTaskRunner final : public TaskRunner {
 public:
  void ParallelFor(size_t num_tasks,
                   const std::function<void(size_t)>& fn) override {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
  }
  int concurrency() const override { return 1; }
};

}  // namespace tpa::la

#endif  // TPA_LA_TASK_RUNNER_H_
