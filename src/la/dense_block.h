#ifndef TPA_LA_DENSE_BLOCK_H_
#define TPA_LA_DENSE_BLOCK_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "la/precision.h"

namespace tpa::la {

/// Minimal allocator aligning DenseBlock storage to cache-line boundaries,
/// so an 8-vector block row is exactly one 64-byte line (not two straddled
/// ones) in the SpMM scatter.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlignment{64};

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlignment));
  }
  void deallocate(T* p, size_t) { ::operator delete(p, kAlignment); }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const {
    return true;
  }
};

/// A block of B equally-sized column vectors — the multivector operand of
/// the batched SpMM kernels (CsrMatrixT::SpMm / SpMmTranspose).
///
/// Layout: viewed as the B×n matrix whose rows are the B vectors, storage is
/// column-major — the B entries belonging to one graph node (one "block
/// row") are contiguous at data()[r·B .. r·B+B).  This is the layout the
/// SpMM sweep wants: each CSR edge touches one contiguous block row per
/// operand, so the inner loop over the B right-hand sides is a unit-stride
/// run that amortizes the (index, value) traversal across the whole batch.
///
/// The value type V is the storage precision tier: DenseBlock (double) is
/// the historical multivector, DenseBlockF (float) halves the block's bytes
/// for the fp32 propagation path.  DenseBlockT deliberately mirrors how
/// std::vector<V> is used for single score vectors (see vector_ops.h for
/// the blocked BLAS-1 helpers); DenseMatrix remains the general row-major
/// container of the block-elimination solvers.
template <typename V>
class DenseBlockT {
 public:
  using value_type = V;

  DenseBlockT() : rows_(0), num_vectors_(0) {}

  /// rows × num_vectors block, zero-initialized.
  DenseBlockT(size_t rows, size_t num_vectors)
      : rows_(rows),
        num_vectors_(num_vectors),
        data_(rows * num_vectors, V{0}) {}

  /// Number of entries per vector (graph nodes).
  size_t rows() const { return rows_; }
  /// Number of vectors in the block (batch size B).
  size_t num_vectors() const { return num_vectors_; }

  V& At(size_t row, size_t vec) { return data_[row * num_vectors_ + vec]; }
  V At(size_t row, size_t vec) const {
    return data_[row * num_vectors_ + vec];
  }

  /// The contiguous B entries of one block row (one entry per vector).
  V* RowPtr(size_t row) { return data_.data() + row * num_vectors_; }
  const V* RowPtr(size_t row) const {
    return data_.data() + row * num_vectors_;
  }

  /// Reshapes to rows × num_vectors without initializing the contents
  /// (kernel-internal; kernels overwrite or zero explicitly).
  void Resize(size_t rows, size_t num_vectors) {
    rows_ = rows;
    num_vectors_ = num_vectors;
    data_.resize(rows * num_vectors);
  }

  /// Sets every entry to zero (keeps capacity).
  void SetZero();

  /// Copies vector `vec` out into a standalone dense vector.
  std::vector<V> ExtractVector(size_t vec) const;

  /// Overwrites vector `vec` from a dense vector of length rows().
  void SetVector(size_t vec, const std::vector<V>& values);

  size_t SizeBytes() const { return data_.size() * sizeof(V); }

  void swap(DenseBlockT& other) noexcept {
    std::swap(rows_, other.rows_);
    std::swap(num_vectors_, other.num_vectors_);
    data_.swap(other.data_);
  }

 private:
  size_t rows_;
  size_t num_vectors_;
  // Block row r at data_[r·num_vectors_]; cache-line aligned base.
  std::vector<V, CacheAlignedAllocator<V>> data_;
};

/// The fp64 multivector every pre-precision-tier caller already uses.
using DenseBlock = DenseBlockT<double>;
/// The fp32 tier: same layout, half the bytes per block row.
using DenseBlockF = DenseBlockT<float>;

/// Widens (or narrows) a block between precision tiers, element by element.
/// The destination is reshaped to match.
template <typename To, typename From>
void ConvertBlock(const DenseBlockT<From>& from, DenseBlockT<To>& to) {
  to.Resize(from.rows(), from.num_vectors());
  const size_t n = from.rows() * from.num_vectors();
  const From* src = from.RowPtr(0);
  To* dst = to.RowPtr(0);
  for (size_t i = 0; i < n; ++i) dst[i] = static_cast<To>(src[i]);
}

extern template class DenseBlockT<double>;
extern template class DenseBlockT<float>;

}  // namespace tpa::la

#endif  // TPA_LA_DENSE_BLOCK_H_
