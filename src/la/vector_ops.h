#ifndef TPA_LA_VECTOR_OPS_H_
#define TPA_LA_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace tpa::la {

/// BLAS-1 style kernels over std::vector<double>.  All score vectors in the
/// library (RWR vectors, CPI interim vectors, residuals) use this
/// representation; keeping the kernels in one place makes the cost model of
/// every method explicit.

/// y += alpha * x.  Sizes must match.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// x *= alpha.
void Scale(double alpha, std::vector<double>& x);

/// Dot product <x, y>.  Sizes must match.
double Dot(const std::vector<double>& x, const std::vector<double>& y);

/// L1 norm: sum of |x_i|.
double NormL1(const std::vector<double>& x);

/// L2 (Euclidean) norm.
double NormL2(const std::vector<double>& x);

/// Max (infinity) norm.
double NormInf(const std::vector<double>& x);

/// ‖x − y‖₁; the paper's error metric.  Sizes must match.
double L1Distance(const std::vector<double>& x, const std::vector<double>& y);

/// Sets all entries to zero (keeps capacity).
void SetZero(std::vector<double>& x);

/// Returns the indices of the k largest entries, in decreasing value order
/// (ties broken by smaller index first).  k is clamped to x.size().
std::vector<size_t> TopKIndices(const std::vector<double>& x, size_t k);

}  // namespace tpa::la

#endif  // TPA_LA_VECTOR_OPS_H_
