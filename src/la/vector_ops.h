#ifndef TPA_LA_VECTOR_OPS_H_
#define TPA_LA_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

#include "la/dense_block.h"

namespace tpa::la {

/// BLAS-1 style kernels over std::vector<double>.  All score vectors in the
/// library (RWR vectors, CPI interim vectors, residuals) use this
/// representation; keeping the kernels in one place makes the cost model of
/// every method explicit.

/// y += alpha * x.  Sizes must match.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// x *= alpha.
void Scale(double alpha, std::vector<double>& x);

/// Dot product <x, y>.  Sizes must match.
double Dot(const std::vector<double>& x, const std::vector<double>& y);

/// L1 norm: sum of |x_i|.
double NormL1(const std::vector<double>& x);

/// L2 (Euclidean) norm.
double NormL2(const std::vector<double>& x);

/// Max (infinity) norm.
double NormInf(const std::vector<double>& x);

/// ‖x − y‖₁; the paper's error metric.  Sizes must match.
double L1Distance(const std::vector<double>& x, const std::vector<double>& y);

/// Sets all entries to zero (keeps capacity).
void SetZero(std::vector<double>& x);

/// Returns the indices of the k largest entries, in decreasing value order
/// (ties broken by smaller index first).  k is clamped to x.size().
std::vector<size_t> TopKIndices(const std::vector<double>& x, size_t k);

/// Blocked BLAS-1 helpers over DenseBlock multivectors.  Each applies the
/// scalar kernel above to every vector of the block with identical
/// per-element arithmetic, so vector b of a blocked result is
/// bitwise-identical to the scalar op run on vector b alone.

/// Y += alpha * X.  Shapes must match.
void BlockAxpy(double alpha, const DenseBlock& x, DenseBlock& y);

/// X *= alpha.
void BlockScale(double alpha, DenseBlock& x);

/// Adds one shared vector to every vector of the block:
/// Y[·][b] += alpha * v for all b.  Requires v.size() == y.rows().
void BlockAddVector(double alpha, const std::vector<double>& v, DenseBlock& y);

/// Per-vector L1 norms: result[b] = ‖X[·][b]‖₁, accumulated in row order
/// (bitwise-identical to NormL1 of the extracted vector).
std::vector<double> BlockColumnNormsL1(const DenseBlock& x);

}  // namespace tpa::la

#endif  // TPA_LA_VECTOR_OPS_H_
