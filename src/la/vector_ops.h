#ifndef TPA_LA_VECTOR_OPS_H_
#define TPA_LA_VECTOR_OPS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "la/dense_block.h"
#include "util/check.h"

namespace tpa::la {

/// BLAS-1 style kernels over std::vector<V>.  All score vectors in the
/// library (RWR vectors, CPI interim vectors, residuals) use this
/// representation; keeping the kernels in one place makes the cost model of
/// every method explicit.
///
/// Every kernel is templated over the storage precision tier V ∈ {float,
/// double}.  Scalars (alpha, norms, dot products) stay double at every
/// tier, so per-element arithmetic runs in fp64 and rounds to V exactly
/// once on store — the V = double instantiation is bitwise-identical to the
/// historical all-double kernels.

/// y += alpha * x.  Sizes must match.
template <typename V>
void Axpy(double alpha, const std::vector<V>& x, std::vector<V>& y) {
  TPA_DCHECK(x.size() == y.size());
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// x *= alpha.
template <typename V>
void Scale(double alpha, std::vector<V>& x) {
  for (V& v : x) v *= alpha;
}

/// Dot product <x, y>, accumulated in fp64.  Sizes must match.
template <typename V>
double Dot(const std::vector<V>& x, const std::vector<V>& y) {
  TPA_DCHECK(x.size() == y.size());
  double sum = 0.0;
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return sum;
}

/// L1 norm: sum of |x_i|, accumulated in fp64.
template <typename V>
double NormL1(const std::vector<V>& x) {
  double sum = 0.0;
  for (V v : x) sum += std::abs(static_cast<double>(v));
  return sum;
}

/// L2 (Euclidean) norm.
template <typename V>
double NormL2(const std::vector<V>& x) {
  return std::sqrt(Dot(x, x));
}

/// Max (infinity) norm.
template <typename V>
double NormInf(const std::vector<V>& x) {
  double best = 0.0;
  for (V v : x) best = std::max(best, std::abs(static_cast<double>(v)));
  return best;
}

/// ‖x − y‖₁; the paper's error metric.  Sizes must match.  The two operands
/// may live at different precision tiers (fp32 result vs fp64 oracle);
/// differences are taken in fp64 either way.
template <typename A, typename B>
double L1Distance(const std::vector<A>& x, const std::vector<B>& y) {
  TPA_DCHECK(x.size() == y.size());
  double sum = 0.0;
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) {
    sum += std::abs(static_cast<double>(x[i]) - static_cast<double>(y[i]));
  }
  return sum;
}

/// Sets all entries to zero (keeps capacity).
template <typename V>
void SetZero(std::vector<V>& x) {
  std::fill(x.begin(), x.end(), V{0});
}

/// Returns the indices of the k largest entries, in decreasing value order
/// (ties broken by smaller index first).  k is clamped to x.size().
template <typename V>
std::vector<size_t> TopKIndices(const std::vector<V>& x, size_t k) {
  k = std::min(k, x.size());
  std::vector<size_t> idx(x.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  auto better = [&x](size_t a, size_t b) {
    if (x[a] != x[b]) return x[a] > x[b];
    return a < b;
  };
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k), idx.end(),
                    better);
  idx.resize(k);
  return idx;
}

/// Converts a score vector between precision tiers (widening is exact;
/// narrowing rounds each element once).
template <typename To, typename From>
std::vector<To> ConvertVector(const std::vector<From>& x) {
  std::vector<To> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = static_cast<To>(x[i]);
  return out;
}

/// Blocked BLAS-1 helpers over DenseBlockT multivectors.  Each applies the
/// scalar kernel above to every vector of the block with identical
/// per-element arithmetic, so vector b of a blocked result is
/// bitwise-identical to the scalar op run on vector b alone.

/// Y += alpha * X.  Shapes must match.
template <typename V>
void BlockAxpy(double alpha, const DenseBlockT<V>& x, DenseBlockT<V>& y) {
  TPA_DCHECK(x.rows() == y.rows());
  TPA_DCHECK(x.num_vectors() == y.num_vectors());
  const size_t n = x.rows() * x.num_vectors();
  const V* xs = x.RowPtr(0);
  V* ys = y.RowPtr(0);
  for (size_t i = 0; i < n; ++i) ys[i] += alpha * xs[i];
}

/// X *= alpha.
template <typename V>
void BlockScale(double alpha, DenseBlockT<V>& x) {
  const size_t n = x.rows() * x.num_vectors();
  V* xs = x.RowPtr(0);
  for (size_t i = 0; i < n; ++i) xs[i] *= alpha;
}

/// Adds one shared vector to every vector of the block:
/// Y[·][b] += alpha * v for all b.  Requires v.size() == y.rows().
template <typename V>
void BlockAddVector(double alpha, const std::vector<V>& v,
                    DenseBlockT<V>& y) {
  TPA_DCHECK(v.size() == y.rows());
  const size_t num_vectors = y.num_vectors();
  for (size_t r = 0; r < v.size(); ++r) {
    const double add = alpha * v[r];
    V* yr = y.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) yr[b] += add;
  }
}

/// Per-vector L1 norms: result[b] = ‖X[·][b]‖₁, accumulated in fp64 in row
/// order (bitwise-identical to NormL1 of the extracted vector).
template <typename V>
std::vector<double> BlockColumnNormsL1(const DenseBlockT<V>& x) {
  std::vector<double> norms(x.num_vectors(), 0.0);
  for (size_t r = 0; r < x.rows(); ++r) {
    const V* xr = x.RowPtr(r);
    for (size_t b = 0; b < norms.size(); ++b) {
      norms[b] += std::abs(static_cast<double>(xr[b]));
    }
  }
  return norms;
}

}  // namespace tpa::la

#endif  // TPA_LA_VECTOR_OPS_H_
