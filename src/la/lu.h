#ifndef TPA_LA_LU_H_
#define TPA_LA_LU_H_

#include <vector>

#include "la/dense_matrix.h"
#include "util/status.h"

namespace tpa::la {

/// LU factorization with partial pivoting (PA = LU) of a square dense matrix.
///
/// Used by NB-LIN for the rank-t core matrix inverse and by BEAR/BePI for the
/// small diagonal blocks produced by hub-and-spoke reordering.
class LuDecomposition {
 public:
  /// Factorizes `a`.  Fails with FAILED_PRECONDITION if `a` is singular to
  /// working precision.
  static StatusOr<LuDecomposition> Compute(const DenseMatrix& a);

  /// Solves A x = b.
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Returns A^{-1} (column-by-column solve).
  DenseMatrix Inverse() const;

  /// det(A); may overflow to ±inf for large well-conditioned systems, fine
  /// for the small blocks we factorize.
  double Determinant() const;

  size_t size() const { return lu_.rows(); }

 private:
  LuDecomposition(DenseMatrix lu, std::vector<size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), perm_sign_(sign) {}

  DenseMatrix lu_;            // packed L (unit diag, below) and U (on/above)
  std::vector<size_t> perm_;  // row permutation: row i of PA is row perm_[i]
  int perm_sign_;
};

}  // namespace tpa::la

#endif  // TPA_LA_LU_H_
