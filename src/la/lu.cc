#include "la/lu.h"

#include <cmath>

#include "util/check.h"

namespace tpa::la {

StatusOr<LuDecomposition> LuDecomposition::Compute(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("LU requires a square matrix");
  }
  const size_t n = a.rows();
  DenseMatrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    size_t pivot = k;
    double best = std::abs(lu.At(k, k));
    for (size_t r = k + 1; r < n; ++r) {
      const double cand = std::abs(lu.At(r, k));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best == 0.0) {
      return FailedPreconditionError("matrix is singular");
    }
    if (pivot != k) {
      for (size_t c = 0; c < n; ++c) std::swap(lu.At(k, c), lu.At(pivot, c));
      std::swap(perm[k], perm[pivot]);
      sign = -sign;
    }
    const double diag = lu.At(k, k);
    for (size_t r = k + 1; r < n; ++r) {
      const double factor = lu.At(r, k) / diag;
      lu.At(r, k) = factor;
      if (factor == 0.0) continue;
      for (size_t c = k + 1; c < n; ++c) {
        lu.At(r, c) -= factor * lu.At(k, c);
      }
    }
  }
  return LuDecomposition(std::move(lu), std::move(perm), sign);
}

std::vector<double> LuDecomposition::Solve(const std::vector<double>& b) const {
  const size_t n = size();
  TPA_CHECK_EQ(b.size(), n);
  std::vector<double> x(n);
  // Forward substitution on L (unit diagonal), applying the permutation.
  for (size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (size_t j = 0; j < i; ++j) sum -= lu_.At(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution on U.
  for (size_t i = n; i-- > 0;) {
    double sum = x[i];
    for (size_t j = i + 1; j < n; ++j) sum -= lu_.At(i, j) * x[j];
    x[i] = sum / lu_.At(i, i);
  }
  return x;
}

DenseMatrix LuDecomposition::Inverse() const {
  const size_t n = size();
  DenseMatrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    std::vector<double> col = Solve(e);
    for (size_t r = 0; r < n; ++r) inv.At(r, c) = col[r];
    e[c] = 0.0;
  }
  return inv;
}

double LuDecomposition::Determinant() const {
  double det = perm_sign_;
  for (size_t i = 0; i < size(); ++i) det *= lu_.At(i, i);
  return det;
}

}  // namespace tpa::la
