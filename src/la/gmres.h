#ifndef TPA_LA_GMRES_H_
#define TPA_LA_GMRES_H_

#include <vector>

#include "la/linear_operator.h"
#include "util/status.h"

namespace tpa::la {

struct GmresOptions {
  size_t restart = 30;        // Krylov subspace size before restarting
  size_t max_iterations = 1000;  // total matvec budget
  double tolerance = 1e-9;    // relative residual target ‖r‖₂/‖b‖₂
};

struct GmresResult {
  std::vector<double> x;
  double relative_residual = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

/// Restarted GMRES(m) for the square system A x = b.
///
/// BePI's online phase solves its Schur-complement system with this routine;
/// the operator is passed matrix-free so the Schur complement is never
/// materialized.  Arnoldi uses modified Gram–Schmidt and the Hessenberg
/// least-squares problem is solved incrementally with Givens rotations.
StatusOr<GmresResult> Gmres(const LinearOperator& a,
                            const std::vector<double>& b,
                            const GmresOptions& options);

}  // namespace tpa::la

#endif  // TPA_LA_GMRES_H_
