#ifndef TPA_LA_PRECISION_H_
#define TPA_LA_PRECISION_H_

#include <cstddef>
#include <string_view>

namespace tpa::la {

/// Value-precision tier of the propagation stack.  It selects the storage
/// type of every value the hot loops stream — CSR edge weights, CPI interim
/// vectors, DenseBlock multivectors, cached score vectors — with gather
/// reductions still accumulated in fp64 (see CsrMatrixT for the per-kernel
/// arithmetic contract).  kFloat64 is the
/// default and is bitwise-identical to the historical all-double pipeline;
/// kFloat32 halves the value bytes per edge and per cached entry, trading a
/// rounding error that is orders of magnitude below the approximation
/// error TPA already accepts (the accuracy-envelope tests pin this).
enum class Precision {
  kFloat64,
  kFloat32,
};

/// Storage bytes of one value at the given tier.
constexpr size_t PrecisionValueBytes(Precision precision) {
  return precision == Precision::kFloat64 ? sizeof(double) : sizeof(float);
}

/// Display name ("fp64" / "fp32") for tables and benchmark JSON.
constexpr std::string_view PrecisionName(Precision precision) {
  return precision == Precision::kFloat64 ? "fp64" : "fp32";
}

}  // namespace tpa::la

#endif  // TPA_LA_PRECISION_H_
