#include "la/qr.h"

#include <cmath>

#include "util/check.h"

namespace tpa::la {

StatusOr<QrDecomposition> QrDecomposition::ComputeThin(const DenseMatrix& a) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n) {
    return InvalidArgumentError("thin QR requires rows >= cols");
  }

  DenseMatrix r_work = a;          // becomes R in its upper triangle
  DenseMatrix v(m, n);             // Householder vectors, column k in col k
  std::vector<double> betas(n, 0.0);

  for (size_t k = 0; k < n; ++k) {
    double norm_sq = 0.0;
    for (size_t i = k; i < m; ++i) {
      norm_sq += r_work.At(i, k) * r_work.At(i, k);
    }
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) continue;  // zero column: reflector is identity

    const double alpha = r_work.At(k, k) >= 0 ? -norm : norm;
    // v = x - alpha * e_k on rows k..m-1.
    for (size_t i = k; i < m; ++i) v.At(i, k) = r_work.At(i, k);
    v.At(k, k) -= alpha;
    double v_norm_sq = 0.0;
    for (size_t i = k; i < m; ++i) v_norm_sq += v.At(i, k) * v.At(i, k);
    if (v_norm_sq == 0.0) continue;
    betas[k] = 2.0 / v_norm_sq;

    // Apply (I - beta v v^T) to columns k..n-1 of r_work.
    for (size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v.At(i, k) * r_work.At(i, j);
      const double scale = betas[k] * dot;
      if (scale == 0.0) continue;
      for (size_t i = k; i < m; ++i) r_work.At(i, j) -= scale * v.At(i, k);
    }
  }

  DenseMatrix r(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) r.At(i, j) = r_work.At(i, j);
  }

  // Thin Q: apply reflectors H_0 ... H_{n-1} in reverse to the first n
  // columns of the identity (Q = H_0 H_1 ... H_{n-1} [I_n; 0]).
  DenseMatrix q(m, n);
  for (size_t j = 0; j < n; ++j) q.At(j, j) = 1.0;
  for (size_t k = n; k-- > 0;) {
    if (betas[k] == 0.0) continue;
    for (size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v.At(i, k) * q.At(i, j);
      const double scale = betas[k] * dot;
      if (scale == 0.0) continue;
      for (size_t i = k; i < m; ++i) q.At(i, j) -= scale * v.At(i, k);
    }
  }

  return QrDecomposition(std::move(q), std::move(r));
}

StatusOr<std::vector<double>> QrDecomposition::LeastSquares(
    const std::vector<double>& b) const {
  TPA_CHECK_EQ(b.size(), q_.rows());
  const size_t n = r_.cols();
  std::vector<double> qtb = q_.MatVecTranspose(b);
  // Back substitution on R x = Q^T b.
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    if (r_.At(i, i) == 0.0) {
      return FailedPreconditionError("rank-deficient matrix in least squares");
    }
    double sum = qtb[i];
    for (size_t j = i + 1; j < n; ++j) sum -= r_.At(i, j) * x[j];
    x[i] = sum / r_.At(i, i);
  }
  return x;
}

}  // namespace tpa::la
