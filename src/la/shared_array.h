#ifndef TPA_LA_SHARED_ARRAY_H_
#define TPA_LA_SHARED_ARRAY_H_

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace tpa::la {

/// Immutable shared array: a (data, size) view plus a type-erased owner that
/// keeps the bytes alive.  The two ways to make one:
///  * adopt a std::vector (the historical path — the vector moves into a
///    heap holder and the view points at it), or
///  * View() over memory owned by something else entirely — an mmap'd
///    snapshot file, a parent buffer — with the owner's shared_ptr pinning
///    the mapping for as long as any view survives.
///
/// This is what lets CsrStructure / CsrMatrixT value layers alias bytes
/// straight out of a mapped snapshot instead of copying them: the kernels
/// only ever consume data()/size(), so they cannot tell (and do not care)
/// whether the array is heap- or file-backed.  Copying a SharedArray copies
/// the view and bumps the owner refcount — never the elements.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;

  /// Adopts a vector (implicit: every legacy call site passing a
  /// std::vector keeps compiling and gains shared ownership for free).
  SharedArray(std::vector<T> vec) {
    auto holder = std::make_shared<const std::vector<T>>(std::move(vec));
    data_ = holder->data();
    size_ = holder->size();
    owner_ = std::move(holder);
  }

  /// Non-owning view of [data, data + size) kept alive by `owner` (e.g. the
  /// MappedFile behind a snapshot).  The caller asserts that the memory
  /// stays valid and immutable for the owner's lifetime.
  static SharedArray View(std::shared_ptr<const void> owner, const T* data,
                          size_t size) {
    SharedArray array;
    array.owner_ = std::move(owner);
    array.data_ = data;
    array.size_ = size;
    return array;
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  std::span<const T> span() const { return {data_, size_}; }

  /// The keep-alive handle (null for a default-constructed array).  Shared
  /// by every copy of this view.
  const std::shared_ptr<const void>& owner() const { return owner_; }

 private:
  std::shared_ptr<const void> owner_;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace tpa::la

#endif  // TPA_LA_SHARED_ARRAY_H_
