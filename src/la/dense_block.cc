#include "la/dense_block.h"

#include <algorithm>

#include "util/check.h"

namespace tpa::la {

template <typename V>
void DenseBlockT<V>::SetZero() {
  std::fill(data_.begin(), data_.end(), V{0});
}

template <typename V>
std::vector<V> DenseBlockT<V>::ExtractVector(size_t vec) const {
  TPA_DCHECK(vec < num_vectors_);
  std::vector<V> out(rows_);
  const V* base = data_.data() + vec;
  for (size_t r = 0; r < rows_; ++r) out[r] = base[r * num_vectors_];
  return out;
}

template <typename V>
void DenseBlockT<V>::SetVector(size_t vec, const std::vector<V>& values) {
  TPA_DCHECK(vec < num_vectors_);
  TPA_DCHECK(values.size() == rows_);
  V* base = data_.data() + vec;
  for (size_t r = 0; r < rows_; ++r) base[r * num_vectors_] = values[r];
}

template class DenseBlockT<double>;
template class DenseBlockT<float>;

}  // namespace tpa::la
