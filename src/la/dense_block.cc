#include "la/dense_block.h"

#include <algorithm>

#include "util/check.h"

namespace tpa::la {

void DenseBlock::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

std::vector<double> DenseBlock::ExtractVector(size_t vec) const {
  TPA_DCHECK(vec < num_vectors_);
  std::vector<double> out(rows_);
  const double* base = data_.data() + vec;
  for (size_t r = 0; r < rows_; ++r) out[r] = base[r * num_vectors_];
  return out;
}

void DenseBlock::SetVector(size_t vec, const std::vector<double>& values) {
  TPA_DCHECK(vec < num_vectors_);
  TPA_DCHECK(values.size() == rows_);
  double* base = data_.data() + vec;
  for (size_t r = 0; r < rows_; ++r) base[r * num_vectors_] = values[r];
}

}  // namespace tpa::la
