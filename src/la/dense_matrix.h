#ifndef TPA_LA_DENSE_MATRIX_H_
#define TPA_LA_DENSE_MATRIX_H_

#include <cstddef>
#include <vector>

namespace tpa::la {

/// Row-major dense matrix of doubles.
///
/// Used for the small dense blocks that appear inside the block-elimination
/// methods (BEAR, BePI) and for the rank-t core matrix of NB-LIN.  Sized for
/// "thousands of rows" workloads; not a general BLAS replacement.
class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static DenseMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Raw row pointer (row-major layout).
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Logical storage footprint in bytes (used for preprocessed-size
  /// accounting in the experiments).
  size_t SizeBytes() const { return data_.size() * sizeof(double); }

  /// y = this * x.  Requires x.size() == cols().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// y = this^T * x.  Requires x.size() == rows().
  std::vector<double> MatVecTranspose(const std::vector<double>& x) const;

  /// C = this * other.  Requires cols() == other.rows().
  DenseMatrix MatMul(const DenseMatrix& other) const;

  DenseMatrix Transposed() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max |a_ij - b_ij|; handy in tests.
  static double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace tpa::la

#endif  // TPA_LA_DENSE_MATRIX_H_
