#ifndef TPA_LA_CSR_MATRIX_H_
#define TPA_LA_CSR_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "la/dense_block.h"
#include "la/precision.h"
#include "la/task_runner.h"

namespace tpa::la {

/// Reusable scratch state of the frontier kernels: an epoch-stamped touch
/// mark per destination plus the collector for the next frontier.  Epoch
/// stamping makes the per-call reset O(1) instead of an O(cols) clear; the
/// stamp array itself is (re)sized lazily.  One scratch belongs to one
/// propagation loop at a time (not thread-safe).  Value-type agnostic: the
/// same scratch serves fp64 and fp32 matrices.
struct FrontierScratch {
  std::vector<uint32_t> touched_epoch;
  uint32_t epoch = 0;

  /// Starts a new kernel invocation over `cols` destinations.
  void BeginEpoch(size_t cols) {
    if (touched_epoch.size() < cols) touched_epoch.resize(cols, 0);
    if (++epoch == 0) {  // wrapped: stamps from older epochs must not alias
      std::fill(touched_epoch.begin(), touched_epoch.end(), 0);
      epoch = 1;
    }
  }
};

/// Immutable CSR matrix specialized for the repository's hot loop: the
/// transition-matrix products Ã^T·x that every RWR method iterates.
///
/// Unlike SparseMatrix (the assembly-friendly triplet format used by the
/// block-elimination precomputations), CsrMatrixT is built directly from
/// already-sorted row-pointer/column-index arrays and stores the normalized
/// edge weights inline with the column indices, so the SpMv inner loop is a
/// single contiguous sweep over (index, value) pairs — no per-edge degree
/// lookup, no division, no branch.
///
/// V is the storage precision tier of the edge values and the vector/block
/// operands (see Precision).  The arithmetic contract per direction:
///  * gathers (SpMv/SpMm) accumulate each output in an fp64 register and
///    round to V once on store — per-entry error O(eps_f32) at the fp32
///    tier regardless of row length;
///  * scatters (SpMvTranspose and friends) update destinations in native V
///    (one product + add rounding per edge), which is what lets the fp32
///    inner loop vectorize at twice the fp64 lane width instead of paying
///    a convert per operand — per-destination error O(in-degree · eps_f32),
///    the same order a V-typed accumulator implies in any case.
/// The V = double instantiation is bitwise-identical to the historical
/// all-double kernels under both rules.
///
/// Two kernels cover both propagation directions used by CPI:
///  * SpMv          — gather:  y[r]    = Σ_e values[e] · x[col[e]]
///  * SpMvTranspose — scatter: y[col[e]] += values[e] · x[r]
template <typename V>
class CsrMatrixT {
 public:
  using value_type = V;

  CsrMatrixT() : rows_(0), cols_(0) {}

  /// Adopts the arrays.  row_offsets must have rows+1 monotone entries with
  /// row_offsets[rows] == col_indices.size() == values.size(); column
  /// indices must be < cols.  CHECK-fails otherwise (programming error:
  /// callers construct from already-validated graph arrays).
  CsrMatrixT(uint32_t rows, uint32_t cols, std::vector<uint64_t> row_offsets,
             std::vector<uint32_t> col_indices, std::vector<V> values);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  size_t nnz() const { return col_indices_.size(); }

  uint32_t RowNnz(uint32_t r) const {
    return static_cast<uint32_t>(row_offsets_[r + 1] - row_offsets_[r]);
  }
  std::span<const uint32_t> RowIndices(uint32_t r) const {
    return {col_indices_.data() + row_offsets_[r],
            col_indices_.data() + row_offsets_[r + 1]};
  }
  std::span<const V> RowValues(uint32_t r) const {
    return {values_.data() + row_offsets_[r],
            values_.data() + row_offsets_[r + 1]};
  }

  /// y = A x (gather over rows, fp64 row accumulator).  y is resized and
  /// overwritten.  Requires x.size() == cols().
  void SpMv(const std::vector<V>& x, std::vector<V>& y) const;

  /// y = A^T x (scatter over rows).  y is resized and zeroed first.
  /// Requires x.size() == rows().
  void SpMvTranspose(const std::vector<V>& x, std::vector<V>& y) const;

  /// Multi-vector gather: Y = A X, one CSR sweep updating all B vectors of
  /// the block (Y is reshaped to rows() × B and overwritten).  For inputs
  /// free of NaN/Inf/−0.0, vector b of Y is bitwise-identical to SpMv run on
  /// vector b of X alone: per vector, the edge contributions accumulate in
  /// exactly the SpMv order.  Requires x.rows() == cols().
  void SpMm(const DenseBlockT<V>& x, DenseBlockT<V>& y) const;

  /// Multi-vector scatter: Y = A^T X, one CSR sweep updating all B vectors
  /// (Y is reshaped to cols() × B and zeroed first).  Same per-vector
  /// bitwise contract as SpMm, against SpMvTranspose.  Block rows of X that
  /// are entirely zero are skipped, mirroring the scalar kernel's
  /// zero-source skip.  Requires x.rows() == rows().
  void SpMmTranspose(const DenseBlockT<V>& x, DenseBlockT<V>& y) const;

  /// Frontier-sparse scatter: the adaptive head of the propagation loop.
  ///
  /// `frontier` lists, in ascending order, a superset of the rows where x is
  /// nonzero (rows listed with x[r] == 0 are skipped, exactly like the dense
  /// kernel's zero-source skip).  y must be sized cols() and all-zero on
  /// entry — the kernel only accumulates, so the caller keeps recycling one
  /// buffer by re-zeroing the entries named in the previously emitted
  /// frontier.  On return `next_frontier` holds the touched destinations,
  /// sorted ascending — a superset of the nonzero entries of y, i.e. the
  /// frontier of the next iteration.
  ///
  /// When the frontier is dense — frontier.size() > density_threshold ·
  /// rows() — the kernel falls through to SpMvTranspose (full zero + full
  /// scatter), leaves next_frontier empty, and returns false: the signal to
  /// stay on the dense kernels for the remaining iterations.
  ///
  /// For inputs free of NaN/Inf/−0.0, y is bitwise-identical to
  /// SpMvTranspose(x, y) either way: contributions accumulate per
  /// destination in ascending source-row order, the dense kernel's order.
  bool SpMvTransposeFrontier(const std::vector<V>& x,
                             std::span<const uint32_t> frontier,
                             double density_threshold, std::vector<V>& y,
                             std::vector<uint32_t>& next_frontier,
                             FrontierScratch& scratch) const;

  /// Multi-vector frontier scatter: same contract as SpMvTransposeFrontier
  /// with block operands.  `frontier` is a sorted superset of the rows where
  /// any of the B vectors is nonzero (the union frontier); block rows that
  /// are entirely zero are skipped like the dense kernel's zero-row skip.
  /// y must be cols() × B and all-zero on entry.  Falls through to
  /// SpMmTranspose above the density threshold (returns false).  Per vector
  /// bitwise-identical to SpMmTranspose.
  bool SpMmTransposeFrontier(const DenseBlockT<V>& x,
                             std::span<const uint32_t> frontier,
                             double density_threshold, DenseBlockT<V>& y,
                             std::vector<uint32_t>& next_frontier,
                             FrontierScratch& scratch) const;

  /// Destination-balanced partition of [0, cols()) for the parallel scatter
  /// kernels: num_parts+1 ascending boundaries splitting the columns so each
  /// part receives roughly nnz/num_parts incoming edges (hub destinations
  /// are what skew a naive equal-width split).  Costs one O(nnz) counting
  /// sweep — callers cache the result per (matrix, num_parts).
  std::vector<uint32_t> NnzBalancedColumnRanges(size_t num_parts) const;

  /// Partial scatter restricted to destinations in [col_begin, col_end):
  /// zeroes that slice of y, then accumulates every edge whose column falls
  /// in the range, rows ascending.  Per destination this reproduces the
  /// full kernel's accumulation order bitwise, so disjoint ranges covering
  /// [0, cols()) compose to exactly SpMvTranspose.  y must be sized cols().
  /// Relies on column indices being sorted within each row (binary search
  /// for the row's sub-range).
  void SpMvTransposeRange(const std::vector<V>& x, std::vector<V>& y,
                          uint32_t col_begin, uint32_t col_end) const;

  /// Block-operand variant of SpMvTransposeRange; y must be cols() × B.
  void SpMmTransposeRange(const DenseBlockT<V>& x, DenseBlockT<V>& y,
                          uint32_t col_begin, uint32_t col_end) const;

  /// Parallel y = A^T x: dispatches SpMvTransposeRange over the destination
  /// partition `boundaries` (from NnzBalancedColumnRanges) on `runner`.
  /// Each destination is owned by exactly one range, so the result is
  /// deterministic and bitwise-identical to the sequential SpMvTranspose
  /// regardless of scheduling.  y is resized first.
  void SpMvTransposeParallel(const std::vector<V>& x, std::vector<V>& y,
                             std::span<const uint32_t> boundaries,
                             TaskRunner& runner) const;

  /// Parallel Y = A^T X over the same destination partition; per-vector
  /// bitwise-identical to the sequential SpMmTranspose.
  void SpMmTransposeParallel(const DenseBlockT<V>& x, DenseBlockT<V>& y,
                             std::span<const uint32_t> boundaries,
                             TaskRunner& runner) const;

  /// Logical storage bytes (offsets + indices + values).
  size_t SizeBytes() const;

 private:
  uint32_t rows_;
  uint32_t cols_;
  std::vector<uint64_t> row_offsets_;  // size rows+1
  std::vector<uint32_t> col_indices_;  // size nnz, sorted within a row
  std::vector<V> values_;              // size nnz
};

/// The fp64 matrix every pre-precision-tier caller already uses.
using CsrMatrix = CsrMatrixT<double>;
/// The fp32 tier: 8 bytes/nnz instead of 12 (index + value).
using CsrMatrixF = CsrMatrixT<float>;

extern template class CsrMatrixT<double>;
extern template class CsrMatrixT<float>;

}  // namespace tpa::la

#endif  // TPA_LA_CSR_MATRIX_H_
