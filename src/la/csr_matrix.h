#ifndef TPA_LA_CSR_MATRIX_H_
#define TPA_LA_CSR_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "la/dense_block.h"
#include "la/precision.h"
#include "la/shared_array.h"
#include "la/task_runner.h"
#include "util/status.h"

namespace tpa::la {

/// Reusable scratch state of the frontier kernels: an epoch-stamped touch
/// mark per destination plus the collector for the next frontier.  Epoch
/// stamping makes the per-call reset O(1) instead of an O(cols) clear; the
/// stamp array itself is (re)sized lazily.  One scratch belongs to one
/// propagation loop at a time (not thread-safe).  Value-type agnostic: the
/// same scratch serves fp64 and fp32 matrices.
struct FrontierScratch {
  std::vector<uint32_t> touched_epoch;
  uint32_t epoch = 0;

  /// Starts a new kernel invocation over `cols` destinations.
  void BeginEpoch(size_t cols) {
    if (touched_epoch.size() < cols) touched_epoch.resize(cols, 0);
    if (++epoch == 0) {  // wrapped: stamps from older epochs must not alias
      std::fill(touched_epoch.begin(), touched_epoch.end(), 0);
      epoch = 1;
    }
  }
};

/// How a CsrMatrixT stores (or synthesizes) its edge values.
enum class CsrValueMode : uint8_t {
  /// One stored value per edge (size nnz) — the general weighted case.
  kExplicit,
  /// Every edge in row r carries the same weight: either synthesized in
  /// registers as 1/row-nnz (no array at all — the out-degree-normalized
  /// transition matrix, where the value stream is pure redundancy) or read
  /// from a caller-supplied per-row scale array of size rows (not nnz).
  kRowConstant,
  /// The weight of an edge is a function of its *column*: scales[col], from
  /// a caller-supplied array of size cols.  This is the transposed view of
  /// kRowConstant — the in-edge CSR of an out-degree-normalized graph, where
  /// edge (v ← u) carries 1/out-degree(u) and u is the column index.
  kColumnScale,
};

/// The index structure of a CSR matrix — row offsets plus column indices —
/// held as SharedArrays so several matrices (the two precision tiers of a
/// graph, or a value-free twin next to an explicit one) alias one topology
/// instead of cloning it.  Immutable once built.  The arrays may be
/// heap-backed (MakeCsrStructure) or non-owning views into an mmap'd
/// snapshot (SharedArray::View) — the kernels consume raw pointers either
/// way.
struct CsrStructure {
  uint32_t rows = 0;
  uint32_t cols = 0;
  SharedArray<uint64_t> row_offsets;  // size rows+1
  SharedArray<uint32_t> col_indices;  // size nnz

  size_t nnz() const { return col_indices.size(); }
};

/// Validates and adopts the arrays into a shareable structure.  row_offsets
/// must have rows+1 monotone entries with row_offsets[rows] ==
/// col_indices.size(); column indices must be < cols.  CHECK-fails otherwise
/// (programming error: callers construct from already-validated arrays).
CsrStructure MakeCsrStructure(uint32_t rows, uint32_t cols,
                              std::vector<uint64_t> row_offsets,
                              std::vector<uint32_t> col_indices);

/// Status-returning twin of MakeCsrStructure for arrays that come from
/// untrusted arithmetic rather than an already-validated build — e.g. edge
/// counts near the uint32 node / uint64 nnz limits.  Malformed input comes
/// back as InvalidArgument naming the offending row and count instead of a
/// CHECK abort.
StatusOr<CsrStructure> MakeCsrStructureChecked(
    uint32_t rows, uint32_t cols, std::vector<uint64_t> row_offsets,
    std::vector<uint32_t> col_indices);

/// Bytes of the index structure alone (offsets + indices).
size_t CsrStructureBytes(const CsrStructure& structure);

/// Immutable CSR matrix specialized for the repository's hot loop: the
/// transition-matrix products Ã^T·x that every RWR method iterates.
///
/// Unlike SparseMatrix (the assembly-friendly triplet format used by the
/// block-elimination precomputations), CsrMatrixT is built directly from
/// already-sorted row-pointer/column-index arrays and stores the normalized
/// edge weights inline with the column indices, so the SpMv inner loop is a
/// single contiguous sweep over (index, value) pairs — no per-edge degree
/// lookup, no division, no branch.
///
/// The value storage has three modes (CsrValueMode).  kExplicit keeps one
/// value per edge — 12 bytes/nnz at fp64, 8 at fp32.  The value-free modes
/// drop the per-edge array entirely and the kernels synthesize each weight
/// in registers (kRowConstant: 1/row-nnz or a per-row scale, hoisted out of
/// the edge loop; kColumnScale: a per-column scale indexed by the same
/// column id the kernel already loads), cutting the streamed footprint to
/// the index-only ≈4 bytes/nnz.  Every kernel is bitwise-identical across
/// modes when the explicit values equal the synthesized ones bitwise: the
/// synthesized weight is computed by the exact expression that materialized
/// the explicit array (1/deg in fp64, rounded once to V), and hoisting the
/// per-row product out of a scatter loop reorders no floating-point
/// operation — each destination still accumulates the identical product in
/// the identical order.
///
/// V is the storage precision tier of the edge values and the vector/block
/// operands (see Precision).  The arithmetic contract per direction:
///  * gathers (SpMv/SpMm) accumulate each output in an fp64 register and
///    round to V once on store — per-entry error O(eps_f32) at the fp32
///    tier regardless of row length;
///  * scatters (SpMvTranspose and friends) update destinations in native V
///    (one product + add rounding per edge), which is what lets the fp32
///    inner loop vectorize at twice the fp64 lane width instead of paying
///    a convert per operand — per-destination error O(in-degree · eps_f32),
///    the same order a V-typed accumulator implies in any case.
/// The V = double instantiation is bitwise-identical to the historical
/// all-double kernels under both rules.
///
/// Two kernels cover both propagation directions used by CPI:
///  * SpMv          — gather:  y[r]    = Σ_e values[e] · x[col[e]]
///  * SpMvTranspose — scatter: y[col[e]] += values[e] · x[r]
template <typename V>
class CsrMatrixT {
 public:
  using value_type = V;

  CsrMatrixT() = default;

  /// Explicit-value matrix adopting the arrays; validates like
  /// MakeCsrStructure and additionally requires values.size() == nnz.
  CsrMatrixT(uint32_t rows, uint32_t cols, std::vector<uint64_t> row_offsets,
             std::vector<uint32_t> col_indices, std::vector<V> values);

  /// Value-free matrix adopting the arrays.  For kRowConstant, `scales` is
  /// either empty (weights synthesized as 1/row-nnz) or one entry per row;
  /// for kColumnScale it is one entry per column.  Passing kExplicit makes
  /// `scales` the per-edge value array (size nnz) — that is also where the
  /// legacy five-argument shape lands when `values` is spelled `{}`, since
  /// an empty braced list value-initializes CsrValueMode.
  CsrMatrixT(uint32_t rows, uint32_t cols, std::vector<uint64_t> row_offsets,
             std::vector<uint32_t> col_indices, CsrValueMode mode,
             std::vector<V> scales = {});

  /// Explicit-value matrix over an already-validated shared structure: the
  /// topology is aliased, not copied.  `values` is a SharedArray so the
  /// value layer may be a heap vector (implicit conversion — the legacy
  /// shape) or a non-owning view into a mapped snapshot.
  CsrMatrixT(CsrStructure structure, SharedArray<V> values);

  /// Value-free matrix over an already-validated shared structure (with the
  /// same kExplicit fallback as the adopting overload above).
  CsrMatrixT(CsrStructure structure, CsrValueMode mode,
             SharedArray<V> scales = {});

  uint32_t rows() const { return structure_.rows; }
  uint32_t cols() const { return structure_.cols; }
  size_t nnz() const { return structure_.nnz(); }

  /// The shared index structure — alias it into another matrix (a second
  /// precision tier, a value-free twin) instead of copying the topology.
  const CsrStructure& structure() const { return structure_; }

  CsrValueMode value_mode() const { return mode_; }

  /// The value/scale arrays exactly as stored — the serialization view.
  /// values() is non-empty only under kExplicit (nnz entries); scales() only
  /// under scaled kRowConstant (rows entries) or kColumnScale (cols
  /// entries).
  const SharedArray<V>& values() const { return values_; }
  const SharedArray<V>& scales() const { return scales_; }

  uint32_t RowNnz(uint32_t r) const {
    const uint64_t* offsets = structure_.row_offsets.data();
    return static_cast<uint32_t>(offsets[r + 1] - offsets[r]);
  }
  std::span<const uint32_t> RowIndices(uint32_t r) const {
    const uint64_t* offsets = structure_.row_offsets.data();
    const uint32_t* indices = structure_.col_indices.data();
    return {indices + offsets[r], indices + offsets[r + 1]};
  }
  /// The stored per-edge values of row r.  CHECK-fails unless the matrix is
  /// kExplicit — value-free modes have no per-edge array to point into; use
  /// EdgeWeight for a mode-agnostic (but per-edge-cost) view.
  std::span<const V> RowValues(uint32_t r) const;

  /// The weight of edge `e` of row `r`, whatever the storage mode — the
  /// value the kernels act on.  O(1); for tests and debugging, not hot
  /// loops.  Requires row_offsets[r] <= e < row_offsets[r+1].
  V EdgeWeight(uint32_t r, uint64_t e) const;

  /// y = A x (gather over rows, fp64 row accumulator).  y is resized and
  /// overwritten.  Requires x.size() == cols().
  void SpMv(const std::vector<V>& x, std::vector<V>& y) const;

  /// y = A^T x (scatter over rows).  y is resized and zeroed first.
  /// Requires x.size() == rows().
  void SpMvTranspose(const std::vector<V>& x, std::vector<V>& y) const;

  /// Multi-vector gather: Y = A X, one CSR sweep updating all B vectors of
  /// the block (Y is reshaped to rows() × B and overwritten).  For inputs
  /// free of NaN/Inf/−0.0, vector b of Y is bitwise-identical to SpMv run on
  /// vector b of X alone: per vector, the edge contributions accumulate in
  /// exactly the SpMv order.  Requires x.rows() == cols().
  void SpMm(const DenseBlockT<V>& x, DenseBlockT<V>& y) const;

  /// Multi-vector scatter: Y = A^T X, one CSR sweep updating all B vectors
  /// (Y is reshaped to cols() × B and zeroed first).  Same per-vector
  /// bitwise contract as SpMm, against SpMvTranspose.  Block rows of X that
  /// are entirely zero are skipped, mirroring the scalar kernel's
  /// zero-source skip.  Requires x.rows() == rows().
  void SpMmTranspose(const DenseBlockT<V>& x, DenseBlockT<V>& y) const;

  /// Frontier-sparse scatter: the adaptive head of the propagation loop.
  ///
  /// `frontier` lists, in ascending order, a superset of the rows where x is
  /// nonzero (rows listed with x[r] == 0 are skipped, exactly like the dense
  /// kernel's zero-source skip).  y must be sized cols() and all-zero on
  /// entry — the kernel only accumulates, so the caller keeps recycling one
  /// buffer by re-zeroing the entries named in the previously emitted
  /// frontier.  On return `next_frontier` holds the touched destinations,
  /// sorted ascending — a superset of the nonzero entries of y, i.e. the
  /// frontier of the next iteration.
  ///
  /// When the frontier is dense — frontier.size() > density_threshold ·
  /// rows() — the kernel falls through to SpMvTranspose (full zero + full
  /// scatter), leaves next_frontier empty, and returns false: the signal to
  /// stay on the dense kernels for the remaining iterations.
  ///
  /// For inputs free of NaN/Inf/−0.0, y is bitwise-identical to
  /// SpMvTranspose(x, y) either way: contributions accumulate per
  /// destination in ascending source-row order, the dense kernel's order.
  bool SpMvTransposeFrontier(const std::vector<V>& x,
                             std::span<const uint32_t> frontier,
                             double density_threshold, std::vector<V>& y,
                             std::vector<uint32_t>& next_frontier,
                             FrontierScratch& scratch) const;

  /// Multi-vector frontier scatter: same contract as SpMvTransposeFrontier
  /// with block operands.  `frontier` is a sorted superset of the rows where
  /// any of the B vectors is nonzero (the union frontier); block rows that
  /// are entirely zero are skipped like the dense kernel's zero-row skip.
  /// y must be cols() × B and all-zero on entry.  Falls through to
  /// SpMmTranspose above the density threshold (returns false).  Per vector
  /// bitwise-identical to SpMmTranspose.
  bool SpMmTransposeFrontier(const DenseBlockT<V>& x,
                             std::span<const uint32_t> frontier,
                             double density_threshold, DenseBlockT<V>& y,
                             std::vector<uint32_t>& next_frontier,
                             FrontierScratch& scratch) const;

  /// Frontier-sparse gather: the pull-side mirror of the scatter frontier
  /// head.  `candidates` lists, in ascending order, a superset of the rows
  /// whose gather can be nonzero (every row with an edge into the support of
  /// x — ExpandFrontier on the companion transpose structure produces
  /// exactly this set).  Each candidate row is gathered *in full*, so its
  /// result is unconditionally bitwise-identical to the dense SpMv for that
  /// row; rows not listed are left untouched.  y must be sized rows() and
  /// all-zero on entry — the caller recycles the buffer by re-zeroing the
  /// rows named in the previously returned `nonzero_rows`, which collects,
  /// ascending, the candidates whose result is nonzero.
  ///
  /// When the candidate list is dense — candidates.size() >
  /// density_threshold · rows() — falls through to SpMv (full overwrite),
  /// leaves nonzero_rows empty, and returns false.
  bool SpMvFrontier(const std::vector<V>& x,
                    std::span<const uint32_t> candidates,
                    double density_threshold, std::vector<V>& y,
                    std::vector<uint32_t>& nonzero_rows) const;

  /// Multi-vector frontier gather: same contract as SpMvFrontier with block
  /// operands; a candidate joins nonzero_rows when any of its B results is
  /// nonzero.  y must be rows() × B and all-zero on entry.  Falls through
  /// to SpMm above the density threshold (returns false).  Per computed row
  /// bitwise-identical to SpMm.
  bool SpMmFrontier(const DenseBlockT<V>& x,
                    std::span<const uint32_t> candidates,
                    double density_threshold, DenseBlockT<V>& y,
                    std::vector<uint32_t>& nonzero_rows) const;

  /// The sorted union of RowIndices over `rows` — structural frontier
  /// expansion.  Applied to the *companion* matrix of a gather (the out-CSR
  /// when gathering over the in-CSR), it maps the support of x to the
  /// candidate output rows SpMvFrontier/SpMmFrontier need: row r's gather
  /// can be nonzero iff some support node points at r, i.e. r is an
  /// out-neighbor of the support.
  void ExpandFrontier(std::span<const uint32_t> rows,
                      std::vector<uint32_t>& expanded,
                      FrontierScratch& scratch) const;

  /// Destination-balanced partition of [0, cols()) for the parallel scatter
  /// kernels: num_parts+1 ascending boundaries splitting the columns so each
  /// part receives roughly nnz/num_parts incoming edges (hub destinations
  /// are what skew a naive equal-width split).  Costs one O(nnz) counting
  /// sweep — callers cache the result per (matrix, num_parts).
  std::vector<uint32_t> NnzBalancedColumnRanges(size_t num_parts) const;

  /// Partial scatter restricted to destinations in [col_begin, col_end):
  /// zeroes that slice of y, then accumulates every edge whose column falls
  /// in the range, rows ascending.  Per destination this reproduces the
  /// full kernel's accumulation order bitwise, so disjoint ranges covering
  /// [0, cols()) compose to exactly SpMvTranspose.  y must be sized cols().
  /// Relies on column indices being sorted within each row (binary search
  /// for the row's sub-range).
  void SpMvTransposeRange(const std::vector<V>& x, std::vector<V>& y,
                          uint32_t col_begin, uint32_t col_end) const;

  /// Block-operand variant of SpMvTransposeRange; y must be cols() × B.
  void SpMmTransposeRange(const DenseBlockT<V>& x, DenseBlockT<V>& y,
                          uint32_t col_begin, uint32_t col_end) const;

  /// Parallel y = A^T x: dispatches SpMvTransposeRange over the destination
  /// partition `boundaries` (from NnzBalancedColumnRanges) on `runner`.
  /// Each destination is owned by exactly one range, so the result is
  /// deterministic and bitwise-identical to the sequential SpMvTranspose
  /// regardless of scheduling.  y is resized first.
  void SpMvTransposeParallel(const std::vector<V>& x, std::vector<V>& y,
                             std::span<const uint32_t> boundaries,
                             TaskRunner& runner) const;

  /// Parallel Y = A^T X over the same destination partition; per-vector
  /// bitwise-identical to the sequential SpMmTranspose.
  void SpMmTransposeParallel(const DenseBlockT<V>& x, DenseBlockT<V>& y,
                             std::span<const uint32_t> boundaries,
                             TaskRunner& runner) const;

  /// Logical storage bytes: StructureBytes() + ValueBytes().  When several
  /// matrices alias one structure, each reports the full structure — use
  /// the split accessors to count shared topology once.
  size_t SizeBytes() const;
  /// Bytes of the (possibly shared) index structure.
  size_t StructureBytes() const { return CsrStructureBytes(structure_); }
  /// Bytes owned by this matrix alone: the value array (kExplicit, nnz
  /// entries) or the scale array (value-free, rows/cols entries or none).
  size_t ValueBytes() const {
    return values_.size() * sizeof(V) + scales_.size() * sizeof(V);
  }

 private:
  CsrStructure structure_;
  CsrValueMode mode_ = CsrValueMode::kExplicit;
  SharedArray<V> values_;  // kExplicit: size nnz; else empty
  SharedArray<V> scales_;  // kRowConstant: empty or rows; kColumnScale: cols
};

/// The fp64 matrix every pre-precision-tier caller already uses.
using CsrMatrix = CsrMatrixT<double>;
/// The fp32 tier: 8 bytes/nnz instead of 12 (index + value).
using CsrMatrixF = CsrMatrixT<float>;

extern template class CsrMatrixT<double>;
extern template class CsrMatrixT<float>;

}  // namespace tpa::la

#endif  // TPA_LA_CSR_MATRIX_H_
