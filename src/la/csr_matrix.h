#ifndef TPA_LA_CSR_MATRIX_H_
#define TPA_LA_CSR_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "la/dense_block.h"

namespace tpa::la {

/// Immutable CSR matrix specialized for the repository's hot loop: the
/// transition-matrix products Ã^T·x that every RWR method iterates.
///
/// Unlike SparseMatrix (the assembly-friendly triplet format used by the
/// block-elimination precomputations), CsrMatrix is built directly from
/// already-sorted row-pointer/column-index arrays and stores the normalized
/// edge weights inline with the column indices, so the SpMv inner loop is a
/// single contiguous sweep over (index, value) pairs — no per-edge degree
/// lookup, no division, no branch.
///
/// Two kernels cover both propagation directions used by CPI:
///  * SpMv          — gather:  y[r]    = Σ_e values[e] · x[col[e]]
///  * SpMvTranspose — scatter: y[col[e]] += values[e] · x[r]
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) {}

  /// Adopts the arrays.  row_offsets must have rows+1 monotone entries with
  /// row_offsets[rows] == col_indices.size() == values.size(); column
  /// indices must be < cols.  CHECK-fails otherwise (programming error:
  /// callers construct from already-validated graph arrays).
  CsrMatrix(uint32_t rows, uint32_t cols, std::vector<uint64_t> row_offsets,
            std::vector<uint32_t> col_indices, std::vector<double> values);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  size_t nnz() const { return col_indices_.size(); }

  uint32_t RowNnz(uint32_t r) const {
    return static_cast<uint32_t>(row_offsets_[r + 1] - row_offsets_[r]);
  }
  std::span<const uint32_t> RowIndices(uint32_t r) const {
    return {col_indices_.data() + row_offsets_[r],
            col_indices_.data() + row_offsets_[r + 1]};
  }
  std::span<const double> RowValues(uint32_t r) const {
    return {values_.data() + row_offsets_[r],
            values_.data() + row_offsets_[r + 1]};
  }

  /// y = A x (gather over rows).  y is resized and overwritten.
  /// Requires x.size() == cols().
  void SpMv(const std::vector<double>& x, std::vector<double>& y) const;

  /// y = A^T x (scatter over rows).  y is resized and zeroed first.
  /// Requires x.size() == rows().
  void SpMvTranspose(const std::vector<double>& x,
                     std::vector<double>& y) const;

  /// Multi-vector gather: Y = A X, one CSR sweep updating all B vectors of
  /// the block (Y is reshaped to rows() × B and overwritten).  For inputs
  /// free of NaN/Inf/−0.0, vector b of Y is bitwise-identical to SpMv run on
  /// vector b of X alone: per vector, the edge contributions accumulate in
  /// exactly the SpMv order.  Requires x.rows() == cols().
  void SpMm(const DenseBlock& x, DenseBlock& y) const;

  /// Multi-vector scatter: Y = A^T X, one CSR sweep updating all B vectors
  /// (Y is reshaped to cols() × B and zeroed first).  Same per-vector
  /// bitwise contract as SpMm, against SpMvTranspose.  Block rows of X that
  /// are entirely zero are skipped, mirroring the scalar kernel's
  /// zero-source skip.  Requires x.rows() == rows().
  void SpMmTranspose(const DenseBlock& x, DenseBlock& y) const;

  /// Logical storage bytes (offsets + indices + values).
  size_t SizeBytes() const;

 private:
  uint32_t rows_;
  uint32_t cols_;
  std::vector<uint64_t> row_offsets_;  // size rows+1
  std::vector<uint32_t> col_indices_;  // size nnz, sorted within a row
  std::vector<double> values_;         // size nnz
};

}  // namespace tpa::la

#endif  // TPA_LA_CSR_MATRIX_H_
