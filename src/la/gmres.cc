#include "la/gmres.h"

#include <cmath>

#include "la/vector_ops.h"
#include "util/check.h"

namespace tpa::la {

StatusOr<GmresResult> Gmres(const LinearOperator& a,
                            const std::vector<double>& b,
                            const GmresOptions& options) {
  if (a.rows != a.cols) {
    return InvalidArgumentError("GMRES requires a square operator");
  }
  if (b.size() != a.rows) {
    return InvalidArgumentError("rhs size does not match operator");
  }
  const size_t n = a.rows;
  const size_t m = options.restart;
  if (m == 0) return InvalidArgumentError("restart must be positive");

  const double b_norm = NormL2(b);
  GmresResult result;
  result.x.assign(n, 0.0);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  std::vector<double> r(n), w(n);
  size_t total_iters = 0;

  while (total_iters < options.max_iterations) {
    // r = b - A x
    a.apply(result.x, r);
    for (size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    double beta = NormL2(r);
    result.relative_residual = beta / b_norm;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      return result;
    }

    // Arnoldi basis (m+1 vectors) and Hessenberg in Givens-rotated form.
    std::vector<std::vector<double>> basis;
    basis.reserve(m + 1);
    basis.push_back(r);
    Scale(1.0 / beta, basis[0]);

    std::vector<std::vector<double>> h(m + 1, std::vector<double>(m, 0.0));
    std::vector<double> cs(m, 0.0), sn(m, 0.0);
    std::vector<double> g(m + 1, 0.0);  // rotated rhs of the LSQ problem
    g[0] = beta;

    size_t k = 0;
    for (; k < m && total_iters < options.max_iterations; ++k) {
      ++total_iters;
      a.apply(basis[k], w);
      // Modified Gram–Schmidt.
      for (size_t i = 0; i <= k; ++i) {
        h[i][k] = Dot(w, basis[i]);
        Axpy(-h[i][k], basis[i], w);
      }
      h[k + 1][k] = NormL2(w);
      if (h[k + 1][k] > 0.0) {
        std::vector<double> next = w;
        Scale(1.0 / h[k + 1][k], next);
        basis.push_back(std::move(next));
      }

      // Apply existing Givens rotations to the new column.
      for (size_t i = 0; i < k; ++i) {
        const double tmp = cs[i] * h[i][k] + sn[i] * h[i + 1][k];
        h[i + 1][k] = -sn[i] * h[i][k] + cs[i] * h[i + 1][k];
        h[i][k] = tmp;
      }
      // New rotation annihilating h[k+1][k].
      const double denom =
          std::sqrt(h[k][k] * h[k][k] + h[k + 1][k] * h[k + 1][k]);
      if (denom == 0.0) {
        cs[k] = 1.0;
        sn[k] = 0.0;
      } else {
        cs[k] = h[k][k] / denom;
        sn[k] = h[k + 1][k] / denom;
      }
      h[k][k] = cs[k] * h[k][k] + sn[k] * h[k + 1][k];
      h[k + 1][k] = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];

      result.relative_residual = std::abs(g[k + 1]) / b_norm;
      if (result.relative_residual <= options.tolerance) {
        ++k;
        break;
      }
      if (basis.size() == k + 1) break;  // happy breakdown: exact solution
    }

    // Back substitution for y in H y = g, then x += V y.
    std::vector<double> y(k, 0.0);
    for (size_t i = k; i-- > 0;) {
      double sum = g[i];
      for (size_t j = i + 1; j < k; ++j) sum -= h[i][j] * y[j];
      if (h[i][i] == 0.0) {
        return FailedPreconditionError("GMRES breakdown: singular Hessenberg");
      }
      y[i] = sum / h[i][i];
    }
    for (size_t i = 0; i < k; ++i) Axpy(y[i], basis[i], result.x);

    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      result.iterations = total_iters;
      return result;
    }
  }

  result.iterations = total_iters;
  result.converged = result.relative_residual <= options.tolerance;
  return result;
}

}  // namespace tpa::la
