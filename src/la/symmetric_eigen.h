#ifndef TPA_LA_SYMMETRIC_EIGEN_H_
#define TPA_LA_SYMMETRIC_EIGEN_H_

#include <vector>

#include "la/dense_matrix.h"
#include "util/status.h"

namespace tpa::la {

/// Eigendecomposition of a small symmetric matrix via the cyclic Jacobi
/// method.  A = V diag(w) V^T with orthonormal V.
///
/// This finishes the truncated SVD used by NB-LIN: after subspace iteration,
/// the t×t Gram matrix B^T B is symmetric and tiny, so Jacobi is both simple
/// and accurate.
struct SymmetricEigen {
  /// Eigenvalues in decreasing order.
  std::vector<double> eigenvalues;
  /// Column j of `eigenvectors` is the eigenvector for eigenvalues[j].
  DenseMatrix eigenvectors;
};

/// Computes the decomposition.  `a` must be square and symmetric (only the
/// upper triangle is read).  Fails on non-square input.
StatusOr<SymmetricEigen> ComputeSymmetricEigen(const DenseMatrix& a,
                                               int max_sweeps = 64,
                                               double tol = 1e-12);

}  // namespace tpa::la

#endif  // TPA_LA_SYMMETRIC_EIGEN_H_
