#include "la/csr_matrix.h"

#include "util/check.h"

namespace tpa::la {

CsrMatrix::CsrMatrix(uint32_t rows, uint32_t cols,
                     std::vector<uint64_t> row_offsets,
                     std::vector<uint32_t> col_indices,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  TPA_CHECK_EQ(row_offsets_.size(), static_cast<size_t>(rows_) + 1);
  TPA_CHECK_EQ(row_offsets_.front(), 0u);
  TPA_CHECK_EQ(row_offsets_.back(), col_indices_.size());
  TPA_CHECK_EQ(col_indices_.size(), values_.size());
  for (uint32_t r = 0; r < rows_; ++r) {
    TPA_CHECK_LE(row_offsets_[r], row_offsets_[r + 1]);
  }
  for (uint32_t c : col_indices_) TPA_CHECK_LT(c, cols_);
}

void CsrMatrix::SpMv(const std::vector<double>& x,
                     std::vector<double>& y) const {
  TPA_DCHECK(x.size() == cols_);
  y.resize(rows_);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      sum += values[e] * x[indices[e]];
    }
    y[r] = sum;
  }
}

void CsrMatrix::SpMvTranspose(const std::vector<double>& x,
                              std::vector<double>& y) const {
  TPA_DCHECK(x.size() == rows_);
  y.assign(cols_, 0.0);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      y[indices[e]] += values[e] * xr;
    }
  }
}

size_t CsrMatrix::SizeBytes() const {
  return row_offsets_.size() * sizeof(uint64_t) +
         col_indices_.size() * sizeof(uint32_t) +
         values_.size() * sizeof(double);
}

}  // namespace tpa::la
